#!/usr/bin/env python3
"""Compare a fresh `bench --json` document against checked-in baselines.

Usage: check_bench_trend.py FRESH.json [BASELINE.json ...]

With no baselines given, every BENCH_PR*.json next to the repo root is
used.  The comparison is warn-only: regressions print WARN lines but
the exit status is 0 unless an input is malformed — machine
differences between CI runners and the machines that produced the
baselines make a hard gate flaky, but the trend should stay visible in
the log.

Comparisons (fresh vs the most recent baseline that has the metric):

  * prepared_micro us_prepared and spans_micro us_sample_off — the
    spans experiment reuses the prepared-micro workload shape exactly
    so that the sampled-off number is comparable across PRs; the span
    acceptance bound (sampling off costs <= 5% over the pre-span
    prepared path) is checked here, with slack for machine noise,
  * prepared/direct TPC-C NOTPM ratios, which are self-normalizing
    (both sides of the ratio ran on the same machine).
"""

import glob
import json
import os
import sys

# quick runs use smaller workloads; numbers are not comparable to the
# full-size baselines, so only matching-size records are compared
SLACK = 1.15  # 15% machine-noise allowance on absolute microseconds
SPAN_OFF_BOUND = 1.05 * SLACK  # the PR's <=5% bound, plus noise


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"check_bench_trend: cannot load {path}: {e}")
    if "results" not in doc or not isinstance(doc["results"], list):
        sys.exit(f"check_bench_trend: {path} has no results array")
    return doc


def find(doc, workload):
    for r in doc["results"]:
        if r.get("workload") == workload:
            return r
    return None


def pr_number(path):
    stem = os.path.basename(path)
    digits = "".join(c for c in stem if c.isdigit())
    return int(digits) if digits else -1


def main():
    if len(sys.argv) < 2:
        sys.exit("usage: check_bench_trend.py FRESH.json [BASELINE.json ...]")
    fresh = load(sys.argv[1])
    baselines = sys.argv[2:]
    if not baselines:
        baselines = sorted(glob.glob("BENCH_PR*.json"), key=pr_number)
    if not baselines:
        print("check_bench_trend: no baselines found, nothing to compare")
        return
    warns = 0

    def warn(msg):
        nonlocal warns
        warns += 1
        print(f"WARN: {msg}")

    def newest(workload, field):
        for path in reversed(baselines):
            rec = find(load(path), workload)
            if rec is not None and isinstance(rec.get(field), (int, float)):
                return path, rec
        return None, None

    # sampled-off overhead vs the pre-span prepared path (same workload
    # shape by construction; see bench/main.ml spans_bench)
    spans = find(fresh, "spans_micro")
    if spans is not None:
        base_path, base = newest("prepared_micro", "us_prepared")
        if base is not None and spans.get("rows") == base.get("rows"):
            off = spans["us_sample_off"]
            ref = base["us_prepared"]
            ratio = off / ref
            line = (
                f"spans_micro us_sample_off {off:.2f}us vs "
                f"{os.path.basename(base_path)} us_prepared {ref:.2f}us "
                f"({ratio:.2f}x)"
            )
            if ratio > SPAN_OFF_BOUND:
                warn(line + f" exceeds the {SPAN_OFF_BOUND:.2f}x bound")
            else:
                print("ok: " + line)
        elif base is not None:
            print(
                "check_bench_trend: workload sizes differ "
                "(--quick vs full), skipping spans-off comparison"
            )

    # prepared_micro drift, same-size runs only
    pm = find(fresh, "prepared_micro")
    if pm is not None:
        base_path, base = newest("prepared_micro", "us_prepared")
        if base is not None and pm.get("rows") == base.get("rows"):
            ratio = pm["us_prepared"] / base["us_prepared"]
            line = (
                f"prepared_micro us_prepared {pm['us_prepared']:.2f}us vs "
                f"{os.path.basename(base_path)} {base['us_prepared']:.2f}us "
                f"({ratio:.2f}x)"
            )
            if ratio > SLACK:
                warn(line + " regressed beyond noise allowance")
            else:
                print("ok: " + line)

    # TPC-C prepared/direct ratio is machine-independent
    pt = find(fresh, "prepared_tpcc")
    if pt is not None and isinstance(pt.get("notpm_ratio"), (int, float)):
        base_path, base = newest("prepared_tpcc", "notpm_ratio")
        if base is not None:
            drop = pt["notpm_ratio"] / base["notpm_ratio"]
            line = (
                f"prepared_tpcc notpm_ratio {pt['notpm_ratio']:.3f} vs "
                f"{os.path.basename(base_path)} {base['notpm_ratio']:.3f}"
            )
            if drop < 0.85:
                warn(line + " dropped more than 15%")
            else:
                print("ok: " + line)

    if warns:
        print(f"check_bench_trend: {warns} warning(s) — not failing the build")
    else:
        print("check_bench_trend: no regressions beyond noise")


if __name__ == "__main__":
    main()

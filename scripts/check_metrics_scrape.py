#!/usr/bin/env python3
"""Validate Prometheus scrapes embedded in ifdb_shell output.

Reads shell transcript from stdin, locates the metric dumps produced
by `\\metrics` (every dump starts with the same HELP/TYPE line, since
registration order is deterministic), and checks:

  * exactly two scrapes are present,
  * no scrape contains a duplicate sample key (name + label set),
  * every TYPE-counter sample is monotone non-decreasing between the
    scrapes, and the statement counter strictly increased (statements
    ran between them).
"""

import re
import sys

SAMPLE = re.compile(
    r"^([a-zA-Z_][a-zA-Z0-9_]*(?:\{[^}]*\})?) (-?[0-9.+eE]+|NaN|\+Inf)$"
)
TYPE = re.compile(r"^# TYPE ([a-zA-Z_][a-zA-Z0-9_]*) (counter|gauge|histogram)$")


def parse(lines):
    kinds, samples = {}, {}
    for line in lines:
        m = TYPE.match(line)
        if m:
            kinds[m.group(1)] = m.group(2)
        m = SAMPLE.match(line)
        if m:
            key = m.group(1)
            if key in samples:
                sys.exit(f"duplicate sample in one scrape: {key}")
            samples[key] = float(m.group(2).replace("+Inf", "inf"))
    return kinds, samples


def main():
    lines = sys.stdin.read().splitlines()
    first = next((l for l in lines if l.startswith("# ")), None)
    if first is None:
        sys.exit("no metric dump found in shell output")
    starts = [i for i, l in enumerate(lines) if l == first]
    if len(starts) != 2:
        sys.exit(f"expected 2 metric scrapes, found {len(starts)}")
    kinds, s1 = parse(lines[starts[0] : starts[1]])
    _, s2 = parse(lines[starts[1] :])
    if not s1 or not s2:
        sys.exit("empty scrape")
    regressed = [
        key
        for key, v in s1.items()
        if kinds.get(key.split("{")[0]) == "counter"
        and key in s2
        and s2[key] < v
    ]
    if regressed:
        sys.exit(f"counters went backwards between scrapes: {regressed}")
    if not s2["ifdb_statements_total"] > s1["ifdb_statements_total"]:
        sys.exit("statement counter did not advance between scrapes")
    print(
        f"ok: 2 scrapes, {len(s1)} samples, "
        f"{sum(1 for k in kinds.values() if k == 'counter')} counter families monotone"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Validate a Chrome trace-event export produced by Span.to_chrome_json.

Usage: check_trace_export.py FILE [--require-commit-children]

Checks, in order:

  * the file is valid JSON with a non-empty "traceEvents" array,
  * every complete ("ph":"X") event carries name/ts/dur/pid/tid and
    non-negative timestamps,
  * within each (pid, tid) lane, events nest: sorted by start, every
    event either contains the next or ends before it starts (spans
    emitted from already-timed intervals are clipped to the statement
    window by construction, so overlap is a recorder bug),
  * with --require-commit-children: at least one "commit" span exists
    whose lane contains "lock.wait", "gc.wait" and "wal.fsync" events
    inside its window, each no longer than the commit span itself —
    the PR's TPC-C acceptance shape.
"""

import json
import sys

EPS = 0.002  # µs; the exporter rounds timestamps to 3 decimals


def fail(msg):
    sys.exit(f"check_trace_export: {msg}")


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    flags = set(a for a in sys.argv[1:] if a.startswith("--"))
    if len(args) != 1:
        fail("usage: check_trace_export.py FILE [--require-commit-children]")
    try:
        with open(args[0]) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {args[0]}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")

    lanes = {}
    complete = 0
    for ev in events:
        ph = ev.get("ph")
        if ph == "M":
            continue
        if ph != "X":
            fail(f"unexpected phase {ph!r} in event {ev}")
        for field in ("name", "ts", "dur", "pid", "tid"):
            if field not in ev:
                fail(f"complete event missing {field!r}: {ev}")
        if ev["ts"] < 0 or ev["dur"] < 0:
            fail(f"negative timestamp/duration: {ev}")
        complete += 1
        lanes.setdefault((ev["pid"], ev["tid"]), []).append(ev)
    if complete == 0:
        fail("no complete (ph=X) events")

    for (pid, tid), evs in lanes.items():
        evs.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []  # open windows, innermost last
        for ev in evs:
            t0, t1 = ev["ts"], ev["ts"] + ev["dur"]
            while stack and t0 >= stack[-1] - EPS:
                stack.pop()
            if stack and t1 > stack[-1] + EPS:
                fail(
                    f"event {ev['name']!r} in lane pid={pid} tid={tid} "
                    f"overlaps its enclosing span: ends {t1:.3f}, "
                    f"parent ends {stack[-1]:.3f}"
                )
            stack.append(t1)

    if "--require-commit-children" in flags:
        flags.discard("--require-commit-children")
        want = {"lock.wait", "gc.wait", "wal.fsync"}
        satisfied = False
        for evs in lanes.values():
            for commit in evs:
                if commit["name"] != "commit":
                    continue
                c0, c1 = commit["ts"], commit["ts"] + commit["dur"]
                inside = {
                    ev["name"]
                    for ev in evs
                    if ev is not commit
                    and ev["ts"] >= c0 - EPS
                    and ev["ts"] + ev["dur"] <= c1 + EPS
                    and ev["dur"] <= commit["dur"] + EPS
                    and ev["name"] in want
                }
                if inside == want:
                    satisfied = True
                    break
            if satisfied:
                break
        if not satisfied:
            fail(
                "no commit span contains lock.wait, gc.wait and wal.fsync "
                "children within its window"
            )
    if flags:
        fail(f"unknown flag(s): {sorted(flags)}")

    print(
        f"ok: {complete} complete events in {len(lanes)} lane(s), "
        f"all well-nested"
    )


if __name__ == "__main__":
    main()

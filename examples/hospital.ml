(* The application-development methodology of paper section 6.4,
   applied end to end to its own third example: a medical information
   system.

     dune exec examples/hospital.exe

   Step 1  identify the information, its consumers, the expected
           computations -> an authority schema (compound tags with
           per-patient subtags, owning principals)
   Step 2  define the table schema and a labeling strategy (+ label
           constraints)
   Step 3  identify the unsafe flows and bind their declassification
           to minimal code (closures, declassifying/relabeling views)

   Along the way this exercises the extensions: a relabeling view
   (medical -> billing), the per-tuple iterator, and a label-preserving
   dump. *)

module Db = Ifdb_core.Database
module Dump = Ifdb_core.Dump
module Errors = Ifdb_core.Errors
module Catalog = Ifdb_engine.Catalog
module Label = Ifdb_difc.Label
module Value = Ifdb_rel.Value
module Tuple = Ifdb_rel.Tuple

let section n what = Printf.printf "\n== Step %d: %s ==\n" n what

let () =
  let db = Db.create () in
  let admin = Db.connect_admin db in

  section 1 "the authority schema";
  (* "there might be an all_patient_medical compound tag for medical
     records, with subtags such as alice_medical and bob_medical …
     Alice owns alice_medical" (section 6.4) *)
  let hospital = Db.create_principal admin ~name:"hospital" in
  let hs = Db.connect db ~principal:hospital in
  let all_medical = Db.create_tag hs ~name:"all_patient_medical" () in
  let all_billing = Db.create_tag hs ~name:"all_patient_billing" () in
  let patient name =
    let p = Db.create_principal admin ~name in
    let ps = Db.connect db ~principal:p in
    let medical =
      Db.create_tag ps ~name:(name ^ "_medical") ~compounds:[ all_medical ] ()
    in
    let billing =
      Db.create_tag ps ~name:(name ^ "_billing") ~compounds:[ all_billing ] ()
    in
    (name, p, ps, medical, billing)
  in
  let alice = patient "alice" and bob = patient "bob" in
  print_endline "  compound all_patient_medical / all_patient_billing";
  print_endline "  per-patient subtags owned by the patients themselves";

  section 2 "tables, labeling strategy, label constraints";
  ignore
    (Db.exec admin
       "CREATE TABLE Visits (patient TEXT NOT NULL, day INT NOT NULL, \
        diagnosis TEXT, cost INT, PRIMARY KEY (patient, day))");
  (* label constraint: a visit row for patient p must carry exactly
     {p_medical} — prevents labeling errors and polyinstantiation *)
  let medical_tag_of = [ ("alice", let _, _, _, m, _ = alice in m);
                         ("bob", let _, _, _, m, _ = bob in m) ] in
  Db.add_label_constraint db ~name:"visit_labels" ~table:"Visits" (fun tuple ->
      match List.assoc_opt (Value.to_text (Tuple.get tuple 0)) medical_tag_of with
      | Some tag -> Some (Catalog.Exactly (Label.singleton tag))
      | None -> None);
  let admit (name, _, ps, medical, _) day diagnosis cost =
    Db.add_secrecy ps medical;
    ignore
      (Db.exec ps
         (Printf.sprintf "INSERT INTO Visits VALUES ('%s', %d, '%s', %d)" name
            day diagnosis cost));
    Db.declassify ps medical
  in
  admit alice 1 "flu" 150;
  admit alice 8 "checkup" 90;
  admit bob 3 "fracture" 900;
  print_endline "  three visits stored, each labeled {patient_medical}";
  (* the constraint rejects a mislabeled write *)
  (match Db.exec admin "INSERT INTO Visits VALUES ('alice', 9, 'oops', 1)" with
  | exception Errors.Constraint_violation _ ->
      print_endline "  mislabeled insert rejected by the label constraint"
  | _ -> print_endline "  BUG: mislabeled insert accepted");

  section 3 "unsafe flows, each bound to minimal authorized code";
  (* flow A: billing extraction — the relabeling view of section 4.3.
     The hospital holds the medical compound and swaps each patient's
     medical tag for their billing tag at the view boundary. *)
  Db.create_relabeling_view hs ~name:"BillingView"
    ~query:"SELECT patient, day, cost FROM Visits"
    ~replace:
      [ (let _, _, _, m, b = alice in (m, b));
        (let _, _, _, m, b = bob in (m, b)) ];
  let biller = Db.create_principal admin ~name:"biller" in
  let bs = Db.connect db ~principal:biller in
  let _, alice_p, _, _, alice_billing = alice in
  Db.delegate (let _, _, ps, _, _ = alice in ps) ~tag:alice_billing ~grantee:biller;
  Db.add_secrecy bs alice_billing;
  let rows = Db.query bs "SELECT patient, cost FROM BillingView WHERE patient = 'alice'" in
  Printf.printf "  biller (billing tags only) sees %d of alice's charges: %s\n"
    (List.length rows)
    (String.concat ", "
       (List.map (fun r -> Value.to_string (Tuple.get r 1)) rows));
  Printf.printf "  …but zero raw medical rows: %d\n"
    (List.length (Db.query bs "SELECT * FROM Visits"));

  (* flow B: a statistics job over everyone, via the compound tag and
     the per-tuple iterator from the paper's future work *)
  let stats =
    Db.closure_principal hs ~name:"stats-closure" ~tags:[ all_medical ]
  in
  let ss = Db.connect db ~principal:stats in
  let total = ref 0 in
  let n =
    Db.query_each ss ~extra:(Label.singleton all_medical)
      "SELECT cost FROM Visits" (fun _sub row ->
        total := !total + Value.to_int (Tuple.get row 0))
  in
  Printf.printf "  stats closure processed %d visits, total cost %d, and the \
                 iterating session stayed clean (label %s)\n"
    n !total
    (Label.to_string (Db.session_label ss));

  (* flow C: disclosure to the patient herself — delegation + declassify *)
  let alice_s = Db.connect db ~principal:alice_p in
  Db.add_secrecy alice_s (let _, _, _, m, _ = alice in m);
  Printf.printf "  alice reads her own history: %d rows\n"
    (List.length (Db.query alice_s "SELECT * FROM Visits WHERE patient = 'alice'"));

  section 4 "operations: a label-preserving backup";
  let script = Dump.dump db in
  let lines = List.length (String.split_on_char '\n' script) in
  Printf.printf "  pg_dump-style script: %d lines, labels bracketed by \
                 PERFORM addsecrecy/declassify\n"
    lines;
  print_endline "\ndone."

(* CarTel end-to-end (paper sections 1, 6.1).

     dune exec examples/cartel_demo.exe

   Builds the CarTel deployment: GPS ingest with authority-closure
   triggers, the Figure 3 web scripts, friend delegation — and then
   replays the three bug families the paper found, showing IFDB
   blocking each. *)

module Cartel = Ifdb_cartel.Cartel
module Web = Ifdb_platform.Web
module Gps = Ifdb_workload.Gps
module Rng = Ifdb_workload.Rng

let show_response name (r : Web.response) =
  Printf.printf "  %-24s -> %s%s\n" name
    (match r.Web.status with
    | `Ok -> "200 OK"
    | `Blocked -> "BLOCKED (no output)"
    | `Error -> "error")
    (match r.Web.status with
    | `Ok ->
        let body = String.split_on_char '\n' r.Web.body in
        Printf.sprintf "  (%d line(s): %s...)" (List.length body)
          (String.sub r.Web.body 0 (min 40 (String.length r.Web.body)))
    | `Blocked | `Error -> "")

let () =
  print_endline "Setting up CarTel: 4 users, 1 car each, GPS trace ingest...";
  let t = Cartel.setup ~users:4 ~cars_per_user:1 () in
  let rng = Rng.create ~seed:7 in
  let points =
    List.map
      (fun p -> { p with Gps.car_id = p.Gps.car_id * 100 })
      (Gps.generate rng
         { Gps.cars = 4; drives_per_car = 3; points_per_drive = 8;
           start_ts = 1_600_000_000 })
  in
  Cartel.ingest_batch t points;
  Printf.printf "ingested %d GPS points -> %d drives (segmentation trigger)\n\n"
    (Cartel.locations_count t) (Cartel.drives_count t);

  print_endline "Normal operation:";
  show_response "user1: cars.php" (Cartel.request t ~path:"cars.php" ~user:1 ());
  show_response "user1: drives.php" (Cartel.request t ~path:"drives.php" ~user:1 ());
  show_response "user2: drives_top.php"
    (Cartel.request t ~path:"drives_top.php" ~user:2 ());

  print_endline "\nFriend sharing (delegation of user1's drives tag to user2):";
  Cartel.befriend t ~owner:1 ~friend:2;
  show_response "user2: drives.php?target=1"
    (Cartel.request t ~path:"drives.php" ~user:2 ~params:[ ("target", "1") ] ());

  print_endline "\nThe paper's bugs, replayed against IFDB:";
  print_endline "(1) twelve scripts forgot to authenticate — run one anonymously:";
  show_response "anon: get_cars_noauth.php"
    (Cartel.request t ~path:"get_cars_noauth.php" ~params:[ ("uid", "1") ] ());

  print_endline "(2) the friend-URL tampering hole (no authorization check):";
  show_response "user3: drives_noauthz.php?target=1"
    (Cartel.request t ~path:"drives_noauthz.php" ~user:3
       ~params:[ ("target", "1") ] ());

  print_endline "(3) and the honest script refuses non-friends anyway:";
  show_response "user3: drives.php?target=1"
    (Cartel.request t ~path:"drives.php" ~user:3 ~params:[ ("target", "1") ] ());

  Printf.printf
    "\nWeb tier stats: %d requests, %d blocked — blocked requests emitted \
     zero bytes (%d responses passed the output gate).\n"
    (Web.requests t.Cartel.web)
    (Web.blocked t.Cartel.web)
    (Ifdb_platform.Gate.sent_count (Web.gate t.Cartel.web))

(* Quickstart: tags, labels, and Query by Label in a few minutes.

     dune exec examples/quickstart.exe

   Alice and Bob store private notes in one shared table; labels — not
   WHERE clauses — decide who sees what, and only explicit
   declassification lets data out. *)

module Db = Ifdb_core.Database
module Errors = Ifdb_core.Errors
module Value = Ifdb_rel.Value
module Tuple = Ifdb_rel.Tuple
module Label = Ifdb_difc.Label

let show title rows =
  Printf.printf "%s:\n" title;
  if rows = [] then print_endline "  (no rows)"
  else
    List.iter
      (fun row ->
        Printf.printf "  %s   label=%s\n"
          (String.concat " | "
             (List.map Value.to_string (Array.to_list (Tuple.values row))))
          (Label.to_string (Tuple.label row)))
      rows

let () =
  (* 1. a database, two users, one tag each *)
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let alice_p = Db.create_principal admin ~name:"alice" in
  let bob_p = Db.create_principal admin ~name:"bob" in
  let alice = Db.connect db ~principal:alice_p in
  let bob = Db.connect db ~principal:bob_p in
  let alice_tag = Db.create_tag alice ~name:"alice_notes" () in
  let bob_tag = Db.create_tag bob ~name:"bob_notes" () in

  (* 2. one shared table; the schema says nothing about privacy *)
  ignore (Db.exec admin "CREATE TABLE Notes (author TEXT NOT NULL, note TEXT)");

  (* 3. writes are labeled with the writer's current label *)
  Db.add_secrecy alice alice_tag;
  ignore (Db.exec alice "INSERT INTO Notes VALUES ('alice', 'dentist tuesday')");
  Db.declassify alice alice_tag;

  Db.add_secrecy bob bob_tag;
  ignore (Db.exec bob "INSERT INTO Notes VALUES ('bob', 'surprise party for alice')");
  Db.declassify bob bob_tag;

  ignore (Db.exec admin "INSERT INTO Notes VALUES ('system', 'welcome to notes')");

  (* 4. Query by Label: the same SELECT returns different worlds *)
  show "admin (empty label) sees" (Db.query admin "SELECT * FROM Notes");

  Db.add_secrecy alice alice_tag;
  show "alice (label {alice_notes}) sees" (Db.query alice "SELECT * FROM Notes");

  (* 5. alice cannot raise her view to bob's data and walk away with it:
     she can raise her label, but then she cannot declassify *)
  Db.add_secrecy alice bob_tag;
  show "alice after also raising {bob_notes}" (Db.query alice "SELECT * FROM Notes");
  (match Db.declassify alice bob_tag with
  | () -> print_endline "BUG: alice declassified bob's tag!"
  | exception Errors.Authority_required _ ->
      print_endline "alice cannot declassify bob_notes -> she stays contaminated";
  | exception Ifdb_difc.Authority.Denied _ ->
      print_endline "alice cannot declassify bob_notes -> she stays contaminated");

  (* 6. bob can share: delegation is the policy language *)
  let bob_clean = Db.connect db ~principal:bob_p in
  Db.delegate bob_clean ~tag:bob_tag ~grantee:alice_p;
  Db.declassify alice bob_tag;
  print_endline "after bob delegates, alice declassifies and is clean again";
  Printf.printf "alice's label is now %s\n"
    (Label.to_string (Db.session_label alice))

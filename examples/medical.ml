(* The paper's medical-records walkthrough (sections 4-5).

     dune exec examples/medical.exe

   Reproduces, step by step, the running examples from the paper: the
   HIVPatients table of Figure 2, the Label Confinement and Write
   Rules, the "Alice has HIV" transaction attack, polyinstantiation,
   the Foreign Key Rule, and label constraints. *)

module Db = Ifdb_core.Database
module Errors = Ifdb_core.Errors
module Catalog = Ifdb_engine.Catalog
module Value = Ifdb_rel.Value
module Tuple = Ifdb_rel.Tuple
module Label = Ifdb_difc.Label

let step n msg = Printf.printf "\n[%d] %s\n" n msg

let blocked f =
  match f () with
  | _ -> "NOT BLOCKED (bug!)"
  | exception Errors.Flow_violation m -> "blocked by flow rule: " ^ m
  | exception Errors.Authority_required m -> "blocked, needs authority: " ^ m
  | exception Errors.Constraint_violation m -> "blocked by constraint: " ^ m

let count s q = List.length (Db.query s q)

let () =
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let mk name = Db.create_principal admin ~name in
  let alice_p = mk "alice" and bob_p = mk "bob" and clerk_p = mk "clerk" in
  let session p = Db.connect db ~principal:p in
  let alice = session alice_p and bob = session bob_p and clerk = session clerk_p in
  let alice_medical = Db.create_tag alice ~name:"alice_medical" () in
  let bob_medical = Db.create_tag bob ~name:"bob_medical" () in

  step 1 "the Figure 2 schema: patients with per-patient labels";
  ignore
    (Db.exec admin
       "CREATE TABLE HIVPatients (patient_name TEXT NOT NULL, patient_dob \
        TEXT NOT NULL, PRIMARY KEY (patient_name, patient_dob))");
  Db.add_secrecy alice alice_medical;
  ignore (Db.exec alice "INSERT INTO HIVPatients VALUES ('Alice', '2/1/60')");
  Db.declassify alice alice_medical;
  Db.add_secrecy bob bob_medical;
  ignore (Db.exec bob "INSERT INTO HIVPatients VALUES ('Bob', '6/26/78')");
  Db.declassify bob bob_medical;

  step 2 "Label Confinement Rule: a {bob_medical} process sees only Bob";
  Db.add_secrecy bob bob_medical;
  Printf.printf "  bob's query returns %d row(s)\n"
    (count bob "SELECT * FROM HIVPatients");
  Printf.printf "  the clerk (empty label) sees %d row(s)\n"
    (count clerk "SELECT * FROM HIVPatients");
  Printf.printf
    "  and the implicit channel of 4.2 is closed: 'WHERE patient_name <> \
     ...' still returns only covered tuples (%d)\n"
    (count clerk "SELECT * FROM HIVPatients WHERE patient_name <> 'Nobody'");

  step 3 "Write Rule: only exact-label tuples are writable";
  Printf.printf "  bob updating Alice's row: invisible, 0 rows affected\n";
  (match Db.exec bob "DELETE FROM HIVPatients WHERE patient_name = 'Alice'" with
  | Db.Affected n -> Printf.printf "  DELETE affected %d rows\n" n
  | _ -> ());

  step 4 "the section 5.1 attack: commit only if Alice has HIV";
  ignore (Db.exec admin "CREATE TABLE Foo (msg TEXT)");
  ignore (Db.exec bob "BEGIN");
  ignore (Db.exec bob "INSERT INTO Foo VALUES ('Alice has HIV')");
  Db.add_secrecy bob alice_medical;
  ignore (Db.query bob "SELECT * FROM HIVPatients WHERE patient_name = 'Alice'");
  Printf.printf "  COMMIT: %s\n" (blocked (fun () -> Db.exec bob "COMMIT"));
  Printf.printf "  Foo afterwards holds %d row(s) — nothing leaked\n"
    (count clerk "SELECT * FROM Foo");
  let bob = session bob_p in

  step 5 "polyinstantiation (section 5.2.1)";
  Printf.printf "  clerk inserts (Alice, 2/1/60) with an empty label: ";
  (match Db.exec clerk "INSERT INTO HIVPatients VALUES ('Alice', '2/1/60')" with
  | Db.Affected 1 -> print_endline "accepted (refusing would leak!)"
  | _ -> print_endline "unexpected");
  Db.add_secrecy alice alice_medical;
  Printf.printf "  Alice now sees %d 'Alice' rows (the conflict surfaces high)\n"
    (count alice "SELECT * FROM HIVPatients WHERE patient_name = 'Alice'");
  Printf.printf "  ... and %d with the exact-label filter _label = {alice_medical}\n"
    (count alice
       "SELECT * FROM HIVPatients WHERE patient_name = 'Alice' AND _label = \
        {alice_medical}");

  step 6 "label constraints prevent the mislabeled duplicate";
  Db.add_label_constraint db ~name:"alice_rows_labeled" ~table:"HIVPatients"
    (fun tuple ->
      if Value.equal (Tuple.get tuple 0) (Value.Text "Alice") then
        Some (Catalog.Exactly (Label.singleton alice_medical))
      else None);
  Printf.printf "  clerk repeats the insert: %s\n"
    (blocked (fun () ->
         Db.exec clerk
           "INSERT INTO HIVPatients VALUES ('Alice', '2/1/60') -- lint: \
            expect runtime-error"));

  step 7 "the Foreign Key Rule (section 5.2.2)";
  ignore
    (Db.exec admin
       "CREATE TABLE HIVRecords (rid INT PRIMARY KEY, patient_name TEXT, \
        patient_dob TEXT, FOREIGN KEY (patient_name, patient_dob) REFERENCES \
        HIVPatients (patient_name, patient_dob))");
  Printf.printf "  clerk probes 'is Bob a patient?' via an FK insert: %s\n"
    (blocked (fun () ->
         Db.exec clerk "INSERT INTO HIVRecords VALUES (1, 'Bob', '6/26/78')"));
  Printf.printf "  Bob, with authority, states the flow explicitly: ";
  (match
     Db.exec bob
       "INSERT INTO HIVRecords VALUES (1, 'Bob', '6/26/78') DECLASSIFYING \
        (bob_medical) -- lint: expect runtime-error"
   with
  | Db.Affected 1 -> print_endline "accepted"
  | _ -> print_endline "unexpected");

  step 8 "deletes of referenced tuples are restricted";
  Db.add_secrecy bob bob_medical;
  Printf.printf "  deleting Bob's patient row while a record refers to it: %s\n"
    (blocked (fun () ->
         Db.exec bob
           "DELETE FROM HIVPatients WHERE patient_name = 'Bob' -- lint: \
            expect runtime-error"));
  print_endline "\ndone.";
  ignore (session alice_p)

(* HotCRP end-to-end (paper section 6.2).

     dune exec examples/hotcrp_demo.exe

   A conference runs on IFDB: contact tags, the PCMembers declassifying
   view, per-review tags delegated by the chair's closure, per-paper
   decision tags released only at notification time. *)

module Db = Ifdb_core.Database
module Hotcrp = Ifdb_hotcrp.Hotcrp

let () =
  let t = Hotcrp.setup () in
  let ada = Hotcrp.register t ~name:"ada" ~pc:true () in
  let bob = Hotcrp.register t ~name:"bob" ~pc:true () in
  let carol = Hotcrp.register t ~name:"carol" () in

  print_endline "Conference set up: chair, PC {ada, bob}, author carol.";
  let paper = Hotcrp.submit_paper t ~author:carol ~title:"Query by Label" in
  Hotcrp.declare_conflict t ~paper ~who:ada;
  Printf.printf "carol submitted paper #%d; ada declared a conflict.\n\n" paper;

  print_endline "The PCMembers declassifying view (anyone may list the PC):";
  Printf.printf "  carol sees: %s\n"
    (String.concat ", " (Hotcrp.pc_members_via_view (Hotcrp.session t carol)));
  Printf.printf
    "  but the raw ContactInfo dump (the leak the paper caught) returns %d \
     rows for her.\n\n"
    (List.length
       (Db.query (Hotcrp.session t carol) "SELECT email FROM ContactInfo"));

  ignore (Hotcrp.submit_review t ~reviewer:bob ~paper ~score:4 ~text:"accept");
  print_endline "bob submitted a review (score 4).";
  let scores p name =
    Printf.printf "  %-6s sees review scores: [%s]\n" name
      (String.concat "; "
         (List.map string_of_int (Hotcrp.review_scores_visible_to t p ~paper)))
  in
  scores ada "ada";
  scores carol "carol";
  print_endline "chair opens reviews to non-conflicted PC members...";
  Hotcrp.open_reviews_to_pc t;
  scores ada "ada";
  scores t.Hotcrp.chair "chair";
  scores carol "carol";

  print_endline "\nDecisions:";
  Hotcrp.record_decision t ~paper ~accept:true;
  let show p name =
    Printf.printf "  %-6s sees decisions: [%s]\n" name
      (String.concat "; "
         (List.map
            (fun (pid, acc) -> Printf.sprintf "#%d %s" pid (if acc then "ACCEPT" else "reject"))
            (Hotcrp.visible_decisions t p)))
  in
  print_endline "chair recorded ACCEPT; before release (the premature-visibility bugs):";
  show carol "carol";
  show bob "bob";
  print_endline "chair releases decisions to authors:";
  Hotcrp.release_decisions t;
  show carol "carol";
  print_endline "\ndone."

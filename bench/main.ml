(* The benchmark harness: one experiment per table/figure in the
   paper's evaluation (sections 8.1-8.3), plus ablations and
   microbenchmarks.

     dune exec bench/main.exe              -- run everything
     dune exec bench/main.exe -- fig3      -- just one experiment
     dune exec bench/main.exe -- --quick   -- smaller workloads

   Times are reported against a simulated clock: wall time plus the
   buffer pool's simulated I/O, the WAL's fsync costs, and (for web
   experiments) the platform's simulated per-request CPU.  Absolute
   numbers are not comparable to the paper's testbed (16-core Xeon,
   RAID-5); the shapes are what the harness reproduces, and each table
   prints the paper's own numbers alongside. *)

module Db = Ifdb_core.Database
module Errors = Ifdb_core.Errors
module Label = Ifdb_difc.Label
module Value = Ifdb_rel.Value
module Tuple = Ifdb_rel.Tuple
module Buffer_pool = Ifdb_storage.Buffer_pool
module Wal = Ifdb_storage.Wal
module Span = Ifdb_obs.Span
module Rng = Ifdb_workload.Rng
module Gps = Ifdb_workload.Gps
module Cweb = Ifdb_workload.Cartel_web
module Tpcc = Ifdb_workload.Tpcc
module Cartel = Ifdb_cartel.Cartel
module Web = Ifdb_platform.Web
module Process = Ifdb_platform.Process
module Auth_cache = Ifdb_platform.Auth_cache

let quick = ref false

let now () = Unix.gettimeofday ()

let hr title = Printf.printf "\n=== %s ===\n%!" title

(* --json <path>: machine-readable results.  Experiments append flat
   records; the driver writes one JSON document at exit.  Values are
   already JSON-encoded ([jstr]/[jint]/[jfloat]). *)
let json_path : string option ref = ref None
let json_records : string list ref = ref []

let jstr s = Printf.sprintf "%S" s
let jint = string_of_int

let jfloat f =
  if Float.is_nan f then "null" else Printf.sprintf "%.6g" f

let record_json fields =
  json_records :=
    ("{"
    ^ String.concat ", "
        (List.map (fun (k, v) -> Printf.sprintf "%S: %s" k v) fields)
    ^ "}")
    :: !json_records

let write_json path =
  let oc = open_out path in
  Printf.fprintf oc
    "{\n  \"cores\": %d,\n  \"quick\": %b,\n  \"results\": [\n    %s\n  ]\n}\n"
    (Domain.recommended_domain_count ())
    !quick
    (String.concat ",\n    " (List.rev !json_records));
  close_out oc

(* Nested "metrics" object for --json records: the run's flow-check and
   write-path story as the observability registry tells it, so every
   record carries enough to cross-check its headline number.  Domain
   pool steals are process-wide and monotone, so each record reports
   the delta since the previous one. *)
let last_steals = ref 0.0

let metrics_json ?txns db =
  let snap = Db.metrics_snapshot db in
  let v name = Option.value (List.assoc_opt name snap) ~default:0.0 in
  (* statement-latency quantiles, interpolated from the histogram
     buckets; null while the histogram is empty *)
  let q name = Option.value (List.assoc_opt name snap) ~default:Float.nan in
  let hits = v "ifdb_flow_memo_hits_total" in
  let checks = hits +. v "ifdb_flow_memo_misses_total" in
  let fsyncs = v "ifdb_wal_fsyncs_total" in
  let steals = v "ifdb_domain_pool_steals_total" in
  let stolen = steals -. !last_steals in
  last_steals := steals;
  Printf.sprintf
    "{\"flow_checks\": %s, \"memo_hit_rate\": %s, \"fsyncs\": %s, \
     \"fsyncs_per_txn\": %s, \"morsels_stolen\": %s, \
     \"stmt_seconds_p50\": %s, \"stmt_seconds_p95\": %s, \
     \"stmt_seconds_p99\": %s}"
    (jfloat checks)
    (jfloat (if checks = 0.0 then Float.nan else hits /. checks))
    (jfloat fsyncs)
    (jfloat
       (match txns with
       | Some n when n > 0 -> fsyncs /. float_of_int n
       | _ -> Float.nan))
    (jfloat stolen)
    (jfloat (q "ifdb_statement_seconds_p50"))
    (jfloat (q "ifdb_statement_seconds_p95"))
    (jfloat (q "ifdb_statement_seconds_p99"))

(* simulated seconds accumulated in a database's pool + wal *)
let db_io_s db =
  float_of_int (Buffer_pool.io_ns (Db.pool db) + Wal.io_ns (Db.wal db)) /. 1e9

let reset_db_io db =
  Buffer_pool.reset_stats (Db.pool db);
  Wal.reset_stats (Db.wal db)

(* ------------------------------------------------------------------ *)
(* Figure 3: the CarTel request mix (workload input validation)        *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  hr "Figure 3: CarTel HTTP request mix (spec vs sampled)";
  let rng = Rng.create ~seed:303 in
  let samples = if !quick then 20_000 else 200_000 in
  let empirical = Cweb.empirical_mix rng ~samples in
  Printf.printf "%-18s %8s %10s\n" "request" "spec" "sampled";
  List.iter
    (fun (spec, req) ->
      Printf.printf "%-18s %8.2f %10.4f\n" (Cweb.path req) spec
        (List.assoc req empirical))
    Cweb.request_mix;
  Printf.printf "(%d samples)\n" samples

(* ------------------------------------------------------------------ *)
(* CarTel fixtures for Figures 4 and 5                                 *)
(* ------------------------------------------------------------------ *)

let build_cartel ~ifc ~capacity_pages ?miss_cost_ns ?base_cost_ns () =
  let users = if !quick then 6 else 12 in
  let t =
    Cartel.setup ~ifc ~if_platform:ifc ~users ~cars_per_user:2 ~capacity_pages
      ?miss_cost_ns ?base_cost_ns ()
  in
  let rng = Rng.create ~seed:404 in
  let cfg =
    {
      Gps.cars = users * 2;
      drives_per_car = (if !quick then 2 else 4);
      points_per_drive = (if !quick then 10 else 25);
      start_ts = 1_600_000_000;
    }
  in
  let points =
    List.map
      (fun p ->
        { p with Gps.car_id = ((p.Gps.car_id / 2) * 100) + (p.Gps.car_id mod 2) })
      (Gps.generate rng cfg)
  in
  Cartel.ingest_batch t points;
  (* some friendships so drives.php exercises delegations *)
  for u = 0 to users - 1 do
    Cartel.befriend t ~owner:u ~friend:((u + 1) mod users)
  done;
  t

let run_cartel_requests t rng ~requests =
  let users = Array.length t.Cartel.users in
  let ok = ref 0 and blocked = ref 0 and errors = ref 0 in
  for _ = 1 to requests do
    let user = Rng.int rng users in
    let req = Cweb.sample_request rng in
    let params =
      match req with
      | Cweb.Drives ->
          (* mostly own drives, sometimes a friend's *)
          if Rng.int rng 4 = 0 then
            [ ("target", string_of_int ((user + 1) mod users)) ]
          else []
      | Cweb.Get_cars | Cweb.Cars | Cweb.Drives_top | Cweb.Friends
      | Cweb.Edit_account ->
          []
    in
    let r = Cartel.request t ~path:(Cweb.path req) ~user ~params () in
    (match r.Web.status with
    | `Ok -> incr ok
    | `Blocked -> incr blocked
    | `Error -> incr errors)
  done;
  (!ok, !blocked, !errors)

(* ------------------------------------------------------------------ *)
(* Figure 4: CarTel web throughput                                     *)
(* ------------------------------------------------------------------ *)

(* The paper's two configurations saturate different resources: with
   three web servers the (disk-bound) database is the bottleneck; with
   one, the web tier's CPU is.  Each regime gets a fixture that makes
   the corresponding stage dominant: the db-bound one runs against a
   tiny buffer pool with RAID-era random-read latency; the web-bound
   one runs in memory behind a deliberately slow (interpreted-PHP-like)
   web tier.  Peak WIPS is the reciprocal of the slower stage. *)
let fig4_one ~ifc =
  let requests = if !quick then 400 else 1500 in
  let throughput t =
    let rng = Rng.create ~seed:42 in
    (* warm up, then measure *)
    ignore (run_cartel_requests t rng ~requests:(requests / 4));
    reset_db_io t.Cartel.db;
    Web.reset_stats t.Cartel.web;
    let t0 = now () in
    ignore (run_cartel_requests t rng ~requests);
    let wall = now () -. t0 in
    let db_time = wall +. db_io_s t.Cartel.db in
    let web_time = float_of_int (Web.sim_cpu_ns t.Cartel.web) /. 1e9 in
    (db_time /. float_of_int requests, web_time /. float_of_int requests)
  in
  (* db-bound: 3 web servers, database on slow disks *)
  let t_db =
    build_cartel ~ifc ~capacity_pages:(Some 16) ~miss_cost_ns:1_000_000 ()
  in
  let db_req, web_req = throughput t_db in
  let wips_db_bound = 1.0 /. Float.max db_req (web_req /. 3.0) in
  (* web-bound: 1 web server, in-memory database, slow web CPU *)
  let t_web =
    build_cartel ~ifc ~capacity_pages:None ~base_cost_ns:450_000 ()
  in
  let db_req, web_req = throughput t_web in
  let wips_web_bound = 1.0 /. Float.max db_req web_req in
  (wips_db_bound, wips_web_bound)

let fig4 () =
  hr "Figure 4: CarTel website throughput (web interactions per second)";
  let pg_db, pg_web = fig4_one ~ifc:false in
  let if_db, if_web = fig4_one ~ifc:true in
  Printf.printf "%-26s %18s %18s\n" "" "PostgreSQL + PHP" "IFDB + PHP-IF";
  Printf.printf "%-26s %18.1f %18.1f\n" "database-bound (3 web)" pg_db if_db;
  Printf.printf "%-26s %18.1f %18.1f\n" "web-server-bound (1 web)" pg_web if_web;
  Printf.printf
    "shape check: db-bound ratio %.3f (paper: 230.4/229.3 = 1.005); \
     web-bound ratio %.3f (paper: 103.5/132.0 = 0.784)\n"
    (if_db /. pg_db) (if_web /. pg_web)

(* ------------------------------------------------------------------ *)
(* Figure 5: per-script latency on an idle system                      *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  hr "Figure 5: CarTel web request latency on an idle system (ms)";
  let reps = if !quick then 40 else 200 in
  let scripts =
    [ "login.php"; "drives.php"; "cars.php"; "get_cars.php"; "drives_top.php";
      "edit_account.php"; "friends.php" ]
  in
  let weights =
    (* figure 3 weights for the weighted-mean increase (login excluded,
       as in the paper's workload table) *)
    [ ("get_cars.php", 0.50); ("cars.php", 0.30); ("drives.php", 0.08);
      ("drives_top.php", 0.08); ("friends.php", 0.03); ("edit_account.php", 0.01) ]
  in
  let measure ~ifc =
    let t = build_cartel ~ifc ~capacity_pages:None () in
    List.map
      (fun path ->
        Web.reset_stats t.Cartel.web;
        reset_db_io t.Cartel.db;
        let t0 = now () in
        for i = 1 to reps do
          ignore
            (Cartel.request t ~path ~user:(i mod Array.length t.Cartel.users) ())
        done;
        let wall = now () -. t0 in
        let total =
          wall +. db_io_s t.Cartel.db
          +. (float_of_int (Web.sim_cpu_ns t.Cartel.web) /. 1e9)
        in
        (path, total /. float_of_int reps *. 1e3))
      scripts
  in
  let base = measure ~ifc:false in
  let ifdb = measure ~ifc:true in
  Printf.printf "%-18s %14s %14s %8s\n" "script" "PG+PHP (ms)" "IFDB+PHP-IF" "delta";
  List.iter2
    (fun (path, b) (_, i) ->
      Printf.printf "%-18s %14.3f %14.3f %7.1f%%\n" path b i
        ((i /. b -. 1.0) *. 100.0))
    base ifdb;
  let weighted xs =
    List.fold_left (fun acc (path, w) -> acc +. (w *. List.assoc path xs)) 0.0 weights
  in
  let wb = weighted base and wi = weighted ifdb in
  Printf.printf
    "weighted mean: %.3f ms -> %.3f ms (+%.1f%%; paper reports +24%%)\n" wb wi
    ((wi /. wb -. 1.0) *. 100.0)

(* ------------------------------------------------------------------ *)
(* Section 8.2.2: sensor data processing throughput                    *)
(* ------------------------------------------------------------------ *)

let sensor () =
  hr "Section 8.2.2: sensor ingest throughput (measurements/second)";
  let cars = if !quick then 8 else 20 in
  let cfg =
    {
      Gps.cars;
      drives_per_car = (if !quick then 3 else 6);
      points_per_drive = (if !quick then 25 else 60);
      start_ts = 1_600_000_000;
    }
  in
  (* one measured run: fresh database, replay the trace, total = wall +
     simulated I/O.  The paper's ingest ran against a disk-backed
     store, so both engines get the same bounded pool. *)
  let one_run ~ifc =
    let t =
      Cartel.setup ~ifc ~if_platform:ifc ~users:cars ~cars_per_user:1
        ~capacity_pages:(Some 32) ~miss_cost_ns:1_000_000 ()
    in
    let rng = Rng.create ~seed:808 in
    let points =
      List.map
        (fun p -> { p with Gps.car_id = p.Gps.car_id * 100 })
        (Gps.generate rng cfg)
    in
    Gc.full_major ();
    reset_db_io t.Cartel.db;
    let t0 = now () in
    Cartel.ingest_batch t points;
    let total = now () -. t0 +. db_io_s t.Cartel.db in
    (float_of_int (List.length points) /. total, List.length points)
  in
  (* wall-clock noise is of the same order as the effect, so warm up
     and interleave repetitions, keeping each mode's best run *)
  ignore (one_run ~ifc:false);
  ignore (one_run ~ifc:true);
  let reps = if !quick then 2 else 4 in
  let best = Hashtbl.create 2 in
  let n = ref 0 in
  for _ = 1 to reps do
    List.iter
      (fun ifc ->
        let rate, count = one_run ~ifc in
        n := count;
        let cur = Option.value ~default:0.0 (Hashtbl.find_opt best ifc) in
        Hashtbl.replace best ifc (Float.max cur rate))
      [ false; true ]
  done;
  let pg = Hashtbl.find best false in
  let ifdb = Hashtbl.find best true in
  Printf.printf "PostgreSQL: %8.0f meas/s\nIFDB:       %8.0f meas/s\n" pg ifdb;
  Printf.printf
    "overhead: %.1f%% over %d measurements x %d reps (paper: 2479 vs 2439 = 1.6%%)\n"
    ((1.0 -. (ifdb /. pg)) *. 100.0)
    !n reps

(* ------------------------------------------------------------------ *)
(* Figure 6: DBT-2 (TPC-C) throughput vs tags per label                *)
(* ------------------------------------------------------------------ *)

let fig6_point ?(parallelism = 1) ?(commit_batch = 1) ?(prepared = false)
    ?(trace_sample = 0) ~tags ~capacity_pages ~txns ~config ~reps () =
  let db =
    Db.create ~capacity_pages ~parallelism ~commit_batch ~trace_sample ()
  in
  let admin = Db.connect_admin db in
  let bench_p = Db.create_principal admin ~name:"bench" in
  let s = Db.connect db ~principal:bench_p in
  let tag_list =
    List.init tags (fun i -> Db.create_tag s ~name:(Printf.sprintf "t%d" i) ())
  in
  List.iter (fun tag -> Db.add_secrecy s tag) tag_list;
  let rng = Rng.create ~seed:606 in
  Tpcc.create_schema s;
  Tpcc.populate s rng config;
  (* wall-clock noise swamps small in-memory effects: isolate the GC
     and keep the best of [reps] runs (simulated I/O is deterministic,
     so the disk-bound regime needs only one) *)
  let best = ref 0.0 in
  for _ = 1 to reps do
    Gc.compact ();
    reset_db_io db;
    let t0 = now () in
    let counts = Tpcc.run_mix ~prepared s rng config ~txns in
    let total = now () -. t0 +. db_io_s db in
    best := Float.max !best (float_of_int counts.Tpcc.new_orders /. total *. 60.0)
  done;
  (match Tpcc.consistency_check s config with
  | Ok () -> ()
  | Error e -> Printf.printf "  !! consistency: %s\n" e);
  (* the db rides along so callers can attach its metrics snapshot to
     their JSON records *)
  (!best, db)

let fig6_baseline ?(parallelism = 1) ~capacity_pages ~txns ~config ~reps () =
  let db = Db.create ~ifc:false ~capacity_pages ~parallelism () in
  let s = Db.connect_admin db in
  let rng = Rng.create ~seed:606 in
  Tpcc.create_schema s;
  Tpcc.populate s rng config;
  let best = ref 0.0 in
  for _ = 1 to reps do
    Gc.compact ();
    reset_db_io db;
    let t0 = now () in
    let counts = Tpcc.run_mix s rng config ~txns in
    let total = now () -. t0 +. db_io_s db in
    best := Float.max !best (float_of_int counts.Tpcc.new_orders /. total *. 60.0)
  done;
  !best

let fig6 () =
  hr "Figure 6: TPC-C (DBT-2) NOTPM vs tags per label";
  let txns = if !quick then 600 else 3000 in
  let mem_config =
    { Tpcc.warehouses = 2; districts = 4; customers = 60; items = 400 }
  in
  let disk_config =
    { Tpcc.warehouses = 2; districts = 4; customers = 80; items = 1200 }
  in
  let tag_points = if !quick then [ 0; 2; 6; 10 ] else [ 0; 1; 2; 4; 6; 8; 10 ] in
  let run_regime name ~capacity_pages ~config ~reps =
    Printf.printf "\n-- %s --\n%!" name;
    let baseline = fig6_baseline ~capacity_pages ~txns ~config ~reps () in
    Printf.printf "%-16s %10.0f NOTPM\n%!" "PostgreSQL" baseline;
    let points =
      List.map
        (fun tags ->
          let notpm, _db =
            fig6_point ~tags ~capacity_pages ~txns ~config ~reps ()
          in
          (tags, notpm))
        tag_points
    in
    let zero =
      match points with (0, y) :: _ -> y | _ -> baseline
    in
    List.iter
      (fun (tags, notpm) ->
        Printf.printf
          "IFDB tags = %-3d %10.0f NOTPM (%.1f%% of 0-tag IFDB, %.1f%% of baseline)\n%!"
          tags notpm
          (notpm /. zero *. 100.0)
          (notpm /. baseline *. 100.0))
      points;
    (* least-squares per-tag slope, as a % of the fit's 0-tag intercept *)
    let n = float_of_int (List.length points) in
    let sx = List.fold_left (fun a (x, _) -> a +. float_of_int x) 0.0 points in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 points in
    let sxy =
      List.fold_left (fun a (x, y) -> a +. (float_of_int x *. y)) 0.0 points
    in
    let sxx =
      List.fold_left (fun a (x, _) -> a +. (float_of_int x ** 2.0)) 0.0 points
    in
    let slope = ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx)) in
    let y0 = (sy -. (slope *. sx)) /. n in
    Printf.printf "per-tag cost: %.2f%% of throughput per tag\n"
      (-.slope /. y0 *. 100.0);
    -.slope /. y0 *. 100.0
  in
  let mem_slope =
    run_regime "in-memory (unbounded buffer pool)" ~capacity_pages:None
      ~config:mem_config
      ~reps:(if !quick then 2 else 3)
  in
  let disk_slope =
    run_regime "disk-bound (small buffer pool)" ~capacity_pages:(Some 48)
      ~config:disk_config ~reps:1
  in
  Printf.printf
    "\nshape check: paper reports ~0.6%%/tag in-memory and ~1%%/tag on-disk; \
     measured %.2f%%/tag and %.2f%%/tag (disk steeper: %b)\n"
    mem_slope disk_slope
    (disk_slope > mem_slope)

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation_auth_cache () =
  hr "Ablation: the platform authority cache (paper section 7.2)";
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let alice = Db.create_principal admin ~name:"alice" in
  let alice_s = Db.connect db ~principal:alice in
  (* a deep-ish delegation chain makes the uncached check expensive *)
  let tag = Db.create_tag alice_s ~name:"t" () in
  let chain = ref alice in
  for i = 1 to 6 do
    let p = Db.create_principal admin ~name:(Printf.sprintf "p%d" i) in
    let prev_s = Db.connect db ~principal:!chain in
    Db.delegate prev_s ~tag ~grantee:p;
    chain := p
  done;
  let final = !chain in
  let reps = if !quick then 20_000 else 200_000 in
  let run ~enabled =
    let cache = Auth_cache.create ~enabled (Db.authority db) in
    let t0 = now () in
    for _ = 1 to reps do
      ignore (Auth_cache.has_authority cache final tag)
    done;
    now () -. t0
  in
  let cold = run ~enabled:false in
  let warm = run ~enabled:true in
  Printf.printf
    "%d release checks: uncached %.3fs, cached %.3fs (speedup %.1fx)\n" reps
    cold warm (cold /. warm)

let ablation_exact_label () =
  hr "Ablation: exact-label filters vs plain confinement scans";
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let p = Db.create_principal admin ~name:"p" in
  let s = Db.connect db ~principal:p in
  let _t1 = Db.create_tag s ~name:"x1" () in
  let _t2 = Db.create_tag s ~name:"x2" () in
  ignore (Db.exec s "CREATE TABLE T (k INT, v INT)");
  let rows = if !quick then 2_000 else 10_000 in
  ignore (Db.exec s "PERFORM addsecrecy(x1)");
  ignore (Db.exec s "BEGIN");
  for i = 1 to rows / 2 do
    ignore (Db.exec s (Printf.sprintf "INSERT INTO T VALUES (%d, %d)" i i))
  done;
  ignore (Db.exec s "COMMIT");
  ignore (Db.exec s "PERFORM addsecrecy(x2)");
  ignore (Db.exec s "BEGIN");
  for i = 1 to rows / 2 do
    ignore (Db.exec s (Printf.sprintf "INSERT INTO T VALUES (%d, %d)" (i + rows) i))
  done;
  ignore (Db.exec s "COMMIT");
  let time q =
    let t0 = now () in
    for _ = 1 to 20 do
      ignore (Db.query s q)
    done;
    (now () -. t0) /. 20.0 *. 1e3
  in
  let plain = time "SELECT COUNT(*) FROM T" in
  let exact = time "SELECT COUNT(*) FROM T WHERE _label = {x1}" in
  Printf.printf
    "scan of %d rows: plain %.3f ms, exact-label filter %.3f ms (%+.0f%%)\n"
    rows plain exact
    ((exact /. plain -. 1.0) *. 100.0)

let ablation_clearance () =
  hr "Ablation: clearance-rule checks under Serializable isolation";
  (* interleave the two modes so allocator/GC drift hits both equally *)
  let mk iso =
    let db = Db.create ~isolation:iso () in
    let admin = Db.connect_admin db in
    let p = Db.create_principal admin ~name:"p" in
    let s = Db.connect db ~principal:p in
    let tag = Db.create_tag s ~name:"t" () in
    ignore (Db.exec s "CREATE TABLE T (a INT)");
    (s, tag)
  in
  let si_s, si_tag = mk Db.Snapshot in
  let ser_s, ser_tag = mk Db.Serializable in
  let reps = if !quick then 2_000 else 10_000 in
  let measure (s, tag) =
    Gc.full_major ();
    let t0 = now () in
    for _ = 1 to reps do
      ignore (Db.exec s "BEGIN");
      Db.add_secrecy s tag;
      ignore (Db.exec s "INSERT INTO T VALUES (1)");
      Db.declassify s tag;
      ignore (Db.exec s "COMMIT")
    done;
    (now () -. t0) /. float_of_int reps *. 1e6
  in
  let si = ref infinity and ser = ref infinity in
  for _ = 1 to 3 do
    si := Float.min !si (measure (si_s, si_tag));
    ser := Float.min !ser (measure (ser_s, ser_tag))
  done;
  Printf.printf
    "label-raising transaction: snapshot %.2f us, serializable %.2f us \
     (clearance overhead %+.1f%%; the check is one authority lookup per \
     raise, expected near zero)\n"
    !si !ser
    ((!ser /. !si -. 1.0) *. 100.0)

let ablation_join_strategy () =
  hr "Ablation: join strategies (index nested loop vs hash vs nested loop)";
  let db = Db.create ~ifc:false () in
  let s = Db.connect_admin db in
  ignore (Db.exec s "CREATE TABLE big (k INT PRIMARY KEY, g INT, v INT)");
  ignore (Db.exec s "CREATE TABLE sel (k INT PRIMARY KEY, w INT)");
  let rows = if !quick then 2_000 else 8_000 in
  ignore (Db.exec s "BEGIN");
  for k = 0 to rows - 1 do
    ignore
      (Db.exec s
         (Printf.sprintf "INSERT INTO big VALUES (%d, %d, %d)" k (k mod 50) k))
  done;
  for k = 0 to 49 do
    ignore (Db.exec s (Printf.sprintf "INSERT INTO sel VALUES (%d, %d)" k k))
  done;
  ignore (Db.exec s "COMMIT");
  let time q =
    let t0 = now () in
    for _ = 1 to 30 do
      ignore (Db.query s q)
    done;
    (now () -. t0) /. 30.0 *. 1e3
  in
  (* INL: probe big's pk per sel row *)
  let inl = time "SELECT COUNT(*) FROM sel JOIN big ON big.k = sel.k" in
  (* hash: equi pair intact, probe defeated by the non-indexed column *)
  let hash = time "SELECT COUNT(*) FROM sel JOIN big ON big.v = sel.k" in
  (* nested loop: no equi pair at all *)
  let nested = time "SELECT COUNT(*) FROM sel JOIN big ON big.k + 0 = sel.k + 0" in
  Printf.printf
    "50-row driver joined to %d rows: index-nested-loop %.3f ms, hash %.3f      ms, nested loop %.3f ms
"
    rows inl hash nested

let ablation_labelcache () =
  hr "Ablation: label interning + memoized flow checks (labelcache)";
  let module Label_store = Ifdb_difc.Label_store in
  let rows = if !quick then 2_000 else 10_000 in
  let groups = 16 in
  let scans = if !quick then 10 else 30 in
  (* CarTel-shaped data: rows partitioned over [groups] user tags, each
     a member of one covering compound; the analyst reads under the
     compound, so every confinement check is a real flow derivation
     (member -> compound), not a subset test. *)
  let build ~ifc ~label_cache =
    let db = Db.create ~ifc ~label_cache () in
    let admin = Db.connect_admin db in
    let all_drives = Db.create_tag admin ~name:"all_drives" () in
    let users =
      Array.init groups (fun i ->
          Db.create_tag admin
            ~name:(Printf.sprintf "user%d" i)
            ~compounds:[ all_drives ] ())
    in
    ignore (Db.exec admin "CREATE TABLE drives (id INT PRIMARY KEY, mi INT)");
    Array.iteri
      (fun g tag ->
        let w = Db.connect_admin db in
        if ifc then Db.add_secrecy w tag;
        ignore (Db.exec w "BEGIN");
        let per = rows / groups in
        for i = 0 to per - 1 do
          let id = (g * per) + i in
          ignore
            (Db.exec w
               (Printf.sprintf "INSERT INTO drives VALUES (%d, %d)" id
                  (id mod 97)))
        done;
        ignore (Db.exec w "COMMIT"))
      users;
    let analyst = Db.connect_admin db in
    if ifc then Db.add_secrecy analyst all_drives;
    (db, analyst)
  in
  let measure (db, analyst) =
    (* first scan pays the per-group flow derivations; time steady
       state, best of 3 rounds to shed scheduler/GC noise *)
    ignore (Db.query analyst "SELECT COUNT(*) FROM drives");
    Label_store.reset_stats (Db.label_store db);
    let per_scan_ms = ref infinity in
    for _ = 1 to 3 do
      Gc.full_major ();
      let t0 = now () in
      for _ = 1 to scans do
        ignore (Db.query analyst "SELECT COUNT(*) FROM drives")
      done;
      per_scan_ms :=
        Float.min !per_scan_ms ((now () -. t0) /. float_of_int scans *. 1e3)
    done;
    let per_scan_ms = !per_scan_ms in
    let st = Label_store.stats (Db.label_store db) in
    let probes = st.Label_store.flow_hits + st.Label_store.flow_misses in
    let hit_rate =
      if probes = 0 then Float.nan
      else float_of_int st.Label_store.flow_hits /. float_of_int probes
    in
    (per_scan_ms, hit_rate, st.Label_store.interned)
  in
  let off = measure (build ~ifc:false ~label_cache:true) in
  let cached = measure (build ~ifc:true ~label_cache:true) in
  let uncached = measure (build ~ifc:true ~label_cache:false) in
  let throughput (ms, _, _) = float_of_int rows /. ms *. 1e3 /. 1e6 in
  let line name (ms, hit, interned) =
    Printf.printf "%-28s %10.3f %10.2f %9s %9d\n" name ms
      (throughput (ms, hit, interned))
      (if Float.is_nan hit then "-" else Printf.sprintf "%.1f%%" (hit *. 100.0))
      interned
  in
  Printf.printf "%d rows, %d label groups, %d scans each\n%-28s %10s %10s %9s %9s\n"
    rows groups scans "config" "ms/scan" "Mrows/s" "hit rate" "labels";
  line "ifc off (baseline)" off;
  line "ifc on, flow cache" cached;
  line "ifc on, no flow cache" uncached;
  let ms (m, _, _) = m in
  Printf.printf
    "IFC-on overhead vs baseline: %.2fx cached, %.2fx uncached (acceptance: \
     within 2x)\n"
    (ms cached /. ms off)
    (ms uncached /. ms off)

(* The observability acceptance bound: the labelcache scan workload —
   IFC on, every row through a confinement check, the densest
   instrument traffic a read gets — must run within 5% of the same
   workload on a registry-disabled database.  The statement path's only
   always-on costs are one [Atomic.incr], one histogram observe and two
   clock reads per statement, all no-ops when the registry is off. *)
let ablation_metrics () =
  hr "Ablation: metrics registry on vs off (observability overhead)";
  let rows = if !quick then 2_000 else 10_000 in
  let groups = 16 in
  let scans = if !quick then 10 else 30 in
  let build ~metrics =
    let db = Db.create ~metrics () in
    let admin = Db.connect_admin db in
    let all_drives = Db.create_tag admin ~name:"all_drives" () in
    let users =
      Array.init groups (fun i ->
          Db.create_tag admin
            ~name:(Printf.sprintf "user%d" i)
            ~compounds:[ all_drives ] ())
    in
    ignore (Db.exec admin "CREATE TABLE drives (id INT PRIMARY KEY, mi INT)");
    Array.iteri
      (fun g tag ->
        let w = Db.connect_admin db in
        Db.add_secrecy w tag;
        ignore (Db.exec w "BEGIN");
        let per = rows / groups in
        for i = 0 to per - 1 do
          let id = (g * per) + i in
          ignore
            (Db.exec w
               (Printf.sprintf "INSERT INTO drives VALUES (%d, %d)" id
                  (id mod 97)))
        done;
        ignore (Db.exec w "COMMIT"))
      users;
    let analyst = Db.connect_admin db in
    Db.add_secrecy analyst all_drives;
    (db, analyst)
  in
  let round (_db, analyst) =
    Gc.full_major ();
    let t0 = now () in
    for _ = 1 to scans do
      ignore (Db.query analyst "SELECT COUNT(*) FROM drives")
    done;
    (now () -. t0) /. float_of_int scans *. 1e3
  in
  let on_fix = build ~metrics:true in
  let off_fix = build ~metrics:false in
  (* warm both, then interleave rounds so allocator/GC drift hits both
     equally; keep each mode's best *)
  ignore (round on_fix);
  ignore (round off_fix);
  let on_ms = ref infinity and off_ms = ref infinity in
  for _ = 1 to 4 do
    on_ms := Float.min !on_ms (round on_fix);
    off_ms := Float.min !off_ms (round off_fix)
  done;
  let overhead = ((!on_ms /. !off_ms) -. 1.0) *. 100.0 in
  Printf.printf
    "%d-row labeled scan x %d: metrics off %.3f ms, metrics on %.3f ms \
     (%+.1f%%; acceptance <= 5%%: %b)\n"
    rows scans !off_ms !on_ms overhead (overhead <= 5.0);
  record_json
    [
      ("workload", jstr "metrics_ablation");
      ("rows", jint rows);
      ("scans", jint scans);
      ("ms_per_scan_metrics_off", jfloat !off_ms);
      ("ms_per_scan_metrics_on", jfloat !on_ms);
      ("overhead_pct", jfloat overhead);
      ("metrics", metrics_json (fst on_fix));
    ]

(* ------------------------------------------------------------------ *)
(* Parallel execution: domain-count sweep                              *)
(* ------------------------------------------------------------------ *)

let parallel_sweep () =
  hr "Parallel execution: morsel-driven scans, domain-count sweep";
  let module Label_store = Ifdb_difc.Label_store in
  let rows = if !quick then 10_000 else 60_000 in
  let groups = 16 in
  let scans = if !quick then 5 else 12 in
  (* the labelcache workload, scaled up: rows over [groups] user tags
     (each in one covering compound), an analyst scanning under the
     compound — the scan-heavy CarTel shape, where every row passes a
     real confinement check *)
  let build ~parallelism =
    let db = Db.create ~parallelism () in
    let admin = Db.connect_admin db in
    let all_drives = Db.create_tag admin ~name:"all_drives" () in
    let users =
      Array.init groups (fun i ->
          Db.create_tag admin
            ~name:(Printf.sprintf "user%d" i)
            ~compounds:[ all_drives ] ())
    in
    ignore (Db.exec admin "CREATE TABLE drives (id INT PRIMARY KEY, mi INT)");
    Array.iteri
      (fun g tag ->
        let w = Db.connect_admin db in
        Db.add_secrecy w tag;
        ignore (Db.exec w "BEGIN");
        let per = rows / groups in
        let i = ref 0 in
        while !i < per do
          let n = min 500 (per - !i) in
          let values =
            String.concat ", "
              (List.init n (fun j ->
                   let id = (g * per) + !i + j in
                   Printf.sprintf "(%d, %d)" id (id mod 97)))
          in
          ignore (Db.exec w ("INSERT INTO drives VALUES " ^ values));
          i := !i + n
        done;
        ignore (Db.exec w "COMMIT"))
      users;
    let analyst = Db.connect_admin db in
    Db.add_secrecy analyst all_drives;
    (db, analyst)
  in
  let queries =
    [
      ("count", "SELECT COUNT(*) FROM drives");
      ("filter_sum", "SELECT SUM(mi) FROM drives WHERE mi < 48");
      ("group_by", "SELECT mi, COUNT(*) FROM drives GROUP BY mi");
    ]
  in
  let domain_counts = [ 1; 2; 4; 8 ] in
  Printf.printf "%d rows over %d label groups; available cores: %d\n" rows
    groups
    (Domain.recommended_domain_count ());
  Printf.printf "%-12s %8s %12s %12s %10s\n" "query" "domains" "ms/scan"
    "Mrows/s" "vs 1-dom";
  let base : (string, float) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun domains ->
      let db, analyst = build ~parallelism:domains in
      List.iter
        (fun (qname, q) ->
          ignore (Db.query analyst q);
          (* warm: label verdicts, domain-local memos *)
          Label_store.reset_stats (Db.label_store db);
          Buffer_pool.reset_stats (Db.pool db);
          let best = ref infinity in
          for _ = 1 to 3 do
            Gc.full_major ();
            let t0 = now () in
            for _ = 1 to scans do
              ignore (Db.query analyst q)
            done;
            best :=
              Float.min !best ((now () -. t0) /. float_of_int scans *. 1e3)
          done;
          let ms = !best in
          if domains = 1 then Hashtbl.replace base qname ms;
          let speedup = Hashtbl.find base qname /. ms in
          let st = Label_store.stats (Db.label_store db) in
          let bp = Buffer_pool.stats (Db.pool db) in
          Printf.printf "%-12s %8d %12.3f %12.2f %9.2fx\n%!" qname domains ms
            (float_of_int rows /. ms /. 1e3)
            speedup;
          record_json
            [
              ("workload", jstr "cartel_scan");
              ("regime", jstr "in_memory");
              ("query", jstr qname);
              ("domains", jint domains);
              ("rows", jint rows);
              ("ms_per_scan", jfloat ms);
              ("throughput_rows_per_s", jfloat (float_of_int rows /. ms *. 1e3));
              ("speedup_vs_serial", jfloat speedup);
              ("io_ns", jint (Buffer_pool.io_ns (Db.pool db)));
              ("flow_hits", jint st.Label_store.flow_hits);
              ("flow_misses", jint st.Label_store.flow_misses);
              ("bp_hits", jint bp.Buffer_pool.hits);
              ("bp_misses", jint bp.Buffer_pool.misses);
              ("metrics", metrics_json db);
            ])
        queries)
    domain_counts;
  (* fig6 in-memory TPC-C under the same sweep: the transaction mix is
     point-query and write heavy, so its scans rarely clear the morsel
     threshold — included to show the knob is safe on OLTP, not to
     claim speedup there *)
  let txns = if !quick then 300 else 1200 in
  let config =
    { Tpcc.warehouses = 2; districts = 4; customers = 60; items = 400 }
  in
  Printf.printf "\nTPC-C in-memory, tags=2:\n%-8s %12s\n" "domains" "NOTPM";
  List.iter
    (fun domains ->
      let notpm, pdb =
        fig6_point ~parallelism:domains ~tags:2 ~capacity_pages:None ~txns
          ~config ~reps:2 ()
      in
      Printf.printf "%-8d %12.0f\n%!" domains notpm;
      record_json
        [
          ("workload", jstr "tpcc");
          ("regime", jstr "in_memory");
          ("query", jstr "mix");
          ("domains", jint domains);
          ("tags", jint 2);
          ("notpm", jfloat notpm);
          ("metrics", metrics_json ~txns pdb);
        ])
    domain_counts;
  Printf.printf
    "note: speedup is bounded by physical cores (%d here); on one core the \
     sweep verifies correctness and barrier overhead, not scaling\n"
    (Domain.recommended_domain_count ())

(* ------------------------------------------------------------------ *)
(* Write path: group commit and batched inserts (PR 3)                 *)
(* ------------------------------------------------------------------ *)

(* The paper's sensor-ingest experiment (section 8.2.2) is write-bound:
   every GPS point is one INSERT, and on the paper's RAID-5 testbed the
   commit fsync dominates.  This experiment sweeps the two write-path
   levers: the group-commit coalescing degree (how many commit records
   share one fsync) and the statement batch size (how many rows share
   one Write-Rule pass, one WAL append and one index descent). *)
let writepath () =
  hr "Write path: group commit + batched inserts (paper section 8.2.2)";
  let module Label_store = Ifdb_difc.Label_store in
  (* --- group commit: single-insert transactions, swept coalescing --- *)
  let txns = if !quick then 500 else 4000 in
  Printf.printf
    "\n-- group commit: %d single-insert transactions (CarTel ingest shape) --\n"
    txns;
  Printf.printf "%-10s %10s %12s %16s %12s\n" "coalesce" "fsyncs" "fsyncs/txn"
    "wal io_ns/txn" "txns/s";
  let solo_io = ref 0.0 in
  List.iter
    (fun degree ->
      let db = Db.create ~commit_batch:degree () in
      let s = Db.connect_admin db in
      ignore (Db.exec s "CREATE TABLE obs (id INT PRIMARY KEY, car INT, mi INT)");
      Gc.full_major ();
      reset_db_io db;
      let t0 = now () in
      for i = 0 to txns - 1 do
        ignore
          (Db.exec s
             (Printf.sprintf "INSERT INTO obs VALUES (%d, %d, %d)" i (i mod 16)
                (i mod 97)))
      done;
      Db.flush_wal db;
      let wall = now () -. t0 in
      let st = Wal.stats (Db.wal db) in
      let io_ns = Wal.io_ns (Db.wal db) in
      let per_txn = float_of_int io_ns /. float_of_int txns in
      if degree = 1 then solo_io := per_txn;
      let fsyncs_per_txn = float_of_int st.Wal.fsyncs /. float_of_int txns in
      let rate = float_of_int txns /. (wall +. (float_of_int io_ns /. 1e9)) in
      Printf.printf "%-10d %10d %12.3f %16.0f %12.0f\n%!" degree st.Wal.fsyncs
        fsyncs_per_txn per_txn rate;
      record_json
        [
          ("workload", jstr "writepath_coalesce");
          ("coalesce", jint degree);
          ("txns", jint txns);
          ("fsyncs", jint st.Wal.fsyncs);
          ("fsyncs_per_txn", jfloat fsyncs_per_txn);
          ("wal_io_ns_per_txn", jfloat per_txn);
          ("txns_per_s", jfloat rate);
          ("io_reduction_vs_solo", jfloat (!solo_io /. per_txn));
          ("metrics", metrics_json ~txns db);
        ];
      if degree = 8 then
        Printf.printf
          "acceptance: coalesce 8 -> %.3f fsyncs/txn (< 0.2: %b), io_ns/txn \
           %.1fx lower than solo (>= 5x: %b)\n"
          fsyncs_per_txn (fsyncs_per_txn < 0.2) (!solo_io /. per_txn)
          (!solo_io /. per_txn >= 5.0))
    [ 1; 2; 4; 8 ];
  (* --- statement batching: multi-row INSERT over labeled groups --- *)
  let rows = if !quick then 2_000 else 10_000 in
  let groups = 8 in
  Printf.printf
    "\n-- batched inserts: %d rows over %d per-car label groups --\n" rows
    groups;
  Printf.printf "%-10s %10s %14s %12s %12s\n" "batch" "fsyncs" "flow probes"
    "io_ns/row" "rows/s";
  let solo_row_io = ref 0.0 in
  List.iter
    (fun batch ->
      let db = Db.create () in
      let admin = Db.connect_admin db in
      ignore
        (Db.exec admin "CREATE TABLE obs (id INT PRIMARY KEY, car INT, mi INT)");
      let tags =
        Array.init groups (fun i ->
            Db.create_tag admin ~name:(Printf.sprintf "car%d" i) ())
      in
      Gc.full_major ();
      reset_db_io db;
      Label_store.reset_stats (Db.label_store db);
      let t0 = now () in
      Array.iteri
        (fun g tag ->
          let w = Db.connect_admin db in
          Db.add_secrecy w tag;
          let per = rows / groups in
          let i = ref 0 in
          while !i < per do
            let n = min batch (per - !i) in
            let values =
              String.concat ", "
                (List.init n (fun j ->
                     let id = (g * per) + !i + j in
                     Printf.sprintf "(%d, %d, %d)" id g (id mod 97)))
            in
            ignore (Db.exec w ("INSERT INTO obs VALUES " ^ values));
            i := !i + n
          done)
        tags;
      Db.flush_wal db;
      let wall = now () -. t0 in
      let st = Wal.stats (Db.wal db) in
      let lst = Label_store.stats (Db.label_store db) in
      let probes = lst.Label_store.flow_hits + lst.Label_store.flow_misses in
      let io_per_row =
        float_of_int (Wal.io_ns (Db.wal db)) /. float_of_int rows
      in
      if batch = 1 then solo_row_io := io_per_row;
      let rate = float_of_int rows /. (wall +. db_io_s db) in
      Printf.printf "%-10d %10d %14d %12.0f %12.0f\n%!" batch st.Wal.fsyncs
        probes io_per_row rate;
      record_json
        [
          ("workload", jstr "writepath_batch");
          ("batch", jint batch);
          ("rows", jint rows);
          ("label_groups", jint groups);
          ("fsyncs", jint st.Wal.fsyncs);
          ("flow_probes", jint probes);
          ("wal_io_ns_per_row", jfloat io_per_row);
          ("rows_per_s", jfloat rate);
          ("io_reduction_vs_row_at_a_time", jfloat (!solo_row_io /. io_per_row));
          ("metrics", metrics_json db);
        ])
    [ 1; 10; 200 ];
  (* --- TPC-C New-Order under group commit --- *)
  let tpcc_txns = if !quick then 300 else 1500 in
  let config =
    { Tpcc.warehouses = 2; districts = 4; customers = 60; items = 400 }
  in
  Printf.printf "\nTPC-C in-memory, tags=2, group-commit sweep:\n%-10s %12s\n"
    "coalesce" "NOTPM";
  List.iter
    (fun degree ->
      let notpm, pdb =
        fig6_point ~commit_batch:degree ~tags:2 ~capacity_pages:None
          ~txns:tpcc_txns ~config ~reps:2 ()
      in
      Printf.printf "%-10d %12.0f\n%!" degree notpm;
      record_json
        [
          ("workload", jstr "writepath_tpcc");
          ("regime", jstr "in_memory");
          ("coalesce", jint degree);
          ("tags", jint 2);
          ("notpm", jfloat notpm);
          ("metrics", metrics_json ~txns:tpcc_txns pdb);
        ])
    [ 1; 8 ];
  Printf.printf
    "\npaper section 8.2.2 reports 2479 (PostgreSQL) vs 2439 (IFDB) meas/s \
     on RAID-5: ingest is fsync-bound, which is the regime group commit \
     and statement batching recover\n"

(* ------------------------------------------------------------------ *)
(* Incremental view maintenance: crossover vs recompute-per-read       *)
(* ------------------------------------------------------------------ *)

(* A CarTel-shaped declassifying aggregate — per-car mileage totals
   over labeled telemetry, read by a public analyst — under read:write
   mixes from read-heavy (the website) to write-heavy (ingest).  The
   same view body runs twice per mix: MATERIALIZED (commit-time deltas)
   and plain (recompute per read).  Reads and writes are timed
   separately so the two acceptance numbers fall out directly:
   read speedup at 100:1 and write-path overhead at 1:1. *)
let views () =
  hr "Incremental view maintenance: materialized vs recompute-per-read";
  let cars = 8 in
  let base_rows = if !quick then 800 else 4000 in
  let mixes =
    (* (label, reads, writes) *)
    if !quick then [ ("100:1", 1000, 10); ("10:1", 500, 50); ("1:1", 400, 400) ]
    else [ ("100:1", 5000, 50); ("10:1", 2000, 200); ("1:1", 1500, 1500) ]
  in
  let tag_list =
    String.concat ", " (List.init cars (Printf.sprintf "car%d"))
  in
  let run ~materialized (mix, reads, writes) =
    let db = Db.create () in
    let admin = Db.connect_admin db in
    ignore
      (Db.exec admin "CREATE TABLE obs (id INT PRIMARY KEY, car INT, mi INT)");
    let tags =
      Array.init cars (fun i ->
          Db.create_tag admin ~name:(Printf.sprintf "car%d" i) ())
    in
    (* labeled base load: one writer session per car *)
    let writers =
      Array.map
        (fun tag ->
          let w = Db.connect_admin db in
          Db.add_secrecy w tag;
          w)
        tags
    in
    let next_id = ref 0 in
    let insert_row () =
      let id = !next_id in
      incr next_id;
      let car = id mod cars in
      ignore
        (Db.exec writers.(car)
           (Printf.sprintf "INSERT INTO obs VALUES (%d, %d, %d)" id car
              (id mod 97)))
    in
    for _ = 1 to base_rows do
      insert_row ()
    done;
    ignore
      (Db.exec admin
         (Printf.sprintf
            "CREATE %sVIEW fleet AS SELECT car, COUNT(*) AS n, SUM(mi) AS \
             total FROM obs GROUP BY car WITH DECLASSIFYING (%s)"
            (if materialized then "MATERIALIZED " else "")
            tag_list));
    let analyst =
      Db.connect db ~principal:(Db.create_principal admin ~name:"analyst")
    in
    (* interleave: spread the writes evenly through the read stream *)
    Gc.full_major ();
    let t_read = ref 0.0 and t_write = ref 0.0 in
    let reads_done = ref 0 and writes_done = ref 0 in
    let total = reads + writes in
    for op = 0 to total - 1 do
      (* Bresenham-style interleave keeps the mix steady throughout *)
      let want_writes = (op + 1) * writes / total in
      if !writes_done < want_writes then begin
        let t0 = now () in
        insert_row ();
        t_write := !t_write +. (now () -. t0);
        incr writes_done
      end
      else begin
        let t0 = now () in
        ignore (Db.query analyst "SELECT * FROM fleet");
        t_read := !t_read +. (now () -. t0);
        incr reads_done
      end
    done;
    let read_us = !t_read /. float_of_int (max 1 !reads_done) *. 1e6 in
    let write_us = !t_write /. float_of_int (max 1 !writes_done) *. 1e6 in
    let served, recomputed, deltas =
      match Db.view_stats db with
      | s :: _ ->
          Ifdb_engine.Ivm.(s.vs_served, s.vs_recomputes, s.vs_deltas)
      | [] -> (0, !reads_done, 0) (* plain view: every read recomputes *)
    in
    Printf.printf "%-6s %-12s %12.1f %12.1f %10d %10d %10d\n%!" mix
      (if materialized then "materialized" else "plain")
      read_us write_us served recomputed deltas;
    record_json
      [
        ("workload", jstr "views");
        ("mix", jstr mix);
        ("materialized", if materialized then "true" else "false");
        ("reads", jint !reads_done);
        ("writes", jint !writes_done);
        ("base_rows", jint base_rows);
        ("read_us", jfloat read_us);
        ("write_us", jfloat write_us);
        ("reads_served_incremental", jint served);
        ("reads_recomputed", jint recomputed);
        ("deltas_applied", jint deltas);
        ("metrics", metrics_json ~txns:(base_rows + !writes_done) db);
      ];
    (read_us, write_us)
  in
  Printf.printf "%-6s %-12s %12s %12s %10s %10s %10s\n" "mix" "view" "read_us"
    "write_us" "served" "recomp" "deltas";
  let results =
    List.map
      (fun mix ->
        let plain = run ~materialized:false mix in
        let mat = run ~materialized:true mix in
        (mix, plain, mat))
      mixes
  in
  let speedup_at m =
    match
      List.find_opt (fun ((mix, _, _), _, _) -> mix = m) results
    with
    | Some (_, (pr, _), (mr, _)) -> pr /. mr
    | None -> Float.nan
  in
  let overhead_at m =
    match
      List.find_opt (fun ((mix, _, _), _, _) -> mix = m) results
    with
    | Some (_, (_, pw), (_, mw)) -> (mw -. pw) /. pw
    | None -> Float.nan
  in
  let speedup = speedup_at "100:1" in
  let overhead = overhead_at "1:1" in
  Printf.printf
    "\nacceptance: read speedup at 100:1 = %.1fx (>= 10x: %b); write \
     overhead at 1:1 = %+.1f%% (<= 15%%: %b)\n"
    speedup (speedup >= 10.0) (overhead *. 100.0) (overhead <= 0.15);
  record_json
    [
      ("workload", jstr "views_acceptance");
      ("read_speedup_100_1", jfloat speedup);
      ("write_overhead_1_1", jfloat overhead);
    ]

let ablations () =
  ablation_auth_cache ();
  ablation_exact_label ();
  ablation_clearance ();
  ablation_join_strategy ()

(* ------------------------------------------------------------------ *)
(* Label-sharded storage: partition pruning by construction (PR 7)     *)
(* ------------------------------------------------------------------ *)

(* CarTel-shaped multi-label scans under both storage layouts.  The
   flat layout decides the confinement verdict per tuple (memoized per
   label, but still one probe per row); the partitioned layout decides
   it once per label partition and never visits pruned pages.  Two
   reader shapes bracket the design space:

   - [own]: a single user reading their own telemetry — the website's
     dominant query.  Under partitioning the scan touches 1/groups of
     the heap; pruning does all the work, so this is where partitioned
     must beat flat even at parallelism 1.
   - [fleet]: an analyst under the covering compound reading every
     partition — the worst case for partitioning (nothing prunes, the
     k-way merge is pure overhead), included honestly.

   Swept over partition count x domains, layouts interleaved per cell
   so allocator drift hits both equally. *)
let partition_sweep () =
  hr "Label-sharded storage: partition-count x domain sweep (PR 7)";
  let rows = if !quick then 8_000 else 40_000 in
  let scans = if !quick then 6 else 15 in
  let group_counts = if !quick then [ 4; 16 ] else [ 4; 16; 64 ] in
  let domain_counts = if !quick then [ 1; 2 ] else [ 1; 2; 4 ] in
  let build ~partitioned ~parallelism ~groups =
    let db = Db.create ~partitioned ~parallelism () in
    let admin = Db.connect_admin db in
    let all_drives = Db.create_tag admin ~name:"all_drives" () in
    let users =
      Array.init groups (fun i ->
          Db.create_tag admin
            ~name:(Printf.sprintf "user%d" i)
            ~compounds:[ all_drives ] ())
    in
    ignore (Db.exec admin "CREATE TABLE drives (id INT PRIMARY KEY, mi INT)");
    Array.iteri
      (fun g tag ->
        let w = Db.connect_admin db in
        Db.add_secrecy w tag;
        ignore (Db.exec w "BEGIN");
        let per = rows / groups in
        let i = ref 0 in
        while !i < per do
          let n = min 500 (per - !i) in
          let values =
            String.concat ", "
              (List.init n (fun j ->
                   let id = (g * per) + !i + j in
                   Printf.sprintf "(%d, %d)" id (id mod 97)))
          in
          ignore (Db.exec w ("INSERT INTO drives VALUES " ^ values));
          i := !i + n
        done;
        ignore (Db.exec w "COMMIT"))
      users;
    let own = Db.connect_admin db in
    Db.add_secrecy own users.(0);
    let fleet = Db.connect_admin db in
    Db.add_secrecy fleet all_drives;
    (db, own, fleet)
  in
  let q = "SELECT COUNT(*), SUM(mi) FROM drives" in
  let time_scan db session =
    ignore (Db.query session q);
    (* warm: flow verdicts, per-partition trees *)
    let best = ref infinity in
    let pruned0 = Db.partitions_pruned db in
    for _ = 1 to 3 do
      Gc.full_major ();
      let t0 = now () in
      for _ = 1 to scans do
        ignore (Db.query session q)
      done;
      best := Float.min !best ((now () -. t0) /. float_of_int scans *. 1e3)
    done;
    let pruned =
      (Db.partitions_pruned db - pruned0) / (3 * scans)
    in
    (!best, pruned)
  in
  Printf.printf "%d rows; available cores: %d\n" rows
    (Domain.recommended_domain_count ());
  Printf.printf "%-7s %8s %8s %12s %12s %10s %8s\n" "query" "groups" "domains"
    "flat ms" "sharded ms" "speedup" "pruned";
  (* (groups, domains, query) -> (flat_ms, part_ms) for the acceptance
     line *)
  let cells = Hashtbl.create 32 in
  List.iter
    (fun groups ->
      List.iter
        (fun domains ->
          let fdb, fown, ffleet =
            build ~partitioned:false ~parallelism:domains ~groups
          in
          let pdb, pown, pfleet =
            build ~partitioned:true ~parallelism:domains ~groups
          in
          List.iter
            (fun (qname, fs, ps) ->
              let flat_ms, _ = time_scan fdb fs in
              let part_ms, pruned = time_scan pdb ps in
              Hashtbl.replace cells (groups, domains, qname)
                (flat_ms, part_ms);
              Printf.printf "%-7s %8d %8d %12.3f %12.3f %9.2fx %8d\n%!" qname
                groups domains flat_ms part_ms (flat_ms /. part_ms) pruned;
              record_json
                [
                  ("workload", jstr "partition");
                  ("query", jstr qname);
                  ("groups", jint groups);
                  ("domains", jint domains);
                  ("rows", jint rows);
                  ("ms_flat", jfloat flat_ms);
                  ("ms_partitioned", jfloat part_ms);
                  ("speedup", jfloat (flat_ms /. part_ms));
                  ("partitions_pruned_per_scan", jint pruned);
                  ("metrics", metrics_json pdb);
                ])
            [ ("own", fown, pown); ("fleet", ffleet, pfleet) ])
        domain_counts)
    group_counts;
  (* acceptance: at parallelism 1 — pruning alone, no domains to hide
     behind — the sharded layout must win the single-user scan on the
     largest sweep point, and prune counts must be visible in JSON *)
  let g = List.fold_left max 4 group_counts in
  match Hashtbl.find_opt cells (g, 1, "own") with
  | Some (flat_ms, part_ms) ->
      Printf.printf
        "\nacceptance: own-partition scan, %d groups, 1 domain: flat %.3f ms \
         vs sharded %.3f ms (sharded faster: %b)\n"
        g flat_ms part_ms (part_ms < flat_ms);
      record_json
        [
          ("workload", jstr "partition_acceptance");
          ("groups", jint g);
          ("ms_flat", jfloat flat_ms);
          ("ms_partitioned", jfloat part_ms);
          ("partitioned_faster", if part_ms < flat_ms then "true" else "false");
        ]
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Prepared statements + plan cache (PR 8)                             *)
(* ------------------------------------------------------------------ *)

(* How much of a point query is parse/analyze/plan, and how much of it
   the generation-stamped plan cache recovers.  Three modes over the
   same labeled table (IFC on, a two-tag session, so every execution
   still pays real confinement work — the cache never skips that):

   - [cold]:     plan cache disabled; every statement takes the full
                 parse -> analyze -> plan -> execute path.
   - [implicit]: cache on, same SQL text each time; parse and plan are
                 amortized by the text-keyed cache, analysis re-runs.
   - [prepared]: PREPARE once, EXECUTE with a bound parameter; parse,
                 analysis and planning all amortized.

   Then TPC-C with every transaction statement as a prepared template
   vs the same templates rendered to literal SQL, for the end-to-end
   number. *)
let prepared_bench () =
  hr "Prepared statements + plan cache: amortizing the statement front-end";
  let rows = if !quick then 500 else 1000 in
  let reps = if !quick then 1_500 else 8_000 in
  let setup ~plan_cache =
    let db = Db.create ~plan_cache () in
    let admin = Db.connect_admin db in
    let p = Db.create_principal admin ~name:"bench" in
    let s = Db.connect db ~principal:p in
    let t1 = Db.create_tag s ~name:"u1" () in
    let t2 = Db.create_tag s ~name:"u2" () in
    Db.add_secrecy s t1;
    Db.add_secrecy s t2;
    ignore (Db.exec s "CREATE TABLE pt (k INT PRIMARY KEY, v INT)");
    ignore (Db.exec s "BEGIN");
    for i = 1 to rows do
      ignore (Db.exec s (Printf.sprintf "INSERT INTO pt VALUES (%d, %d)" i i))
    done;
    ignore (Db.exec s "COMMIT");
    (db, s)
  in
  (* a TPC-C-shaped statement: several predicates and projected
     expressions, but execution is still one pk probe — the regime
     where the statement front-end dominates *)
  let q =
    "SELECT k, v, k + v, v * 2 FROM pt WHERE k = 500 AND v >= 0 AND v < \
     1000000 AND k > 0"
  in
  let _cold_db, cold_s = setup ~plan_cache:false in
  let imp_db, imp_s = setup ~plan_cache:true in
  let prep_db, prep_s = setup ~plan_cache:true in
  ignore
    (Db.exec prep_s
       "PREPARE pq AS SELECT k, v, k + v, v * 2 FROM pt WHERE k = $1 AND v \
        >= 0 AND v < 1000000 AND k > 0");
  let arg = [ Value.Int 500 ] in
  let modes =
    [|
      (fun () -> ignore (Db.query cold_s q));
      (fun () -> ignore (Db.query imp_s q));
      (fun () -> ignore (Db.execute_prepared prep_s "pq" arg));
    |]
  in
  Array.iter (fun f -> f ()) modes;
  (* warm: caches, allocator *)
  (* interleave the modes round by round so allocator/GC drift hits all
     three equally; keep each mode's best *)
  let best = Array.make 3 infinity in
  for _ = 1 to 5 do
    Array.iteri
      (fun i f ->
        Gc.full_major ();
        let t0 = now () in
        for _ = 1 to reps do
          f ()
        done;
        best.(i) <-
          Float.min best.(i) ((now () -. t0) /. float_of_int reps *. 1e6))
      modes
  done;
  let us_cold = best.(0) and us_implicit = best.(1) and us_prepared = best.(2) in
  let snap name db =
    let m = Db.metrics_snapshot db in
    Option.value (List.assoc_opt name m) ~default:0.0
  in
  let hits = snap "ifdb_plan_cache_hits_total" prep_db in
  let misses = snap "ifdb_plan_cache_misses_total" prep_db in
  let hit_rate =
    if hits +. misses = 0.0 then Float.nan else hits /. (hits +. misses)
  in
  (* invalidation is observable: DDL moves the catalog version, the next
     EXECUTE re-plans *)
  ignore (Db.exec prep_s "CREATE TABLE pt_inval_probe (a INT)");
  ignore (Db.execute_prepared prep_s "pq" arg);
  let invalidations =
    int_of_float (snap "ifdb_plan_cache_invalidations_total" prep_db)
  in
  let speedup = us_cold /. us_prepared in
  Printf.printf
    "point SELECT on %d labeled rows, %d reps (best of 5):\n\
     %-34s %10.2f us/op\n%-34s %10.2f us/op (%.2fx)\n\
     %-34s %10.2f us/op (%.2fx)\n"
    rows reps "cold (plan cache off)" us_cold "implicit cache (same text)"
    us_implicit (us_cold /. us_implicit) "PREPARE/EXECUTE" us_prepared speedup;
  Printf.printf
    "front-end fraction amortized: %.0f%%; plan-cache hit rate %.3f; \
     invalidations after DDL: %d\n"
    ((us_cold -. us_prepared) /. us_cold *. 100.0)
    hit_rate invalidations;
  Printf.printf
    "acceptance: cached EXECUTE >= 2x cold serial: %b (%.2fx)\n"
    (speedup >= 2.0) speedup;
  record_json
    [
      ("workload", jstr "prepared_micro");
      ("rows", jint rows);
      ("reps", jint reps);
      ("us_cold", jfloat us_cold);
      ("us_implicit", jfloat us_implicit);
      ("us_prepared", jfloat us_prepared);
      ("speedup_prepared_vs_cold", jfloat speedup);
      ("speedup_implicit_vs_cold", jfloat (us_cold /. us_implicit));
      ("amortized_fraction", jfloat ((us_cold -. us_prepared) /. us_cold));
      ("cache_hit_rate", jfloat hit_rate);
      ("invalidations_after_ddl", jint invalidations);
      ("prepared_faster", if speedup > 1.0 then "true" else "false");
      ("speedup_ge_2x", if speedup >= 2.0 then "true" else "false");
      ("metrics", metrics_json prep_db);
    ];
  ignore imp_db;
  (* --- TPC-C: all five transactions through prepared templates --- *)
  let txns = if !quick then 300 else 1500 in
  let config =
    { Tpcc.warehouses = 2; districts = 4; customers = 60; items = 400 }
  in
  let reps6 = 2 in
  let direct, _ =
    fig6_point ~tags:2 ~capacity_pages:None ~txns ~config ~reps:reps6 ()
  in
  let prepared, pdb =
    fig6_point ~prepared:true ~tags:2 ~capacity_pages:None ~txns ~config
      ~reps:reps6 ()
  in
  let tpcc_hits = snap "ifdb_plan_cache_hits_total" pdb in
  let tpcc_misses = snap "ifdb_plan_cache_misses_total" pdb in
  let tpcc_hit_rate =
    if tpcc_hits +. tpcc_misses = 0.0 then Float.nan
    else tpcc_hits /. (tpcc_hits +. tpcc_misses)
  in
  Printf.printf
    "\nTPC-C in-memory, tags=2, %d txns:\n%-24s %12.0f NOTPM\n%-24s %12.0f \
     NOTPM (%+.1f%%)\nplan-cache hit rate (prepared run): %.3f\n"
    txns "direct (literal SQL)" direct "prepared templates" prepared
    ((prepared /. direct -. 1.0) *. 100.0)
    tpcc_hit_rate;
  Printf.printf "acceptance: prepared NOTPM no worse than direct: %b\n"
    (prepared >= direct *. 0.95);
  record_json
    [
      ("workload", jstr "prepared_tpcc");
      ("regime", jstr "in_memory");
      ("tags", jint 2);
      ("txns", jint txns);
      ("notpm_direct", jfloat direct);
      ("notpm_prepared", jfloat prepared);
      ("notpm_ratio", jfloat (prepared /. direct));
      ("cache_hit_rate", jfloat tpcc_hit_rate);
      ("prepared_no_worse",
       if prepared >= direct *. 0.95 then "true" else "false");
      ("metrics", metrics_json ~txns pdb);
    ]

(* ------------------------------------------------------------------ *)
(* Span tracing: sampled-off overhead + commit-path wait attribution   *)
(* ------------------------------------------------------------------ *)

(* --trace-out PATH: where the spans experiment writes its TPC-C
   Chrome trace export (loadable in chrome://tracing / Perfetto). *)
let trace_out : string option ref = ref None

let spans_bench () =
  hr "Span tracing: sampled-off overhead and commit-path breakdown";
  (* same workload shape as prepared_micro, so us_sample_off is
     directly comparable to earlier BENCH_PR*.json prepared numbers
     (scripts/check_bench_trend.py does that comparison) *)
  let rows = if !quick then 500 else 1000 in
  let reps = if !quick then 1_500 else 8_000 in
  let setup ~trace_sample =
    let db = Db.create ~trace_sample () in
    let admin = Db.connect_admin db in
    let p = Db.create_principal admin ~name:"bench" in
    let s = Db.connect db ~principal:p in
    let t1 = Db.create_tag s ~name:"u1" () in
    let t2 = Db.create_tag s ~name:"u2" () in
    Db.add_secrecy s t1;
    Db.add_secrecy s t2;
    ignore (Db.exec s "CREATE TABLE pt (k INT PRIMARY KEY, v INT)");
    ignore (Db.exec s "BEGIN");
    for i = 1 to rows do
      ignore (Db.exec s (Printf.sprintf "INSERT INTO pt VALUES (%d, %d)" i i))
    done;
    ignore (Db.exec s "COMMIT");
    ignore
      (Db.exec s
         "PREPARE pq AS SELECT k, v, k + v, v * 2 FROM pt WHERE k = $1 AND v \
          >= 0 AND v < 1000000 AND k > 0");
    (db, s)
  in
  let _off_db, off_s = setup ~trace_sample:0 in
  let on_db, on_s = setup ~trace_sample:32 in
  let arg = [ Value.Int 500 ] in
  let modes =
    [|
      (fun () -> ignore (Db.execute_prepared off_s "pq" arg));
      (fun () -> ignore (Db.execute_prepared on_s "pq" arg));
    |]
  in
  Array.iter (fun f -> f ()) modes;
  let best = Array.make 2 infinity in
  for _ = 1 to 5 do
    Array.iteri
      (fun i f ->
        Gc.full_major ();
        let t0 = now () in
        for _ = 1 to reps do
          f ()
        done;
        best.(i) <-
          Float.min best.(i) ((now () -. t0) /. float_of_int reps *. 1e6))
      modes
  done;
  let us_off = best.(0) and us_on = best.(1) in
  let overhead_on = (us_on /. us_off -. 1.0) *. 100.0 in
  Printf.printf
    "prepared point SELECT, %d reps (best of 5):\n\
     %-34s %10.2f us/op\n%-34s %10.2f us/op (%+.1f%%)\n"
    reps "sampling off (trace_sample=0)" us_off
    "sampling 1/32 (trace_sample=32)" us_on overhead_on;
  Printf.printf
    "sampled-off path cost: one atomic fetch-and-add per statement, no \
     clock reads; cross-PR <=5%% check against the pre-span baseline runs \
     in scripts/check_bench_trend.py\n";
  Printf.printf "sampled %d statement(s) into the on-run's ring\n"
    (Span.count (Db.spans on_db));
  record_json
    [
      ("workload", jstr "spans_micro");
      ("rows", jint rows);
      ("reps", jint reps);
      ("us_sample_off", jfloat us_off);
      ("us_sample_on", jfloat us_on);
      ("overhead_sampled_on_pct", jfloat overhead_on);
      ("sampled_records", jint (Span.count (Db.spans on_db)));
    ];
  (* --- TPC-C prepared run with sampling on: where does commit time
     go?  The span ring answers with real wait attribution. *)
  let txns = if !quick then 300 else 1500 in
  let config =
    { Tpcc.warehouses = 2; districts = 4; customers = 60; items = 400 }
  in
  let notpm, pdb =
    fig6_point ~prepared:true ~trace_sample:20 ~tags:2 ~capacity_pages:None
      ~txns ~config ~reps:2 ()
  in
  let sp = Db.spans pdb in
  let records = Span.recent sp (Span.capacity sp) in
  (* aggregate the per-record phase summaries over the whole ring *)
  let agg : (string, int * int) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun r ->
      List.iter
        (fun (phase, count, ns) ->
          match Hashtbl.find_opt agg phase with
          | Some (c, t) -> Hashtbl.replace agg phase (c + count, t + ns)
          | None ->
              order := phase :: !order;
              Hashtbl.add agg phase (count, ns))
        (Span.summary r))
    records;
  let phases = List.rev !order in
  Printf.printf
    "\nTPC-C prepared, tags=2, %d txns, sampling 1/20: %.0f NOTPM, %d \
     sampled statement(s)\n"
    txns notpm (List.length records);
  List.iter
    (fun phase ->
      let count, ns = Hashtbl.find agg phase in
      Printf.printf "  %-14s %6d span(s) %12.3f ms total\n" phase count
        (float_of_int ns /. 1e6))
    phases;
  let breakdown =
    "{"
    ^ String.concat ", "
        (List.map
           (fun phase ->
             let _, ns = Hashtbl.find agg phase in
             Printf.sprintf "%S: %s" phase (jint ns))
           phases)
    ^ "}"
  in
  (match !trace_out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Span.to_chrome_json records);
      close_out oc;
      Printf.printf "wrote Chrome trace export to %s\n" path);
  record_json
    [
      ("workload", jstr "spans_tpcc");
      ("tags", jint 2);
      ("txns", jint txns);
      ("notpm", jfloat notpm);
      ("sampled_records", jint (List.length records));
      ("commit_breakdown_ns", breakdown);
      ("metrics", metrics_json ~txns pdb);
    ]

(* ------------------------------------------------------------------ *)
(* Microbenchmarks (bechamel)                                          *)
(* ------------------------------------------------------------------ *)

let micro () =
  hr "Microbenchmarks (bechamel; ns/op)";
  let open Bechamel in
  let lbl k = Label.of_ints (Array.init k (fun i -> (i * 13) + 1)) in
  let l3 = lbl 3 and l10 = lbl 10 in
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let p = Db.create_principal admin ~name:"p" in
  let ps = Db.connect db ~principal:p in
  let tag = Db.create_tag ps ~name:"t" () in
  let auth = Db.authority db in
  ignore (Db.exec ps "CREATE TABLE M (k INT PRIMARY KEY, v INT)");
  ignore (Db.exec ps "BEGIN");
  for i = 1 to 1000 do
    ignore (Db.exec ps (Printf.sprintf "INSERT INTO M VALUES (%d, %d)" i i))
  done;
  ignore (Db.exec ps "COMMIT");
  let tests =
    [
      Test.make ~name:"label.subset(3,10)"
        (Staged.stage (fun () -> Label.subset l3 l10));
      Test.make ~name:"label.union(3,10)"
        (Staged.stage (fun () -> Label.union l3 l10));
      Test.make ~name:"authority.check"
        (Staged.stage (fun () -> Ifdb_difc.Authority.has_authority auth p tag));
      Test.make ~name:"parse simple select"
        (Staged.stage (fun () ->
             Ifdb_sql.Parser.parse_one "SELECT v FROM M WHERE k = 500"));
      Test.make ~name:"pk probe (end-to-end)"
        (Staged.stage (fun () -> Db.query ps "SELECT v FROM M WHERE k = 500"));
    ]
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 500) ()
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "%-28s %12.1f ns/op\n" name est
          | Some _ | None -> Printf.printf "%-28s (no estimate)\n" name)
        analyzed)
    tests

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let all =
  [ "fig3"; "fig4"; "fig5"; "sensor"; "fig6"; "ablations"; "labelcache";
    "parallel"; "partition"; "writepath"; "views"; "obs"; "prepared"; "spans";
    "micro" ]

let run_one = function
  | "fig3" -> fig3 ()
  | "fig4" -> fig4 ()
  | "fig5" -> fig5 ()
  | "sensor" -> sensor ()
  | "fig6" -> fig6 ()
  | "ablations" -> ablations ()
  | "labelcache" -> ablation_labelcache ()
  | "parallel" -> parallel_sweep ()
  | "partition" -> partition_sweep ()
  | "writepath" -> writepath ()
  | "views" -> views ()
  | "obs" -> ablation_metrics ()
  | "prepared" -> prepared_bench ()
  | "spans" -> spans_bench ()
  | "micro" -> micro ()
  | other ->
      Printf.eprintf "unknown experiment %S (known: %s)\n" other
        (String.concat ", " all);
      exit 1

let () =
  let rec parse acc = function
    | [] -> List.rev acc
    | "--quick" :: rest ->
        quick := true;
        parse acc rest
    | "--json" :: path :: rest ->
        json_path := Some path;
        parse acc rest
    | [ "--json" ] ->
        Printf.eprintf "--json requires a path\n";
        exit 1
    | "--trace-out" :: path :: rest ->
        trace_out := Some path;
        parse acc rest
    | [ "--trace-out" ] ->
        Printf.eprintf "--trace-out requires a path\n";
        exit 1
    | a :: rest -> parse (a :: acc) rest
  in
  let args = parse [] (List.tl (Array.to_list Sys.argv)) in
  let chosen = if args = [] then all else args in
  let t0 = now () in
  List.iter run_one chosen;
  (match !json_path with Some path -> write_json path | None -> ());
  Printf.printf "\n(total bench wall time: %.1fs)\n" (now () -. t0)

(* An interactive shell over IFDB, in the spirit of the modified psql
   the paper mentions (section 7.2): SQL statements plus backslash
   commands for the DIFC state.

     dune exec bin/ifdb_shell.exe            -- IFC on
     dune exec bin/ifdb_shell.exe -- --no-ifc
     echo "CREATE TABLE t (a INT); ..." | dune exec bin/ifdb_shell.exe

   Commands:
     \principal NAME         create/switch to principal NAME
     \newtag NAME [COMPOUND] create a tag owned by the current principal
     \addsecrecy NAME        raise the session label
     \declassify NAME        lower it (requires authority)
     \label                  show the session label
     \delegate TAG NAME      delegate TAG to principal NAME
     \revoke TAG NAME        revoke a delegation
     \tables                 list tables
     \views                  list views with materialization state
     \dt NAME                describe a table
     \check [SQL]            whole-script label-flow analysis (trace),
                             no execution.  \check alone reads a
                             multi-line script (statements and \meta
                             commands) until a lone \end
     \partitions [TABLE]     label partition directory (versions/live/pages)
     \vacuum                 reclaim dead versions
     \wal                    WAL and group-commit statistics
     \metrics [reset]        metrics registry in Prometheus text format
     \explain [analyze] SQL  plan tree / traced execution report
     \slow [N]               recent slow queries (enable with --slow-ms);
                             span-sampled entries include a phase breakdown
     \spans [N]              recent sampled statement span trees
                             (enable with --trace-sample)
     \trace-out FILE         write sampled spans as Chrome trace-event
                             JSON (chrome://tracing, Perfetto)
     \prepared               this session's prepared statements
     \audit [N]              recent IFC audit events
     \dump [TABLE]           label-preserving SQL dump (pg_dump analogue)
     \q                      quit
   Anything else is executed as SQL. *)

module Db = Ifdb_core.Database
module Errors = Ifdb_core.Errors
module Label = Ifdb_difc.Label
module Authority = Ifdb_difc.Authority
module Value = Ifdb_rel.Value
module Tuple = Ifdb_rel.Tuple
module Schema = Ifdb_rel.Schema
module Catalog = Ifdb_engine.Catalog
module Trace = Ifdb_obs.Trace
module Span = Ifdb_obs.Span
module Audit = Ifdb_obs.Audit

type state = {
  db : Db.t;
  mutable session : Db.session;
  input : prompt:string -> string option;
      (* read one more input line (used by multi-line \check) *)
}

let label_string st l =
  let auth = Db.authority st.db in
  match Label.to_list l with
  | [] -> "{}"
  | tags ->
      "{"
      ^ String.concat ", "
          (List.map
             (fun tag ->
               match Authority.tag_name auth tag with
               | "" -> Format.asprintf "%a" Ifdb_difc.Tag.pp tag
               | name -> name
               | exception Authority.Unknown _ ->
                   Format.asprintf "%a" Ifdb_difc.Tag.pp tag)
             tags)
      ^ "}"

let print_rows st columns tuples =
  let widths =
    List.mapi
      (fun i c ->
        List.fold_left
          (fun w row -> max w (String.length (Value.to_string (Tuple.get row i))))
          (String.length c) tuples)
      columns
  in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  print_endline
    (String.concat " | " (List.map2 pad columns widths) ^ " | _label");
  print_endline
    (String.concat "-+-" (List.map (fun w -> String.make w '-') widths) ^ "-+-------");
  List.iter
    (fun row ->
      let cells =
        List.mapi (fun i w -> pad (Value.to_string (Tuple.get row i)) w) widths
      in
      print_endline
        (String.concat " | " cells ^ " | " ^ label_string st (Tuple.label row)))
    tuples;
  Printf.printf "(%d row%s)\n" (List.length tuples)
    (if List.length tuples = 1 then "" else "s")

let run_sql st text =
  match Db.exec st.session text with
  | Db.Rows { columns = [ "QUERY PLAN" ]; tuples } ->
      (* EXPLAIN output: plain report lines, no table chrome or label
         column *)
      List.iter
        (fun row ->
          print_endline
            (match Tuple.get row 0 with
            | Value.Text s -> s
            | v -> Value.to_string v))
        tuples
  | Db.Rows { columns; tuples } -> print_rows st columns tuples
  | Db.Affected n -> Printf.printf "OK, %d row%s\n" n (if n = 1 then "" else "s")
  | Db.Done msg -> print_endline msg

let find_or_create_principal st name =
  match Db.find_principal st.db name with
  | p -> p
  | exception Authority.Unknown _ ->
      let admin = Db.connect_admin st.db in
      Printf.printf "(created principal %s)\n" name;
      Db.create_principal admin ~name

let run_command st line =
  let parts =
    String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
  in
  match parts with
  | [ "\\q" ] -> raise Exit
  | [ "\\label" ] ->
      Printf.printf "principal=%s label=%s\n"
        (Authority.principal_name (Db.authority st.db)
           (Db.session_principal st.session))
        (label_string st (Db.session_label st.session))
  | [ "\\principal"; name ] ->
      let p = find_or_create_principal st name in
      st.session <- Db.connect st.db ~principal:p;
      Printf.printf "now acting as %s (fresh session, empty label)\n" name
  | "\\newtag" :: name :: rest ->
      let compounds =
        List.map (fun c -> Db.find_tag st.db c) rest
      in
      ignore (Db.create_tag st.session ~name ~compounds ());
      Printf.printf "created tag %s\n" name
  | [ "\\addsecrecy"; name ] ->
      Db.add_secrecy st.session (Db.find_tag st.db name);
      Printf.printf "label is now %s\n" (label_string st (Db.session_label st.session))
  | [ "\\declassify"; name ] ->
      Db.declassify st.session (Db.find_tag st.db name);
      Printf.printf "label is now %s\n" (label_string st (Db.session_label st.session))
  | [ "\\delegate"; tag; grantee ] ->
      Db.delegate st.session ~tag:(Db.find_tag st.db tag)
        ~grantee:(find_or_create_principal st grantee);
      Printf.printf "delegated %s to %s\n" tag grantee
  | [ "\\revoke"; tag; grantee ] ->
      Db.revoke st.session ~tag:(Db.find_tag st.db tag)
        ~grantee:(Db.find_principal st.db grantee);
      Printf.printf "revoked %s from %s\n" tag grantee
  | [ "\\tables" ] ->
      List.iter print_endline (Db.table_names st.db)
  | [ "\\views" ] -> (
      let module Ivm = Ifdb_engine.Ivm in
      match Catalog.all_views (Db.catalog st.db) with
      | [] -> print_endline "no views"
      | views ->
          let stats = Db.view_stats st.db in
          List.iter
            (fun (vw : Catalog.view) ->
              let flavor =
                match
                  ( Label.is_empty vw.Catalog.vw_declassify,
                    vw.Catalog.vw_relabel )
                with
                | true, [] -> ""
                | false, [] ->
                    Printf.sprintf " declassifying %s"
                      (label_string st vw.Catalog.vw_declassify)
                | _, _ -> " relabeling"
              in
              if not vw.Catalog.vw_materialized then
                Printf.printf "%s: plain%s\n" vw.Catalog.vw_name flavor
              else
                match
                  List.find_opt
                    (fun s ->
                      String.lowercase_ascii s.Ivm.vs_name
                      = String.lowercase_ascii vw.Catalog.vw_name)
                    stats
                with
                | None ->
                    Printf.printf "%s: materialized%s (not registered)\n"
                      vw.Catalog.vw_name flavor
                | Some s when not s.Ivm.vs_supported ->
                    Printf.printf
                      "%s: materialized%s, recompute-only (%s); %d \
                       recomputed read(s)\n"
                      vw.Catalog.vw_name flavor s.Ivm.vs_reason
                      s.Ivm.vs_recomputes
                | Some s ->
                    Printf.printf
                      "%s: materialized%s, %d row(s) in %d label \
                       partition(s)%s; %d delta(s) applied, %d refresh(es), \
                       %d read(s) served incrementally, %d recomputed\n"
                      vw.Catalog.vw_name flavor s.Ivm.vs_rows
                      s.Ivm.vs_partitions
                      (if s.Ivm.vs_stale then ", stale" else "")
                      s.Ivm.vs_deltas s.Ivm.vs_refreshes s.Ivm.vs_served
                      s.Ivm.vs_recomputes)
            views)
  | [ "\\dt"; name ] -> (
      match Catalog.find_table (Db.catalog st.db) name with
      | Some tbl ->
          Format.printf "%a@." Schema.pp tbl.Catalog.tbl_schema;
          List.iter
            (fun idx ->
              Printf.printf "  index %s%s\n" idx.Catalog.idx_name
                (if idx.Catalog.idx_unique then " (unique)" else ""))
            tbl.Catalog.tbl_indexes
      | None -> Printf.printf "no such table: %s\n" name)
  | "\\check" :: _ ->
      (* Reparse from the raw line: the SQL may contain runs of spaces. *)
      let text =
        String.trim (String.sub line 6 (String.length line - 6))
      in
      let text =
        if text <> "" then text
        else begin
          (* multi-line script (statements and \meta commands), read
             until a lone \end or EOF *)
          let b = Buffer.create 256 in
          let fin = ref false in
          while not !fin do
            match st.input ~prompt:"check> " with
            | None -> fin := true
            | Some l ->
                if String.trim l = "\\end" then fin := true
                else begin
                  Buffer.add_string b l;
                  Buffer.add_char b '\n'
                end
          done;
          Buffer.contents b
        end
      in
      if String.trim text = "" then
        print_endline
          "usage: \\check SQL  —  or \\check alone, then script lines \
           terminated by \\end"
      else begin
        (* whole-script trace analysis against the live session state;
           nothing executes *)
        let items = Db.check_script st.session text in
        let any = ref false in
        List.iter
          (fun (ck : Db.check_item) ->
            if ck.Db.ck_diags <> [] then begin
              any := true;
              Printf.printf "statement %d (line %d): %s\n" ck.Db.ck_index
                ck.Db.ck_line ck.Db.ck_text;
              List.iter
                (fun d ->
                  Printf.printf "  %s\n" (Ifdb_analysis.Diag.to_string d))
                ck.Db.ck_diags
            end)
          items;
        if not !any then print_endline "no issues found"
      end
  | "\\partitions" :: rest -> (
      let module Heap = Ifdb_storage.Heap in
      let module Label_store = Ifdb_difc.Label_store in
      let report =
        match rest with
        | [ table ] ->
            List.filter
              (fun tp ->
                String.lowercase_ascii tp.Db.tp_table
                = String.lowercase_ascii table)
              (Db.partition_report st.db)
        | _ -> Db.partition_report st.db
      in
      match report with
      | [] -> print_endline "no partitions (empty tables hold none)"
      | tables ->
          Printf.printf "layout: %s; %d partition(s) pruned from scans so far\n"
            (if Db.partitioned st.db then "label-sharded" else
               "flat (directory only)")
            (Db.partitions_pruned st.db);
          let lstore = Db.label_store st.db in
          List.iter
            (fun tp ->
              Printf.printf "%s:\n" tp.Db.tp_table;
              List.iter
                (fun ps ->
                  let label =
                    if ps.Heap.ps_lid < 0 then "(uninterned)"
                    else
                      label_string st (Label_store.label_of lstore ps.Heap.ps_lid)
                  in
                  Printf.printf
                    "  %-24s %6d version(s) %6d live %5d page(s)\n" label
                    ps.Heap.ps_versions ps.Heap.ps_live ps.Heap.ps_pages)
                tp.Db.tp_stats)
            tables)
  | [ "\\vacuum" ] ->
      Printf.printf "vacuum removed %d dead version(s)\n" (Db.vacuum st.db)
  | [ "\\wal" ] -> (
      (* the same numbers every other consumer sees: read through the
         metrics registry instead of the component stat blocks *)
      let module Group_commit = Ifdb_txn.Group_commit in
      match Db.metrics_snapshot st.db with
      | [] -> print_endline "metrics registry is disabled"
      | snap ->
          let v name =
            match List.assoc_opt name snap with
            | Some f -> int_of_float f
            | None -> 0
          in
          Printf.printf
            "wal: %d records, %d bytes, %d fsyncs, %d simulated io ns\n"
            (v "ifdb_wal_records_total") (v "ifdb_wal_bytes_total")
            (v "ifdb_wal_fsyncs_total") (v "ifdb_wal_io_ns_total");
          Printf.printf
            "group commit: batch %d, %d commits in %d batches (largest %d), \
             %d pending\n"
            (Group_commit.batch (Db.group_commit st.db))
            (v "ifdb_group_commit_submitted_total")
            (v "ifdb_group_commit_batches_total")
            (v "ifdb_group_commit_max_batch")
            (v "ifdb_group_commit_pending"))
  | [ "\\metrics" ] -> print_string (Db.metrics_prometheus st.db)
  | [ "\\metrics"; "reset" ] ->
      Db.reset_stats st.db;
      print_endline "statistics reset"
  | "\\explain" :: _ ->
      (* Reparse from the raw line, like \check: the SQL keeps its
         internal spacing and the ANALYZE keyword stays part of it. *)
      let text = String.trim (String.sub line 8 (String.length line - 8)) in
      if text = "" then print_endline "usage: \\explain [analyze] SQL"
      else run_sql st ("EXPLAIN " ^ text)
  | "\\slow" :: rest -> (
      let n =
        match rest with
        | [ n ] -> Option.value (int_of_string_opt n) ~default:20
        | _ -> 20
      in
      match Db.slow_queries ~n st.db with
      | [] -> print_endline "slow-query log is empty (enable with --slow-ms)"
      | entries ->
          List.iter
            (fun e ->
              Printf.printf "#%d  %.3f ms  %d row(s)  %s\n" e.Trace.sq_seq
                (float_of_int e.Trace.sq_ns /. 1e6)
                e.Trace.sq_rows e.Trace.sq_sql;
              (* span-sampled entry: phase breakdown from its record,
                 if the span ring still holds it *)
              if e.Trace.sq_trace >= 0 then
                match Span.find (Db.spans st.db) e.Trace.sq_trace with
                | None -> Printf.printf "    (trace %d evicted)\n" e.Trace.sq_trace
                | Some r ->
                    List.iter
                      (fun (phase, count, ns) ->
                        Printf.printf "    %-14s %5d span(s)  %8.3f ms\n" phase
                          count
                          (float_of_int ns /. 1e6))
                      (Span.summary r))
            entries)
  | "\\spans" :: rest -> (
      let n =
        match rest with
        | [ n ] -> Option.value (int_of_string_opt n) ~default:5
        | _ -> 5
      in
      let sp = Db.spans st.db in
      match Span.recent sp n with
      | [] ->
          print_endline
            "span ring is empty (enable sampling with --trace-sample)"
      | records ->
          List.iter
            (fun r ->
              Printf.printf "trace %d  (%.3f ms total)\n" r.Span.r_id
                (float_of_int (Span.duration_ns r) /. 1e6);
              List.iter (fun l -> print_endline ("  " ^ l)) (Span.render r))
            records;
          Printf.printf "(%d sampled statement%s recorded in total)\n"
            (Span.count sp)
            (if Span.count sp = 1 then "" else "s"))
  | [ "\\trace-out"; file ] -> (
      let sp = Db.spans st.db in
      match Span.recent sp (Span.capacity sp) with
      | [] ->
          print_endline
            "span ring is empty (enable sampling with --trace-sample)"
      | records ->
          Out_channel.with_open_text file (fun oc ->
              Out_channel.output_string oc (Span.to_chrome_json records));
          Printf.printf
            "wrote %d trace(s) to %s (load in chrome://tracing or Perfetto)\n"
            (List.length records) file)
  | [ "\\prepared" ] -> (
      match Db.prepared_statements st.session with
      | [] -> print_endline "no prepared statements"
      | infos ->
          List.iter
            (fun (pi : Db.prepared_info) ->
              Printf.printf
                "%s (%d param%s): %s\n  %d cached-plan hit(s), %d plan(s); \
                 stamps: catalog v%d, authority gen %d\n"
                pi.Db.pi_name pi.Db.pi_nparams
                (if pi.Db.pi_nparams = 1 then "" else "s")
                pi.Db.pi_text pi.Db.pi_hits pi.Db.pi_plans pi.Db.pi_cat_version
                pi.Db.pi_generation)
            infos)
  | "\\audit" :: rest ->
      let n =
        match rest with
        | [ n ] -> Option.value (int_of_string_opt n) ~default:20
        | _ -> 20
      in
      let log = Db.audit_log st.db in
      (match Audit.recent log n with
      | [] -> print_endline "audit log is empty"
      | events ->
          List.iter (fun e -> print_endline (Audit.event_to_string e)) events);
      Printf.printf "(%d event%s recorded in total)\n" (Audit.count log)
        (if Audit.count log = 1 then "" else "s")
  | [ "\\dump" ] -> print_string (Ifdb_core.Dump.dump st.db)
  | [ "\\dump"; table ] -> print_string (Ifdb_core.Dump.dump_table st.db table)
  | cmd :: _ -> Printf.printf "unknown command %s\n" cmd
  | [] -> ()

let repl ~ifc ~parallelism ~commit_batch ~slow_ms ~trace_sample =
  let db =
    Db.create ~ifc ~parallelism ~commit_batch ?slow_query_ms:slow_ms
      ~trace_sample ()
  in
  let admin = Db.connect_admin db in
  let interactive = Unix.isatty Unix.stdin in
  let input ~prompt =
    if interactive then (print_string prompt; flush stdout);
    In_channel.input_line stdin
  in
  let st = { db; session = admin; input } in
  Printf.printf "IFDB shell (ifc %s%s). \\q quits, \\label shows the session label.\n"
    (if ifc then "on" else "off")
    (if parallelism > 1 then Printf.sprintf ", %d domains" parallelism else "");
  (try
     while true do
       match input ~prompt:"ifdb> " with
       | None -> raise Exit
       | Some line ->
           let line = String.trim line in
           if line = "" then ()
           else if String.length line > 0 && line.[0] = '\\' then (
             try run_command st line with
             | Errors.Flow_violation m -> Printf.printf "FLOW VIOLATION: %s\n" m
             | Errors.Authority_required m -> Printf.printf "DENIED: %s\n" m
             | Errors.Sql_error m | Authority.Unknown m ->
                 Printf.printf "ERROR: %s\n" m)
           else
             try run_sql st line with
             | Errors.Flow_violation m -> Printf.printf "FLOW VIOLATION: %s\n" m
             | Errors.Authority_required m -> Printf.printf "DENIED: %s\n" m
             | Errors.Constraint_violation m -> Printf.printf "CONSTRAINT: %s\n" m
             | Errors.Sql_error m -> Printf.printf "ERROR: %s\n" m
     done
   with Exit -> ());
  print_endline "bye."

open Cmdliner

let no_ifc =
  Arg.(value & flag & info [ "no-ifc" ] ~doc:"Run the baseline engine (no labels).")

let parallelism =
  Arg.(
    value & opt int 1
    & info [ "parallelism" ]
        ~doc:"Domains per query (morsel-parallel scans); 1 = serial.")

let commit_batch =
  Arg.(
    value & opt int 1
    & info [ "commit-batch" ]
        ~doc:
          "Group-commit coalescing degree: fsync the WAL once per N commit \
           records; 1 = every commit.")

let slow_ms =
  Arg.(
    value
    & opt (some float) None
    & info [ "slow-ms" ]
        ~doc:
          "Slow-query threshold in milliseconds: statements at or above it \
           land in the \\\\slow ring buffer.  Unset disables the log.")

let trace_sample =
  Arg.(
    value & opt int 0
    & info [ "trace-sample" ]
        ~doc:
          "Span-sample every Nth statement into the \\\\spans ring \
           (1 = every statement, 0 = off).  Export with \\\\trace-out.")

let cmd =
  let doc = "interactive shell over the IFDB engine" in
  Cmd.v
    (Cmd.info "ifdb_shell" ~doc)
    Term.(
      const (fun no_ifc parallelism commit_batch slow_ms trace_sample ->
          repl ~ifc:(not no_ifc) ~parallelism ~commit_batch ~slow_ms
            ~trace_sample)
      $ no_ifc $ parallelism $ commit_batch $ slow_ms $ trace_sample)

let () = exit (Cmd.eval cmd)

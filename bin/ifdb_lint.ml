(* ifdb_lint: static label-flow analysis over SQL scripts, without
   executing anything against a real database.  Wraps
   {!Ifdb_core.Lint}, which replays each script against a fresh
   in-memory database: clean statements execute (so later statements
   are analyzed against realistic catalog and data state), statements
   with Error-severity diagnostics do not.

     ifdb_lint script.sql ...          lint SQL scripts
     ifdb_lint --ml examples/foo.ml    lint the SQL embedded in OCaml
     ifdb_lint --golden script.sql     compare against script.sql.expected
     ifdb_lint --update-golden ...     (re)write the .expected files

   Exit status is 1 when any file has an unexpected Error-severity
   diagnostic, a missing expected diagnostic (see the [-- lint: expect
   CODE] convention), or golden-file drift. *)

module Lint = Ifdb_core.Lint

let read_file path =
  In_channel.with_open_bin path In_channel.input_all

let is_ml path = Filename.check_suffix path ".ml"

let lint_file ~ml ~golden ~update_golden path =
  let text = read_file path in
  let outcome =
    if ml || is_ml path then Lint.lint_ml Lint.ml_mode text
    else Lint.lint_script Lint.sql_mode text
  in
  let failed = ref (outcome.Lint.o_failures <> []) in
  Printf.printf "== %s ==\n%s" path outcome.Lint.o_report;
  List.iter (fun f -> Printf.printf "FAIL %s\n" f) outcome.Lint.o_failures;
  let expected_path = path ^ ".expected" in
  if update_golden then (
    Out_channel.with_open_bin expected_path (fun oc ->
        Out_channel.output_string oc outcome.Lint.o_report);
    Printf.printf "wrote %s\n" expected_path)
  else if golden then (
    match read_file expected_path with
    | expected ->
        if expected <> outcome.Lint.o_report then (
          failed := true;
          Printf.printf
            "FAIL %s: report drifted from %s (re-run with --update-golden \
             and review the diff)\n"
            path expected_path)
    | exception Sys_error m ->
        failed := true;
        Printf.printf "FAIL %s: cannot read golden file: %s\n" path m);
  !failed

let run ml golden update_golden files =
  let any_failed =
    List.fold_left
      (fun acc path -> lint_file ~ml ~golden ~update_golden path || acc)
      false files
  in
  if any_failed then 1 else 0

open Cmdliner

let ml =
  Arg.(
    value & flag
    & info [ "ml" ]
        ~doc:
          "Treat every input as OCaml source: extract the SQL string \
           literals and lint those.  Files ending in .ml get this \
           treatment automatically.")

let golden =
  Arg.(
    value & flag
    & info [ "golden" ]
        ~doc:
          "Compare each file's report against FILE.expected and fail on \
           drift.")

let update_golden =
  Arg.(
    value & flag
    & info [ "update-golden" ]
        ~doc:"Write each file's report to FILE.expected.")

let files =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE")

let cmd =
  let doc = "static label-flow linter for IFDB SQL" in
  Cmd.v
    (Cmd.info "ifdb_lint" ~doc)
    Term.(const run $ ml $ golden $ update_golden $ files)

let () = exit (Cmd.eval' cmd)

(* ifdb_lint: static label-flow analysis over SQL scripts, without
   executing anything against a real database.  Wraps
   {!Ifdb_core.Lint}.

   Two modes.  The default for .sql scripts is --trace: one symbolic
   trace is threaded through the whole script (nothing executes), so
   cross-statement verdicts — declassify-after-revoke, txn-commit-trap,
   dead-write, stale-prepare, unreachable-stmt — surface alongside the
   per-statement ones.  --stmt restores per-statement linting, which
   replays each script against a fresh in-memory database: clean
   statements execute (so later statements are analyzed against
   realistic catalog and data state), statements with Error-severity
   diagnostics do not.  --ml always lints per statement.

     ifdb_lint script.sql ...          lint SQL scripts (trace mode)
     ifdb_lint --stmt script.sql       lint per statement
     ifdb_lint --bind '1,alice' x.sql  substitute $1,$2,… before analysis
     ifdb_lint --ml examples/foo.ml    lint the SQL embedded in OCaml
     ifdb_lint --golden script.sql     compare against script.sql.expected
                                       (--stmt: script.sql.stmt.expected)
     ifdb_lint --update-golden ...     (re)write the golden files

   Exit status is 1 when any file has an unexpected Error-severity
   diagnostic, a missing expected diagnostic (see the [-- lint: expect
   CODE] convention; expect-trace/expect-stmt scope a code to one
   mode), or golden-file drift. *)

module Lint = Ifdb_core.Lint

let read_file path =
  In_channel.with_open_bin path In_channel.input_all

let is_ml path = Filename.check_suffix path ".ml"

let lint_file ~ml ~stmt ~bindings ~golden ~update_golden path =
  let text = read_file path in
  let outcome =
    if ml || is_ml path then Lint.lint_ml Lint.ml_mode text
    else
      Lint.lint_script ?bindings
        (if stmt then Lint.sql_mode else Lint.trace_mode)
        text
  in
  let failed = ref (outcome.Lint.o_failures <> []) in
  Printf.printf "== %s ==\n%s" path outcome.Lint.o_report;
  List.iter (fun f -> Printf.printf "FAIL %s\n" f) outcome.Lint.o_failures;
  let expected_path =
    if stmt && not (ml || is_ml path) then path ^ ".stmt.expected"
    else path ^ ".expected"
  in
  if update_golden then (
    Out_channel.with_open_bin expected_path (fun oc ->
        Out_channel.output_string oc outcome.Lint.o_report);
    Printf.printf "wrote %s\n" expected_path)
  else if golden then (
    match read_file expected_path with
    | expected ->
        if expected <> outcome.Lint.o_report then (
          failed := true;
          Printf.printf
            "FAIL %s: report drifted from %s (re-run with --update-golden \
             and review the diff)\n"
            path expected_path)
    | exception Sys_error m ->
        failed := true;
        Printf.printf "FAIL %s: cannot read golden file: %s\n" path m);
  !failed

let run ml stmt bind golden update_golden files =
  let bindings = Option.map Lint.parse_bindings bind in
  let any_failed =
    List.fold_left
      (fun acc path ->
        lint_file ~ml ~stmt ~bindings ~golden ~update_golden path || acc)
      false files
  in
  if any_failed then 1 else 0

open Cmdliner

let ml =
  Arg.(
    value & flag
    & info [ "ml" ]
        ~doc:
          "Treat every input as OCaml source: extract the SQL string \
           literals and lint those (always per statement).  Files ending \
           in .ml get this treatment automatically.")

let stmt =
  Arg.(
    value & flag
    & info [ "stmt" ]
        ~doc:
          "Lint per statement (analyze each statement in isolation, \
           executing clean ones) instead of the default whole-script \
           trace mode.  Goldens live in FILE.stmt.expected.")

let trace =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Whole-script trace mode (the default for .sql): thread one \
           symbolic trace through the script without executing anything.")

let bind =
  Arg.(
    value
    & opt (some string) None
    & info [ "bind" ] ~docv:"V1,V2,…"
        ~doc:
          "Substitute \\$1,\\$2,… with these constants before analysis \
           (ints, floats, null, or text), so parameterized templates are \
           linted as the statements they would execute as.")

let golden =
  Arg.(
    value & flag
    & info [ "golden" ]
        ~doc:
          "Compare each file's report against its golden file and fail on \
           drift.")

let update_golden =
  Arg.(
    value & flag
    & info [ "update-golden" ]
        ~doc:"Write each file's report to its golden file.")

let files =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE")

let cmd =
  let doc = "static label-flow linter for IFDB SQL" in
  let run ml stmt trace bind golden update_golden files =
    if stmt && trace then (
      prerr_endline "ifdb_lint: --stmt and --trace are mutually exclusive";
      2)
    else run ml stmt bind golden update_golden files
  in
  Cmd.v
    (Cmd.info "ifdb_lint" ~doc)
    Term.(
      const run $ ml $ stmt $ trace $ bind $ golden $ update_golden $ files)

let () = exit (Cmd.eval' cmd)

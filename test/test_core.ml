(* Tests for the IFDB core: Query by Label, transactions, constraints —
   each rule in sections 4-5 of the paper as an explicit test, mostly
   using the paper's own running examples. *)

module Db = Ifdb_core.Database
module Errors = Ifdb_core.Errors
module Label = Ifdb_difc.Label
module Tag = Ifdb_difc.Tag
module Value = Ifdb_rel.Value
module Tuple = Ifdb_rel.Tuple
module Catalog = Ifdb_engine.Catalog

let ( => ) row i = Tuple.get row i
let text s = Value.Text s
let check_val = Alcotest.testable Value.pp Value.equal

let ints_of_rows rows = List.map (fun r -> Value.to_int (r => 0)) rows
let texts_of_rows rows = List.map (fun r -> Value.to_text (r => 0)) rows

(* The paper's Figure 2 medical database: three patients, each with a
   per-patient medical tag. *)
type medical = {
  db : Db.t;
  admin : Db.session;
  alice_medical : Tag.t;
  bob_medical : Tag.t;
  cathy_medical : Tag.t;
  alice : Ifdb_difc.Principal.t;
  bob : Ifdb_difc.Principal.t;
}

let medical_db ?isolation () =
  let db = Db.create ?isolation () in
  let admin = Db.connect_admin db in
  let mk_user name =
    let p = Db.create_principal admin ~name in
    p
  in
  let alice = mk_user "alice" and bob = mk_user "bob" and cathy = mk_user "cathy" in
  let tag_for owner name =
    let s = Db.connect db ~principal:owner in
    Db.create_tag s ~name ()
  in
  let alice_medical = tag_for alice "alice_medical" in
  let bob_medical = tag_for bob "bob_medical" in
  let cathy_medical = tag_for cathy "cathy_medical" in
  ignore
    (Db.exec admin
       "CREATE TABLE HIVPatients (patient_name TEXT NOT NULL, patient_dob TEXT \
        NOT NULL, notes TEXT, PRIMARY KEY (patient_name, patient_dob))");
  let seed (tag, name, dob) =
    let owner_s = Db.connect db ~principal:alice in
    (* insert with exactly the patient's label *)
    Db.add_secrecy owner_s tag;
    ignore
      (Db.exec owner_s
         (Printf.sprintf "INSERT INTO HIVPatients VALUES ('%s', '%s', 'x')" name dob))
  in
  seed (alice_medical, "Alice", "2/1/60");
  seed (bob_medical, "Bob", "6/26/78");
  seed (cathy_medical, "Cathy", "4/22/71");
  { db; admin; alice_medical; bob_medical; cathy_medical; alice; bob }

(* ------------------------------------------------------------------ *)
(* Query by Label: the Label Confinement Rule                          *)
(* ------------------------------------------------------------------ *)

let test_confinement_rule () =
  let m = medical_db () in
  (* a process with label {bob_medical} sees only Bob (paper 4.2) *)
  let s = Db.connect m.db ~principal:m.bob in
  Db.add_secrecy s m.bob_medical;
  let rows =
    Db.query s
      "SELECT patient_name FROM HIVPatients WHERE patient_name = 'Bob' AND \
       patient_dob = '6/26/78'"
  in
  Alcotest.(check (list string)) "bob sees bob" [ "Bob" ] (texts_of_rows rows);
  (* with an empty label: no tuples *)
  let s0 = Db.connect m.db ~principal:m.bob in
  Alcotest.(check int) "empty label sees nothing" 0
    (List.length (Db.query s0 "SELECT * FROM HIVPatients"));
  (* the negative query from section 4.2 leaks nothing: a process with
     {bob_medical} asking for non-cancer patients sees only tuples
     within its label *)
  let rows = Db.query s "SELECT patient_name FROM HIVPatients" in
  Alcotest.(check (list string)) "only covered tuples" [ "Bob" ] (texts_of_rows rows)

let test_confinement_multiple_tags () =
  let m = medical_db () in
  let s = Db.connect m.db ~principal:m.alice in
  Db.add_secrecy s m.alice_medical;
  Db.add_secrecy s m.bob_medical;
  let rows =
    Db.query s "SELECT patient_name FROM HIVPatients ORDER BY patient_name"
  in
  Alcotest.(check (list string)) "two patients" [ "Alice"; "Bob" ] (texts_of_rows rows)

let test_result_labels_confined () =
  let m = medical_db () in
  let s = Db.connect m.db ~principal:m.alice in
  Db.add_secrecy s m.alice_medical;
  List.iter
    (fun row ->
      Alcotest.(check bool) "row label within process label" true
        (Label.subset (Tuple.label row) (Db.session_label s)))
    (Db.query s "SELECT * FROM HIVPatients")

(* ------------------------------------------------------------------ *)
(* Write Rule                                                          *)
(* ------------------------------------------------------------------ *)

let test_insert_gets_process_label () =
  let m = medical_db () in
  let s = Db.connect m.db ~principal:m.alice in
  Db.add_secrecy s m.alice_medical;
  ignore (Db.exec s "INSERT INTO HIVPatients VALUES ('Dan', '8/12/69', 'y')");
  let row =
    Db.query_one s "SELECT * FROM HIVPatients WHERE patient_name = 'Dan'"
  in
  Alcotest.(check bool) "tuple labeled exactly Lp" true
    (Label.equal (Tuple.label row) (Label.singleton m.alice_medical))

let test_write_rule_update_lower_fails () =
  let m = medical_db () in
  let s = Db.connect m.db ~principal:m.alice in
  (* put a public tuple in *)
  ignore (Db.exec s "INSERT INTO HIVPatients VALUES ('Pub', '1/1/70', 'p')");
  Db.add_secrecy s m.alice_medical;
  (* the public tuple is visible but not writable: exact label required *)
  (match
     Db.exec s "UPDATE HIVPatients SET notes = 'z' WHERE patient_name = 'Pub'"
   with
  | exception Errors.Flow_violation _ -> ()
  | _ -> Alcotest.fail "updating a lower-labeled tuple must fail");
  match
    Db.exec s "DELETE FROM HIVPatients WHERE patient_name = 'Pub'"
  with
  | exception Errors.Flow_violation _ -> ()
  | _ -> Alcotest.fail "deleting a lower-labeled tuple must fail"

let test_write_rule_exact_label_ok () =
  let m = medical_db () in
  let s = Db.connect m.db ~principal:m.alice in
  Db.add_secrecy s m.alice_medical;
  (match
     Db.exec s "UPDATE HIVPatients SET notes = 'updated' WHERE patient_name = 'Alice'"
   with
  | Db.Affected 1 -> ()
  | _ -> Alcotest.fail "exact-label update should succeed");
  let row = Db.query_one s "SELECT notes FROM HIVPatients WHERE patient_name = 'Alice'" in
  Alcotest.check check_val "updated" (text "updated") (row => 0);
  (* higher-labeled tuples are invisible: update affects 0 rows, no error *)
  match Db.exec s "UPDATE HIVPatients SET notes = 'q' WHERE patient_name = 'Bob'" with
  | Db.Affected 0 -> ()
  | _ -> Alcotest.fail "invisible tuples are unaffected"

(* ------------------------------------------------------------------ *)
(* _label queries                                                      *)
(* ------------------------------------------------------------------ *)

let test_label_column_queries () =
  let m = medical_db () in
  let s = Db.connect m.db ~principal:m.alice in
  Db.add_secrecy s m.alice_medical;
  Db.add_secrecy s m.bob_medical;
  (* exact-label filter (section 4.2): only Alice's record *)
  let rows =
    Db.query s "SELECT patient_name FROM HIVPatients WHERE _label = {alice_medical}"
  in
  Alcotest.(check (list string)) "exact label" [ "Alice" ] (texts_of_rows rows);
  let rows = Db.query s "SELECT patient_name, _label FROM HIVPatients WHERE _label = {}" in
  Alcotest.(check int) "no public rows" 0 (List.length rows)

(* ------------------------------------------------------------------ *)
(* Declassification and authority                                      *)
(* ------------------------------------------------------------------ *)

let test_declassify_requires_authority () =
  let m = medical_db () in
  let s = Db.connect m.db ~principal:m.bob in
  Db.add_secrecy s m.alice_medical;
  (match Db.declassify s m.alice_medical with
  | exception Errors.Authority_required _ -> ()
  | exception Ifdb_difc.Authority.Denied _ -> ()
  | () -> Alcotest.fail "bob cannot declassify alice's tag");
  (* alice delegates to her doctor bob; now he can *)
  let alice_s = Db.connect m.db ~principal:m.alice in
  Db.delegate alice_s ~tag:m.alice_medical ~grantee:m.bob;
  Db.declassify s m.alice_medical;
  Alcotest.(check bool) "label clean" true (Label.is_empty (Db.session_label s))

let test_perform_addsecrecy_declassify () =
  let m = medical_db () in
  let s = Db.connect m.db ~principal:m.alice in
  ignore (Db.exec s "PERFORM addsecrecy(alice_medical)");
  Alcotest.(check bool) "label raised" true
    (Label.mem m.alice_medical (Db.session_label s));
  ignore (Db.exec s "PERFORM declassify(alice_medical)");
  Alcotest.(check bool) "label lowered" true (Label.is_empty (Db.session_label s))

let test_authority_state_requires_empty_label () =
  let m = medical_db () in
  let s = Db.connect m.db ~principal:m.alice in
  Db.add_secrecy s m.alice_medical;
  (match Db.create_tag s ~name:"t2" () with
  | exception Errors.Flow_violation _ -> ()
  | exception Ifdb_difc.Authority.Not_public _ -> ()
  | _ -> Alcotest.fail "contaminated process cannot mutate authority state");
  match Db.delegate s ~tag:m.alice_medical ~grantee:m.bob with
  | exception Errors.Flow_violation _ -> ()
  | exception Ifdb_difc.Authority.Not_public _ -> ()
  | _ -> Alcotest.fail "contaminated delegate must fail"

let test_with_reduced_authority () =
  let m = medical_db () in
  let s = Db.connect m.db ~principal:m.alice in
  Db.add_secrecy s m.alice_medical;
  Db.with_reduced_authority s (fun () ->
      match Db.declassify s m.alice_medical with
      | exception Errors.Authority_required _ -> ()
      | exception Ifdb_difc.Authority.Denied _ -> ()
      | () -> Alcotest.fail "reduced authority cannot declassify");
  (* back to alice: now it works *)
  Db.declassify s m.alice_medical

(* ------------------------------------------------------------------ *)
(* Compound tags in queries                                            *)
(* ------------------------------------------------------------------ *)

let test_compound_tag_statistics () =
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let sys = Db.create_principal admin ~name:"system" in
  let sys_s = Db.connect db ~principal:sys in
  let all_medical = Db.create_tag sys_s ~name:"all_medical" () in
  let alice = Db.create_principal admin ~name:"alice" in
  let alice_s = Db.connect db ~principal:alice in
  let alice_tag = Db.create_tag alice_s ~name:"alice_m" ~compounds:[ all_medical ] () in
  let bob = Db.create_principal admin ~name:"bob" in
  let bob_s = Db.connect db ~principal:bob in
  let bob_tag = Db.create_tag bob_s ~name:"bob_m" ~compounds:[ all_medical ] () in
  ignore (Db.exec admin "CREATE TABLE Visits (patient TEXT NOT NULL, cost INT NOT NULL)");
  Db.add_secrecy alice_s alice_tag;
  ignore (Db.exec alice_s "INSERT INTO Visits VALUES ('Alice', 100)");
  Db.add_secrecy bob_s bob_tag;
  ignore (Db.exec bob_s "INSERT INTO Visits VALUES ('Bob', 300)");
  (* a statistics job carrying just {all_medical} reads everything *)
  let stats = Db.connect db ~principal:sys in
  Db.add_secrecy stats all_medical;
  let row = Db.query_one stats "SELECT SUM(cost), COUNT(*) FROM Visits" in
  Alcotest.check check_val "sum over all patients" (Value.Int 400) (row => 0);
  Alcotest.check check_val "count" (Value.Int 2) (row => 1)

(* ------------------------------------------------------------------ *)
(* Declassifying views (section 4.3, HotCRP's PCMembers)               *)
(* ------------------------------------------------------------------ *)

let test_declassifying_view () =
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let chair = Db.create_principal admin ~name:"chair" in
  let chair_s = Db.connect db ~principal:chair in
  let all_contacts = Db.create_tag chair_s ~name:"all_contacts" () in
  ignore
    (Db.exec admin
       "CREATE TABLE ContactInfo (contactId INT PRIMARY KEY, firstName TEXT, \
        lastName TEXT, email TEXT, isPC BOOL)");
  (* each contact is sensitive *)
  Db.add_secrecy chair_s all_contacts;
  ignore
    (Db.exec chair_s
       "INSERT INTO ContactInfo VALUES (1, 'Ada', 'Lovelace', 'ada@x', TRUE), \
        (2, 'Bob', 'Karp', 'bob@x', FALSE)");
  Db.declassify chair_s all_contacts;
  (* the chair defines the declassifying view *)
  ignore
    (Db.exec chair_s
       "CREATE VIEW PCMembers AS SELECT firstName, lastName FROM ContactInfo \
        WHERE isPC = TRUE WITH DECLASSIFYING (all_contacts)");
  (* an uncontaminated stranger can read the view … *)
  let user = Db.create_principal admin ~name:"user" in
  let user_s = Db.connect db ~principal:user in
  let rows = Db.query user_s "SELECT firstName FROM PCMembers" in
  Alcotest.(check (list string)) "sees PC members" [ "Ada" ] (texts_of_rows rows);
  (* … with public result labels … *)
  List.iter
    (fun row ->
      Alcotest.(check bool) "declassified label" true
        (Label.is_empty (Tuple.label row)))
    rows;
  (* … but not the base table *)
  Alcotest.(check int) "base table hidden" 0
    (List.length (Db.query user_s "SELECT * FROM ContactInfo"))

let test_declassifying_view_requires_authority () =
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let owner = Db.create_principal admin ~name:"owner" in
  let owner_s = Db.connect db ~principal:owner in
  ignore (Db.create_tag owner_s ~name:"secret" ());
  ignore (Db.exec admin "CREATE TABLE T (a INT PRIMARY KEY)");
  let mallory = Db.create_principal admin ~name:"mallory" in
  let mallory_s = Db.connect db ~principal:mallory in
  match
    Db.exec mallory_s "CREATE VIEW V AS SELECT a FROM T WITH DECLASSIFYING (secret)"
  with
  | exception Errors.Authority_required _ -> ()
  | _ -> Alcotest.fail "creating a declassifying view requires the authority"

let test_plain_view_no_declassification () =
  let m = medical_db () in
  ignore
    (Db.exec m.admin "CREATE VIEW Names AS SELECT patient_name FROM HIVPatients");
  let s = Db.connect m.db ~principal:m.bob in
  Alcotest.(check int) "plain view still confined" 0
    (List.length (Db.query s "SELECT * FROM Names"));
  Db.add_secrecy s m.bob_medical;
  Alcotest.(check (list string)) "bob via view" [ "Bob" ]
    (texts_of_rows (Db.query s "SELECT * FROM Names"))

(* Data independence (section 4.4): an outer join view yields NULLs for
   the fields the process may not see. *)
let test_outer_join_nulls_for_sensitive () =
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let u = Db.create_principal admin ~name:"u" in
  let us = Db.connect db ~principal:u in
  let pay_tag = Db.create_tag us ~name:"u_payment" () in
  let contact_tag = Db.create_tag us ~name:"u_contact" () in
  ignore (Db.exec admin "CREATE TABLE Payment (uid INT PRIMARY KEY, card TEXT)");
  ignore (Db.exec admin "CREATE TABLE Contact (uid INT PRIMARY KEY, email TEXT)");
  Db.add_secrecy us pay_tag;
  ignore (Db.exec us "INSERT INTO Payment VALUES (1, 'visa-1234')");
  Db.declassify us pay_tag;
  Db.add_secrecy us contact_tag;
  ignore (Db.exec us "INSERT INTO Contact VALUES (1, 'u@example.org')");
  Db.declassify us contact_tag;
  (* a process holding only the payment tag *)
  Db.add_secrecy us pay_tag;
  let row =
    Db.query_one us
      "SELECT p.uid, p.card, c.email FROM Payment p LEFT JOIN Contact c ON \
       c.uid = p.uid"
  in
  Alcotest.check check_val "card visible" (text "visa-1234") (row => 1);
  Alcotest.check check_val "email NULLed out" Value.Null (row => 2)

(* ------------------------------------------------------------------ *)
(* Transactions (section 5.1)                                          *)
(* ------------------------------------------------------------------ *)

(* The paper's leak: write "Alice has HIV" publicly, raise the label,
   peek at Alice's record, commit iff she is in the table.  The commit
   label rule must refuse the commit. *)
let test_commit_label_rule_blocks_leak () =
  let m = medical_db () in
  ignore (Db.exec m.admin "CREATE TABLE Foo (msg TEXT NOT NULL)");
  let s = Db.connect m.db ~principal:m.bob in
  ignore (Db.exec s "BEGIN");
  ignore (Db.exec s "INSERT INTO Foo VALUES ('Alice has HIV')");
  Db.add_secrecy s m.alice_medical;
  (* bob could now decide to commit or abort based on what he reads *)
  (match Db.exec s "COMMIT" with
  | exception Errors.Flow_violation _ -> ()
  | _ -> Alcotest.fail "commit with raised label over public write must fail");
  (* the transaction aborted: nothing was leaked *)
  let s2 = Db.connect m.db ~principal:m.bob in
  Alcotest.(check int) "no leak" 0 (List.length (Db.query s2 "SELECT * FROM Foo"))

let test_commit_label_rule_declassify_allows () =
  let m = medical_db () in
  ignore (Db.exec m.admin "CREATE TABLE Foo2 (msg TEXT NOT NULL)");
  let s = Db.connect m.db ~principal:m.alice in
  ignore (Db.exec s "BEGIN");
  ignore (Db.exec s "INSERT INTO Foo2 VALUES ('x')");
  Db.add_secrecy s m.alice_medical;
  ignore (Db.query s "SELECT * FROM HIVPatients");
  (* alice owns the tag: she may declassify and then commit *)
  Db.declassify s m.alice_medical;
  (match Db.exec s "COMMIT" with
  | Db.Done _ -> ()
  | _ -> Alcotest.fail "commit after declassify should work");
  Alcotest.(check int) "committed" 1 (List.length (Db.query s "SELECT * FROM Foo2"))

let test_mixed_label_transaction () =
  (* label changes mid-transaction: contact info and password with
     different labels in one transaction (the motivating example) *)
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let u = Db.create_principal admin ~name:"u" in
  let us = Db.connect db ~principal:u in
  let t_contact = Db.create_tag us ~name:"c" () in
  let t_pass = Db.create_tag us ~name:"p" () in
  ignore (Db.exec admin "CREATE TABLE Contacts (uid INT, email TEXT)");
  ignore (Db.exec admin "CREATE TABLE Passwords (uid INT, hash TEXT)");
  ignore (Db.exec us "BEGIN");
  Db.add_secrecy us t_contact;
  ignore (Db.exec us "INSERT INTO Contacts VALUES (1, 'u@x')");
  Db.declassify us t_contact;
  Db.add_secrecy us t_pass;
  ignore (Db.exec us "INSERT INTO Passwords VALUES (1, 'h4sh')");
  Db.declassify us t_pass;
  ignore (Db.exec us "COMMIT");
  Db.add_secrecy us t_contact;
  Alcotest.(check int) "contact" 1 (List.length (Db.query us "SELECT * FROM Contacts"))

let test_clearance_rule_serializable () =
  let m = medical_db ~isolation:Db.Serializable () in
  let s = Db.connect m.db ~principal:m.bob in
  ignore (Db.exec s "BEGIN");
  (* bob has no authority for alice_medical: raising in a serializable
     transaction violates the clearance rule *)
  (match Db.add_secrecy s m.alice_medical with
  | exception Errors.Authority_required _ -> ()
  | () -> Alcotest.fail "clearance rule should refuse the raise");
  (* his own tag is fine *)
  Db.add_secrecy s m.bob_medical;
  ignore (Db.exec s "ROLLBACK");
  (* outside a transaction the raise is allowed *)
  Db.add_secrecy s m.alice_medical

let test_snapshot_mode_no_clearance () =
  let m = medical_db ~isolation:Db.Snapshot () in
  let s = Db.connect m.db ~principal:m.bob in
  ignore (Db.exec s "BEGIN");
  Db.add_secrecy s m.alice_medical; (* fine under SI *)
  ignore (Db.exec s "ROLLBACK")

(* Write skew: the textbook SI anomaly.  Two on-call doctors each
   verify the other is still on call and then sign off.  Snapshot
   isolation lets both commit (the anomaly); Serializable mode's
   table locking makes one fail. *)
let write_skew_scenario iso =
  let db = Db.create ~isolation:iso () in
  let admin = Db.connect_admin db in
  ignore (Db.exec admin "CREATE TABLE oncall (doc TEXT PRIMARY KEY, active INT)");
  ignore (Db.exec admin "INSERT INTO oncall VALUES ('a', 1), ('b', 1)");
  let s1 = Db.connect_admin db in
  let s2 = Db.connect_admin db in
  let outcome = ref `Both_committed in
  (try
     ignore (Db.exec s1 "BEGIN");
     ignore (Db.exec s2 "BEGIN");
     ignore (Db.query s1 "SELECT * FROM oncall WHERE active = 1");
     ignore (Db.query s2 "SELECT * FROM oncall WHERE active = 1");
     ignore (Db.exec s1 "UPDATE oncall SET active = 0 WHERE doc = 'a'");
     ignore (Db.exec s2 "UPDATE oncall SET active = 0 WHERE doc = 'b'");
     ignore (Db.exec s1 "COMMIT");
     ignore (Db.exec s2 "COMMIT")
   with Ifdb_txn.Manager.Serialization_failure _ -> outcome := `One_failed);
  let reader = Db.connect_admin db in
  let active =
    Value.to_int
      (Tuple.get
         (Db.query_one reader "SELECT COUNT(*) FROM oncall WHERE active = 1")
         0)
  in
  (!outcome, active)

let test_write_skew_under_si () =
  (* snapshot isolation exhibits the anomaly: both commit and nobody is
     left on call — exactly why the paper needs no clearance rule under
     SI but does under serializability *)
  let outcome, active = write_skew_scenario Db.Snapshot in
  Alcotest.(check bool) "both committed" true (outcome = `Both_committed);
  Alcotest.(check int) "anomaly: nobody on call" 0 active

let test_write_skew_prevented_serializable () =
  let outcome, active = write_skew_scenario Db.Serializable in
  Alcotest.(check bool) "one transaction failed" true (outcome = `One_failed);
  Alcotest.(check bool) "someone still on call" true (active >= 1)

let test_serializable_locks_released () =
  let db = Db.create ~isolation:Db.Serializable () in
  let admin = Db.connect_admin db in
  ignore (Db.exec admin "CREATE TABLE t (a INT)");
  let s1 = Db.connect_admin db in
  ignore (Db.exec s1 "BEGIN");
  ignore (Db.exec s1 "INSERT INTO t VALUES (1)");
  ignore (Db.exec s1 "COMMIT");
  (* after commit the lock is gone: another txn proceeds freely *)
  let s2 = Db.connect_admin db in
  ignore (Db.exec s2 "BEGIN");
  ignore (Db.exec s2 "INSERT INTO t VALUES (2)");
  ignore (Db.exec s2 "COMMIT");
  Alcotest.(check int) "both rows" 2 (List.length (Db.query s2 "SELECT * FROM t"))

let test_rollback_undoes () =
  let m = medical_db () in
  let s = Db.connect m.db ~principal:m.alice in
  ignore (Db.exec s "BEGIN");
  ignore (Db.exec s "INSERT INTO HIVPatients VALUES ('Temp', '1/1/99', 't')");
  ignore (Db.exec s "ROLLBACK");
  Alcotest.(check int) "rolled back" 0
    (List.length (Db.query s "SELECT * FROM HIVPatients WHERE patient_name = 'Temp'"))

(* ------------------------------------------------------------------ *)
(* Uniqueness and polyinstantiation (section 5.2.1)                    *)
(* ------------------------------------------------------------------ *)

let test_polyinstantiation_paper_example () =
  let m = medical_db () in
  (* 1: Dan not present: insert succeeds with any label *)
  let s = Db.connect m.db ~principal:m.alice in
  Db.add_secrecy s m.alice_medical;
  ignore (Db.exec s "INSERT INTO HIVPatients VALUES ('Dan', '8/12/69', 'd')");
  (* 2: visible conflict: fails, revealing nothing new *)
  (match Db.exec s "INSERT INTO HIVPatients VALUES ('Alice', '2/1/60', 'dup')" with
  | exception Errors.Constraint_violation _ -> ()
  | _ -> Alcotest.fail "visible duplicate must fail");
  (* 3: the problematic insert: empty-label process inserts a key that
     exists only under a higher label — polyinstantiation admits it *)
  let s0 = Db.connect m.db ~principal:m.bob in
  (match Db.exec s0 "INSERT INTO HIVPatients VALUES ('Alice', '2/1/60', 'fake')" with
  | Db.Affected 1 -> ()
  | _ -> Alcotest.fail "polyinstantiating insert must succeed");
  (* the empty-label client sees one Alice; a high-label client sees the
     conflict exposed (two Alices, distinguished by label) *)
  Alcotest.(check int) "low client sees one" 1
    (List.length (Db.query s0 "SELECT * FROM HIVPatients WHERE patient_name = 'Alice'"));
  let high = Db.connect m.db ~principal:m.alice in
  Db.add_secrecy high m.alice_medical;
  Alcotest.(check int) "high client sees both" 2
    (List.length (Db.query high "SELECT * FROM HIVPatients WHERE patient_name = 'Alice'"));
  (* exact-label query hides the mistake (section 5.2.1) *)
  Alcotest.(check int) "exact-label filter" 1
    (List.length
       (Db.query high
          "SELECT * FROM HIVPatients WHERE patient_name = 'Alice' AND _label = \
           {alice_medical}"))

let test_label_constraint_prevents_polyinstantiation () =
  let m = medical_db () in
  (* require: any tuple for Alice must carry exactly {alice_medical} *)
  let required = Label.singleton m.alice_medical in
  Db.add_label_constraint m.db ~name:"alice_label" ~table:"HIVPatients"
    (fun tuple ->
      if Value.equal (Tuple.get tuple 0) (text "Alice") then
        Some (Catalog.Exactly required)
      else None);
  let s0 = Db.connect m.db ~principal:m.bob in
  match Db.exec s0 "INSERT INTO HIVPatients VALUES ('Alice', '2/1/60', 'fake')" with
  | exception Errors.Constraint_violation _ -> ()
  | _ -> Alcotest.fail "label constraint must block the mislabeled insert"

let test_label_constraint_superset () =
  let m = medical_db () in
  Db.add_label_constraint m.db ~name:"min_label" ~table:"HIVPatients" (fun _ ->
      Some (Catalog.Superset (Label.singleton m.cathy_medical)));
  let s = Db.connect m.db ~principal:m.alice in
  Db.add_secrecy s m.alice_medical;
  (match Db.exec s "INSERT INTO HIVPatients VALUES ('E', '1/1/01', 'e')" with
  | exception Errors.Constraint_violation _ -> ()
  | _ -> Alcotest.fail "superset constraint must reject");
  Db.add_secrecy s m.cathy_medical;
  match Db.exec s "INSERT INTO HIVPatients VALUES ('E', '1/1/01', 'e')" with
  | Db.Affected 1 -> ()
  | _ -> Alcotest.fail "superset satisfied"

(* ------------------------------------------------------------------ *)
(* Foreign keys (section 5.2.2)                                        *)
(* ------------------------------------------------------------------ *)

type fk_env = {
  fdb : Db.t;
  fadmin : Db.session;
  owner : Ifdb_difc.Principal.t;
  probe : Ifdb_difc.Principal.t;
  alice_tag : Tag.t;
}

let fk_db () =
  let fdb = Db.create () in
  let fadmin = Db.connect_admin fdb in
  let owner = Db.create_principal fadmin ~name:"owner" in
  let probe = Db.create_principal fadmin ~name:"probe" in
  let owner_s = Db.connect fdb ~principal:owner in
  let alice_tag = Db.create_tag owner_s ~name:"alice_hiv" () in
  ignore
    (Db.exec fadmin "CREATE TABLE HIVPatients2 (pname TEXT PRIMARY KEY)");
  ignore
    (Db.exec fadmin
       "CREATE TABLE HIVRecords (rid INT PRIMARY KEY, pname TEXT, FOREIGN KEY \
        (pname) REFERENCES HIVPatients2 (pname))");
  Db.add_secrecy owner_s alice_tag;
  ignore (Db.exec owner_s "INSERT INTO HIVPatients2 VALUES ('Alice')");
  Db.declassify owner_s alice_tag;
  { fdb; fadmin; owner; probe; alice_tag }

let test_fk_probing_attack_blocked () =
  let f = fk_db () in
  (* the attack: an empty-label process learns whether Alice is an HIV
     patient by attempting a referencing insert *)
  let s = Db.connect f.fdb ~principal:f.probe in
  match Db.exec s "INSERT INTO HIVRecords VALUES (1, 'Alice')" with
  | exception Errors.Authority_required _ -> ()
  | _ -> Alcotest.fail "FK rule must require DECLASSIFYING for the label gap"

let test_fk_missing_target_fails () =
  let f = fk_db () in
  let s = Db.connect f.fdb ~principal:f.probe in
  match Db.exec s "INSERT INTO HIVRecords VALUES (1, 'Nobody')" with
  | exception Errors.Constraint_violation _ -> ()
  | _ -> Alcotest.fail "missing referenced row must fail"

let test_fk_declassifying_clause () =
  let f = fk_db () in
  let s = Db.connect f.fdb ~principal:f.owner in
  (* the owner has authority and says so explicitly *)
  (match
     Db.exec s "INSERT INTO HIVRecords VALUES (1, 'Alice') DECLASSIFYING (alice_hiv)"
   with
  | Db.Affected 1 -> ()
  | _ -> Alcotest.fail "owner with DECLASSIFYING clause must succeed");
  (* without authority, the clause itself is refused *)
  let s2 = Db.connect f.fdb ~principal:f.probe in
  match
    Db.exec s2 "INSERT INTO HIVRecords VALUES (2, 'Alice') DECLASSIFYING (alice_hiv)"
  with
  | exception Errors.Authority_required _ -> ()
  | _ -> Alcotest.fail "clause without authority must fail"

let test_fk_same_label_no_clause_needed () =
  let f = fk_db () in
  let s = Db.connect f.fdb ~principal:f.owner in
  Db.add_secrecy s f.alice_tag;
  (* both sides labeled {alice_hiv}: symmetric difference is empty *)
  match Db.exec s "INSERT INTO HIVRecords VALUES (3, 'Alice')" with
  | Db.Affected 1 -> ()
  | _ -> Alcotest.fail "equal labels need no DECLASSIFYING"

let test_fk_delete_restricted () =
  let f = fk_db () in
  let s = Db.connect f.fdb ~principal:f.owner in
  ignore
    (Db.exec s "INSERT INTO HIVRecords VALUES (1, 'Alice') DECLASSIFYING (alice_hiv)");
  Db.add_secrecy s f.alice_tag;
  (match Db.exec s "DELETE FROM HIVPatients2 WHERE pname = 'Alice'" with
  | exception Errors.Constraint_violation _ -> ()
  | _ -> Alcotest.fail "delete of referenced tuple must be restricted");
  (* removing the referencing row unblocks the delete *)
  Db.declassify s f.alice_tag;
  ignore (Db.exec s "DELETE FROM HIVRecords WHERE rid = 1");
  Db.add_secrecy s f.alice_tag;
  match Db.exec s "DELETE FROM HIVPatients2 WHERE pname = 'Alice'" with
  | Db.Affected 1 -> ()
  | _ -> Alcotest.fail "unreferenced delete should pass"

(* ------------------------------------------------------------------ *)
(* Triggers (section 5.2.3)                                            *)
(* ------------------------------------------------------------------ *)

let test_ordinary_trigger_runs_as_caller () =
  let db = Db.create () in
  let admin = Db.connect_admin db in
  ignore (Db.exec admin "CREATE TABLE T (a INT)");
  ignore (Db.exec admin "CREATE TABLE Audit (a INT)");
  Db.create_trigger admin ~name:"audit" ~table:"T" ~kinds:[ `Insert ]
    (fun s ev ->
      match ev.Db.ev_new with
      | Some row ->
          ignore
            (Db.exec s
               (Printf.sprintf "INSERT INTO Audit VALUES (%d)"
                  (Value.to_int (Tuple.get row 0))))
      | None -> ());
  let u = Db.create_principal admin ~name:"u" in
  let us = Db.connect db ~principal:u in
  let tag = Db.create_tag us ~name:"t" () in
  Db.add_secrecy us tag;
  ignore (Db.exec us "INSERT INTO T VALUES (7)");
  (* the audit row was written with the caller's contamination *)
  let row = Db.query_one us "SELECT a, _label FROM Audit" in
  Alcotest.check check_val "audited" (Value.Int 7) (row => 0);
  Alcotest.(check bool) "audit row carries caller label" true
    (Label.equal (Tuple.label row) (Label.singleton tag));
  (* an uncontaminated reader cannot see the audit row *)
  let clean = Db.connect db ~principal:u in
  Alcotest.(check int) "confined" 0 (List.length (Db.query clean "SELECT * FROM Audit"))

let test_authority_closure_trigger () =
  (* the CarTel driveupdate pattern: the trigger reads high-labeled
     data under its closure authority and writes lower-labeled rows,
     without contaminating the inserting process *)
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let sys = Db.create_principal admin ~name:"sys" in
  let sys_s = Db.connect db ~principal:sys in
  let loc_tag = Db.create_tag sys_s ~name:"alice_location" () in
  let drv_tag = Db.create_tag sys_s ~name:"alice_drives" () in
  ignore (Db.exec admin "CREATE TABLE Locations (lat INT, lng INT)");
  ignore (Db.exec admin "CREATE TABLE Drives (dist INT)");
  let closure =
    Db.closure_principal sys_s ~name:"driveupdate" ~tags:[ loc_tag ]
  in
  Db.create_trigger admin ~name:"driveupdate" ~table:"Locations"
    ~kinds:[ `Insert ] ~timing:`Deferred ~authority:closure
    (fun s _ev ->
      (* runs with the query label {drv,loc}; writes Drives at {drv}
         by declassifying loc under the closure's authority *)
      Db.declassify s loc_tag;
      ignore (Db.exec s "INSERT INTO Drives VALUES (42)"));
  let writer = Db.connect db ~principal:sys in
  ignore (Db.exec writer "BEGIN");
  Db.add_secrecy writer drv_tag;
  Db.add_secrecy writer loc_tag;
  ignore (Db.exec writer "INSERT INTO Locations VALUES (1, 2)");
  (* the trusted ingester declassifies the location tag before commit,
     so the commit label is within the trigger's Drives write (the
     commit-label rule applies to the whole write set) *)
  Db.declassify writer loc_tag;
  ignore (Db.exec writer "COMMIT");
  (* reader with only the drives tag can see the derived drive but not
     raw locations *)
  let reader = Db.connect db ~principal:sys in
  Db.add_secrecy reader drv_tag;
  Alcotest.(check int) "drive visible" 1
    (List.length (Db.query reader "SELECT * FROM Drives"));
  Alcotest.(check int) "raw locations hidden" 0
    (List.length (Db.query reader "SELECT * FROM Locations"))

let test_deferred_trigger_uses_query_label () =
  (* a deferred trigger runs at commit with the label the session had
     when the statement executed, not the commit label *)
  let db = Db.create () in
  let admin = Db.connect_admin db in
  ignore (Db.exec admin "CREATE TABLE T2 (a INT)");
  let seen = ref None in
  Db.create_trigger admin ~name:"capture" ~table:"T2" ~kinds:[ `Insert ]
    ~timing:`Deferred (fun s _ev -> seen := Some (Db.session_label s));
  let u = Db.create_principal admin ~name:"u" in
  let us = Db.connect db ~principal:u in
  let t1 = Db.create_tag us ~name:"t1" () in
  let t2 = Db.create_tag us ~name:"t2" () in
  ignore (Db.exec us "BEGIN");
  Db.add_secrecy us t1;
  ignore (Db.exec us "INSERT INTO T2 VALUES (1)");
  Db.add_secrecy us t2;
  (* u owns both tags; the commit label must drop to within the write
     set's label {t1}, so declassify everything — the trigger must
     still observe the label the statement ran with, {t1} *)
  Db.declassify us t1;
  Db.declassify us t2;
  ignore (Db.exec us "COMMIT");
  match !seen with
  | Some l ->
      Alcotest.(check bool) "trigger saw query label {t1}" true
        (Label.equal l (Label.singleton t1))
  | None -> Alcotest.fail "deferred trigger did not run"

(* ------------------------------------------------------------------ *)
(* Stored authority closures (procedures)                              *)
(* ------------------------------------------------------------------ *)

let test_stored_authority_closure () =
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let owner = Db.create_principal admin ~name:"owner" in
  let owner_s = Db.connect db ~principal:owner in
  let secret = Db.create_tag owner_s ~name:"secret" () in
  ignore (Db.exec admin "CREATE TABLE S (v INT)");
  Db.add_secrecy owner_s secret;
  ignore (Db.exec owner_s "INSERT INTO S VALUES (99)");
  Db.declassify owner_s secret;
  let closure = Db.closure_principal owner_s ~name:"reader" ~tags:[ secret ] in
  let result = ref 0 in
  Db.register_procedure owner_s ~name:"summarize" ~authority:closure
    (fun s _args ->
      Db.with_label s (Label.singleton secret) (fun () ->
          let row = Db.query_one s "SELECT SUM(v) FROM S" in
          result := Value.to_int (Tuple.get row 0));
      Value.Null);
  (* an unprivileged caller invokes the closure: it can compute over
     the secret without the caller gaining or needing authority *)
  let nobody = Db.create_principal admin ~name:"nobody" in
  let ns = Db.connect db ~principal:nobody in
  ignore (Db.exec ns "PERFORM summarize()");
  Alcotest.(check int) "closure computed over secret" 99 !result;
  Alcotest.(check bool) "caller ends uncontaminated" true
    (Label.is_empty (Db.session_label ns))

(* ------------------------------------------------------------------ *)
(* Relabeling views and the per-tuple iterator (extensions)            *)
(* ------------------------------------------------------------------ *)

(* Section 4.3's sophisticated declassifying view: a billing view that
   replaces p_medical with p_billing for each patient. *)
let test_relabeling_view () =
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let hospital = Db.create_principal admin ~name:"hospital" in
  let hs = Db.connect db ~principal:hospital in
  let medical = Db.create_tag hs ~name:"alice_medical2" () in
  let billing = Db.create_tag hs ~name:"alice_billing2" () in
  ignore
    (Db.exec admin
       "CREATE TABLE MedicalRecords (patient TEXT, diagnosis TEXT, cost INT)");
  Db.add_secrecy hs medical;
  ignore (Db.exec hs "INSERT INTO MedicalRecords VALUES ('Alice', 'flu', 150)");
  Db.declassify hs medical;
  Db.create_relabeling_view hs ~name:"Billing"
    ~query:"SELECT patient, cost FROM MedicalRecords"
    ~replace:[ (medical, billing) ];
  (* a billing clerk holding only the billing tag can read the view *)
  let clerk = Db.create_principal admin ~name:"clerk" in
  let cs = Db.connect db ~principal:clerk in
  Db.add_secrecy cs billing;
  let rows = Db.query cs "SELECT patient, cost FROM Billing" in
  Alcotest.(check int) "clerk sees billing row" 1 (List.length rows);
  List.iter
    (fun row ->
      Alcotest.(check bool) "row relabeled to billing" true
        (Label.equal (Tuple.label row) (Label.singleton billing)))
    rows;
  (* but not the medical base table *)
  Alcotest.(check int) "base table hidden" 0
    (List.length (Db.query cs "SELECT * FROM MedicalRecords"));
  (* and creating such a view requires authority over the from-tags *)
  let mallory = Db.create_principal admin ~name:"mallory" in
  let ms = Db.connect db ~principal:mallory in
  match
    Db.create_relabeling_view ms ~name:"Steal"
      ~query:"SELECT patient FROM MedicalRecords"
      ~replace:[ (medical, billing) ]
  with
  | exception Errors.Authority_required _ -> ()
  | exception Ifdb_difc.Authority.Denied _ -> ()
  | () -> Alcotest.fail "relabeling view without authority must fail"

let test_query_each_iterator () =
  (* future work, section 10: handle each tuple in its own context with
     that tuple's label *)
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let sys = Db.create_principal admin ~name:"sys" in
  let ss = Db.connect db ~principal:sys in
  let all = Db.create_tag ss ~name:"all_data" () in
  ignore (Db.exec admin "CREATE TABLE PerUser (uid INT, v INT)");
  let user_tags =
    List.init 3 (fun i ->
        let p = Db.create_principal admin ~name:(Printf.sprintf "u%d" i) in
        let us = Db.connect db ~principal:p in
        let tag = Db.create_tag us ~name:(Printf.sprintf "u%d_tag" i) ~compounds:[ all ] () in
        Db.add_secrecy us tag;
        ignore (Db.exec us (Printf.sprintf "INSERT INTO PerUser VALUES (%d, %d)" i (i * 10)));
        tag)
  in
  (* the iterating process stays clean while each tuple is handled in a
     per-tuple context carrying exactly that tuple's label *)
  let seen = ref [] in
  let n =
    Db.query_each ss ~extra:(Label.singleton all)
      "SELECT uid, v FROM PerUser ORDER BY uid"
      (fun sub row ->
        seen := (Value.to_int (row => 0), Db.session_label sub) :: !seen)
  in
  Alcotest.(check int) "three rows" 3 n;
  Alcotest.(check bool) "caller stays clean" true
    (Label.is_empty (Db.session_label ss));
  List.iteri
    (fun i tag ->
      let _, lbl = List.find (fun (uid, _) -> uid = i) !seen in
      Alcotest.(check bool)
        (Printf.sprintf "row %d context labeled with its tag" i)
        true (Label.mem tag lbl))
    user_tags;
  (* without ~extra the confined query yields nothing *)
  Alcotest.(check int) "confined without extra" 0
    (Db.query_each ss "SELECT * FROM PerUser" (fun _ _ -> ()))

(* ------------------------------------------------------------------ *)
(* Baseline mode (ifc:false)                                           *)
(* ------------------------------------------------------------------ *)

let test_baseline_mode_plain_sql () =
  let db = Db.create ~ifc:false () in
  let s = Db.connect_admin db in
  ignore (Db.exec s "CREATE TABLE T (a INT PRIMARY KEY, b TEXT)");
  ignore (Db.exec s "INSERT INTO T VALUES (1, 'x'), (2, 'y')");
  Alcotest.(check int) "sees all" 2 (List.length (Db.query s "SELECT * FROM T"));
  (match Db.exec s "INSERT INTO T VALUES (1, 'dup')" with
  | exception Errors.Constraint_violation _ -> ()
  | _ -> Alcotest.fail "unique still enforced");
  (match Db.exec s "UPDATE T SET b = 'z' WHERE a = 1" with
  | Db.Affected 1 -> ()
  | _ -> Alcotest.fail "update works");
  (* labels are not stored: tuples are unlabeled *)
  List.iter
    (fun row ->
      Alcotest.(check bool) "no labels" true (Label.is_empty (Tuple.label row)))
    (Db.query s "SELECT * FROM T")

(* ------------------------------------------------------------------ *)
(* Maintenance                                                         *)
(* ------------------------------------------------------------------ *)

let test_vacuum_core () =
  let db = Db.create () in
  let s = Db.connect_admin db in
  ignore (Db.exec s "CREATE TABLE T (a INT)");
  ignore (Db.exec s "INSERT INTO T VALUES (1), (2), (3)");
  ignore (Db.exec s "UPDATE T SET a = a + 10");
  ignore (Db.exec s "DELETE FROM T WHERE a = 11");
  let removed = Db.vacuum db in
  (* 3 superseded originals + 1 deleted new version *)
  Alcotest.(check int) "dead versions removed" 4 removed;
  Alcotest.(check (list int)) "data intact" [ 12; 13 ]
    (List.sort Int.compare (ints_of_rows (Db.query s "SELECT a FROM T")))

let suites =
  [
    ( "core.query_by_label",
      [
        Alcotest.test_case "confinement rule" `Quick test_confinement_rule;
        Alcotest.test_case "multiple tags" `Quick test_confinement_multiple_tags;
        Alcotest.test_case "result labels confined" `Quick test_result_labels_confined;
        Alcotest.test_case "insert gets process label" `Quick
          test_insert_gets_process_label;
        Alcotest.test_case "write rule blocks lower" `Quick
          test_write_rule_update_lower_fails;
        Alcotest.test_case "write rule exact ok" `Quick test_write_rule_exact_label_ok;
        Alcotest.test_case "_label queries" `Quick test_label_column_queries;
        Alcotest.test_case "compound-tag statistics" `Quick
          test_compound_tag_statistics;
      ] );
    ( "core.authority",
      [
        Alcotest.test_case "declassify needs authority" `Quick
          test_declassify_requires_authority;
        Alcotest.test_case "PERFORM addsecrecy/declassify" `Quick
          test_perform_addsecrecy_declassify;
        Alcotest.test_case "authority ops need empty label" `Quick
          test_authority_state_requires_empty_label;
        Alcotest.test_case "reduced authority" `Quick test_with_reduced_authority;
      ] );
    ( "core.views",
      [
        Alcotest.test_case "declassifying view" `Quick test_declassifying_view;
        Alcotest.test_case "declassifying view needs authority" `Quick
          test_declassifying_view_requires_authority;
        Alcotest.test_case "plain view confined" `Quick test_plain_view_no_declassification;
        Alcotest.test_case "outer join NULLs sensitive fields" `Quick
          test_outer_join_nulls_for_sensitive;
      ] );
    ( "core.transactions",
      [
        Alcotest.test_case "commit label rule blocks leak" `Quick
          test_commit_label_rule_blocks_leak;
        Alcotest.test_case "declassify then commit" `Quick
          test_commit_label_rule_declassify_allows;
        Alcotest.test_case "mixed-label transaction" `Quick test_mixed_label_transaction;
        Alcotest.test_case "clearance rule (serializable)" `Quick
          test_clearance_rule_serializable;
        Alcotest.test_case "no clearance under SI" `Quick test_snapshot_mode_no_clearance;
        Alcotest.test_case "write skew under SI (anomaly)" `Quick
          test_write_skew_under_si;
        Alcotest.test_case "write skew prevented (serializable)" `Quick
          test_write_skew_prevented_serializable;
        Alcotest.test_case "serializable locks released" `Quick
          test_serializable_locks_released;
        Alcotest.test_case "rollback" `Quick test_rollback_undoes;
      ] );
    ( "core.constraints",
      [
        Alcotest.test_case "polyinstantiation (paper example)" `Quick
          test_polyinstantiation_paper_example;
        Alcotest.test_case "label constraint prevents polyinst" `Quick
          test_label_constraint_prevents_polyinstantiation;
        Alcotest.test_case "label constraint superset" `Quick
          test_label_constraint_superset;
        Alcotest.test_case "FK probing attack blocked" `Quick
          test_fk_probing_attack_blocked;
        Alcotest.test_case "FK missing target" `Quick test_fk_missing_target_fails;
        Alcotest.test_case "FK DECLASSIFYING clause" `Quick test_fk_declassifying_clause;
        Alcotest.test_case "FK same label no clause" `Quick
          test_fk_same_label_no_clause_needed;
        Alcotest.test_case "FK delete restricted" `Quick test_fk_delete_restricted;
      ] );
    ( "core.triggers",
      [
        Alcotest.test_case "ordinary trigger as caller" `Quick
          test_ordinary_trigger_runs_as_caller;
        Alcotest.test_case "authority closure trigger" `Quick
          test_authority_closure_trigger;
        Alcotest.test_case "deferred trigger query label" `Quick
          test_deferred_trigger_uses_query_label;
      ] );
    ( "core.closures",
      [ Alcotest.test_case "stored authority closure" `Quick test_stored_authority_closure ] );
    ( "core.extensions",
      [
        Alcotest.test_case "relabeling view (billing)" `Quick test_relabeling_view;
        Alcotest.test_case "per-tuple iterator" `Quick test_query_each_iterator;
      ] );
    ( "core.baseline",
      [ Alcotest.test_case "ifc off = plain SQL" `Quick test_baseline_mode_plain_sql ] );
    ("core.maintenance", [ Alcotest.test_case "vacuum" `Quick test_vacuum_core ]);
  ]

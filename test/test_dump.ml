(* Tests for label-preserving dump/restore (the paper's modified
   pg_dump, section 7.2) and for updatable declassifying views. *)

module Db = Ifdb_core.Database
module Dump = Ifdb_core.Dump
module Errors = Ifdb_core.Errors
module Label = Ifdb_difc.Label
module Value = Ifdb_rel.Value
module Tuple = Ifdb_rel.Tuple

let mk_world () =
  let db = Db.create ~seed:0xD0D0 () in
  let admin = Db.connect_admin db in
  let owner = Db.create_principal admin ~name:"owner" in
  let os = Db.connect db ~principal:owner in
  let t_red = Db.create_tag os ~name:"red" () in
  let t_blue = Db.create_tag os ~name:"blue" () in
  (db, os, t_red, t_blue)

let populate s t_red t_blue =
  ignore (Db.exec s "CREATE TABLE things (id INT PRIMARY KEY, name TEXT)");
  ignore (Db.exec s "INSERT INTO things VALUES (1, 'public')");
  Db.add_secrecy s t_red;
  ignore (Db.exec s "INSERT INTO things VALUES (2, 'red secret')");
  Db.add_secrecy s t_blue;
  ignore (Db.exec s "INSERT INTO things VALUES (3, 'red+blue secret')");
  Db.declassify s t_red;
  ignore (Db.exec s "INSERT INTO things VALUES (4, 'blue secret')");
  Db.declassify s t_blue

let all_rows s t_red t_blue =
  Db.add_secrecy s t_red;
  Db.add_secrecy s t_blue;
  let rows =
    List.map
      (fun row ->
        ( Value.to_int (Tuple.get row 0),
          Value.to_text (Tuple.get row 1),
          Label.cardinal (Tuple.label row) ))
      (Db.query s "SELECT id, name FROM things ORDER BY id")
  in
  Db.declassify s t_red;
  Db.declassify s t_blue;
  rows

let test_dump_restore_roundtrip () =
  let db1, s1, red1, blue1 = mk_world () in
  populate s1 red1 blue1;
  let script = Dump.dump db1 in
  (* the dump brackets labeled runs with addsecrecy/declassify by name *)
  Alcotest.(check bool) "mentions addsecrecy" true
    (String.length script > 0
    && List.exists
         (fun line ->
           String.length line >= 7 && String.sub line 0 7 = "PERFORM")
         (String.split_on_char '\n' script));
  (* restore into a fresh universe with the same tag names *)
  let _db2, s2, red2, blue2 = mk_world () in
  Dump.restore s2 script;
  Alcotest.(check bool) "restored contents and labels match" true
    (all_rows s1 red1 blue1 = all_rows s2 red2 blue2);
  (* label-specific check: row 3 carries both tags after restore *)
  Db.add_secrecy s2 red2;
  Db.add_secrecy s2 blue2;
  let row = Db.query_one s2 "SELECT * FROM things WHERE id = 3" in
  Alcotest.(check bool) "two-tag label restored" true
    (Label.equal (Tuple.label row) (Label.of_list [ red2; blue2 ]))

let test_restore_requires_authority () =
  let db1, s1, red1, blue1 = mk_world () in
  populate s1 red1 blue1;
  let script = Dump.dump db1 in
  let db2, _, _, _ = mk_world () in
  let admin2 = Db.connect_admin db2 in
  let nobody = Db.create_principal admin2 ~name:"nobody" in
  let ns = Db.connect db2 ~principal:nobody in
  (* the unprivileged restorer can raise labels but never drop them, so
     replaying the dump fails at the first declassify *)
  match Dump.restore ns script with
  | exception Errors.Authority_required _ -> ()
  | exception Ifdb_difc.Authority.Denied _ -> ()
  | () -> Alcotest.fail "restore without authority must fail"

let test_dump_table_fk_order () =
  let db = Db.create () in
  let s = Db.connect_admin db in
  ignore (Db.exec s "CREATE TABLE parent (id INT PRIMARY KEY)");
  ignore
    (Db.exec s
       "CREATE TABLE child (id INT PRIMARY KEY, pid INT, FOREIGN KEY (pid) \
        REFERENCES parent (id))");
  ignore (Db.exec s "INSERT INTO parent VALUES (1)");
  ignore (Db.exec s "INSERT INTO child VALUES (10, 1)");
  let script = Dump.dump db in
  let find hay needle =
    let n = String.length hay and m = String.length needle in
    let rec go i =
      if i + m > n then -1
      else if String.sub hay i m = needle then i
      else go (i + 1)
    in
    go 0
  in
  let parent_pos = find script "CREATE TABLE parent"
  and child_pos = find script "CREATE TABLE child" in
  Alcotest.(check bool) "both present" true (parent_pos >= 0 && child_pos >= 0);
  Alcotest.(check bool) "parent dumped before child" true (parent_pos < child_pos);
  (* and the whole dump replays cleanly *)
  let db2 = Db.create () in
  let s2 = Db.connect_admin db2 in
  Dump.restore s2 script;
  Alcotest.(check int) "child restored" 1
    (List.length (Db.query s2 "SELECT * FROM child"))

(* ------------------------------------------------------------------ *)
(* Updatable declassifying views                                       *)
(* ------------------------------------------------------------------ *)

let test_insert_through_declassifying_view () =
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let owner = Db.create_principal admin ~name:"owner" in
  let os = Db.connect db ~principal:owner in
  let contact_tag = Db.create_tag os ~name:"contacts" () in
  ignore
    (Db.exec admin
       "CREATE TABLE People (id INT PRIMARY KEY, name TEXT, email TEXT)");
  ignore
    (Db.exec os
       "CREATE VIEW Names AS SELECT id, name FROM People WITH DECLASSIFYING \
        (contacts)");
  (* an uncontaminated writer inserts through the view: the stored row
     carries the view's label so the base table stays protected *)
  (match Db.exec os "INSERT INTO Names (id, name) VALUES (1, 'ada')" with
  | Db.Affected 1 -> ()
  | _ -> Alcotest.fail "view insert");
  (* visible through the view at an empty label *)
  let stranger = Db.create_principal admin ~name:"stranger" in
  let ss = Db.connect db ~principal:stranger in
  Alcotest.(check int) "view shows it" 1
    (List.length (Db.query ss "SELECT * FROM Names"));
  (* but the base row is labeled {contacts} *)
  Alcotest.(check int) "base hidden" 0
    (List.length (Db.query ss "SELECT * FROM People"));
  Db.add_secrecy os contact_tag;
  let row = Db.query_one os "SELECT * FROM People" in
  Alcotest.(check bool) "base row labeled" true
    (Label.equal (Tuple.label row) (Label.singleton contact_tag));
  Alcotest.(check bool) "unprojected column NULL" true
    (Value.is_null (Tuple.get row 2))

let test_view_insert_restrictions () =
  let db = Db.create () in
  let admin = Db.connect_admin db in
  ignore (Db.exec admin "CREATE TABLE Base (a INT, b INT)");
  ignore (Db.exec admin "CREATE VIEW Agg AS SELECT SUM(a) AS s FROM Base");
  (match Db.exec admin "INSERT INTO Agg VALUES (1)" with
  | exception Errors.Sql_error _ -> ()
  | _ -> Alcotest.fail "aggregate views are not updatable");
  ignore (Db.exec admin "CREATE VIEW Expr AS SELECT a + 1 AS x FROM Base");
  match Db.exec admin "INSERT INTO Expr VALUES (1)" with
  | exception Errors.Sql_error _ -> ()
  | _ -> Alcotest.fail "expression views are not updatable"

let suites =
  [
    ( "dump",
      [
        Alcotest.test_case "round-trip with labels" `Quick test_dump_restore_roundtrip;
        Alcotest.test_case "restore needs authority" `Quick
          test_restore_requires_authority;
        Alcotest.test_case "FK-ordered dump" `Quick test_dump_table_fk_order;
      ] );
    ( "views.updatable",
      [
        Alcotest.test_case "insert through declassifying view" `Quick
          test_insert_through_declassifying_view;
        Alcotest.test_case "non-updatable shapes rejected" `Quick
          test_view_insert_restrictions;
      ] );
  ]

(* Tests for the static label-flow analyzer (lib/analysis) and the lint
   driver: one unit test per diagnostic class, a QCheck soundness
   property tying analyzer verdicts to runtime behavior, the
   prepare-time hook (warnings + strict mode), proven-empty scan
   pruning, and the checked-in lint corpus goldens. *)

module Db = Ifdb_core.Database
module Lint = Ifdb_core.Lint
module Errors = Ifdb_core.Errors
module Diag = Ifdb_analysis.Diag
module Label = Ifdb_difc.Label
module Buffer_pool = Ifdb_storage.Buffer_pool

let has_error code diags =
  List.exists (fun (d : Diag.t) -> d.Diag.d_code = code && Diag.is_error d) diags

let has_warning code diags =
  List.exists
    (fun (d : Diag.t) -> d.Diag.d_code = code && not (Diag.is_error d))
    diags

let any_error diags = List.exists Diag.is_error diags

let dump diags =
  String.concat "; " (List.map Diag.to_string diags)

(* Fixture: table [t(k INT)] holding two committed rows under each of
   six labels drawn from tags ta, tb, tc (all owned by [owner]). *)
type fx = { db : Db.t; admin : Db.session; owner : Ifdb_difc.Principal.t }

let labels6 = [ []; [ "ta" ]; [ "tb" ]; [ "ta"; "tb" ]; [ "tc" ]; [ "ta"; "tc" ] ]

let fixture ?strict_analysis () =
  let db = Db.create ?strict_analysis () in
  let admin = Db.connect_admin db in
  let owner = Db.create_principal admin ~name:"owner" in
  let os = Db.connect db ~principal:owner in
  List.iter (fun name -> ignore (Db.create_tag os ~name ())) [ "ta"; "tb"; "tc" ];
  ignore (Db.exec admin "CREATE TABLE t (k INT)");
  List.iter
    (fun names ->
      let s = Db.connect db ~principal:owner in
      List.iter (fun n -> Db.add_secrecy s (Db.find_tag db n)) names;
      ignore (Db.exec s "INSERT INTO t VALUES (1)");
      ignore (Db.exec s "INSERT INTO t VALUES (2)"))
    labels6;
  { db; admin; owner }

let connect_with fx names =
  let s = Db.connect fx.db ~principal:fx.owner in
  List.iter (fun n -> Db.add_secrecy s (Db.find_tag fx.db n)) names;
  s

(* ------------------------------------------------------------------ *)
(* Unit tests, one per diagnostic class                                *)
(* ------------------------------------------------------------------ *)

let test_doomed_write () =
  let fx = fixture () in
  let s = connect_with fx [ "ta" ] in
  (* session {ta} sees {} and {ta}; a bare UPDATE must try to write the
     {} rows and die on the Write Rule *)
  let diags = Db.analyze s "UPDATE t SET k = 0" in
  Alcotest.(check bool)
    ("doomed-write error: " ^ dump diags)
    true
    (has_error Diag.Doomed_write diags);
  (match Db.exec s "UPDATE t SET k = 0" with
  | _ -> Alcotest.fail "doomed UPDATE must raise at runtime"
  | exception Errors.Flow_violation _ -> ());
  (* the label-literal form: visible foreign partition, no other
     predicate *)
  let s2 = connect_with fx [ "ta"; "tb" ] in
  let diags = Db.analyze s2 "DELETE FROM t WHERE _label = {ta}" in
  Alcotest.(check bool)
    ("label-literal doomed delete: " ^ dump diags)
    true
    (has_error Diag.Doomed_write diags);
  (match Db.exec s2 "DELETE FROM t WHERE _label = {ta}" with
  | _ -> Alcotest.fail "doomed DELETE must raise at runtime"
  | exception Errors.Flow_violation _ -> ())

let test_doomed_write_demoted_by_predicate () =
  let fx = fixture () in
  let s = connect_with fx [ "ta" ] in
  (* a further predicate makes the match data-dependent: warning, not
     error — and here it matches nothing, so execution succeeds *)
  let diags = Db.analyze s "UPDATE t SET k = 0 WHERE k > 100" in
  Alcotest.(check bool)
    ("no error with restricting predicate: " ^ dump diags)
    false (any_error diags);
  match Db.exec s "UPDATE t SET k = 0 WHERE k > 100" with
  | Db.Affected 0 -> ()
  | _ -> Alcotest.fail "expected Affected 0"

let test_vacuous_query () =
  let fx = fixture () in
  let s = Db.connect fx.db ~principal:fx.owner in
  (* empty session label: {ta} partitions are invisible *)
  let sql = "SELECT * FROM t WHERE _label = {ta}" in
  let diags = Db.analyze s sql in
  Alcotest.(check bool)
    ("vacuous-query warning: " ^ dump diags)
    true
    (has_warning Diag.Vacuous_query diags);
  Alcotest.(check bool) "no error for vacuous select" false (any_error diags);
  Alcotest.(check int) "matches nothing" 0 (List.length (Db.query s sql))

let test_overbroad_declassify_and_revocation () =
  let fx = fixture () in
  let os = Db.connect fx.db ~principal:fx.owner in
  let view = "CREATE VIEW v AS SELECT k FROM t WITH DECLASSIFYING (ta)" in
  (* the owner has authority and ta occurs in the data: clean *)
  Alcotest.(check bool)
    "owner's declassifying view is clean" false
    (any_error (Db.analyze os view));
  (* delegation makes bob's identical view clean; revocation dooms it *)
  let bob = Db.create_principal fx.admin ~name:"bob" in
  let ta = Db.find_tag fx.db "ta" in
  Db.delegate os ~tag:ta ~grantee:bob;
  let bs = Db.connect fx.db ~principal:bob in
  Alcotest.(check bool)
    "delegated principal's view is clean" false
    (any_error (Db.analyze bs view));
  Db.revoke os ~tag:ta ~grantee:bob;
  let diags = Db.analyze bs view in
  Alcotest.(check bool)
    ("revocation dooms the view: " ^ dump diags)
    true
    (has_error Diag.Overbroad_declassify diags)

let test_useless_declassify_warns () =
  let fx = fixture () in
  let os = Db.connect fx.db ~principal:fx.owner in
  ignore (Db.create_tag os ~name:"unused" ());
  let diags =
    Db.analyze os "CREATE VIEW v AS SELECT k FROM t WITH DECLASSIFYING (unused)"
  in
  Alcotest.(check bool)
    ("declassifying an absent tag warns: " ^ dump diags)
    true
    (has_warning Diag.Overbroad_declassify diags)

let test_commit_trap () =
  let fx = fixture () in
  (* owner holds authority: the trap is flagged as fixable *)
  let s = connect_with fx [] in
  ignore (Db.exec s "BEGIN");
  ignore (Db.exec s "INSERT INTO t VALUES (7)");
  Db.add_secrecy s (Db.find_tag fx.db "ta");
  let diags = Db.analyze s "COMMIT" in
  Alcotest.(check bool)
    ("commit-trap error: " ^ dump diags)
    true
    (has_error Diag.Commit_trap diags);
  let msg =
    match List.find_opt Diag.is_error diags with
    | Some d -> d.Diag.d_message
    | None -> ""
  in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool)
    "owner's trap mentions the declassify fix" true
    (contains msg "could declassify");
  (match Db.exec s "COMMIT" with
  | _ -> Alcotest.fail "trapped COMMIT must raise"
  | exception Errors.Flow_violation _ -> ());
  (* a principal without authority gets the unfixable wording *)
  let mallory = Db.create_principal fx.admin ~name:"mallory" in
  let ms = Db.connect fx.db ~principal:mallory in
  ignore (Db.exec ms "BEGIN");
  ignore (Db.exec ms "INSERT INTO t VALUES (8)");
  Db.add_secrecy ms (Db.find_tag fx.db "ta");
  let diags = Db.analyze ms "COMMIT" in
  let msg =
    match List.find_opt Diag.is_error diags with
    | Some d -> d.Diag.d_message
    | None -> ""
  in
  Alcotest.(check bool)
    ("unfixable trap says roll back: " ^ msg)
    true
    (contains msg "only roll back");
  match Db.exec ms "ROLLBACK" with
  | Db.Done _ -> ()
  | _ -> Alcotest.fail "rollback"

let test_fk_leak () =
  let fx = fixture () in
  (* creating a table whose FK points at labeled partitions warns *)
  let diags =
    Db.analyze fx.admin
      "CREATE TABLE child (id INT, pk INT, FOREIGN KEY (pk) REFERENCES t (k))"
  in
  Alcotest.(check bool)
    ("fk-leak warning on CREATE TABLE: " ^ dump diags)
    true
    (has_warning Diag.Fk_leak diags)

let test_fk_infeasible_insert () =
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let owner = Db.create_principal admin ~name:"owner" in
  let os = Db.connect db ~principal:owner in
  ignore (Db.create_tag os ~name:"secret" ());
  ignore
    (Db.exec admin "CREATE TABLE parent (id INT NOT NULL, PRIMARY KEY (id))");
  ignore
    (Db.exec admin
       "CREATE TABLE child (id INT, pid INT, FOREIGN KEY (pid) REFERENCES \
        parent (id))");
  let ws = Db.connect db ~principal:owner in
  Db.add_secrecy ws (Db.find_tag db "secret");
  ignore (Db.exec ws "INSERT INTO parent VALUES (1)");
  (* every live parent row is {secret}; an unlabeled INSERT with a
     definite (non-NULL constant) FK value cannot satisfy the Foreign
     Key Rule without DECLASSIFYING *)
  let s = Db.connect db ~principal:owner in
  let diags = Db.analyze s "INSERT INTO child VALUES (10, 1)" in
  Alcotest.(check bool)
    ("fk-leak error on definite insert: " ^ dump diags)
    true
    (has_error Diag.Fk_leak diags);
  (* a NULL reference never engages the FK: clean *)
  let diags = Db.analyze s "INSERT INTO child VALUES (10, NULL)" in
  Alcotest.(check bool)
    ("NULL reference is clean: " ^ dump diags)
    false (any_error diags)

(* ------------------------------------------------------------------ *)
(* The prepare-time hook                                               *)
(* ------------------------------------------------------------------ *)

let test_session_warnings () =
  let fx = fixture () in
  let s = Db.connect fx.db ~principal:fx.owner in
  ignore (Db.exec s "SELECT * FROM t WHERE _label = {ta}");
  Alcotest.(check bool)
    "vacuous warning attached to the session" true
    (has_warning Diag.Vacuous_query (Db.session_warnings s));
  ignore (Db.exec s "SELECT * FROM t");
  Alcotest.(check int)
    "clean statement clears the warnings" 0
    (List.length (Db.session_warnings s))

let test_strict_mode () =
  let fx = fixture ~strict_analysis:true () in
  let s = connect_with fx [ "ta" ] in
  (match Db.exec s "UPDATE t SET k = 0" with
  | _ -> Alcotest.fail "strict mode must reject the doomed UPDATE at prepare"
  | exception Errors.Flow_violation m ->
      Alcotest.(check bool)
        ("prepare-time rejection is marked: " ^ m)
        true
        (String.length m >= 15 && String.sub m 0 15 = "static analysis"));
  (* warnings do not reject, even in strict mode *)
  match Db.exec s "SELECT * FROM t WHERE _label = {tb}" with
  | Db.Rows { tuples = []; _ } -> ()
  | _ -> Alcotest.fail "vacuous SELECT still runs (and matches nothing)"

let test_scan_pruning_skips_pages () =
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let owner = Db.create_principal admin ~name:"owner" in
  let os = Db.connect db ~principal:owner in
  ignore (Db.create_tag os ~name:"secret" ());
  ignore (Db.exec admin "CREATE TABLE p (k INT)");
  let ws = Db.connect db ~principal:owner in
  Db.add_secrecy ws (Db.find_tag db "secret");
  for i = 1 to 200 do
    ignore (Db.exec ws (Printf.sprintf "INSERT INTO p VALUES (%d)" i))
  done;
  let pool = Db.pool db in
  let touches () =
    let s = Buffer_pool.stats pool in
    s.Buffer_pool.hits + s.Buffer_pool.misses
  in
  (* a reader that can see the rows pays page accesses... *)
  Buffer_pool.reset_stats pool;
  Alcotest.(check int) "owner sees all rows" 200
    (List.length (Db.query ws "SELECT * FROM p"));
  let visible_touches = touches () in
  Alcotest.(check bool) "visible scan touches pages" true (visible_touches > 0);
  (* ...but a scan proven empty by the label partition counts is
     pruned before it touches the heap at all *)
  let blind = Db.connect db ~principal:owner in
  Buffer_pool.reset_stats pool;
  Alcotest.(check int) "blind reader sees nothing" 0
    (List.length (Db.query blind "SELECT * FROM p"));
  Alcotest.(check int) "pruned scan touches no pages" 0 (touches ())

(* ------------------------------------------------------------------ *)
(* QCheck: analyzer verdicts are sound w.r.t. the runtime              *)
(* ------------------------------------------------------------------ *)

let label_lit names = "{" ^ String.concat ", " names ^ "}"

let stmt_of kind li =
  let l = label_lit (List.nth labels6 li) in
  match kind with
  | 0 -> "UPDATE t SET k = 0"
  | 1 -> "DELETE FROM t"
  | 2 -> "UPDATE t SET k = 0 WHERE _label = " ^ l
  | 3 -> "DELETE FROM t WHERE _label = " ^ l
  | 4 -> "INSERT INTO t VALUES (42)"
  | _ -> "SELECT * FROM t WHERE _label = " ^ l

let session_tags bits =
  List.filteri (fun i _ -> bits land (1 lsl i) <> 0) [ "ta"; "tb"; "tc" ]

let soundness_prop (bits, kind, li) =
  (* fresh database per iteration: the analyzer's Error verdicts are
     promises about the *current committed data*, so the data must not
     drift across iterations *)
  let fx = fixture () in
  let s = connect_with fx (session_tags bits) in
  let sql = stmt_of kind li in
  let diags = Db.analyze s sql in
  let doomed = any_error diags in
  if kind = 5 then
    (* reads are never doomed; a vacuous verdict means zero rows *)
    (not doomed)
    && ((not (has_warning Diag.Vacuous_query diags))
       || Db.query s sql = [])
  else
    match Db.exec s sql with
    | _ -> not doomed
    | exception Errors.Flow_violation _ -> doomed
    | exception _ -> false

let soundness =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100
       ~name:"doomed verdicts match runtime Flow_violation exactly"
       (QCheck.make
          ~print:(fun (bits, kind, li) ->
            Printf.sprintf "session=%s stmt=%s"
              (label_lit (session_tags bits))
              (stmt_of kind li))
          QCheck.Gen.(triple (int_bound 7) (int_bound 5) (int_bound 5)))
       soundness_prop)

(* ------------------------------------------------------------------ *)
(* Lint corpus goldens                                                 *)
(* ------------------------------------------------------------------ *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* Every corpus script is linted in both modes: trace mode against
   FILE.expected, per-statement mode against FILE.stmt.expected.
   Expect-annotations must hold in both (expect-trace / expect-stmt
   scope a code to one mode), and both reports must match their
   goldens byte for byte. *)
let test_lint_corpus () =
  let dir = "lint_corpus" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".sql")
    |> List.sort compare
  in
  Alcotest.(check bool) "corpus present" true (List.length files >= 9);
  List.iter
    (fun f ->
      let path = Filename.concat dir f in
      let text = read_file path in
      let check mode suffix tag =
        let out = Lint.lint_script mode text in
        List.iter
          (fun fl -> Alcotest.fail (f ^ " (" ^ tag ^ "): " ^ fl))
          out.Lint.o_failures;
        Alcotest.(check string)
          (f ^ " (" ^ tag ^ "): report matches golden")
          (read_file (path ^ suffix))
          out.Lint.o_report
      in
      check Lint.trace_mode ".expected" "trace";
      check Lint.sql_mode ".stmt.expected" "stmt")
    files

let suites =
  [
    ( "analysis",
      [
        Alcotest.test_case "doomed write" `Quick test_doomed_write;
        Alcotest.test_case "predicate demotes doomed write" `Quick
          test_doomed_write_demoted_by_predicate;
        Alcotest.test_case "vacuous query" `Quick test_vacuous_query;
        Alcotest.test_case "overbroad declassify + revocation" `Quick
          test_overbroad_declassify_and_revocation;
        Alcotest.test_case "useless declassify warns" `Quick
          test_useless_declassify_warns;
        Alcotest.test_case "commit trap" `Quick test_commit_trap;
        Alcotest.test_case "fk leak on create table" `Quick test_fk_leak;
        Alcotest.test_case "fk infeasible insert" `Quick
          test_fk_infeasible_insert;
        Alcotest.test_case "session warnings" `Quick test_session_warnings;
        Alcotest.test_case "strict mode" `Quick test_strict_mode;
        Alcotest.test_case "proven-empty scan pruning" `Quick
          test_scan_pruning_skips_pages;
        soundness;
      ] );
    ("lint corpus", [ Alcotest.test_case "goldens" `Quick test_lint_corpus ]);
  ]

(* Tests for the relational data model: values, datatypes, schemas,
   tuples, expressions. *)

open Ifdb_rel
module Label = Ifdb_difc.Label
module Tag = Ifdb_difc.Tag

let v_int i = Value.Int i
let v_txt s = Value.Text s

(* ------------------------------------------------------------------ *)
(* Value                                                               *)
(* ------------------------------------------------------------------ *)

let test_value_equal () =
  Alcotest.(check bool) "int eq" true (Value.equal (v_int 3) (v_int 3));
  Alcotest.(check bool) "null eq null" true (Value.equal Value.Null Value.Null);
  Alcotest.(check bool) "null neq int" false (Value.equal Value.Null (v_int 0));
  Alcotest.(check bool) "int neq float" false
    (Value.equal (v_int 1) (Value.Float 1.0))

let test_value_compare () =
  Alcotest.(check bool) "int < int" true (Value.compare (v_int 1) (v_int 2) < 0);
  Alcotest.(check int) "int = float numerically" 0
    (Value.compare (v_int 2) (Value.Float 2.0));
  Alcotest.(check bool) "float < int numerically" true
    (Value.compare (Value.Float 1.5) (v_int 2) < 0);
  Alcotest.(check bool) "null sorts first" true
    (Value.compare Value.Null (v_int (-100)) < 0);
  Alcotest.(check bool) "text order" true
    (Value.compare (v_txt "abc") (v_txt "abd") < 0)

let test_value_coerce () =
  Alcotest.(check int) "to_int" 5 (Value.to_int (v_int 5));
  Alcotest.(check int) "float to_int" 3 (Value.to_int (Value.Float 3.7));
  Alcotest.(check (float 0.001)) "to_float" 5.0 (Value.to_float (v_int 5));
  Alcotest.(check string) "to_text int" "42" (Value.to_text (v_int 42));
  Alcotest.(check bool) "to_bool" true (Value.to_bool (Value.Bool true));
  (match Value.to_int (v_txt "x") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument")

let test_value_byte_size () =
  Alcotest.(check int) "int" 8 (Value.byte_size (v_int 1));
  Alcotest.(check int) "null" 0 (Value.byte_size Value.Null);
  Alcotest.(check int) "text" 9 (Value.byte_size (v_txt "hello"));
  Alcotest.(check int) "ints" 12 (Value.byte_size (Value.Ints [| 1; 2 |]))

(* ------------------------------------------------------------------ *)
(* Datatype                                                            *)
(* ------------------------------------------------------------------ *)

let test_datatype_accepts () =
  Alcotest.(check bool) "int" true (Datatype.accepts Datatype.Tint (v_int 1));
  Alcotest.(check bool) "null anywhere" true (Datatype.accepts Datatype.Tint Value.Null);
  Alcotest.(check bool) "int widens to float" true
    (Datatype.accepts Datatype.Tfloat (v_int 1));
  Alcotest.(check bool) "float not int" false
    (Datatype.accepts Datatype.Tint (Value.Float 1.0));
  Alcotest.(check bool) "text" false (Datatype.accepts Datatype.Tbool (v_txt "t"))

let test_datatype_names () =
  Alcotest.(check (option string)) "INT" (Some "INT")
    (Option.map Datatype.name (Datatype.of_name "integer"));
  Alcotest.(check (option string)) "TEXT" (Some "TEXT")
    (Option.map Datatype.name (Datatype.of_name "VARCHAR"));
  Alcotest.(check (option string)) "unknown" None
    (Option.map Datatype.name (Datatype.of_name "blob"))

(* ------------------------------------------------------------------ *)
(* Schema                                                              *)
(* ------------------------------------------------------------------ *)

let patients =
  Schema.make ~name:"patients"
    ~columns:
      [ ("name", Datatype.Ttext); ("dob", Datatype.Ttext); ("age", Datatype.Tint) ]
    ~nullable:[ "age" ] ~primary_key:[ "name"; "dob" ] ()

let test_schema_cols () =
  Alcotest.(check int) "index" 1 (Schema.col_index patients "dob");
  Alcotest.(check int) "case-insensitive" 0 (Schema.col_index patients "NAME");
  Alcotest.(check bool) "has" false (Schema.has_column patients "zip");
  Alcotest.(check int) "arity" 3 (Schema.arity patients)

let test_schema_check_values () =
  let ok = Schema.check_values patients [| v_txt "Bob"; v_txt "6/26/78"; v_int 44 |] in
  Alcotest.(check bool) "ok" true (ok = Ok ());
  (match Schema.check_values patients [| v_txt "Bob"; Value.Null; v_int 1 |] with
  | Error msg -> Alcotest.(check bool) "not null msg" true
      (String.length msg > 0)
  | Ok () -> Alcotest.fail "expected NOT NULL violation");
  (match Schema.check_values patients [| v_txt "Bob"; v_txt "x"; v_txt "old" |] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected type violation");
  (match Schema.check_values patients [| v_txt "Bob" |] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected arity violation");
  Alcotest.(check bool) "nullable col accepts null" true
    (Schema.check_values patients [| v_txt "B"; v_txt "d"; Value.Null |] = Ok ())

let test_schema_bad_key () =
  match
    Schema.make ~name:"t" ~columns:[ ("a", Datatype.Tint) ] ~primary_key:[ "b" ] ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_schema_all_uniques () =
  let s =
    Schema.make ~name:"t"
      ~columns:[ ("a", Datatype.Tint); ("b", Datatype.Tint) ]
      ~primary_key:[ "a" ]
      ~uniques:[ ("t_b_key", [ "b" ]) ]
      ()
  in
  Alcotest.(check (list string)) "names" [ "t_pkey"; "t_b_key" ]
    (List.map (fun u -> u.Schema.uq_name) (Schema.all_uniques s))

(* ------------------------------------------------------------------ *)
(* Tuple                                                               *)
(* ------------------------------------------------------------------ *)

let test_tuple_sizes () =
  let lbl = Label.of_list [ Tag.of_int 1; Tag.of_int 2 ] in
  let t = Tuple.make ~values:[| v_int 1; v_txt "ab" |] ~label:lbl in
  (* header 24 + int 8 + text (4+2) + label 2*4 *)
  Alcotest.(check int) "labeled" 46 (Tuple.byte_size t);
  Alcotest.(check int) "unlabeled" 38 (Tuple.byte_size_unlabeled t);
  let t0 = Tuple.make ~values:[| v_int 1 |] ~label:Label.empty in
  Alcotest.(check int) "empty label adds nothing"
    (Tuple.byte_size_unlabeled t0) (Tuple.byte_size t0)

let test_tuple_project () =
  let lbl = Label.singleton (Tag.of_int 7) in
  let t = Tuple.make ~values:[| v_int 1; v_int 2; v_int 3 |] ~label:lbl in
  let p = Tuple.project t [| 2; 0 |] in
  Alcotest.(check bool) "values" true
    (Value.equal (Tuple.get p 0) (v_int 3) && Value.equal (Tuple.get p 1) (v_int 1));
  Alcotest.(check bool) "label preserved" true (Label.equal (Tuple.label p) lbl)

(* ------------------------------------------------------------------ *)
(* Expr                                                                *)
(* ------------------------------------------------------------------ *)

let env = Expr.null_env

let row_label = Label.of_list [ Tag.of_int 3; Tag.of_int 8 ]

let row =
  Tuple.make
    ~values:[| v_int 10; v_txt "hello"; Value.Null; Value.Bool true; Value.Float 2.5 |]
    ~label:row_label

let ev e = Expr.eval env row e
let check_val = Alcotest.testable Value.pp Value.equal

let test_expr_arith () =
  let open Expr in
  Alcotest.check check_val "add" (v_int 13)
    (ev (Binop (Add, Col 0, Const (v_int 3))));
  Alcotest.check check_val "mixed float" (Value.Float 12.5)
    (ev (Binop (Add, Col 0, Col 4)));
  Alcotest.check check_val "div int" (v_int 3)
    (ev (Binop (Div, Col 0, Const (v_int 3))));
  Alcotest.check check_val "mod" (v_int 1)
    (ev (Binop (Mod, Col 0, Const (v_int 3))));
  Alcotest.check check_val "neg" (v_int (-10)) (ev (Unop (Neg, Col 0)));
  (match ev (Expr.Binop (Div, Col 0, Const (v_int 0))) with
  | exception Expr.Type_error _ -> ()
  | _ -> Alcotest.fail "expected div by zero error")

let test_expr_null_propagation () =
  let open Expr in
  Alcotest.check check_val "null + int" Value.Null
    (ev (Binop (Add, Col 2, Const (v_int 1))));
  Alcotest.check check_val "null = null is null" Value.Null
    (ev (Binop (Eq, Col 2, Col 2)));
  Alcotest.check check_val "is null" (Value.Bool true) (ev (Is_null (Col 2)));
  Alcotest.check check_val "is not null" (Value.Bool true) (ev (Is_not_null (Col 0)));
  Alcotest.check check_val "not null is null" Value.Null (ev (Unop (Not, Col 2)))

let test_expr_kleene () =
  let open Expr in
  let null = Const Value.Null and t = Const (Value.Bool true)
  and f = Const (Value.Bool false) in
  Alcotest.check check_val "false and null = false" (Value.Bool false)
    (ev (Binop (And, f, null)));
  Alcotest.check check_val "null and false = false" (Value.Bool false)
    (ev (Binop (And, null, f)));
  Alcotest.check check_val "true and null = null" Value.Null
    (ev (Binop (And, t, null)));
  Alcotest.check check_val "true or null = true" (Value.Bool true)
    (ev (Binop (Or, t, null)));
  Alcotest.check check_val "null or true = true" (Value.Bool true)
    (ev (Binop (Or, null, t)));
  Alcotest.check check_val "false or null = null" Value.Null
    (ev (Binop (Or, f, null)))

let test_expr_compare_like_in () =
  let open Expr in
  Alcotest.check check_val "lt" (Value.Bool true)
    (ev (Binop (Lt, Col 0, Const (v_int 11))));
  Alcotest.check check_val "text eq" (Value.Bool true)
    (ev (Binop (Eq, Col 1, Const (v_txt "hello"))));
  Alcotest.check check_val "like" (Value.Bool true) (ev (Like (Col 1, "he%o")));
  Alcotest.check check_val "like underscore" (Value.Bool true)
    (ev (Like (Col 1, "h_llo")));
  Alcotest.check check_val "not like" (Value.Bool false) (ev (Like (Col 1, "x%")));
  Alcotest.check check_val "in" (Value.Bool true)
    (ev (In_list (Col 0, [ v_int 9; v_int 10 ])));
  Alcotest.check check_val "not in" (Value.Bool false)
    (ev (In_list (Col 0, [ v_int 9 ])));
  Alcotest.check check_val "null in = null" Value.Null
    (ev (In_list (Col 2, [ v_int 9 ])));
  Alcotest.check check_val "concat" (v_txt "hello!")
    (ev (Binop (Concat, Col 1, Const (v_txt "!"))))

let test_expr_case_fn () =
  let open Expr in
  let e =
    Case
      ( [ (Binop (Gt, Col 0, Const (v_int 100)), Const (v_txt "big"));
          (Binop (Gt, Col 0, Const (v_int 5)), Const (v_txt "mid")) ],
        Const (v_txt "small") )
  in
  Alcotest.check check_val "case picks mid" (v_txt "mid") (ev e);
  let env = { Expr.fn = (fun name args ->
      match (name, args) with
      | "abs", [ Value.Int i ] -> Value.Int (abs i)
      | _ -> failwith "no");
    params = [||] } in
  Alcotest.check check_val "fn" (v_int 10)
    (Expr.eval env row (Fn ("abs", [ Unop (Neg, Col 0) ])))

let test_expr_pred () =
  let open Expr in
  Alcotest.(check bool) "true" true
    (Expr.eval_pred env row (Binop (Gt, Col 0, Const (v_int 1))));
  Alcotest.(check bool) "null is not true" false
    (Expr.eval_pred env row (Binop (Gt, Col 2, Const (v_int 1))));
  Alcotest.(check bool) "false" false
    (Expr.eval_pred env row (Binop (Lt, Col 0, Const (v_int 1))))

let test_expr_columns_shift () =
  let open Expr in
  let e = Binop (And, Binop (Eq, Col 3, Col 1), Like (Col 1, "x")) in
  Alcotest.(check (list int)) "columns_used" [ 1; 3 ] (Expr.columns_used e);
  Alcotest.(check (list int)) "shifted" [ 6; 8 ]
    (Expr.columns_used (Expr.shift_columns ~by:5 e))

let test_expr_row_label () =
  let open Expr in
  Alcotest.check check_val "_label reads the row label" (Value.Ints [| 3; 8 |])
    (ev Row_label);
  (* exact-label queries (paper section 4.2): _label = {3, 8} *)
  Alcotest.check check_val "exact label match" (Value.Bool true)
    (ev (Binop (Eq, Row_label, Const (Value.Ints [| 3; 8 |]))));
  Alcotest.check check_val "exact label mismatch" (Value.Bool false)
    (ev (Binop (Eq, Row_label, Const (Value.Ints [| 3 |]))))

let test_expr_type_errors () =
  let open Expr in
  (match ev (Binop (Add, Col 1, Const (v_int 1))) with
  | exception Expr.Type_error _ -> ()
  | _ -> Alcotest.fail "text + int should fail");
  (match ev (Binop (Lt, Col 1, Const (v_int 1))) with
  | exception Expr.Type_error _ -> ()
  | _ -> Alcotest.fail "text < int should fail")

(* LIKE property: against a reference matcher built on Str-free naive
   dynamic programming. *)
let naive_like s p =
  let ns = String.length s and np = String.length p in
  let dp = Array.make_matrix (ns + 1) (np + 1) false in
  dp.(0).(0) <- true;
  for j = 1 to np do
    if p.[j - 1] = '%' then dp.(0).(j) <- dp.(0).(j - 1)
  done;
  for i = 1 to ns do
    for j = 1 to np do
      dp.(i).(j) <-
        (match p.[j - 1] with
        | '%' -> dp.(i).(j - 1) || dp.(i - 1).(j)
        | '_' -> dp.(i - 1).(j - 1)
        | c -> c = s.[i - 1] && dp.(i - 1).(j - 1))
    done
  done;
  dp.(ns).(np)

let like_prop =
  let gen =
    QCheck.Gen.(
      pair
        (string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (int_bound 8))
        (string_size ~gen:(oneofl [ 'a'; 'b'; '%'; '_' ]) (int_bound 6)))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:2000 ~name:"LIKE matches reference matcher"
       (QCheck.make ~print:(fun (s, p) -> Printf.sprintf "%S ~ %S" s p) gen)
       (fun (s, p) -> Expr.like_match s ~pattern:p = naive_like s p))

let suites =
  [
    ( "rel.value",
      [
        Alcotest.test_case "equal" `Quick test_value_equal;
        Alcotest.test_case "compare" `Quick test_value_compare;
        Alcotest.test_case "coerce" `Quick test_value_coerce;
        Alcotest.test_case "byte size" `Quick test_value_byte_size;
      ] );
    ( "rel.datatype",
      [
        Alcotest.test_case "accepts" `Quick test_datatype_accepts;
        Alcotest.test_case "names" `Quick test_datatype_names;
      ] );
    ( "rel.schema",
      [
        Alcotest.test_case "columns" `Quick test_schema_cols;
        Alcotest.test_case "check_values" `Quick test_schema_check_values;
        Alcotest.test_case "bad key rejected" `Quick test_schema_bad_key;
        Alcotest.test_case "all_uniques" `Quick test_schema_all_uniques;
      ] );
    ( "rel.tuple",
      [
        Alcotest.test_case "byte sizes" `Quick test_tuple_sizes;
        Alcotest.test_case "project" `Quick test_tuple_project;
      ] );
    ( "rel.expr",
      [
        Alcotest.test_case "arithmetic" `Quick test_expr_arith;
        Alcotest.test_case "null propagation" `Quick test_expr_null_propagation;
        Alcotest.test_case "kleene and/or" `Quick test_expr_kleene;
        Alcotest.test_case "compare/like/in" `Quick test_expr_compare_like_in;
        Alcotest.test_case "case & functions" `Quick test_expr_case_fn;
        Alcotest.test_case "predicates" `Quick test_expr_pred;
        Alcotest.test_case "columns_used/shift" `Quick test_expr_columns_shift;
        Alcotest.test_case "_label access" `Quick test_expr_row_label;
        Alcotest.test_case "type errors" `Quick test_expr_type_errors;
        like_prop;
      ] );
  ]

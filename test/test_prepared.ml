(* Prepared statements + the generation-stamped plan cache (PR 8).

   The cache must be invisible: a trace executed through
   PREPARE/EXECUTE with $n parameters must be observationally
   identical — result values, result labels, error outcomes and the
   IFC audit stream — to the same trace executed as literal SQL on a
   database with the plan cache disabled.  Confinement is re-derived
   at scan time on every execution, so label changes, delegation
   flips and DDL between EXECUTEs must all be reflected immediately,
   with the stamp mechanism (catalog version, authority generation,
   session-label id) re-planning behind the scenes. *)

module Db = Ifdb_core.Database
module Errors = Ifdb_core.Errors
module Label = Ifdb_difc.Label
module Value = Ifdb_rel.Value
module Tuple = Ifdb_rel.Tuple
module Audit = Ifdb_obs.Audit
module Trace = Ifdb_obs.Trace

let par_width =
  match Sys.getenv_opt "IFDB_TEST_PARALLELISM" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 4)
  | None -> 4

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let metric db name =
  Option.value (List.assoc_opt name (Db.metrics_snapshot db)) ~default:0.0

(* ------------------------------------------------------------------ *)
(* Oracle: prepared trace = direct trace                               *)
(* ------------------------------------------------------------------ *)

(* Labels are masks over two tags; ops carry randomized bindings.  The
   direct replay renders each op as literal SQL against a database
   with the plan cache off; the prepared replay PREPAREs one template
   per op shape up front and EXECUTEs it with the bindings. *)
type op =
  | Insert of int * int * int  (* id, v, session label mask *)
  | Update of int * int * int  (* id, new v, session label mask *)
  | Delete of int * int        (* id, session label mask *)
  | Query of int               (* reader label mask *)
  | Query_from of int * int    (* lower id bound, reader label mask *)

let pp_op = function
  | Insert (id, v, m) -> Printf.sprintf "Insert(%d,%d,%d)" id v m
  | Update (id, v, m) -> Printf.sprintf "Update(%d,%d,%d)" id v m
  | Delete (id, m) -> Printf.sprintf "Delete(%d,%d)" id m
  | Query m -> Printf.sprintf "Query(%d)" m
  | Query_from (lo, m) -> Printf.sprintf "QueryFrom(%d,%d)" lo m

let gen_op =
  QCheck.Gen.(
    let id = int_bound 7 and v = int_bound 9 and mask = int_bound 3 in
    frequency
      [
        (4, map3 (fun i x m -> Insert (i, x, m)) id v mask);
        (2, map3 (fun i x m -> Update (i, x, m)) id v mask);
        (2, map2 (fun i m -> Delete (i, m)) id mask);
        (2, map (fun m -> Query m) mask);
        (2, map2 (fun lo m -> Query_from (lo, m)) id mask);
      ])

let gen_trace = QCheck.Gen.(list_size (int_range 5 30) gen_op)

type outcome =
  | Rows of (string list * string) list
  | Count of int
  | Error of string

let row_key t =
  ( List.map Value.to_string (Array.to_list (Tuple.values t)),
    Label.to_string (Tuple.label t) )

let to_outcome = function
  | Db.Rows { tuples; _ } -> Rows (List.map row_key tuples)
  | Db.Affected n -> Count n
  | Db.Done _ -> Count 0

let templates =
  [
    ("ins", "INSERT INTO t VALUES ($1, $2)");
    ("upd", "UPDATE t SET v = $1 WHERE id = $2");
    ("del", "DELETE FROM t WHERE id = $1");
    ("sel", "SELECT id, v FROM t ORDER BY id, v");
    ("sel_from", "SELECT id, v FROM t WHERE id >= $1 ORDER BY id, v");
  ]

(* One persistent session per mask in both replays, created in the
   same order, so clearance-raise audit events line up. *)
let replay ~prepared ~parallelism ops =
  let db = Db.create ~plan_cache:prepared ~parallelism ~morsel_size:16 () in
  let admin = Db.connect_admin db in
  let owner = Db.create_principal admin ~name:"owner" in
  let os = Db.connect db ~principal:owner in
  let ta = Db.create_tag os ~name:"ta" () in
  let tb = Db.create_tag os ~name:"tb" () in
  ignore (Db.exec admin "CREATE TABLE t (id INT PRIMARY KEY, v INT)");
  let sessions =
    Array.init 4 (fun mask ->
        let s = Db.connect db ~principal:owner in
        if mask land 1 <> 0 then Db.add_secrecy s ta;
        if mask land 2 <> 0 then Db.add_secrecy s tb;
        if prepared then
          List.iter
            (fun (name, sql) ->
              ignore (Db.exec s (Printf.sprintf "PREPARE %s AS %s" name sql)))
            templates;
        s)
  in
  let run mask name args literal =
    let s = sessions.(mask) in
    match
      if prepared then Db.execute_prepared s name args else Db.exec s literal
    with
    | r -> to_outcome r
    | exception Errors.Flow_violation m -> Error ("flow: " ^ m)
    | exception Errors.Constraint_violation m -> Error ("constraint: " ^ m)
    | exception Errors.Sql_error m -> Error ("sql: " ^ m)
  in
  let outcomes =
    List.map
      (fun op ->
        match op with
        | Insert (id, v, m) ->
            run m "ins"
              [ Value.Int id; Value.Int v ]
              (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" id v)
        | Update (id, v, m) ->
            run m "upd"
              [ Value.Int v; Value.Int id ]
              (Printf.sprintf "UPDATE t SET v = %d WHERE id = %d" v id)
        | Delete (id, m) ->
            run m "del" [ Value.Int id ]
              (Printf.sprintf "DELETE FROM t WHERE id = %d" id)
        | Query m -> run m "sel" [] "SELECT id, v FROM t ORDER BY id, v"
        | Query_from (lo, m) ->
            run m "sel_from" [ Value.Int lo ]
              (Printf.sprintf
                 "SELECT id, v FROM t WHERE id >= %d ORDER BY id, v" lo))
      ops
  in
  let final =
    match run 3 "sel" [] "SELECT id, v FROM t ORDER BY id, v" with
    | Rows rows -> rows
    | Count _ | Error _ -> assert false
  in
  (* the statement text differs by design (EXECUTE ... AS ... vs the
     literal); who/what/which-tags must not *)
  let audit =
    List.map
      (fun ev -> (ev.Audit.ev_kind, ev.Audit.ev_principal, ev.Audit.ev_tags))
      (Audit.events (Db.audit_log db))
  in
  (outcomes, final, audit)

let check_equivalence ~parallelism ops =
  let a = replay ~prepared:true ~parallelism ops in
  let b = replay ~prepared:false ~parallelism ops in
  if a <> b then
    QCheck.Test.fail_reportf "prepared /= direct on@ [%s]"
      (String.concat "; " (List.map pp_op ops));
  true

let qcheck_equivalence ~count ~parallelism name =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name
       (QCheck.make
          ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
          gen_trace)
       (fun ops -> check_equivalence ~parallelism ops))

(* ------------------------------------------------------------------ *)
(* Statement lifecycle                                                 *)
(* ------------------------------------------------------------------ *)

let test_lifecycle () =
  let db = Db.create () in
  let s = Db.connect_admin db in
  ignore (Db.exec s "CREATE TABLE t (id INT PRIMARY KEY, v INT)");
  ignore (Db.exec s "INSERT INTO t VALUES (1, 10), (2, 20)");
  ignore (Db.exec s "PREPARE q AS SELECT v FROM t WHERE id = $1");
  (match Db.exec s "PREPARE q AS SELECT v FROM t" with
  | exception Errors.Sql_error _ -> ()
  | _ -> Alcotest.fail "duplicate PREPARE must fail");
  let got =
    match Db.execute_prepared s "q" [ Value.Int 2 ] with
    | Db.Rows { tuples = [ t ]; _ } -> Value.to_string (Tuple.get t 0)
    | _ -> Alcotest.fail "expected one row"
  in
  Alcotest.(check string) "bound execution" "20" got;
  (match Db.execute_prepared s "q" [] with
  | exception Errors.Sql_error _ -> ()
  | _ -> Alcotest.fail "wrong arity must fail");
  (match Db.execute_prepared s "nope" [] with
  | exception Errors.Sql_error _ -> ()
  | _ -> Alcotest.fail "unknown name must fail");
  let infos = Db.prepared_statements s in
  Alcotest.(check int) "one statement listed" 1 (List.length infos);
  let pi = List.hd infos in
  Alcotest.(check string) "name" "q" pi.Db.pi_name;
  Alcotest.(check int) "nparams" 1 pi.Db.pi_nparams;
  Alcotest.(check bool) "cached plan reused" true (pi.Db.pi_hits >= 0);
  ignore (Db.exec s "DEALLOCATE q");
  Alcotest.(check int) "deallocated" 0 (List.length (Db.prepared_statements s));
  (match Db.exec s "DEALLOCATE q" with
  | exception Errors.Sql_error _ -> ()
  | _ -> Alcotest.fail "DEALLOCATE of unknown name must fail");
  ignore (Db.exec s "PREPARE a AS SELECT v FROM t");
  ignore (Db.exec s "PREPARE b AS SELECT id FROM t");
  ignore (Db.exec s "DEALLOCATE ALL");
  Alcotest.(check int) "deallocate all" 0
    (List.length (Db.prepared_statements s))

(* ------------------------------------------------------------------ *)
(* Invalidation: DDL between EXECUTEs                                  *)
(* ------------------------------------------------------------------ *)

let test_invalidation_ddl () =
  let db = Db.create () in
  let s = Db.connect_admin db in
  ignore (Db.exec s "CREATE TABLE t (id INT PRIMARY KEY, v INT)");
  ignore (Db.exec s "INSERT INTO t VALUES (1, 5), (2, 6), (3, 7)");
  ignore (Db.exec s "PREPARE q AS SELECT id FROM t WHERE v = $1");
  let count args =
    match Db.execute_prepared s "q" args with
    | Db.Rows { tuples; _ } -> List.length tuples
    | _ -> Alcotest.fail "expected rows"
  in
  Alcotest.(check int) "before DDL" 1 (count [ Value.Int 6 ]);
  ignore (Db.execute_prepared s "q" [ Value.Int 6 ]);
  let inval0 = metric db "ifdb_plan_cache_invalidations_total" in
  (* DDL moves the catalog version: the cached plan is stale and must
     be rebuilt against the new catalog (now with an index on v) *)
  ignore (Db.exec s "CREATE INDEX t_v ON t (v)");
  Alcotest.(check int) "after CREATE INDEX" 1 (count [ Value.Int 6 ]);
  Alcotest.(check bool) "stale plan invalidated" true
    (metric db "ifdb_plan_cache_invalidations_total" > inval0);
  ignore (Db.exec s "DROP INDEX t_v");
  Alcotest.(check int) "after DROP INDEX" 1 (count [ Value.Int 6 ]);
  ignore (Db.exec s "INSERT INTO t VALUES (4, 6)");
  Alcotest.(check int) "data changes need no invalidation" 2
    (count [ Value.Int 6 ])

(* ------------------------------------------------------------------ *)
(* Invalidation: delegation -> revocation flip between EXECUTEs        *)
(* ------------------------------------------------------------------ *)

(* A prepared declassifying-view read must track authority changes:
   delegation lets the EXECUTE succeed, revocation makes the very next
   EXECUTE fail — no stale plan may keep the old verdict alive. *)
let test_invalidation_authority_flip () =
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let alice = Db.create_principal admin ~name:"alice" in
  let bob = Db.create_principal admin ~name:"bob" in
  let as_ = Db.connect db ~principal:alice in
  let tag = Db.create_tag as_ ~name:"secret" () in
  ignore (Db.exec admin "CREATE TABLE d (id INT PRIMARY KEY, v INT)");
  let w = Db.connect db ~principal:alice in
  Db.add_secrecy w tag;
  ignore (Db.exec w "INSERT INTO d VALUES (1, 10)");
  let bs = Db.connect db ~principal:bob in
  ignore (Db.exec bs "PREPARE read AS SELECT v FROM d WHERE id >= $1");
  let read () =
    match Db.execute_prepared bs "read" [ Value.Int 0 ] with
    | Db.Rows { tuples; _ } -> List.length tuples
    | _ -> Alcotest.fail "expected rows"
  in
  Alcotest.(check int) "public reader sees nothing" 0 (read ());
  (* raising needs no authority; declassifying does *)
  ignore (Db.exec bs "PERFORM addsecrecy(secret)");
  Alcotest.(check int) "raised reader sees the secret row" 1 (read ());
  (match Db.exec bs "PERFORM declassify(secret)" with
  | exception _ -> ()
  | _ -> Alcotest.fail "declassify without authority must fail");
  (* delegation bumps the authority generation: cached plans re-stamp,
     and the declassify now succeeds — the very next EXECUTE runs
     under the lowered label and must see nothing again *)
  let inval0 = metric db "ifdb_plan_cache_invalidations_total" in
  Db.delegate as_ ~tag ~grantee:bob;
  Alcotest.(check int) "read after delegation still confined" 1 (read ());
  Alcotest.(check bool) "generation bump re-stamped the plan" true
    (metric db "ifdb_plan_cache_invalidations_total" > inval0);
  ignore (Db.exec bs "PERFORM declassify(secret)");
  Alcotest.(check int) "declassified reader back to nothing" 0 (read ());
  (* revocation flips it back: the next declassify attempt must fail *)
  ignore (Db.exec bs "PERFORM addsecrecy(secret)");
  Db.revoke as_ ~tag ~grantee:bob;
  (match Db.exec bs "PERFORM declassify(secret)" with
  | exception _ -> ()
  | _ -> Alcotest.fail "declassify after revocation must fail");
  Alcotest.(check int) "read after revocation still confined correctly" 1
    (read ())

(* ------------------------------------------------------------------ *)
(* Invalidation: clearance change between EXECUTEs                     *)
(* ------------------------------------------------------------------ *)

(* The same prepared statement under a moving session label: plans are
   keyed per label id and confinement is re-derived per execution, so
   raising the label between EXECUTEs must change what the very next
   EXECUTE sees. *)
let test_clearance_change_between_executes () =
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let owner = Db.create_principal admin ~name:"owner" in
  let os = Db.connect db ~principal:owner in
  let tag = Db.create_tag os ~name:"hi" () in
  ignore (Db.exec admin "CREATE TABLE c (id INT PRIMARY KEY, v INT)");
  ignore (Db.exec admin "INSERT INTO c VALUES (1, 10)");
  let w = Db.connect db ~principal:owner in
  Db.add_secrecy w tag;
  ignore (Db.exec w "INSERT INTO c VALUES (2, 20)");
  let s = Db.connect db ~principal:owner in
  ignore (Db.exec s "PREPARE r AS SELECT id FROM c WHERE id >= $1");
  let seen () =
    match Db.execute_prepared s "r" [ Value.Int 0 ] with
    | Db.Rows { tuples; _ } -> List.length tuples
    | _ -> Alcotest.fail "expected rows"
  in
  Alcotest.(check int) "public reader sees one row" 1 (seen ());
  Db.add_secrecy s tag;
  Alcotest.(check int) "raised reader sees both rows" 2 (seen ());
  Db.declassify s tag;
  Alcotest.(check int) "lowered reader back to one row" 1 (seen ())

(* ------------------------------------------------------------------ *)
(* Placeholders, not bound values, in audit and slow log               *)
(* ------------------------------------------------------------------ *)

(* Bound parameter values may be secret; the observability surfaces
   must render EXECUTE by its template, never the bindings. *)
let test_no_bound_values_in_logs () =
  let db = Db.create ~slow_query_ms:0.0 () in
  let admin = Db.connect_admin db in
  let alice = Db.create_principal admin ~name:"alice" in
  let s = Db.connect db ~principal:alice in
  let tag = Db.create_tag s ~name:"am" () in
  ignore (Db.exec admin "CREATE TABLE p (id INT PRIMARY KEY, v INT)");
  ignore (Db.exec s "INSERT INTO p VALUES (1, 10)");
  ignore (Db.exec s "PREPARE leak AS UPDATE p SET v = $1 WHERE id = $2");
  ignore (Db.execute_prepared s "leak" [ Value.Int 424242; Value.Int 1 ]);
  let slow = Db.slow_queries db in
  let entry =
    match
      List.find_opt
        (fun e -> contains e.Trace.sq_sql "EXECUTE leak")
        slow
    with
    | Some e -> e
    | None -> Alcotest.fail "EXECUTE not in slow log"
  in
  Alcotest.(check bool) "slow log shows the template" true
    (contains entry.Trace.sq_sql "$1");
  Alcotest.(check bool) "slow log hides the binding" false
    (contains entry.Trace.sq_sql "424242");
  (* an audited rejection through the prepared path: session label is
     raised, the public tuple write violates the Write Rule *)
  Db.add_secrecy s tag;
  (match Db.execute_prepared s "leak" [ Value.Int 777888; Value.Int 1 ] with
  | exception Errors.Flow_violation _ -> ()
  | _ -> Alcotest.fail "lower-labeled update must fail");
  let ev = List.hd (Audit.recent (Db.audit_log db) 1) in
  Alcotest.(check bool) "audit captures the EXECUTE template" true
    (contains ev.Audit.ev_stmt "EXECUTE leak" && contains ev.Audit.ev_stmt "$1");
  Alcotest.(check bool) "audit hides the binding" false
    (contains ev.Audit.ev_stmt "777888")

(* ------------------------------------------------------------------ *)
(* Implicit cache parity + metrics surface                             *)
(* ------------------------------------------------------------------ *)

let test_implicit_cache_metrics () =
  let db = Db.create () in
  let s = Db.connect_admin db in
  ignore (Db.exec s "CREATE TABLE m (id INT PRIMARY KEY, v INT)");
  ignore (Db.exec s "INSERT INTO m VALUES (1, 10), (2, 20)");
  let q = "SELECT v FROM m WHERE id = 1" in
  ignore (Db.query s q);
  let misses0 = metric db "ifdb_plan_cache_misses_total" in
  let hits0 = metric db "ifdb_plan_cache_hits_total" in
  Alcotest.(check bool) "first execution misses" true (misses0 >= 1.0);
  for _ = 1 to 5 do
    ignore (Db.query s q)
  done;
  Alcotest.(check bool) "repeats hit" true
    (metric db "ifdb_plan_cache_hits_total" >= hits0 +. 5.0);
  (* EXPLAIN ANALYZE reports the verdict *)
  let lines, _ = Db.explain_analyze s q in
  Alcotest.(check bool) "explain shows cache verdict" true
    (List.exists (fun l -> contains l "plan cache:") lines);
  (* a disabled cache stays silent *)
  let db2 = Db.create ~plan_cache:false () in
  let s2 = Db.connect_admin db2 in
  ignore (Db.exec s2 "CREATE TABLE m (id INT)");
  ignore (Db.exec s2 "INSERT INTO m VALUES (1)");
  ignore (Db.query s2 "SELECT * FROM m");
  ignore (Db.query s2 "SELECT * FROM m");
  Alcotest.(check (float 0.0)) "no cache traffic when disabled" 0.0
    (metric db2 "ifdb_plan_cache_hits_total"
    +. metric db2 "ifdb_plan_cache_misses_total")

let suites =
  [
    ( "prepared",
      [
        qcheck_equivalence ~count:40 ~parallelism:1 "prepared = direct (serial)";
        qcheck_equivalence ~count:12 ~parallelism:par_width
          "prepared = direct (parallel)";
        Alcotest.test_case "statement lifecycle" `Quick test_lifecycle;
        Alcotest.test_case "DDL invalidates cached plans" `Quick
          test_invalidation_ddl;
        Alcotest.test_case "delegation/revocation flip" `Quick
          test_invalidation_authority_flip;
        Alcotest.test_case "clearance change between EXECUTEs" `Quick
          test_clearance_change_between_executes;
        Alcotest.test_case "placeholders in audit + slow log" `Quick
          test_no_bound_values_in_logs;
        Alcotest.test_case "implicit cache metrics + EXPLAIN" `Quick
          test_implicit_cache_metrics;
      ] );
  ]

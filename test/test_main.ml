let () =
  Alcotest.run "ifdb"
    (Test_difc.suites @ Test_label_store.suites @ Test_rel.suites
   @ Test_storage.suites @ Test_txn.suites
   @ Test_sql.suites @ Test_core.suites @ Test_query.suites
   @ Test_platform.suites @ Test_workload.suites @ Test_apps.suites
   @ Test_security.suites @ Test_engine.suites @ Test_dump.suites @ Test_edge.suites
   @ Test_parallel.suites @ Test_writepath.suites @ Test_analysis.suites @ Test_obs.suites
   @ Test_views_ivm.suites @ Test_partition.suites @ Test_prepared.suites
  @ Test_trace.suites @ Test_spans.suites)

(* Tests for the transaction manager: MVCC visibility, snapshot
   isolation conflicts, write sets, WAL interaction. *)

open Ifdb_txn
module Heap = Ifdb_storage.Heap
module Buffer_pool = Ifdb_storage.Buffer_pool
module Wal = Ifdb_storage.Wal
module Value = Ifdb_rel.Value
module Tuple = Ifdb_rel.Tuple
module Label = Ifdb_difc.Label
module Tag = Ifdb_difc.Tag

let fresh () =
  let bp = Buffer_pool.create () in
  let h = Heap.create ~name:"t" ~labeled:true ~pool:bp () in
  let m = Manager.create () in
  (m, h)

let tuple ?(label = Label.empty) i =
  Tuple.make ~values:[| Value.Int i |] ~label

let visible_ints m txn h =
  let acc = ref [] in
  Heap.iter h (fun v ->
      if Manager.visible m txn v then
        acc := Value.to_int (Tuple.get v.Heap.tuple 0) :: !acc);
  List.sort Int.compare !acc

let test_own_writes_visible () =
  let m, h = fresh () in
  let t = Manager.begin_txn m in
  ignore (Manager.record_insert m t h (tuple 1));
  Alcotest.(check (list int)) "sees own insert" [ 1 ] (visible_ints m t h);
  Manager.commit m t;
  let t2 = Manager.begin_txn m in
  Alcotest.(check (list int)) "committed visible later" [ 1 ] (visible_ints m t2 h)

let test_snapshot_isolation_reads () =
  let m, h = fresh () in
  (* t1 commits before t2 starts: visible.  t3 commits after t2
     started: invisible to t2. *)
  let t1 = Manager.begin_txn m in
  ignore (Manager.record_insert m t1 h (tuple 1));
  Manager.commit m t1;
  let t2 = Manager.begin_txn m in
  let t3 = Manager.begin_txn m in
  ignore (Manager.record_insert m t3 h (tuple 3));
  Alcotest.(check (list int)) "uncommitted invisible" [ 1 ] (visible_ints m t2 h);
  Manager.commit m t3;
  Alcotest.(check (list int)) "still invisible after commit (snapshot)" [ 1 ]
    (visible_ints m t2 h);
  let t4 = Manager.begin_txn m in
  Alcotest.(check (list int)) "new snapshot sees both" [ 1; 3 ] (visible_ints m t4 h)

let test_concurrent_in_progress_invisible () =
  let m, h = fresh () in
  (* t1 starts first, inserts, is still open when t2 starts *)
  let t1 = Manager.begin_txn m in
  ignore (Manager.record_insert m t1 h (tuple 7));
  let t2 = Manager.begin_txn m in
  Manager.commit m t1;
  (* t1 was in progress when t2's snapshot was taken *)
  Alcotest.(check (list int)) "in-progress at snapshot invisible" []
    (visible_ints m t2 h)

let test_aborted_invisible () =
  let m, h = fresh () in
  let t1 = Manager.begin_txn m in
  ignore (Manager.record_insert m t1 h (tuple 9));
  Manager.abort m t1;
  let t2 = Manager.begin_txn m in
  Alcotest.(check (list int)) "aborted insert invisible" [] (visible_ints m t2 h)

let test_delete_visibility () =
  let m, h = fresh () in
  let t1 = Manager.begin_txn m in
  let v = Manager.record_insert m t1 h (tuple 5) in
  Manager.commit m t1;
  let t2 = Manager.begin_txn m in
  Manager.record_delete m t2 h v;
  Alcotest.(check (list int)) "deleter no longer sees it" [] (visible_ints m t2 h);
  (* a reader with an older behavior: new txn before commit of t2 *)
  let t3 = Manager.begin_txn m in
  Alcotest.(check (list int)) "concurrent deleter invisible to reader" [ 5 ]
    (visible_ints m t3 h);
  Manager.commit m t2;
  Alcotest.(check (list int)) "snapshot still sees it" [ 5 ] (visible_ints m t3 h);
  let t4 = Manager.begin_txn m in
  Alcotest.(check (list int)) "gone for new snapshot" [] (visible_ints m t4 h)

let test_abort_undoes_delete_stamp () =
  let m, h = fresh () in
  let t1 = Manager.begin_txn m in
  let v = Manager.record_insert m t1 h (tuple 5) in
  Manager.commit m t1;
  let t2 = Manager.begin_txn m in
  Manager.record_delete m t2 h v;
  Manager.abort m t2;
  Alcotest.(check int) "xmax cleared" 0 (Heap.get h v.Heap.vid).Heap.xmax;
  let t3 = Manager.begin_txn m in
  Alcotest.(check (list int)) "tuple survives aborted delete" [ 5 ]
    (visible_ints m t3 h);
  (* and a new deleter is not blocked *)
  Manager.record_delete m t3 h v;
  Manager.commit m t3

let test_first_updater_wins_in_progress () =
  let m, h = fresh () in
  let t0 = Manager.begin_txn m in
  let v = Manager.record_insert m t0 h (tuple 1) in
  Manager.commit m t0;
  let t1 = Manager.begin_txn m in
  let t2 = Manager.begin_txn m in
  Manager.record_delete m t1 h v;
  (match Manager.record_delete m t2 h v with
  | exception Manager.Serialization_failure _ -> ()
  | () -> Alcotest.fail "expected Serialization_failure (concurrent writer)");
  Manager.abort m t2;
  Manager.commit m t1

let test_first_updater_wins_committed () =
  let m, h = fresh () in
  let t0 = Manager.begin_txn m in
  let v = Manager.record_insert m t0 h (tuple 1) in
  Manager.commit m t0;
  let t1 = Manager.begin_txn m in
  let t2 = Manager.begin_txn m in
  Manager.record_delete m t1 h v;
  Manager.commit m t1;
  (* t2 still sees v (snapshot), but updating it must fail *)
  (match Manager.record_delete m t2 h v with
  | exception Manager.Serialization_failure _ -> ()
  | () -> Alcotest.fail "expected Serialization_failure (committed after snapshot)")

let test_delete_requires_visibility () =
  let m, h = fresh () in
  let t1 = Manager.begin_txn m in
  let v = Manager.record_insert m t1 h (tuple 1) in
  let t2 = Manager.begin_txn m in
  (match Manager.record_delete m t2 h v with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected Invalid_argument (not visible)");
  Manager.abort m t2;
  Manager.commit m t1

let test_write_set_labels () =
  let m, h = fresh () in
  let red = Label.singleton (Tag.of_int 1) in
  let t = Manager.begin_txn m in
  ignore (Manager.record_insert m t h (tuple ~label:red 1));
  ignore (Manager.record_insert m t h (tuple 2));
  let ws = Manager.writes t in
  Alcotest.(check int) "two writes" 2 (List.length ws);
  (match ws with
  | [ w1; w2 ] ->
      Alcotest.(check bool) "first labeled" true (Label.equal w1.Manager.w_label red);
      Alcotest.(check bool) "second public" true (Label.is_empty w2.Manager.w_label);
      Alcotest.(check bool) "kinds" true
        (w1.Manager.w_kind = `Insert && w2.Manager.w_kind = `Insert)
  | _ -> Alcotest.fail "write set shape");
  Manager.commit m t

let test_wal_commit_fsync () =
  let wal = Wal.create () in
  let m = Manager.create ~wal () in
  let bp = Buffer_pool.create () in
  let h = Heap.create ~name:"t" ~labeled:true ~pool:bp () in
  let t = Manager.begin_txn m in
  for i = 1 to 200 do
    ignore (Manager.record_insert m t h (tuple i))
  done;
  Manager.commit m t;
  let s = Wal.stats wal in
  Alcotest.(check int) "one fsync for 200 inserts (group commit)" 1 s.Wal.fsyncs;
  Alcotest.(check int) "202 records" 202 s.Wal.records

(* Regression (PR 3 satellite): a read-only transaction must be
   WAL-free end to end — the Begin record is logged lazily on the first
   write, so commit has nothing to make durable and charges no fsync. *)
let test_readonly_commit_walfree () =
  let wal = Wal.create () in
  let m = Manager.create ~wal () in
  let t = Manager.begin_txn m in
  Manager.commit m t;
  let s = Wal.stats wal in
  Alcotest.(check int) "read-only commit: no records" 0 s.Wal.records;
  Alcotest.(check int) "read-only commit: no fsync" 0 s.Wal.fsyncs;
  let t2 = Manager.begin_txn m in
  Manager.abort m t2;
  Alcotest.(check int) "read-only abort: no records" 0 (Wal.stats wal).Wal.records;
  (* a writing transaction still logs Begin, the write, and Commit *)
  let bp = Buffer_pool.create () in
  let h = Heap.create ~name:"t" ~labeled:true ~pool:bp () in
  let t3 = Manager.begin_txn m in
  ignore (Manager.record_insert m t3 h (tuple 1));
  Manager.commit m t3;
  let s = Wal.stats wal in
  Alcotest.(check int) "writer: Begin+Insert+Commit" 3 s.Wal.records;
  Alcotest.(check int) "writer: one fsync" 1 s.Wal.fsyncs

let test_abort_path_records () =
  let wal = Wal.create () in
  let m = Manager.create ~wal () in
  let bp = Buffer_pool.create () in
  let h = Heap.create ~name:"t" ~labeled:true ~pool:bp () in
  let t = Manager.begin_txn m in
  ignore (Manager.record_insert m t h (tuple 1));
  Manager.abort m t;
  let s = Wal.stats wal in
  Alcotest.(check int) "Begin+Insert+Abort" 3 s.Wal.records;
  Alcotest.(check int) "abort never fsyncs" 0 s.Wal.fsyncs;
  (match Wal.recent wal 3 with
  | [ Wal.Abort a; Wal.Insert ("t", _, _); Wal.Begin b ] ->
      Alcotest.(check int) "abort xid" (Manager.xid t) a;
      Alcotest.(check int) "begin xid" (Manager.xid t) b
  | _ -> Alcotest.fail "unexpected WAL tail for aborted writer")

let test_record_inserts_batch () =
  (* batched insert path: identical WAL accounting and write set as the
     per-tuple path *)
  let wal_a = Wal.create () and wal_b = Wal.create () in
  let ma = Manager.create ~wal:wal_a () and mb = Manager.create ~wal:wal_b () in
  let bp = Buffer_pool.create () in
  let ha = Heap.create ~name:"t" ~labeled:true ~pool:bp () in
  let hb = Heap.create ~name:"t" ~labeled:true ~pool:bp () in
  let rows = List.init 5 (fun i -> tuple (i + 1)) in
  let ta = Manager.begin_txn ma in
  List.iter (fun tp -> ignore (Manager.record_insert ma ta ha tp)) rows;
  Manager.commit ma ta;
  let tb = Manager.begin_txn mb in
  let versions = Manager.record_inserts mb tb hb rows in
  Alcotest.(check (list int)) "vids in order" [ 0; 1; 2; 3; 4 ]
    (List.map (fun (v : Heap.version) -> v.Heap.vid) versions);
  Alcotest.(check int) "write set size" 5 (List.length (Manager.writes tb));
  Manager.commit mb tb;
  let sa = Wal.stats wal_a and sb = Wal.stats wal_b in
  Alcotest.(check int) "same records" sa.Wal.records sb.Wal.records;
  Alcotest.(check int) "same bytes" sa.Wal.bytes sb.Wal.bytes;
  Alcotest.(check int) "same fsyncs" sa.Wal.fsyncs sb.Wal.fsyncs

let test_group_commit_deterministic () =
  let wal = Wal.create () in
  let m = Manager.create ~wal ~commit_batch:4 () in
  let bp = Buffer_pool.create () in
  let h = Heap.create ~name:"t" ~labeled:true ~pool:bp () in
  for i = 1 to 10 do
    let t = Manager.begin_txn m in
    ignore (Manager.record_insert m t h (tuple i));
    Manager.commit m t
  done;
  (* every 4th commit flushes: commits 4 and 8; 9 and 10 still pending *)
  Alcotest.(check int) "coalesced fsyncs" 2 (Wal.stats wal).Wal.fsyncs;
  Alcotest.(check int) "pending commits" 2
    (Group_commit.pending (Manager.group_commit m));
  Manager.flush_wal m;
  Alcotest.(check int) "flush forces the remainder" 3 (Wal.stats wal).Wal.fsyncs;
  Alcotest.(check int) "nothing pending" 0
    (Group_commit.pending (Manager.group_commit m));
  let gs = Group_commit.stats (Manager.group_commit m) in
  Alcotest.(check int) "submitted" 10 gs.Group_commit.gc_submitted;
  Alcotest.(check int) "batches" 3 gs.Group_commit.gc_batches;
  Alcotest.(check int) "max batch" 4 gs.Group_commit.gc_max_batch;
  (* read-only commits do not enter the queue at all *)
  let t = Manager.begin_txn m in
  Manager.commit m t;
  Alcotest.(check int) "read-only not submitted" 10
    (Group_commit.stats (Manager.group_commit m)).Group_commit.gc_submitted

let test_group_commit_sync_durable () =
  (* synchronous leader/follower mode on a single thread: each commit
     returns durable (it leads its own batch of one) *)
  let wal = Wal.create () in
  let m = Manager.create ~wal ~commit_batch:4 ~sync_commit:true () in
  let bp = Buffer_pool.create () in
  let h = Heap.create ~name:"t" ~labeled:true ~pool:bp () in
  for i = 1 to 3 do
    let t = Manager.begin_txn m in
    ignore (Manager.record_insert m t h (tuple i));
    Manager.commit m t;
    Alcotest.(check int) "durable on return" 0
      (Group_commit.pending (Manager.group_commit m))
  done;
  Alcotest.(check int) "no coalescing without concurrency" 3
    (Wal.stats wal).Wal.fsyncs

let test_with_txn () =
  let m, h = fresh () in
  let r = Manager.with_txn m (fun t ->
      ignore (Manager.record_insert m t h (tuple 1));
      "ok")
  in
  Alcotest.(check string) "result" "ok" r;
  (match Manager.with_txn m (fun t ->
       ignore (Manager.record_insert m t h (tuple 2));
       failwith "boom")
   with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception should propagate");
  let t = Manager.begin_txn m in
  Alcotest.(check (list int)) "committed 1, rolled back 2" [ 1 ]
    (visible_ints m t h)

let test_double_commit_rejected () =
  let m, _h = fresh () in
  let t = Manager.begin_txn m in
  Manager.commit m t;
  (match Manager.commit m t with
  | exception Manager.Not_in_progress _ -> ()
  | () -> Alcotest.fail "expected Not_in_progress");
  (* abort after commit is a no-op, not an error *)
  Manager.abort m t

let test_oldest_visible_xid () =
  let m, h = fresh () in
  let t1 = Manager.begin_txn m in
  let old_horizon = Manager.oldest_visible_xid m in
  Alcotest.(check bool) "horizon at t1" true (old_horizon <= Manager.xid t1);
  ignore (Manager.record_insert m t1 h (tuple 1));
  Manager.commit m t1;
  let t2 = Manager.begin_txn m in
  Alcotest.(check bool) "horizon advanced" true
    (Manager.oldest_visible_xid m > Manager.xid t1);
  Manager.commit m t2;
  Alcotest.(check int) "no open txns: horizon = next xid"
    (Manager.xid t2 + 1) (Manager.oldest_visible_xid m)

let test_vacuum_with_horizon () =
  let m, h = fresh () in
  let t1 = Manager.begin_txn m in
  let v = Manager.record_insert m t1 h (tuple 1) in
  Manager.commit m t1;
  let t2 = Manager.begin_txn m in
  Manager.record_delete m t2 h v;
  Manager.commit m t2;
  (* version deleted by a committed txn older than every snapshot *)
  let horizon = Manager.oldest_visible_xid m in
  let dead (ver : Heap.version) =
    (ver.Heap.xmax <> 0
     && Manager.status_of m ver.Heap.xmax = Manager.Committed
     && ver.Heap.xmax < horizon)
    || Manager.status_of m ver.Heap.xmin = Manager.Aborted
  in
  Alcotest.(check int) "one dead version" 1 (Heap.vacuum h ~dead);
  Alcotest.(check int) "heap empty" 0 (Heap.version_count h)

(* Model-based MVCC property: a random history of single-operation
   transactions (insert / delete-by-value, committed or aborted) must
   leave a fresh snapshot seeing exactly what a naive sequential model
   of the committed operations predicts. *)
let mvcc_model_prop =
  let op_gen =
    QCheck.Gen.(
      list_size (int_bound 40)
        (triple (int_bound 1) (int_range 0 9) bool))
    (* (0=insert | 1=delete-one), value, commit? *)
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:80 ~name:"snapshot = sequential model"
       (QCheck.make op_gen) (fun ops ->
         let m, h = fresh () in
         let model = ref [] in
         List.iter
           (fun (kind, v, commit) ->
             let t = Manager.begin_txn m in
             (match kind with
             | 0 ->
                 ignore (Manager.record_insert m t h (tuple v));
                 if commit then model := v :: !model
             | _ -> (
                 (* delete one visible tuple holding value v, if any *)
                 let victim = ref None in
                 Heap.iter h (fun ver ->
                     if !victim = None
                        && Manager.visible m t ver
                        && Value.to_int (Tuple.get ver.Heap.tuple 0) = v
                     then victim := Some ver);
                 match !victim with
                 | Some ver ->
                     Manager.record_delete m t h ver;
                     if commit then begin
                       (* remove one occurrence from the model *)
                       let removed = ref false in
                       model :=
                         List.filter
                           (fun x ->
                             if x = v && not !removed then begin
                               removed := true;
                               false
                             end
                             else true)
                           !model
                     end
                 | None -> ()));
             if commit then Manager.commit m t else Manager.abort m t)
           ops;
         let t = Manager.begin_txn m in
         let seen = List.sort Int.compare (visible_ints m t h) in
         Manager.commit m t;
         seen = List.sort Int.compare !model))

let suites =
  [
    ("txn.properties", [ mvcc_model_prop ]);
    ( "txn.visibility",
      [
        Alcotest.test_case "own writes" `Quick test_own_writes_visible;
        Alcotest.test_case "snapshot reads" `Quick test_snapshot_isolation_reads;
        Alcotest.test_case "in-progress at snapshot" `Quick
          test_concurrent_in_progress_invisible;
        Alcotest.test_case "aborted invisible" `Quick test_aborted_invisible;
        Alcotest.test_case "delete visibility" `Quick test_delete_visibility;
        Alcotest.test_case "abort undoes delete stamp" `Quick
          test_abort_undoes_delete_stamp;
      ] );
    ( "txn.conflicts",
      [
        Alcotest.test_case "first-updater-wins (in progress)" `Quick
          test_first_updater_wins_in_progress;
        Alcotest.test_case "first-updater-wins (committed)" `Quick
          test_first_updater_wins_committed;
        Alcotest.test_case "delete requires visibility" `Quick
          test_delete_requires_visibility;
      ] );
    ( "txn.lifecycle",
      [
        Alcotest.test_case "write set labels" `Quick test_write_set_labels;
        Alcotest.test_case "group commit fsync" `Quick test_wal_commit_fsync;
        Alcotest.test_case "read-only commit WAL-free" `Quick
          test_readonly_commit_walfree;
        Alcotest.test_case "abort path records" `Quick test_abort_path_records;
        Alcotest.test_case "batched record_inserts" `Quick
          test_record_inserts_batch;
        Alcotest.test_case "group commit coalescing" `Quick
          test_group_commit_deterministic;
        Alcotest.test_case "group commit sync mode" `Quick
          test_group_commit_sync_durable;
        Alcotest.test_case "with_txn" `Quick test_with_txn;
        Alcotest.test_case "double commit rejected" `Quick test_double_commit_rejected;
        Alcotest.test_case "oldest visible xid" `Quick test_oldest_visible_xid;
        Alcotest.test_case "vacuum with horizon" `Quick test_vacuum_with_horizon;
      ] );
  ]

(* Statement-lifecycle span tracing: well-formedness of recorded span
   trees (balanced, nested, sorted, conserved across domains), the
   zero-cost sampled-off contract, the slow-query-log link, redaction
   of the Chrome export (no statement text, literals, bound values or
   tag names), commit-path wait attribution, and histogram quantiles.

   [IFDB_TEST_PARALLELISM] overrides the domain count like
   test_parallel.ml: the conservation properties are only interesting
   when worker domains genuinely race the CAS scratch list. *)

module Db = Ifdb_core.Database
module Span = Ifdb_obs.Span
module Metrics = Ifdb_obs.Metrics
module Trace = Ifdb_obs.Trace
module Value = Ifdb_rel.Value

let par_width =
  match Sys.getenv_opt "IFDB_TEST_PARALLELISM" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 4)
  | None -> 4

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let fixture ?(trace_sample = 1) ?slow_query_ms ?(parallelism = 1) () =
  let db =
    Db.create ~trace_sample ?slow_query_ms ~parallelism ~morsel_size:16 ()
  in
  let admin = Db.connect_admin db in
  let p = Db.create_principal admin ~name:"spanner" in
  (db, Db.connect db ~principal:p)

(* ------------------------------------------------------------------ *)
(* Well-formedness: what every record in the ring must satisfy         *)
(* ------------------------------------------------------------------ *)

let check_record (r : Span.record) =
  let evs = r.Span.r_events in
  (match evs with
  | root :: _ ->
      if root.Span.ev_id <> 0 || root.Span.ev_parent <> -1 then
        Alcotest.fail "first event is not the root (id 0, parent -1)"
  | [] -> Alcotest.fail "empty record");
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (e : Span.event) ->
      if Hashtbl.mem tbl e.Span.ev_id then
        Alcotest.failf "duplicate event id %d" e.Span.ev_id;
      Hashtbl.add tbl e.Span.ev_id e)
    evs;
  ignore
    (List.fold_left
       (fun prev (e : Span.event) ->
         if e.Span.ev_t1 < e.Span.ev_t0 then
           Alcotest.failf "span %s not balanced: t1 < t0" e.Span.ev_name;
         if e.Span.ev_t0 < prev then
           Alcotest.fail "events not sorted by start time";
         e.Span.ev_t0)
       min_int evs);
  List.iter
    (fun (e : Span.event) ->
      if e.Span.ev_parent >= 0 then
        match Hashtbl.find_opt tbl e.Span.ev_parent with
        | None -> Alcotest.failf "span %s has a dangling parent" e.Span.ev_name
        | Some p ->
            if e.Span.ev_t0 < p.Span.ev_t0 || e.Span.ev_t1 > p.Span.ev_t1 then
              Alcotest.failf "span %s not nested inside %s" e.Span.ev_name
                p.Span.ev_name)
    evs

let check_ring db =
  let sp = Db.spans db in
  List.iter check_record (Span.recent sp (Span.capacity sp))

(* ------------------------------------------------------------------ *)
(* Sampling                                                            *)
(* ------------------------------------------------------------------ *)

let test_sampled_off_noop () =
  let db, s = fixture ~trace_sample:0 () in
  ignore (Db.exec s "CREATE TABLE t (k INT PRIMARY KEY, v INT)");
  for i = 1 to 10 do
    ignore (Db.exec s (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" i i))
  done;
  ignore (Db.exec s "SELECT * FROM t");
  let sp = Db.spans db in
  Alcotest.(check bool) "recorder disabled" false (Span.enabled sp);
  Alcotest.(check int) "no records" 0 (Span.count sp);
  Alcotest.(check int) "ring empty" 0 (List.length (Span.recent sp 10));
  Alcotest.(check bool) "no ambient context leaked" true (Span.current () = None);
  (* the sampled-view observers never fired: no wait histograms *)
  let snap = Db.metrics_snapshot db in
  let v name = Option.value (List.assoc_opt name snap) ~default:0.0 in
  Alcotest.(check (float 0.0)) "fsync histogram untouched" 0.0
    (v "ifdb_fsync_stall_seconds_count");
  Alcotest.(check (float 0.0)) "gc-wait histogram untouched" 0.0
    (v "ifdb_group_commit_wait_seconds_count")

let test_sampling_cadence () =
  let db, s = fixture ~trace_sample:2 () in
  ignore (Db.exec s "CREATE TABLE t (k INT)");
  for i = 1 to 9 do
    ignore (Db.exec s (Printf.sprintf "INSERT INTO t VALUES (%d)" i))
  done;
  (* 10 statements, every 2nd sampled starting with the first *)
  Alcotest.(check int) "half the statements sampled" 5
    (Span.count (Db.spans db));
  check_ring db;
  Alcotest.(check bool) "no ambient context leaked" true (Span.current () = None)

(* ------------------------------------------------------------------ *)
(* Lifecycle phases and commit-path wait attribution                   *)
(* ------------------------------------------------------------------ *)

let find_record db pred =
  let sp = Db.spans db in
  match List.find_opt pred (Span.recent sp (Span.capacity sp)) with
  | Some r -> r
  | None -> Alcotest.fail "expected record not in the ring"

let has_phase r name =
  List.exists (fun (n, _, _) -> n = name) (Span.summary r)

let test_lifecycle_phases () =
  let db, s = fixture () in
  ignore (Db.exec s "CREATE TABLE t (k INT PRIMARY KEY, v INT)");
  ignore (Db.exec s "INSERT INTO t VALUES (1, 10)");
  ignore (Db.exec s "SELECT v FROM t WHERE k = 1");
  check_ring db;
  let select =
    find_record db (fun r ->
        match r.Span.r_events with
        | root :: _ -> List.assoc_opt "stmt" root.Span.ev_args = Some "select"
        | [] -> false)
  in
  List.iter
    (fun phase ->
      Alcotest.(check bool) (phase ^ " phase present") true
        (has_phase select phase))
    [ "parse"; "analyze"; "plan"; "execute"; "commit" ];
  (* the write's commit span contains the wait children, each inside
     the commit window (check_record already verified nesting) *)
  let insert =
    find_record db (fun r ->
        match r.Span.r_events with
        | root :: _ -> List.assoc_opt "stmt" root.Span.ev_args = Some "insert"
        | [] -> false)
  in
  let commit =
    match
      List.find_opt (fun e -> e.Span.ev_name = "commit") insert.Span.r_events
    with
    | Some e -> e
    | None -> Alcotest.fail "no commit span in the insert record"
  in
  List.iter
    (fun child ->
      match
        List.find_opt (fun e -> e.Span.ev_name = child) insert.Span.r_events
      with
      | None -> Alcotest.failf "no %s span in the insert record" child
      | Some e ->
          Alcotest.(check int) (child ^ " parented to commit")
            commit.Span.ev_id e.Span.ev_parent;
          Alcotest.(check bool) (child ^ " no longer than commit") true
            (e.Span.ev_t1 - e.Span.ev_t0
            <= commit.Span.ev_t1 - commit.Span.ev_t0))
    [ "lock.wait"; "lock.hold"; "gc.wait"; "wal.fsync" ];
  (* sampled statements fed the wait histograms *)
  let snap = Db.metrics_snapshot db in
  let v name = Option.value (List.assoc_opt name snap) ~default:0.0 in
  Alcotest.(check bool) "fsync histogram fed" true
    (v "ifdb_fsync_stall_seconds_count" > 0.0);
  (* the wait itself can round to 0ns on an uncontended mutex at
     gettimeofday resolution — only presence is deterministic *)
  Alcotest.(check bool) "lock-wait counter registered" true
    (List.mem_assoc "ifdb_lock_wait_ns_total" snap)

let test_plan_cache_note () =
  let db, s = fixture () in
  ignore (Db.exec s "CREATE TABLE t (k INT PRIMARY KEY, v INT)");
  ignore (Db.exec s "INSERT INTO t VALUES (1, 10)");
  ignore (Db.exec s "SELECT v FROM t WHERE k = 1");
  ignore (Db.exec s "SELECT v FROM t WHERE k = 1");
  let sp = Db.spans db in
  let verdict r =
    List.find_map
      (fun (e : Span.event) ->
        if e.Span.ev_name = "plan" then List.assoc_opt "plan_cache" e.Span.ev_args
        else None)
      r.Span.r_events
  in
  match Span.recent sp 2 with
  | [ second; first ] ->
      Alcotest.(check (option string)) "first select misses" (Some "miss")
        (verdict first);
      Alcotest.(check (option string)) "second select hits" (Some "hit")
        (verdict second)
  | _ -> Alcotest.fail "expected two records"

(* ------------------------------------------------------------------ *)
(* Slow-query-log link                                                 *)
(* ------------------------------------------------------------------ *)

let test_slow_log_link () =
  let db, s = fixture ~slow_query_ms:0.0 () in
  ignore (Db.exec s "CREATE TABLE t (k INT)");
  ignore (Db.exec s "INSERT INTO t VALUES (1)");
  let entries = Db.slow_queries db in
  Alcotest.(check bool) "slow log populated" true (entries <> []);
  List.iter
    (fun (e : Trace.slow_entry) ->
      Alcotest.(check bool) "entry links a trace" true (e.Trace.sq_trace >= 0);
      match Span.find (Db.spans db) e.Trace.sq_trace with
      | None -> Alcotest.fail "linked trace not in the ring"
      | Some r ->
          Alcotest.(check bool) "linked record has phases" true
            (Span.summary r <> []))
    entries

(* ------------------------------------------------------------------ *)
(* Export redaction                                                    *)
(* ------------------------------------------------------------------ *)

let test_export_redaction () =
  let db, s = fixture ~slow_query_ms:0.0 () in
  let tag = Db.create_tag s ~name:"supersecretag" () in
  Db.add_secrecy s tag;
  ignore (Db.exec s "CREATE TABLE t (k INT PRIMARY KEY, v TEXT)");
  ignore (Db.exec s "INSERT INTO t VALUES (1, 'sekritvalue')");
  ignore (Db.exec s "SELECT * FROM t WHERE _label = {supersecretag}");
  ignore (Db.exec s "PREPARE pq AS SELECT v FROM t WHERE k = $1");
  ignore (Db.execute_prepared s "pq" [ Value.Text "boundsekrit" ]);
  let sp = Db.spans db in
  let json = Span.to_chrome_json (Span.recent sp (Span.capacity sp)) in
  List.iter
    (fun secret ->
      Alcotest.(check bool)
        (Printf.sprintf "%S absent from export" secret)
        false (contains json secret))
    [ "supersecretag"; "sekritvalue"; "boundsekrit" ];
  (* bound parameters render as placeholders, and the prepared name
     (part of the span contract) is present *)
  Alcotest.(check bool) "placeholder rendered" true (contains json "$1");
  Alcotest.(check bool) "prepared name present" true (contains json "pq");
  (* the slow-query log keeps the raw SQL (its own, pre-existing
     policy) — only the span export is label-clean; the EXECUTE entry
     must still hide the bound value *)
  List.iter
    (fun (e : Trace.slow_entry) ->
      Alcotest.(check bool) "bound value never in slow log" false
        (contains e.Trace.sq_sql "boundsekrit"))
    (Db.slow_queries db)

(* ------------------------------------------------------------------ *)
(* Domains: morsel spans and event conservation                        *)
(* ------------------------------------------------------------------ *)

let test_morsel_spans () =
  (* the pool only exists at parallelism > 1; the morsel spans must
     appear even when IFDB_TEST_PARALLELISM=1 pins everything else *)
  let db, s = fixture ~parallelism:(max 2 par_width) () in
  ignore (Db.exec s "CREATE TABLE big (k INT, v INT)");
  ignore (Db.exec s "BEGIN");
  for i = 1 to 64 do
    ignore
      (Db.exec s (Printf.sprintf "INSERT INTO big VALUES (%d, %d)" (i mod 7) i))
  done;
  ignore (Db.exec s "COMMIT");
  ignore (Db.exec s "SELECT k, COUNT(*), SUM(v) FROM big GROUP BY k");
  check_ring db;
  let r =
    find_record db (fun r ->
        List.exists (fun e -> e.Span.ev_name = "morsel") r.Span.r_events)
  in
  List.iter
    (fun (e : Span.event) ->
      if e.Span.ev_name = "morsel" then begin
        Alcotest.(check bool) "worker arg" true
          (List.mem_assoc "worker" e.Span.ev_args);
        Alcotest.(check bool) "stolen arg" true
          (List.mem_assoc "stolen" e.Span.ev_args);
        Alcotest.(check bool) "queue_ns arg" true
          (List.mem_assoc "queue_ns" e.Span.ev_args)
      end)
    r.Span.r_events

let test_event_conservation () =
  (* worker domains racing the context's CAS scratch list must not
     lose spans: 1 root + domains * spans_each, exactly *)
  let t = Span.create ~sample_every:1 () in
  Alcotest.(check bool) "sampled" true (Span.sample t);
  let ctx = Span.start t "statement" in
  let spans_each = 50 in
  let domains =
    List.init par_width (fun d ->
        Domain.spawn (fun () ->
            Span.with_current (Some ctx) (fun () ->
                for i = 1 to spans_each do
                  Span.timed "work"
                    ~args:[ ("d", string_of_int d); ("i", string_of_int i) ]
                    (fun () -> ())
                done)))
  in
  List.iter Domain.join domains;
  Span.finish t ctx;
  match Span.recent t 1 with
  | [ r ] ->
      Alcotest.(check int) "every span survived the merge"
        (1 + (par_width * spans_each))
        (List.length r.Span.r_events);
      check_record r
  | _ -> Alcotest.fail "expected exactly one record"

(* ------------------------------------------------------------------ *)
(* Property: arbitrary workloads produce well-formed rings             *)
(* ------------------------------------------------------------------ *)

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 5 40)
      (oneof
         [
           map (fun i -> `Insert i) (int_range 0 99);
           map (fun i -> `Select i) (int_range 0 99);
           map (fun i -> `Update i) (int_range 0 99);
           return `Txn;
         ]))

let print_ops ops = Printf.sprintf "%d ops" (List.length ops)

let run_op s = function
  | `Insert i ->
      ignore (Db.exec s (Printf.sprintf "INSERT INTO p VALUES (%d, %d)" i i));
      1
  | `Select i ->
      ignore (Db.exec s (Printf.sprintf "SELECT * FROM p WHERE k < %d" i));
      1
  | `Update i ->
      ignore
        (Db.exec s (Printf.sprintf "UPDATE p SET v = v + 1 WHERE k = %d" i));
      1
  | `Txn ->
      ignore (Db.exec s "BEGIN");
      ignore (Db.exec s "INSERT INTO p VALUES (-1, 0)");
      ignore (Db.exec s "DELETE FROM p WHERE k = -1");
      ignore (Db.exec s "COMMIT");
      4

let wellformed_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:15
       ~name:"any workload yields well-formed, conserved span records"
       (QCheck.make ~print:print_ops gen_ops)
       (fun ops ->
         let db, s = fixture ~parallelism:par_width () in
         ignore (Db.exec s "CREATE TABLE p (k INT, v INT)");
         let executed =
           List.fold_left (fun acc op -> acc + run_op s op) 1 ops
         in
         (* sample_every = 1: every statement must have produced
            exactly one record (statement-level conservation) *)
         Alcotest.(check int) "one record per statement" executed
           (Span.count (Db.spans db));
         check_ring db;
         true))

(* ------------------------------------------------------------------ *)
(* Histogram quantiles                                                 *)
(* ------------------------------------------------------------------ *)

let test_quantiles () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~buckets:[| 1.0; 2.0; 4.0 |] "ifdb_q_seconds" in
  Alcotest.(check bool) "empty histogram has no quantile" true
    (Float.is_nan (Metrics.quantile h 0.5));
  for _ = 1 to 4 do
    Metrics.observe h 1.5
  done;
  (* all 4 observations in (1,2]: PromQL linear interpolation *)
  Alcotest.(check (float 1e-9)) "p50 interpolates" 1.5 (Metrics.quantile h 0.5);
  Alcotest.(check (float 1e-9)) "p95 interpolates" 1.95
    (Metrics.quantile h 0.95);
  let reg2 = Metrics.create () in
  let h2 =
    Metrics.histogram reg2 ~buckets:[| 1.0; 2.0; 4.0 |] "ifdb_q2_seconds"
  in
  Metrics.observe h2 100.0;
  Alcotest.(check (float 1e-9)) "overflow clamps to largest finite bound" 4.0
    (Metrics.quantile h2 0.5);
  (* quantiles ride every export surface *)
  let snap = Metrics.snapshot reg in
  Alcotest.(check (option (float 1e-9))) "snapshot carries p50" (Some 1.5)
    (List.assoc_opt "ifdb_q_seconds_p50" snap);
  let text = Metrics.to_prometheus reg in
  Alcotest.(check bool) "prometheus gauge sample" true
    (contains text "# TYPE ifdb_q_seconds_p50 gauge")

let suites =
  [
    ( "span tracing",
      [
        Alcotest.test_case "sampled-off is a no-op" `Quick test_sampled_off_noop;
        Alcotest.test_case "sampling cadence" `Quick test_sampling_cadence;
        Alcotest.test_case "lifecycle phases + commit children" `Quick
          test_lifecycle_phases;
        Alcotest.test_case "plan-cache verdict stamped" `Quick
          test_plan_cache_note;
        Alcotest.test_case "slow-log link" `Quick test_slow_log_link;
        Alcotest.test_case "export redaction" `Quick test_export_redaction;
        Alcotest.test_case "morsel spans" `Quick test_morsel_spans;
        Alcotest.test_case "event conservation across domains" `Quick
          test_event_conservation;
        wellformed_prop;
        Alcotest.test_case "histogram quantiles" `Quick test_quantiles;
      ] );
  ]

(* Observability layer: the metrics registry's concurrency contract,
   EXPLAIN ANALYZE equivalence with plain execution, completeness of
   the IFC audit log over the security scenarios elsewhere in the
   suite, the slow-query log, and the atomic stats take/reset pair.

   [IFDB_TEST_PARALLELISM] overrides the domain count, matching
   test_parallel.ml: CI runs the suite at 1 and at a multi-domain
   setting, and the conservation properties here are only interesting
   when samplers genuinely race incrementers. *)

module Db = Ifdb_core.Database
module Errors = Ifdb_core.Errors
module Label = Ifdb_difc.Label
module Tag = Ifdb_difc.Tag
module Authority = Ifdb_difc.Authority
module Label_store = Ifdb_difc.Label_store
module Buffer_pool = Ifdb_storage.Buffer_pool
module Wal = Ifdb_storage.Wal
module Domain_pool = Ifdb_engine.Domain_pool
module Metrics = Ifdb_obs.Metrics
module Audit = Ifdb_obs.Audit
module Value = Ifdb_rel.Value
module Tuple = Ifdb_rel.Tuple

let par_width =
  match Sys.getenv_opt "IFDB_TEST_PARALLELISM" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 4)
  | None -> 4

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_counter_basics () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg ~help:"test counter" "ifdb_test_total" in
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "counter value" 42 (Metrics.counter_value c);
  Alcotest.(check (option (float 0.0)))
    "snapshot carries it" (Some 42.0)
    (List.assoc_opt "ifdb_test_total" (Metrics.snapshot reg))

let test_name_rules () =
  let reg = Metrics.create () in
  ignore (Metrics.counter reg "ifdb_dup_total");
  (match Metrics.counter reg "ifdb_dup_total" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate counter name must raise");
  (match Metrics.gauge reg "ifdb_dup_total" (fun () -> 0.0) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate name across metric kinds must raise");
  match Metrics.counter reg "9starts-with-digit" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "invalid metric name must raise"

let test_disabled_registry () =
  let reg = Metrics.create ~enabled:false () in
  Alcotest.(check bool) "disabled" false (Metrics.enabled reg);
  let c = Metrics.counter reg "ifdb_off_total" in
  let h = Metrics.histogram reg "ifdb_off_seconds" in
  Metrics.incr c;
  Metrics.add c 10;
  Metrics.observe h 0.5;
  Alcotest.(check int) "counter is a no-op" 0 (Metrics.counter_value c);
  Alcotest.(check int) "histogram is a no-op" 0 (Metrics.histogram_count h);
  Alcotest.(check int) "snapshot empty" 0 (List.length (Metrics.snapshot reg))

let test_histogram () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "ifdb_lat_seconds" in
  Metrics.observe h 0.001;
  Metrics.observe h 0.5;
  Metrics.observe h 100.0 (* lands in the implicit +Inf bucket *);
  Alcotest.(check int) "count" 3 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "sum" 100.501 (Metrics.histogram_sum h);
  let snap = Metrics.snapshot reg in
  Alcotest.(check (option (float 0.0)))
    "snapshot count" (Some 3.0)
    (List.assoc_opt "ifdb_lat_seconds_count" snap);
  Alcotest.(check bool) "snapshot sum present" true
    (List.mem_assoc "ifdb_lat_seconds_sum" snap)

let test_reset () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "ifdb_r_total" in
  let h = Metrics.histogram reg "ifdb_r_seconds" in
  Metrics.add c 7;
  Metrics.observe h 1.0;
  Metrics.reset reg;
  Alcotest.(check int) "counter zeroed" 0 (Metrics.counter_value c);
  Alcotest.(check int) "histogram zeroed" 0 (Metrics.histogram_count h)

(* The sample key (name + label set) of a Prometheus exposition line,
   or [None] for comments/blanks.  Duplicate keys within one scrape
   are invalid — the same property the CI smoke step checks. *)
let sample_key line =
  if line = "" || line.[0] = '#' then None
  else
    match String.index_opt line ' ' with
    | None -> None
    | Some i -> Some (String.sub line 0 i)

let assert_no_duplicate_samples dump =
  let seen = Hashtbl.create 64 in
  String.split_on_char '\n' dump
  |> List.iter (fun line ->
         match sample_key line with
         | None -> ()
         | Some key ->
             if Hashtbl.mem seen key then
               Alcotest.failf "duplicate sample %s" key;
             Hashtbl.add seen key ())

let test_prometheus_exposition () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg ~help:"c" "ifdb_p_total" in
  Metrics.gauge reg ~kind:`Counter "ifdb_p_fsyncs_total" (fun () -> 3.0);
  let h = Metrics.histogram reg "ifdb_p_seconds" in
  Metrics.incr c;
  Metrics.observe h 0.01;
  let dump = Metrics.to_prometheus reg in
  assert_no_duplicate_samples dump;
  Alcotest.(check bool) "monotone gauge typed counter" true
    (contains dump "# TYPE ifdb_p_fsyncs_total counter");
  Alcotest.(check bool) "+Inf bucket" true
    (contains dump "ifdb_p_seconds_bucket{le=\"+Inf\"} 1")

(* A whole database's registry — component gauges included — exposes
   no duplicate sample keys. *)
let test_database_prometheus_no_duplicates () =
  let db = Db.create () in
  let admin = Db.connect_admin db in
  ignore (Db.exec admin "CREATE TABLE t (a INT)");
  ignore (Db.exec admin "INSERT INTO t VALUES (1), (2)");
  ignore (Db.query admin "SELECT * FROM t");
  assert_no_duplicate_samples (Db.metrics_prometheus db)

(* ------------------------------------------------------------------ *)
(* Parallel counter conservation (QCheck)                              *)
(* ------------------------------------------------------------------ *)

(* Increments performed from pool workers are never lost and never
   double-counted: after a [parallel_for] of [tasks] tasks each adding
   [k], the counter reads exactly [tasks * k]. *)
let parallel_counter_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:30
       ~name:"parallel increments conserve counter value"
       QCheck.(pair (int_range 1 200) (int_range 1 8))
       (fun (tasks, k) ->
         let reg = Metrics.create () in
         let c = Metrics.counter reg "ifdb_q_total" in
         let pool = Domain_pool.get ~parallelism:par_width in
         Domain_pool.parallel_for pool ~tasks (fun ~worker:_ _ ->
             for _ = 1 to k do
               Metrics.incr c
             done);
         Metrics.counter_value c = tasks * k))

(* ------------------------------------------------------------------ *)
(* take_stats: read-and-zero as one atomic pair                        *)
(* ------------------------------------------------------------------ *)

(* The regression the stats-pair bug fix targets: a sampler repeatedly
   draining counters while worker domains increment them must observe
   every event exactly once — the sum of the drained snapshots plus
   the final residue equals the number of operations performed. *)
let test_label_store_take_stats_conservation () =
  let auth = Authority.create () in
  let p =
    Authority.create_principal auth ~actor_label:Label.empty ~name:"p"
  in
  let t1 =
    Authority.create_tag auth ~actor_label:Label.empty ~owner:p ~name:"t1" ()
  in
  let t2 =
    Authority.create_tag auth ~actor_label:Label.empty ~owner:p ~name:"t2" ()
  in
  let store = Label_store.create auth in
  let i1 = Label_store.intern store (Label.singleton t1) in
  let i2 = Label_store.intern store (Label.singleton t2) in
  let per_domain = 5_000 and ndom = max 2 par_width in
  let drained_hits = ref 0 and drained_misses = ref 0 in
  let stop = Atomic.make false in
  let sampler =
    Domain.spawn (fun () ->
        let acc_h = ref 0 and acc_m = ref 0 in
        while not (Atomic.get stop) do
          let s = Label_store.take_stats store in
          acc_h := !acc_h + s.Label_store.flow_hits;
          acc_m := !acc_m + s.Label_store.flow_misses
        done;
        (!acc_h, !acc_m))
  in
  let workers =
    List.init ndom (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              (* src <> dst and src non-empty: every call is charged to
                 exactly one of hits/misses *)
              ignore (Label_store.flows_id store ~src:i2 ~dst:i1)
            done))
  in
  List.iter Domain.join workers;
  Atomic.set stop true;
  let h, m = Domain.join sampler in
  drained_hits := h;
  drained_misses := m;
  let residue = Label_store.take_stats store in
  let total =
    !drained_hits + !drained_misses + residue.Label_store.flow_hits
    + residue.Label_store.flow_misses
  in
  Alcotest.(check int)
    "every flow check charged to exactly one epoch" (ndom * per_domain) total

let test_buffer_pool_take_stats_conservation () =
  let bp = Buffer_pool.create () in
  let page = Buffer_pool.alloc_page bp in
  let per_domain = 5_000 and ndom = max 2 par_width in
  let stop = Atomic.make false in
  let sampler =
    Domain.spawn (fun () ->
        let acc = ref 0 in
        while not (Atomic.get stop) do
          let s = Buffer_pool.take_stats bp in
          acc := !acc + s.Buffer_pool.hits + s.Buffer_pool.misses
        done;
        !acc)
  in
  let workers =
    List.init ndom (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Buffer_pool.touch bp page
            done))
  in
  List.iter Domain.join workers;
  Atomic.set stop true;
  let drained = Domain.join sampler in
  let residue = Buffer_pool.take_stats bp in
  let total =
    drained + residue.Buffer_pool.hits + residue.Buffer_pool.misses
  in
  Alcotest.(check int)
    "every touch charged to exactly one epoch" (ndom * per_domain) total

(* ------------------------------------------------------------------ *)
(* EXPLAIN / EXPLAIN ANALYZE                                           *)
(* ------------------------------------------------------------------ *)

(* A CarTel-shaped fixture: per-driver location data, each driver's
   rows under their own tag, all tags compounding into [all_drives].
   An analyst holding only two of the four driver tags exercises real
   label pruning and real (non-short-circuit) flow checks. *)
let cartel_fixture () =
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let owner = Db.create_principal admin ~name:"owner" in
  let os = Db.connect db ~principal:owner in
  let all_drives = Db.create_tag os ~name:"all_drives" () in
  let tags =
    Array.init 4 (fun i ->
        Db.create_tag os
          ~name:(Printf.sprintf "drives_%d" i)
          ~compounds:[ all_drives ] ())
  in
  ignore (Db.exec admin "CREATE TABLE cars (car_id INT PRIMARY KEY, driver TEXT)");
  ignore (Db.exec admin "CREATE TABLE locations (car_id INT, lat INT)");
  for i = 0 to 3 do
    Db.with_label os (Label.singleton tags.(i)) (fun () ->
        ignore
          (Db.exec os
             (Printf.sprintf "INSERT INTO cars VALUES (%d, 'driver%d')" i i));
        ignore
          (Db.exec os
             (Printf.sprintf "INSERT INTO locations VALUES (%d, %d), (%d, %d)"
                i (10 * i) i ((10 * i) + 1))))
  done;
  let analyst = Db.connect db ~principal:owner in
  Db.add_secrecy analyst tags.(0);
  Db.add_secrecy analyst tags.(1);
  (db, analyst)

let cartel_sql =
  "SELECT c.driver, l.lat FROM cars c JOIN locations l ON l.car_id = \
   c.car_id ORDER BY c.driver, l.lat"

let row_key t =
  ( List.map Value.to_string (Array.to_list (Tuple.values t)),
    Label.to_string (Tuple.label t) )

let pruned_of line =
  match String.index_opt line '=' with
  | None -> 0
  | Some _ -> (
      (* the confinement line reads "... scanned=N pruned=M[ ...]" *)
      let marker = "pruned=" in
      let rec find i =
        if i + String.length marker > String.length line then None
        else if String.sub line i (String.length marker) = marker then Some i
        else find (i + 1)
      in
      match find 0 with
      | None -> 0
      | Some i ->
          let j = ref (i + String.length marker) in
          let k = ref !j in
          while
            !k < String.length line && line.[!k] >= '0' && line.[!k] <= '9'
          do
            incr k
          done;
          if !k > !j then int_of_string (String.sub line !j (!k - !j)) else 0)

let test_explain_analyze_matches_plain_execution () =
  let _db, analyst = cartel_fixture () in
  let plain = Db.query analyst cartel_sql in
  let report, result = Db.explain_analyze analyst cartel_sql in
  (match result with
  | Db.Rows { tuples; _ } ->
      Alcotest.(check (list (pair (list string) string)))
        "EXPLAIN ANALYZE returns exactly the plain rows"
        (List.map row_key plain) (List.map row_key tuples)
  | _ -> Alcotest.fail "EXPLAIN ANALYZE of a SELECT yields rows");
  Alcotest.(check bool) "report names a join operator" true
    (List.exists (fun l -> contains l "Join") report);
  Alcotest.(check bool) "report names the scans" true
    (List.exists (fun l -> contains l "Scan(") report);
  Alcotest.(check bool) "per-table confinement lines present" true
    (List.exists (fun l -> contains l "label confinement on") report);
  let total_pruned =
    List.fold_left
      (fun acc l ->
        if contains l "label confinement on" then acc + pruned_of l else acc)
      0 report
  in
  Alcotest.(check bool) "label pruning observed" true (total_pruned > 0);
  (match
     List.find_opt (fun l -> contains l "flow checks:") report
   with
  | None -> Alcotest.fail "flow-check summary line missing"
  | Some l ->
      Alcotest.(check bool) "flow checks nonzero" false
        (contains l "flow checks: 0");
      Alcotest.(check bool) "memo hit rate reported" true
        (contains l "hit rate="));
  Alcotest.(check bool) "total line present" true
    (List.exists (fun l -> contains l "execution:") report)

let test_plain_explain_returns_plan_without_running () =
  let db, analyst = cartel_fixture () in
  let before =
    match List.assoc_opt "ifdb_statements_total" (Db.metrics_snapshot db) with
    | Some v -> v
    | None -> 0.0
  in
  (match Db.exec analyst ("EXPLAIN " ^ cartel_sql) with
  | Db.Rows { columns = [ "QUERY PLAN" ]; tuples } ->
      Alcotest.(check bool) "plan lines present" true (tuples <> []);
      let first =
        match Tuple.get (List.hd tuples) 0 with
        | Value.Text s -> s
        | v -> Value.to_string v
      in
      Alcotest.(check bool) "root operator named" true
        (contains first "(" && String.length first > 0)
  | _ -> Alcotest.fail "EXPLAIN yields a QUERY PLAN result");
  (* the EXPLAIN itself is one statement; nothing else ran *)
  let after =
    match List.assoc_opt "ifdb_statements_total" (Db.metrics_snapshot db) with
    | Some v -> v
    | None -> 0.0
  in
  Alcotest.(check (float 0.0)) "one statement recorded" (before +. 1.0) after

let test_explain_non_select_rejected () =
  let _db, analyst = cartel_fixture () in
  match Db.exec analyst "EXPLAIN ANALYZE INSERT INTO cars VALUES (9, 'x')" with
  | exception Errors.Sql_error _ -> ()
  | _ -> Alcotest.fail "EXPLAIN supports only SELECT"

(* ------------------------------------------------------------------ *)
(* Audit log completeness                                              *)
(* ------------------------------------------------------------------ *)

let kind_count db k = Audit.count_kind (Db.audit_log db) k

let test_audit_clearance_and_session_declassify () =
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let alice = Db.create_principal admin ~name:"alice" in
  let s = Db.connect db ~principal:alice in
  let tag = Db.create_tag s ~name:"t" () in
  Db.add_secrecy s tag;
  Alcotest.(check int) "one clearance raise" 1
    (kind_count db Audit.Clearance_raise);
  Db.add_secrecy s tag;
  Alcotest.(check int) "re-adding a held tag is not a raise" 1
    (kind_count db Audit.Clearance_raise);
  Db.declassify s tag;
  Alcotest.(check int) "one session declassify" 1
    (kind_count db Audit.Session_declassify);
  let ev = List.hd (Audit.recent (Db.audit_log db) 1) in
  Alcotest.(check string) "principal stamped" "alice" ev.Audit.ev_principal;
  Alcotest.(check (list string)) "tag stamped" [ "t" ] ev.Audit.ev_tags

let test_audit_delegate_revoke () =
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let alice = Db.create_principal admin ~name:"alice" in
  let bob = Db.create_principal admin ~name:"bob" in
  let s = Db.connect db ~principal:alice in
  let tag = Db.create_tag s ~name:"t" () in
  Db.delegate s ~tag ~grantee:bob;
  Alcotest.(check int) "one delegate" 1 (kind_count db Audit.Delegate);
  let ev = List.hd (Audit.recent (Db.audit_log db) 1) in
  Alcotest.(check bool) "grantee recorded" true
    (contains ev.Audit.ev_detail "bob");
  Db.revoke s ~tag ~grantee:bob;
  Alcotest.(check int) "one revoke" 1 (kind_count db Audit.Revoke)

let test_audit_closure_procedure () =
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let owner = Db.create_principal admin ~name:"owner" in
  let owner_s = Db.connect db ~principal:owner in
  let secret = Db.create_tag owner_s ~name:"secret" () in
  ignore (Db.exec admin "CREATE TABLE S (v INT)");
  Db.add_secrecy owner_s secret;
  ignore (Db.exec owner_s "INSERT INTO S VALUES (99)");
  Db.declassify owner_s secret;
  let closure = Db.closure_principal owner_s ~name:"reader" ~tags:[ secret ] in
  Db.register_procedure owner_s ~name:"summarize" ~authority:closure
    (fun s _args ->
      Db.with_label s (Label.singleton secret) (fun () ->
          ignore (Db.query_one s "SELECT SUM(v) FROM S"));
      Value.Null);
  let nobody = Db.create_principal admin ~name:"nobody" in
  let ns = Db.connect db ~principal:nobody in
  let before = kind_count db Audit.Closure_call in
  ignore (Db.exec ns "PERFORM summarize()");
  Alcotest.(check int) "exactly one closure-call event" (before + 1)
    (kind_count db Audit.Closure_call);
  let ev =
    (* the closure body's own label changes audit after the call event *)
    List.find
      (fun e -> e.Audit.ev_kind = Audit.Closure_call)
      (Audit.recent (Db.audit_log db) 10)
  in
  Alcotest.(check bool) "procedure named" true
    (contains ev.Audit.ev_detail "summarize");
  Alcotest.(check bool) "originating statement captured" true
    (contains ev.Audit.ev_stmt "PERFORM")

let test_audit_closure_trigger () =
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let owner = Db.create_principal admin ~name:"owner" in
  let owner_s = Db.connect db ~principal:owner in
  let secret = Db.create_tag owner_s ~name:"secret" () in
  ignore (Db.exec admin "CREATE TABLE T (a INT)");
  let closure = Db.closure_principal owner_s ~name:"audit" ~tags:[ secret ] in
  Db.create_trigger admin ~name:"watch" ~table:"T" ~kinds:[ `Insert ]
    ~authority:closure (fun _s _ev -> ());
  let before = kind_count db Audit.Closure_call in
  ignore (Db.exec admin "INSERT INTO T VALUES (1)");
  Alcotest.(check int) "authority trigger fires one event" (before + 1)
    (kind_count db Audit.Closure_call);
  let ev = List.hd (Audit.recent (Db.audit_log db) 1) in
  Alcotest.(check bool) "trigger named" true
    (contains ev.Audit.ev_detail "watch")

let test_audit_declassifying_view () =
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let chair = Db.create_principal admin ~name:"chair" in
  let chair_s = Db.connect db ~principal:chair in
  let all_contacts = Db.create_tag chair_s ~name:"all_contacts" () in
  ignore
    (Db.exec admin
       "CREATE TABLE ContactInfo (contactId INT PRIMARY KEY, firstName TEXT, \
        isPC BOOL)");
  Db.add_secrecy chair_s all_contacts;
  ignore
    (Db.exec chair_s
       "INSERT INTO ContactInfo VALUES (1, 'Ada', TRUE), (2, 'Bob', FALSE)");
  Db.declassify chair_s all_contacts;
  ignore
    (Db.exec chair_s
       "CREATE VIEW PCMembers AS SELECT firstName FROM ContactInfo WHERE \
        isPC = TRUE WITH DECLASSIFYING (all_contacts)");
  let user = Db.create_principal admin ~name:"user" in
  let user_s = Db.connect db ~principal:user in
  let before = kind_count db Audit.View_declassify in
  ignore (Db.query user_s "SELECT firstName FROM PCMembers");
  Alcotest.(check int) "one event per declassifying read" (before + 1)
    (kind_count db Audit.View_declassify);
  ignore (Db.query user_s "SELECT firstName FROM PCMembers");
  Alcotest.(check int) "second read, second event" (before + 2)
    (kind_count db Audit.View_declassify);
  let ev = List.hd (Audit.recent (Db.audit_log db) 1) in
  Alcotest.(check bool) "declassified tag stamped" true
    (List.mem "all_contacts" ev.Audit.ev_tags);
  Alcotest.(check bool) "originating SELECT captured" true
    (contains ev.Audit.ev_stmt "PCMembers")

let test_audit_write_rule_rejection () =
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let alice = Db.create_principal admin ~name:"alice" in
  let s = Db.connect db ~principal:alice in
  let tag = Db.create_tag s ~name:"am" () in
  ignore (Db.exec admin "CREATE TABLE P (name TEXT, notes TEXT)");
  ignore (Db.exec s "INSERT INTO P VALUES ('Pub', 'p')");
  Db.add_secrecy s tag;
  (match Db.exec s "UPDATE P SET notes = 'z' WHERE name = 'Pub'" with
  | exception Errors.Flow_violation _ -> ()
  | _ -> Alcotest.fail "lower-labeled update must fail");
  Alcotest.(check int) "update rejection audited" 1
    (kind_count db Audit.Write_rule_rejection);
  (match Db.exec s "DELETE FROM P WHERE name = 'Pub'" with
  | exception Errors.Flow_violation _ -> ()
  | _ -> Alcotest.fail "lower-labeled delete must fail");
  Alcotest.(check int) "delete rejection audited" 2
    (kind_count db Audit.Write_rule_rejection);
  let ev = List.hd (Audit.recent (Db.audit_log db) 1) in
  Alcotest.(check bool) "rejected statement captured" true
    (contains ev.Audit.ev_stmt "DELETE")

let test_audit_commit_rejection () =
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let bob = Db.create_principal admin ~name:"bob" in
  let s = Db.connect db ~principal:bob in
  let tag = Db.create_tag s ~name:"h" () in
  ignore (Db.exec admin "CREATE TABLE Foo (msg TEXT)");
  ignore (Db.exec s "BEGIN");
  ignore (Db.exec s "INSERT INTO Foo VALUES ('leak')");
  Db.add_secrecy s tag;
  (match Db.exec s "COMMIT" with
  | exception Errors.Flow_violation _ -> ()
  | _ -> Alcotest.fail "commit-label rule must refuse the commit");
  Alcotest.(check int) "commit rejection audited" 1
    (kind_count db Audit.Commit_rejection);
  let ev = List.hd (Audit.recent (Db.audit_log db) 1) in
  Alcotest.(check string) "principal stamped" "bob" ev.Audit.ev_principal;
  Alcotest.(check (list string)) "offending label stamped" [ "h" ]
    ev.Audit.ev_tags

let test_audit_silent_without_ifc () =
  let db = Db.create ~ifc:false () in
  let admin = Db.connect_admin db in
  let alice = Db.create_principal admin ~name:"alice" in
  let s = Db.connect db ~principal:alice in
  let tag = Db.create_tag s ~name:"t" () in
  Db.add_secrecy s tag;
  Alcotest.(check int) "no clearance events without enforcement" 0
    (kind_count db Audit.Clearance_raise)

(* ------------------------------------------------------------------ *)
(* Slow-query log and WAL-backed audit                                 *)
(* ------------------------------------------------------------------ *)

let test_slow_query_log () =
  let db = Db.create ~slow_query_ms:0.0 () in
  let admin = Db.connect_admin db in
  ignore (Db.exec admin "CREATE TABLE t (a INT)");
  ignore (Db.exec admin "INSERT INTO t VALUES (1), (2), (3)");
  ignore (Db.query admin "SELECT * FROM t");
  let entries = Db.slow_queries db in
  Alcotest.(check bool) "threshold 0 records every statement" true
    (List.length entries >= 3);
  let newest = List.hd entries in
  Alcotest.(check bool) "newest first" true
    (contains newest.Ifdb_obs.Trace.sq_sql "SELECT");
  Alcotest.(check int) "row count recorded" 3
    newest.Ifdb_obs.Trace.sq_rows;
  Alcotest.(check bool) "slow counter in registry" true
    (match
       List.assoc_opt "ifdb_slow_queries_total" (Db.metrics_snapshot db)
     with
    | Some v -> v >= 3.0
    | None -> false)

let test_slow_log_off_by_default () =
  let db = Db.create () in
  let admin = Db.connect_admin db in
  ignore (Db.exec admin "CREATE TABLE t (a INT)");
  Alcotest.(check int) "no entries without a threshold" 0
    (List.length (Db.slow_queries db))

let test_wal_backed_audit () =
  let db = Db.create ~audit_wal:true () in
  let admin = Db.connect_admin db in
  let alice = Db.create_principal admin ~name:"alice" in
  let s = Db.connect db ~principal:alice in
  let tag = Db.create_tag s ~name:"t" () in
  Db.add_secrecy s tag;
  let recs = Wal.recent (Db.wal db) 100 in
  Alcotest.(check bool) "audit event teed into the WAL" true
    (List.exists
       (function
         | Wal.Audit line -> contains line "clearance_raise"
         | _ -> false)
       recs)

(* ------------------------------------------------------------------ *)
(* Database-level statement metrics                                    *)
(* ------------------------------------------------------------------ *)

let snapshot_get db name =
  match List.assoc_opt name (Db.metrics_snapshot db) with
  | Some v -> v
  | None -> Alcotest.failf "metric %s missing" name

let test_statement_metrics () =
  let db = Db.create () in
  let admin = Db.connect_admin db in
  ignore (Db.exec admin "CREATE TABLE t (a INT)");
  ignore (Db.exec admin "INSERT INTO t VALUES (1)");
  ignore (Db.query admin "SELECT * FROM t");
  Alcotest.(check bool) "statements counted" true
    (snapshot_get db "ifdb_statements_total" >= 3.0);
  Alcotest.(check bool) "commits counted" true
    (snapshot_get db "ifdb_txn_commits_total" >= 2.0);
  Alcotest.(check bool) "latency histogram populated" true
    (snapshot_get db "ifdb_statement_seconds_count" >= 3.0);
  (match Db.exec admin "SELECT * FROM no_such_table" with
  | exception _ -> ()
  | _ -> Alcotest.fail "query over a missing table must fail");
  Alcotest.(check bool) "errors counted" true
    (snapshot_get db "ifdb_statement_errors_total" >= 1.0);
  Db.reset_stats db;
  Alcotest.(check (float 0.0)) "reset_stats zeroes the registry" 0.0
    (snapshot_get db "ifdb_statements_total")

let test_metrics_disabled_database () =
  let db = Db.create ~metrics:false () in
  let admin = Db.connect_admin db in
  ignore (Db.exec admin "CREATE TABLE t (a INT)");
  ignore (Db.exec admin "INSERT INTO t VALUES (1)");
  Alcotest.(check int) "snapshot empty when disabled" 0
    (List.length (Db.metrics_snapshot db));
  (* tracing is independent of the registry: EXPLAIN ANALYZE still works *)
  let report, _ = Db.explain_analyze admin "SELECT * FROM t" in
  Alcotest.(check bool) "EXPLAIN ANALYZE unaffected" true
    (List.exists (fun l -> contains l "execution:") report)

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "obs.metrics",
      [
        Alcotest.test_case "counter basics" `Quick test_counter_basics;
        Alcotest.test_case "name rules" `Quick test_name_rules;
        Alcotest.test_case "disabled registry no-ops" `Quick
          test_disabled_registry;
        Alcotest.test_case "histogram" `Quick test_histogram;
        Alcotest.test_case "reset" `Quick test_reset;
        Alcotest.test_case "prometheus exposition" `Quick
          test_prometheus_exposition;
        Alcotest.test_case "database dump has unique samples" `Quick
          test_database_prometheus_no_duplicates;
        parallel_counter_prop;
      ] );
    ( "obs.take-stats",
      [
        Alcotest.test_case "label-store conservation under domains" `Quick
          test_label_store_take_stats_conservation;
        Alcotest.test_case "buffer-pool conservation under domains" `Quick
          test_buffer_pool_take_stats_conservation;
      ] );
    ( "obs.explain",
      [
        Alcotest.test_case "EXPLAIN ANALYZE matches plain execution" `Quick
          test_explain_analyze_matches_plain_execution;
        Alcotest.test_case "plain EXPLAIN returns the plan" `Quick
          test_plain_explain_returns_plan_without_running;
        Alcotest.test_case "EXPLAIN rejects non-SELECT" `Quick
          test_explain_non_select_rejected;
      ] );
    ( "obs.audit",
      [
        Alcotest.test_case "clearance raise and session declassify" `Quick
          test_audit_clearance_and_session_declassify;
        Alcotest.test_case "delegate and revoke" `Quick
          test_audit_delegate_revoke;
        Alcotest.test_case "authority procedure call" `Quick
          test_audit_closure_procedure;
        Alcotest.test_case "authority trigger call" `Quick
          test_audit_closure_trigger;
        Alcotest.test_case "declassifying view reads" `Quick
          test_audit_declassifying_view;
        Alcotest.test_case "Write Rule rejections" `Quick
          test_audit_write_rule_rejection;
        Alcotest.test_case "commit-label rejection" `Quick
          test_audit_commit_rejection;
        Alcotest.test_case "silent without IFC" `Quick
          test_audit_silent_without_ifc;
      ] );
    ( "obs.slow-and-wal",
      [
        Alcotest.test_case "slow-query log" `Quick test_slow_query_log;
        Alcotest.test_case "slow log off by default" `Quick
          test_slow_log_off_by_default;
        Alcotest.test_case "WAL-backed audit" `Quick test_wal_backed_audit;
      ] );
    ( "obs.database-metrics",
      [
        Alcotest.test_case "statement counters and histogram" `Quick
          test_statement_metrics;
        Alcotest.test_case "disabled registry end to end" `Quick
          test_metrics_disabled_database;
      ] );
  ]

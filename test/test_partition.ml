(* Label-sharded storage (PR 7): the partitioned layout is physically
   different — per-label heap page runs, per-label index segments,
   partition-granularity locks — but must be observationally identical
   to the flat layout.  A random labeled DML + query trace is replayed
   against one database of each layout and every outcome is compared:
   result values, result labels, error outcomes, the audit stream and
   the final visible state.  CI runs the suite at parallelism 1 and at
   a multi-domain setting ([IFDB_TEST_PARALLELISM]), so the merged
   morsel path is compared against the flat morsel path too. *)

module Db = Ifdb_core.Database
module Label = Ifdb_difc.Label
module Tag = Ifdb_difc.Tag
module Value = Ifdb_rel.Value
module Tuple = Ifdb_rel.Tuple
module Audit = Ifdb_obs.Audit
module Heap = Ifdb_storage.Heap

let par_width =
  match Sys.getenv_opt "IFDB_TEST_PARALLELISM" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 4)
  | None -> 4

(* ------------------------------------------------------------------ *)
(* Trace language                                                      *)
(* ------------------------------------------------------------------ *)

(* Labels are masks over two tags, so traces exercise the empty
   partition, both singletons and the union — enough to make pruning,
   polyinstantiation and Write-Rule rejections all reachable. *)
type op =
  | Insert of int * int * int  (* id, v, session label mask *)
  | Update of int * int * int  (* id, new v, session label mask *)
  | Delete of int * int        (* id, session label mask *)
  | Query of int               (* reader label mask *)

let pp_op = function
  | Insert (id, v, m) -> Printf.sprintf "Insert(%d,%d,%d)" id v m
  | Update (id, v, m) -> Printf.sprintf "Update(%d,%d,%d)" id v m
  | Delete (id, m) -> Printf.sprintf "Delete(%d,%d)" id m
  | Query m -> Printf.sprintf "Query(%d)" m

let gen_op =
  QCheck.Gen.(
    let id = int_bound 7 and v = int_bound 9 and mask = int_bound 3 in
    frequency
      [
        (4, map3 (fun i x m -> Insert (i, x, m)) id v mask);
        (2, map3 (fun i x m -> Update (i, x, m)) id v mask);
        (2, map2 (fun i m -> Delete (i, m)) id mask);
        (3, map (fun m -> Query m) mask);
      ])

let gen_trace = QCheck.Gen.(list_size (int_range 5 30) gen_op)

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

(* One op's observable outcome: the rows it returned (values + label)
   or the error it raised, rendered to strings so the two layouts can
   be diffed structurally. *)
type outcome =
  | Rows of (string list * string) list
  | Count of int
  | Error of string

let row_key t =
  ( List.map Value.to_string (Array.to_list (Tuple.values t)),
    Label.to_string (Tuple.label t) )

let replay ~partitioned ~parallelism ops =
  let db = Db.create ~partitioned ~parallelism ~morsel_size:16 () in
  let admin = Db.connect_admin db in
  let owner = Db.create_principal admin ~name:"owner" in
  let os = Db.connect db ~principal:owner in
  let ta = Db.create_tag os ~name:"ta" () in
  let tb = Db.create_tag os ~name:"tb" () in
  ignore (Db.exec admin "CREATE TABLE t (id INT PRIMARY KEY, v INT)");
  let session mask =
    let s = Db.connect db ~principal:owner in
    if mask land 1 <> 0 then Db.add_secrecy s ta;
    if mask land 2 <> 0 then Db.add_secrecy s tb;
    s
  in
  let run mask sql =
    match Db.exec (session mask) sql with
    | Db.Rows { tuples; _ } -> Rows (List.map row_key tuples)
    | Db.Affected n -> Count n
    | Db.Done _ -> Count 0
    | exception e -> Error (Printexc.to_string e)
  in
  let outcomes =
    List.map
      (fun op ->
        match op with
        | Insert (id, v, m) ->
            run m (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" id v)
        | Update (id, v, m) ->
            run m (Printf.sprintf "UPDATE t SET v = %d WHERE id = %d" v id)
        | Delete (id, m) ->
            run m (Printf.sprintf "DELETE FROM t WHERE id = %d" id)
        | Query m -> run m "SELECT id, v FROM t ORDER BY id, v")
      ops
  in
  let final =
    match run 3 "SELECT id, v FROM t ORDER BY id, v" with
    | Rows rows -> rows
    | Count _ | Error _ -> assert false
  in
  let audit =
    List.map
      (fun ev -> (ev.Audit.ev_kind, ev.Audit.ev_principal, ev.Audit.ev_tags))
      (Audit.events (Db.audit_log db))
  in
  (outcomes, final, audit)

let check_equivalence ~parallelism ops =
  let a = replay ~partitioned:true ~parallelism ops in
  let b = replay ~partitioned:false ~parallelism ops in
  if a <> b then
    QCheck.Test.fail_reportf "partitioned /= flat on@ [%s]"
      (String.concat "; " (List.map pp_op ops));
  true

let qcheck_equivalence ~count ~parallelism name =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name
       (QCheck.make
          ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
          gen_trace)
       (fun ops -> check_equivalence ~parallelism ops))

(* ------------------------------------------------------------------ *)
(* Pruning is observable                                               *)
(* ------------------------------------------------------------------ *)

(* A low reader over a mixed-label table must skip the high partitions
   without touching their tuples: the pruned-partition counter moves,
   the directory reports every partition, and results stay correct. *)
let test_pruning_observable () =
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let owner = Db.create_principal admin ~name:"owner" in
  let os = Db.connect db ~principal:owner in
  let tag = Db.create_tag os ~name:"secret" () in
  ignore (Db.exec admin "CREATE TABLE r (id INT PRIMARY KEY, v INT)");
  Alcotest.(check bool) "partitioned by default" true (Db.partitioned db);
  ignore (Db.exec admin "INSERT INTO r VALUES (1, 10)");
  ignore (Db.exec admin "INSERT INTO r VALUES (2, 20)");
  let hs = Db.connect db ~principal:owner in
  Db.add_secrecy hs tag;
  ignore (Db.exec hs "INSERT INTO r VALUES (3, 30)");
  let before = Db.partitions_pruned db in
  let low = Db.query admin "SELECT id FROM r ORDER BY id" in
  Alcotest.(check int) "low reader sees public rows" 2 (List.length low);
  Alcotest.(check bool) "secret partition was pruned" true
    (Db.partitions_pruned db > before);
  let high = Db.connect db ~principal:owner in
  Db.add_secrecy high tag;
  let all = Db.query high "SELECT id FROM r ORDER BY id" in
  Alcotest.(check int) "high reader sees all rows" 3 (List.length all);
  match Db.partition_report db with
  | [ { Db.tp_table = "r"; tp_stats } ] ->
      Alcotest.(check int) "two partitions in the directory" 2
        (List.length tp_stats);
      Alcotest.(check int) "three versions across partitions" 3
        (List.fold_left
           (fun acc ps -> acc + ps.Heap.ps_versions)
           0 tp_stats)
  | report ->
      Alcotest.failf "unexpected partition report (%d tables)"
        (List.length report)

(* ------------------------------------------------------------------ *)
(* IVM deltas skip foreign partitions                                  *)
(* ------------------------------------------------------------------ *)

(* A materialized view pinned to one label partition by an exact
   [_label = {…}] filter must ignore commits that only write other
   partitions — the satellite wiring label intervals into the commit
   hook.  Correctness first: the view still reflects writes to its own
   partition. *)
let test_ivm_partition_skip () =
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let owner = Db.create_principal admin ~name:"owner" in
  let os = Db.connect db ~principal:owner in
  let ta = Db.create_tag os ~name:"ta" () in
  let _tb = Db.create_tag os ~name:"tb" () in
  ignore (Db.exec admin "CREATE TABLE m (id INT PRIMARY KEY, v INT)");
  let sa = Db.connect db ~principal:owner in
  Db.add_secrecy sa ta;
  ignore (Db.exec sa "INSERT INTO m VALUES (1, 10)");
  ignore
    (Db.exec sa
       "CREATE MATERIALIZED VIEW mv AS SELECT id, v FROM m WHERE _label = \
        {ta}");
  let stat () =
    match List.filter (fun st -> st.Ifdb_engine.Ivm.vs_name = "mv")
            (Db.view_stats db) with
    | [ st ] -> st
    | _ -> Alcotest.fail "mv not registered"
  in
  Alcotest.(check bool) "delta maintenance on" true (stat ()).Ifdb_engine.Ivm.vs_supported;
  (* a commit entirely in another partition: provably irrelevant *)
  let sb = Db.connect db ~principal:owner in
  Db.add_secrecy sb _tb;
  ignore (Db.exec sb "INSERT INTO m VALUES (2, 20)");
  let st = stat () in
  Alcotest.(check bool) "foreign-partition commit skipped" true
    (st.Ifdb_engine.Ivm.vs_skipped >= 1);
  (* a commit in the pinned partition must still be applied *)
  ignore (Db.exec sa "INSERT INTO m VALUES (3, 30)");
  let reader = Db.connect db ~principal:owner in
  Db.add_secrecy reader ta;
  let rows = Db.query reader "SELECT id, v FROM mv ORDER BY id" in
  Alcotest.(check (list (list string)))
    "view reflects its own partition only"
    [ [ "1"; "10" ]; [ "3"; "30" ] ]
    (List.map
       (fun t -> List.map Value.to_string (Array.to_list (Tuple.values t)))
       rows);
  let st = stat () in
  Alcotest.(check bool) "own-partition commit applied" true
    (st.Ifdb_engine.Ivm.vs_deltas >= 1)

let suites =
  [
    ( "partition",
      [
        qcheck_equivalence ~count:40 ~parallelism:1
          "partitioned = flat (serial)";
        qcheck_equivalence ~count:12 ~parallelism:par_width
          "partitioned = flat (parallel)";
        Alcotest.test_case "pruning observable" `Quick test_pruning_observable;
        Alcotest.test_case "IVM skips foreign partitions" `Quick
          test_ivm_partition_skip;
      ] );
  ]

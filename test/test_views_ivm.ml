(* Incremental maintenance of declassifying materialized views.

   The central property: a MATERIALIZED view answers every read with
   exactly what per-read recomputation would produce — the same visible
   tuples, the same labels, and the same audit-event sequence (one
   view_declassify per read, whichever path served it).  Each case
   creates a twin pair over the same base data — [mv] materialized,
   [pv] plain, identical body and DECLASSIFYING clause — drives a
   random DML trace through labeled sessions, and compares the views
   after every statement, at parallelism 1 and the CI multi-domain
   setting ([IFDB_TEST_PARALLELISM]).

   Explicit cases cover polyinstantiated duplicates (separate entries
   per label partition), delegation/revocation churn (the registry's
   per-reader cache is generation-stamped, so authority changes can
   never be outlived by a cached serve), explicit-transaction
   fallback, and the recompute-only path for unsupported shapes. *)

module Db = Ifdb_core.Database
module Label = Ifdb_difc.Label
module Value = Ifdb_rel.Value
module Tuple = Ifdb_rel.Tuple
module Audit = Ifdb_obs.Audit
module Ivm = Ifdb_engine.Ivm

let par_width =
  match Sys.getenv_opt "IFDB_TEST_PARALLELISM" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 4)
  | None -> 4

let row_key t =
  ( List.map Value.to_string (Array.to_list (Tuple.values t)),
    Label.to_string (Tuple.label t) )

let multiset rows = List.sort compare (List.map row_key rows)

(* ------------------------------------------------------------------ *)
(* Fixture: two tables, two tags, twin views                           *)
(* ------------------------------------------------------------------ *)

type fixture = {
  fx_db : Db.t;
  fx_owner : Db.session; (* owns t0 and t1; the DML writer *)
  fx_tags : Ifdb_difc.Tag.t array;
  fx_readers : Db.session list; (* public, and contaminated with t1 *)
}

(* Shapes the property test draws from.  The last one (DISTINCT) is
   deliberately outside the delta compiler's support, so the trace
   also exercises the recompute-only fallback end to end. *)
let shapes =
  [|
    "SELECT k, v FROM r";
    "SELECT k, v FROM r WHERE v > 10 ORDER BY k, v";
    "SELECT k, COUNT(*) AS n, SUM(v) AS s FROM r GROUP BY k";
    "SELECT COUNT(*) AS n, AVG(v) AS a FROM r";
    "SELECT k, MIN(v) AS lo, MAX(v) AS hi FROM r GROUP BY k";
    "SELECT r.k, r.v, b.w FROM r JOIN b ON r.k = b.k";
    "SELECT DISTINCT k FROM r";
  |]

let build ~parallelism shape =
  let db = Db.create ~parallelism ~morsel_size:16 () in
  let admin = Db.connect_admin db in
  let owner = Db.connect db ~principal:(Db.create_principal admin ~name:"owner") in
  let fx_tags =
    Array.init 2 (fun i -> Db.create_tag owner ~name:(Printf.sprintf "t%d" i) ())
  in
  ignore (Db.exec admin "CREATE TABLE r (k INT, v INT)");
  ignore (Db.exec admin "CREATE TABLE b (k INT, w INT)");
  for k = 0 to 5 do
    ignore (Db.exec admin (Printf.sprintf "INSERT INTO b VALUES (%d, %d)" k (100 + k)))
  done;
  (* twin views: same body, same declassification, one materialized *)
  ignore
    (Db.exec owner
       (Printf.sprintf "CREATE MATERIALIZED VIEW mv AS %s WITH DECLASSIFYING (t0)" shape));
  ignore
    (Db.exec owner
       (Printf.sprintf "CREATE VIEW pv AS %s WITH DECLASSIFYING (t0)" shape));
  let rd_pub = Db.connect db ~principal:(Db.session_principal owner) in
  let rd_t1 = Db.connect db ~principal:(Db.session_principal owner) in
  Db.add_secrecy rd_t1 fx_tags.(1);
  { fx_db = db; fx_owner = owner; fx_tags; fx_readers = [ rd_pub; rd_t1 ] }

(* ------------------------------------------------------------------ *)
(* Random DML traces                                                   *)
(* ------------------------------------------------------------------ *)

type op =
  | Ins of int * int * int (* k, v, label choice: 0 = t0, 1 = t1, 2 = public *)
  | Upd of int * int * int (* k, new v, label choice *)
  | Del of int * int       (* k, label choice *)

let label_of fx = function
  | 2 -> Label.empty
  | i -> Label.singleton fx.fx_tags.(i)

let run_op fx op =
  let lbl, sql =
    match op with
    | Ins (k, v, l) ->
        (label_of fx l, Printf.sprintf "INSERT INTO r VALUES (%d, %d)" k v)
    | Upd (k, v, l) ->
        (label_of fx l, Printf.sprintf "UPDATE r SET v = %d WHERE k = %d" v k)
    | Del (k, l) ->
        (label_of fx l, Printf.sprintf "DELETE FROM r WHERE k = %d" k)
  in
  Db.set_label fx.fx_owner lbl;
  (* Write Rule rejections (e.g. an update visible-but-differently-
     labeled) are part of the semantics being compared, not a test
     failure: both twins sit over exactly the same base data either
     way *)
  (try ignore (Db.exec fx.fx_owner sql) with _ -> ());
  Db.set_label fx.fx_owner Label.empty

(* One equivalence check: same multiset of (values, label), and exactly
   one view_declassify audit event per read of either twin. *)
let check_equiv fx =
  List.iter
    (fun rd ->
      let count () = Audit.count_kind (Db.audit_log fx.fx_db) Audit.View_declassify in
      let c0 = count () in
      let got = Db.query rd "SELECT * FROM mv" in
      let c1 = count () in
      Alcotest.(check int) "one view_declassify per materialized read" (c0 + 1) c1;
      let want = Db.query rd "SELECT * FROM pv" in
      let c2 = count () in
      Alcotest.(check int) "one view_declassify per recomputed read" (c1 + 1) c2;
      Alcotest.(check (list (pair (list string) string)))
        "materialized = recomputed (values and labels)" (multiset want)
        (multiset got))
    fx.fx_readers

let run_case ~parallelism shape_idx trace =
  let fx = build ~parallelism shapes.(shape_idx) in
  check_equiv fx;
  List.iter
    (fun op ->
      run_op fx op;
      check_equiv fx)
    trace;
  (* the ORDER BY shape must also come back sorted from the
     materialized path *)
  if shape_idx = 1 then begin
    let rows =
      List.map
        (fun t ->
          match Array.to_list (Tuple.values t) with
          | Value.Int k :: Value.Int v :: _ -> (k, v)
          | _ -> Alcotest.fail "unexpected row shape")
        (Db.query (List.hd fx.fx_readers) "SELECT * FROM mv")
    in
    Alcotest.(check bool)
      "materialized ORDER BY is sorted" true
      (List.sort compare rows = rows)
  end

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (5, map3 (fun k v l -> Ins (k, v, l)) (int_bound 5) (int_bound 30) (int_bound 2));
        (3, map3 (fun k v l -> Upd (k, v, l)) (int_bound 5) (int_bound 30) (int_bound 2));
        (2, map2 (fun k l -> Del (k, l)) (int_bound 5) (int_bound 2));
      ])

let gen_trace =
  QCheck.Gen.(
    pair (int_bound (Array.length shapes - 1)) (list_size (int_range 4 18) gen_op))

let print_trace (shape_idx, ops) =
  Printf.sprintf "shape %d (%s); %s" shape_idx shapes.(shape_idx)
    (String.concat "; "
       (List.map
          (function
            | Ins (k, v, l) -> Printf.sprintf "INS(%d,%d,l%d)" k v l
            | Upd (k, v, l) -> Printf.sprintf "UPD(%d,%d,l%d)" k v l
            | Del (k, l) -> Printf.sprintf "DEL(%d,l%d)" k l)
          ops))

let prop_equiv =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:25
       ~name:"incremental = recompute over random traces and shapes"
       (QCheck.make ~print:print_trace gen_trace)
       (fun (shape_idx, trace) ->
         run_case ~parallelism:1 shape_idx trace;
         run_case ~parallelism:par_width shape_idx trace;
         true))

(* ------------------------------------------------------------------ *)
(* Explicit cases                                                      *)
(* ------------------------------------------------------------------ *)

let find_stats db name =
  match List.find_opt (fun s -> s.Ivm.vs_name = name) (Db.view_stats db) with
  | Some s -> s
  | None -> Alcotest.failf "no stats for view %s" name

(* Polyinstantiated duplicates stay separate entries: the same primary
   key under two labels materializes as two partition entries, and a
   reader sees exactly the partitions that flow to it. *)
let test_polyinstantiation () =
  let fx = build ~parallelism:1 "SELECT k, v FROM r" in
  ignore (Db.exec fx.fx_owner "INSERT INTO r VALUES (1, 10)");
  Db.set_label fx.fx_owner (Label.singleton fx.fx_tags.(1));
  ignore (Db.exec fx.fx_owner "INSERT INTO r VALUES (1, 20)");
  Db.set_label fx.fx_owner Label.empty;
  check_equiv fx;
  let pub = List.nth fx.fx_readers 0 and con = List.nth fx.fx_readers 1 in
  Alcotest.(check int) "public reader: 1 row" 1
    (List.length (Db.query pub "SELECT * FROM mv"));
  Alcotest.(check int) "contaminated reader: both duplicates" 2
    (List.length (Db.query con "SELECT * FROM mv"));
  let s = find_stats fx.fx_db "mv" in
  Alcotest.(check int) "two label partitions in the state" 2 s.Ivm.vs_partitions;
  Alcotest.(check bool) "reads were served incrementally" true (s.Ivm.vs_served > 0)

(* Authority churn: delegation, revocation and tag creation each bump
   the authority generation, which invalidates the registry's
   per-reader cache — a serve can never outlive the authority change.
   Equivalence with recomputation must hold across every step. *)
let test_revocation_invalidation () =
  let fx = build ~parallelism:1 "SELECT k, COUNT(*) AS n, SUM(v) AS s FROM r GROUP BY k" in
  Db.set_label fx.fx_owner (Label.singleton fx.fx_tags.(0));
  ignore (Db.exec fx.fx_owner "INSERT INTO r VALUES (1, 5)");
  ignore (Db.exec fx.fx_owner "INSERT INTO r VALUES (1, 7)");
  Db.set_label fx.fx_owner Label.empty;
  check_equiv fx;
  let bob = Db.create_principal fx.fx_owner ~name:"bob" in
  Db.delegate fx.fx_owner ~tag:fx.fx_tags.(0) ~grantee:bob;
  check_equiv fx;
  run_op fx (Ins (2, 9, 0));
  check_equiv fx;
  Db.revoke fx.fx_owner ~tag:fx.fx_tags.(0) ~grantee:bob;
  check_equiv fx;
  ignore (Db.create_tag fx.fx_owner ~name:"fresh" ());
  check_equiv fx

(* Explicit transactions may pin an older snapshot, so they recompute
   through the view's plan — and still agree with the plain twin. *)
let test_explicit_txn_fallback () =
  let fx = build ~parallelism:1 "SELECT k, v FROM r" in
  ignore (Db.exec fx.fx_owner "INSERT INTO r VALUES (1, 5)");
  check_equiv fx;
  let before = (find_stats fx.fx_db "mv").Ivm.vs_recomputes in
  let rd = List.hd fx.fx_readers in
  ignore (Db.exec rd "BEGIN");
  let got = Db.query rd "SELECT * FROM mv" in
  let want = Db.query rd "SELECT * FROM pv" in
  ignore (Db.exec rd "COMMIT");
  Alcotest.(check (list (pair (list string) string)))
    "in-transaction read agrees" (multiset want) (multiset got);
  Alcotest.(check bool) "read was counted as a recompute" true
    ((find_stats fx.fx_db "mv").Ivm.vs_recomputes > before)

(* Unsupported shapes register as recompute-only and stay correct. *)
let test_unsupported_shape () =
  let fx = build ~parallelism:1 "SELECT DISTINCT k FROM r" in
  ignore (Db.exec fx.fx_owner "INSERT INTO r VALUES (1, 5)");
  ignore (Db.exec fx.fx_owner "INSERT INTO r VALUES (1, 6)");
  check_equiv fx;
  let s = find_stats fx.fx_db "mv" in
  Alcotest.(check bool) "registered as unsupported" false s.Ivm.vs_supported;
  Alcotest.(check bool) "reason names the construct" true
    (s.Ivm.vs_reason <> "");
  Alcotest.(check bool) "reads recomputed" true (s.Ivm.vs_recomputes > 0);
  Alcotest.(check int) "nothing served" 0 s.Ivm.vs_served

(* The registry's counters surface through the metrics registry under
   stable names (the \views / \metrics satellite). *)
let test_metrics_surface () =
  let fx = build ~parallelism:1 "SELECT k, v FROM r" in
  ignore (Db.exec fx.fx_owner "INSERT INTO r VALUES (1, 5)");
  ignore (Db.query (List.hd fx.fx_readers) "SELECT * FROM mv");
  let snap = Db.metrics_snapshot fx.fx_db in
  let v name =
    match List.assoc_opt name snap with
    | Some f -> int_of_float f
    | None -> Alcotest.failf "metric %s missing" name
  in
  Alcotest.(check int) "one materialized view" 1 (v "ifdb_mat_views");
  Alcotest.(check bool) "deltas counted" true (v "ifdb_mat_view_deltas_total" > 0);
  Alcotest.(check bool) "incremental reads counted" true
    (v "ifdb_mat_view_reads_incremental_total" > 0);
  Alcotest.(check int) "no stale views" 0 (v "ifdb_mat_view_stale")

(* DROP VIEW unregisters; DROP TABLE invalidates dependents. *)
let test_drop_invalidation () =
  let fx = build ~parallelism:1 "SELECT k, v FROM r" in
  ignore (Db.exec fx.fx_owner "INSERT INTO r VALUES (1, 5)");
  check_equiv fx;
  ignore (Db.exec fx.fx_owner "DROP VIEW mv");
  Alcotest.(check int) "unregistered" 0 (List.length (Db.view_stats fx.fx_db));
  ignore
    (Db.exec fx.fx_owner
       "CREATE MATERIALIZED VIEW mv2 AS SELECT k, v FROM r WITH DECLASSIFYING (t0)");
  ignore (Db.exec fx.fx_owner "DROP TABLE r");
  let s = find_stats fx.fx_db "mv2" in
  Alcotest.(check bool) "state dropped with the base table" true s.Ivm.vs_stale

let suites =
  [
    ( "views-ivm",
      [
        Alcotest.test_case "polyinstantiated duplicates" `Quick
          test_polyinstantiation;
        Alcotest.test_case "delegation/revocation churn" `Quick
          test_revocation_invalidation;
        Alcotest.test_case "explicit-transaction fallback" `Quick
          test_explicit_txn_fallback;
        Alcotest.test_case "unsupported shape recomputes" `Quick
          test_unsupported_shape;
        Alcotest.test_case "metrics surface" `Quick test_metrics_surface;
        Alcotest.test_case "drop view / drop table" `Quick
          test_drop_invalidation;
        prop_equiv;
      ] );
  ]

(* Integration tests for the SQL pipeline: planner + executor over the
   core, in baseline mode (ifc:false) so they exercise pure engine
   behaviour, plus index/scan equivalence properties. *)

module Db = Ifdb_core.Database
module Errors = Ifdb_core.Errors
module Value = Ifdb_rel.Value
module Tuple = Ifdb_rel.Tuple

let check_val = Alcotest.testable Value.pp Value.equal

let fresh () =
  let db = Db.create ~ifc:false () in
  let s = Db.connect_admin db in
  ignore
    (Db.exec s
       "CREATE TABLE emp (id INT PRIMARY KEY, name TEXT NOT NULL, dept TEXT, \
        salary INT, boss INT)");
  ignore
    (Db.exec s
       "INSERT INTO emp VALUES \
        (1, 'ada', 'eng', 120, NULL), \
        (2, 'bob', 'eng', 90, 1), \
        (3, 'cyd', 'ops', 80, 1), \
        (4, 'dan', 'ops', 80, 3), \
        (5, 'eve', 'sales', 70, 1)");
  ignore (Db.exec s "CREATE TABLE dept (dname TEXT PRIMARY KEY, budget INT)");
  ignore
    (Db.exec s
       "INSERT INTO dept VALUES ('eng', 1000), ('ops', 500), ('hr', 100)");
  (db, s)

let col0_ints rows = List.map (fun r -> Value.to_int (Tuple.get r 0)) rows
let col0_texts rows = List.map (fun r -> Value.to_text (Tuple.get r 0)) rows

let test_select_where_order_limit () =
  let _, s = fresh () in
  let rows =
    Db.query s
      "SELECT name FROM emp WHERE salary >= 80 ORDER BY salary DESC, name ASC"
  in
  Alcotest.(check (list string)) "ordered" [ "ada"; "bob"; "cyd"; "dan" ]
    (col0_texts rows);
  let rows =
    Db.query s "SELECT name FROM emp ORDER BY salary DESC LIMIT 2 OFFSET 1"
  in
  Alcotest.(check (list string)) "limit/offset" [ "bob"; "cyd" ] (col0_texts rows)

let test_projection_expressions () =
  let _, s = fresh () in
  let row = Db.query_one s "SELECT salary * 2 + 1 AS d FROM emp WHERE id = 2" in
  Alcotest.check check_val "arith" (Value.Int 181) (Tuple.get row 0);
  let row = Db.query_one s "SELECT name || '!' FROM emp WHERE id = 1" in
  Alcotest.check check_val "concat" (Value.Text "ada!") (Tuple.get row 0);
  let row =
    Db.query_one s
      "SELECT CASE WHEN salary > 100 THEN 'high' ELSE 'low' END FROM emp WHERE id = 1"
  in
  Alcotest.check check_val "case" (Value.Text "high") (Tuple.get row 0)

let test_select_star_and_qualified_star () =
  let _, s = fresh () in
  let row = Db.query_one s "SELECT * FROM emp WHERE id = 1" in
  Alcotest.(check int) "arity" 5 (Tuple.arity row);
  let row =
    Db.query_one s
      "SELECT e.* FROM emp e JOIN dept d ON e.dept = d.dname WHERE e.id = 1"
  in
  Alcotest.(check int) "table star arity" 5 (Tuple.arity row)

let test_inner_join () =
  let _, s = fresh () in
  let rows =
    Db.query s
      "SELECT e.name, d.budget FROM emp e JOIN dept d ON e.dept = d.dname \
       ORDER BY e.name"
  in
  Alcotest.(check int) "5 matched" 4 (List.length rows)
  (* eve's 'sales' has no dept row *)

let test_left_join () =
  let _, s = fresh () in
  let rows =
    Db.query s
      "SELECT e.name, d.budget FROM emp e LEFT JOIN dept d ON e.dept = d.dname \
       WHERE d.budget IS NULL"
  in
  Alcotest.(check (list string)) "unmatched padded" [ "eve" ] (col0_texts rows)

let test_self_join () =
  let _, s = fresh () in
  let rows =
    Db.query s
      "SELECT e.name, b.name FROM emp e JOIN emp b ON e.boss = b.id ORDER BY e.name"
  in
  Alcotest.(check (list string)) "workers" [ "bob"; "cyd"; "dan"; "eve" ]
    (col0_texts rows);
  Alcotest.(check (list string)) "bosses" [ "ada"; "ada"; "cyd"; "ada" ]
    (List.map (fun r -> Value.to_text (Tuple.get r 1)) rows)

let test_comma_join_where () =
  let _, s = fresh () in
  let rows =
    Db.query s
      "SELECT e.name FROM emp e, dept d WHERE e.dept = d.dname AND d.budget > 600"
  in
  Alcotest.(check (list string)) "eng only" [ "ada"; "bob" ]
    (List.sort String.compare (col0_texts rows))

let test_aggregates_global () =
  let _, s = fresh () in
  let row =
    Db.query_one s
      "SELECT COUNT(*), SUM(salary), AVG(salary), MIN(salary), MAX(salary), \
       COUNT(boss) FROM emp"
  in
  Alcotest.check check_val "count" (Value.Int 5) (Tuple.get row 0);
  Alcotest.check check_val "sum" (Value.Int 440) (Tuple.get row 1);
  Alcotest.check check_val "avg" (Value.Float 88.0) (Tuple.get row 2);
  Alcotest.check check_val "min" (Value.Int 70) (Tuple.get row 3);
  Alcotest.check check_val "max" (Value.Int 120) (Tuple.get row 4);
  Alcotest.check check_val "count non-null" (Value.Int 4) (Tuple.get row 5)

let test_aggregates_empty_input () =
  let _, s = fresh () in
  let row = Db.query_one s "SELECT COUNT(*), SUM(salary) FROM emp WHERE id > 99" in
  Alcotest.check check_val "count 0" (Value.Int 0) (Tuple.get row 0);
  Alcotest.check check_val "sum null" Value.Null (Tuple.get row 1)

let test_group_by_having () =
  let _, s = fresh () in
  let rows =
    Db.query s
      "SELECT dept, COUNT(*) AS n, SUM(salary) FROM emp GROUP BY dept \
       HAVING COUNT(*) > 1 ORDER BY dept"
  in
  Alcotest.(check (list string)) "groups" [ "eng"; "ops" ] (col0_texts rows);
  Alcotest.(check (list int)) "sums" [ 210; 160 ]
    (List.map (fun r -> Value.to_int (Tuple.get r 2)) rows)

let test_group_by_expression_key () =
  let _, s = fresh () in
  let rows =
    Db.query s
      "SELECT salary / 50, COUNT(*) FROM emp GROUP BY salary / 50 ORDER BY salary / 50"
  in
  Alcotest.(check (list int)) "bucket keys" [ 1; 2 ] (col0_ints rows)

let test_distinct () =
  let _, s = fresh () in
  let rows = Db.query s "SELECT DISTINCT dept FROM emp ORDER BY dept" in
  Alcotest.(check (list string)) "distinct" [ "eng"; "ops"; "sales" ] (col0_texts rows)

let test_subquery_in_from () =
  let _, s = fresh () in
  let row =
    Db.query_one s
      "SELECT MAX(n) FROM (SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept) AS g"
  in
  Alcotest.check check_val "max group size" (Value.Int 2) (Tuple.get row 0)

let test_in_like_null_predicates () =
  let _, s = fresh () in
  Alcotest.(check int) "in" 2
    (List.length (Db.query s "SELECT * FROM emp WHERE id IN (1, 3)"));
  Alcotest.(check int) "like" 1
    (List.length (Db.query s "SELECT * FROM emp WHERE name LIKE 'a%'"));
  Alcotest.(check int) "is null" 1
    (List.length (Db.query s "SELECT * FROM emp WHERE boss IS NULL"));
  Alcotest.(check int) "not in" 3
    (List.length (Db.query s "SELECT * FROM emp WHERE id NOT IN (1, 3)"))

let test_scalar_functions () =
  let db, s = fresh () in
  Alcotest.(check string) "upper" "ADA"
    (Value.to_text (Tuple.get (Db.query_one s "SELECT upper(name) FROM emp WHERE id = 1") 0));
  Alcotest.(check int) "coalesce" 0
    (Value.to_int
       (Tuple.get (Db.query_one s "SELECT coalesce(boss, 0) FROM emp WHERE id = 1") 0));
  (* user-registered scalar *)
  Db.register_scalar db ~name:"double_it" (fun _s args ->
      match args with
      | [ Value.Int i ] -> Value.Int (2 * i)
      | _ -> failwith "bad args");
  Alcotest.(check int) "registered scalar" 240
    (Value.to_int
       (Tuple.get (Db.query_one s "SELECT double_it(salary) FROM emp WHERE id = 1") 0))

let test_select_without_from () =
  let _, s = fresh () in
  let row = Db.query_one s "SELECT 1 + 2, 'x'" in
  Alcotest.check check_val "const" (Value.Int 3) (Tuple.get row 0);
  Alcotest.check check_val "text" (Value.Text "x") (Tuple.get row 1)

let test_update_with_expressions () =
  let _, s = fresh () in
  (match Db.exec s "UPDATE emp SET salary = salary + 10 WHERE dept = 'ops'" with
  | Db.Affected 2 -> ()
  | _ -> Alcotest.fail "two rows");
  let row = Db.query_one s "SELECT SUM(salary) FROM emp" in
  Alcotest.check check_val "sum grew by 20" (Value.Int 460) (Tuple.get row 0)

let test_between_count_distinct () =
  let _, s = fresh () in
  Alcotest.(check int) "between" 3
    (List.length (Db.query s "SELECT * FROM emp WHERE salary BETWEEN 80 AND 100"));
  Alcotest.(check int) "not between" 2
    (List.length (Db.query s "SELECT * FROM emp WHERE salary NOT BETWEEN 80 AND 100"));
  let row = Db.query_one s "SELECT COUNT(DISTINCT dept), COUNT(DISTINCT salary) FROM emp" in
  Alcotest.check check_val "distinct depts" (Value.Int 3) (Tuple.get row 0);
  Alcotest.check check_val "distinct salaries" (Value.Int 4) (Tuple.get row 1);
  (* grouped COUNT(DISTINCT) *)
  let rows =
    Db.query s
      "SELECT dept, COUNT(DISTINCT salary) FROM emp GROUP BY dept ORDER BY dept"
  in
  Alcotest.(check (list int)) "per group" [ 2; 1; 1 ]
    (List.map (fun r -> Value.to_int (Tuple.get r 1)) rows)

let test_union () =
  let _, s = fresh () in
  let rows =
    Db.query s
      "SELECT dept FROM emp WHERE salary > 100 UNION SELECT dept FROM emp        WHERE dept = 'ops' ORDER BY dept"
  in
  Alcotest.(check (list string)) "union dedupes" [ "eng"; "ops" ] (col0_texts rows);
  let rows =
    Db.query s
      "SELECT dept FROM emp WHERE dept = 'ops' UNION ALL SELECT dept FROM emp        WHERE dept = 'ops'"
  in
  Alcotest.(check int) "union all keeps duplicates" 4 (List.length rows);
  (* trailing LIMIT applies to the whole union *)
  let rows =
    Db.query s "SELECT id FROM emp UNION ALL SELECT id FROM emp ORDER BY id LIMIT 3"
  in
  Alcotest.(check (list int)) "union order/limit" [ 1; 1; 2 ] (col0_ints rows);
  (* arity mismatch is rejected *)
  match Db.exec s "SELECT id, name FROM emp UNION SELECT id FROM emp" with
  | exception Errors.Sql_error _ -> ()
  | _ -> Alcotest.fail "arity mismatch should fail"

let test_scalar_subqueries () =
  let _, s = fresh () in
  (* uncorrelated scalar subquery in WHERE *)
  let rows =
    Db.query s
      "SELECT name FROM emp WHERE salary = (SELECT MAX(salary) FROM emp)"
  in
  Alcotest.(check (list string)) "max earner" [ "ada" ] (col0_texts rows);
  (* in the projection *)
  let row =
    Db.query_one s "SELECT salary - (SELECT AVG(salary) FROM emp) FROM emp WHERE id = 1"
  in
  Alcotest.check check_val "delta from mean" (Value.Float 32.0) (Tuple.get row 0);
  (* EXISTS *)
  Alcotest.(check int) "exists true" 5
    (List.length (Db.query s "SELECT * FROM emp WHERE EXISTS (SELECT * FROM dept)"));
  Alcotest.(check int) "exists false" 0
    (List.length
       (Db.query s
          "SELECT * FROM emp WHERE EXISTS (SELECT * FROM dept WHERE budget > 9999)"));
  (* empty scalar subquery yields NULL, and NULL comparisons drop rows *)
  Alcotest.(check int) "null subquery" 0
    (List.length
       (Db.query s
          "SELECT * FROM emp WHERE salary = (SELECT budget FROM dept WHERE            dname = 'nope')"));
  (* multi-row scalar subquery is an error *)
  match Db.exec s "SELECT * FROM emp WHERE salary = (SELECT salary FROM emp)" with
  | exception Errors.Sql_error _ -> ()
  | _ -> Alcotest.fail "multi-row scalar subquery must fail"

let test_insert_select () =
  let db = Db.create ~ifc:false () in
  let s = Db.connect_admin db in
  ignore (Db.exec s "CREATE TABLE src (a INT, b TEXT)");
  ignore (Db.exec s "CREATE TABLE dst (a INT, b TEXT)");
  ignore (Db.exec s "INSERT INTO src VALUES (1, 'x'), (2, 'y'), (3, 'z')");
  (match Db.exec s "INSERT INTO dst SELECT a * 10, b FROM src WHERE a > 1" with
  | Db.Affected 2 -> ()
  | _ -> Alcotest.fail "insert..select count");
  Alcotest.(check (list int)) "copied" [ 20; 30 ]
    (List.sort Int.compare (col0_ints (Db.query s "SELECT a FROM dst")))

let test_range_scan_matches_full () =
  let db = Db.create ~ifc:false () in
  let s = Db.connect_admin db in
  ignore (Db.exec s "CREATE TABLE r (g INT, k INT, v INT, PRIMARY KEY (g, k))");
  for i = 0 to 299 do
    ignore
      (Db.exec s (Printf.sprintf "INSERT INTO r VALUES (%d, %d, %d)" (i mod 3) i (i * 2)))
  done;
  (* range on the component after the eq prefix uses the pk index; the
     +0 variant defeats index selection entirely *)
  let a = Db.query s "SELECT k FROM r WHERE g = 1 AND k >= 100 AND k < 200 ORDER BY k" in
  let b =
    Db.query s "SELECT k FROM r WHERE g + 0 = 1 AND k >= 100 AND k < 200 ORDER BY k"
  in
  Alcotest.(check (list int)) "range = full" (col0_ints b) (col0_ints a);
  Alcotest.(check bool) "nonempty" true (List.length a > 10)

let test_index_scan_matches_full_scan () =
  (* build a bigger table and compare indexed vs non-indexed access *)
  let db = Db.create ~ifc:false () in
  let s = Db.connect_admin db in
  ignore (Db.exec s "CREATE TABLE big (k INT PRIMARY KEY, grp INT, v INT)");
  for i = 1 to 500 do
    ignore
      (Db.exec s
         (Printf.sprintf "INSERT INTO big VALUES (%d, %d, %d)" i (i mod 7)
            (i * 3)))
  done;
  ignore (Db.exec s "CREATE INDEX big_grp ON big (grp, k)");
  (* equality on the pk uses the pk index; compare against predicate
     that defeats index selection *)
  let a = Db.query s "SELECT v FROM big WHERE k = 123" in
  let b = Db.query s "SELECT v FROM big WHERE k + 0 = 123" in
  Alcotest.(check (list int)) "pk probe" (col0_ints b) (col0_ints a);
  let a = Db.query s "SELECT k FROM big WHERE grp = 3 ORDER BY k" in
  let b = Db.query s "SELECT k FROM big WHERE grp + 0 = 3 ORDER BY k" in
  Alcotest.(check (list int)) "secondary index" (col0_ints b) (col0_ints a);
  Alcotest.(check int) "nonempty" ((500 / 7) + 1) (List.length a)

let test_index_scan_sees_updates () =
  let db = Db.create ~ifc:false () in
  let s = Db.connect_admin db in
  ignore (Db.exec s "CREATE TABLE t (k INT PRIMARY KEY, v INT)");
  ignore (Db.exec s "INSERT INTO t VALUES (1, 10)");
  ignore (Db.exec s "UPDATE t SET v = 20 WHERE k = 1");
  let row = Db.query_one s "SELECT v FROM t WHERE k = 1" in
  Alcotest.check check_val "index sees new version only" (Value.Int 20)
    (Tuple.get row 0);
  Alcotest.(check int) "one row" 1
    (List.length (Db.query s "SELECT * FROM t WHERE k = 1"));
  ignore (Db.exec s "DELETE FROM t WHERE k = 1");
  Alcotest.(check int) "deleted" 0 (List.length (Db.query s "SELECT * FROM t WHERE k = 1"))

let test_unique_across_updates () =
  let db = Db.create ~ifc:false () in
  let s = Db.connect_admin db in
  ignore (Db.exec s "CREATE TABLE t (k INT PRIMARY KEY, v INT)");
  ignore (Db.exec s "INSERT INTO t VALUES (1, 10), (2, 20)");
  (* updating a row to its own key is fine *)
  ignore (Db.exec s "UPDATE t SET v = 11 WHERE k = 1");
  (* inserting a deleted key is fine *)
  ignore (Db.exec s "DELETE FROM t WHERE k = 2");
  ignore (Db.exec s "INSERT INTO t VALUES (2, 21)");
  (* but a live duplicate is not *)
  match Db.exec s "INSERT INTO t VALUES (1, 99)" with
  | exception Errors.Constraint_violation _ -> ()
  | _ -> Alcotest.fail "duplicate pk"

let test_multi_statement_script () =
  let db = Db.create ~ifc:false () in
  let s = Db.connect_admin db in
  let results =
    Db.exec_script s
      "CREATE TABLE t (a INT); BEGIN; INSERT INTO t VALUES (1); INSERT INTO t \
       VALUES (2); COMMIT; SELECT COUNT(*) FROM t"
  in
  match List.rev results with
  | Db.Rows { tuples = [ row ]; _ } :: _ ->
      Alcotest.check check_val "script result" (Value.Int 2) (Tuple.get row 0)
  | _ -> Alcotest.fail "script shape"

let test_sql_errors_surface () =
  let db = Db.create ~ifc:false () in
  let s = Db.connect_admin db in
  let expect_sql_error text =
    match Db.exec s text with
    | exception Errors.Sql_error _ -> ()
    | _ -> Alcotest.failf "expected Sql_error for %s" text
  in
  expect_sql_error "SELECT * FROM missing";
  expect_sql_error "SELECT nocolumn FROM missing";
  expect_sql_error "FROB 1";
  ignore (Db.exec s "CREATE TABLE t (a INT)");
  ignore (Db.exec s "INSERT INTO t VALUES (1)");
  expect_sql_error "SELECT nocol FROM t";
  expect_sql_error "INSERT INTO t (nocol) VALUES (1)";
  (* function resolution happens at evaluation, so a row must exist *)
  expect_sql_error "SELECT unknown_fn(a) FROM t";
  expect_sql_error "COMMIT" (* no open transaction *)

(* Property: hash join equals nested-loop join.  We defeat the equi
   extraction by wrapping one side in an arithmetic identity. *)
let join_equivalence_prop =
  let gen =
    QCheck.Gen.(
      pair
        (list_size (int_bound 30) (pair (int_range 0 5) (int_range 0 50)))
        (list_size (int_bound 30) (pair (int_range 0 5) (int_range 0 50))))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40 ~name:"hash join = nested loop join"
       (QCheck.make gen) (fun (l, r) ->
         let db = Db.create ~ifc:false () in
         let s = Db.connect_admin db in
         ignore (Db.exec s "CREATE TABLE l (k INT, v INT)");
         ignore (Db.exec s "CREATE TABLE r (k INT, v INT)");
         List.iter
           (fun (k, v) ->
             ignore (Db.exec s (Printf.sprintf "INSERT INTO l VALUES (%d, %d)" k v)))
           l;
         List.iter
           (fun (k, v) ->
             ignore (Db.exec s (Printf.sprintf "INSERT INTO r VALUES (%d, %d)" k v)))
           r;
         let q1 =
           Db.query s
             "SELECT l.v, r.v FROM l JOIN r ON l.k = r.k ORDER BY l.v, r.v"
         in
         let q2 =
           Db.query s
             "SELECT l.v, r.v FROM l JOIN r ON l.k + 0 = r.k ORDER BY l.v, r.v"
         in
         List.map Tuple.values q1 = List.map Tuple.values q2))

let suites =
  [
    ( "query.select",
      [
        Alcotest.test_case "where/order/limit" `Quick test_select_where_order_limit;
        Alcotest.test_case "projection expressions" `Quick test_projection_expressions;
        Alcotest.test_case "star & qualified star" `Quick
          test_select_star_and_qualified_star;
        Alcotest.test_case "predicates" `Quick test_in_like_null_predicates;
        Alcotest.test_case "scalar functions" `Quick test_scalar_functions;
        Alcotest.test_case "FROM-less select" `Quick test_select_without_from;
      ] );
    ( "query.joins",
      [
        Alcotest.test_case "inner join" `Quick test_inner_join;
        Alcotest.test_case "left join" `Quick test_left_join;
        Alcotest.test_case "self join" `Quick test_self_join;
        Alcotest.test_case "comma join" `Quick test_comma_join_where;
        join_equivalence_prop;
      ] );
    ( "query.aggregates",
      [
        Alcotest.test_case "global aggregates" `Quick test_aggregates_global;
        Alcotest.test_case "empty input" `Quick test_aggregates_empty_input;
        Alcotest.test_case "group by / having" `Quick test_group_by_having;
        Alcotest.test_case "expression keys" `Quick test_group_by_expression_key;
        Alcotest.test_case "distinct" `Quick test_distinct;
        Alcotest.test_case "subquery in FROM" `Quick test_subquery_in_from;
      ] );
    ( "query.dml",
      [
        Alcotest.test_case "update with expressions" `Quick test_update_with_expressions;
        Alcotest.test_case "unique across updates" `Quick test_unique_across_updates;
        Alcotest.test_case "multi-statement script" `Quick test_multi_statement_script;
        Alcotest.test_case "errors surface" `Quick test_sql_errors_surface;
      ] );
    ( "query.indexes",
      [
        Alcotest.test_case "index scan = full scan" `Quick
          test_index_scan_matches_full_scan;
        Alcotest.test_case "range scan = full scan" `Quick
          test_range_scan_matches_full;
        Alcotest.test_case "index sees updates" `Quick test_index_scan_sees_updates;
      ] );
    ( "query.extensions",
      [
        Alcotest.test_case "BETWEEN & COUNT(DISTINCT)" `Quick
          test_between_count_distinct;
        Alcotest.test_case "UNION / UNION ALL" `Quick test_union;
        Alcotest.test_case "INSERT ... SELECT" `Quick test_insert_select;
        Alcotest.test_case "scalar subqueries & EXISTS" `Quick
          test_scalar_subqueries;
      ] );
  ]

(* Edge-case coverage: FK re-checks on UPDATE, updates under
   polyinstantiation, trigger kinds, label-operation corner semantics,
   DDL drops, script error handling. *)

module Db = Ifdb_core.Database
module Errors = Ifdb_core.Errors
module Label = Ifdb_difc.Label
module Value = Ifdb_rel.Value
module Tuple = Ifdb_rel.Tuple

let base () =
  let db = Db.create () in
  let admin = Db.connect_admin db in
  (db, admin)

(* ------------------------------------------------------------------ *)
(* Foreign keys on UPDATE                                              *)
(* ------------------------------------------------------------------ *)

let test_update_rechecks_fk () =
  let _, s = base () in
  ignore (Db.exec s "CREATE TABLE p (id INT PRIMARY KEY)");
  ignore
    (Db.exec s
       "CREATE TABLE c (id INT PRIMARY KEY, pid INT, FOREIGN KEY (pid) \
        REFERENCES p (id))");
  ignore (Db.exec s "INSERT INTO p VALUES (1), (2)");
  ignore (Db.exec s "INSERT INTO c VALUES (10, 1)");
  (match Db.exec s "UPDATE c SET pid = 2 WHERE id = 10" with
  | Db.Affected 1 -> ()
  | _ -> Alcotest.fail "valid retarget");
  (match Db.exec s "UPDATE c SET pid = 99 WHERE id = 10" with
  | exception Errors.Constraint_violation _ -> ()
  | _ -> Alcotest.fail "dangling retarget must fail");
  (* NULLing the FK is allowed (SQL semantics) *)
  match Db.exec s "UPDATE c SET pid = NULL WHERE id = 10" with
  | Db.Affected 1 -> ()
  | _ -> Alcotest.fail "NULL fk allowed"

(* ------------------------------------------------------------------ *)
(* Updates under polyinstantiation                                     *)
(* ------------------------------------------------------------------ *)

let test_update_polyinstantiated_rows () =
  let db, admin = base () in
  let u = Db.create_principal admin ~name:"u" in
  let us = Db.connect db ~principal:u in
  let tag = Db.create_tag us ~name:"t" () in
  ignore (Db.exec admin "CREATE TABLE t (k INT PRIMARY KEY, v TEXT)");
  (* the high row goes in first; the low writer cannot see it, so its
     conflicting insert polyinstantiates (paper section 5.2.1 — the
     reverse order would be a visible conflict and correctly fail) *)
  Db.add_secrecy us tag;
  ignore (Db.exec us "INSERT INTO t VALUES (1, 'high')");
  ignore (Db.exec admin "INSERT INTO t VALUES (1, 'low')");
  (* the low session updates only its own instance *)
  (match Db.exec admin "UPDATE t SET v = 'low2' WHERE k = 1" with
  | Db.Affected 1 -> ()
  | _ -> Alcotest.fail "low updates exactly one");
  (* the high session's write-rule-exact target is the high instance *)
  (match
     Db.exec us "UPDATE t SET v = 'high2' WHERE k = 1 AND _label = {t}"
   with
  | Db.Affected 1 -> ()
  | _ -> Alcotest.fail "high updates its own instance");
  let texts s =
    List.sort String.compare
      (List.map
         (fun r -> Value.to_text (Tuple.get r 1))
         (Db.query s "SELECT * FROM t WHERE k = 1"))
  in
  Alcotest.(check (list string)) "low sees its row" [ "low2" ] (texts admin);
  Alcotest.(check (list string)) "high sees both, each updated" [ "high2"; "low2" ]
    (texts us)

(* ------------------------------------------------------------------ *)
(* Trigger kinds                                                       *)
(* ------------------------------------------------------------------ *)

let test_trigger_update_delete_kinds () =
  let _, admin = base () in
  ignore (Db.exec admin "CREATE TABLE t (a INT)");
  let events = ref [] in
  Db.create_trigger admin ~name:"audit" ~table:"t"
    ~kinds:[ `Insert; `Update; `Delete ] (fun _s ev ->
      let tagged k = events := k :: !events in
      (match ev.Db.ev_kind with
      | `Insert ->
          Alcotest.(check bool) "insert has new only" true
            (ev.Db.ev_new <> None && ev.Db.ev_old = None);
          tagged "i"
      | `Update ->
          Alcotest.(check bool) "update has both" true
            (ev.Db.ev_new <> None && ev.Db.ev_old <> None);
          tagged "u"
      | `Delete ->
          Alcotest.(check bool) "delete has old only" true
            (ev.Db.ev_new = None && ev.Db.ev_old <> None);
          tagged "d"));
  ignore (Db.exec admin "INSERT INTO t VALUES (1)");
  ignore (Db.exec admin "UPDATE t SET a = 2");
  ignore (Db.exec admin "DELETE FROM t");
  Alcotest.(check (list string)) "all kinds fired" [ "d"; "u"; "i" ] !events;
  (* dropping the trigger silences it *)
  Db.drop_trigger (Db.database admin) "audit";
  ignore (Db.exec admin "INSERT INTO t VALUES (3)");
  Alcotest.(check int) "no more events" 3 (List.length !events)

(* ------------------------------------------------------------------ *)
(* Label-operation corners                                             *)
(* ------------------------------------------------------------------ *)

let test_set_label_checks_removals () =
  let db, admin = base () in
  let a = Db.create_principal admin ~name:"a" in
  let sa = Db.connect db ~principal:a in
  let own = Db.create_tag sa ~name:"own" () in
  let b = Db.create_principal admin ~name:"b" in
  let sb = Db.connect db ~principal:b in
  let foreign = Db.create_tag sb ~name:"foreign" () in
  Db.add_secrecy sa own;
  Db.add_secrecy sa foreign;
  (* jumping to {own} means dropping foreign: denied *)
  (match Db.set_label sa (Label.singleton own) with
  | exception Errors.Authority_required _ -> ()
  | exception Ifdb_difc.Authority.Denied _ -> ()
  | () -> Alcotest.fail "set_label must check removals");
  (* jumping to {own, foreign, more} (pure raise) is fine *)
  Db.set_label sa (Label.of_list [ own; foreign ]);
  Alcotest.(check int) "label intact" 2 (Label.cardinal (Db.session_label sa))

let test_with_label_restores () =
  let db, admin = base () in
  let a = Db.create_principal admin ~name:"a" in
  let sa = Db.connect db ~principal:a in
  let t1 = Db.create_tag sa ~name:"w1" () in
  let result =
    Db.with_label sa (Label.singleton t1) (fun () ->
        Alcotest.(check bool) "raised inside" true
          (Label.mem t1 (Db.session_label sa));
        17)
  in
  Alcotest.(check int) "value through" 17 result;
  Alcotest.(check bool) "restored" true (Label.is_empty (Db.session_label sa));
  (* on exceptions the label only ever grows (no sneaky declassify) *)
  (match
     Db.with_label sa (Label.singleton t1) (fun () -> failwith "boom")
   with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception must propagate");
  Alcotest.(check bool) "kept contaminated on error path" true
    (Label.mem t1 (Db.session_label sa))

(* ------------------------------------------------------------------ *)
(* DDL drops and script errors                                         *)
(* ------------------------------------------------------------------ *)

let test_drop_semantics () =
  let _, s = base () in
  ignore (Db.exec s "CREATE TABLE t (a INT)");
  ignore (Db.exec s "CREATE VIEW v AS SELECT a FROM t");
  ignore (Db.exec s "CREATE INDEX i ON t (a)");
  ignore (Db.exec s "DROP INDEX i");
  ignore (Db.exec s "DROP VIEW v");
  ignore (Db.exec s "DROP TABLE t");
  (match Db.exec s "DROP TABLE t" with
  | exception Errors.Sql_error _ -> ()
  | _ -> Alcotest.fail "double drop fails");
  (* names are freed *)
  ignore (Db.exec s "CREATE TABLE t (a INT)");
  (match Db.exec s "CREATE TABLE t (a INT)" with
  | exception Errors.Sql_error _ -> ()
  | _ -> Alcotest.fail "duplicate relation fails");
  match Db.exec s "SELECT * FROM v" with
  | exception Errors.Sql_error _ -> ()
  | _ -> Alcotest.fail "dropped view unusable"

let test_script_error_aborts_explicit_txn () =
  let _, s = base () in
  ignore (Db.exec s "CREATE TABLE t (a INT PRIMARY KEY)");
  (match
     Db.exec_script s
       "BEGIN; INSERT INTO t VALUES (1); INSERT INTO t VALUES (1); COMMIT"
   with
  | exception Errors.Constraint_violation _ -> ()
  | _ -> Alcotest.fail "duplicate insert must fail");
  (* the failed statement aborted the whole transaction *)
  Alcotest.(check int) "nothing committed" 0
    (List.length (Db.query s "SELECT * FROM t"));
  (* and the session is usable again *)
  ignore (Db.exec s "INSERT INTO t VALUES (2)");
  Alcotest.(check int) "fresh insert lands" 1
    (List.length (Db.query s "SELECT * FROM t"))

let test_float_int_widening () =
  let _, s = base () in
  ignore (Db.exec s "CREATE TABLE m (f FLOAT, i INT)");
  ignore (Db.exec s "INSERT INTO m VALUES (3, 4)");
  let row = Db.query_one s "SELECT f + 0.5, i FROM m" in
  Alcotest.(check (float 0.001)) "int widened in float column" 3.5
    (Value.to_float (Tuple.get row 0));
  match Db.exec s "INSERT INTO m VALUES (1.0, 2.5)" with
  | exception Errors.Constraint_violation _ -> ()
  | _ -> Alcotest.fail "float into INT column must fail"

let test_pk_update_via_index () =
  let _, s = base () in
  ignore (Db.exec s "CREATE TABLE t (k INT PRIMARY KEY, v TEXT)");
  ignore (Db.exec s "INSERT INTO t VALUES (1, 'a'), (2, 'b')");
  (match Db.exec s "UPDATE t SET k = k + 100 WHERE k = 1" with
  | Db.Affected 1 -> ()
  | _ -> Alcotest.fail "pk update");
  (* index probes find the row under the new key and not the old one *)
  Alcotest.(check int) "new key" 1
    (List.length (Db.query s "SELECT * FROM t WHERE k = 101"));
  Alcotest.(check int) "old key gone" 0
    (List.length (Db.query s "SELECT * FROM t WHERE k = 1"));
  (* and the freed key is reusable *)
  ignore (Db.exec s "INSERT INTO t VALUES (1, 'again')");
  Alcotest.(check int) "reused" 1
    (List.length (Db.query s "SELECT * FROM t WHERE k = 1"))

let test_nested_declassifying_views () =
  let db, admin = base () in
  let owner = Db.create_principal admin ~name:"owner" in
  let os = Db.connect db ~principal:owner in
  let inner_tag = Db.create_tag os ~name:"inner_t" () in
  let outer_tag = Db.create_tag os ~name:"outer_t" () in
  ignore (Db.exec admin "CREATE TABLE secrets (a INT, b INT)");
  (* a row carrying both tags *)
  Db.add_secrecy os inner_tag;
  Db.add_secrecy os outer_tag;
  ignore (Db.exec os "INSERT INTO secrets VALUES (1, 2)");
  Db.declassify os inner_tag;
  Db.declassify os outer_tag;
  (* V1 declassifies inner_t; V2 on top declassifies outer_t: reading
     V2 with an empty label must reach the doubly-protected row *)
  ignore
    (Db.exec os
       "CREATE VIEW V1 AS SELECT a, b FROM secrets WITH DECLASSIFYING (inner_t)");
  ignore (Db.exec os "CREATE VIEW V2 AS SELECT a FROM V1 WITH DECLASSIFYING (outer_t)");
  let stranger = Db.create_principal admin ~name:"stranger" in
  let ss = Db.connect db ~principal:stranger in
  Alcotest.(check int) "base hidden" 0
    (List.length (Db.query ss "SELECT * FROM secrets"));
  Alcotest.(check int) "inner view alone insufficient" 0
    (List.length (Db.query ss "SELECT * FROM V1"));
  let rows = Db.query ss "SELECT * FROM V2" in
  Alcotest.(check int) "nested views fully declassify" 1 (List.length rows);
  List.iter
    (fun row ->
      Alcotest.(check bool) "public result" true
        (Label.is_empty (Tuple.label row)))
    rows

let suites =
  [
    ( "edge.constraints",
      [
        Alcotest.test_case "UPDATE re-checks FKs" `Quick test_update_rechecks_fk;
        Alcotest.test_case "updates under polyinstantiation" `Quick
          test_update_polyinstantiated_rows;
        Alcotest.test_case "float/int column typing" `Quick test_float_int_widening;
        Alcotest.test_case "pk update via index" `Quick test_pk_update_via_index;
      ] );
    ( "edge.views",
      [ Alcotest.test_case "nested declassifying views" `Quick
          test_nested_declassifying_views ] );
    ( "edge.triggers",
      [ Alcotest.test_case "update/delete kinds & drop" `Quick
          test_trigger_update_delete_kinds ] );
    ( "edge.labels",
      [
        Alcotest.test_case "set_label checks removals" `Quick
          test_set_label_checks_removals;
        Alcotest.test_case "with_label restore" `Quick test_with_label_restores;
      ] );
    ( "edge.ddl",
      [
        Alcotest.test_case "drop semantics" `Quick test_drop_semantics;
        Alcotest.test_case "script errors abort txn" `Quick
          test_script_error_aborts_explicit_txn;
      ] );
  ]

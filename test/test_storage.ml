(* Tests for the storage layer: pages, buffer pool, MVCC heap, B+tree,
   WAL. *)

open Ifdb_storage
module Value = Ifdb_rel.Value
module Tuple = Ifdb_rel.Tuple
module Label = Ifdb_difc.Label
module Tag = Ifdb_difc.Tag

(* ------------------------------------------------------------------ *)
(* Page                                                                *)
(* ------------------------------------------------------------------ *)

let test_page_geometry () =
  Alcotest.(check int) "8k pages" 8192 Page.size;
  Alcotest.(check int) "usable" (8192 - 24) Page.usable;
  (* the paper's 89-byte Order_Line tuples: 87 per page with the
     4-byte line pointer *)
  Alcotest.(check int) "89-byte tuples" ((8192 - 24) / 93)
    (Page.tuples_per_page ~tuple_bytes:89);
  Alcotest.(check int) "huge tuple still fits one" 1
    (Page.tuples_per_page ~tuple_bytes:100_000);
  Alcotest.(check bool) "fits empty" true (Page.fits ~used:0 ~tuple_bytes:100);
  Alcotest.(check bool) "does not fit" false
    (Page.fits ~used:Page.usable ~tuple_bytes:1)

let test_page_label_cost () =
  (* Each tag shrinks tuples-per-page: the Fig. 6 disk mechanism. *)
  let base = Page.tuples_per_page ~tuple_bytes:89 in
  let with_10_tags = Page.tuples_per_page ~tuple_bytes:(89 + 40) in
  Alcotest.(check bool) "fewer tuples per page with labels" true
    (with_10_tags < base)

(* ------------------------------------------------------------------ *)
(* Buffer pool                                                         *)
(* ------------------------------------------------------------------ *)

let test_pool_unbounded () =
  let bp = Buffer_pool.create () in
  let pages = List.init 100 (fun _ -> Buffer_pool.alloc_page bp) in
  List.iter (Buffer_pool.touch bp) pages;
  List.iter (Buffer_pool.touch bp) pages;
  let s = Buffer_pool.stats bp in
  Alcotest.(check int) "no misses" 0 s.misses;
  Alcotest.(check int) "all hits" 200 s.hits;
  Alcotest.(check int) "no io" 0 s.io_ns

let test_pool_lru_eviction () =
  let bp =
    Buffer_pool.create ~capacity_pages:(Some 2) ~miss_cost_ns:100 ~write_cost_ns:10 ()
  in
  let p0 = Buffer_pool.alloc_page bp in
  let p1 = Buffer_pool.alloc_page bp in
  let p2 = Buffer_pool.alloc_page bp in
  (* p0 was LRU and has been evicted *)
  Alcotest.(check int) "resident bounded" 2 (Buffer_pool.resident bp);
  Buffer_pool.touch bp p2;
  Buffer_pool.touch bp p1;
  let before = (Buffer_pool.stats bp).misses in
  Buffer_pool.touch bp p0;
  let s = Buffer_pool.stats bp in
  Alcotest.(check int) "miss on evicted page" (before + 1) s.misses;
  Alcotest.(check bool) "io charged" true (s.io_ns >= 100)

let test_pool_lru_order () =
  let bp = Buffer_pool.create ~capacity_pages:(Some 2) () in
  let p0 = Buffer_pool.alloc_page bp in
  let p1 = Buffer_pool.alloc_page bp in
  Buffer_pool.touch bp p0;           (* p1 is now LRU *)
  let _p2 = Buffer_pool.alloc_page bp in (* evicts p1 *)
  Buffer_pool.reset_stats bp;
  Buffer_pool.touch bp p0;
  Alcotest.(check int) "p0 still resident" 0 (Buffer_pool.stats bp).misses;
  Buffer_pool.touch bp p1;
  Alcotest.(check int) "p1 was evicted" 1 (Buffer_pool.stats bp).misses

let test_pool_dirty_writeback () =
  let bp =
    Buffer_pool.create ~capacity_pages:(Some 1) ~miss_cost_ns:0 ~write_cost_ns:77 ()
  in
  let p0 = Buffer_pool.alloc_page bp in
  Buffer_pool.dirty bp p0;
  let _p1 = Buffer_pool.alloc_page bp in (* evicts dirty p0: one write *)
  let s = Buffer_pool.stats bp in
  Alcotest.(check int) "write on dirty eviction" 1 s.page_writes;
  Alcotest.(check int) "write cost charged" 77 s.io_ns

let test_pool_flush_all () =
  let bp = Buffer_pool.create ~write_cost_ns:5 () in
  let p0 = Buffer_pool.alloc_page bp in
  let p1 = Buffer_pool.alloc_page bp in
  Buffer_pool.dirty bp p0;
  Buffer_pool.dirty bp p1;
  Buffer_pool.flush_all bp;
  Alcotest.(check int) "two writes" 2 (Buffer_pool.stats bp).page_writes;
  Buffer_pool.flush_all bp;
  Alcotest.(check int) "idempotent" 2 (Buffer_pool.stats bp).page_writes

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let tuple ?(label = Label.empty) vs = Tuple.make ~values:(Array.of_list vs) ~label

let test_heap_insert_get () =
  let bp = Buffer_pool.create () in
  let h = Heap.create ~name:"t" ~labeled:true ~pool:bp () in
  let v = Heap.insert h ~xmin:1 (tuple [ Value.Int 42 ]) in
  Alcotest.(check int) "vid 0" 0 v.Heap.vid;
  Alcotest.(check int) "xmin" 1 v.Heap.xmin;
  Alcotest.(check int) "xmax 0" 0 v.Heap.xmax;
  let v' = Heap.get h 0 in
  Alcotest.(check bool) "same tuple" true (Tuple.equal v.Heap.tuple v'.Heap.tuple);
  Alcotest.(check bool) "get_opt none" true (Heap.get_opt h 99 = None);
  (match Heap.get h 99 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument")

let test_heap_xmax () =
  let bp = Buffer_pool.create () in
  let h = Heap.create ~name:"t" ~labeled:true ~pool:bp () in
  let v = Heap.insert h ~xmin:1 (tuple [ Value.Int 1 ]) in
  Heap.set_xmax h ~vid:v.Heap.vid ~xid:5;
  Alcotest.(check int) "xmax set" 5 (Heap.get h 0).Heap.xmax;
  Heap.clear_xmax h ~vid:v.Heap.vid ~xid:6;
  Alcotest.(check int) "clear wrong xid no-op" 5 (Heap.get h 0).Heap.xmax;
  Heap.clear_xmax h ~vid:v.Heap.vid ~xid:5;
  Alcotest.(check int) "cleared" 0 (Heap.get h 0).Heap.xmax

let test_heap_page_packing () =
  (* identical data, labeled vs unlabeled: labels must consume pages *)
  let count = 2000 in
  let label = Label.of_ints [| 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 |] in
  let mk labeled =
    let bp = Buffer_pool.create () in
    let h = Heap.create ~name:"t" ~labeled ~pool:bp () in
    for i = 1 to count do
      ignore (Heap.insert h ~xmin:1 (tuple ~label [ Value.Int i; Value.Text "xxxxxxxxxx" ]))
    done;
    Heap.page_count h
  in
  let labeled_pages = mk true and unlabeled_pages = mk false in
  Alcotest.(check bool)
    (Printf.sprintf "labeled (%d) > unlabeled (%d) pages" labeled_pages unlabeled_pages)
    true (labeled_pages > unlabeled_pages)

let test_heap_iter_vacuum () =
  let bp = Buffer_pool.create () in
  let h = Heap.create ~name:"t" ~labeled:true ~pool:bp () in
  for i = 0 to 9 do
    ignore (Heap.insert h ~xmin:1 (tuple [ Value.Int i ]))
  done;
  let seen = ref [] in
  Heap.iter h (fun v -> seen := Value.to_int (Tuple.get v.Heap.tuple 0) :: !seen);
  Alcotest.(check (list int)) "iter in order" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !seen);
  Alcotest.(check int) "count" 10 (Heap.version_count h);
  let removed =
    Heap.vacuum h ~dead:(fun v -> Value.to_int (Tuple.get v.Heap.tuple 0) mod 2 = 0)
  in
  Alcotest.(check int) "removed" 5 removed;
  Alcotest.(check int) "count after" 5 (Heap.version_count h);
  Alcotest.(check bool) "dead slot gone" true (Heap.get_opt h 0 = None);
  Alcotest.(check bool) "live slot stays" true (Heap.get_opt h 1 <> None)

(* ------------------------------------------------------------------ *)
(* B+tree                                                              *)
(* ------------------------------------------------------------------ *)

let k1 i = [| Value.Int i |]
let k2 i s = [| Value.Int i; Value.Text s |]

let test_btree_basic () =
  let bt = Btree.create ~order:4 () in
  for i = 1 to 100 do
    Btree.insert bt (k1 i) (i * 10)
  done;
  Alcotest.(check (list int)) "find" [ 420 ] (Btree.find bt (k1 42));
  Alcotest.(check (list int)) "absent" [] (Btree.find bt (k1 0));
  Alcotest.(check int) "entries" 100 (Btree.entry_count bt);
  Alcotest.(check bool) "deep" true (Btree.depth bt > 1);
  (match Btree.check_invariants bt with
  | Ok () -> ()
  | Error e -> Alcotest.fail e)

let test_btree_duplicates () =
  let bt = Btree.create () in
  Btree.insert bt (k1 7) 1;
  Btree.insert bt (k1 7) 2;
  Btree.insert bt (k1 7) 2;
  (* duplicate posting ignored *)
  Alcotest.(check int) "entries" 2 (Btree.entry_count bt);
  Alcotest.(check (list int)) "both" [ 1; 2 ]
    (List.sort Int.compare (Btree.find bt (k1 7)));
  Btree.remove bt (k1 7) 1;
  Alcotest.(check (list int)) "one left" [ 2 ] (Btree.find bt (k1 7));
  Btree.remove bt (k1 7) 2;
  Alcotest.(check (list int)) "empty" [] (Btree.find bt (k1 7));
  Btree.remove bt (k1 7) 3 (* no-op on absent *)

let test_btree_range () =
  let bt = Btree.create ~order:4 () in
  List.iter (fun i -> Btree.insert bt (k1 i) i) [ 5; 1; 9; 3; 7; 2; 8; 4; 6 ];
  let collect lo hi =
    let acc = ref [] in
    Btree.iter_range bt ~lo ~hi (fun _ vid -> acc := vid :: !acc);
    List.rev !acc
  in
  Alcotest.(check (list int)) "incl-incl" [ 3; 4; 5; 6 ]
    (collect (Btree.Incl (k1 3)) (Btree.Incl (k1 6)));
  Alcotest.(check (list int)) "excl-excl" [ 4; 5 ]
    (collect (Btree.Excl (k1 3)) (Btree.Excl (k1 6)));
  Alcotest.(check (list int)) "unbounded lo" [ 1; 2; 3 ]
    (collect Btree.Unbounded (Btree.Incl (k1 3)));
  Alcotest.(check (list int)) "unbounded hi" [ 8; 9 ]
    (collect (Btree.Incl (k1 8)) Btree.Unbounded);
  Alcotest.(check (list int)) "all" [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (collect Btree.Unbounded Btree.Unbounded)

let test_btree_prefix () =
  let bt = Btree.create ~order:4 () in
  let put i s vid = Btree.insert bt (k2 i s) vid in
  put 1 "a" 10;
  put 1 "b" 11;
  put 2 "a" 20;
  put 2 "c" 21;
  put 3 "z" 30;
  let collect prefix =
    let acc = ref [] in
    Btree.iter_prefix bt ~prefix (fun _ vid -> acc := vid :: !acc);
    List.rev !acc
  in
  Alcotest.(check (list int)) "prefix 2" [ 20; 21 ] (collect [| Value.Int 2 |]);
  Alcotest.(check (list int)) "prefix 1" [ 10; 11 ] (collect [| Value.Int 1 |]);
  Alcotest.(check (list int)) "prefix absent" [] (collect [| Value.Int 9 |]);
  Alcotest.(check (list int)) "full-key prefix" [ 21 ] (collect (k2 2 "c"));
  Alcotest.(check (list int)) "empty prefix = all" [ 10; 11; 20; 21; 30 ] (collect [||])

let test_btree_prefix_range () =
  let bt = Btree.create ~order:4 () in
  for g = 0 to 2 do
    for k = 0 to 19 do
      Btree.insert bt (k2 g (Printf.sprintf "%02d" k)) ((g * 100) + k)
    done
  done;
  let collect ~lo ~hi =
    let acc = ref [] in
    Btree.iter_prefix_range bt ~prefix:[| Value.Int 1 |] ~lo ~hi (fun _ vid ->
        acc := vid :: !acc);
    List.rev !acc
  in
  Alcotest.(check (list int)) "lo incl"
    [ 117; 118; 119 ]
    (collect ~lo:(Some (Value.Text "17", true)) ~hi:None);
  Alcotest.(check (list int)) "lo excl"
    [ 118; 119 ]
    (collect ~lo:(Some (Value.Text "17", false)) ~hi:None);
  Alcotest.(check (list int)) "window"
    [ 105; 106; 107 ]
    (collect ~lo:(Some (Value.Text "05", true)) ~hi:(Some (Value.Text "08", false)));
  Alcotest.(check int) "no bounds = prefix" 20 (List.length (collect ~lo:None ~hi:None));
  Alcotest.(check (list int)) "empty window" []
    (collect ~lo:(Some (Value.Text "30", true)) ~hi:None)

(* property: iter_prefix_range agrees with filtering iter_all *)
let btree_range_model_prop =
  let gen =
    QCheck.Gen.(
      triple
        (list_size (int_bound 300) (pair (int_range 0 4) (int_range 0 30)))
        (pair (int_range 0 4) (option (pair (int_range 0 30) bool)))
        (option (pair (int_range 0 30) bool)))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:120 ~name:"prefix-range scan matches filtered scan"
       (QCheck.make gen) (fun (entries, (prefix_g, lo), hi) ->
         let bt = Btree.create ~order:4 () in
         List.iteri
           (fun i (g, k) -> Btree.insert bt [| Value.Int g; Value.Int k |] i)
           entries;
         let lo = Option.map (fun (v, incl) -> (Value.Int v, incl)) lo in
         let hi = Option.map (fun (v, incl) -> (Value.Int v, incl)) hi in
         let got = ref [] in
         Btree.iter_prefix_range bt ~prefix:[| Value.Int prefix_g |] ~lo ~hi
           (fun _ vid -> got := vid :: !got);
         let want = ref [] in
         Btree.iter_all bt (fun key vid ->
             let g = Value.to_int key.(0) and k = Value.to_int key.(1) in
             let lo_ok =
               match lo with
               | None -> true
               | Some (v, incl) ->
                   let c = Value.compare (Value.Int k) v in
                   if incl then c >= 0 else c > 0
             in
             let hi_ok =
               match hi with
               | None -> true
               | Some (v, incl) ->
                   let c = Value.compare (Value.Int k) v in
                   if incl then c <= 0 else c < 0
             in
             if g = prefix_g && lo_ok && hi_ok then want := vid :: !want);
         List.sort Int.compare !got = List.sort Int.compare !want))

(* Model-based property test: random inserts/removes against a
   reference association table. *)
let btree_model_prop =
  let op_gen =
    QCheck.Gen.(
      list_size (int_bound 400)
        (pair (int_bound 2) (pair (int_range 0 40) (int_range 0 5))))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"btree matches model under random ops"
       (QCheck.make op_gen) (fun ops ->
         let bt = Btree.create ~order:4 () in
         let model : (int, int list) Hashtbl.t = Hashtbl.create 64 in
         List.iter
           (fun (op, (key, vid)) ->
             let cur = Option.value ~default:[] (Hashtbl.find_opt model key) in
             if op = 0 || op = 1 then begin
               Btree.insert bt (k1 key) vid;
               if not (List.mem vid cur) then Hashtbl.replace model key (vid :: cur)
             end
             else begin
               Btree.remove bt (k1 key) vid;
               Hashtbl.replace model key (List.filter (fun v -> v <> vid) cur)
             end)
           ops;
         (* full equivalence of contents *)
         let ok = ref (Btree.check_invariants bt = Ok ()) in
         Hashtbl.iter
           (fun key vids ->
             let got = List.sort Int.compare (Btree.find bt (k1 key)) in
             let want = List.sort Int.compare vids in
             if got <> want then ok := false)
           model;
         (* and the in-order scan is sorted *)
         let last = ref min_int in
         Btree.iter_all bt (fun k _ ->
             let i = Value.to_int k.(0) in
             if i < !last then ok := false;
             last := i);
         !ok))

let btree_bulk_invariant_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:20 ~name:"btree invariants after bulk load"
       (QCheck.make QCheck.Gen.(list_size (int_bound 2000) (int_range 0 10_000)))
       (fun keys ->
         let bt = Btree.create ~order:8 () in
         List.iteri (fun i k -> Btree.insert bt (k1 k) i) keys;
         Btree.check_invariants bt = Ok ()))

(* Full tree contents including postings order (iter emits postings
   oldest-first via the List.rev in the leaf walk). *)
let tree_contents bt =
  let acc = ref [] in
  Btree.iter_all bt (fun k vid -> acc := (Value.to_int k.(0), vid) :: !acc);
  List.rev !acc

let test_btree_insert_many_basic () =
  (* a run big enough to force multi-splits and root growth at order 4,
     with duplicate keys and duplicate postings *)
  let run =
    List.concat_map (fun i -> [ (i mod 97, i); (i mod 97, i); (42, i) ])
      (List.init 500 Fun.id)
  in
  let seq = Btree.create ~order:4 () and blk = Btree.create ~order:4 () in
  List.iter (fun (k, v) -> Btree.insert seq (k1 k) v) run;
  Btree.insert_many blk (List.map (fun (k, v) -> (k1 k, v)) run);
  (match Btree.check_invariants blk with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "same entry count" (Btree.entry_count seq)
    (Btree.entry_count blk);
  Alcotest.(check bool) "identical contents and postings order" true
    (tree_contents seq = tree_contents blk);
  Alcotest.(check bool) "bulk tree is deep" true (Btree.depth blk > 1);
  (* bulk load into a non-empty tree *)
  Btree.insert_many blk [ (k1 1000, 1); (k1 7, 999) ];
  Btree.insert seq (k1 1000) 1;
  Btree.insert seq (k1 7) 999;
  Alcotest.(check bool) "incremental bulk load matches" true
    (tree_contents seq = tree_contents blk);
  Btree.insert_many blk [];
  Alcotest.(check int) "empty run is a no-op" (Btree.entry_count seq)
    (Btree.entry_count blk)

let btree_insert_many_equiv_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100
       ~name:"insert_many = sequential inserts (contents & order)"
       (QCheck.make
          QCheck.Gen.(
            pair
              (list_size (int_bound 120) (pair (int_bound 40) (int_bound 15)))
              (list_size (int_bound 400) (pair (int_bound 40) (int_bound 15)))))
       (fun (seed, run) ->
         let a = Btree.create ~order:8 () and b = Btree.create ~order:8 () in
         List.iter
           (fun (k, v) ->
             Btree.insert a (k1 k) v;
             Btree.insert b (k1 k) v)
           seed;
         List.iter (fun (k, v) -> Btree.insert a (k1 k) v) run;
         Btree.insert_many b (List.map (fun (k, v) -> (k1 k, v)) run);
         Btree.check_invariants b = Ok ()
         && Btree.entry_count a = Btree.entry_count b
         && tree_contents a = tree_contents b))

(* ------------------------------------------------------------------ *)
(* WAL                                                                 *)
(* ------------------------------------------------------------------ *)

let test_wal_accounting () =
  let w = Wal.create ~fsync_cost_ns:1000 () in
  Wal.append w (Wal.Begin 1);
  Wal.append w (Wal.Insert ("t", 0, 50));
  Wal.append w (Wal.Commit 1);
  Wal.fsync w;
  let s = Wal.stats w in
  Alcotest.(check int) "records" 3 s.Wal.records;
  Alcotest.(check int) "bytes" (16 + 74 + 16) s.Wal.bytes;
  Alcotest.(check int) "fsyncs" 1 s.Wal.fsyncs;
  Alcotest.(check int) "io" 1000 s.Wal.io_ns;
  Alcotest.(check int) "recent" 3 (List.length (Wal.recent w 10));
  Wal.reset_stats w;
  Alcotest.(check int) "reset" 0 (Wal.stats w).Wal.records

let test_wal_bounded_memory () =
  let w = Wal.create () in
  for i = 1 to 100_000 do
    Wal.append w (Wal.Begin i)
  done;
  Alcotest.(check int) "all counted" 100_000 (Wal.stats w).Wal.records;
  Alcotest.(check bool) "recent bounded" true (List.length (Wal.recent w 10_000) <= 1024)

let test_wal_batch_append () =
  let records =
    [ Wal.Begin 1; Wal.Insert ("t", 0, 50); Wal.Insert ("t", 1, 10); Wal.Commit 1 ]
  in
  let w = Wal.create ~fsync_cost_ns:1000 () in
  Wal.append_batch w records;
  let s = Wal.stats w in
  Alcotest.(check int) "records" 4 s.Wal.records;
  Alcotest.(check int) "bytes" (16 + (24 + 50) + (24 + 10) + 16) s.Wal.bytes;
  Alcotest.(check int) "no fsync from append" 0 s.Wal.fsyncs;
  (* byte-for-byte identical accounting to per-record appends *)
  let w2 = Wal.create ~fsync_cost_ns:1000 () in
  List.iter (Wal.append w2) records;
  Alcotest.(check bool) "same stats as sequential" true (Wal.stats w2 = s);
  (* recent is newest first, batch order preserved *)
  (match Wal.recent w 2 with
  | [ Wal.Commit 1; Wal.Insert ("t", 1, 10) ] -> ()
  | _ -> Alcotest.fail "recent should return the batch tail newest first");
  Alcotest.(check int) "empty batch is a no-op" 4
    (Wal.append_batch w [];
     (Wal.stats w).Wal.records)

let suites =
  [
    ( "storage.page",
      [
        Alcotest.test_case "geometry" `Quick test_page_geometry;
        Alcotest.test_case "label cost" `Quick test_page_label_cost;
      ] );
    ( "storage.pool",
      [
        Alcotest.test_case "unbounded" `Quick test_pool_unbounded;
        Alcotest.test_case "lru eviction" `Quick test_pool_lru_eviction;
        Alcotest.test_case "lru order" `Quick test_pool_lru_order;
        Alcotest.test_case "dirty writeback" `Quick test_pool_dirty_writeback;
        Alcotest.test_case "flush_all" `Quick test_pool_flush_all;
      ] );
    ( "storage.heap",
      [
        Alcotest.test_case "insert/get" `Quick test_heap_insert_get;
        Alcotest.test_case "xmax stamps" `Quick test_heap_xmax;
        Alcotest.test_case "label bytes consume pages" `Quick test_heap_page_packing;
        Alcotest.test_case "iter & vacuum" `Quick test_heap_iter_vacuum;
      ] );
    ( "storage.btree",
      [
        Alcotest.test_case "basic" `Quick test_btree_basic;
        Alcotest.test_case "duplicates & remove" `Quick test_btree_duplicates;
        Alcotest.test_case "range scans" `Quick test_btree_range;
        Alcotest.test_case "prefix scans" `Quick test_btree_prefix;
        Alcotest.test_case "prefix-range scans" `Quick test_btree_prefix_range;
        btree_range_model_prop;
        btree_model_prop;
        btree_bulk_invariant_prop;
        Alcotest.test_case "sorted bulk load" `Quick test_btree_insert_many_basic;
        btree_insert_many_equiv_prop;
      ] );
    ( "storage.wal",
      [
        Alcotest.test_case "accounting" `Quick test_wal_accounting;
        Alcotest.test_case "bounded memory" `Quick test_wal_bounded_memory;
        Alcotest.test_case "batched append" `Quick test_wal_batch_append;
      ] );
  ]

(* Tests for the DIFC substrate: labels, tags, principals, authority. *)

open Ifdb_difc

let tag i = Tag.of_int i
let lbl ints = Label.of_ints (Array.of_list ints)

let check_label = Alcotest.testable Label.pp Label.equal

(* ------------------------------------------------------------------ *)
(* Label unit tests                                                    *)
(* ------------------------------------------------------------------ *)

let test_label_empty () =
  Alcotest.(check bool) "empty is empty" true (Label.is_empty Label.empty);
  Alcotest.(check int) "cardinal" 0 (Label.cardinal Label.empty);
  Alcotest.(check bool) "mem" false (Label.mem (tag 1) Label.empty)

let test_label_of_list_dedup () =
  let l = Label.of_list [ tag 3; tag 1; tag 3; tag 2; tag 1 ] in
  Alcotest.(check int) "cardinal" 3 (Label.cardinal l);
  Alcotest.(check (list int)) "sorted ints" [ 1; 2; 3 ]
    (Array.to_list (Label.to_ints l))

let test_label_add_remove () =
  let l = lbl [ 1; 3 ] in
  Alcotest.check check_label "add middle" (lbl [ 1; 2; 3 ]) (Label.add (tag 2) l);
  Alcotest.check check_label "add existing" l (Label.add (tag 3) l);
  Alcotest.check check_label "remove" (lbl [ 1 ]) (Label.remove (tag 3) l);
  Alcotest.check check_label "remove absent" l (Label.remove (tag 9) l);
  Alcotest.check check_label "add front" (lbl [ 1; 2; 5 ]) (Label.add (tag 1) (lbl [ 2; 5 ]));
  Alcotest.check check_label "add back" (lbl [ 2; 5; 9 ]) (Label.add (tag 9) (lbl [ 2; 5 ]))

let test_label_set_ops () =
  let a = lbl [ 1; 2; 3 ] and b = lbl [ 2; 3; 4 ] in
  Alcotest.check check_label "union" (lbl [ 1; 2; 3; 4 ]) (Label.union a b);
  Alcotest.check check_label "inter" (lbl [ 2; 3 ]) (Label.inter a b);
  Alcotest.check check_label "diff" (lbl [ 1 ]) (Label.diff a b);
  Alcotest.check check_label "symm_diff" (lbl [ 1; 4 ]) (Label.symm_diff a b)

let test_label_subset () =
  Alcotest.(check bool) "empty sub any" true (Label.subset Label.empty (lbl [ 1 ]));
  Alcotest.(check bool) "refl" true (Label.subset (lbl [ 1; 2 ]) (lbl [ 1; 2 ]));
  Alcotest.(check bool) "proper" true (Label.subset (lbl [ 2 ]) (lbl [ 1; 2; 3 ]));
  Alcotest.(check bool) "not subset" false (Label.subset (lbl [ 1; 4 ]) (lbl [ 1; 2; 3 ]));
  Alcotest.(check bool) "bigger not subset" false
    (Label.subset (lbl [ 1; 2; 3 ]) (lbl [ 1; 2 ]))

let test_label_covers_compounds () =
  (* tag 1 is a member of compound 10 *)
  let compounds_of t = if Tag.to_int t = 1 then [ tag 10 ] else [] in
  Alcotest.(check bool) "direct" true
    (Label.covers ~compounds_of (lbl [ 1 ]) (tag 1));
  Alcotest.(check bool) "via compound" true
    (Label.covers ~compounds_of (lbl [ 10 ]) (tag 1));
  Alcotest.(check bool) "not covered" false
    (Label.covers ~compounds_of (lbl [ 10 ]) (tag 2));
  (* flows: {1} flows to {10}, but {2} does not *)
  Alcotest.(check bool) "flows via compound" true
    (Label.flows_to ~compounds_of (lbl [ 1 ]) (lbl [ 10 ]));
  Alcotest.(check bool) "no flow" false
    (Label.flows_to ~compounds_of (lbl [ 2 ]) (lbl [ 10 ]))

let test_label_byte_size () =
  Alcotest.(check int) "4 bytes per tag" 12 (Label.byte_size (lbl [ 1; 2; 3 ]));
  Alcotest.(check int) "empty is free" 0 (Label.byte_size Label.empty)

let test_label_pp () =
  Alcotest.(check string) "pp" "{#1, #2}" (Label.to_string (lbl [ 2; 1 ]))

(* The monomorphic equal/compare/hash specializations: pin their
   semantics so the int-array loops cannot drift from the old
   structural behaviour where it matters (equality, total order,
   hash/equal agreement). *)

let test_label_equal_semantics () =
  Alcotest.(check bool) "physical fast path" true
    (let l = lbl [ 1; 2; 3 ] in
     Label.equal l l);
  Alcotest.(check bool) "structural equality" true
    (Label.equal (lbl [ 1; 2; 3 ]) (lbl [ 1; 2; 3 ]));
  Alcotest.(check bool) "length mismatch" false
    (Label.equal (lbl [ 1; 2 ]) (lbl [ 1; 2; 3 ]));
  Alcotest.(check bool) "element mismatch" false
    (Label.equal (lbl [ 1; 2; 4 ]) (lbl [ 1; 2; 3 ]));
  Alcotest.(check bool) "empty vs empty" true (Label.equal (lbl []) Label.empty)

let test_label_compare_semantics () =
  let sign x = Stdlib.compare x 0 in
  (* lexicographic over sorted tag ids: element-wise first, length only
     breaks ties on a shared prefix *)
  Alcotest.(check int) "equal" 0 (Label.compare (lbl [ 1; 2 ]) (lbl [ 1; 2 ]));
  Alcotest.(check int) "element-wise before length" (-1)
    (sign (Label.compare (lbl [ 1; 2 ]) (lbl [ 3 ])));
  Alcotest.(check int) "prefix sorts first" (-1)
    (sign (Label.compare (lbl [ 1 ]) (lbl [ 1; 2 ])));
  Alcotest.(check int) "empty first" (-1)
    (sign (Label.compare Label.empty (lbl [ 1 ])));
  Alcotest.(check int) "antisymmetric" 1
    (sign (Label.compare (lbl [ 3 ]) (lbl [ 1; 2 ])))

let test_label_hash_semantics () =
  Alcotest.(check int) "hash agrees with equal"
    (Label.hash (Label.of_list [ tag 3; tag 1; tag 2; tag 1 ]))
    (Label.hash (lbl [ 1; 2; 3 ]));
  Alcotest.(check bool) "hash is non-negative (usable as Hashtbl key)" true
    (Label.hash (lbl [ max_int; 1 ]) >= 0 && Label.hash Label.empty >= 0)

(* ------------------------------------------------------------------ *)
(* Label property tests                                                *)
(* ------------------------------------------------------------------ *)

let label_gen =
  QCheck.Gen.(map (fun l -> Label.of_ints (Array.of_list l))
                (list_size (int_bound 8) (int_range 1 20)))

let arb_label =
  QCheck.make ~print:Label.to_string label_gen

let arb_label2 = QCheck.pair arb_label arb_label
let arb_label3 = QCheck.triple arb_label arb_label arb_label

let prop name arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:500 ~name arb f)

let label_props =
  [
    prop "union commutative" arb_label2 (fun (a, b) ->
        Label.equal (Label.union a b) (Label.union b a));
    prop "union associative" arb_label3 (fun (a, b, c) ->
        Label.equal (Label.union a (Label.union b c)) (Label.union (Label.union a b) c));
    prop "union idempotent" arb_label (fun a -> Label.equal (Label.union a a) a);
    prop "inter commutative" arb_label2 (fun (a, b) ->
        Label.equal (Label.inter a b) (Label.inter b a));
    prop "a subset union" arb_label2 (fun (a, b) -> Label.subset a (Label.union a b));
    prop "inter subset a" arb_label2 (fun (a, b) -> Label.subset (Label.inter a b) a);
    prop "diff disjoint from b" arb_label2 (fun (a, b) ->
        Label.is_empty (Label.inter (Label.diff a b) b));
    prop "symm_diff = union minus inter" arb_label2 (fun (a, b) ->
        Label.equal (Label.symm_diff a b) (Label.diff (Label.union a b) (Label.inter a b)));
    prop "subset antisym" arb_label2 (fun (a, b) ->
        (not (Label.subset a b && Label.subset b a)) || Label.equal a b);
    prop "subset trans via union" arb_label3 (fun (a, b, c) ->
        Label.subset a (Label.union (Label.union a b) c));
    prop "to_ints sorted strict" arb_label (fun a ->
        let ints = Label.to_ints a in
        let ok = ref true in
        for i = 1 to Array.length ints - 1 do
          if ints.(i - 1) >= ints.(i) then ok := false
        done;
        !ok);
    prop "of_ints/to_ints roundtrip" arb_label (fun a ->
        Label.equal a (Label.of_ints (Label.to_ints a)));
    prop "add then mem" (QCheck.pair arb_label (QCheck.int_range 1 30))
      (fun (a, i) -> Label.mem (tag i) (Label.add (tag i) a));
    prop "remove then not mem" (QCheck.pair arb_label (QCheck.int_range 1 30))
      (fun (a, i) -> not (Label.mem (tag i) (Label.remove (tag i) a)));
    prop "flows_to with no compounds = subset" arb_label2 (fun (a, b) ->
        Label.flows_to ~compounds_of:(fun _ -> []) a b = Label.subset a b);
    prop "compare zero iff equal" arb_label2 (fun (a, b) ->
        (Label.compare a b = 0) = Label.equal a b);
    prop "compare antisymmetric" arb_label2 (fun (a, b) ->
        Stdlib.compare (Label.compare a b) 0
        = - (Stdlib.compare (Label.compare b a) 0));
    prop "compare transitive" arb_label3 (fun (a, b, c) ->
        let sorted = List.sort Label.compare [ a; b; c ] in
        match sorted with
        | [ x; _; z ] -> Label.compare x z <= 0
        | _ -> false);
    prop "equal implies same hash" arb_label2 (fun (a, b) ->
        (not (Label.equal a b)) || Label.hash a = Label.hash b);
    prop "model check vs IntSet" arb_label2 (fun (a, b) ->
        let module S = Set.Make (Int) in
        let s l = S.of_list (Array.to_list (Label.to_ints l)) in
        let eq l set = S.equal (s l) set in
        eq (Label.union a b) (S.union (s a) (s b))
        && eq (Label.inter a b) (S.inter (s a) (s b))
        && eq (Label.diff a b) (S.diff (s a) (s b))
        && Label.subset a b = S.subset (s a) (s b));
  ]

(* ------------------------------------------------------------------ *)
(* Idgen                                                               *)
(* ------------------------------------------------------------------ *)

let test_idgen_unique () =
  let g = Idgen.create ~seed:42 in
  let seen = Hashtbl.create 1024 in
  for _ = 1 to 10_000 do
    let id = Idgen.fresh g in
    Alcotest.(check bool) "positive" true (id > 0);
    Alcotest.(check bool) "unique" false (Hashtbl.mem seen id);
    Hashtbl.add seen id ()
  done

let test_idgen_deterministic () =
  let g1 = Idgen.create ~seed:7 and g2 = Idgen.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Idgen.fresh g1) (Idgen.fresh g2)
  done

let test_idgen_seed_sensitivity () =
  let g1 = Idgen.create ~seed:7 and g2 = Idgen.create ~seed:8 in
  Alcotest.(check bool) "different streams" false (Idgen.fresh g1 = Idgen.fresh g2)

(* ------------------------------------------------------------------ *)
(* Authority                                                           *)
(* ------------------------------------------------------------------ *)

let mk_auth () =
  let a = Authority.create () in
  let p name = Authority.create_principal a ~actor_label:Label.empty ~name in
  (a, p)

let test_authority_owner () =
  let a, p = mk_auth () in
  let alice = p "alice" and bob = p "bob" in
  let t =
    Authority.create_tag a ~actor_label:Label.empty ~owner:alice
      ~name:"alice_medical" ()
  in
  Alcotest.(check bool) "owner has authority" true (Authority.has_authority a alice t);
  Alcotest.(check bool) "other does not" false (Authority.has_authority a bob t);
  Alcotest.(check string) "name" "alice_medical" (Authority.tag_name a t);
  Alcotest.(check bool) "owner_of" true (Principal.equal alice (Authority.owner_of a t))

let test_authority_delegation () =
  let a, p = mk_auth () in
  let alice = p "alice" and doctor = p "doctor" and nurse = p "nurse" in
  let t =
    Authority.create_tag a ~actor_label:Label.empty ~owner:alice ~name:"t" ()
  in
  Authority.delegate a ~actor:alice ~actor_label:Label.empty ~tag:t ~grantee:doctor;
  Alcotest.(check bool) "delegated" true (Authority.has_authority a doctor t);
  (* chained delegation *)
  Authority.delegate a ~actor:doctor ~actor_label:Label.empty ~tag:t ~grantee:nurse;
  Alcotest.(check bool) "chain" true (Authority.has_authority a nurse t);
  (* revoking upstream kills downstream *)
  Authority.revoke a ~actor:alice ~actor_label:Label.empty ~tag:t ~grantee:doctor;
  Alcotest.(check bool) "doctor revoked" false (Authority.has_authority a doctor t);
  Alcotest.(check bool) "nurse transitively dead" false (Authority.has_authority a nurse t)

let test_authority_delegate_requires_authority () =
  let a, p = mk_auth () in
  let alice = p "alice" and eve = p "eve" and bob = p "bob" in
  let t = Authority.create_tag a ~actor_label:Label.empty ~owner:alice ~name:"t" () in
  Alcotest.check_raises "eve cannot delegate"
    (Authority.Denied
       (Printf.sprintf "principal %s (eve) lacks authority for tag %s (t)"
          (Format.asprintf "%a" Principal.pp eve)
          (Format.asprintf "%a" Tag.pp t)))
    (fun () ->
      Authority.delegate a ~actor:eve ~actor_label:Label.empty ~tag:t ~grantee:bob)

let test_authority_requires_empty_label () =
  let a, p = mk_auth () in
  let alice = p "alice" in
  let t = Authority.create_tag a ~actor_label:Label.empty ~owner:alice ~name:"t" () in
  let contaminated = Label.singleton t in
  let expect_not_public f =
    match f () with
    | exception Authority.Not_public _ -> ()
    | _ -> Alcotest.fail "expected Not_public"
  in
  expect_not_public (fun () ->
      Authority.create_principal a ~actor_label:contaminated ~name:"x");
  expect_not_public (fun () ->
      Authority.create_tag a ~actor_label:contaminated ~owner:alice ~name:"u" ());
  expect_not_public (fun () ->
      Authority.delegate a ~actor:alice ~actor_label:contaminated ~tag:t ~grantee:alice);
  expect_not_public (fun () ->
      Authority.revoke a ~actor:alice ~actor_label:contaminated ~tag:t ~grantee:alice)

let test_authority_compounds () =
  let a, p = mk_auth () in
  let sys = p "system" and alice = p "alice" and stats = p "stats" in
  let all_drives =
    Authority.create_tag a ~actor_label:Label.empty ~owner:sys ~name:"all_drives" ()
  in
  let alice_drives =
    Authority.create_tag a ~actor_label:Label.empty ~owner:alice
      ~name:"alice_drives" ~compounds:[ all_drives ] ()
  in
  (* authority over the compound confers authority over members *)
  Alcotest.(check bool) "sys over member" true
    (Authority.has_authority a sys alice_drives);
  Alcotest.(check bool) "alice over own tag" true
    (Authority.has_authority a alice alice_drives);
  Alcotest.(check bool) "alice not over compound" false
    (Authority.has_authority a alice all_drives);
  (* delegation of the compound confers member authority *)
  Authority.delegate a ~actor:sys ~actor_label:Label.empty ~tag:all_drives
    ~grantee:stats;
  Alcotest.(check bool) "delegated compound covers member" true
    (Authority.has_authority a stats alice_drives);
  (* flow: {alice_drives} flows to {all_drives} *)
  Alcotest.(check bool) "flows member->compound" true
    (Authority.flows a ~src:(Label.singleton alice_drives)
       ~dst:(Label.singleton all_drives));
  Alcotest.(check bool) "no reverse flow" false
    (Authority.flows a ~src:(Label.singleton all_drives)
       ~dst:(Label.singleton alice_drives));
  Alcotest.(check (list int)) "members_of"
    [ Tag.to_int alice_drives ]
    (List.map Tag.to_int (Authority.members_of a all_drives));
  Alcotest.(check (list int)) "compounds_of"
    [ Tag.to_int all_drives ]
    (List.map Tag.to_int (Authority.compounds_of a alice_drives))

let test_authority_nested_compounds () =
  let a, p = mk_auth () in
  let sys = p "system" in
  let top = Authority.create_tag a ~actor_label:Label.empty ~owner:sys ~name:"top" () in
  let mid =
    Authority.create_tag a ~actor_label:Label.empty ~owner:sys ~name:"mid"
      ~compounds:[ top ] ()
  in
  let alice = p "alice" in
  let leaf =
    Authority.create_tag a ~actor_label:Label.empty ~owner:alice ~name:"leaf"
      ~compounds:[ mid ] ()
  in
  let boss = p "boss" in
  Authority.delegate a ~actor:sys ~actor_label:Label.empty ~tag:top ~grantee:boss;
  Alcotest.(check bool) "authority via nested compound" true
    (Authority.has_authority a boss leaf);
  Alcotest.(check bool) "flow via nested compound" true
    (Authority.flows a ~src:(Label.singleton leaf) ~dst:(Label.singleton top))

let test_authority_revoke_only_own_grants () =
  let a, p = mk_auth () in
  let alice = p "alice" and doctor = p "doctor" and mallory = p "mallory" in
  let t = Authority.create_tag a ~actor_label:Label.empty ~owner:alice ~name:"t" () in
  Authority.delegate a ~actor:alice ~actor_label:Label.empty ~tag:t ~grantee:doctor;
  (* mallory revoking alice's grant is a no-op *)
  Authority.revoke a ~actor:mallory ~actor_label:Label.empty ~tag:t ~grantee:doctor;
  Alcotest.(check bool) "grant survives foreign revoke" true
    (Authority.has_authority a doctor t)

let test_authority_delegation_cycle () =
  let a, p = mk_auth () in
  let alice = p "alice" and b = p "b" and c = p "c" in
  let t = Authority.create_tag a ~actor_label:Label.empty ~owner:alice ~name:"t" () in
  Authority.delegate a ~actor:alice ~actor_label:Label.empty ~tag:t ~grantee:b;
  Authority.delegate a ~actor:b ~actor_label:Label.empty ~tag:t ~grantee:c;
  Authority.delegate a ~actor:c ~actor_label:Label.empty ~tag:t ~grantee:b;
  (* cycle b->c->b plus root alice->b: all still have authority, and
     the check terminates *)
  Alcotest.(check bool) "b" true (Authority.has_authority a b t);
  Alcotest.(check bool) "c" true (Authority.has_authority a c t);
  Authority.revoke a ~actor:alice ~actor_label:Label.empty ~tag:t ~grantee:b;
  (* with the root grant gone, the b<->c cycle confers nothing *)
  Alcotest.(check bool) "b dead" false (Authority.has_authority a b t);
  Alcotest.(check bool) "c dead" false (Authority.has_authority a c t)

let test_authority_label_queries () =
  let a, p = mk_auth () in
  let alice = p "alice" in
  let t1 = Authority.create_tag a ~actor_label:Label.empty ~owner:alice ~name:"t1" () in
  let bob = p "bob" in
  let t2 = Authority.create_tag a ~actor_label:Label.empty ~owner:bob ~name:"t2" () in
  Alcotest.(check bool) "label authority partial" false
    (Authority.has_authority_for_label a alice (Label.of_list [ t1; t2 ]));
  Authority.delegate a ~actor:bob ~actor_label:Label.empty ~tag:t2 ~grantee:alice;
  Alcotest.(check bool) "label authority full" true
    (Authority.has_authority_for_label a alice (Label.of_list [ t1; t2 ]))

let test_authority_lookup () =
  let a, p = mk_auth () in
  let alice = p "alice" in
  let t = Authority.create_tag a ~actor_label:Label.empty ~owner:alice ~name:"t" () in
  Alcotest.(check bool) "find_principal" true
    (Principal.equal alice (Authority.find_principal a "alice"));
  Alcotest.(check bool) "find_tag" true (Tag.equal t (Authority.find_tag a "t"));
  (match Authority.find_tag a "nope" with
  | exception Authority.Unknown _ -> ()
  | _ -> Alcotest.fail "expected Unknown");
  (match Authority.find_principal a "nope" with
  | exception Authority.Unknown _ -> ()
  | _ -> Alcotest.fail "expected Unknown")

let test_authority_generation () =
  let a, p = mk_auth () in
  let g0 = Authority.generation a in
  let alice = p "alice" in
  Alcotest.(check bool) "bumped by create_principal" true (Authority.generation a > g0);
  let g1 = Authority.generation a in
  let t = Authority.create_tag a ~actor_label:Label.empty ~owner:alice ~name:"t" () in
  Alcotest.(check bool) "bumped by create_tag" true (Authority.generation a > g1);
  let g2 = Authority.generation a in
  Authority.delegate a ~actor:alice ~actor_label:Label.empty ~tag:t ~grantee:alice;
  Alcotest.(check bool) "bumped by delegate" true (Authority.generation a > g2)

let test_id_unpredictability () =
  (* ids are not sequential: consecutive tags differ by more than 1 *)
  let a, p = mk_auth () in
  let alice = p "alice" in
  let t1 = Authority.create_tag a ~actor_label:Label.empty ~owner:alice ~name:"a" () in
  let t2 = Authority.create_tag a ~actor_label:Label.empty ~owner:alice ~name:"b" () in
  Alcotest.(check bool) "non-sequential ids" true
    (abs (Tag.to_int t2 - Tag.to_int t1) > 1)

let suites =
  [
    ( "difc.label",
      [
        Alcotest.test_case "empty" `Quick test_label_empty;
        Alcotest.test_case "of_list dedup" `Quick test_label_of_list_dedup;
        Alcotest.test_case "add/remove" `Quick test_label_add_remove;
        Alcotest.test_case "set ops" `Quick test_label_set_ops;
        Alcotest.test_case "subset" `Quick test_label_subset;
        Alcotest.test_case "covers/compounds" `Quick test_label_covers_compounds;
        Alcotest.test_case "byte size" `Quick test_label_byte_size;
        Alcotest.test_case "pp" `Quick test_label_pp;
        Alcotest.test_case "equal semantics" `Quick test_label_equal_semantics;
        Alcotest.test_case "compare semantics" `Quick test_label_compare_semantics;
        Alcotest.test_case "hash semantics" `Quick test_label_hash_semantics;
      ] );
    ("difc.label.props", label_props);
    ( "difc.idgen",
      [
        Alcotest.test_case "unique" `Quick test_idgen_unique;
        Alcotest.test_case "deterministic" `Quick test_idgen_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_idgen_seed_sensitivity;
      ] );
    ( "difc.authority",
      [
        Alcotest.test_case "ownership" `Quick test_authority_owner;
        Alcotest.test_case "delegation & transitive revoke" `Quick
          test_authority_delegation;
        Alcotest.test_case "delegate requires authority" `Quick
          test_authority_delegate_requires_authority;
        Alcotest.test_case "mutations need empty label" `Quick
          test_authority_requires_empty_label;
        Alcotest.test_case "compound tags" `Quick test_authority_compounds;
        Alcotest.test_case "nested compounds" `Quick test_authority_nested_compounds;
        Alcotest.test_case "revoke only own grants" `Quick
          test_authority_revoke_only_own_grants;
        Alcotest.test_case "delegation cycles terminate" `Quick
          test_authority_delegation_cycle;
        Alcotest.test_case "label-wide authority" `Quick test_authority_label_queries;
        Alcotest.test_case "lookup by name" `Quick test_authority_lookup;
        Alcotest.test_case "generation counter" `Quick test_authority_generation;
        Alcotest.test_case "unpredictable ids" `Quick test_id_unpredictability;
      ] );
  ]

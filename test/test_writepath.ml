(* The batched write path (PR 3): equivalence of [insert_many] with
   sequential inserts, label-grouped commit-label verdicts, and the
   security of the commit-label rule under group commit.

   [IFDB_TEST_PARALLELISM] overrides the domain count, matching
   test_parallel.ml: CI runs the suite at 1 and at a multi-domain
   setting. *)

module Db = Ifdb_core.Database
module Errors = Ifdb_core.Errors
module Label = Ifdb_difc.Label
module Label_store = Ifdb_difc.Label_store
module Value = Ifdb_rel.Value
module Tuple = Ifdb_rel.Tuple
module Catalog = Ifdb_engine.Catalog
module Btree = Ifdb_storage.Btree
module Domain_pool = Ifdb_engine.Domain_pool

let par_width =
  match Sys.getenv_opt "IFDB_TEST_PARALLELISM" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 4)
  | None -> 4

let row_key t =
  ( List.map Value.to_string (Array.to_list (Tuple.values t)),
    Label.to_string (Tuple.label t) )

(* ------------------------------------------------------------------ *)
(* insert_many = N sequential inserts                                  *)
(* ------------------------------------------------------------------ *)

(* One database with a primary key and a secondary index; rows land
   under the session's label, so a (pre, batch) scenario exercises
   polyinstantiation (same id, different label) as well as genuine
   unique conflicts (same id, same label). *)
let mk_db ~parallelism =
  let db = Db.create ~parallelism ~morsel_size:16 () in
  let admin = Db.connect_admin db in
  let owner = Db.create_principal admin ~name:"owner" in
  let os = Db.connect db ~principal:owner in
  let tag = Db.create_tag os ~name:"t" () in
  ignore (Db.exec admin "CREATE TABLE pts (id INT PRIMARY KEY, v INT)");
  ignore (Db.exec admin "CREATE INDEX pts_v ON pts (v)");
  (db, os, tag)

let visible_state db tag =
  let reader = Db.connect_admin db in
  Db.add_secrecy reader tag;
  let rows = Db.query reader "SELECT id, v FROM pts ORDER BY id, v" in
  List.map row_key rows

(* Physical index contents including vids — comparable across the two
   databases only when no transaction aborted (aborted sequential
   inserts leave dead versions the batch path never creates). *)
let index_contents db =
  match Catalog.find_table (Db.catalog db) "pts" with
  | None -> []
  | Some tbl ->
      List.map
        (fun idx ->
          let acc = ref [] in
          Catalog.iter_index_entries idx (fun k vid ->
              acc := (List.map Value.to_string (Array.to_list k), vid) :: !acc);
          (idx.Catalog.idx_name, List.rev !acc))
        tbl.Catalog.tbl_indexes

(* Visible index-served lookups: equal even across an abort, because
   dead versions are invisible on both sides. *)
let probe_indexes db tag =
  let reader = Db.connect_admin db in
  Db.add_secrecy reader tag;
  List.concat_map
    (fun id ->
      List.map row_key
        (Db.query reader
           (Printf.sprintf "SELECT id, v FROM pts WHERE id = %d ORDER BY v" id)))
    (List.init 13 Fun.id)
  @ List.concat_map
      (fun v ->
        List.map row_key
          (Db.query reader
             (Printf.sprintf "SELECT id, v FROM pts WHERE v = %d ORDER BY id" v)))
      (List.init 6 Fun.id)

let run_equivalence ~parallelism (pre, batch) =
  let db_a, sa, tag_a = mk_db ~parallelism in
  let db_b, sb, tag_b = mk_db ~parallelism in
  (* seed phase: public rows, one implicit transaction per row on both
     sides (identical heaps, dead versions included) *)
  List.iter
    (fun (id, v) ->
      let stmt = Printf.sprintf "INSERT INTO pts VALUES (%d, %d)" id v in
      (try ignore (Db.exec sa stmt) with Errors.Constraint_violation _ -> ());
      try ignore (Db.exec sb stmt) with Errors.Constraint_violation _ -> ())
    pre;
  (* batch phase under a raised label: insert_many vs N sequential
     inserts in one transaction *)
  Db.add_secrecy sa tag_a;
  Db.add_secrecy sb tag_b;
  let rows = List.map (fun (id, v) -> [| Value.Int id; Value.Int v |]) batch in
  let out_a =
    try Ok (Db.insert_many sa ~table:"pts" rows)
    with Errors.Constraint_violation _ -> Error `Constraint
  in
  let out_b =
    try
      ignore (Db.exec sb "BEGIN");
      List.iter
        (fun (id, v) ->
          ignore
            (Db.exec sb (Printf.sprintf "INSERT INTO pts VALUES (%d, %d)" id v)))
        batch;
      ignore (Db.exec sb "COMMIT");
      Ok (List.length batch)
    with Errors.Constraint_violation _ -> Error `Constraint
  in
  out_a = out_b
  && visible_state db_a tag_a = visible_state db_b tag_b
  && probe_indexes db_a tag_a = probe_indexes db_b tag_b
  && (out_a = Error `Constraint
     || index_contents db_a = index_contents db_b)

let equiv_prop ~parallelism =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40
       ~name:
         (Printf.sprintf "insert_many = sequential inserts (parallelism %d)"
            parallelism)
       (QCheck.make
          QCheck.Gen.(
            pair
              (list_size (int_bound 15) (pair (int_bound 12) (int_bound 5)))
              (list_size (int_bound 25) (pair (int_bound 12) (int_bound 5)))))
       (fun scenario -> run_equivalence ~parallelism scenario))

(* ------------------------------------------------------------------ *)
(* Label-grouped commit-label verdicts: O(K), not O(N)                 *)
(* ------------------------------------------------------------------ *)

let test_label_grouped_commit_check () =
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let owner = Db.create_principal admin ~name:"owner" in
  let s = Db.connect db ~principal:owner in
  let base = Db.create_tag s ~name:"base" () in
  let k = 4 and per_group = 50 in
  let tags =
    Array.init k (fun i -> Db.create_tag s ~name:(Printf.sprintf "g%d" i) ())
  in
  ignore (Db.exec admin "CREATE TABLE readings (id INT, val INT)");
  ignore (Db.exec s "BEGIN");
  Db.add_secrecy s base;
  let inserted = ref 0 in
  Array.iteri
    (fun gi tag ->
      (* each group's tuples carry {base, g<gi>}; the commit label ends
         at {base}, which flows to every one of them *)
      Db.add_secrecy s tag;
      let rows =
        List.init per_group (fun i ->
            [| Value.Int ((gi * per_group) + i); Value.Int i |])
      in
      inserted := !inserted + Db.insert_many s ~table:"readings" rows;
      Db.declassify s tag)
    tags;
  Alcotest.(check int) "all rows inserted" (k * per_group) !inserted;
  let store = Db.label_store db in
  Label_store.reset_stats store;
  ignore (Db.exec s "COMMIT");
  let st = Label_store.stats store in
  let probes = st.Label_store.flow_hits + st.Label_store.flow_misses in
  (* the write set holds k * per_group tuples under k distinct labels:
     the commit-label rule must cost K verdict lookups, not N.  The
     prepare-time commit-trap analysis dedups the write set the same
     way, so COMMIT costs 2K probes total (K analysis + K enforcement),
     still independent of per_group *)
  Alcotest.(check int) "O(K) flow-cache probes at commit" (2 * k) probes;
  let reader = Db.connect_admin db in
  Db.add_secrecy reader base;
  Array.iter (Db.add_secrecy reader) tags;
  Alcotest.(check int) "all committed rows visible" (k * per_group)
    (List.length (Db.query reader "SELECT id FROM readings"))

(* ------------------------------------------------------------------ *)
(* Security: the commit-label rule stays closed under group commit     *)
(* ------------------------------------------------------------------ *)

(* Each scenario transaction inserts a public row, then the odd ones
   raise their label so their commit label no longer flows to the
   written tuple — the rule must reject exactly those, whatever batch
   they are coalesced into. *)
let run_rule_scenario db tag n =
  let admin = Db.connect_admin db in
  let owner = Db.find_principal db "owner" in
  List.init n (fun i ->
      let s = Db.connect db ~principal:owner in
      ignore (Db.exec s "BEGIN");
      ignore (Db.exec s (Printf.sprintf "INSERT INTO t VALUES (%d)" i));
      if i mod 2 = 1 then Db.add_secrecy s tag;
      match Db.exec s "COMMIT" with
      | _ -> `Committed
      | exception Errors.Flow_violation _ -> `Rejected)
  |> fun outcomes ->
  Db.flush_wal db;
  let reader = Db.connect_admin db in
  Db.add_secrecy reader tag;
  let visible =
    List.map
      (fun t -> Value.to_int (Tuple.get t 0))
      (Db.query reader "SELECT a FROM t ORDER BY a")
  in
  ignore admin;
  (outcomes, visible)

let mk_rule_db ?(parallelism = 1) ?(commit_batch = 1) ?(sync_commit = false) ()
    =
  let db = Db.create ~parallelism ~commit_batch ~sync_commit () in
  let admin = Db.connect_admin db in
  let owner = Db.create_principal admin ~name:"owner" in
  let os = Db.connect db ~principal:owner in
  let tag = Db.create_tag os ~name:"secret" () in
  ignore (Db.exec admin "CREATE TABLE t (a INT)");
  (db, tag)

let test_commit_label_rule_coalesced () =
  let n = 8 in
  (* coalesced: one fsync may cover several commits *)
  let db_c, tag_c = mk_rule_db ~commit_batch:4 () in
  let outcomes_c, visible_c = run_rule_scenario db_c tag_c n in
  (* solo: the classic one-fsync-per-commit path *)
  let db_s, tag_s = mk_rule_db ~commit_batch:1 () in
  let outcomes_s, visible_s = run_rule_scenario db_s tag_s n in
  List.iteri
    (fun i o ->
      Alcotest.(check bool)
        (Printf.sprintf "txn %d outcome" i)
        true
        (o = if i mod 2 = 1 then `Rejected else `Committed))
    outcomes_c;
  (* no leakage through co-batching: every member's outcome is exactly
     its solo outcome *)
  Alcotest.(check bool) "outcomes = solo outcomes" true
    (outcomes_c = outcomes_s);
  Alcotest.(check (list int)) "only rule-abiding rows visible" [ 0; 2; 4; 6 ]
    visible_c;
  Alcotest.(check (list int)) "same visible set as solo" visible_s visible_c;
  (* and the batch really coalesced: 4 good commits shared one fsync *)
  let fsyncs = (Ifdb_storage.Wal.stats (Db.wal db_c)).Ifdb_storage.Wal.fsyncs in
  Alcotest.(check int) "good commits coalesced into one fsync" 1 fsyncs

let test_commit_label_rule_concurrent () =
  let width = max 2 par_width in
  let db, tag =
    mk_rule_db ~parallelism:width ~commit_batch:width ~sync_commit:true ()
  in
  let owner = Db.find_principal db "owner" in
  let n = 4 in
  let sessions =
    Array.init n (fun i ->
        let s = Db.connect db ~principal:owner in
        ignore (Db.exec s "BEGIN");
        ignore (Db.exec s (Printf.sprintf "INSERT INTO t VALUES (%d)" i));
        if i mod 2 = 1 then Db.add_secrecy s tag;
        s)
  in
  let outcomes = Array.make n `Pending in
  let pool = Domain_pool.get ~parallelism:width in
  (* commit all sessions concurrently through the leader/follower
     protocol; violations must be caught inside the task so one
     rejection cannot cancel a sibling's commit *)
  Domain_pool.parallel_for pool ~tasks:n (fun ~worker:_ i ->
      match Db.exec sessions.(i) "COMMIT" with
      | _ -> outcomes.(i) <- `Committed
      | exception Errors.Flow_violation _ -> outcomes.(i) <- `Rejected);
  Db.flush_wal db;
  Array.iteri
    (fun i o ->
      Alcotest.(check bool)
        (Printf.sprintf "concurrent txn %d outcome" i)
        true
        (o = if i mod 2 = 1 then `Rejected else `Committed))
    outcomes;
  let reader = Db.connect_admin db in
  Db.add_secrecy reader tag;
  let visible =
    List.map
      (fun t -> Value.to_int (Tuple.get t 0))
      (Db.query reader "SELECT a FROM t ORDER BY a")
  in
  Alcotest.(check (list int)) "only rule-abiding rows committed" [ 0; 2 ]
    visible

let suites =
  [
    ( "writepath.equivalence",
      [ equiv_prop ~parallelism:1; equiv_prop ~parallelism:par_width ] );
    ( "writepath.labels",
      [
        Alcotest.test_case "commit-label verdicts are label-grouped" `Quick
          test_label_grouped_commit_check;
      ] );
    ( "writepath.security",
      [
        Alcotest.test_case "commit-label rule under coalescing" `Quick
          test_commit_label_rule_coalesced;
        Alcotest.test_case "commit-label rule under concurrent commit" `Quick
          test_commit_label_rule_concurrent;
      ] );
  ]

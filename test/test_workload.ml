(* Tests for the workload generators: RNG/distributions, GPS traces,
   the CarTel web mix, TPC-C. *)

module Rng = Ifdb_workload.Rng
module Gps = Ifdb_workload.Gps
module Cweb = Ifdb_workload.Cartel_web
module Tpcc = Ifdb_workload.Tpcc
module Db = Ifdb_core.Database
module Value = Ifdb_rel.Value
module Tuple = Ifdb_rel.Tuple
module Label = Ifdb_difc.Label

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create ~seed:5 and b = Rng.create ~seed:5 in
  for _ = 1 to 50 do
    Alcotest.(check int) "same" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_ranges () =
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 1000 do
    let x = Rng.int_range rng 3 7 in
    Alcotest.(check bool) "in range" true (x >= 3 && x <= 7);
    let f = Rng.float rng 2.0 in
    Alcotest.(check bool) "float range" true (f >= 0.0 && f < 2.0)
  done

let test_rng_uniformity () =
  let rng = Rng.create ~seed:2 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let k = Rng.int rng 10 in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iter
    (fun c ->
      let f = float_of_int c /. float_of_int n in
      Alcotest.(check bool) "roughly uniform" true (f > 0.08 && f < 0.12))
    counts

let test_rng_weighted () =
  let rng = Rng.create ~seed:3 in
  let n = 50_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.weighted rng [ (0.9, `A); (0.1, `B) ] = `A then incr hits
  done;
  let f = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "90/10 split" true (f > 0.88 && f < 0.92)

let test_rng_exponential () =
  let rng = Rng.create ~seed:4 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.truncated_exponential rng ~mean:7.0 ~max:70.0 in
    Alcotest.(check bool) "truncated" true (x >= 0.0 && x <= 70.0);
    sum := !sum +. x
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.2f near 7" mean)
    true
    (mean > 6.0 && mean < 8.0)

let test_rng_nurand_last_name () =
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 1000 do
    let x = Rng.nurand rng ~a:8191 ~c:7911 0 99_999 in
    Alcotest.(check bool) "nurand in range" true (x >= 0 && x <= 99_999)
  done;
  Alcotest.(check string) "name 0" "BARBARBAR" (Rng.last_name 0);
  Alcotest.(check string) "name 371" "PRICALLYOUGHT" (Rng.last_name 371);
  Alcotest.(check string) "name 999" "EINGEINGEING" (Rng.last_name 999)

(* ------------------------------------------------------------------ *)
(* GPS                                                                 *)
(* ------------------------------------------------------------------ *)

let test_gps_shape () =
  let rng = Rng.create ~seed:6 in
  let cfg = { Gps.cars = 3; drives_per_car = 2; points_per_drive = 10; start_ts = 0 } in
  let points = Gps.generate rng cfg in
  Alcotest.(check int) "point count" 60 (List.length points);
  (* per-car timestamps strictly increase and drives are separated by
     the gap *)
  let by_car = Hashtbl.create 4 in
  List.iter
    (fun p ->
      let prev = Hashtbl.find_opt by_car p.Gps.car_id in
      (match prev with
      | Some last_ts -> Alcotest.(check bool) "monotone ts" true (p.Gps.ts > last_ts)
      | None -> ());
      Hashtbl.replace by_car p.Gps.car_id p.Gps.ts)
    points;
  (* count gaps per car: drives_per_car - 1 big gaps *)
  let gaps = ref 0 in
  let last = Hashtbl.create 4 in
  List.iter
    (fun p ->
      (match Hashtbl.find_opt last p.Gps.car_id with
      | Some ts when p.Gps.ts - ts > Gps.drive_gap_s -> incr gaps
      | _ -> ());
      Hashtbl.replace last p.Gps.car_id p.Gps.ts)
    points;
  Alcotest.(check int) "drive boundaries" 3 !gaps

(* ------------------------------------------------------------------ *)
(* CarTel web mix                                                      *)
(* ------------------------------------------------------------------ *)

let test_fig3_mix () =
  let rng = Rng.create ~seed:7 in
  let mix = Cweb.empirical_mix rng ~samples:200_000 in
  List.iter
    (fun (spec_f, req) ->
      let got = List.assoc req mix in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %.3f ~ %.3f" (Cweb.path req) got spec_f)
        true
        (Float.abs (got -. spec_f) < 0.01))
    Cweb.request_mix

let test_sessions () =
  let rng = Rng.create ~seed:8 in
  for _ = 1 to 100 do
    let s = Cweb.generate_session rng ~users:50 in
    Alcotest.(check bool) "user in range" true (s.Cweb.user >= 0 && s.Cweb.user < 50);
    Alcotest.(check bool) "nonempty" true (List.length s.Cweb.requests >= 1)
  done

(* ------------------------------------------------------------------ *)
(* TPC-C                                                               *)
(* ------------------------------------------------------------------ *)

let tpcc_fixture ~ifc =
  let db = Db.create ~ifc () in
  let s = Db.connect_admin db in
  let rng = Rng.create ~seed:11 in
  Tpcc.create_schema s;
  Tpcc.populate s rng Tpcc.tiny;
  (db, s, rng)

let test_tpcc_population () =
  let _, s, _ = tpcc_fixture ~ifc:false in
  let count q = Value.to_int (Tuple.get (Db.query_one s q) 0) in
  Alcotest.(check int) "warehouses" 1 (count "SELECT COUNT(*) FROM warehouse");
  Alcotest.(check int) "districts" 2 (count "SELECT COUNT(*) FROM district");
  Alcotest.(check int) "customers" 16 (count "SELECT COUNT(*) FROM customer");
  Alcotest.(check int) "items" 20 (count "SELECT COUNT(*) FROM item");
  Alcotest.(check int) "stock" 20 (count "SELECT COUNT(*) FROM stock");
  Alcotest.(check int) "orders" 16 (count "SELECT COUNT(*) FROM orders");
  Alcotest.(check bool) "order lines populated" true
    (count "SELECT COUNT(*) FROM order_line" >= 16 * 5)

let test_tpcc_mix_and_consistency () =
  let _, s, rng = tpcc_fixture ~ifc:false in
  let counts = Tpcc.run_mix s rng Tpcc.tiny ~txns:300 in
  let total =
    counts.Tpcc.new_orders + counts.Tpcc.payments + counts.Tpcc.order_statuses
    + counts.Tpcc.deliveries + counts.Tpcc.stock_levels + counts.Tpcc.rollbacks
  in
  Alcotest.(check int) "all transactions accounted" 300 total;
  Alcotest.(check bool) "new orders ran" true (counts.Tpcc.new_orders > 80);
  Alcotest.(check bool) "payments ran" true (counts.Tpcc.payments > 80);
  (match Tpcc.consistency_check s Tpcc.tiny with
  | Ok () -> ()
  | Error e -> Alcotest.fail e)

let test_tpcc_with_labels () =
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let bench_p = Db.create_principal admin ~name:"bench" in
  let s = Db.connect db ~principal:bench_p in
  (* three tags on every tuple, as in the Figure 6 sweep *)
  let tags =
    List.init 3 (fun i ->
        Db.create_tag s ~name:(Printf.sprintf "tpcc_tag_%d" i) ())
  in
  List.iter (fun tag -> Db.add_secrecy s tag) tags;
  let rng = Rng.create ~seed:12 in
  Tpcc.create_schema s;
  Tpcc.populate s rng Tpcc.tiny;
  let counts = Tpcc.run_mix s rng Tpcc.tiny ~txns:150 in
  Alcotest.(check bool) "ran with labels" true (counts.Tpcc.new_orders > 30);
  (match Tpcc.consistency_check s Tpcc.tiny with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* every tuple carries exactly the 3-tag label *)
  let row = Db.query_one s "SELECT _label FROM warehouse" in
  Alcotest.(check bool) "labels stored" true
    (Label.equal (Tuple.label row) (Db.session_label s))

let test_tpcc_rollback_rate () =
  let _, s, rng = tpcc_fixture ~ifc:false in
  let counts = Tpcc.run_mix s rng Tpcc.tiny ~txns:2000 in
  (* ~45% new orders, 1% of those roll back: expect a handful *)
  Alcotest.(check bool)
    (Printf.sprintf "some intentional rollbacks (%d)" counts.Tpcc.rollbacks)
    true
    (counts.Tpcc.rollbacks > 0 && counts.Tpcc.rollbacks < 50);
  (match Tpcc.consistency_check s Tpcc.tiny with
  | Ok () -> ()
  | Error e -> Alcotest.fail e)

let suites =
  [
    ( "workload.rng",
      [
        Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "ranges" `Quick test_rng_ranges;
        Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
        Alcotest.test_case "weighted" `Quick test_rng_weighted;
        Alcotest.test_case "truncated exponential" `Quick test_rng_exponential;
        Alcotest.test_case "nurand & last names" `Quick test_rng_nurand_last_name;
      ] );
    ("workload.gps", [ Alcotest.test_case "trace shape" `Quick test_gps_shape ]);
    ( "workload.cartel_web",
      [
        Alcotest.test_case "figure 3 mix" `Quick test_fig3_mix;
        Alcotest.test_case "sessions" `Quick test_sessions;
      ] );
    ( "workload.tpcc",
      [
        Alcotest.test_case "population" `Quick test_tpcc_population;
        Alcotest.test_case "mix & consistency" `Quick test_tpcc_mix_and_consistency;
        Alcotest.test_case "with labels" `Quick test_tpcc_with_labels;
        Alcotest.test_case "rollback rate" `Slow test_tpcc_rollback_rate;
      ] );
  ]

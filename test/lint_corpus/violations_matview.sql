-- Materialized views: shapes outside the delta compiler's grammar
-- fall back to recompute-per-read (warning, so the fallback is never
-- silent), and the declassification checks cover materialized views
-- exactly as they do plain ones.
\principal alice
\newtag fleet_data
CREATE TABLE points (id INT, car INT, mi INT);
\addsecrecy fleet_data
INSERT INTO points VALUES (1, 1, 10);
\declassify fleet_data
-- supported aggregate shape: maintained incrementally, no warning
CREATE MATERIALIZED VIEW mileage AS SELECT car, SUM(mi) AS total FROM points GROUP BY car WITH DECLASSIFYING (fleet_data);
-- DISTINCT is outside the delta grammar: recompute-only
CREATE MATERIALIZED VIEW cars AS SELECT DISTINCT car FROM points WITH DECLASSIFYING (fleet_data); -- lint: expect recompute-fallback
-- mallory holds no authority; materialized changes nothing here
\principal mallory
CREATE MATERIALIZED VIEW leak AS SELECT mi FROM points WITH DECLASSIFYING (fleet_data); -- lint: expect overbroad-declassify

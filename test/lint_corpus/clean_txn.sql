-- A well-behaved explicit transaction: the label is raised before the
-- contaminated write and lowered again (under held authority) before
-- COMMIT, so the commit-label rule is satisfied and neither linting
-- mode has anything to say.
\principal nurse
\newtag chart
CREATE TABLE charts (id INT, note TEXT);
BEGIN;
INSERT INTO charts VALUES (1, 'public intake');
\addsecrecy chart
INSERT INTO charts VALUES (2, 'private note');
SELECT note FROM charts;
\declassify chart
COMMIT;

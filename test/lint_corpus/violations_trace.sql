-- Cross-statement verdicts only the whole-script trace can see.
-- Per-statement mode replays the script against a live database, so it
-- still trips over some of these — but as generic runtime surprises
-- (overbroad-declassify, runtime-error), never the cross-statement
-- verdicts naming the causal statement.  Scoped expects pin both.

-- 1. declassify-after-revoke: the script itself revokes the delegation
-- that backs a later declassification.  Per-statement mode only sees
-- that mallory lacks authority; the trace cites the revoking statement.
\principal mallory
\principal owner
\newtag secret
CREATE TABLE leaks (id INT, body TEXT);
\delegate secret mallory
\revoke secret mallory
\principal mallory
-- lint: expect-trace declassify-after-revoke
-- lint: expect-stmt overbroad-declassify
PERFORM declassify(secret);

-- 2. dead-write: a label spanning two owners that nobody ever holds
-- full authority for, on rows no later statement reads.
\principal alice
\newtag alice_tag
CREATE TABLE vault (x INT);
\principal bob
\newtag bob_tag
\principal alice
\addsecrecy alice_tag
\addsecrecy bob_tag
-- lint: expect-trace dead-write
INSERT INTO vault VALUES (1);
\declassify alice_tag

-- 3. stale-prepare: the index created between PREPARE and its first
-- EXECUTE invalidates the prepare-time plan before it is ever used.
\principal carol
CREATE TABLE readings (a INT);
INSERT INTO readings VALUES (7);
-- lint: expect-trace stale-prepare
PREPARE getall AS SELECT a FROM readings;
CREATE INDEX readings_a ON readings (a);
EXECUTE getall;

-- 4. EXECUTE of a doomed template breaks the transaction: the template
-- carries its doomed-write verdict (parameter-free evidence), the
-- EXECUTE analyzes as the bound statement and fails, and everything
-- after it runs outside the aborted transaction.
\principal dave
\newtag dave_tag
CREATE TABLE notes (id INT);
INSERT INTO notes VALUES (1);
\addsecrecy dave_tag
-- The template's verdict is parameter-free evidence, reported at
-- PREPARE time — but PREPARE itself succeeds, so the trace continues.
-- (In per-statement mode the Error means the PREPARE is never
-- executed, so the replay's EXECUTE and COMMIT fail at runtime
-- instead — without naming the statement that doomed them.)
-- lint: expect-trace doomed-write
-- lint: expect-stmt doomed-write
PREPARE wipe AS DELETE FROM notes;
BEGIN;
-- lint: expect-trace doomed-write
-- lint: expect-stmt runtime-error
EXECUTE wipe;
-- lint: expect-trace unreachable-stmt
INSERT INTO notes VALUES (2);
-- lint: expect-trace runtime-error
-- lint: expect-stmt runtime-error
COMMIT;

-- A parameterized template linted with its documented bindings: the
-- directive below substitutes $1 before analysis (ifdb_lint --bind
-- overrides it).  Unbound, the $1 key would only classify the row as
-- a maybe; bound to the constant 1 the reference is definite.
-- lint: bind <1>
\principal carol
\newtag carol_medical
CREATE TABLE doctors (id INT NOT NULL, PRIMARY KEY (id));
\addsecrecy carol_medical
INSERT INTO doctors VALUES (1);
\declassify carol_medical
CREATE TABLE appointments (id INT, doctor_id INT, FOREIGN KEY (doctor_id) REFERENCES doctors (id));
-- a definite unlabeled reference to a {carol_medical} parent row
INSERT INTO appointments VALUES (10, $1); -- lint: expect fk-leak

-- A well-behaved script: labeled writes at the session label, reads
-- within clearance, a declassifying view backed by real authority.
-- The linter must stay silent.
\principal alice
\newtag alice_medical
CREATE TABLE patients (id INT, name TEXT);
INSERT INTO patients VALUES (1, 'public record');
\addsecrecy alice_medical
INSERT INTO patients VALUES (2, 'alice private');
SELECT * FROM patients;
UPDATE patients SET name = 'renamed' WHERE _label = {alice_medical};
\declassify alice_medical
SELECT id FROM patients;
CREATE VIEW names AS SELECT name FROM patients WITH DECLASSIFYING (alice_medical);
SELECT * FROM names;
BEGIN;
INSERT INTO patients VALUES (3, 'also public');
COMMIT;

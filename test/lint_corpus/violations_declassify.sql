-- Over-broad declassification: DECLASSIFYING clauses the acting
-- principal cannot back with authority, and clauses that declassify
-- tags absent from the data.
\principal alice
\newtag alice_medical
CREATE TABLE charts (id INT, entry TEXT);
\addsecrecy alice_medical
INSERT INTO charts VALUES (1, 'chart');
\declassify alice_medical
-- mallory holds no authority for alice_medical
\principal mallory
CREATE VIEW leak AS SELECT entry FROM charts WITH DECLASSIFYING (alice_medical); -- lint: expect overbroad-declassify
PERFORM declassify(alice_medical); -- lint: expect overbroad-declassify
-- the owner can declassify, but declassifying a tag that labels no row
-- is suspicious (warning)
\principal alice
\newtag unused_tag
CREATE VIEW pointless AS SELECT entry FROM charts WITH DECLASSIFYING (unused_tag);

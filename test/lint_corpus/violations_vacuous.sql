-- Vacuous queries: predicates restricted to partitions the session
-- label cannot see, or to contradictory label equalities.  These are
-- warnings (the statements run, matching nothing).
\principal dave
\newtag dave_medical
\newtag dave_financial
CREATE TABLE records (id INT, kind TEXT);
\addsecrecy dave_medical
INSERT INTO records VALUES (1, 'medical');
\declassify dave_medical
-- the session label is {} again: the {dave_medical} partition is invisible
SELECT * FROM records WHERE _label = {dave_medical};
UPDATE records SET kind = 'x' WHERE _label = {dave_medical};
-- contradictory equalities can match no row at all
SELECT * FROM records WHERE _label = {dave_medical} AND _label = {dave_financial};
-- a table whose every row is hidden scans to nothing
CREATE TABLE hidden (id INT);
\addsecrecy dave_medical
INSERT INTO hidden VALUES (1);
\declassify dave_medical
SELECT * FROM hidden;

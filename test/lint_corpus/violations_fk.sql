-- Foreign Key Rule leaks: references whose label difference no
-- DECLASSIFYING clause covers.
\principal carol
\newtag carol_medical
CREATE TABLE doctors (id INT NOT NULL, PRIMARY KEY (id));
\addsecrecy carol_medical
INSERT INTO doctors VALUES (1);
\declassify carol_medical
-- every live doctors row is {carol_medical}: referencing them from an
-- unlabeled child table is shape-suspicious at DDL time (warning)...
CREATE TABLE appointments (id INT, doctor_id INT, FOREIGN KEY (doctor_id) REFERENCES doctors (id));
-- ...and a definite unlabeled reference is infeasible outright
INSERT INTO appointments VALUES (10, 1); -- lint: expect fk-leak
-- a NULL reference never engages the rule
INSERT INTO appointments VALUES (11, NULL);
-- declassifying the difference makes the reference legal
INSERT INTO appointments VALUES (12, 1) DECLASSIFYING (carol_medical);

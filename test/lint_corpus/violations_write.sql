-- Doomed writes: statements whose matched rows provably include a row
-- the session cannot write under the Write Rule.
\principal alice
\newtag alice_medical
CREATE TABLE notes (id INT, body TEXT);
INSERT INTO notes VALUES (1, 'public');
\addsecrecy alice_medical
INSERT INTO notes VALUES (2, 'private');
-- session {alice_medical} sees both partitions, but can only write its
-- own: a bare UPDATE must hit the public row and die
UPDATE notes SET body = 'x'; -- lint: expect doomed-write
DELETE FROM notes; -- lint: expect doomed-write
-- explicitly targeting the foreign partition is just as doomed
DELETE FROM notes WHERE _label = {}; -- lint: expect doomed-write
-- a restricting predicate makes it data-dependent: warning only
UPDATE notes SET body = 'y' WHERE id > 100;
-- exact-label writes are fine
UPDATE notes SET body = 'z' WHERE _label = {alice_medical};

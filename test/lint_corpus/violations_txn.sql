-- Commit-label trap: raising the session label after writing less
-- contaminated tuples makes the commit-label rule unsatisfiable.
\principal bob
\newtag bob_medical
CREATE TABLE visits (id INT);
BEGIN;
INSERT INTO visits VALUES (1);
\addsecrecy bob_medical
-- Per-statement linting sees a live transaction's write set
-- (commit-trap); the whole-script trace additionally knows which
-- statement wrote the offending label (txn-commit-trap).
-- lint: expect-stmt commit-trap
-- lint: expect-trace txn-commit-trap
COMMIT;
\declassify bob_medical
-- Only the trace knows the doomed COMMIT above already aborted the
-- transaction at runtime, so this second COMMIT has nothing to commit.
-- Per-statement linting provably misses this: it skipped executing the
-- doomed COMMIT, still believes the transaction is open, and analyzes
-- this statement as a clean commit of an empty-difference write set.
-- lint: expect-trace runtime-error
COMMIT;

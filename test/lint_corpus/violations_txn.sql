-- Commit-label trap: raising the session label after writing less
-- contaminated tuples makes the commit-label rule unsatisfiable.
\principal bob
\newtag bob_medical
CREATE TABLE visits (id INT);
BEGIN;
INSERT INTO visits VALUES (1);
\addsecrecy bob_medical
COMMIT; -- lint: expect commit-trap
\declassify bob_medical
COMMIT;

(* Engine-level tests: plan shapes (index selection, predicate
   pushdown, join strategies) and a randomized optimizer-equivalence
   property — optimized and deliberately de-optimized forms of the same
   query must agree. *)

module Db = Ifdb_core.Database
module Planner = Ifdb_engine.Planner
module Plan = Ifdb_engine.Plan
module Parser = Ifdb_sql.Parser
module A = Ifdb_sql.Ast
module Value = Ifdb_rel.Value
module Tuple = Ifdb_rel.Tuple

let fixture () =
  let db = Db.create ~ifc:false () in
  let s = Db.connect_admin db in
  ignore (Db.exec s "CREATE TABLE t1 (k INT PRIMARY KEY, g INT, v INT)");
  ignore (Db.exec s "CREATE INDEX t1_g ON t1 (g, k)");
  ignore (Db.exec s "CREATE TABLE t2 (k INT PRIMARY KEY, w INT)");
  (db, s)

let plan_of db sql =
  match Parser.parse_one sql with
  | A.S_select sel ->
      Planner.plan_select
        { Planner.pc_catalog = Db.catalog db; pc_auth = Db.authority db;
          pc_exec = None }
        sel
  | _ -> Alcotest.fail "expected SELECT"

let rec plan_exists pred plan =
  pred plan
  ||
  match (plan : Plan.t) with
  | Plan.One_row | Plan.Scan _ -> false
  | Plan.Filter (p, _) | Plan.Project (p, _) | Plan.Distinct p
  | Plan.Sort (p, _) | Plan.Limit (p, _, _) | Plan.Declassify (p, _, _)
  | Plan.View { v_child = p; _ } ->
      plan_exists pred p
  | Plan.Join { left; right; _ } | Plan.Union (left, right, _) ->
      plan_exists pred left || plan_exists pred right
  | Plan.Aggregate { src; _ } -> plan_exists pred src

let uses_index plan =
  plan_exists
    (function Plan.Scan { sc_prefix = Some _; _ } -> true | _ -> false)
    plan

let uses_range plan =
  plan_exists
    (function
      | Plan.Scan { sc_prefix = Some _; sc_lo; sc_hi; _ } ->
          sc_lo <> None || sc_hi <> None
      | _ -> false)
    plan

let uses_probe_join plan =
  plan_exists
    (function Plan.Join { probe = Some _; _ } -> true | _ -> false)
    plan

let has_bare_scan_of name plan =
  plan_exists
    (function
      | Plan.Scan { sc_table; sc_prefix = None; _ } -> sc_table = name
      | _ -> false)
    plan

let test_pk_probe_plan () =
  let db, _ = fixture () in
  let plan, _ = plan_of db "SELECT v FROM t1 WHERE k = 5" in
  Alcotest.(check bool) "uses pk index" true (uses_index plan);
  let plan, _ = plan_of db "SELECT v FROM t1 WHERE k + 0 = 5" in
  Alcotest.(check bool) "expression defeats index" false (uses_index plan)

let test_range_plan () =
  let db, _ = fixture () in
  let plan, _ = plan_of db "SELECT v FROM t1 WHERE g = 1 AND k >= 10 AND k < 20" in
  Alcotest.(check bool) "uses index" true (uses_index plan);
  Alcotest.(check bool) "uses range bound" true (uses_range plan);
  (* a range with no equality prefix still narrows on the pk's first column *)
  let plan, _ = plan_of db "SELECT v FROM t1 WHERE k > 100" in
  Alcotest.(check bool) "range-only access" true (uses_range plan)

let test_pushdown_through_join () =
  let db, _ = fixture () in
  (* the WHERE equality on t1.k must reach t1's scan below the join *)
  let plan, _ =
    plan_of db "SELECT * FROM t1, t2 WHERE t1.k = t2.k AND t1.k = 7"
  in
  Alcotest.(check bool) "no bare scan of t1" false (has_bare_scan_of "t1" plan)

let test_probe_join_plan () =
  let db, _ = fixture () in
  let plan, _ =
    plan_of db "SELECT * FROM t2 JOIN t1 ON t1.k = t2.k WHERE t2.w = 3"
  in
  Alcotest.(check bool) "index nested loop" true (uses_probe_join plan);
  (* swapped orientation: selective side right, sweep side left *)
  let plan, _ =
    plan_of db "SELECT * FROM t1 JOIN t2 ON t1.k = t2.k WHERE t2.w = 3"
  in
  Alcotest.(check bool) "INL after side swap" true (uses_probe_join plan)

let test_left_join_where_stays_above () =
  let _db, s = fixture () in
  ignore (Db.exec s "INSERT INTO t1 VALUES (1, 1, 10)");
  (* WHERE d IS NULL on the right side of a LEFT JOIN must not be pushed
     into the right scan (it filters after padding) *)
  let rows =
    Db.query s
      "SELECT t1.k FROM t1 LEFT JOIN t2 ON t2.k = t1.k WHERE t2.w IS NULL"
  in
  Alcotest.(check int) "unmatched row kept" 1 (List.length rows)

(* ------------------------------------------------------------------ *)
(* Optimizer equivalence property                                      *)
(* ------------------------------------------------------------------ *)

(* Generate conjunctions over t1/t2 and compare the indexed query with
   a '+ 0'-defeated variant: identical results regardless of plan. *)
let gen_query =
  QCheck.Gen.(
    let cmp = oneofl [ "="; ">="; "<"; "<="; ">" ] in
    let conj col =
      map2 (fun op c -> Printf.sprintf "%s %s %d" col op c) cmp (int_range 0 40)
    in
    let conjs =
      list_size (int_range 1 3) (oneof [ conj "t1.k"; conj "t1.g"; conj "t1.v" ])
    in
    let join = oneofl [ None; Some "t1.k = t2.k"; Some "t1.g = t2.w" ] in
    map2
      (fun cs j ->
        let where = String.concat " AND " cs in
        match j with
        | None -> Printf.sprintf "SELECT t1.v FROM t1 WHERE %s ORDER BY t1.v" where
        | Some cond ->
            Printf.sprintf
              "SELECT t1.v, t2.w FROM t1, t2 WHERE %s AND %s ORDER BY t1.v, t2.w"
              cond where)
      conjs join)

(* naive global string replacement (Str is not linked) *)
let replace_all ~sub ~by s =
  let n = String.length s and m = String.length sub in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    if !i + m <= n && String.sub s !i m = sub then begin
      Buffer.add_string buf by;
      i := !i + m
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let defeat sql =
  (* wrap column references in arithmetic so index selection, equi
     extraction and probe selection all fail; only inside WHERE, so the
     projection and ORDER BY stay identical *)
  match String.index_opt sql 'W' with
  | Some i when String.length sql - i > 5 && String.sub sql i 5 = "WHERE" ->
      let head = String.sub sql 0 i in
      let tail = String.sub sql i (String.length sql - i) in
      let tail =
        List.fold_left
          (fun acc (sub, by) -> replace_all ~sub ~by acc)
          tail
          [ ("t1.k", "(t1.k + 0)"); ("t1.g", "(t1.g + 0)");
            ("t1.v", "(t1.v + 0)"); ("t2.k", "(t2.k + 0)");
            ("t2.w", "(t2.w + 0)") ]
      in
      head ^ tail
  | _ -> sql

let optimizer_equivalence_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:80 ~name:"optimized = de-optimized results"
       (QCheck.make ~print:Fun.id
          QCheck.Gen.(
            map2
              (fun q seed -> Printf.sprintf "%d\x00%s" seed q)
              gen_query (int_bound 1000)))
       (fun packed ->
         let seed, sql =
           match String.index_opt packed '\x00' with
           | Some i ->
               ( int_of_string (String.sub packed 0 i),
                 String.sub packed (i + 1) (String.length packed - i - 1) )
           | None -> (0, packed)
         in
         let _db, s = fixture () in
         let rng = Ifdb_workload.Rng.create ~seed in
         ignore (Db.exec s "BEGIN");
         for k = 0 to 60 do
           ignore
             (Db.exec s
                (Printf.sprintf "INSERT INTO t1 VALUES (%d, %d, %d)" k
                   (Ifdb_workload.Rng.int rng 8)
                   (Ifdb_workload.Rng.int rng 40)))
         done;
         for k = 0 to 30 do
           ignore
             (Db.exec s
                (Printf.sprintf "INSERT INTO t2 VALUES (%d, %d)" k
                   (Ifdb_workload.Rng.int rng 8)))
         done;
         ignore (Db.exec s "COMMIT");
         let run q = List.map Tuple.values (Db.query s q) in
         run sql = run (defeat sql)))

let suites =
  [
    ( "engine.plans",
      [
        Alcotest.test_case "pk probe" `Quick test_pk_probe_plan;
        Alcotest.test_case "range access" `Quick test_range_plan;
        Alcotest.test_case "pushdown through joins" `Quick
          test_pushdown_through_join;
        Alcotest.test_case "index-nested-loop joins" `Quick test_probe_join_plan;
        Alcotest.test_case "LEFT JOIN filter placement" `Quick
          test_left_join_where_stays_above;
      ] );
    ("engine.equivalence", [ optimizer_equivalence_prop ]);
  ]

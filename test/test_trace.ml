(* Trace-level label-flow analysis (lib/analysis trace entry points,
   Database.trace_*/check_script, and the trace lint mode).

   Covers: one unit test per cross-statement diagnostic
   (declassify-after-revoke, txn-commit-trap, dead-write,
   stale-prepare, unreachable-stmt and predicted transaction-control
   failures), the shell's \check surface, strict_analysis consulting
   the shadow trace inside explicit transactions, script-splitter edge
   cases, the no-blanket-demotion rule for prepared templates, and a
   QCheck soundness oracle tying trace verdicts to runtime behavior at
   parallelism 1 and IFDB_TEST_PARALLELISM. *)

module Db = Ifdb_core.Database
module Lint = Ifdb_core.Lint
module Errors = Ifdb_core.Errors
module Diag = Ifdb_analysis.Diag
module Sqlscript = Ifdb_analysis.Sqlscript
module Value = Ifdb_rel.Value
module A = Ifdb_sql.Ast

let par_width =
  match Sys.getenv_opt "IFDB_TEST_PARALLELISM" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 4)
  | None -> 4

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let has_error code diags =
  List.exists
    (fun (d : Diag.t) -> d.Diag.d_code = code && Diag.is_error d)
    diags

let has_warning code diags =
  List.exists
    (fun (d : Diag.t) -> d.Diag.d_code = code && not (Diag.is_error d))
    diags

(* ------------------------------------------------------------------ *)
(* Trace-mode lint: one test per cross-statement verdict              *)
(* ------------------------------------------------------------------ *)

let trace_report script =
  (Lint.lint_script Lint.trace_mode script).Lint.o_report

let trace_failures script =
  (Lint.lint_script Lint.trace_mode script).Lint.o_failures

let test_declassify_after_revoke () =
  let report =
    trace_report
      "\\principal mallory\n\\principal owner\n\\newtag sec\n\
       \\delegate sec mallory\n\\revoke sec mallory\n\\principal mallory\n\
       PERFORM declassify(sec);\n"
  in
  Alcotest.(check bool)
    "names the verdict" true
    (contains report "declassify-after-revoke");
  (* the revoke is the 5th item of the script *)
  Alcotest.(check bool)
    "cites the revoking statement" true
    (contains report "statement 5")

let test_txn_commit_trap_origin () =
  let report =
    trace_report
      "\\principal bob\n\\newtag med\nCREATE TABLE v (k INT);\nBEGIN;\n\
       INSERT INTO v VALUES (1);\n\\addsecrecy med\nCOMMIT;\n"
  in
  Alcotest.(check bool)
    "txn-commit-trap" true
    (contains report "txn-commit-trap");
  Alcotest.(check bool)
    "cites the writing statement" true
    (contains report "statement 5")

let test_dead_write () =
  let dead =
    "\\principal alice\n\\newtag at\nCREATE TABLE w (k INT);\n\
     \\principal bobx\n\\newtag bt\n\\principal alice\n\\addsecrecy at\n\
     \\addsecrecy bt\nINSERT INTO w VALUES (1);\n"
  in
  Alcotest.(check bool)
    "two-owner label nobody holds is dead" true
    (contains (trace_report dead) "dead-write");
  (* a later read that can see the rows keeps them alive *)
  let live = dead ^ "SELECT k FROM w;\n" in
  Alcotest.(check bool)
    "a later read keeps the write alive" false
    (contains (trace_report live) "dead-write");
  (* a single-owner label escapes through its owner's authority *)
  let owned =
    "\\principal alice\n\\newtag at\nCREATE TABLE w (k INT);\n\
     \\addsecrecy at\nINSERT INTO w VALUES (1);\n"
  in
  Alcotest.(check bool)
    "owner-declassifiable writes are not dead" false
    (contains (trace_report owned) "dead-write")

let test_stale_prepare () =
  let stale =
    "\\principal c\nCREATE TABLE r (a INT);\n\
     PREPARE g AS SELECT a FROM r;\nCREATE INDEX r_a ON r (a);\n\
     EXECUTE g;\n"
  in
  Alcotest.(check bool)
    "DDL between PREPARE and first EXECUTE" true
    (contains (trace_report stale) "stale-prepare");
  let fresh =
    "\\principal c\nCREATE TABLE r (a INT);\n\
     PREPARE g AS SELECT a FROM r;\nEXECUTE g;\n\
     CREATE INDEX r_a ON r (a);\nEXECUTE g;\n"
  in
  Alcotest.(check bool)
    "first EXECUTE before the DDL is fine" false
    (contains (trace_report fresh) "stale-prepare")

let test_broken_txn_flow () =
  (* the doomed statement aborts the transaction: later statements are
     unreachable-as-transaction warnings, the COMMIT is a predicted
     runtime error, and a following BEGIN is clean *)
  let report =
    trace_report
      "\\principal d\n\\newtag dt\nCREATE TABLE n (k INT);\n\
       INSERT INTO n VALUES (1);\n\\addsecrecy dt\nBEGIN;\n\
       DELETE FROM n;\nINSERT INTO n VALUES (2);\nCOMMIT;\nBEGIN;\n\
       ROLLBACK;\n"
  in
  Alcotest.(check bool) "doomed" true (contains report "doomed-write");
  Alcotest.(check bool)
    "unreachable" true
    (contains report "unreachable-stmt");
  Alcotest.(check bool)
    "COMMIT predicted to fail" true
    (contains report "no open transaction");
  (* the trailing BEGIN/ROLLBACK after the break are clean: no
     diagnostics on lines 10-11 *)
  Alcotest.(check bool) "BEGIN after break clean" false
    (contains report "line 10");
  Alcotest.(check int) "no expect failures" 0
    (List.length
       (trace_failures
          "\\principal d\nCREATE TABLE n (k INT);\nBEGIN;\n\
           INSERT INTO n VALUES (1);\nCOMMIT;\n"))

let test_execute_analyzed_as_bound () =
  (* EXECUTE re-analyzes the template as the bound statement against
     the state in force at the EXECUTE, not the PREPARE *)
  let report =
    trace_report
      "\\principal d\n\\newtag dt\nCREATE TABLE n (k INT);\n\
       INSERT INTO n VALUES (1);\nPREPARE wipe AS DELETE FROM n;\n\
       \\addsecrecy dt\nEXECUTE wipe;\n"
  in
  (* clean at PREPARE time (label still empty), doomed at EXECUTE *)
  Alcotest.(check bool)
    "doomed at EXECUTE" true
    (contains report "line 7")

(* ------------------------------------------------------------------ *)
(* check_script (the shell's \check) and strict_analysis in txns      *)
(* ------------------------------------------------------------------ *)

let test_check_script_midtxn () =
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let owner = Db.create_principal admin ~name:"o" in
  let s = Db.connect db ~principal:owner in
  let ta = Db.create_tag s ~name:"ta" () in
  ignore (Db.exec admin "CREATE TABLE w (k INT)");
  ignore (Db.exec s "BEGIN");
  ignore (Db.exec s "INSERT INTO w VALUES (1)");
  Db.add_secrecy s ta;
  (* \check sees the live open transaction's write set: committing now
     is a predicted trap, and nothing was executed by the check *)
  let items = Db.check_script s "COMMIT;" in
  Alcotest.(check int) "one item" 1 (List.length items);
  let it = List.hd items in
  Alcotest.(check bool)
    "commit trap against the live write set" true
    (has_error Diag.Txn_commit_trap it.Db.ck_diags);
  (* the session is untouched: the transaction is still open and the
     runtime then fails exactly as predicted *)
  (match Db.exec s "COMMIT" with
  | _ -> Alcotest.fail "runtime COMMIT should fail as predicted"
  | exception Errors.Flow_violation _ -> ());
  (* multi-statement input: per-item indices and lines *)
  let items =
    Db.check_script s "SELECT k FROM w;\nSELECT k FROM missing;"
  in
  Alcotest.(check int) "two items" 2 (List.length items);
  let second = List.nth items 1 in
  Alcotest.(check int) "index" 2 second.Db.ck_index;
  Alcotest.(check int) "line" 2 second.Db.ck_line;
  Alcotest.(check bool)
    "unknown table" true
    (second.Db.ck_diags <> [])

let test_strict_analysis_txn () =
  let db = Db.create ~strict_analysis:true () in
  let admin = Db.connect_admin db in
  let owner = Db.create_principal admin ~name:"o" in
  let s = Db.connect db ~principal:owner in
  let ta = Db.create_tag s ~name:"ta" () in
  ignore (Db.exec admin "CREATE TABLE w (k INT)");
  ignore (Db.exec s "BEGIN");
  ignore (Db.exec s "INSERT INTO w VALUES (1)");
  Db.add_secrecy s ta;
  match Db.exec s "COMMIT" with
  | _ -> Alcotest.fail "strict COMMIT should raise before executing"
  | exception Errors.Flow_violation m ->
      Alcotest.(check bool)
        "verdict names the trap" true
        (contains m "commit-trap");
      Alcotest.(check bool)
        "cites the writing statement of the transaction" true
        (contains m "statement 1")

(* ------------------------------------------------------------------ *)
(* Script splitter edge cases                                         *)
(* ------------------------------------------------------------------ *)

let test_split_edges () =
  let split = Sqlscript.split_script in
  (* semicolon inside a string literal does not terminate; trailing
     unterminated statement still emits *)
  let items = split "INSERT INTO t VALUES ('a;b');SELECT 1" in
  Alcotest.(check int) "literal ; kept" 2 (List.length items);
  Alcotest.(check bool)
    "literal intact" true
    (contains (List.hd items).Sqlscript.it_text "'a;b'");
  Alcotest.(check string)
    "trailing statement" "SELECT 1"
    (List.nth items 1).Sqlscript.it_text;
  (* -- comment hides its semicolon *)
  let items = split "SELECT 1 -- not; two\n+ 2;" in
  Alcotest.(check int) "line comment" 1 (List.length items);
  Alcotest.(check bool)
    "comment text dropped" false
    (contains (List.hd items).Sqlscript.it_text "not");
  (* block comment spans lines, hides semicolons, keeps line counts *)
  let items = split "/* ; \n ; */\nSELECT 9;" in
  Alcotest.(check int) "block comment" 1 (List.length items);
  Alcotest.(check int)
    "line numbering across block comment" 3
    (List.hd items).Sqlscript.it_line;
  (* CRLF line endings *)
  let items = split "SELECT 1;\r\nSELECT 2;\r\n" in
  Alcotest.(check int) "crlf items" 2 (List.length items);
  Alcotest.(check int) "crlf line" 2 (List.nth items 1).Sqlscript.it_line;
  (* a one-line meta command mid-transaction, no semicolon *)
  let items = split "BEGIN;\n\\addsecrecy ta\nCOMMIT;" in
  Alcotest.(check int) "meta splits" 3 (List.length items);
  (match (List.nth items 1).Sqlscript.it_kind with
  | Sqlscript.Meta ("addsecrecy", [ "ta" ]) -> ()
  | _ -> Alcotest.fail "meta not recognized");
  (* scoped expects keep their mode prefix *)
  let items =
    split "-- lint: expect-trace dead-write\nINSERT INTO t VALUES (1);"
  in
  Alcotest.(check (list string))
    "scoped expect" [ "trace:dead-write" ]
    (List.hd items).Sqlscript.it_expects;
  (* bind directive *)
  Alcotest.(check (option string))
    "bind directive" (Some "<1,alice>")
    (Sqlscript.bind_directive "-- lint: bind <1,alice>\nSELECT $1;");
  Alcotest.(check (option string))
    "no directive" None
    (Sqlscript.bind_directive "SELECT 1;");
  match Array.to_list (Lint.parse_bindings "<1,alice>") with
  | [ Value.Int 1; Value.Text "alice" ] -> ()
  | _ -> Alcotest.fail "parse_bindings"

(* ------------------------------------------------------------------ *)
(* Prepared templates: Errors only on parameter-free evidence         *)
(* ------------------------------------------------------------------ *)

let test_prepare_no_blanket_demotion () =
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let owner = Db.create_principal admin ~name:"o" in
  let s = Db.connect db ~principal:owner in
  let ta = Db.create_tag s ~name:"ta" () in
  ignore (Db.exec admin "CREATE TABLE t (k INT)");
  ignore (Db.exec admin "INSERT INTO t VALUES (1)");
  Db.add_secrecy s ta;
  (* parameter-free template: the verdict holds for every binding and
     must stay an Error *)
  let diags = Db.analyze s "PREPARE pf AS DELETE FROM t" in
  Alcotest.(check bool)
    "param-free doomed template is an Error" true
    (has_error Diag.Doomed_write diags);
  (* a $n in the predicate makes the verdict binding-dependent *)
  let diags = Db.analyze s "PREPARE pw AS DELETE FROM t WHERE k = $1" in
  Alcotest.(check bool)
    "parameterized predicate demotes to Warning" true
    (has_warning Diag.Doomed_write diags);
  Alcotest.(check bool)
    "and is not an Error" false
    (has_error Diag.Doomed_write diags)

(* ------------------------------------------------------------------ *)
(* QCheck soundness: trace verdicts vs the runtime                    *)
(* ------------------------------------------------------------------ *)

(* Deterministic universe: owner owns ta/tb, bob holds a delegation
   for ta, u(k) is constraint-free with one committed public row.
   Traces are pure SQL run on bob's session, so the symbolic trace and
   the replay see the same initial state. *)
let pool =
  [|
    "BEGIN";
    "COMMIT";
    "ROLLBACK";
    "INSERT INTO u VALUES (1)";
    "DELETE FROM u";
    "UPDATE u SET k = 0";
    "SELECT k FROM u";
    "PERFORM addsecrecy(ta)";
    "PERFORM declassify(ta)";
    "PERFORM declassify(tb)";
    "PERFORM delegate(ta, bob)";
    "PERFORM revoke(ta, bob)";
    "PREPARE p AS DELETE FROM u";
    "EXECUTE p";
  |]

let build_universe ~parallelism =
  let db = Db.create ~parallelism () in
  let admin = Db.connect_admin db in
  let owner = Db.create_principal admin ~name:"owner" in
  let bob = Db.create_principal admin ~name:"bob" in
  let os = Db.connect db ~principal:owner in
  let ta = Db.create_tag os ~name:"ta" () in
  ignore (Db.create_tag os ~name:"tb" ());
  Db.delegate os ~tag:ta ~grantee:bob;
  ignore (Db.exec admin "CREATE TABLE u (k INT)");
  ignore (Db.exec admin "INSERT INTO u VALUES (7)");
  (db, bob)

let flow_codes =
  [
    Diag.Doomed_write; Diag.Commit_trap; Diag.Txn_commit_trap; Diag.Fk_leak;
    Diag.Vacuous_query; Diag.Dead_write;
  ]

let auth_codes = [ Diag.Overbroad_declassify; Diag.Declassify_after_revoke ]

(* Does the raised exception match the failure class some Error
   verdict predicts?  runtime-error (and any other code) predicts
   failure without pinning the class. *)
let exn_predicted errors exn =
  List.exists
    (fun (d : Diag.t) ->
      let c = d.Diag.d_code in
      if List.mem c flow_codes then
        match exn with Errors.Flow_violation _ -> true | _ -> false
      else if List.mem c auth_codes then
        match exn with Errors.Authority_required _ -> true | _ -> false
      else if c = Diag.Name_error then
        match exn with Errors.Sql_error _ -> true | _ -> false
      else true)
    errors

let soundness_prop ~parallelism idxs =
  let sqls = List.map (fun i -> pool.(i mod Array.length pool)) idxs in
  let db, bob = build_universe ~parallelism in
  let sess = Db.connect db ~principal:bob in
  (* phase 1: symbolic trace over the whole script — nothing executes *)
  let ts = Db.trace_begin sess in
  let per_stmt =
    List.map
      (fun sql ->
        match Ifdb_sql.Parser.parse sql with
        | [ stmt ] -> (stmt, Db.trace_stmt sess ts stmt)
        | _ -> assert false)
      sqls
  in
  let finals = Db.trace_finish sess ts in
  (* phase 2: the same session replays the script for real *)
  let ok = ref true in
  List.iteri
    (fun i (stmt, diags) ->
      let idx = i + 1 in
      let diags =
        diags @ Option.value ~default:[] (List.assoc_opt idx finals)
      in
      let errors = List.filter Diag.is_error diags in
      let predicted_fail =
        match stmt with
        | A.S_prepare _ ->
            (* body Errors are reported but PREPARE itself succeeds;
               only its own runtime failures (duplicate name, nested
               PREPARE/EXECUTE) are fatal *)
            List.exists
              (fun (d : Diag.t) -> d.Diag.d_code = Diag.Runtime_error)
              errors
        | _ -> errors <> []
      in
      let may_trap =
        List.exists
          (fun (d : Diag.t) ->
            List.mem d.Diag.d_code (flow_codes @ auth_codes))
          diags
      in
      match Db.exec sess (List.nth sqls i) with
      | _ -> if predicted_fail then ok := false
      | exception
          (( Errors.Flow_violation _ | Errors.Authority_required _
           | Errors.Constraint_violation _ | Errors.Sql_error _ ) as e) ->
          if predicted_fail then begin
            if not (exn_predicted errors e) then ok := false
          end
          else (
            (* soundness direction 2: a statement with no flow- or
               authority-coded verdict at any severity must not trip
               the IFC rules at runtime *)
            match e with
            | Errors.Flow_violation _ | Errors.Authority_required _ ->
                if not may_trap then ok := false
            | _ -> ()))
    per_stmt;
  !ok

let soundness ~parallelism ~count name =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name
       (QCheck.make
          ~print:(fun idxs ->
            String.concat "; "
              (List.map (fun i -> pool.(i mod Array.length pool)) idxs))
          QCheck.Gen.(
            list_size (int_range 1 12) (int_bound (Array.length pool - 1))))
       (soundness_prop ~parallelism))

let suites =
  [
    ( "trace analysis",
      [
        Alcotest.test_case "declassify-after-revoke" `Quick
          test_declassify_after_revoke;
        Alcotest.test_case "txn-commit-trap cites origin" `Quick
          test_txn_commit_trap_origin;
        Alcotest.test_case "dead-write" `Quick test_dead_write;
        Alcotest.test_case "stale-prepare" `Quick test_stale_prepare;
        Alcotest.test_case "broken transaction flow" `Quick
          test_broken_txn_flow;
        Alcotest.test_case "EXECUTE analyzed as bound statement" `Quick
          test_execute_analyzed_as_bound;
        Alcotest.test_case "check_script mid-transaction" `Quick
          test_check_script_midtxn;
        Alcotest.test_case "strict_analysis inside explicit txn" `Quick
          test_strict_analysis_txn;
        Alcotest.test_case "script splitter edge cases" `Quick
          test_split_edges;
        Alcotest.test_case "prepared templates: no blanket demotion" `Quick
          test_prepare_no_blanket_demotion;
        soundness ~parallelism:1 ~count:80
          "trace soundness: verdicts match runtime (serial)";
        soundness ~parallelism:par_width ~count:30
          "trace soundness: verdicts match runtime (parallel)";
      ] );
  ]

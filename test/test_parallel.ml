(* Morsel-parallel execution: equivalence with the serial executor and
   preservation of the DIFC semantics under parallelism.

   The central property is that a database created with [parallelism:n]
   answers every query with exactly the rows (values {e and} labels) of
   a [parallelism:1] database holding the same data — confinement,
   polyinstantiation and declassifying views included, because the
   parallel scan path applies the Label Confinement Rule through the
   same access-layer filter as the serial one.

   [IFDB_TEST_PARALLELISM] overrides the domain count (CI runs the
   suite at 1 and at a multi-domain setting); [morsel_size:16] keeps
   morsel counts high enough that modest test tables genuinely cut
   into parallel work. *)

module Db = Ifdb_core.Database
module Label = Ifdb_difc.Label
module Value = Ifdb_rel.Value
module Tuple = Ifdb_rel.Tuple

let par_width =
  match Sys.getenv_opt "IFDB_TEST_PARALLELISM" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 4)
  | None -> 4

(* A row as a comparable rendering of (values, label). *)
let row_key t =
  ( List.map Value.to_string (Array.to_list (Tuple.values t)),
    Label.to_string (Tuple.label t) )

let multiset rows = List.sort compare (List.map row_key rows)
let row_list rows = List.map row_key rows

(* ------------------------------------------------------------------ *)
(* A labeled two-table fixture, buildable at any parallelism           *)
(* ------------------------------------------------------------------ *)

type fixture = {
  fx_db : Db.t;
  fx_owner_s : Db.session; (* owner of every tag, label empty *)
  fx_tags : Ifdb_difc.Tag.t array; (* 3 tags; rows tagged 0-2 or public *)
}

(* [rows1]: (k, v, tag index 0-3 where 3 = public) for table t1;
   [rows2]: (k, w) public rows for table t2. *)
let build ~parallelism (rows1, rows2) =
  let db = Db.create ~parallelism ~morsel_size:16 () in
  let admin = Db.connect_admin db in
  let owner = Db.create_principal admin ~name:"owner" in
  let os = Db.connect db ~principal:owner in
  let fx_tags =
    Array.init 3 (fun i -> Db.create_tag os ~name:(Printf.sprintf "t%d" i) ())
  in
  ignore (Db.exec admin "CREATE TABLE t1 (k INT, v INT)");
  ignore (Db.exec admin "CREATE TABLE t2 (k INT, w INT)");
  let insert_group tag_idx rows =
    if rows <> [] then begin
      let values =
        String.concat ", "
          (List.map (fun (k, v, _) -> Printf.sprintf "(%d, %d)" k v) rows)
      in
      let stmt = "INSERT INTO t1 VALUES " ^ values in
      if tag_idx < 3 then
        Db.with_label os (Label.singleton fx_tags.(tag_idx)) (fun () ->
            ignore (Db.exec os stmt))
      else ignore (Db.exec os stmt)
    end
  in
  (* one multi-row INSERT per label, in tag order: both databases insert
     in the same order, so heaps are slot-for-slot identical *)
  for tag = 0 to 3 do
    insert_group tag (List.filter (fun (_, _, t) -> t = tag) rows1)
  done;
  if rows2 <> [] then
    ignore
      (Db.exec os
         ("INSERT INTO t2 VALUES "
         ^ String.concat ", "
             (List.map (fun (k, w) -> Printf.sprintf "(%d, %d)" k w) rows2)));
  { fx_db = db; fx_owner_s = os; fx_tags }

let session_with_tags fx mask =
  let s = Db.connect fx.fx_db ~principal:(Db.session_principal fx.fx_owner_s) in
  Array.iteri
    (fun i tag -> if mask land (1 lsl i) <> 0 then Db.add_secrecy s tag)
    fx.fx_tags;
  s

(* Queries over the fixture.  [`Exact] results must match the serial
   row order (the parallel executor preserves scan order); [`Multiset]
   results may reorder groups (SQL leaves GROUP BY output order
   unspecified, and the parallel merge visits groups worker-first). *)
let queries =
  [
    (`Exact, "SELECT k, v FROM t1");
    (`Exact, "SELECT v FROM t1 WHERE v >= 50");
    (`Exact, "SELECT k + 1, v * 2 FROM t1 WHERE k < 8");
    (`Exact, "SELECT DISTINCT k FROM t1");
    (`Exact, "SELECT k FROM t1 ORDER BY v, k LIMIT 5");
    (`Multiset, "SELECT k, COUNT(*), SUM(v), MIN(v), MAX(v) FROM t1 GROUP BY k");
    (`Multiset, "SELECT COUNT(*), SUM(v), AVG(v) FROM t1");
    (`Multiset, "SELECT k, COUNT(DISTINCT v) FROM t1 GROUP BY k");
    (`Exact, "SELECT t1.v, t2.w FROM t1 JOIN t2 ON t1.k = t2.k");
    (`Exact, "SELECT t1.v, t2.w FROM t1 LEFT JOIN t2 ON t1.k = t2.k");
    (`Exact,
     "SELECT t1.v, t2.w FROM t1 JOIN t2 ON t1.k = t2.k WHERE t1.v + t2.w > 40");
  ]

let check_equivalent ~serial_s ~par_s =
  List.iter
    (fun (mode, q) ->
      let a = Db.query serial_s q and b = Db.query par_s q in
      match mode with
      | `Exact ->
          Alcotest.(check (list (pair (list string) string)))
            (q ^ " (order)") (row_list a) (row_list b)
      | `Multiset ->
          Alcotest.(check (list (pair (list string) string)))
            (q ^ " (multiset)") (multiset a) (multiset b))
    queries

(* ------------------------------------------------------------------ *)
(* Property: parallel = serial on random labeled data                  *)
(* ------------------------------------------------------------------ *)

let gen_data =
  QCheck.Gen.(
    pair
      (list_size (int_range 40 160)
         (triple (int_range 0 9) (int_range 0 99) (int_range 0 3)))
      (list_size (int_bound 40) (pair (int_range 0 9) (int_range 0 99))))

let print_data (rows1, rows2) =
  Printf.sprintf "t1=%d rows, t2=%d rows" (List.length rows1)
    (List.length rows2)

let equivalence_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:20
       ~name:"parallel executor = serial executor (values and labels)"
       (QCheck.make ~print:print_data gen_data)
       (fun data ->
         let fx1 = build ~parallelism:1 data in
         let fxn = build ~parallelism:par_width data in
         (* one low session (only tag 0) and one high session (all tags):
            equivalence must hold at every clearance *)
         List.iter
           (fun mask ->
             check_equivalent
               ~serial_s:(session_with_tags fx1 mask)
               ~par_s:(session_with_tags fxn mask))
           [ 0b001; 0b111 ];
         true))

(* ------------------------------------------------------------------ *)
(* DIFC semantics at parallelism:n, explicitly                         *)
(* ------------------------------------------------------------------ *)

let test_parallel_confinement () =
  let rows1 =
    List.init 120 (fun i -> (i mod 10, i, 0))
    @ List.init 80 (fun i -> (i mod 10, i, 1))
    @ List.init 50 (fun i -> (i mod 10, i, 3))
  in
  let fx = build ~parallelism:par_width (rows1, []) in
  let count s = List.length (Db.query s "SELECT * FROM t1") in
  Alcotest.(check int) "empty label sees only public" 50
    (count (session_with_tags fx 0));
  Alcotest.(check int) "tag0 sees tag0 + public" 170
    (count (session_with_tags fx 0b001));
  Alcotest.(check int) "tag1 sees tag1 + public" 130
    (count (session_with_tags fx 0b010));
  Alcotest.(check int) "tag0+tag1 sees all" 250
    (count (session_with_tags fx 0b011));
  (* labels ride along unchanged *)
  let s = session_with_tags fx 0b001 in
  let tagged =
    List.filter
      (fun r -> not (Label.is_empty (Tuple.label r)))
      (Db.query s "SELECT * FROM t1")
  in
  Alcotest.(check int) "tagged rows keep their label" 120 (List.length tagged)

let test_parallel_polyinstantiation () =
  let db = Db.create ~parallelism:par_width ~morsel_size:16 () in
  let admin = Db.connect_admin db in
  let alice = Db.create_principal admin ~name:"alice" in
  let bob = Db.create_principal admin ~name:"bob" in
  let asess = Db.connect db ~principal:alice in
  let a_tag = Db.create_tag asess ~name:"alice_medical" () in
  ignore
    (Db.exec admin
       "CREATE TABLE Patients (name TEXT PRIMARY KEY, notes TEXT)");
  (* enough filler that the scan cuts into several morsels *)
  ignore
    (Db.exec admin
       ("INSERT INTO Patients VALUES "
       ^ String.concat ", "
           (List.init 60 (fun i -> Printf.sprintf "('p%03d', 'x')" i))));
  Db.add_secrecy asess a_tag;
  ignore (Db.exec asess "INSERT INTO Patients VALUES ('Alice', 'hiv')");
  (* empty-label insert of the same key: polyinstantiation admits it *)
  let bsess = Db.connect db ~principal:bob in
  (match Db.exec bsess "INSERT INTO Patients VALUES ('Alice', 'fake')" with
  | Db.Affected 1 -> ()
  | _ -> Alcotest.fail "polyinstantiating insert must succeed");
  let alice_rows s =
    List.length (Db.query s "SELECT * FROM Patients WHERE name = 'Alice'")
  in
  Alcotest.(check int) "low client sees one Alice" 1 (alice_rows bsess);
  Alcotest.(check int) "high client sees both Alices" 2 (alice_rows asess);
  Alcotest.(check int) "low client: fillers + its Alice" 61
    (List.length (Db.query bsess "SELECT * FROM Patients"))

let test_parallel_declassifying_view () =
  let db = Db.create ~parallelism:par_width ~morsel_size:16 () in
  let admin = Db.connect_admin db in
  let chair = Db.create_principal admin ~name:"chair" in
  let chair_s = Db.connect db ~principal:chair in
  let all_contacts = Db.create_tag chair_s ~name:"all_contacts" () in
  ignore
    (Db.exec admin
       "CREATE TABLE ContactInfo (contactId INT PRIMARY KEY, name TEXT, \
        isPC BOOL)");
  Db.add_secrecy chair_s all_contacts;
  ignore
    (Db.exec chair_s
       ("INSERT INTO ContactInfo VALUES "
       ^ String.concat ", "
           (List.init 64 (fun i ->
                Printf.sprintf "(%d, 'c%02d', %s)" i i
                  (if i mod 2 = 0 then "TRUE" else "FALSE")))));
  Db.declassify chair_s all_contacts;
  ignore
    (Db.exec chair_s
       "CREATE VIEW PCMembers AS SELECT name FROM ContactInfo WHERE isPC = \
        TRUE WITH DECLASSIFYING (all_contacts)");
  let user = Db.create_principal admin ~name:"user" in
  let user_s = Db.connect db ~principal:user in
  let rows = Db.query user_s "SELECT name FROM PCMembers" in
  Alcotest.(check int) "view widens to the PC half" 32 (List.length rows);
  List.iter
    (fun row ->
      Alcotest.(check bool) "declassified label" true
        (Label.is_empty (Tuple.label row)))
    rows;
  Alcotest.(check int) "base table still confined" 0
    (List.length (Db.query user_s "SELECT * FROM ContactInfo"))

let test_parallel_equals_serial_fixed () =
  (* deterministic complement to the property: a fixed dataset through
     every query shape *)
  let rows1 =
    List.init 200 (fun i -> (i mod 10, (i * 37) mod 100, i mod 4))
  in
  let rows2 = List.init 30 (fun i -> (i mod 10, i)) in
  let fx1 = build ~parallelism:1 (rows1, rows2) in
  let fxn = build ~parallelism:par_width (rows1, rows2) in
  List.iter
    (fun mask ->
      check_equivalent
        ~serial_s:(session_with_tags fx1 mask)
        ~par_s:(session_with_tags fxn mask))
    [ 0; 0b001; 0b011; 0b111 ]

(* ------------------------------------------------------------------ *)
(* Engagement: the parallel machinery genuinely runs                   *)
(* ------------------------------------------------------------------ *)

let test_pool_uses_multiple_domains () =
  let pool = Ifdb_engine.Domain_pool.get ~parallelism:4 in
  let started = Atomic.make 0 in
  let doms = Array.make 4 (-1) in
  Ifdb_engine.Domain_pool.parallel_for pool ~width:4 ~tasks:4
    (fun ~worker:_ i ->
      doms.(i) <- (Domain.self () :> int);
      Atomic.incr started;
      (* hold each task until a second one has started: completes only
         if two domains are inside the batch concurrently *)
      let spins = ref 0 in
      while Atomic.get started < 2 && !spins < 200_000_000 do
        incr spins;
        Domain.cpu_relax ()
      done);
  let distinct =
    List.sort_uniq compare (List.filter (fun d -> d >= 0) (Array.to_list doms))
  in
  Alcotest.(check bool) "tasks ran on at least two domains" true
    (List.length distinct >= 2)

let test_parallel_scan_path_engages () =
  (* a morsel-cut scan touches each page once per morsel it straddles,
     so the hit count exceeds the serial scan's once-per-page count —
     observable proof the morsel path (not the serial fallback) ran *)
  if par_width > 1 then begin
    let data = (List.init 400 (fun i -> (i mod 10, i, 3)), []) in
    let hits fx =
      let pool = Db.pool fx.fx_db in
      Ifdb_storage.Buffer_pool.reset_stats pool;
      ignore (Db.query fx.fx_owner_s "SELECT k, v FROM t1");
      (Ifdb_storage.Buffer_pool.stats pool).Ifdb_storage.Buffer_pool.hits
    in
    let serial_hits = hits (build ~parallelism:1 data) in
    let par_hits = hits (build ~parallelism:par_width data) in
    Alcotest.(check bool)
      (Printf.sprintf "morsel scan re-touches straddled pages (%d > %d)"
         par_hits serial_hits)
      true (par_hits > serial_hits)
  end

(* ------------------------------------------------------------------ *)
(* Index-nested-loop left join: the probe runs once per outer row      *)
(* ------------------------------------------------------------------ *)

let test_probe_join_single_probe () =
  let db = Db.create ~ifc:false () in
  let s = Db.connect_admin db in
  ignore (Db.exec s "CREATE TABLE outer_t (k INT, v INT)");
  ignore (Db.exec s "CREATE TABLE inner_t (k INT PRIMARY KEY, w INT)");
  ignore
    (Db.exec s
       ("INSERT INTO outer_t VALUES "
       ^ String.concat ", " (List.init 20 (fun i -> Printf.sprintf "(%d, %d)" i i))));
  ignore
    (Db.exec s
       ("INSERT INTO inner_t VALUES "
       ^ String.concat ", "
           (List.init 20 (fun i -> Printf.sprintf "(%d, %d)" i (i * 10)))));
  let evals = ref 0 in
  Db.register_scalar db ~name:"probed" (fun _ args ->
      incr evals;
      match args with [ v ] -> v | _ -> Value.Null);
  let rows =
    Db.query s
      "SELECT outer_t.v, inner_t.w FROM outer_t LEFT JOIN inner_t ON \
       outer_t.k = inner_t.k AND probed(inner_t.w) >= 0"
  in
  Alcotest.(check int) "all outer rows matched" 20 (List.length rows);
  (* each outer row finds exactly one index candidate; the residual
     condition must be evaluated once for it, not re-evaluated by a
     second traversal of the match sequence *)
  Alcotest.(check int) "one probe per outer row" 20 !evals

let suites =
  [
    ( "parallel.equivalence",
      [
        equivalence_prop;
        Alcotest.test_case "fixed dataset, all query shapes" `Quick
          test_parallel_equals_serial_fixed;
      ] );
    ( "parallel.difc",
      [
        Alcotest.test_case "confinement at parallelism:n" `Quick
          test_parallel_confinement;
        Alcotest.test_case "polyinstantiation at parallelism:n" `Quick
          test_parallel_polyinstantiation;
        Alcotest.test_case "declassifying view at parallelism:n" `Quick
          test_parallel_declassifying_view;
      ] );
    ( "parallel.engagement",
      [
        Alcotest.test_case "pool spans domains" `Quick
          test_pool_uses_multiple_domains;
        Alcotest.test_case "morsel scan path runs" `Quick
          test_parallel_scan_path_engages;
      ] );
    ( "parallel.joins",
      [
        Alcotest.test_case "probe join probes once per outer row" `Quick
          test_probe_join_single_probe;
      ] );
  ]

(* End-to-end tests for the CarTel and HotCRP ports, including the
   specific bugs the paper reports IFDB catching (sections 6.1-6.2). *)

module Db = Ifdb_core.Database
module Errors = Ifdb_core.Errors
module Cartel = Ifdb_cartel.Cartel
module Hotcrp = Ifdb_hotcrp.Hotcrp
module Web = Ifdb_platform.Web
module Gps = Ifdb_workload.Gps
module Rng = Ifdb_workload.Rng
module Label = Ifdb_difc.Label
module Value = Ifdb_rel.Value
module Tuple = Ifdb_rel.Tuple

(* ------------------------------------------------------------------ *)
(* CarTel                                                              *)
(* ------------------------------------------------------------------ *)

let small_trace cars =
  let rng = Rng.create ~seed:99 in
  Gps.generate rng
    { Gps.cars; drives_per_car = 2; points_per_drive = 5; start_ts = 1_600_000_000 }

let cartel_with_data () =
  let t = Cartel.setup ~users:4 ~cars_per_user:1 () in
  (* cars are numbered uid*100; the trace generator numbers 0..n-1, so
     remap points onto real car ids *)
  let points =
    List.map
      (fun p -> { p with Gps.car_id = p.Gps.car_id * 100 })
      (small_trace 4)
  in
  Cartel.ingest_batch t points;
  (t, points)

let test_cartel_ingest_and_segmentation () =
  let t, points = cartel_with_data () in
  Alcotest.(check int) "all points stored" (List.length points)
    (Cartel.locations_count t);
  (* 2 drives per car x 4 cars *)
  Alcotest.(check int) "segmented into drives" 8 (Cartel.drives_count t)

let test_cartel_owner_sees_own_drives () =
  let t, _ = cartel_with_data () in
  let r = Cartel.request t ~path:"drives.php" ~user:1 () in
  Alcotest.(check bool) "ok" true (r.Web.status = `Ok);
  Alcotest.(check bool) "has drive rows" true (String.length r.Web.body > 0)

let test_cartel_get_cars () =
  let t, _ = cartel_with_data () in
  let r = Cartel.request t ~path:"get_cars.php" ~user:1 () in
  Alcotest.(check bool) "ok" true (r.Web.status = `Ok);
  let r2 = Cartel.request t ~path:"cars.php" ~user:2 () in
  Alcotest.(check bool) "ok too" true (r2.Web.status = `Ok)

let test_cartel_friend_can_see_drives () =
  let t, _ = cartel_with_data () in
  Cartel.befriend t ~owner:1 ~friend:2;
  let r =
    Cartel.request t ~path:"drives.php" ~user:2
      ~params:[ ("target", "1") ] ()
  in
  Alcotest.(check bool) "friend sees drives" true (r.Web.status = `Ok);
  Alcotest.(check bool) "body nonempty" true (String.length r.Web.body > 0)

(* the paper's friend bug: "by manipulating the URL, a malicious user
   could see anyone's driving history" — with the authorization check
   removed, IFDB still blocks the output *)
let test_cartel_url_tampering_blocked () =
  let t, _ = cartel_with_data () in
  let r =
    Cartel.request t ~path:"drives_noauthz.php" ~user:2
      ~params:[ ("target", "1") ] ()
  in
  Alcotest.(check bool) "blocked despite missing check" true
    (r.Web.status = `Blocked);
  Alcotest.(check string) "no output" "" r.Web.body

(* the paper's authentication bugs: "twelve scripts neglected to
   authenticate the user making the request … scripts that didn't
   authenticate ran with no authority under IFDB" *)
let test_cartel_unauthenticated_blocked () =
  let t, _ = cartel_with_data () in
  let r =
    Cartel.request t ~path:"get_cars_noauth.php" ~params:[ ("uid", "1") ] ()
  in
  Alcotest.(check bool) "anonymous blocked" true (r.Web.status = `Blocked)

let test_cartel_drives_top_closure () =
  let t, _ = cartel_with_data () in
  (* any logged-in user can see the aggregate traffic stats: the stats
     closure holds all-drives *)
  let r = Cartel.request t ~path:"drives_top.php" ~user:3 () in
  Alcotest.(check bool) "stats page works" true (r.Web.status = `Ok);
  Alcotest.(check bool) "aggregates rendered" true (String.length r.Web.body > 0)

let test_cartel_friends_and_account () =
  let t, _ = cartel_with_data () in
  let r =
    Cartel.request t ~path:"friends.php" ~user:1 ~params:[ ("add", "3") ] ()
  in
  Alcotest.(check bool) "friends ok" true (r.Web.status = `Ok);
  (* the delegation went through: 3 can now view 1's drives *)
  let r2 =
    Cartel.request t ~path:"drives.php" ~user:3 ~params:[ ("target", "1") ] ()
  in
  Alcotest.(check bool) "new friend sees drives" true (r2.Web.status = `Ok);
  let r3 =
    Cartel.request t ~path:"edit_account.php" ~user:1
      ~params:[ ("email", "new@x") ] ()
  in
  Alcotest.(check bool) "account updated" true (r3.Web.status = `Ok)

let test_cartel_non_friend_blocked () =
  let t, _ = cartel_with_data () in
  let r =
    Cartel.request t ~path:"drives.php" ~user:3 ~params:[ ("target", "1") ] ()
  in
  (* the fixed script detects the missing friendship *)
  Alcotest.(check bool) "not a friend" true (r.Web.status = `Blocked)

let test_cartel_raw_locations_never_leave () =
  let t, _ = cartel_with_data () in
  (* drives pages show derived drives; the drive rows carry only the
     drives tag, so the friend never gains the location tag *)
  Cartel.befriend t ~owner:1 ~friend:2;
  let u1 = Cartel.user t 1 in
  let friend_s = Db.connect t.Cartel.db ~principal:(Cartel.user t 2).Cartel.principal in
  Db.add_secrecy friend_s u1.Cartel.drives_tag;
  Alcotest.(check int) "raw points invisible to friend" 0
    (List.length (Db.query friend_s "SELECT * FROM Locations"))

let test_cartel_baseline_mode () =
  (* ifc:false + plain platform: the buggy script leaks — that is the
     point of the comparison *)
  let t = Cartel.setup ~ifc:false ~if_platform:false ~users:2 ~cars_per_user:1 () in
  let points =
    List.map (fun p -> { p with Gps.car_id = p.Gps.car_id * 100 }) (small_trace 2)
  in
  Cartel.ingest_batch t points;
  let r =
    Cartel.request t ~path:"drives_noauthz.php" ~user:1 ~params:[ ("target", "0") ] ()
  in
  Alcotest.(check bool) "baseline leaks through the bug" true
    (r.Web.status = `Ok && String.length r.Web.body > 0)

(* ------------------------------------------------------------------ *)
(* HotCRP                                                              *)
(* ------------------------------------------------------------------ *)

let hotcrp_fixture () =
  let t = Hotcrp.setup () in
  let ada = Hotcrp.register t ~name:"ada" ~pc:true () in
  let bob = Hotcrp.register t ~name:"bob" ~pc:true () in
  let carol = Hotcrp.register t ~name:"carol" () in
  let paper = Hotcrp.submit_paper t ~author:carol ~title:"DIFC for Databases" in
  (* ada is conflicted with carol's paper *)
  Hotcrp.declare_conflict t ~paper ~who:ada;
  (t, ada, bob, carol, paper)

let test_hotcrp_pcmembers_view () =
  let t, _, _, carol, _ = hotcrp_fixture () in
  (* a plain author can list the PC through the declassifying view *)
  let s = Hotcrp.session t carol in
  Alcotest.(check (list string)) "pc names" [ "ada"; "bob"; "chair" ]
    (Hotcrp.pc_members_via_view s)

(* the leak the paper's port caught: any user could view the full
   contact information of all registered users *)
let test_hotcrp_contact_dump_blocked () =
  let t, _, _, carol, _ = hotcrp_fixture () in
  let s = Hotcrp.session t carol in
  let rows = Db.query s "SELECT email FROM ContactInfo" in
  (* carol sees only rows covered by her (empty) label: none *)
  Alcotest.(check int) "no contact rows" 0 (List.length rows)

let test_hotcrp_reviews_workflow () =
  let t, ada, bob, carol, paper = hotcrp_fixture () in
  ignore (Hotcrp.submit_review t ~reviewer:bob ~paper ~score:4 ~text:"accept");
  (* before the chair opens reviews, another PC member sees nothing *)
  Alcotest.(check (list int)) "ada sees nothing yet" []
    (Hotcrp.review_scores_visible_to t ada ~paper);
  Hotcrp.open_reviews_to_pc t;
  (* ada is conflicted: still nothing.  A non-conflicted PC member
     (the chair counts) sees the score *)
  Alcotest.(check (list int)) "conflicted ada still blind" []
    (Hotcrp.review_scores_visible_to t ada ~paper);
  Alcotest.(check (list int)) "chair sees score" [ 4 ]
    (Hotcrp.review_scores_visible_to t t.Hotcrp.chair ~paper);
  (* the author cannot see review internals *)
  Alcotest.(check (list int)) "author blind" []
    (Hotcrp.review_scores_visible_to t carol ~paper)

(* the past-bugs the paper reintroduced: papers sorted by status /
   search exposing decisions prematurely.  Under Query by Label the
   decision tuples simply do not come back. *)
let test_hotcrp_premature_decisions_hidden () =
  let t, _, bob, carol, paper = hotcrp_fixture () in
  Hotcrp.record_decision t ~paper ~accept:true;
  (* sorting/search style query run by the author: decision invisible *)
  let s = Hotcrp.session t carol in
  let rows =
    Db.query s
      "SELECT p.paperId, d.accepted FROM Papers p LEFT JOIN Decisions d ON \
       d.paperId = p.paperId ORDER BY d.accepted DESC"
  in
  (match rows with
  | [ row ] ->
      Alcotest.(check bool) "paper listed" true
        (Value.to_int (Tuple.get row 0) = paper);
      Alcotest.(check bool) "decision NULL" true (Value.is_null (Tuple.get row 1))
  | _ -> Alcotest.fail "expected exactly the author's paper");
  Alcotest.(check (list (pair int bool))) "no decisions visible" []
    (Hotcrp.visible_decisions t carol);
  (* a non-conflicted PC member doesn't see it either until release *)
  Alcotest.(check (list (pair int bool))) "bob cannot see either" []
    (Hotcrp.visible_decisions t bob);
  (* after the official release, the author sees it *)
  Hotcrp.release_decisions t;
  Alcotest.(check (list (pair int bool))) "released to author" [ (paper, true) ]
    (Hotcrp.visible_decisions t carol)

let test_hotcrp_baseline_leaks () =
  let t = Hotcrp.setup ~ifc:false () in
  let carol = Hotcrp.register t ~name:"carol" () in
  let _paper = Hotcrp.submit_paper t ~author:carol ~title:"x" in
  let eve = Hotcrp.register t ~name:"eve" () in
  let s = Hotcrp.session t eve in
  (* without IFC the contact dump works — the bug the paper found *)
  Alcotest.(check bool) "baseline exposes contacts" true
    (List.length (Db.query s "SELECT email FROM ContactInfo") >= 2)

let suites =
  [
    ( "apps.cartel",
      [
        Alcotest.test_case "ingest & drive segmentation" `Quick
          test_cartel_ingest_and_segmentation;
        Alcotest.test_case "owner sees own drives" `Quick
          test_cartel_owner_sees_own_drives;
        Alcotest.test_case "get_cars/cars" `Quick test_cartel_get_cars;
        Alcotest.test_case "friend delegation" `Quick test_cartel_friend_can_see_drives;
        Alcotest.test_case "URL tampering blocked (paper bug)" `Quick
          test_cartel_url_tampering_blocked;
        Alcotest.test_case "missing auth blocked (paper bug)" `Quick
          test_cartel_unauthenticated_blocked;
        Alcotest.test_case "drives_top authority closure" `Quick
          test_cartel_drives_top_closure;
        Alcotest.test_case "friends & account scripts" `Quick
          test_cartel_friends_and_account;
        Alcotest.test_case "non-friend blocked" `Quick test_cartel_non_friend_blocked;
        Alcotest.test_case "raw locations never leave" `Quick
          test_cartel_raw_locations_never_leave;
        Alcotest.test_case "baseline leaks (no IFC)" `Quick test_cartel_baseline_mode;
      ] );
    ( "apps.hotcrp",
      [
        Alcotest.test_case "PCMembers declassifying view" `Quick
          test_hotcrp_pcmembers_view;
        Alcotest.test_case "contact dump blocked (paper bug)" `Quick
          test_hotcrp_contact_dump_blocked;
        Alcotest.test_case "review tags workflow" `Quick test_hotcrp_reviews_workflow;
        Alcotest.test_case "premature decisions hidden (paper bugs)" `Quick
          test_hotcrp_premature_decisions_hidden;
        Alcotest.test_case "baseline leaks (no IFC)" `Quick test_hotcrp_baseline_leaks;
      ] );
  ]

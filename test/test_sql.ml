(* Tests for the SQL front end: lexer, parser, printer round-trips. *)

open Ifdb_sql
module Value = Ifdb_rel.Value
module Datatype = Ifdb_rel.Datatype

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let test_lexer_basics () =
  let toks = Lexer.tokenize "SELECT a, b2 FROM t WHERE x <= 3.5 -- comment\n AND y <> 'it''s'" in
  let expect =
    Token.
      [ Ident "SELECT"; Ident "a"; Comma; Ident "b2"; Ident "FROM"; Ident "t";
        Ident "WHERE"; Ident "x"; Le; Float_lit 3.5; Ident "AND"; Ident "y";
        Neq; String_lit "it's"; Eof ]
  in
  Alcotest.(check int) "token count" (List.length expect) (List.length toks);
  List.iter2
    (fun a b -> Alcotest.(check string) "token" (Token.to_string a) (Token.to_string b))
    expect toks

let test_lexer_operators () =
  let toks = Lexer.tokenize "( ) { } , . ; * + - / % = <> != < <= > >= ||" in
  Alcotest.(check int) "count" 21 (List.length toks);
  Alcotest.(check string) "neq both spellings" "<>"
    (Token.to_string (List.nth toks 14))

let test_lexer_exponents () =
  match Lexer.tokenize "1e3 2.5E-2 7" with
  | [ Token.Float_lit a; Token.Float_lit b; Token.Int_lit c; Token.Eof ] ->
      Alcotest.(check (float 0.0001)) "1e3" 1000.0 a;
      Alcotest.(check (float 0.0001)) "2.5e-2" 0.025 b;
      Alcotest.(check int) "7" 7 c
  | _ -> Alcotest.fail "bad token stream"

let test_lexer_errors () =
  (match Lexer.tokenize "'unterminated" with
  | exception Lexer.Lex_error _ -> ()
  | _ -> Alcotest.fail "expected Lex_error");
  match Lexer.tokenize "a ? b" with
  | exception Lexer.Lex_error _ -> ()
  | _ -> Alcotest.fail "expected Lex_error on ?"

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let p = Parser.parse_one
let pe = Parser.parse_expr

let test_parse_select_simple () =
  match p "SELECT * FROM PatientRecords WHERE condition <> 'cancer'" with
  | Ast.S_select s ->
      Alcotest.(check int) "one item" 1 (List.length s.Ast.items);
      Alcotest.(check bool) "star" true (List.hd s.Ast.items = Ast.Sel_star);
      (match s.Ast.from with
      | Some (Ast.T_table ("PatientRecords", None)) -> ()
      | _ -> Alcotest.fail "from");
      Alcotest.(check bool) "where present" true (s.Ast.where <> None)
  | _ -> Alcotest.fail "expected select"

let test_parse_select_full () =
  match
    p
      "SELECT DISTINCT d.uid, COUNT(*) AS n, AVG(speed) avgspeed \
       FROM drives d JOIN cars c ON d.carid = c.carid \
       LEFT OUTER JOIN friends f ON f.uid = d.uid \
       WHERE d.dist > 10 AND c.make LIKE 'Toy%' \
       GROUP BY d.uid HAVING COUNT(*) > 2 \
       ORDER BY n DESC, d.uid LIMIT 10 OFFSET 5"
  with
  | Ast.S_select s ->
      Alcotest.(check bool) "distinct" true s.Ast.distinct;
      Alcotest.(check int) "items" 3 (List.length s.Ast.items);
      (match List.nth s.Ast.items 2 with
      | Ast.Sel_expr (Ast.E_fn ("AVG", _), Some "avgspeed") -> ()
      | _ -> Alcotest.fail "bare alias");
      (match s.Ast.from with
      | Some (Ast.T_join (Ast.T_join (_, Ast.Inner, _, Some _), Ast.Left, _, Some _)) -> ()
      | _ -> Alcotest.fail "join tree shape");
      Alcotest.(check int) "group by" 1 (List.length s.Ast.group_by);
      Alcotest.(check bool) "having" true (s.Ast.having <> None);
      Alcotest.(check int) "order by" 2 (List.length s.Ast.order_by);
      Alcotest.(check (option int)) "limit" (Some 10) s.Ast.limit;
      Alcotest.(check (option int)) "offset" (Some 5) s.Ast.offset
  | _ -> Alcotest.fail "expected select"

let test_parse_from_comma () =
  match p "SELECT * FROM a, b WHERE a.x = b.x" with
  | Ast.S_select { Ast.from = Some (Ast.T_join (_, Ast.Inner, _, None)); _ } -> ()
  | _ -> Alcotest.fail "comma join"

let test_parse_subquery () =
  match p "SELECT n FROM (SELECT COUNT(*) AS n FROM t) AS sub" with
  | Ast.S_select { Ast.from = Some (Ast.T_subquery (_, "sub")); _ } -> ()
  | _ -> Alcotest.fail "subquery in FROM"

let test_parse_insert_declassifying () =
  match
    p "INSERT INTO Drives (carid, dist) VALUES (1, 2.5), (2, 3.5) \
       DECLASSIFYING (alice_drives, alice_cars)"
  with
  | Ast.S_insert { i_table = "Drives"; i_columns = Some [ "carid"; "dist" ];
                   i_rows; i_declassifying; i_select = None } ->
      Alcotest.(check int) "two rows" 2 (List.length i_rows);
      Alcotest.(check (list string)) "declassifying"
        [ "alice_drives"; "alice_cars" ] i_declassifying
  | _ -> Alcotest.fail "insert"

let test_parse_update_delete () =
  (match p "UPDATE t SET a = a + 1, b = 'x' WHERE id = 3" with
  | Ast.S_update { u_sets; u_where = Some _; _ } ->
      Alcotest.(check int) "two sets" 2 (List.length u_sets)
  | _ -> Alcotest.fail "update");
  match p "DELETE FROM t" with
  | Ast.S_delete { d_where = None; _ } -> ()
  | _ -> Alcotest.fail "delete"

let test_parse_create_table () =
  match
    p
      "CREATE TABLE HIVPatients (\
         patient_name TEXT NOT NULL, \
         patient_dob TEXT NOT NULL, \
         severity INT, \
         doctor INT REFERENCES doctors (id), \
         PRIMARY KEY (patient_name, patient_dob), \
         UNIQUE (severity), \
         FOREIGN KEY (doctor) REFERENCES doctors (id))"
  with
  | Ast.S_create_table { ct_name = "HIVPatients"; ct_columns; ct_constraints } ->
      Alcotest.(check int) "4 columns" 4 (List.length ct_columns);
      Alcotest.(check bool) "not null" true (List.hd ct_columns).Ast.cd_not_null;
      (* column-level REFERENCES plus the 3 table constraints *)
      Alcotest.(check int) "constraints" 4 (List.length ct_constraints)
  | _ -> Alcotest.fail "create table"

let test_parse_create_view_declassifying () =
  match
    p
      "CREATE VIEW PCMembers AS SELECT firstName, lastName FROM ContactInfo \
       WHERE IsPCMember(contactId) WITH DECLASSIFYING (all_contacts)"
  with
  | Ast.S_create_view { cv_name = "PCMembers"; cv_declassifying = [ "all_contacts" ]; _ } ->
      ()
  | _ -> Alcotest.fail "declassifying view"

let test_parse_misc_statements () =
  Alcotest.(check bool) "begin" true (p "BEGIN TRANSACTION" = Ast.S_begin);
  Alcotest.(check bool) "commit" true (p "COMMIT" = Ast.S_commit);
  Alcotest.(check bool) "rollback" true (p "ABORT" = Ast.S_rollback);
  (match p "PERFORM addsecrecy(alice_medical)" with
  | Ast.S_perform ("addsecrecy", [ Ast.E_col (None, "alice_medical") ]) -> ()
  | _ -> Alcotest.fail "perform");
  (match p "CREATE INDEX i ON t (a, b)" with
  | Ast.S_create_index { ci_cols = [ "a"; "b" ]; _ } -> ()
  | _ -> Alcotest.fail "index");
  match p "DROP VIEW v" with
  | Ast.S_drop (`View, "v") -> ()
  | _ -> Alcotest.fail "drop"

let test_parse_label_literal () =
  match pe "_label = {alice_medical, bob_medical}" with
  | Ast.E_binop (Ast.Eq, Ast.E_col (None, "_label"),
                 Ast.E_label_lit [ "alice_medical"; "bob_medical" ]) ->
      ()
  | _ -> Alcotest.fail "label literal"

let test_parse_precedence () =
  (* a OR b AND c = a OR (b AND c) *)
  (match pe "a OR b AND c" with
  | Ast.E_binop (Ast.Or, Ast.E_col (None, "a"), Ast.E_binop (Ast.And, _, _)) -> ()
  | _ -> Alcotest.fail "or/and");
  (* 1 + 2 * 3 *)
  (match pe "1 + 2 * 3" with
  | Ast.E_binop (Ast.Add, _, Ast.E_binop (Ast.Mul, _, _)) -> ()
  | _ -> Alcotest.fail "add/mul");
  (* NOT a = b  parses as NOT (a = b) *)
  (match pe "NOT a = b" with
  | Ast.E_not (Ast.E_binop (Ast.Eq, _, _)) -> ()
  | _ -> Alcotest.fail "not binds loosely");
  (* x NOT IN (1,2) *)
  (match pe "x NOT IN (1, 2)" with
  | Ast.E_not (Ast.E_in _) -> ()
  | _ -> Alcotest.fail "not in");
  (* -3 folds *)
  match pe "-3" with
  | Ast.E_const (Value.Int (-3)) -> ()
  | _ -> Alcotest.fail "negative literal folding"

let test_parse_multi () =
  let stmts = Parser.parse "BEGIN; INSERT INTO t VALUES (1); COMMIT;" in
  Alcotest.(check int) "three statements" 3 (List.length stmts)

let test_parse_errors () =
  (* note: keywords are not reserved, so "SELECT FROM" parses as a
     projection of a column named FROM — deliberate, as in the lexer *)
  let bad = [ "INSERT t VALUES (1)"; "CREATE BLOB x";
              "SELECT * FROM t WHERE"; "UPDATE t SET"; "" ] in
  List.iter
    (fun sql ->
      match Parser.parse_one sql with
      | exception Parser.Parse_error _ -> ()
      | exception Lexer.Lex_error _ -> ()
      | _ -> Alcotest.failf "should not parse: %s" sql)
    bad

(* ------------------------------------------------------------------ *)
(* Printer round-trip                                                  *)
(* ------------------------------------------------------------------ *)

let roundtrip_stmt sql =
  let ast = Parser.parse_one sql in
  let printed = Printer.stmt_to_string ast in
  let ast2 = Parser.parse_one printed in
  if ast <> ast2 then
    Alcotest.failf "round-trip changed AST:\n  %s\n  -> %s\n  -> %s" sql printed
      (Printer.stmt_to_string ast2)

let test_roundtrip_corpus () =
  List.iter roundtrip_stmt
    [
      "SELECT * FROM t";
      "SELECT a, b AS c, t.d FROM t WHERE a = 1 AND b <> 'x' ORDER BY a DESC LIMIT 3";
      "SELECT DISTINCT x + 1 AS y FROM t GROUP BY x HAVING COUNT(*) > 1";
      "SELECT t.* FROM t";
      "SELECT a FROM t1 JOIN t2 ON t1.x = t2.x LEFT JOIN t3 ON t3.y = t1.y";
      "SELECT n FROM (SELECT COUNT(*) AS n FROM t) AS s";
      "SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t";
      "SELECT * FROM t WHERE a IN (1, 2, 3) AND b LIKE 'x%' AND c IS NOT NULL";
      "SELECT * FROM t WHERE _label = {a_tag, b_tag}";
      "SELECT * FROM t WHERE _label = {}";
      "INSERT INTO t VALUES (1, 'a', NULL, TRUE, 2.5)";
      "INSERT INTO t (a, b) VALUES (1, 2), (3, 4) DECLASSIFYING (tag1)";
      "UPDATE t SET a = a + 1 WHERE b = 2";
      "DELETE FROM t WHERE x IS NULL";
      "CREATE TABLE t (a INT NOT NULL, b TEXT, PRIMARY KEY (a))";
      "CREATE VIEW v AS SELECT a FROM t WITH DECLASSIFYING (x)";
      "CREATE INDEX i ON t (a)";
      "DROP TABLE t";
      "BEGIN";
      "COMMIT";
      "ROLLBACK";
      "PERFORM declassify(foo)";
      "SELECT COUNT(DISTINCT a) FROM t GROUP BY b";
      "SELECT a FROM t UNION SELECT b FROM u";
      "SELECT a FROM t UNION ALL SELECT b FROM u ORDER BY a LIMIT 2";
      "INSERT INTO t (a) SELECT b FROM u WHERE b > 1";
      "SELECT * FROM t WHERE a = (SELECT MAX(b) FROM u)";
      "SELECT * FROM t WHERE EXISTS (SELECT * FROM u WHERE u.b = 1)";
    ]

(* Property: generated expressions survive print → parse. *)
let gen_expr : Ast.expr QCheck.Gen.t =
  let open QCheck.Gen in
  let ident = oneofl [ "a"; "b"; "c"; "xyz" ] in
  let const =
    oneof
      [
        map (fun i -> Ast.E_const (Value.Int i)) (int_range (-50) 50);
        map (fun s -> Ast.E_const (Value.Text s))
          (string_size ~gen:(oneofl [ 'a'; 'b'; '\'' ]) (int_bound 4));
        return (Ast.E_const Value.Null);
        return (Ast.E_const (Value.Bool true));
        map (fun (q, c) -> Ast.E_col (q, c)) (pair (option ident) ident);
        map (fun tags -> Ast.E_label_lit tags) (list_size (int_bound 3) ident);
      ]
  in
  let binop =
    oneofl
      Ast.[ Add; Sub; Mul; Div; Mod; Eq; Neq; Lt; Le; Gt; Ge; And; Or; Concat ]
  in
  fix
    (fun self depth ->
      if depth = 0 then const
      else
        frequency
          [
            (2, const);
            (3, map3 (fun op a b -> Ast.E_binop (op, a, b)) binop (self (depth - 1))
                 (self (depth - 1)));
            (1, map (fun e -> Ast.E_not e) (self (depth - 1)));
            (1, map (fun e -> Ast.E_is_null e) (self (depth - 1)));
            (1, map (fun e -> Ast.E_is_not_null e) (self (depth - 1)));
            (1, map2 (fun e vs -> Ast.E_in (e, vs)) (self (depth - 1))
                 (list_size (int_range 1 3) (self 0)));
            (1, map2 (fun e p -> Ast.E_like (e, p)) (self (depth - 1))
                 (string_size ~gen:(oneofl [ 'a'; '%'; '_' ]) (int_bound 4)));
            (1, map2 (fun name args -> Ast.E_fn (name, args)) ident
                 (list_size (int_bound 2) (self (depth - 1))));
            (1, return Ast.E_count_star);
            (1, map2 (fun branches default -> Ast.E_case (branches, default))
                 (list_size (int_range 1 2)
                    (pair (self (depth - 1)) (self (depth - 1))))
                 (option (self (depth - 1))));
          ])
    3

let expr_roundtrip_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:1000 ~name:"expr print/parse round-trip"
       (QCheck.make ~print:Printer.expr_to_string gen_expr)
       (fun e ->
         let printed = Printer.expr_to_string e in
         match Parser.parse_expr printed with
         | e2 -> e = e2
         | exception _ -> false))

(* Fuzz: arbitrary byte soup and keyword soup must produce a typed
   error or a parse — never a crash or non-termination. *)
let fuzz_gibberish_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:2000 ~name:"parser survives gibberish"
       (QCheck.make ~print:(Printf.sprintf "%S")
          QCheck.Gen.(string_size ~gen:(char_range '\x20' '\x7e') (int_bound 60)))
       (fun input ->
         match Parser.parse input with
         | _ -> true
         | exception Parser.Parse_error _ -> true
         | exception Lexer.Lex_error _ -> true))

let fuzz_token_soup_prop =
  let vocab =
    [| "SELECT"; "FROM"; "WHERE"; "INSERT"; "INTO"; "VALUES"; "UPDATE"; "SET";
       "DELETE"; "JOIN"; "LEFT"; "ON"; "GROUP"; "BY"; "ORDER"; "HAVING";
       "LIMIT"; "UNION"; "ALL"; "EXISTS"; "BETWEEN"; "AND"; "OR"; "NOT";
       "NULL"; "CASE"; "WHEN"; "THEN"; "END"; "DECLASSIFYING"; "WITH"; "AS";
       "t"; "u"; "a"; "b"; "("; ")"; ","; "="; "<"; ">"; "*"; "+"; "-"; "{";
       "}"; "'x'"; "1"; "2.5"; "_label" |]
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:2000 ~name:"parser survives keyword soup"
       (QCheck.make
          ~print:(fun ws -> String.concat " " ws)
          QCheck.Gen.(
            list_size (int_bound 25)
              (map (fun i -> vocab.(i)) (int_bound (Array.length vocab - 1)))))
       (fun words ->
         match Parser.parse (String.concat " " words) with
         | _ -> true
         | exception Parser.Parse_error _ -> true
         | exception Lexer.Lex_error _ -> true))

let suites =
  [
    ( "sql.lexer",
      [
        Alcotest.test_case "basics" `Quick test_lexer_basics;
        Alcotest.test_case "operators" `Quick test_lexer_operators;
        Alcotest.test_case "exponents" `Quick test_lexer_exponents;
        Alcotest.test_case "errors" `Quick test_lexer_errors;
      ] );
    ( "sql.parser",
      [
        Alcotest.test_case "simple select" `Quick test_parse_select_simple;
        Alcotest.test_case "full select" `Quick test_parse_select_full;
        Alcotest.test_case "comma joins" `Quick test_parse_from_comma;
        Alcotest.test_case "subquery in FROM" `Quick test_parse_subquery;
        Alcotest.test_case "insert declassifying" `Quick test_parse_insert_declassifying;
        Alcotest.test_case "update/delete" `Quick test_parse_update_delete;
        Alcotest.test_case "create table" `Quick test_parse_create_table;
        Alcotest.test_case "declassifying view" `Quick
          test_parse_create_view_declassifying;
        Alcotest.test_case "misc statements" `Quick test_parse_misc_statements;
        Alcotest.test_case "label literal" `Quick test_parse_label_literal;
        Alcotest.test_case "precedence" `Quick test_parse_precedence;
        Alcotest.test_case "multi-statement" `Quick test_parse_multi;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
      ] );
    ( "sql.printer",
      [
        Alcotest.test_case "statement corpus round-trip" `Quick test_roundtrip_corpus;
        expr_roundtrip_prop;
        fuzz_gibberish_prop;
        fuzz_token_soup_prop;
      ] );
  ]

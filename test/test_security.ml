(* Security-focused tests: an executable noninterference property (the
   paper lists noninterference proofs as future work, section 10 — here
   it is a randomized check), plus covert-channel regressions for the
   specific channels sections 4-5 close. *)

module Db = Ifdb_core.Database
module Errors = Ifdb_core.Errors
module Label = Ifdb_difc.Label
module Tag = Ifdb_difc.Tag
module Value = Ifdb_rel.Value
module Tuple = Ifdb_rel.Tuple

(* ------------------------------------------------------------------ *)
(* Noninterference: high-labeled activity must not change what an
   uncontaminated observer can see.                                    *)
(* ------------------------------------------------------------------ *)

(* The worlds interleave low operations (empty label) and high
   operations (label {h}).  Running the same low trace with and without
   the high operations must produce identical low observations. *)

type op =
  | Low_insert of int * int
  | Low_update of int * int          (* key, new value *)
  | Low_delete of int
  | Low_observe                       (* snapshot what low sees *)
  | High_insert of int * int          (* may polyinstantiate low keys *)
  | High_update of int * int
  | High_delete of int
  | High_select                       (* reads contaminate only high *)
  | High_commit_attempt               (* txn that fails the commit-label rule *)

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map2 (fun k v -> Low_insert (k, v)) (int_range 0 9) (int_range 0 99));
        (2, map2 (fun k v -> Low_update (k, v)) (int_range 0 9) (int_range 0 99));
        (1, map (fun k -> Low_delete k) (int_range 0 9));
        (3, return Low_observe);
        (3, map2 (fun k v -> High_insert (k, v)) (int_range 0 9) (int_range 0 99));
        (2, map2 (fun k v -> High_update (k, v)) (int_range 0 9) (int_range 0 99));
        (1, map (fun k -> High_delete k) (int_range 0 9));
        (1, return High_select);
        (1, return High_commit_attempt);
      ])

let print_op = function
  | Low_insert (k, v) -> Printf.sprintf "Li(%d,%d)" k v
  | Low_update (k, v) -> Printf.sprintf "Lu(%d,%d)" k v
  | Low_delete k -> Printf.sprintf "Ld(%d)" k
  | Low_observe -> "Lo"
  | High_insert (k, v) -> Printf.sprintf "Hi(%d,%d)" k v
  | High_update (k, v) -> Printf.sprintf "Hu(%d,%d)" k v
  | High_delete k -> Printf.sprintf "Hd(%d)" k
  | High_select -> "Hs"
  | High_commit_attempt -> "Hc"

type world = {
  w_low : Db.session;
  w_high : Db.session;
  w_htag : Tag.t;
}

let make_world () =
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let low_p = Db.create_principal admin ~name:"low" in
  let high_p = Db.create_principal admin ~name:"high" in
  let high_s = Db.connect db ~principal:high_p in
  let htag = Db.create_tag high_s ~name:"h" () in
  Db.add_secrecy high_s htag;
  ignore
    (Db.exec admin "CREATE TABLE T (k INT PRIMARY KEY, v INT)");
  { w_low = Db.connect db ~principal:low_p; w_high = high_s; w_htag = htag }

let swallow f =
  (* both worlds tolerate expected refusals; what matters is the low
     observation stream *)
  match f () with
  | (_ : Db.result) -> ()
  | exception Errors.Constraint_violation _ -> ()
  | exception Errors.Flow_violation _ -> ()
  | exception Errors.Authority_required _ -> ()

let observe w =
  List.map
    (fun row -> Array.to_list (Array.map Value.to_string (Tuple.values row)))
    (Db.query w.w_low "SELECT k, v FROM T ORDER BY k, v")

let run_op ~with_high w op observations =
  match op with
  | Low_insert (k, v) ->
      swallow (fun () ->
          Db.exec w.w_low (Printf.sprintf "INSERT INTO T VALUES (%d, %d)" k v))
  | Low_update (k, v) ->
      swallow (fun () ->
          Db.exec w.w_low (Printf.sprintf "UPDATE T SET v = %d WHERE k = %d" v k))
  | Low_delete k ->
      swallow (fun () ->
          Db.exec w.w_low (Printf.sprintf "DELETE FROM T WHERE k = %d" k))
  | Low_observe -> observations := observe w :: !observations
  | High_insert (k, v) ->
      if with_high then
        swallow (fun () ->
            Db.exec w.w_high (Printf.sprintf "INSERT INTO T VALUES (%d, %d)" k v))
  | High_update (k, v) ->
      if with_high then
        swallow (fun () ->
            Db.exec w.w_high
              (Printf.sprintf "UPDATE T SET v = %d WHERE k = %d" v k))
  | High_delete k ->
      if with_high then
        swallow (fun () ->
            Db.exec w.w_high (Printf.sprintf "DELETE FROM T WHERE k = %d" k))
  | High_select ->
      if with_high then
        swallow (fun () -> Db.exec w.w_high "SELECT COUNT(*) FROM T")
  | High_commit_attempt ->
      if with_high then begin
        (* the section 5.1 pattern: write low, raise, try to commit *)
        let s = w.w_high in
        swallow (fun () ->
            ignore (Db.exec s "BEGIN");
            (* already at {h}: writes carry {h}; then observe and
               commit — legal but must stay invisible to low *)
            ignore (Db.exec s "INSERT INTO T VALUES (100, 1)");
            ignore (Db.exec s "SELECT * FROM T");
            Db.exec s "COMMIT")
      end

let noninterference_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"high activity invisible to low observers"
       (QCheck.make
          ~print:(fun ops -> String.concat " " (List.map print_op ops))
          QCheck.Gen.(list_size (int_bound 40) op_gen))
       (fun ops ->
         let w1 = make_world () in
         let w2 = make_world () in
         let obs1 = ref [] and obs2 = ref [] in
         List.iter (fun op -> run_op ~with_high:true w1 op obs1) ops;
         List.iter (fun op -> run_op ~with_high:false w2 op obs2) ops;
         !obs1 = !obs2))

(* ------------------------------------------------------------------ *)
(* Covert-channel regressions                                          *)
(* ------------------------------------------------------------------ *)

let fixture () =
  let w = make_world () in
  (* one hidden row and one public row *)
  ignore (Db.exec w.w_high "INSERT INTO T VALUES (1, 111)");
  ignore (Db.exec w.w_low "INSERT INTO T VALUES (2, 222)");
  w

let test_aggregates_do_not_count_hidden () =
  let w = fixture () in
  let row = Db.query_one w.w_low "SELECT COUNT(*), SUM(v) FROM T" in
  Alcotest.(check int) "count" 1 (Value.to_int (Tuple.get row 0));
  Alcotest.(check int) "sum" 222 (Value.to_int (Tuple.get row 1))

let test_update_delete_report_zero_for_hidden () =
  let w = fixture () in
  (match Db.exec w.w_low "UPDATE T SET v = 0 WHERE k = 1" with
  | Db.Affected 0 -> ()
  | _ -> Alcotest.fail "hidden row must not be updatable or counted");
  match Db.exec w.w_low "DELETE FROM T WHERE k = 1" with
  | Db.Affected 0 -> ()
  | _ -> Alcotest.fail "hidden row must not be deletable or counted"

let test_unique_probe_does_not_reveal () =
  let w = fixture () in
  (* inserting the hidden key must succeed (polyinstantiation) — a
     refusal would reveal the hidden row's existence *)
  match Db.exec w.w_low "INSERT INTO T VALUES (1, 999)" with
  | Db.Affected 1 -> ()
  | _ -> Alcotest.fail "unique probe revealed the hidden row"

let test_negative_queries_confined () =
  let w = fixture () in
  (* the section 4.2 example: asking for rows NOT matching something
     cannot reveal hidden rows either *)
  Alcotest.(check int) "negation confined" 1
    (List.length (Db.query w.w_low "SELECT * FROM T WHERE k <> 99"));
  Alcotest.(check int) "IS NOT NULL confined" 1
    (List.length (Db.query w.w_low "SELECT * FROM T WHERE v IS NOT NULL"))

let test_ordering_not_observable () =
  (* results are orderable only by visible values; physical placement
     of hidden tuples between visible ones must not matter *)
  let w = make_world () in
  ignore (Db.exec w.w_low "INSERT INTO T VALUES (0, 0)");
  ignore (Db.exec w.w_high "INSERT INTO T VALUES (5, 5)");
  ignore (Db.exec w.w_low "INSERT INTO T VALUES (9, 9)");
  let keys =
    List.map
      (fun r -> Value.to_int (Tuple.get r 0))
      (Db.query w.w_low "SELECT k FROM T ORDER BY k")
  in
  Alcotest.(check (list int)) "only visible keys, in order" [ 0; 9 ] keys

let test_error_messages_no_hidden_content () =
  let w = fixture () in
  (* when low's insert is refused for a VISIBLE conflict, the message
     may name the constraint — never values of other rows *)
  match Db.exec w.w_low "INSERT INTO T VALUES (2, 0)" with
  | exception Errors.Constraint_violation msg ->
      Alcotest.(check bool) "no row contents in message" false
        (let contains s sub =
           let n = String.length s and m = String.length sub in
           let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
           go 0
         in
         contains msg "222" || contains msg "111")
  | _ -> Alcotest.fail "visible duplicate should be refused"

let test_id_allocation_channel () =
  (* section 7.3: tag/principal ids must not form a predictable
     sequence that reveals allocation order *)
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let p = Db.create_principal admin ~name:"p" in
  let s = Db.connect db ~principal:p in
  let ids =
    List.init 20 (fun i ->
        Tag.to_int (Db.create_tag s ~name:(Printf.sprintf "t%d" i) ()))
  in
  let deltas =
    List.map2 (fun a b -> b - a)
      (List.filteri (fun i _ -> i < 19) ids)
      (List.tl ids)
  in
  (* a counter would produce constant small deltas *)
  Alcotest.(check bool) "non-sequential ids" true
    (List.exists (fun d -> abs d > 1000) deltas);
  let distinct = List.sort_uniq Int.compare deltas in
  Alcotest.(check bool) "deltas vary" true (List.length distinct > 10)

(* Invariant: for any observer, no two VISIBLE tuples ever share both a
   key and a label — polyinstantiated duplicates are always
   distinguishable by label (section 5.2.1). *)
let polyinstantiation_invariant_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40
       ~name:"visible duplicates always differ in label"
       (QCheck.make
          ~print:(fun ops ->
            String.concat " "
              (List.map (fun (h, k, v) ->
                   Printf.sprintf "%s(%d,%d)" (if h then "H" else "L") k v)
                 ops))
          QCheck.Gen.(
            list_size (int_bound 30)
              (triple bool (int_range 0 5) (int_range 0 99))))
       (fun ops ->
         let w = make_world () in
         List.iter
           (fun (high, k, v) ->
             let s = if high then w.w_high else w.w_low in
             swallow (fun () ->
                 Db.exec s (Printf.sprintf "INSERT INTO T VALUES (%d, %d)" k v)))
           ops;
         (* check from the high observer, who can see everything *)
         let rows = Db.query w.w_high "SELECT k FROM T" in
         let seen = Hashtbl.create 16 in
         List.for_all
           (fun row ->
             let key =
               (Value.to_int (Tuple.get row 0), Label.to_ints (Tuple.label row))
             in
             if Hashtbl.mem seen key then false
             else begin
               Hashtbl.add seen key ();
               true
             end)
           rows))

let suites =
  [
    ("security.noninterference",
     [ noninterference_prop; polyinstantiation_invariant_prop ]);
    ( "security.channels",
      [
        Alcotest.test_case "aggregates skip hidden rows" `Quick
          test_aggregates_do_not_count_hidden;
        Alcotest.test_case "DML counts exclude hidden rows" `Quick
          test_update_delete_report_zero_for_hidden;
        Alcotest.test_case "unique probe reveals nothing" `Quick
          test_unique_probe_does_not_reveal;
        Alcotest.test_case "negative queries confined" `Quick
          test_negative_queries_confined;
        Alcotest.test_case "physical order not observable" `Quick
          test_ordering_not_observable;
        Alcotest.test_case "errors carry no hidden content" `Quick
          test_error_messages_no_hidden_content;
        Alcotest.test_case "id allocation channel closed" `Quick
          test_id_allocation_channel;
      ] );
  ]

(* Tests for the label store: hash-consed label interning, the
   memoized flow cache and its generation-stamped invalidation, and
   the end-to-end behaviour of interned labels under polyinstantiation
   and authority changes. *)

open Ifdb_difc
module Db = Ifdb_core.Database
module Errors = Ifdb_core.Errors
module Value = Ifdb_rel.Value
module Tuple = Ifdb_rel.Tuple

let lbl ints = Label.of_ints (Array.of_list ints)

let mk_auth () =
  let a = Authority.create () in
  let p name = Authority.create_principal a ~actor_label:Label.empty ~name in
  (a, p)

let mk_tag a ?compounds owner name =
  Authority.create_tag a ~actor_label:Label.empty ~owner ~name ?compounds ()

(* ------------------------------------------------------------------ *)
(* Interning                                                           *)
(* ------------------------------------------------------------------ *)

let test_intern_dedup () =
  let a, _ = mk_auth () in
  let store = Label_store.create a in
  Alcotest.(check int) "empty is id 0" Label_store.empty_id
    (Label_store.intern store Label.empty);
  Alcotest.(check int) "empty_id is 0" 0 Label_store.empty_id;
  let id1 = Label_store.intern store (lbl [ 1; 2 ]) in
  let id2 = Label_store.intern store (lbl [ 3 ]) in
  let id1' = Label_store.intern store (lbl [ 1; 2 ]) in
  Alcotest.(check int) "same label, same id" id1 id1';
  Alcotest.(check bool) "distinct labels, distinct ids" true (id1 <> id2);
  (* ids are dense, in interning order, starting after the empty slot *)
  Alcotest.(check int) "first id" 1 id1;
  Alcotest.(check int) "second id" 2 id2;
  Alcotest.(check int) "size counts empty + 2" 3 (Label_store.size store);
  Alcotest.(check int) "stats agree" 3 (Label_store.stats store).interned

let test_intern_canonical () =
  let a, _ = mk_auth () in
  let store = Label_store.create a in
  let id = Label_store.intern store (lbl [ 4; 7 ]) in
  let c1 = Label_store.label_of store id in
  let c2 = Label_store.label_of store id in
  Alcotest.(check bool) "label_of returns the shared value" true (c1 == c2);
  Alcotest.(check bool) "canonical equals the interned label" true
    (Label.equal c1 (lbl [ 4; 7 ]));
  (match Label_store.label_of store 999 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown id should raise");
  match Label_store.label_of store (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative id should raise"

let test_intern_many_growth () =
  (* exceed the initial table capacity to exercise array growth *)
  let a, _ = mk_auth () in
  let store = Label_store.create a in
  let ids =
    List.init 200 (fun i -> Label_store.intern store (lbl [ i + 1; 1000 ]))
  in
  List.iteri
    (fun i id ->
      Alcotest.(check bool) "roundtrip after growth" true
        (Label.equal (lbl [ i + 1; 1000 ]) (Label_store.label_of store id)))
    ids;
  Alcotest.(check int) "all distinct" 201 (Label_store.size store)

(* ------------------------------------------------------------------ *)
(* Flow cache: correctness, memoization, short circuits                *)
(* ------------------------------------------------------------------ *)

let test_flows_id_matches_authority () =
  let a, p = mk_auth () in
  let sys = p "system" and alice = p "alice" in
  let all = mk_tag a sys "all_drives" in
  let mine = mk_tag a ~compounds:[ all ] alice "alice_drives" in
  let store = Label_store.create a in
  let check src dst msg =
    let sid = Label_store.intern store src
    and did = Label_store.intern store dst in
    Alcotest.(check bool) msg
      (Authority.flows a ~src ~dst)
      (Label_store.flows_id store ~src:sid ~dst:did);
    (* and again, through the cache *)
    Alcotest.(check bool) (msg ^ " (cached)")
      (Authority.flows a ~src ~dst)
      (Label_store.flows_id store ~src:sid ~dst:did)
  in
  check (Label.singleton mine) (Label.singleton all) "member -> compound";
  check (Label.singleton all) (Label.singleton mine) "no reverse flow";
  check Label.empty (Label.singleton all) "public flows anywhere";
  check (Label.singleton mine) Label.empty "contaminated does not flow to public";
  check
    (Label.of_list [ mine; all ])
    (Label.singleton all)
    "mixed label flows via compound"

let test_flow_memoization_stats () =
  let a, p = mk_auth () in
  let alice = p "alice" in
  let t1 = mk_tag a alice "t1" and t2 = mk_tag a alice "t2" in
  let store = Label_store.create a in
  let src = Label_store.intern store (Label.singleton t1) in
  let dst = Label_store.intern store (Label.of_list [ t1; t2 ]) in
  ignore (Label_store.flows_id store ~src ~dst);
  let s1 = Label_store.stats store in
  Alcotest.(check int) "first probe misses" 1 s1.flow_misses;
  Alcotest.(check int) "no hit yet" 0 s1.flow_hits;
  ignore (Label_store.flows_id store ~src ~dst);
  ignore (Label_store.flows_id store ~src ~dst);
  let s2 = Label_store.stats store in
  Alcotest.(check int) "repeats hit" 2 s2.flow_hits;
  Alcotest.(check int) "still one miss" 1 s2.flow_misses;
  (* src = dst and empty src short-circuit without touching the cache *)
  Label_store.reset_stats store;
  Alcotest.(check bool) "refl" true (Label_store.flows_id store ~src ~dst:src);
  Alcotest.(check bool) "empty src" true
    (Label_store.flows_id store ~src:Label_store.empty_id ~dst);
  let s3 = Label_store.stats store in
  Alcotest.(check int) "no misses" 0 s3.flow_misses;
  Alcotest.(check int) "no hits" 0 s3.flow_hits

let test_flow_cache_disabled () =
  let a, p = mk_auth () in
  let alice = p "alice" in
  let t1 = mk_tag a alice "t1" and t2 = mk_tag a alice "t2" in
  let store = Label_store.create ~flow_cache:false a in
  let src = Label_store.intern store (Label.singleton t1) in
  let dst = Label_store.intern store (Label.of_list [ t1; t2 ]) in
  for _ = 1 to 5 do
    Alcotest.(check bool) "verdict still correct" true
      (Label_store.flows_id store ~src ~dst)
  done;
  let s = Label_store.stats store in
  Alcotest.(check int) "every probe recomputes" 5 s.flow_misses;
  Alcotest.(check int) "never hits" 0 s.flow_hits

(* ------------------------------------------------------------------ *)
(* Invalidation: any authority-state mutation drops cached verdicts    *)
(* ------------------------------------------------------------------ *)

(* Prime the cache with one (src, dst) verdict, run [mutate], and
   check the next probe recomputes instead of hitting. *)
let check_invalidates name mutate =
  let a, p = mk_auth () in
  let alice = p "alice" and bob = p "bob" in
  let t1 = mk_tag a alice "t1" and t2 = mk_tag a alice "t2" in
  let store = Label_store.create a in
  let src = Label_store.intern store (Label.singleton t1) in
  let dst = Label_store.intern store (Label.of_list [ t1; t2 ]) in
  ignore (Label_store.flows_id store ~src ~dst);
  ignore (Label_store.flows_id store ~src ~dst);
  let before = Label_store.stats store in
  Alcotest.(check int) (name ^ ": primed") 1 before.flow_hits;
  mutate a ~alice ~bob ~t1;
  ignore (Label_store.flows_id store ~src ~dst);
  let after = Label_store.stats store in
  Alcotest.(check int) (name ^ ": probe after mutation recomputes") 2
    after.flow_misses;
  Alcotest.(check int) (name ^ ": no new hit") 1 after.flow_hits;
  Alcotest.(check int) (name ^ ": invalidation recorded") 1 after.invalidations;
  (* and the cache re-fills for the new generation *)
  ignore (Label_store.flows_id store ~src ~dst);
  Alcotest.(check int) (name ^ ": warm again")
    2 (Label_store.stats store).flow_hits

let test_invalidate_on_compound_creation () =
  check_invalidates "compound tag creation" (fun a ~alice ~bob:_ ~t1 ->
      ignore (mk_tag a ~compounds:[ t1 ] alice "late_member"))

let test_invalidate_on_delegation () =
  check_invalidates "delegation" (fun a ~alice ~bob ~t1 ->
      Authority.delegate a ~actor:alice ~actor_label:Label.empty ~tag:t1
        ~grantee:bob)

let test_invalidate_on_revocation () =
  check_invalidates "revocation" (fun a ~alice ~bob ~t1 ->
      Authority.delegate a ~actor:alice ~actor_label:Label.empty ~tag:t1
        ~grantee:bob;
      (* two generation bumps with no probe in between collapse into
         the single wholesale invalidation the next probe observes *)
      Authority.revoke a ~actor:alice ~actor_label:Label.empty ~tag:t1
        ~grantee:bob)

(* ------------------------------------------------------------------ *)
(* End-to-end: database scans go through the store                     *)
(* ------------------------------------------------------------------ *)

(* CarTel-flavoured fixture: rows labeled {user_tag}, read by an
   analyst whose label carries the covering compound tag. *)
let scan_fixture () =
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let all = Db.create_tag admin ~name:"all_drives" () in
  let user = Db.create_tag admin ~name:"user_drives" ~compounds:[ all ] () in
  ignore (Db.exec admin "CREATE TABLE drives (id INT PRIMARY KEY, mi INT)");
  let writer = Db.connect_admin db in
  Db.add_secrecy writer user;
  ignore (Db.exec writer "INSERT INTO drives VALUES (1, 10), (2, 20), (3, 30)");
  let analyst = Db.connect_admin db in
  Db.add_secrecy analyst all;
  (db, admin, analyst, user)

let count_rows s sql = List.length (Db.query s sql)

let test_db_scans_hit_flow_cache () =
  let db, _, analyst, _ = scan_fixture () in
  let store = Db.label_store db in
  Label_store.reset_stats store;
  Alcotest.(check int) "sees all rows" 3
    (count_rows analyst "SELECT * FROM drives");
  let s1 = Label_store.stats store in
  Alcotest.(check bool) "first scan derives at least one verdict" true
    (s1.flow_misses >= 1);
  Alcotest.(check int) "verdicts per distinct label pair, not per tuple" 1
    s1.flow_misses;
  Label_store.reset_stats store;
  Alcotest.(check int) "again" 3 (count_rows analyst "SELECT * FROM drives");
  let s2 = Label_store.stats store in
  Alcotest.(check int) "second scan answers from the cache" 0 s2.flow_misses;
  Alcotest.(check bool) "and records a hit" true (s2.flow_hits >= 1)

let test_db_invalidation_after_compound_creation () =
  let db, admin, analyst, user = scan_fixture () in
  let store = Db.label_store db in
  ignore (count_rows analyst "SELECT * FROM drives");
  Label_store.reset_stats store;
  ignore (count_rows analyst "SELECT * FROM drives");
  Alcotest.(check int) "warm before mutation" 0
    (Label_store.stats store).flow_misses;
  (* authority change: a new compound tag moves the generation *)
  ignore (Db.create_tag admin ~name:"other_compound" ~compounds:[ user ] ());
  Label_store.reset_stats store;
  Alcotest.(check int) "query still correct" 3
    (count_rows analyst "SELECT * FROM drives");
  let s = Label_store.stats store in
  Alcotest.(check bool) "cached verdict was dropped and rederived" true
    (s.flow_misses >= 1)

let test_db_invalidation_after_revocation () =
  let db, admin, analyst, user = scan_fixture () in
  let store = Db.label_store db in
  let p = Db.create_principal admin ~name:"aide" in
  Db.delegate admin ~tag:user ~grantee:p;
  ignore (count_rows analyst "SELECT * FROM drives");
  Label_store.reset_stats store;
  ignore (count_rows analyst "SELECT * FROM drives");
  Alcotest.(check int) "warm before revoke" 0
    (Label_store.stats store).flow_misses;
  Db.revoke admin ~tag:user ~grantee:p;
  Label_store.reset_stats store;
  Alcotest.(check int) "query still correct" 3
    (count_rows analyst "SELECT * FROM drives");
  let s = Label_store.stats store in
  Alcotest.(check bool) "revocation dropped the cached verdict" true
    (s.flow_misses >= 1)

(* ------------------------------------------------------------------ *)
(* Polyinstantiation with interning                                    *)
(* ------------------------------------------------------------------ *)

let poly_fixture ~label_cache =
  let db = Db.create ~label_cache () in
  let admin = Db.connect_admin db in
  let ta = Db.create_tag admin ~name:"a" () in
  let tb = Db.create_tag admin ~name:"b" () in
  ignore (Db.exec admin "CREATE TABLE t (k INT PRIMARY KEY, v INT)");
  let sa = Db.connect_admin db in
  Db.add_secrecy sa ta;
  let sb = Db.connect_admin db in
  Db.add_secrecy sb tb;
  (db, admin, sa, sb, ta, tb)

let run_poly_checks ~label_cache () =
  let _, admin, sa, sb, ta, tb = poly_fixture ~label_cache in
  (* the same user-visible key under two labels: both inserts land *)
  ignore (Db.exec sa "INSERT INTO t VALUES (1, 100)");
  ignore (Db.exec sb "INSERT INTO t VALUES (1, 200)");
  ignore (Db.exec sa "INSERT INTO t VALUES (2, 101)");
  (* each writer sees exactly its own instance *)
  let va =
    Value.to_int (Tuple.get (Db.query_one sa "SELECT v FROM t WHERE k = 1") 0)
  in
  let vb =
    Value.to_int (Tuple.get (Db.query_one sb "SELECT v FROM t WHERE k = 1") 0)
  in
  Alcotest.(check int) "a's instance" 100 va;
  Alcotest.(check int) "b's instance" 200 vb;
  (* an observer labeled {a, b} sees both polyinstantiated rows *)
  Db.add_secrecy admin ta;
  Db.add_secrecy admin tb;
  Alcotest.(check int) "high observer sees both" 2
    (List.length (Db.query admin "SELECT v FROM t WHERE k = 1"));
  (* uniqueness still bites within one label *)
  (match Db.exec sa "INSERT INTO t VALUES (1, 999)" with
  | exception Errors.Constraint_violation _ -> ()
  | _ -> Alcotest.fail "duplicate (key, label) must be rejected");
  (* interning: both of a's rows share one canonical label id *)
  let rows = Db.query sa "SELECT v FROM t" in
  Alcotest.(check int) "a sees its two rows" 2 (List.length rows);
  match rows with
  | [ r1; r2 ] ->
      Alcotest.(check bool) "projected rows keep their interned id" true
        (Tuple.label_id r1 >= 0);
      Alcotest.(check int) "same label, same id" (Tuple.label_id r1)
        (Tuple.label_id r2);
      Alcotest.(check bool) "and physically one label array" true
        (Tuple.label r1 == Tuple.label r2)
  | _ -> Alcotest.fail "expected two rows"

let test_polyinstantiation_interned () = run_poly_checks ~label_cache:true ()

let test_polyinstantiation_no_flow_cache () =
  (* the labelcache ablation's off switch must not change semantics *)
  run_poly_checks ~label_cache:false ()

let suites =
  [
    ( "difc.label_store",
      [
        Alcotest.test_case "intern dedup & dense ids" `Quick test_intern_dedup;
        Alcotest.test_case "canonical label_of" `Quick test_intern_canonical;
        Alcotest.test_case "table growth" `Quick test_intern_many_growth;
        Alcotest.test_case "flows_id = Authority.flows" `Quick
          test_flows_id_matches_authority;
        Alcotest.test_case "memoization stats" `Quick test_flow_memoization_stats;
        Alcotest.test_case "flow_cache:false recomputes" `Quick
          test_flow_cache_disabled;
        Alcotest.test_case "invalidated by compound-tag creation" `Quick
          test_invalidate_on_compound_creation;
        Alcotest.test_case "invalidated by delegation" `Quick
          test_invalidate_on_delegation;
        Alcotest.test_case "invalidated by revocation" `Quick
          test_invalidate_on_revocation;
      ] );
    ( "difc.label_store.db",
      [
        Alcotest.test_case "scans hit the flow cache" `Quick
          test_db_scans_hit_flow_cache;
        Alcotest.test_case "compound creation invalidates (security)" `Quick
          test_db_invalidation_after_compound_creation;
        Alcotest.test_case "revocation invalidates (security)" `Quick
          test_db_invalidation_after_revocation;
        Alcotest.test_case "polyinstantiation with interning" `Quick
          test_polyinstantiation_interned;
        Alcotest.test_case "polyinstantiation, flow cache off" `Quick
          test_polyinstantiation_no_flow_cache;
      ] );
  ]

(* Tests for the application platform: authority cache, process label
   tracking, output gate, web tier. *)

module Db = Ifdb_core.Database
module Errors = Ifdb_core.Errors
module Process = Ifdb_platform.Process
module Gate = Ifdb_platform.Gate
module Auth_cache = Ifdb_platform.Auth_cache
module Web = Ifdb_platform.Web
module Label = Ifdb_difc.Label
module Authority = Ifdb_difc.Authority

let fresh () =
  let db = Db.create () in
  let admin = Db.connect_admin db in
  let alice = Db.create_principal admin ~name:"alice" in
  let alice_s = Db.connect db ~principal:alice in
  let tag = Db.create_tag alice_s ~name:"alice_tag" () in
  (db, admin, alice, tag)

(* ------------------------------------------------------------------ *)
(* Auth cache                                                          *)
(* ------------------------------------------------------------------ *)

let test_cache_hits () =
  let db, _, alice, tag = fresh () in
  let cache = Auth_cache.create (Db.authority db) in
  Alcotest.(check bool) "first answer" true (Auth_cache.has_authority cache alice tag);
  Alcotest.(check bool) "second answer" true (Auth_cache.has_authority cache alice tag);
  let s = Auth_cache.stats cache in
  Alcotest.(check int) "one miss" 1 s.Auth_cache.misses;
  Alcotest.(check int) "one hit" 1 s.Auth_cache.hits

let test_cache_invalidation () =
  let db, admin, alice, tag = fresh () in
  let cache = Auth_cache.create (Db.authority db) in
  let bob = Db.create_principal admin ~name:"bob" in
  Alcotest.(check bool) "bob has nothing" false (Auth_cache.has_authority cache bob tag);
  (* delegation bumps the generation; the stale negative answer must go *)
  let alice_s = Db.connect db ~principal:alice in
  Db.delegate alice_s ~tag ~grantee:bob;
  Alcotest.(check bool) "bob now authorized" true
    (Auth_cache.has_authority cache bob tag);
  Db.revoke alice_s ~tag ~grantee:bob;
  Alcotest.(check bool) "revocation visible" false
    (Auth_cache.has_authority cache bob tag)

let test_cache_disabled () =
  let db, _, alice, tag = fresh () in
  let cache = Auth_cache.create ~enabled:false (Db.authority db) in
  ignore (Auth_cache.has_authority cache alice tag);
  ignore (Auth_cache.has_authority cache alice tag);
  let s = Auth_cache.stats cache in
  Alcotest.(check int) "no hits when disabled" 0 s.Auth_cache.hits;
  Alcotest.(check int) "all misses" 2 s.Auth_cache.misses

(* ------------------------------------------------------------------ *)
(* Process & gate                                                      *)
(* ------------------------------------------------------------------ *)

let test_gate_blocks_contaminated () =
  let db, _, alice, tag = fresh () in
  let bob_s = Db.connect db ~principal:(Db.create_principal (Db.connect_admin db) ~name:"bob") in
  let proc = Process.create bob_s in
  let gate = Gate.create () in
  Gate.send gate proc "public ok";
  Process.add_secrecy proc tag;
  (match Gate.send gate proc "secret!!" with
  | exception Errors.Flow_violation _ -> ()
  | () -> Alcotest.fail "contaminated send must fail");
  Alcotest.(check (list string)) "only public output" [ "public ok" ]
    (Gate.output gate);
  Alcotest.(check int) "blocked counted" 1 (Gate.blocked_count gate);
  ignore alice

let test_process_release () =
  let db, _, alice, tag = fresh () in
  let proc = Process.create (Db.connect db ~principal:alice) in
  Process.add_secrecy proc tag;
  Alcotest.(check bool) "owner can release" true (Process.can_release proc);
  Process.release proc;
  Alcotest.(check bool) "label clear" true (Label.is_empty (Process.label proc));
  let gate = Gate.create () in
  Gate.send gate proc "after release"

let test_process_release_denied () =
  let db, admin, _alice, tag = fresh () in
  let bob = Db.create_principal admin ~name:"bob" in
  let proc = Process.create (Db.connect db ~principal:bob) in
  Process.add_secrecy proc tag;
  Alcotest.(check bool) "bob cannot release" false (Process.can_release proc);
  match Process.release proc with
  | exception Errors.Authority_required _ -> ()
  | () -> Alcotest.fail "release without authority must fail"

let test_process_op_count () =
  let db, _, alice, tag = fresh () in
  let proc = Process.create (Db.connect db ~principal:alice) in
  let before = Process.op_count proc in
  Process.add_secrecy proc tag;
  ignore (Process.can_release proc);
  Process.declassify proc tag;
  Alcotest.(check bool) "ops counted" true (Process.op_count proc >= before + 3)

(* ------------------------------------------------------------------ *)
(* Web tier                                                            *)
(* ------------------------------------------------------------------ *)

let web_fixture () =
  let db = Db.create () in
  let admin = Db.connect_admin db in
  ignore (Db.exec admin "CREATE TABLE Notes (owner TEXT, body TEXT)");
  let alice = Db.create_principal admin ~name:"alice" in
  let alice_s = Db.connect db ~principal:alice in
  let tag = Db.create_tag alice_s ~name:"alice_notes" () in
  Db.add_secrecy alice_s tag;
  ignore (Db.exec alice_s "INSERT INTO Notes VALUES ('alice', 'my secret note')");
  Db.declassify alice_s tag;
  let web = Web.create db in
  (* a correct handler: raise, read, release *)
  Web.route web "notes.php" (fun proc _params ->
      Process.add_secrecy proc tag;
      let rows =
        Db.query (Process.session proc) "SELECT body FROM Notes WHERE owner = 'alice'"
      in
      let body =
        String.concat ";"
          (List.map
             (fun r -> Ifdb_rel.Value.to_text (Ifdb_rel.Tuple.get r 0))
             rows)
      in
      Process.release proc;
      body);
  (* a buggy handler: reads and forgets to think about authority *)
  Web.route web "leak.php" (fun proc _params ->
      Process.add_secrecy proc tag;
      let rows = Db.query (Process.session proc) "SELECT body FROM Notes" in
      String.concat ";"
        (List.map (fun r -> Ifdb_rel.Value.to_text (Ifdb_rel.Tuple.get r 0)) rows));
  (db, web, admin, alice, tag)

let test_web_ok_response () =
  let _, web, _, alice, _ = web_fixture () in
  let r = Web.handle web ~path:"notes.php" ~user:alice ~params:[] in
  Alcotest.(check bool) "ok" true (r.Web.status = `Ok);
  Alcotest.(check string) "body" "my secret note" r.Web.body

let test_web_blocks_unauthorized () =
  let db, web, admin, _, _ = web_fixture () in
  let mallory = Db.create_principal admin ~name:"mallory" in
  let r = Web.handle web ~path:"notes.php" ~user:mallory ~params:[] in
  Alcotest.(check bool) "blocked" true (r.Web.status = `Blocked);
  Alcotest.(check string) "no body" "" r.Web.body;
  Alcotest.(check int) "gate emitted nothing" 0
    (Gate.sent_count (Web.gate web));
  ignore db

let test_web_blocks_buggy_handler () =
  let db, web, admin, _, _ = web_fixture () in
  let mallory = Db.create_principal admin ~name:"mallory" in
  (* even a handler with no auth logic at all cannot leak *)
  let r = Web.handle web ~path:"leak.php" ~user:mallory ~params:[] in
  Alcotest.(check bool) "blocked" true (r.Web.status = `Blocked);
  Alcotest.(check int) "counted" 1 (Web.blocked web);
  ignore db

let test_web_404 () =
  let _, web, _, alice, _ = web_fixture () in
  let r = Web.handle web ~path:"nope.php" ~user:alice ~params:[] in
  Alcotest.(check bool) "error" true (r.Web.status = `Error)

let test_web_cost_model () =
  let _, web, _, alice, _ = web_fixture () in
  let cpu0 = Web.sim_cpu_ns web in
  ignore (Web.handle web ~path:"notes.php" ~user:alice ~params:[]);
  let with_if = Web.sim_cpu_ns web - cpu0 in
  Alcotest.(check bool) "base + per-op cost" true (with_if > 200_000);
  (* the plain-PHP platform charges no label-op cost *)
  let db2, web2, _, alice2, tag2 =
    let db = Db.create ~ifc:false () in
    let admin = Db.connect_admin db in
    ignore (Db.exec admin "CREATE TABLE Notes (owner TEXT, body TEXT)");
    ignore (Db.exec admin "INSERT INTO Notes VALUES ('alice', 'note')");
    let alice = Db.create_principal admin ~name:"alice" in
    let web = Web.create ~if_platform:false db in
    Web.route web "notes.php" (fun proc _ ->
        let rows = Db.query (Process.session proc) "SELECT body FROM Notes" in
        String.concat ";"
          (List.map (fun r -> Ifdb_rel.Value.to_text (Ifdb_rel.Tuple.get r 0)) rows));
    (db, web, admin, alice, ())
  in
  let cpu0 = Web.sim_cpu_ns web2 in
  ignore (Web.handle web2 ~path:"notes.php" ~user:alice2 ~params:[]);
  let baseline = Web.sim_cpu_ns web2 - cpu0 in
  Alcotest.(check bool)
    (Printf.sprintf "IF platform (%d ns) dearer than baseline (%d ns)" with_if baseline)
    true (with_if > baseline);
  ignore (db2, tag2)

let suites =
  [
    ( "platform.cache",
      [
        Alcotest.test_case "hit/miss accounting" `Quick test_cache_hits;
        Alcotest.test_case "generation invalidation" `Quick test_cache_invalidation;
        Alcotest.test_case "disabled cache" `Quick test_cache_disabled;
      ] );
    ( "platform.process",
      [
        Alcotest.test_case "gate blocks contaminated" `Quick
          test_gate_blocks_contaminated;
        Alcotest.test_case "release with authority" `Quick test_process_release;
        Alcotest.test_case "release denied" `Quick test_process_release_denied;
        Alcotest.test_case "op counting" `Quick test_process_op_count;
      ] );
    ( "platform.web",
      [
        Alcotest.test_case "ok response" `Quick test_web_ok_response;
        Alcotest.test_case "blocks unauthorized" `Quick test_web_blocks_unauthorized;
        Alcotest.test_case "blocks buggy handler" `Quick test_web_blocks_buggy_handler;
        Alcotest.test_case "404" `Quick test_web_404;
        Alcotest.test_case "cost model" `Quick test_web_cost_model;
      ] );
  ]

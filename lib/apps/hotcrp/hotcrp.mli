(** The HotCRP port (paper section 6.2).

    A conference-management miniature with the paper's information
    flow policy:

    - each user [c] has a [c-contact] tag (member of the
      [all-contacts] compound) protecting their ContactInfo row;
    - the [PCMembers] declassifying view distills PC member names from
      ContactInfo under [all-contacts] authority;
    - each review carries a per-review tag for which only the review
      author and the chair are authoritative; an authority closure run
      with the chair's authority later delegates it to the
      non-conflicted PC members;
    - each acceptance decision carries a per-paper tag until the chair
      releases the decisions.

    The three leaks the paper discusses are reconstructed in the test
    suite: the contact-info dump, premature decision visibility via
    sorting, and decision discovery via search. *)

module Db = Ifdb_core.Database
module Label = Ifdb_difc.Label
module Tag = Ifdb_difc.Tag
module Principal = Ifdb_difc.Principal

type person = {
  cid : int;
  pname : string;
  principal : Principal.t;
  contact_tag : Tag.t;
  is_pc : bool;
}

type t = {
  db : Db.t;
  chair : person;
  all_contacts : Tag.t;
  all_reviews : Tag.t;
  mutable people : person list;
  mutable decision_tags : (int * Tag.t) list;      (** paper → tag *)
  mutable review_tags : (int * int * Tag.t) list;  (** review, paper, tag *)
}

val setup : ?ifc:bool -> unit -> t
(** Schema, compounds, the chair account, and the PCMembers
    declassifying view. *)

val register : t -> name:string -> ?pc:bool -> unit -> person
(** New user: principal, contact tag, labeled ContactInfo row. *)

val session : t -> person -> Db.session

val find : t -> string -> person

val submit_paper : t -> author:person -> title:string -> int
(** Returns the paper id.  The paper row itself is public in this
    miniature (titles are visible to the PC). *)

val declare_conflict : t -> paper:int -> who:person -> unit

val submit_review : t -> reviewer:person -> paper:int -> score:int -> text:string -> int
(** Creates the per-review tag (owned by the reviewer, delegated to
    the chair) and a review row labeled with it.  Returns review id. *)

val open_reviews_to_pc : t -> unit
(** The chair's authority closure: delegate each review's tag to every
    PC member without a conflict on that paper (section 6.2). *)

val record_decision : t -> paper:int -> accept:bool -> unit
(** Chair only: creates the per-paper decision tag and the labeled
    decision row. *)

val release_decisions : t -> unit
(** Chair: delegate each decision tag to the paper's author (the
    official notification). *)

val pc_members_via_view : Db.session -> string list
(** What any user sees through the PCMembers declassifying view. *)

val visible_decisions : t -> person -> (int * bool) list
(** The decisions the given person can see (raises their label for the
    decision tags they can later declassify; query-by-label hides the
    rest). *)

val review_scores_visible_to : t -> person -> paper:int -> int list

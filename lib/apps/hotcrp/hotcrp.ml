module Db = Ifdb_core.Database
module Errors = Ifdb_core.Errors
module Label = Ifdb_difc.Label
module Tag = Ifdb_difc.Tag
module Principal = Ifdb_difc.Principal
module Authority = Ifdb_difc.Authority
module Value = Ifdb_rel.Value
module Tuple = Ifdb_rel.Tuple

type person = {
  cid : int;
  pname : string;
  principal : Principal.t;
  contact_tag : Tag.t;
  is_pc : bool;
}

type t = {
  db : Db.t;
  chair : person;
  all_contacts : Tag.t;
  all_reviews : Tag.t;
  mutable people : person list;
  mutable decision_tags : (int * Tag.t) list;      (* paper -> tag *)
  mutable review_tags : (int * int * Tag.t) list;  (* review, paper, tag *)
}

let ifc_on t = Db.ifc_enabled t.db

let session t p = Db.connect t.db ~principal:p.principal

let fmt_exec s fmt = Format.kasprintf (fun q -> ignore (Db.exec s q)) fmt
let fmt_query s fmt = Format.kasprintf (fun q -> Db.query s q) fmt

let schema_sql =
  [
    "CREATE TABLE ContactInfo (contactId INT PRIMARY KEY, firstName TEXT, \
     lastName TEXT, email TEXT, affiliation TEXT, isPC BOOL)";
    "CREATE TABLE Papers (paperId INT PRIMARY KEY, title TEXT NOT NULL, \
     authorId INT NOT NULL)";
    "CREATE TABLE PaperConflicts (paperId INT NOT NULL, contactId INT NOT NULL)";
    "CREATE TABLE PaperReview (reviewId INT PRIMARY KEY, paperId INT NOT \
     NULL, reviewerId INT NOT NULL, score INT, rtext TEXT)";
    "CREATE TABLE Decisions (paperId INT PRIMARY KEY, accepted BOOL NOT NULL)";
    "CREATE INDEX review_paper ON PaperReview (paperId)";
    "CREATE INDEX conflict_paper ON PaperConflicts (paperId)";
  ]

let counter = ref 0
let next_id () = incr counter; !counter

let register t ~name ?(pc = false) () =
  let admin = Db.connect_admin t.db in
  let principal = Db.create_principal admin ~name in
  let us = Db.connect t.db ~principal in
  let contact_tag =
    Db.create_tag us ~name:(name ^ "_contact") ~compounds:[ t.all_contacts ] ()
  in
  let cid = next_id () in
  if ifc_on t then Db.add_secrecy us contact_tag;
  fmt_exec us
    "INSERT INTO ContactInfo VALUES (%d, '%s', '%s', '%s@conf', 'MIT', %s)" cid
    name
    (String.uppercase_ascii name)
    name
    (if pc then "TRUE" else "FALSE");
  if ifc_on t then Db.declassify us contact_tag;
  let p = { cid; pname = name; principal; contact_tag; is_pc = pc } in
  t.people <- p :: t.people;
  p

let find t name = List.find (fun p -> p.pname = name) t.people

let setup ?(ifc = true) () =
  let db = Db.create ~ifc () in
  let admin = Db.connect_admin db in
  List.iter (fun q -> ignore (Db.exec admin q)) schema_sql;
  let chair_principal = Db.create_principal admin ~name:"chair" in
  let chair_s = Db.connect db ~principal:chair_principal in
  let all_contacts = Db.create_tag chair_s ~name:"all_contacts" () in
  let all_reviews = Db.create_tag chair_s ~name:"all_reviews" () in
  (* the PCMembers declassifying view, defined by the chair who holds
     all-contacts authority (section 6.2) *)
  ignore
    (Db.exec chair_s
       "CREATE VIEW PCMembers AS SELECT firstName, lastName FROM ContactInfo \
        WHERE isPC = TRUE WITH DECLASSIFYING (all_contacts)");
  let t =
    {
      db;
      chair =
        {
          cid = 0;
          pname = "chair";
          principal = chair_principal;
          contact_tag = all_contacts;
          is_pc = true;
        };
      all_contacts;
      all_reviews;
      people = [];
      decision_tags = [];
      review_tags = [];
    }
  in
  (* the chair gets a real contact row too *)
  let chair_tag =
    Db.create_tag chair_s ~name:"chair_contact" ~compounds:[ all_contacts ] ()
  in
  let cid = next_id () in
  if ifc then Db.add_secrecy chair_s chair_tag;
  fmt_exec chair_s
    "INSERT INTO ContactInfo VALUES (%d, 'chair', 'CHAIR', 'chair@conf', \
     'MIT', TRUE)"
    cid;
  if ifc then Db.declassify chair_s chair_tag;
  let chair = { t.chair with cid; contact_tag = chair_tag } in
  let t = { t with chair } in
  t.people <- [ chair ];
  t

let submit_paper t ~author ~title =
  let s = session t author in
  let pid = next_id () in
  fmt_exec s "INSERT INTO Papers VALUES (%d, '%s', %d)" pid title author.cid;
  (* the author always conflicts with their own paper *)
  fmt_exec s "INSERT INTO PaperConflicts VALUES (%d, %d)" pid author.cid;
  pid

let declare_conflict t ~paper ~who =
  let s = session t who in
  fmt_exec s "INSERT INTO PaperConflicts VALUES (%d, %d)" paper who.cid

let submit_review t ~reviewer ~paper ~score ~text =
  let s = session t reviewer in
  let rid = next_id () in
  let tag =
    Db.create_tag s
      ~name:(Printf.sprintf "review_%d" rid)
      ~compounds:[ t.all_reviews ] ()
  in
  (* only the author and the chair are authoritative for it *)
  if ifc_on t then Db.delegate s ~tag ~grantee:t.chair.principal;
  if ifc_on t then Db.add_secrecy s tag;
  fmt_exec s "INSERT INTO PaperReview VALUES (%d, %d, %d, %d, '%s')" rid paper
    reviewer.cid score text;
  if ifc_on t then Db.declassify s tag;
  t.review_tags <- (rid, paper, tag) :: t.review_tags;
  rid

let conflicted t paper cid =
  let s = Db.connect_admin t.db in
  match
    fmt_query s
      "SELECT COUNT(*) FROM PaperConflicts WHERE paperId = %d AND contactId = %d"
      paper cid
  with
  | row :: _ -> Value.to_int (Tuple.get row 0) > 0
  | [] -> false

(* "An authority closure running with the chair's authority later
   delegates the tag to eligible PC members, i.e., those with no
   conflicts of interest." *)
let open_reviews_to_pc t =
  if ifc_on t then begin
    let chair_s = session t t.chair in
    List.iter
      (fun (_rid, paper, tag) ->
        List.iter
          (fun p ->
            if p.is_pc && not (conflicted t paper p.cid) then
              Db.delegate chair_s ~tag ~grantee:p.principal)
          t.people)
      t.review_tags
  end

let record_decision t ~paper ~accept =
  let s = session t t.chair in
  let tag =
    match List.assoc_opt paper t.decision_tags with
    | Some tag -> tag
    | None ->
        let tag =
          Db.create_tag s ~name:(Printf.sprintf "decision_%d" paper) ()
        in
        t.decision_tags <- (paper, tag) :: t.decision_tags;
        tag
  in
  if ifc_on t then Db.add_secrecy s tag;
  fmt_exec s "INSERT INTO Decisions VALUES (%d, %s)" paper
    (if accept then "TRUE" else "FALSE");
  if ifc_on t then Db.declassify s tag

let release_decisions t =
  if ifc_on t then begin
    let s = session t t.chair in
    List.iter
      (fun (paper, tag) ->
        match
          fmt_query s "SELECT authorId FROM Papers WHERE paperId = %d" paper
        with
        | row :: _ ->
            let author_cid = Value.to_int (Tuple.get row 0) in
            List.iter
              (fun p ->
                if p.cid = author_cid then Db.delegate s ~tag ~grantee:p.principal)
              t.people
        | [] -> ())
      t.decision_tags
  end

let pc_members_via_view s =
  List.map
    (fun row -> Value.to_text (Tuple.get row 0))
    (Db.query s "SELECT firstName FROM PCMembers ORDER BY firstName")

let visible_decisions t p =
  let s = session t p in
  let auth = Db.authority t.db in
  (* raise only the decision tags this person can later declassify *)
  if ifc_on t then
    List.iter
      (fun (_paper, tag) ->
        if Authority.has_authority auth p.principal tag then
          Db.add_secrecy s tag)
      t.decision_tags;
  let rows = Db.query s "SELECT paperId, accepted FROM Decisions ORDER BY paperId" in
  List.map
    (fun row -> (Value.to_int (Tuple.get row 0), Value.to_bool (Tuple.get row 1)))
    rows

let review_scores_visible_to t p ~paper =
  let s = session t p in
  let auth = Db.authority t.db in
  if ifc_on t then
    List.iter
      (fun (_rid, rpaper, tag) ->
        if rpaper = paper && Authority.has_authority auth p.principal tag then
          Db.add_secrecy s tag)
      t.review_tags;
  let rows =
    fmt_query s "SELECT score FROM PaperReview WHERE paperId = %d ORDER BY score"
      paper
  in
  List.map (fun row -> Value.to_int (Tuple.get row 0)) rows

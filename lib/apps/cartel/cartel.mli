(** The CarTel port (paper sections 1, 6.1, 8.2).

    CarTel is a mobile sensor network: GPS-equipped cars report
    location measurements; users see maps and statistics of their past
    drives and of their friends' drives.

    Tags, per user [u] (section 6.1):
    - [u-drives] — past drives; member of the [all-drives] compound;
    - [u-location] — current location; member of [all-locations].
    Raw GPS points are labeled [{u-drives, u-location}]; derived
    historical drives only [{u-drives}], so a friend holding
    [u-drives] authority can see drives but never raw location samples.

    The drive-segmentation trigger ([driveupdate]) is a stored
    authority closure with authority for the location tags only: it
    reads the raw points and writes [{u-drives}]-labeled drive rows,
    and cannot leak anything beyond that.

    The web scripts of Figure 3 are registered on a
    {!Ifdb_platform.Web} tier.  The three bug families the paper found
    are reconstructed behind [~buggy:true] routes: handlers that skip
    authentication or authorization.  Under IFDB they produce blocked
    responses instead of leaks. *)

module Db = Ifdb_core.Database
module Web = Ifdb_platform.Web
module Label = Ifdb_difc.Label
module Tag = Ifdb_difc.Tag
module Principal = Ifdb_difc.Principal

type user = {
  uid : int;
  name : string;
  principal : Principal.t;
  drives_tag : Tag.t;
  location_tag : Tag.t;
}

type t = {
  db : Db.t;
  web : Web.t;
  sys : Db.session;        (** trusted setup session *)
  all_drives : Tag.t;
  all_locations : Tag.t;
  stats_principal : Principal.t;
      (** authority closure over [all-drives] for drives_top.php *)
  users : user array;
  anonymous : Principal.t; (** unauthenticated requests run as this *)
}

val setup :
  ?ifc:bool ->
  ?if_platform:bool ->
  ?users:int ->
  ?cars_per_user:int ->
  ?capacity_pages:int option ->
  ?miss_cost_ns:int ->
  ?write_cost_ns:int ->
  ?label_op_cost_ns:int ->
  ?base_cost_ns:int ->
  unit ->
  t
(** Build the database (schema, tags, users, cars, triggers) and the
    web tier with all Figure 3 routes registered.  [ifc:false] +
    [if_platform:false] is the paper's baseline (PostgreSQL + PHP). *)

val user : t -> int -> user

val befriend : t -> owner:int -> friend:int -> unit
(** [owner] lets [friend] see their past drives: a Friends row plus a
    delegation of [owner-drives] (section 6.1). *)

val ingest_batch : t -> Ifdb_workload.Gps.point list -> unit
(** Sensor ingestion: one transaction per 200 measurements (section
    8.2.2), each point labeled with its owner's tags; the
    [driveupdate] and [latestupdate] triggers fire per insert. *)

val request :
  t -> path:string -> ?user:int -> ?params:(string * string) list -> unit ->
  Web.response
(** Issue a web request as the given user (or unauthenticated). *)

val drives_count : t -> int
(** Total drive rows, read with full authority (for tests/benches). *)

val locations_count : t -> int

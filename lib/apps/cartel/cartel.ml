module Db = Ifdb_core.Database
module Errors = Ifdb_core.Errors
module Web = Ifdb_platform.Web
module Process = Ifdb_platform.Process
module Label = Ifdb_difc.Label
module Tag = Ifdb_difc.Tag
module Principal = Ifdb_difc.Principal
module Value = Ifdb_rel.Value
module Tuple = Ifdb_rel.Tuple
module Gps = Ifdb_workload.Gps

type user = {
  uid : int;
  name : string;
  principal : Principal.t;
  drives_tag : Tag.t;
  location_tag : Tag.t;
}

type t = {
  db : Db.t;
  web : Web.t;
  sys : Db.session;
  all_drives : Tag.t;
  all_locations : Tag.t;
  stats_principal : Principal.t;
  users : user array;
  anonymous : Principal.t;
}

let ifc_on t = Db.ifc_enabled t.db

(* Raise the process label only when IFC is on; the baseline scripts
   (original CarTel) do no label manipulation at all. *)
let raise_if t proc tags = if ifc_on t then List.iter (Process.add_secrecy proc) tags

let release_if t proc = if ifc_on t then Process.release proc

let user t uid = t.users.(uid)

let schema_sql =
  [
    "CREATE TABLE Users (uid INT PRIMARY KEY, name TEXT NOT NULL, email TEXT)";
    "CREATE TABLE Cars (carid INT PRIMARY KEY, uid INT NOT NULL, make TEXT, \
     FOREIGN KEY (uid) REFERENCES Users (uid))";
    "CREATE TABLE Locations (carid INT NOT NULL, ts INT NOT NULL, lat FLOAT, \
     lng FLOAT, speed FLOAT, heading FLOAT, altitude FLOAT, hdop FLOAT, nsat \
     INT, fix TEXT)";
    "CREATE TABLE LocationsLatest (carid INT PRIMARY KEY, ts INT, lat FLOAT, \
     lng FLOAT)";
    "CREATE TABLE Drives (driveid INT PRIMARY KEY, carid INT NOT NULL, \
     start_ts INT, end_ts INT, dist FLOAT, start_lat FLOAT, start_lng FLOAT, \
     end_lat FLOAT, end_lng FLOAT)";
    "CREATE TABLE Friends (uid INT NOT NULL, friend_uid INT NOT NULL)";
    "CREATE INDEX locations_car ON Locations (carid, ts)";
    "CREATE INDEX drives_car ON Drives (carid, end_ts)";
    "CREATE INDEX cars_user ON Cars (uid)";
    "CREATE INDEX friends_uid ON Friends (uid)";
  ]

let fmt_query s fmt = Format.kasprintf (fun q -> Db.query s q) fmt
let fmt_exec s fmt = Format.kasprintf (fun q -> ignore (Db.exec s q)) fmt

(* --- drive segmentation trigger ----------------------------------- *)

(* Splitting the raw point stream into drives: a point more than
   [Gps.drive_gap_s] after the last drive's end starts a new drive.
   Runs as a deferred stored authority closure holding the location
   tags (via all-locations): it declassifies the location tag and
   writes {u-drives}-labeled rows, mirroring the paper's driveupdate()
   (sections 6.1, 8.2.2). *)
let driveupdate t s (ev : Db.trigger_event) =
  match ev.Db.ev_new with
  | None -> ()
  | Some row ->
      let carid = Value.to_int (Tuple.get row 0) in
      let ts = Value.to_int (Tuple.get row 1) in
      let speed = Value.to_float (Tuple.get row 4) in
      if ifc_on t then
        (* strip the location tags; the drives tags stay *)
        Label.iter
          (fun tag ->
            if
              Ifdb_difc.Authority.covers (Db.authority t.db)
                (Label.singleton t.all_locations) tag
            then Db.declassify s tag)
          (Db.session_label s);
      let last =
        fmt_query s
          "SELECT driveid, end_ts FROM Drives WHERE carid = %d ORDER BY \
           end_ts DESC LIMIT 1"
          carid
      in
      let extend =
        match last with
        | row :: _ ->
            let end_ts = Value.to_int (Tuple.get row 1) in
            if ts - end_ts <= Gps.drive_gap_s then
              Some (Value.to_int (Tuple.get row 0), end_ts)
            else None
        | [] -> None
      in
      (match extend with
      | Some (driveid, prev_end) ->
          let dt = float_of_int (ts - prev_end) in
          let dist_km = speed *. dt /. 3600.0 in
          let lat = Value.to_float (Tuple.get row 2) in
          let lng = Value.to_float (Tuple.get row 3) in
          fmt_exec s
            "UPDATE Drives SET end_ts = %d, dist = dist + %f, end_lat = %f, \
             end_lng = %f WHERE driveid = %d"
            ts dist_km lat lng driveid
      | None ->
          (* fresh drive; ids are derived from (car, ts) to stay unique *)
          let lat = Value.to_float (Tuple.get row 2) in
          let lng = Value.to_float (Tuple.get row 3) in
          fmt_exec s
            "INSERT INTO Drives VALUES (%d, %d, %d, %d, 0.0, %f, %f, %f, %f)"
            ((carid * 1_000_000_000) + ts)
            carid ts ts lat lng lat lng)

(* LocationsLatest keeps the current position per car; same label as
   the raw point, updated immediately. *)
let latestupdate _t s (ev : Db.trigger_event) =
  match ev.Db.ev_new with
  | None -> ()
  | Some row ->
      let carid = Value.to_int (Tuple.get row 0) in
      let ts = Value.to_int (Tuple.get row 1) in
      let lat = Value.to_float (Tuple.get row 2) in
      let lng = Value.to_float (Tuple.get row 3) in
      let updated =
        Db.insert_returning_count s
          (Printf.sprintf
             "UPDATE LocationsLatest SET ts = %d, lat = %f, lng = %f WHERE \
              carid = %d"
             ts lat lng carid)
      in
      if updated = 0 then
        fmt_exec s "INSERT INTO LocationsLatest VALUES (%d, %d, %f, %f)" carid
          ts lat lng

(* --- web scripts (Figure 3) ---------------------------------------- *)

let param params name = List.assoc_opt name params

let int_param params name =
  match param params name with
  | Some v -> ( match int_of_string_opt v with Some i -> Some i | None -> None)
  | None -> None

let owner_of_car (_ : Db.t) s carid =
  match
    fmt_query s "SELECT uid FROM Cars WHERE carid = %d" carid
  with
  | row :: _ -> Some (Value.to_int (Tuple.get row 0))
  | [] -> None
  | exception Errors.Sql_error _ -> None

(* raise for a target user's tags (both location and drives cover the
   raw/current tables) *)
let raise_for_user t proc uid ~location =
  let u = user t uid in
  raise_if t proc (if location then [ u.drives_tag; u.location_tag ] else [ u.drives_tag ])

let render_rows rows =
  String.concat "\n"
    (List.map
       (fun row ->
         String.concat "|"
           (List.map Value.to_string (Array.to_list (Tuple.values row))))
       rows)

(* get_cars.php / cars.php: current locations of the user's cars *)
let script_current_locations t ~authenticate proc params =
  let s = Process.session proc in
  let target =
    match int_param params "uid" with
    | Some uid -> uid
    | None -> Errors.sql "missing uid"
  in
  (* the authentication check the buggy scripts forgot *)
  if authenticate
     && not
          (Principal.equal (Process.principal proc) (user t target).principal)
  then Errors.flow "not logged in as user %d" target;
  raise_for_user t proc target ~location:true;
  let rows =
    fmt_query s
      "SELECT c.carid, l.ts, l.lat, l.lng FROM Cars c JOIN LocationsLatest l \
       ON l.carid = c.carid WHERE c.uid = %d"
      target
  in
  let body = render_rows rows in
  release_if t proc;
  body

(* drives.php: the drive log of a target user (self or friend) *)
let script_drives t ~authorize proc params =
  let s = Process.session proc in
  let me =
    match int_param params "uid" with Some u -> u | None -> Errors.sql "missing uid"
  in
  let target = match int_param params "target" with Some x -> x | None -> me in
  (* the authorization check whose absence was the paper's friend bug:
     the fixed script verifies friendship, the buggy one trusts the URL *)
  if authorize && target <> me then begin
    let friends =
      fmt_query s
        "SELECT COUNT(*) FROM Friends WHERE uid = %d AND friend_uid = %d"
        target me
    in
    match friends with
    | row :: _ when Value.to_int (Tuple.get row 0) > 0 -> ()
    | _ -> Errors.flow "user %d is not a friend of %d" me target
  end;
  raise_for_user t proc target ~location:false;
  let rows =
    fmt_query s
      "SELECT d.driveid, d.start_ts, d.end_ts, d.dist FROM Drives d JOIN Cars \
       c ON d.carid = c.carid WHERE c.uid = %d ORDER BY d.start_ts"
      target
  in
  let body = render_rows rows in
  release_if t proc;
  body

(* drives_top.php: aggregate driving patterns over everyone — runs as
   the stats authority closure (authoritative for all-drives) *)
let script_drives_top t proc _params =
  let s = Process.session proc in
  Db.with_principal s t.stats_principal (fun () ->
      raise_if t proc [ t.all_drives ];
      let rows =
        Db.query s
          "SELECT c.uid, COUNT(*) AS drives, SUM(d.dist) FROM Drives d JOIN \
           Cars c ON d.carid = c.carid GROUP BY c.uid ORDER BY drives DESC \
           LIMIT 10"
      in
      let body = render_rows rows in
      release_if t proc;
      body)

let script_friends t proc params =
  let s = Process.session proc in
  let me =
    match int_param params "uid" with Some u -> u | None -> Errors.sql "missing uid"
  in
  (match (param params "add", ifc_on t) with
  | Some f, _ -> (
      match int_of_string_opt f with
      | Some friend when friend >= 0 && friend < Array.length t.users ->
          fmt_exec s "INSERT INTO Friends VALUES (%d, %d)" me friend;
          (* the delegation that makes the drives visible *)
          if ifc_on t then
            Db.delegate s ~tag:(user t me).drives_tag
              ~grantee:(user t friend).principal
      | _ -> Errors.sql "bad friend id")
  | None, _ -> ());
  let rows = fmt_query s "SELECT friend_uid FROM Friends WHERE uid = %d" me in
  render_rows rows

let script_edit_account _t proc params =
  let s = Process.session proc in
  let me =
    match int_param params "uid" with Some u -> u | None -> Errors.sql "missing uid"
  in
  (match param params "email" with
  | Some email -> fmt_exec s "UPDATE Users SET email = '%s' WHERE uid = %d" email me
  | None -> ());
  render_rows (fmt_query s "SELECT name, email FROM Users WHERE uid = %d" me)

let script_login _t _proc _params = "welcome"

(* --- setup ---------------------------------------------------------- *)

let setup ?(ifc = true) ?(if_platform = true) ?(users = 8) ?(cars_per_user = 2)
    ?(capacity_pages = None) ?miss_cost_ns ?write_cost_ns ?label_op_cost_ns
    ?base_cost_ns () =
  let db = Db.create ~ifc ~capacity_pages ?miss_cost_ns ?write_cost_ns () in
  let sys_session = Db.connect_admin db in
  let sysp = Db.create_principal sys_session ~name:"cartel-system" in
  let sys = Db.connect db ~principal:sysp in
  List.iter (fun q -> ignore (Db.exec sys q)) schema_sql;
  let all_drives = Db.create_tag sys ~name:"all_drives" () in
  let all_locations = Db.create_tag sys ~name:"all_locations" () in
  let anonymous = Db.create_principal sys ~name:"anonymous" in
  let mk_user uid =
    let name = Printf.sprintf "user%d" uid in
    let principal = Db.create_principal sys ~name in
    let user_session = Db.connect db ~principal in
    let drives_tag =
      Db.create_tag user_session
        ~name:(Printf.sprintf "%s_drives" name)
        ~compounds:[ all_drives ] ()
    in
    let location_tag =
      Db.create_tag user_session
        ~name:(Printf.sprintf "%s_location" name)
        ~compounds:[ all_locations ] ()
    in
    ignore
      (Db.exec sys
         (Printf.sprintf "INSERT INTO Users VALUES (%d, '%s', '%s@cartel')" uid
            name name));
    for c = 0 to cars_per_user - 1 do
      let carid = (uid * 100) + c in
      ignore
        (Db.exec sys
           (Printf.sprintf "INSERT INTO Cars VALUES (%d, %d, 'make%d')" carid
              uid (carid mod 7)))
    done;
    { uid; name; principal; drives_tag; location_tag }
  in
  let users = Array.init users mk_user in
  (* stats closure over everyone's drives *)
  let stats_principal =
    Db.closure_principal sys ~name:"traffic-stats" ~tags:[ all_drives ]
  in
  let t =
    {
      db;
      web = Web.create ~if_platform ?base_cost_ns ?label_op_cost_ns db;
      sys;
      all_drives;
      all_locations;
      stats_principal;
      users;
      anonymous;
    }
  in
  (* the segmentation closure holds all-locations (it must read raw
     points and drop only the location tags) *)
  let drive_closure =
    Db.closure_principal sys ~name:"driveupdate" ~tags:[ all_locations ]
  in
  Db.create_trigger sys ~name:"driveupdate" ~table:"Locations"
    ~kinds:[ `Insert ] ~timing:`Deferred ~authority:drive_closure
    (driveupdate t);
  Db.create_trigger sys ~name:"latestupdate" ~table:"Locations"
    ~kinds:[ `Insert ] ~timing:`Immediate (latestupdate t);
  (* Figure 3 routes, plus deliberately buggy variants (section 6.1) *)
  Web.route t.web "login.php" (script_login t);
  Web.route t.web "get_cars.php" (script_current_locations t ~authenticate:true);
  Web.route t.web "cars.php" (script_current_locations t ~authenticate:true);
  Web.route t.web "drives.php" (script_drives t ~authorize:true);
  Web.route t.web "drives_top.php" (script_drives_top t);
  Web.route t.web "friends.php" (script_friends t);
  Web.route t.web "edit_account.php" (script_edit_account t);
  (* the bugs: no authentication / no authorization *)
  Web.route t.web "get_cars_noauth.php"
    (script_current_locations t ~authenticate:false);
  Web.route t.web "drives_noauthz.php" (script_drives t ~authorize:false);
  t

let befriend t ~owner ~friend =
  let s = Db.connect t.db ~principal:(user t owner).principal in
  ignore
    (Db.exec s (Printf.sprintf "INSERT INTO Friends VALUES (%d, %d)" owner friend));
  if ifc_on t then
    Db.delegate s ~tag:(user t owner).drives_tag ~grantee:(user t friend).principal

let ingest_batch t points =
  let owner_cache = Hashtbl.create 64 in
  let owner carid =
    match Hashtbl.find_opt owner_cache carid with
    | Some uid -> uid
    | None -> (
        match owner_of_car t.db t.sys carid with
        | Some uid ->
            Hashtbl.add owner_cache carid uid;
            uid
        | None -> invalid_arg (Printf.sprintf "no such car %d" carid))
  in
  let batches =
    let rec chunk acc cur n = function
      | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
      | p :: rest ->
          if n = 200 then chunk (List.rev cur :: acc) [ p ] 1 rest
          else chunk acc (p :: cur) (n + 1) rest
    in
    chunk [] [] 0 points
  in
  List.iter
    (fun batch ->
      ignore (Db.exec t.sys "BEGIN");
      List.iter
        (fun (p : Gps.point) ->
          let u = user t (owner p.Gps.car_id) in
          if ifc_on t then begin
            Db.add_secrecy t.sys u.drives_tag;
            Db.add_secrecy t.sys u.location_tag
          end;
          ignore
            (Db.exec t.sys
               (Printf.sprintf
                  "INSERT INTO Locations VALUES (%d, %d, %f, %f, %f, %f, \
                   %f, %f, %d, 'gps-3d')"
                  p.Gps.car_id p.Gps.ts p.Gps.lat p.Gps.lng p.Gps.speed
                  (Float.rem p.Gps.speed 360.0)
                  (10.0 +. Float.rem p.Gps.lat 50.0)
                  1.2
                  ((p.Gps.ts mod 6) + 6)));
          if ifc_on t then begin
            (* the trusted labeler drops its contamination between
               points; it owns no tags, but the ingest runs as the
               system principal which was delegated the compounds *)
            Db.declassify t.sys u.drives_tag;
            Db.declassify t.sys u.location_tag
          end)
        batch;
      ignore (Db.exec t.sys "COMMIT"))
    batches

let request t ~path ?user:uid ?(params = []) () =
  let principal =
    match uid with
    | Some uid -> (user t uid).principal
    | None -> t.anonymous
  in
  let params =
    match (uid, List.mem_assoc "uid" params) with
    | Some uid, false -> ("uid", string_of_int uid) :: params
    | _ -> params
  in
  Web.handle t.web ~path ~user:principal ~params

let drives_count t =
  let s = Db.connect t.db ~principal:t.stats_principal in
  if ifc_on t then Db.add_secrecy s t.all_drives;
  let row = Db.query_one s "SELECT COUNT(*) FROM Drives" in
  Value.to_int (Tuple.get row 0)

let locations_count t =
  (* raw points carry both compounds' members; the system session holds
     authority for both compounds *)
  let sys = t.sys in
  if ifc_on t then begin
    Db.add_secrecy sys t.all_drives;
    Db.add_secrecy sys t.all_locations
  end;
  let row = Db.query_one sys "SELECT COUNT(*) FROM Locations" in
  let n = Value.to_int (Tuple.get row 0) in
  if ifc_on t then begin
    Db.declassify sys t.all_drives;
    Db.declassify sys t.all_locations
  end;
  n

type node = {
  n_id : int;
  n_label : string;
  n_depth : int;
  mutable n_rows : int;
  mutable n_ns : int;
  mutable n_morsels : int;
  mutable n_by_worker : int array;
}

type scan = {
  sc_scanned : int Atomic.t;
  sc_pruned : int Atomic.t;
  sc_skipped : int Atomic.t;
}

type t = {
  mutable nodes : node list; (* reverse enter order *)
  mutable stack : node list;
  mutable next_id : int;
  scan_mu : Mutex.t;
  scans : (string, scan) Hashtbl.t;
  mutable scan_order : string list; (* reverse first-use order *)
}

let create () =
  {
    nodes = [];
    stack = [];
    next_id = 0;
    scan_mu = Mutex.create ();
    scans = Hashtbl.create 8;
    scan_order = [];
  }

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let enter t label =
  let node =
    {
      n_id = t.next_id;
      n_label = label;
      n_depth = List.length t.stack;
      n_rows = 0;
      n_ns = 0;
      n_morsels = 0;
      n_by_worker = [||];
    }
  in
  t.next_id <- t.next_id + 1;
  t.nodes <- node :: t.nodes;
  t.stack <- node :: t.stack;
  node

let exit_node t node =
  match t.stack with
  | top :: rest when top == node -> t.stack <- rest
  | _ ->
      (* Unbalanced enter/exit is a tracer bug, not a user error; keep
         going rather than poison the query. *)
      t.stack <- List.filter (fun n -> not (n == node)) t.stack

let wrap_seq node (s : 'a Seq.t) : 'a Seq.t =
  let rec wrap s () =
    let t0 = now_ns () in
    let r = s () in
    node.n_ns <- node.n_ns + (now_ns () - t0);
    match r with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons (x, rest) ->
        node.n_rows <- node.n_rows + 1;
        Seq.Cons (x, wrap rest)
  in
  wrap s

let nodes t = List.rev t.nodes

let add_ns node ns = node.n_ns <- node.n_ns + ns
let add_rows node n = node.n_rows <- node.n_rows + n

let add_morsels node ~per_worker =
  let nw = Array.length per_worker in
  if Array.length node.n_by_worker < nw then begin
    let grown = Array.make nw 0 in
    Array.blit node.n_by_worker 0 grown 0 (Array.length node.n_by_worker);
    node.n_by_worker <- grown
  end;
  Array.iteri
    (fun w c ->
      node.n_morsels <- node.n_morsels + c;
      node.n_by_worker.(w) <- node.n_by_worker.(w) + c)
    per_worker

let scan_entry t name =
  Mutex.protect t.scan_mu (fun () ->
      match Hashtbl.find_opt t.scans name with
      | Some sc -> sc
      | None ->
          let sc =
            {
              sc_scanned = Atomic.make 0;
              sc_pruned = Atomic.make 0;
              sc_skipped = Atomic.make 0;
            }
          in
          Hashtbl.replace t.scans name sc;
          t.scan_order <- name :: t.scan_order;
          sc)

let ms ns = Printf.sprintf "%.3f ms" (float_of_int ns /. 1e6)

let node_line node =
  let indent = String.make (2 * node.n_depth) ' ' in
  let base =
    Printf.sprintf "%s%s  (rows=%d time=%s" indent node.n_label node.n_rows
      (ms node.n_ns)
  in
  let morsels =
    if node.n_morsels = 0 then ""
    else begin
      let parts = ref [] in
      Array.iteri
        (fun w c -> if c > 0 then parts := Printf.sprintf "w%d:%d" w c :: !parts)
        node.n_by_worker;
      Printf.sprintf " morsels=%d workers=%s" node.n_morsels
        (String.concat "," (List.rev !parts))
    end
  in
  base ^ morsels ^ ")"

let report ?(notes = []) t ~total_ns ~rows ~flow_checks ~flow_hits =
  let tree = List.rev_map node_line t.nodes in
  let scans =
    List.rev_map
      (fun name ->
        let sc = Hashtbl.find t.scans name in
        let skipped =
          match Atomic.get sc.sc_skipped with
          | 0 -> ""
          | n -> Printf.sprintf ", %d scan(s) skipped as label-empty" n
        in
        Printf.sprintf "label confinement on %s: scanned=%d pruned=%d%s" name
          (Atomic.get sc.sc_scanned) (Atomic.get sc.sc_pruned) skipped)
      t.scan_order
  in
  let flows =
    if flow_checks = 0 then "flow checks: 0"
    else
      Printf.sprintf "flow checks: %d (memo hits=%d, hit rate=%.1f%%)"
        flow_checks flow_hits
        (100. *. float_of_int flow_hits /. float_of_int flow_checks)
  in
  tree
  @ scans
  @ notes
  @ [
      flows;
      Printf.sprintf "execution: %s, %d row%s" (ms total_ns) rows
        (if rows = 1 then "" else "s");
    ]

(* ------------------------------------------------------------------ *)
(* Slow-query log                                                      *)

type slow_entry = {
  sq_seq : int;
  sq_sql : string;
  sq_ns : int;
  sq_rows : int;
  sq_trace : int;
}

type slow_log = {
  sl_mu : Mutex.t;
  sl_cap : int;
  sl_ring : slow_entry option array;
  mutable sl_count : int;
}

let slow_log_create ?(capacity = 128) () =
  let capacity = max 1 capacity in
  {
    sl_mu = Mutex.create ();
    sl_cap = capacity;
    sl_ring = Array.make capacity None;
    sl_count = 0;
  }

let slow_log_add ?(trace = -1) sl ~sql ~ns ~rows =
  Mutex.protect sl.sl_mu (fun () ->
      let e =
        { sq_seq = sl.sl_count; sq_sql = sql; sq_ns = ns; sq_rows = rows;
          sq_trace = trace }
      in
      sl.sl_ring.(sl.sl_count mod sl.sl_cap) <- Some e;
      sl.sl_count <- sl.sl_count + 1)

let slow_log_recent sl n =
  Mutex.protect sl.sl_mu (fun () ->
      let avail = min sl.sl_count sl.sl_cap in
      let n = min n avail in
      List.init n (fun i ->
          match sl.sl_ring.((sl.sl_count - 1 - i) mod sl.sl_cap) with
          | Some e -> e
          | None -> assert false))

let slow_log_count sl = Mutex.protect sl.sl_mu (fun () -> sl.sl_count)

(** Per-query execution tracing: the machinery behind [EXPLAIN ANALYZE]
    and the slow-query log.

    A trace is built alongside normal execution.  The executor's plan
    translation is {e eager} (each operator's [run] recurses into its
    children while constructing the lazy [Seq.t]), so operator nodes
    are created with a parent stack during translation; the returned
    sequences are then wrapped so every pull is timed and every yielded
    row counted.  Times are {b inclusive} of children, like Postgres'
    [EXPLAIN ANALYZE] actual times.

    Tuples pruned by label confinement are attributed {e per table}
    (not per operator): the access-layer read filter increments the
    table's scan entry, which survives lazy pulls and parallel morsel
    workers (all fields are [Atomic]).

    A trace object is owned by one session for one statement; node
    mutation during serial consumption is single-threaded, while scan
    entries and morsel attribution may be hit from worker domains. *)

type t

type node = {
  n_id : int;
  n_label : string;  (** one-line operator description *)
  n_depth : int;
  mutable n_rows : int;  (** rows yielded *)
  mutable n_ns : int;  (** inclusive wall time, nanoseconds *)
  mutable n_morsels : int;  (** parallel tasks executed under this node *)
  mutable n_by_worker : int array;  (** tasks per worker id *)
}

(** Per-table label-confinement accounting, shared with scan filters. *)
type scan = {
  sc_scanned : int Atomic.t;  (** visible tuples the read filter examined *)
  sc_pruned : int Atomic.t;  (** of those, rejected by label confinement *)
  sc_skipped : int Atomic.t;  (** whole scans skipped: proven label-empty *)
}

val create : unit -> t

val now_ns : unit -> int
(** Monotonic-enough wall clock in nanoseconds ([Unix.gettimeofday]). *)

val enter : t -> string -> node
(** Open an operator node as a child of the innermost open node. *)

val exit_node : t -> node -> unit
(** Close [node]; must pair with the matching {!enter}. *)

val nodes : t -> node list
(** Every operator node in enter (depth-first) order — the tree is
    recoverable from [n_depth].  How the span recorder attaches an
    [EXPLAIN ANALYZE] operator tree as child spans. *)

val wrap_seq : node -> 'a Seq.t -> 'a Seq.t
(** Time every pull of the sequence into [node.n_ns] and count yielded
    elements into [node.n_rows]. *)

val add_ns : node -> int -> unit
val add_rows : node -> int -> unit

val add_morsels : node -> per_worker:int array -> unit
(** Record one parallel fan-out under [node]: [per_worker.(w)] tasks
    ran on worker [w]. *)

val scan_entry : t -> string -> scan
(** The accounting entry for table [name], created on first use.
    Called from session code before workers launch; the returned
    record's atomics may then be hit concurrently. *)

val report :
  ?notes:string list ->
  t ->
  total_ns:int ->
  rows:int ->
  flow_checks:int ->
  flow_hits:int ->
  string list
(** Render the trace: indented operator tree with per-node rows/time
    and morsel attribution, per-table label-confinement lines, any
    caller [notes] (e.g. the plan-cache verdict), the flow-check/memo
    summary, and a total line. *)

(** {1 Slow-query log} *)

type slow_entry = {
  sq_seq : int;  (** monotonically increasing statement number *)
  sq_sql : string;
  sq_ns : int;
  sq_rows : int;
  sq_trace : int;
      (** span trace id when the statement was also sampled by the
          span recorder ([Span.find] resolves it while it stays in the
          ring); [-1] otherwise *)
}

type slow_log

val slow_log_create : ?capacity:int -> unit -> slow_log
(** Ring buffer of the most recent slow statements; default capacity 128. *)

val slow_log_add :
  ?trace:int -> slow_log -> sql:string -> ns:int -> rows:int -> unit
val slow_log_recent : slow_log -> int -> slow_entry list
(** The last [n] entries, newest first. *)

val slow_log_count : slow_log -> int
(** Total entries ever logged (not bounded by capacity). *)

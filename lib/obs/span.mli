(** Transaction-lifecycle span tracing.

    A {e span} is one timed phase of a statement's life — parse,
    analyze, plan, execute, lock wait, group-commit wait, WAL fsync,
    morsel, IVM delta — with begin/end timestamps and a parent link.
    One sampled statement produces one {!record}: its tree of closed
    spans, merged into a fixed-capacity per-database ring.  The ring
    is what [\spans] prints, what the slow-query log links to, and
    what {!to_chrome_json} exports for [chrome://tracing]/Perfetto.

    Design constraints, in order:

    - {b zero clock reads when unsampled}: the per-statement sampling
      decision ({!sample}) is one atomic fetch-and-add and a modulo;
      when it says no, no context is installed and every downstream
      instrumentation point reduces to one domain-local load and a
      [None] match.  [?sample_every:0] (the default) never samples.
    - {b domain-safe}: each domain keeps its own open-span stack in
      domain-local storage (so begin/end nesting never races), and
      closed spans are pushed onto the statement context's scratch
      list with a lock-free CAS — worker domains merge into the same
      statement record without a lock.  The ring itself takes a mutex
      only once per sampled statement, at {!finish}.
    - {b label-clean exports}: spans carry only fixed phase names,
      statement head keywords, prepared-statement names and counts.
      Bound parameters are rendered as [$n] placeholders and tag
      names never enter a span at all (see DESIGN.md §6.10), so a
      Chrome export can be shared without declassification.

    The clock is [Unix.gettimeofday] scaled to nanoseconds — the same
    monotonic-enough clock {!Trace} uses, so operator traces and spans
    agree.  A span whose recorded start would precede its statement
    root (e.g. a lock acquired by an earlier statement of an explicit
    transaction) is clipped to the statement window, keeping every
    record well-nested by construction. *)

type t
(** A recorder: sampling state plus the ring of finished records.
    One per [Database.t]. *)

type ctx
(** One sampled statement's collector.  Created by {!start}, usually
    installed as the calling domain's ambient context ({!set_current})
    so lower layers can record spans without threading a handle. *)

type span
(** An open span: returned by {!begin_span}, closed by {!end_span}. *)

(** A closed span, as stored in a finished record. *)
type event = {
  ev_id : int;  (** unique within the record; the root span is 0 *)
  ev_parent : int;  (** parent event id; [-1] for the root *)
  ev_name : string;  (** fixed phase name, e.g. ["plan"], ["gc.wait"] *)
  ev_dom : int;  (** id of the domain that recorded it *)
  ev_t0 : int;  (** begin, ns *)
  ev_t1 : int;  (** end, ns; [>= ev_t0] *)
  ev_args : (string * string) list;
}

type record = {
  r_id : int;  (** trace id, monotone per recorder; linked from the
                   slow-query log *)
  r_events : event list;  (** sorted by start time; root first *)
}

val create : ?capacity:int -> ?sample_every:int -> unit -> t
(** A recorder holding the last [capacity] (default 256) sampled
    statements.  [sample_every = n] samples every [n]th statement
    ([1] = all, [0] = never; default [0]).  Negative values behave
    like [0]. *)

val enabled : t -> bool
(** [sample_every > 0]. *)

val sample_every : t -> int

val sample : t -> bool
(** Consume one statement slot: true when this statement should be
    traced.  One atomic fetch-and-add; no clock read. *)

val peek : t -> bool
(** Would the next {!sample} say yes?  Used to decide whether to take
    pre-context timestamps (e.g. around parsing, before the statement
    context exists) without consuming the slot.  Racy across sessions
    by design — a wrong guess costs or saves two clock reads, never
    correctness. *)

val now_ns : unit -> int

(** {1 Statement contexts} *)

val start : t -> ?t0:int -> ?args:(string * string) list -> string -> ctx
(** Open a statement root span named after the argument.  [t0]
    backdates the root (e.g. to before parsing); default now. *)

val finish : t -> ctx -> unit
(** Close the root (and any span left open on this domain's stack),
    sort the events and push the finished record into the ring. *)

val trace_id : ctx -> int

val current : unit -> ctx option
(** This domain's ambient context, if any. *)

val set_current : ctx option -> unit
(** Install [ctx] as this domain's ambient context (clearing the open
    stack).  The statement path sets it after a positive {!sample} and
    must clear it after {!finish}. *)

val with_current : ctx option -> (unit -> 'a) -> 'a
(** Run [f] with the ambient context temporarily set — how worker
    domains inherit the submitting domain's context for the duration
    of a morsel batch. *)

(** {1 Recording} *)

val begin_span : ctx -> ?args:(string * string) list -> string -> span
(** Open a child of this domain's innermost open span (the root when
    the stack is empty) and push it on the stack. *)

val end_span : span -> unit
(** Close the span and move it to the context's scratch list. *)

val add_arg : span -> string -> string -> unit

val timed : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [timed name f]: if an ambient context is installed, run [f] inside
    a span (exception-safe); otherwise run [f] with no clock reads. *)

val note : string -> string -> unit
(** Attach an argument to this domain's innermost open span (the
    ambient root when nothing is open); no-op without a context.  How
    deep layers stamp verdicts — e.g. the plan-cache hit/miss — onto
    the enclosing phase span. *)

val emit :
  ctx -> ?args:(string * string) list -> string -> t0:int -> t1:int -> unit
(** Record an already-timed interval as a closed span (parented like
    {!begin_span}).  [t0] is clipped to the statement window. *)

(** {1 Reading the ring} *)

val count : t -> int
(** Records ever finished (not bounded by capacity). *)

val capacity : t -> int

val recent : t -> int -> record list
(** The last [n] records, newest first. *)

val find : t -> int -> record option
(** Look up a record by trace id, if still in the ring. *)

val duration_ns : record -> int
(** Root span duration. *)

val summary : record -> (string * int * int) list
(** Aggregate [(phase, spans, total_ns)] per phase name in first-seen
    order, root excluded — the per-statement breakdown [\slow] and
    [\spans] print. *)

val render : record -> string list
(** Human-readable span tree, indented by parent depth, with
    durations and args. *)

val to_chrome_json : record list -> string
(** Chrome trace-event JSON (the [{"traceEvents": [...]}] envelope):
    one complete ("ph":"X") event per span with microsecond
    timestamps relative to the earliest exported span, [pid] = trace
    id, [tid] = recording domain, plus process-name metadata events.
    Loadable in [chrome://tracing] and Perfetto. *)

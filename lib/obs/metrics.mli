(** Domain-safe metrics registry.

    One registry gathers every counter, gauge and histogram of a
    database instance behind a single namespace, replacing the ad-hoc
    per-module stats records ([Label_store.stats], [Wal.stats],
    [Buffer_pool.stats], ...) as the surface tools look at.  Design
    constraints, in order:

    - {b cheap enough to leave on}: a counter increment is one
      [Atomic.incr]; a histogram observation is one atomic increment
      plus an atomic add.  No locks, no allocation on the hot path.
    - {b domain-safe}: all mutation goes through [Atomic]; metric
      registration (rare) takes a mutex.
    - {b zero-cost when disabled}: a registry created with
      [~enabled:false] hands out counters and histograms whose update
      functions test one immediate bool and return — the ablation knob
      behind [Database.create ?metrics].

    Gauges are {e pull} callbacks evaluated at scrape time, so
    absorbing an existing stats record costs nothing until somebody
    asks ([\metrics], [metrics_snapshot], the Prometheus dump).  A
    gauge registered with [~kind:`Counter] is a monotone view over an
    external counter (e.g. WAL fsyncs) and is exposed with Prometheus
    TYPE [counter]. *)

type t

type counter
type histogram

val create : ?enabled:bool -> unit -> t
(** A fresh registry. [enabled] defaults to [true]. *)

val enabled : t -> bool

val counter : t -> ?help:string -> string -> counter
(** Register a named counter.  Raises [Invalid_argument] if the name
    is already taken or is not a valid metric name
    ([[a-zA-Z_][a-zA-Z0-9_]*]). *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge :
  t -> ?help:string -> ?kind:[ `Gauge | `Counter ] -> string ->
  (unit -> float) -> unit
(** Register a pull gauge: [read] is evaluated at scrape time.
    [~kind:`Counter] marks the value as monotone (a view over an
    external counter) for the Prometheus TYPE line.  Same name rules
    as {!counter}. *)

val histogram : t -> ?help:string -> ?buckets:float array -> string -> histogram
(** Fixed-bucket histogram.  [buckets] are inclusive upper bounds and
    must be strictly increasing; an implicit [+Inf] bucket is always
    appended.  The default buckets suit query latencies in seconds:
    1µs .. 10s, one decade apart. *)

val observe : histogram -> float -> unit
(** Record one observation (e.g. seconds). *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val quantile : histogram -> float -> float
(** Estimate the [q]-quantile (0..1) from the buckets, interpolating
    linearly within the bucket that holds the rank — PromQL's
    [histogram_quantile].  [nan] when empty; the overflow bucket
    reports the largest finite bound. *)

val export_quantiles : (string * float) list
(** The quantiles every export surface derives: [p50]/[p95]/[p99]. *)

val snapshot : t -> (string * float) list
(** Every metric flattened to [(name, value)], in registration order.
    Histograms contribute [name_count], [name_sum] and bucket-derived
    [name_p50]/[name_p95]/[name_p99] ([nan] while empty).  Empty when
    the registry is disabled. *)

val to_prometheus : t -> string
(** Prometheus text exposition: [# HELP]/[# TYPE] comments followed by
    sample lines; histograms expand to cumulative [_bucket{le="..."}]
    series plus [_sum]/[_count], followed by companion [_p50]/[_p95]/
    [_p99] gauges (omitted while the histogram is empty). *)

val reset : t -> unit
(** Zero every counter and histogram owned by the registry.  Pull
    gauges read external state and are untouched — reset their
    backing stores separately (see [Database.reset_stats]). *)

type counter = { c_on : bool; c_v : int Atomic.t }

type histogram = {
  h_on : bool;
  h_bounds : float array; (* strictly increasing upper bounds *)
  h_counts : int Atomic.t array; (* length = Array.length h_bounds + 1 *)
  h_sum_ns : int Atomic.t; (* sum scaled by 1e9 to stay in an int Atomic *)
}

type metric =
  | Counter of counter
  | Gauge of [ `Gauge | `Counter ] * (unit -> float)
  | Histogram of histogram

type entry = { e_name : string; e_help : string; e_metric : metric }

type t = {
  enabled : bool;
  mu : Mutex.t;
  mutable entries : entry list; (* reverse registration order *)
  names : (string, unit) Hashtbl.t;
}

let create ?(enabled = true) () =
  { enabled; mu = Mutex.create (); entries = []; names = Hashtbl.create 32 }

let enabled t = t.enabled

let valid_name n =
  n <> ""
  && (match n.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       n

let register t name help metric =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Metrics.register: bad metric name %S" name);
  Mutex.protect t.mu (fun () ->
      if Hashtbl.mem t.names name then
        invalid_arg (Printf.sprintf "Metrics.register: duplicate metric %S" name);
      Hashtbl.replace t.names name ();
      t.entries <- { e_name = name; e_help = help; e_metric = metric } :: t.entries)

let counter t ?(help = "") name =
  let c = { c_on = t.enabled; c_v = Atomic.make 0 } in
  register t name help (Counter c);
  c

let incr c = if c.c_on then Atomic.incr c.c_v
let add c n = if c.c_on then ignore (Atomic.fetch_and_add c.c_v n)
let counter_value c = Atomic.get c.c_v

let gauge t ?(help = "") ?(kind = `Gauge) name read =
  register t name help (Gauge (kind, read))

(* 1µs .. 10s, one decade apart: query latencies in seconds. *)
let default_buckets = [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.; 10. |]

let histogram t ?(help = "") ?(buckets = default_buckets) name =
  let ok = ref (Array.length buckets > 0) in
  Array.iteri
    (fun i b -> if i > 0 && b <= buckets.(i - 1) then ok := false)
    buckets;
  if not !ok then
    invalid_arg "Metrics.histogram: buckets must be non-empty, strictly increasing";
  let h =
    {
      h_on = t.enabled;
      h_bounds = Array.copy buckets;
      h_counts = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
      h_sum_ns = Atomic.make 0;
    }
  in
  register t name help (Histogram h);
  h

let bucket_index h v =
  (* First bucket whose upper bound admits [v]; last slot is +Inf. *)
  let n = Array.length h.h_bounds in
  let rec go i = if i >= n then n else if v <= h.h_bounds.(i) then i else go (i + 1) in
  go 0

let observe h v =
  if h.h_on then begin
    Atomic.incr h.h_counts.(bucket_index h v);
    ignore (Atomic.fetch_and_add h.h_sum_ns (int_of_float (v *. 1e9)))
  end

let histogram_count h =
  Array.fold_left (fun acc c -> acc + Atomic.get c) 0 h.h_counts

let histogram_sum h = float_of_int (Atomic.get h.h_sum_ns) /. 1e9

(* Prometheus-style histogram_quantile: find the bucket holding the
   q-rank observation and interpolate linearly inside it.  The first
   bucket interpolates from 0; the overflow bucket cannot be
   interpolated, so it reports the largest finite bound (a lower
   bound on the true quantile, like PromQL). *)
let quantile h q =
  let q = Float.min 1.0 (Float.max 0.0 q) in
  let counts = Array.map Atomic.get h.h_counts in
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then Float.nan
  else begin
    let rank = q *. float_of_int total in
    let nb = Array.length h.h_bounds in
    let rec go i cum =
      if i >= nb then h.h_bounds.(nb - 1)
      else
        let cum' = cum + counts.(i) in
        if float_of_int cum' >= rank then begin
          let lo = if i = 0 then 0.0 else h.h_bounds.(i - 1) in
          let hi = h.h_bounds.(i) in
          if counts.(i) = 0 then hi
          else
            lo
            +. (hi -. lo)
               *. ((rank -. float_of_int cum) /. float_of_int counts.(i))
        end
        else go (i + 1) cum'
    in
    go 0 0
  end

(* The quantiles every surface exports: p50/p95/p99 derived from the
   fixed buckets. *)
let export_quantiles = [ ("p50", 0.5); ("p95", 0.95); ("p99", 0.99) ]

let entries t = Mutex.protect t.mu (fun () -> List.rev t.entries)

let snapshot t =
  if not t.enabled then []
  else
    List.concat_map
      (fun e ->
        match e.e_metric with
        | Counter c -> [ (e.e_name, float_of_int (counter_value c)) ]
        | Gauge (_, read) -> [ (e.e_name, read ()) ]
        | Histogram h ->
            (e.e_name ^ "_count", float_of_int (histogram_count h))
            :: (e.e_name ^ "_sum", histogram_sum h)
            :: List.map
                 (fun (tag, q) -> (e.e_name ^ "_" ^ tag, quantile h q))
                 export_quantiles)
      (entries t)

let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let to_prometheus t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      let typ =
        match e.e_metric with
        | Counter _ | Gauge (`Counter, _) -> "counter"
        | Gauge (`Gauge, _) -> "gauge"
        | Histogram _ -> "histogram"
      in
      if e.e_help <> "" then
        Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" e.e_name e.e_help);
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" e.e_name typ);
      match e.e_metric with
      | Counter c ->
          Buffer.add_string buf
            (Printf.sprintf "%s %d\n" e.e_name (counter_value c))
      | Gauge (_, read) ->
          Buffer.add_string buf
            (Printf.sprintf "%s %s\n" e.e_name (float_str (read ())))
      | Histogram h ->
          let cum = ref 0 in
          Array.iteri
            (fun i c ->
              cum := !cum + Atomic.get c;
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" e.e_name
                   (float_str h.h_bounds.(i)) !cum))
            (Array.sub h.h_counts 0 (Array.length h.h_bounds));
          cum := !cum + Atomic.get h.h_counts.(Array.length h.h_bounds);
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" e.e_name !cum);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum %s\n" e.e_name (float_str (histogram_sum h)));
          Buffer.add_string buf
            (Printf.sprintf "%s_count %d\n" e.e_name !cum);
          (* bucket-derived quantiles as companion gauges (Prometheus
             histograms have no native quantile samples) *)
          List.iter
            (fun (tag, q) ->
              let v = quantile h q in
              if not (Float.is_nan v) then begin
                Buffer.add_string buf
                  (Printf.sprintf "# TYPE %s_%s gauge\n" e.e_name tag);
                Buffer.add_string buf
                  (Printf.sprintf "%s_%s %s\n" e.e_name tag (float_str v))
              end)
            export_quantiles)
    (entries t);
  Buffer.contents buf

let reset t =
  List.iter
    (fun e ->
      match e.e_metric with
      | Counter c -> Atomic.set c.c_v 0
      | Gauge _ -> ()
      | Histogram h ->
          Array.iter (fun c -> Atomic.set c 0) h.h_counts;
          Atomic.set h.h_sum_ns 0)
    (entries t)

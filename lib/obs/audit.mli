(** Append-only IFC audit log.

    Every security-relevant decision the enforcement layers make is
    recorded as one event: declassification through a view or an
    authority closure, authority delegation and revocation, Write-Rule
    and commit-label rejections, and session clearance changes.  The
    paper's declassifying views and closures presuppose exactly this
    trail — authority is only auditable if each exercise of it leaves
    a stamped record of {e who} (principal), {e what} (tags) and
    {e where} (originating statement).

    Events carry pre-rendered strings so this module depends on
    nothing above the standard library: callers render principal and
    tag names at emit time.  The log is a mutex-guarded ring (the
    newest [capacity] events are queryable; the total count is exact),
    optionally teed into a [sink] — e.g. a WAL appender — so the
    stream can survive the process. *)

type kind =
  | View_declassify  (** query read through a declassifying/relabeling view *)
  | Closure_call  (** authority closure invoked (procedure or trigger) *)
  | Delegate
  | Revoke
  | Write_rule_rejection
  | Commit_rejection  (** commit-label rule rejected a transaction *)
  | Clearance_raise  (** session label raised (addsecrecy) *)
  | Session_declassify  (** session label lowered under authority *)

val kind_name : kind -> string
(** Stable lower-snake identifier, e.g. ["write_rule_rejection"]. *)

type event = {
  ev_seq : int;  (** 0-based position in the stream *)
  ev_kind : kind;
  ev_principal : string;
  ev_tags : string list;  (** tags involved, rendered by name *)
  ev_stmt : string;  (** originating statement, [""] for API calls *)
  ev_detail : string;  (** free-form context, e.g. view or closure name *)
}

val event_to_string : event -> string
(** One-line rendering: [#seq kind principal=... tags={...} detail ...]. *)

type t

val create : ?capacity:int -> ?sink:(event -> unit) -> unit -> t
(** [capacity] bounds the queryable ring (default 4096).  [sink], if
    given, receives every event as it is emitted (under the log's
    mutex — keep it cheap). *)

val emit :
  t ->
  kind:kind ->
  principal:string ->
  ?tags:string list ->
  ?stmt:string ->
  ?detail:string ->
  unit ->
  unit

val count : t -> int
(** Total events ever emitted. *)

val recent : t -> int -> event list
(** The last [n] retained events, newest first. *)

val events : t -> event list
(** All retained events, oldest first. *)

val count_kind : t -> kind -> int
(** Retained events of [kind] (equals the emitted count while the ring
    has not wrapped). *)

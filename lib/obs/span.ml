type event = {
  ev_id : int;
  ev_parent : int;
  ev_name : string;
  ev_dom : int;
  ev_t0 : int;
  ev_t1 : int;
  ev_args : (string * string) list;
}

type record = { r_id : int; r_events : event list }

type ctx = {
  c_id : int;
  c_root_name : string;
  c_root_t0 : int;
  c_root_dom : int;
  mutable c_root_args : (string * string) list;
  c_next : int Atomic.t; (* event id allocator; 0 is the root *)
  c_scratch : event list Atomic.t; (* closed spans, CAS-pushed from any domain *)
}

type span = {
  sp_ctx : ctx;
  sp_id : int;
  sp_parent : int;
  sp_name : string;
  sp_dom : int;
  sp_t0 : int;
  mutable sp_args : (string * string) list;
}

type t = {
  every : int; (* sample every nth statement; <= 0 never *)
  stmt_seq : int Atomic.t; (* statements offered to the sampler *)
  trace_ids : int Atomic.t;
  mu : Mutex.t; (* guards the ring; taken once per sampled statement *)
  cap : int;
  ring : record option array;
  mutable finished : int; (* records ever pushed *)
}

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)
let dom_id () = (Domain.self () :> int)

let create ?(capacity = 256) ?(sample_every = 0) () =
  let capacity = max 1 capacity in
  {
    every = sample_every;
    stmt_seq = Atomic.make 0;
    trace_ids = Atomic.make 0;
    mu = Mutex.create ();
    cap = capacity;
    ring = Array.make capacity None;
    finished = 0;
  }

let enabled t = t.every > 0
let sample_every t = t.every
let capacity t = t.cap

let sample t =
  t.every > 0 && Atomic.fetch_and_add t.stmt_seq 1 mod t.every = 0

let peek t = t.every > 0 && Atomic.get t.stmt_seq mod t.every = 0

(* ------------------------------------------------------------------ *)
(* Ambient context: one frame per domain.  The open-span stack is only
   ever touched by its own domain, so begin/end nesting needs no
   synchronization; cross-domain merging happens through the
   context's CAS scratch list. *)

type frame = { mutable f_ctx : ctx option; mutable f_stack : span list }

let frame_key : frame Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { f_ctx = None; f_stack = [] })

let current () = (Domain.DLS.get frame_key).f_ctx

let set_current c =
  let fr = Domain.DLS.get frame_key in
  fr.f_ctx <- c;
  fr.f_stack <- []

let with_current c f =
  let fr = Domain.DLS.get frame_key in
  let saved_ctx = fr.f_ctx and saved_stack = fr.f_stack in
  fr.f_ctx <- c;
  fr.f_stack <- [];
  Fun.protect
    ~finally:(fun () ->
      fr.f_ctx <- saved_ctx;
      fr.f_stack <- saved_stack)
    f

(* ------------------------------------------------------------------ *)
(* Recording *)

let start t ?t0 ?(args = []) name =
  let t0 = match t0 with Some n -> n | None -> now_ns () in
  {
    c_id = Atomic.fetch_and_add t.trace_ids 1;
    c_root_name = name;
    c_root_t0 = t0;
    c_root_dom = dom_id ();
    c_root_args = args;
    c_next = Atomic.make 1;
    c_scratch = Atomic.make [];
  }

let trace_id ctx = ctx.c_id

let push_event ctx ev =
  let rec loop () =
    let old = Atomic.get ctx.c_scratch in
    if not (Atomic.compare_and_set ctx.c_scratch old (ev :: old)) then loop ()
  in
  loop ()

(* The innermost open span of this domain belonging to [ctx], else the
   root (id 0). *)
let parent_id ctx =
  match (Domain.DLS.get frame_key).f_stack with
  | sp :: _ when sp.sp_ctx == ctx -> sp.sp_id
  | _ -> 0

let begin_span ctx ?(args = []) name =
  let fr = Domain.DLS.get frame_key in
  let sp =
    {
      sp_ctx = ctx;
      sp_id = Atomic.fetch_and_add ctx.c_next 1;
      sp_parent = parent_id ctx;
      sp_name = name;
      sp_dom = dom_id ();
      sp_t0 = now_ns ();
      sp_args = args;
    }
  in
  fr.f_stack <- sp :: fr.f_stack;
  sp

let close_span sp ~t1 =
  push_event sp.sp_ctx
    {
      ev_id = sp.sp_id;
      ev_parent = sp.sp_parent;
      ev_name = sp.sp_name;
      ev_dom = sp.sp_dom;
      ev_t0 = sp.sp_t0;
      ev_t1 = max sp.sp_t0 t1;
      ev_args = List.rev sp.sp_args;
    }

let end_span sp =
  let t1 = now_ns () in
  let fr = Domain.DLS.get frame_key in
  (match fr.f_stack with
  | top :: rest when top == sp -> fr.f_stack <- rest
  | stack -> fr.f_stack <- List.filter (fun s -> s != sp) stack);
  close_span sp ~t1

let add_arg sp k v = sp.sp_args <- (k, v) :: sp.sp_args

let timed ?args name f =
  match current () with
  | None -> f ()
  | Some ctx ->
      let sp = begin_span ctx ?args name in
      Fun.protect ~finally:(fun () -> end_span sp) f

let note k v =
  let fr = Domain.DLS.get frame_key in
  match fr.f_stack with
  | sp :: _ -> add_arg sp k v
  | [] -> (
      match fr.f_ctx with
      | Some ctx -> ctx.c_root_args <- (k, v) :: ctx.c_root_args
      | None -> ())

let emit ctx ?(args = []) name ~t0 ~t1 =
  (* clip to the statement window so records stay well-nested even
     when the measured interval started before this statement (e.g. a
     lock held since an earlier statement of an explicit txn) *)
  let t0 = max t0 ctx.c_root_t0 in
  push_event ctx
    {
      ev_id = Atomic.fetch_and_add ctx.c_next 1;
      ev_parent = parent_id ctx;
      ev_name = name;
      ev_dom = dom_id ();
      ev_t0 = t0;
      ev_t1 = max t0 t1;
      ev_args = args;
    }

let finish t ctx =
  let t1 = now_ns () in
  (* close anything this domain left open (error paths); other domains
     have long since drained — parallel batches join before the
     statement returns *)
  let fr = Domain.DLS.get frame_key in
  List.iter
    (fun sp -> if sp.sp_ctx == ctx then close_span sp ~t1)
    fr.f_stack;
  fr.f_stack <- [];
  let root =
    {
      ev_id = 0;
      ev_parent = -1;
      ev_name = ctx.c_root_name;
      ev_dom = ctx.c_root_dom;
      ev_t0 = ctx.c_root_t0;
      ev_t1 = max ctx.c_root_t0 t1;
      ev_args = List.rev ctx.c_root_args;
    }
  in
  let events =
    List.sort
      (fun a b ->
        if a.ev_t0 <> b.ev_t0 then compare a.ev_t0 b.ev_t0
        else compare a.ev_id b.ev_id)
      (root :: Atomic.get ctx.c_scratch)
  in
  let r = { r_id = ctx.c_id; r_events = events } in
  Mutex.protect t.mu (fun () ->
      t.ring.(t.finished mod t.cap) <- Some r;
      t.finished <- t.finished + 1)

(* ------------------------------------------------------------------ *)
(* Reading the ring *)

let count t = Mutex.protect t.mu (fun () -> t.finished)

let recent t n =
  Mutex.protect t.mu (fun () ->
      let avail = min t.finished t.cap in
      let n = min (max 0 n) avail in
      List.init n (fun i ->
          match t.ring.((t.finished - 1 - i) mod t.cap) with
          | Some r -> r
          | None -> assert false))

let find t id =
  Mutex.protect t.mu (fun () ->
      let rec go i =
        if i >= min t.finished t.cap then None
        else
          match t.ring.(i) with
          | Some r when r.r_id = id -> Some r
          | _ -> go (i + 1)
      in
      go 0)

let duration_ns r =
  match r.r_events with
  | root :: _ when root.ev_id = 0 -> root.ev_t1 - root.ev_t0
  | _ -> 0

let summary r =
  let order = ref [] in
  let acc : (string, int * int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      if ev.ev_id <> 0 then begin
        if not (Hashtbl.mem acc ev.ev_name) then
          order := ev.ev_name :: !order;
        let n, ns =
          Option.value (Hashtbl.find_opt acc ev.ev_name) ~default:(0, 0)
        in
        Hashtbl.replace acc ev.ev_name (n + 1, ns + (ev.ev_t1 - ev.ev_t0))
      end)
    r.r_events;
  List.rev_map
    (fun name ->
      let n, ns = Hashtbl.find acc name in
      (name, n, ns))
    !order

let pp_ns ns =
  if ns >= 1_000_000 then Printf.sprintf "%.2fms" (float_of_int ns /. 1e6)
  else if ns >= 1_000 then Printf.sprintf "%.1fus" (float_of_int ns /. 1e3)
  else Printf.sprintf "%dns" ns

let render r =
  (* depth by following parent links; events are sorted by start time
     so parents (which start no later than their children) resolve
     before their children are printed *)
  let depth : (int, int) Hashtbl.t = Hashtbl.create 16 in
  List.map
    (fun ev ->
      let d =
        if ev.ev_parent < 0 then 0
        else 1 + Option.value (Hashtbl.find_opt depth ev.ev_parent) ~default:0
      in
      Hashtbl.replace depth ev.ev_id d;
      let args =
        match ev.ev_args with
        | [] -> ""
        | l ->
            " ["
            ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) l)
            ^ "]"
      in
      Printf.sprintf "%s%-12s %8s%s%s"
        (String.make (2 * d) ' ')
        ev.ev_name (pp_ns (ev.ev_t1 - ev.ev_t0))
        (if ev.ev_dom > 0 then Printf.sprintf " (dom %d)" ev.ev_dom else "")
        args)
    r.r_events

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_chrome_json records =
  let t_base =
    List.fold_left
      (fun acc r ->
        List.fold_left (fun acc ev -> min acc ev.ev_t0) acc r.r_events)
      max_int records
  in
  let t_base = if t_base = max_int then 0 else t_base in
  let us ns = float_of_int (ns - t_base) /. 1e3 in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  let first = ref true in
  let add s =
    if !first then first := false else Buffer.add_string buf ",\n ";
    Buffer.add_string buf s
  in
  List.iter
    (fun r ->
      add
        (Printf.sprintf
           "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %d, \
            \"tid\": 0, \"args\": {\"name\": \"stmt #%d\"}}"
           r.r_id r.r_id);
      List.iter
        (fun ev ->
          let args =
            String.concat ", "
              (List.map
                 (fun (k, v) ->
                   Printf.sprintf "\"%s\": \"%s\"" (json_escape k)
                     (json_escape v))
                 ev.ev_args)
          in
          add
            (Printf.sprintf
               "{\"name\": \"%s\", \"cat\": \"ifdb\", \"ph\": \"X\", \
                \"ts\": %.3f, \"dur\": %.3f, \"pid\": %d, \"tid\": %d, \
                \"args\": {%s}}"
               (json_escape ev.ev_name) (us ev.ev_t0)
               (float_of_int (ev.ev_t1 - ev.ev_t0) /. 1e3)
               r.r_id ev.ev_dom args))
        r.r_events)
    records;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

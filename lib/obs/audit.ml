type kind =
  | View_declassify
  | Closure_call
  | Delegate
  | Revoke
  | Write_rule_rejection
  | Commit_rejection
  | Clearance_raise
  | Session_declassify

let kind_name = function
  | View_declassify -> "view_declassify"
  | Closure_call -> "closure_call"
  | Delegate -> "delegate"
  | Revoke -> "revoke"
  | Write_rule_rejection -> "write_rule_rejection"
  | Commit_rejection -> "commit_rejection"
  | Clearance_raise -> "clearance_raise"
  | Session_declassify -> "session_declassify"

type event = {
  ev_seq : int;
  ev_kind : kind;
  ev_principal : string;
  ev_tags : string list;
  ev_stmt : string;
  ev_detail : string;
}

let event_to_string e =
  let tags =
    match e.ev_tags with
    | [] -> ""
    | ts -> Printf.sprintf " tags={%s}" (String.concat ", " ts)
  in
  let detail = if e.ev_detail = "" then "" else " " ^ e.ev_detail in
  let stmt = if e.ev_stmt = "" then "" else Printf.sprintf " stmt=[%s]" e.ev_stmt in
  Printf.sprintf "#%d %s principal=%s%s%s%s" e.ev_seq (kind_name e.ev_kind)
    e.ev_principal tags detail stmt

type t = {
  mu : Mutex.t;
  cap : int;
  ring : event option array;
  mutable total : int;
  sink : (event -> unit) option;
}

let create ?(capacity = 4096) ?sink () =
  let capacity = max 1 capacity in
  { mu = Mutex.create (); cap = capacity; ring = Array.make capacity None; total = 0; sink }

let emit t ~kind ~principal ?(tags = []) ?(stmt = "") ?(detail = "") () =
  Mutex.protect t.mu (fun () ->
      let e =
        {
          ev_seq = t.total;
          ev_kind = kind;
          ev_principal = principal;
          ev_tags = tags;
          ev_stmt = stmt;
          ev_detail = detail;
        }
      in
      t.ring.(t.total mod t.cap) <- Some e;
      t.total <- t.total + 1;
      match t.sink with None -> () | Some f -> f e)

let count t = Mutex.protect t.mu (fun () -> t.total)

let recent t n =
  Mutex.protect t.mu (fun () ->
      let avail = min t.total t.cap in
      let n = min n avail in
      List.init n (fun i ->
          match t.ring.((t.total - 1 - i) mod t.cap) with
          | Some e -> e
          | None -> assert false))

let events t = List.rev (recent t max_int)

let count_kind t kind =
  List.length (List.filter (fun e -> e.ev_kind = kind) (events t))

(** The lint driver behind [ifdb_lint] and the shell's [\check]: runs
    the static analyzer ({!Ifdb_analysis.Analysis}) over a SQL script
    (or the SQL embedded in an OCaml source file) against a fresh
    database, executing clean statements along the way so later ones
    are analyzed against the data state earlier ones produced.

    Script conventions ({!Ifdb_analysis.Sqlscript}): one-line [\meta]
    commands drive session state — [\principal NAME] (connect/create
    and switch), [\newtag NAME] (owned by the current principal),
    [\addsecrecy TAG], [\declassify TAG], [\delegate TAG PRINCIPAL],
    [\revoke TAG PRINCIPAL] — and [-- lint: expect code…] comments
    declare the diagnostics a statement is meant to trigger.

    Failure rules: an expected code the analyzer does not produce is a
    failure; an [Error]-severity diagnostic that is not expected is a
    failure; warnings never need annotations.  Statements with
    [Error]-severity (or unknown-name) diagnostics are not executed;
    clean statements that still fail at runtime surface the failure as
    a [runtime-error] diagnostic, which obeys the same rules. *)

type mode = {
  m_auto_tags : bool;
      (** create tags the script references but never declares, owned
          by a synthetic [lint_world] principal and delegated to the
          current session principal — for linting SQL extracted from
          programs that manage tags outside SQL *)
  m_lenient_names : bool;
      (** demote unknown-name errors to warnings (the schema may live
          outside the linted text); affected statements are analyzed
          but not executed *)
}

val sql_mode : mode
(** Strict: for self-contained [.sql] scripts (the lint corpus). *)

val ml_mode : mode
(** Lenient + auto-tags: for SQL extracted from [.ml] examples. *)

type outcome = {
  o_report : string;
      (** deterministic rendering of every diagnostic, one [line N:]
          header per offending statement — the golden-file payload *)
  o_failures : string list;  (** expect-rule violations, in order *)
}

val lint_script : mode -> string -> outcome
(** Lint SQL script text against a fresh in-memory database. *)

val lint_ml : mode -> string -> outcome
(** Extract the SQL literals from OCaml source text and lint them in
    order, with diagnostics attributed to the [.ml] source lines. *)

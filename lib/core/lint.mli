(** The lint driver behind [ifdb_lint] and the shell's [\check]: runs
    the static analyzer ({!Ifdb_analysis.Analysis}) over a SQL script
    (or the SQL embedded in an OCaml source file) against a fresh
    database.

    Two modes:

    - {b per-statement} ([--stmt], and always for [--ml]): each
      statement is analyzed in isolation against the live database
      state, and clean statements are executed so later ones see the
      data state earlier ones produced;
    - {b trace} ([--trace], the default for [.sql] scripts): nothing
      executes — one symbolic trace ({!Ifdb_analysis.Trace_state}) is
      threaded through the whole script, adding the cross-statement
      verdicts per-statement linting cannot see (declassify-after-
      revoke, txn-commit-trap, dead-write, stale-prepare,
      unreachable-stmt, guaranteed transaction-control failures, and
      EXECUTE analyzed as its fully bound statement).

    Script conventions ({!Ifdb_analysis.Sqlscript}): one-line [\meta]
    commands drive session state — [\principal NAME] (connect/create
    and switch), [\newtag NAME] (owned by the current principal),
    [\addsecrecy TAG], [\declassify TAG], [\delegate TAG PRINCIPAL],
    [\revoke TAG PRINCIPAL] — and [-- lint: expect code…] comments
    declare the diagnostics a statement is meant to trigger
    ([expect-trace] / [expect-stmt] scope the codes to one mode).

    Failure rules: an expected code the analyzer does not produce is a
    failure; an [Error]-severity diagnostic that is not expected is a
    failure; warnings never need annotations.  In per-statement mode,
    statements with [Error]-severity (or unknown-name) diagnostics are
    not executed; clean statements that still fail at runtime surface
    the failure as a [runtime-error] diagnostic, which obeys the same
    rules. *)

type mode = {
  m_auto_tags : bool;
      (** create tags the script references but never declares, owned
          by a synthetic [lint_world] principal and delegated to the
          current session principal — for linting SQL extracted from
          programs that manage tags outside SQL *)
  m_lenient_names : bool;
      (** demote unknown-name errors to warnings (the schema may live
          outside the linted text); affected statements are analyzed
          but not executed *)
  m_trace : bool;
      (** trace mode: thread one symbolic trace through the whole
          script instead of analyzing and executing statement by
          statement *)
}

val sql_mode : mode
(** Strict per-statement: for self-contained [.sql] scripts. *)

val ml_mode : mode
(** Lenient + auto-tags, per-statement: for SQL extracted from [.ml]
    examples. *)

val trace_mode : mode
(** Strict trace-level: the default for [.sql] scripts. *)

type outcome = {
  o_report : string;
      (** deterministic rendering of every diagnostic, one [line N:]
          header per offending statement — the golden-file payload *)
  o_failures : string list;  (** expect-rule violations, in order *)
}

val parse_bindings : string -> Ifdb_rel.Value.t array
(** Parse a ["1,3.5,null,alice"] binding spec (an optional [<...>]
    wrapper is stripped): ints and floats parse as numbers, ["null"] as
    NULL, anything else as text. *)

val lint_script :
  ?bindings:Ifdb_rel.Value.t array -> mode -> string -> outcome
(** Lint SQL script text against a fresh in-memory database.
    [bindings] (from [ifdb_lint --bind]) substitutes [$n] placeholders
    with constants before analysis, so parameterized templates are
    linted as the concrete statements they would execute as.  When
    absent, a [-- lint: bind V1,V2,…] directive in the script supplies
    the default bindings. *)

val lint_ml : mode -> string -> outcome
(** Extract the SQL literals from OCaml source text and lint them in
    order, with diagnostics attributed to the [.ml] source lines.
    Always per-statement ([m_trace] is ignored). *)

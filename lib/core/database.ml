module Label = Ifdb_difc.Label
module Label_store = Ifdb_difc.Label_store
module Tag = Ifdb_difc.Tag
module Principal = Ifdb_difc.Principal
module Authority = Ifdb_difc.Authority
module Value = Ifdb_rel.Value
module Tuple = Ifdb_rel.Tuple
module Schema = Ifdb_rel.Schema
module Expr = Ifdb_rel.Expr
module Datatype = Ifdb_rel.Datatype
module Heap = Ifdb_storage.Heap
module Btree = Ifdb_storage.Btree
module Buffer_pool = Ifdb_storage.Buffer_pool
module Wal = Ifdb_storage.Wal
module Manager = Ifdb_txn.Manager
module Catalog = Ifdb_engine.Catalog
module Planner = Ifdb_engine.Planner
module Plan = Ifdb_engine.Plan
module Executor = Ifdb_engine.Executor
module Ivm = Ifdb_engine.Ivm
module Domain_pool = Ifdb_engine.Domain_pool
module A = Ifdb_sql.Ast
module Parser = Ifdb_sql.Parser
module Printer = Ifdb_sql.Printer
module Analysis = Ifdb_analysis.Analysis
module Trace_state = Ifdb_analysis.Trace_state
module Interval = Ifdb_analysis.Interval
module Diag = Ifdb_analysis.Diag
module Metrics = Ifdb_obs.Metrics
module Trace = Ifdb_obs.Trace
module Span = Ifdb_obs.Span
module Audit = Ifdb_obs.Audit
module Group_commit = Ifdb_txn.Group_commit

open Errors

type isolation = Snapshot | Serializable

(* Instruments the statement path updates directly.  Everything else in
   the registry is a pull gauge over component stats, so the hot path
   pays nothing for it. *)
type mx = {
  mx_statements : Metrics.counter;
  mx_errors : Metrics.counter;
  mx_commits : Metrics.counter;
  mx_aborts : Metrics.counter;
  mx_slow : Metrics.counter;
  mx_latency : Metrics.histogram;
  mx_pc_hits : Metrics.counter;
  mx_pc_misses : Metrics.counter;
  mx_pc_invalidations : Metrics.counter;
}

(* ------------------------------------------------------------------ *)
(* Plan cache                                                          *)
(* ------------------------------------------------------------------ *)

(* One cached plan.  Plans are name-based (scans resolve tables through
   the executor context at run time) and parameter slots are [Expr.Param]
   leaves, so a single plan serves every binding — but view expansion,
   declassify labels and index choice were all resolved against a
   specific catalog and authority state, so every entry is stamped with
   the versions it was planned under and discarded when either moves.
   Scan-time confinement ([partition_scan_filter]) is re-derived per
   execution from the session, never baked into the plan. *)
type plan_entry = {
  pe_plan : Plan.t;
  pe_columns : string list;
  pe_cat_version : int;
  pe_generation : int;  (* Authority.generation at plan time *)
}

(* A prepared statement's cached artifacts: the parsed body ($n
   placeholders intact), its prepare-time diagnostics, and plans keyed
   by the interned session-label id — sessions under different labels
   may see different view expansions, so they never share an entry
   (mirroring the IVM reader cache).  [sc_lock] is set only for entries
   in the database-wide implicit cache, which sessions on other domains
   may touch concurrently; per-session prepared statements need none. *)
type stmt_cache = {
  sc_stmt : A.stmt;
  sc_text : string;  (* canonical rendering, placeholders intact *)
  sc_nparams : int;
  sc_cacheable : bool;
      (* SELECT without expression-position subqueries: those lower to
         memoizing [Expr.Lazy_const] thunks capturing one execution's
         context, so such plans must be rebuilt every execution *)
  mutable sc_diags : Diag.t list;
  mutable sc_stamp : int * int * int;
      (* (catalog version, authority generation, session-label id) the
         diagnostics were computed under *)
  sc_plans : (int, plan_entry) Hashtbl.t;  (* session-label id → plan *)
  mutable sc_hits : int;
  sc_lock : Mutex.t option;
}

type trigger_event = {
  ev_table : string;
  ev_kind : [ `Insert | `Update | `Delete ];
  ev_old : Tuple.t option;
  ev_new : Tuple.t option;
}

type trigger = {
  trg_name : string;
  trg_table : string; (* normalized *)
  trg_kinds : [ `Insert | `Update | `Delete ] list;
  trg_timing : [ `Immediate | `Deferred ];
  trg_authority : Principal.t option;
  trg_fn : session -> trigger_event -> unit;
}

and callable = {
  c_authority : Principal.t option;
  c_fn : session -> Value.t list -> Value.t;
}

and t = {
  auth : Authority.t;
  lstore : Label_store.t;
  cat : Catalog.t;
  mgr : Manager.t;
  bp : Buffer_pool.t;
  ivm : Ivm.t;
      (* incrementally maintained materialized views; fed from the
         commit path, served from the executor's view hook *)
  ifc : bool;
  iso : isolation;
  strict : bool; (* static-analysis errors reject statements at prepare *)
  admin_p : Principal.t;
  scalars : (string, callable) Hashtbl.t;
  procedures : (string, callable) Hashtbl.t;
  mutable triggers : trigger list;
  mutable commits_since_vacuum : int;
  autovacuum_every : int;
  parallelism : int;
      (* domains used per query (caller included); 1 = serial *)
  morsel : int; (* slots per morsel for parallel sequential scans *)
  partitioned : bool;
      (* label-sharded storage: scans enumerate heap partitions whose
         label flows to the session instead of filtering per tuple *)
  pruned_parts : int Atomic.t;
      (* partitions pruned from scans by label confinement (atomic:
         bumped from parallel scan setup too) *)
  dpool : Domain_pool.t option; (* Some iff parallelism > 1 *)
  metrics : Metrics.t;
  mx : mx;
  audit : Audit.t;
  slow : Trace.slow_log;
  slow_ns : int;
      (* statements at/above this duration land in the slow-query log;
         [max_int] disables the log (and its clock reads) entirely *)
  spans : Span.t;
      (* statement-lifecycle span recorder; sampling off by default
         ([trace_sample = 0]), in which case the statement path costs
         one atomic read and no clock *)
  plan_cache_on : bool;
  pc_mu : Mutex.t;
  pc_alias : (string, string) Hashtbl.t;
      (* trimmed raw statement text → canonical printed text, so the
         implicit cache is keyed on what applications actually send *)
  pc_stmts : (string, stmt_cache) Hashtbl.t;
      (* canonical text → cached statement (implicit, database-wide) *)
}

and session = {
  sdb : t;
  mutable s_principal : Principal.t;
  mutable s_label : Label.t;
  mutable s_txn : Manager.txn option;
  mutable s_implicit : bool;
  mutable s_deferred : (trigger * trigger_event * Label.t * Principal.t) list;
      (* queued newest-first; each entry captured the statement's label
         and principal, per section 5.2.3 *)
  mutable s_warnings : Diag.t list;
      (* diagnostics the prepare-time analyzer attached to the most
         recently executed statement *)
  mutable s_stmt : A.stmt option;
      (* statement being executed, so audit events can name their
         originating SQL without rendering it unless an event fires *)
  mutable s_trace : Trace.t option;
      (* active EXPLAIN ANALYZE trace; threaded into the executor ctx
         and the label-confinement scan filters *)
  mutable s_params : Value.t array;
      (* the current EXECUTE's bindings, frozen before execution starts;
         [Expr.Param n] reads slot n-1.  Empty outside EXECUTE. *)
  s_prepared : (string, stmt_cache) Hashtbl.t;
      (* session-local prepared statements, keyed by normalized name *)
  mutable s_flow : Trace_state.t option;
      (* non-symbolic trace shadowing the open explicit transaction:
         statement indices and per-statement write records, so COMMIT
         diagnostics can cite the statement that trapped the
         transaction.  None outside an explicit transaction. *)
}

type result =
  | Rows of { columns : string list; tuples : Tuple.t list }
  | Affected of int
  | Done of string

let norm = String.lowercase_ascii

let authority t = t.auth
let label_store t = t.lstore
let catalog t = t.cat
let manager t = t.mgr
let pool t = t.bp
let wal t = Manager.wal t.mgr
let group_commit t = Manager.group_commit t.mgr
let flush_wal t = Manager.flush_wal t.mgr
let ifc_enabled t = t.ifc
let isolation t = t.iso
let admin t = t.admin_p
let metrics t = t.metrics
let metrics_snapshot t = Metrics.snapshot t.metrics
let metrics_prometheus t = Metrics.to_prometheus t.metrics
let audit_log t = t.audit
let view_stats t = Ivm.stats t.ivm
let slow_queries ?(n = 20) t = Trace.slow_log_recent t.slow n
let spans t = t.spans
let partitioned t = t.partitioned
let partitions_pruned t = Atomic.get t.pruned_parts

type table_partitions = {
  tp_table : string;
  tp_stats : Heap.partition_stats list;
}

let partition_report t =
  List.sort
    (fun a b -> String.compare a.tp_table b.tp_table)
    (List.filter_map
       (fun tbl ->
         let heap = tbl.Catalog.tbl_heap in
         match Heap.partition_stats heap with
         | [] -> None
         | stats -> Some { tp_table = Heap.name heap; tp_stats = stats })
       (Catalog.all_tables t.cat))

let reset_stats t =
  Metrics.reset t.metrics;
  ignore (Label_store.take_stats t.lstore);
  ignore (Buffer_pool.take_stats t.bp);
  Wal.reset_stats (wal t);
  Group_commit.reset_stats (group_commit t)

let connect t ~principal =
  {
    sdb = t;
    s_principal = principal;
    s_label = Label.empty;
    s_txn = None;
    s_implicit = false;
    s_deferred = [];
    s_warnings = [];
    s_stmt = None;
    s_trace = None;
    s_params = [||];
    s_prepared = Hashtbl.create 8;
    s_flow = None;
  }

let connect_admin t = connect t ~principal:t.admin_p
let database s = s.sdb
let session_principal s = s.s_principal
let session_label s = s.s_label
let session_warnings s = s.s_warnings

(* Shared label renderer for IFC error messages and lint diagnostics:
   tag names instead of raw ids. *)
let label_string db l = Authority.label_to_string db.auth l

(* ------------------------------------------------------------------ *)
(* Audit helpers                                                       *)
(* ------------------------------------------------------------------ *)

let tag_string db tag =
  match Authority.tag_name db.auth tag with
  | "" -> Format.asprintf "%a" Tag.pp tag
  | name -> name
  | exception _ -> Format.asprintf "%a" Tag.pp tag

let principal_string db p =
  match Authority.principal_name db.auth p with
  | "" -> Format.asprintf "%a" Principal.pp p
  | name -> name
  | exception _ -> Format.asprintf "%a" Principal.pp p

(* How a statement appears in the audit trail and the slow-query log.
   EXECUTE renders as its prepared body with the [$n] placeholders
   intact — never the bound values: both logs outlive the session's
   label, so leaking a parameter there would bypass confinement. *)
let stmt_display s (st : A.stmt) =
  match st with
  | A.S_execute { ex_name; _ } -> (
      match Hashtbl.find_opt s.s_prepared (norm ex_name) with
      | Some sc -> Printf.sprintf "EXECUTE %s AS %s" ex_name sc.sc_text
      | None -> "EXECUTE " ^ ex_name)
  | _ -> Printer.stmt_to_string st

(* What a span may say about a statement: the head keyword only.
   Statement text never enters a span — a label literal can embed tag
   names, and span exports must stay label-clean (DESIGN.md §6.10). *)
let stmt_kind (st : A.stmt) =
  match st with
  | A.S_select _ -> "select"
  | A.S_insert _ -> "insert"
  | A.S_update _ -> "update"
  | A.S_delete _ -> "delete"
  | A.S_begin -> "begin"
  | A.S_commit -> "commit"
  | A.S_rollback -> "rollback"
  | A.S_explain _ -> "explain"
  | A.S_prepare _ -> "prepare"
  | A.S_execute _ -> "execute"
  | A.S_deallocate _ -> "deallocate"
  | _ -> "ddl"

(* Root-span arguments: statement kind, plus — for EXECUTE — the
   prepared name and its arguments as [$n] placeholders (never the
   bound values, same policy as the slow-query log above). *)
let span_root_args (st : A.stmt) =
  match st with
  | A.S_execute { ex_name; ex_args } ->
      let params =
        String.concat ","
          (List.mapi (fun i _ -> "$" ^ string_of_int (i + 1)) ex_args)
      in
      [ ("stmt", "execute"); ("prepared", ex_name); ("params", params) ]
  | _ -> [ ("stmt", stmt_kind st) ]

(* The statement text is rendered only when an event actually fires;
   stamping [s_stmt] per statement is just a pointer write. *)
let audit_emit s ~kind ?(tags = []) ?(detail = "") () =
  let db = s.sdb in
  let stmt =
    match s.s_stmt with Some st -> stmt_display s st | None -> ""
  in
  Audit.emit db.audit ~kind
    ~principal:(principal_string db s.s_principal)
    ~tags:(List.map (tag_string db) tags)
    ~stmt ~detail ()

(* ------------------------------------------------------------------ *)
(* Label manipulation                                                  *)
(* ------------------------------------------------------------------ *)

let add_secrecy s tag =
  let db = s.sdb in
  if db.ifc then begin
    (* clearance rule: under serializability, raising the label inside
       a transaction requires authority for the tag (section 5.1) *)
    if db.iso = Serializable && s.s_txn <> None
       && not (Authority.has_authority db.auth s.s_principal tag)
    then
      Errors.authority
        "clearance rule: adding tag %s to the label of a serializable \
         transaction requires authority for it (session label %s)"
        (label_string db (Label.singleton tag))
        (label_string db s.s_label)
  end;
  if db.ifc && not (Label.mem tag s.s_label) then
    audit_emit s ~kind:Audit.Clearance_raise ~tags:[ tag ] ();
  s.s_label <- Label.add tag s.s_label

let declassify s tag =
  let db = s.sdb in
  if db.ifc then Authority.check_authority db.auth s.s_principal tag;
  if db.ifc && Label.mem tag s.s_label then
    audit_emit s ~kind:Audit.Session_declassify ~tags:[ tag ] ();
  s.s_label <- Label.remove tag s.s_label

let set_label s target =
  let added = Label.diff target s.s_label in
  let removed = Label.diff s.s_label target in
  Label.iter (fun tag -> add_secrecy s tag) added;
  Label.iter (fun tag -> declassify s tag) removed

let with_label s target f =
  let saved = s.s_label in
  set_label s target;
  match f () with
  | r ->
      set_label s saved;
      r
  | exception e ->
      (* restore raises only; dropping tags would need authority we may
         not hold on the error path *)
      s.s_label <- Label.union s.s_label saved;
      raise e

let with_principal s p f =
  let saved = s.s_principal in
  s.s_principal <- p;
  Fun.protect ~finally:(fun () -> s.s_principal <- saved) f

let with_reduced_authority s f =
  let db = s.sdb in
  let nobody =
    Authority.create_principal db.auth ~actor_label:Label.empty ~name:""
  in
  with_principal s nobody f

(* ------------------------------------------------------------------ *)
(* Principals, tags, authority                                         *)
(* ------------------------------------------------------------------ *)

let create_principal s ~name =
  Authority.create_principal s.sdb.auth ~actor_label:s.s_label ~name

let create_tag s ~name ?compounds () =
  Authority.create_tag s.sdb.auth ~actor_label:s.s_label ~owner:s.s_principal
    ~name ?compounds ()

let delegate s ~tag ~grantee =
  Authority.delegate s.sdb.auth ~actor:s.s_principal ~actor_label:s.s_label ~tag
    ~grantee;
  audit_emit s ~kind:Audit.Delegate ~tags:[ tag ]
    ~detail:("grantee=" ^ principal_string s.sdb grantee)
    ()

let revoke s ~tag ~grantee =
  Authority.revoke s.sdb.auth ~actor:s.s_principal ~actor_label:s.s_label ~tag
    ~grantee;
  audit_emit s ~kind:Audit.Revoke ~tags:[ tag ]
    ~detail:("grantee=" ^ principal_string s.sdb grantee)
    ()

let find_tag t name = Authority.find_tag t.auth name
let find_principal t name = Authority.find_principal t.auth name

let closure_principal s ~name ~tags =
  let p = create_principal s ~name in
  List.iter (fun tag -> delegate s ~tag ~grantee:p) tags;
  p

(* ------------------------------------------------------------------ *)
(* Query-by-Label row access                                           *)
(* ------------------------------------------------------------------ *)

let current_txn s what =
  match s.s_txn with
  | Some txn -> txn
  | None -> Errors.sql "%s outside a transaction" what

(* The single enforcement point for reads: the Label Confinement Rule
   (section 4.2).  Every scan — sequential or index-assisted, direct or
   through views — obtains its label filter here.

   The destination label [s_label ∪ extra] is invariant over a scan, so
   it is unioned and interned once, not per tuple.  Verdicts are decided
   per distinct {e label id}, not per tuple: a per-scan table memoizes
   (tuple-label-id -> visible?), backed by the store's generation-
   stamped flow cache, so a million-tuple scan over k distinct labels
   performs k flow derivations (or k cache probes), and every other
   tuple costs one integer hash lookup.  With [prewarm], the heap's
   label-partition counts seed the memo up front so scans over
   label-skewed data take the per-group verdict before touching tuples
   (the pruning analogue of the paper's 4-byte [_label] column,
   section 7.1).

   The second component of the result is the static-analysis fact the
   prewarm pass proves as a side effect: [false] means {e no} live
   partition of this heap can flow to the destination label, so the
   scan provably returns nothing and the caller may skip it without
   touching a page.  Uninterned partitions (and skipped prewarms) keep
   it [true]. *)
(* When an EXPLAIN ANALYZE trace is active, wrap a scan's label filter
   so every confinement decision is tallied per table.  Atomic counters
   make one wrapper safe for both the serial and the morsel-parallel
   paths; untraced statements never reach this closure. *)
let trace_scan_filter s ~heap readable =
  match s.s_trace with
  | None -> readable
  | Some tr ->
      let sc = Trace.scan_entry tr (Heap.name heap) in
      fun v ->
        let ok = readable v in
        Atomic.incr sc.Trace.sc_scanned;
        if not ok then Atomic.incr sc.Trace.sc_pruned;
        ok

let trace_scan_skipped s ~heap =
  match s.s_trace with
  | None -> ()
  | Some tr ->
      Atomic.incr (Trace.scan_entry tr (Heap.name heap)).Trace.sc_skipped

let scan_label_filter s ~heap ~extra ~prewarm : (Heap.version -> bool) * bool =
  let db = s.sdb in
  if not db.ifc then ((fun _ -> true), true)
  else begin
    let store = db.lstore in
    let dst = Label.union s.s_label extra in
    let dst_id = Label_store.intern store dst in
    let verdicts : (int, bool) Hashtbl.t = Hashtbl.create 8 in
    let decide lid =
      match Hashtbl.find_opt verdicts lid with
      | Some b -> b
      | None ->
          let b = Label_store.flows_id store ~src:lid ~dst:dst_id in
          Hashtbl.add verdicts lid b;
          b
    in
    let any_visible = ref (not prewarm) in
    if prewarm then
      Heap.iter_label_counts heap (fun lid _count ->
          if lid >= 0 then begin
            if decide lid then any_visible := true
          end
          else any_visible := true);
    (* runs of identically-labeled tuples (the common physical layout)
       reduce to one integer compare per tuple *)
    let last_lid = ref min_int and last_verdict = ref false in
    ( trace_scan_filter s ~heap (fun (v : Heap.version) ->
          let lid = Tuple.label_id v.Heap.tuple in
          if lid >= 0 then
            if lid = !last_lid then !last_verdict
            else begin
              let b = decide lid in
              last_lid := lid;
              last_verdict := b;
              b
            end
          else
            (* uninterned tuple (built outside the statement path): fall
               back to the raw-label derivation *)
            Authority.flows db.auth ~src:(Tuple.label v.Heap.tuple) ~dst),
      !any_visible )
  end

(* Partitioned-scan analogue of [scan_label_filter]: decide every label
   partition of the heap once against the destination label and freeze
   the keep-set a merged scan will enumerate.  The per-tuple verdict
   probe disappears from the hot path — a pruned partition's slots and
   pages are simply never visited — and the returned residual filter
   only re-derives flows for uninterned tuples (built outside the
   statement path), which a partitioned database does not normally
   hold.  The residual keeps no per-call mutable state, so one closure
   serves the serial and the morsel-parallel paths alike.

   Returns (keep, residual, any_visible, visited): [keep] is frozen
   membership for the merged-scan primitives, [visited] the label ids
   whose partitions the scan will read (its serializability
   footprint). *)
let partition_scan_filter s ~heap ~extra :
    (int -> bool) * (Heap.version -> bool) * bool * int list =
  let db = s.sdb in
  if not db.ifc then begin
    (* no confinement: every partition is kept, and the footprint still
       names them so partition-level write locks conflict correctly *)
    let visited = ref [] in
    Heap.iter_label_counts heap (fun lid _ -> visited := lid :: !visited);
    ((fun _ -> true), trace_scan_filter s ~heap (fun _ -> true), true, !visited)
  end
  else begin
    let store = db.lstore in
    let dst = Label.union s.s_label extra in
    let dst_id = Label_store.intern store dst in
    let kept : (int, unit) Hashtbl.t = Hashtbl.create 8 in
    let visited = ref [] in
    let pruned = ref 0 and pruned_tuples = ref 0 in
    Heap.iter_label_counts heap (fun lid count ->
        if lid < 0 || Label_store.flows_id store ~src:lid ~dst:dst_id then begin
          Hashtbl.replace kept lid ();
          visited := lid :: !visited
        end
        else begin
          incr pruned;
          pruned_tuples := !pruned_tuples + count
        end);
    if !pruned > 0 then
      ignore (Atomic.fetch_and_add db.pruned_parts !pruned);
    (* an EXPLAIN ANALYZE trace still reports the tuples confinement
       kept from this statement, even though they were pruned without
       being scanned *)
    (match s.s_trace with
    | Some tr when !pruned_tuples > 0 ->
        ignore
          (Atomic.fetch_and_add
             (Trace.scan_entry tr (Heap.name heap)).Trace.sc_pruned
             !pruned_tuples)
    | Some _ | None -> ());
    let residual =
      trace_scan_filter s ~heap (fun (v : Heap.version) ->
          Tuple.label_id v.Heap.tuple >= 0
          || Authority.flows db.auth ~src:(Tuple.label v.Heap.tuple) ~dst)
    in
    ((fun lid -> Hashtbl.mem kept lid), residual, !visited <> [], !visited)
  end

(* The serializability footprint of a pruned scan: the directory key
   (a partition created later might carry a label this scan should
   have conflicted with) plus each visited partition.  Pruned
   partitions stay out — a write under a label that provably does not
   flow to this session cannot change what the scan returned. *)
let note_partition_reads s txn heap visited =
  let mgr = s.sdb.mgr in
  let name = Heap.name heap in
  Manager.note_read mgr txn (Manager.directory_key name);
  List.iter
    (fun lid -> Manager.note_read mgr txn (Manager.partition_key name lid))
    visited

let scan_versions s ~table ~extra : Heap.version Seq.t =
  let txn = current_txn s "scan" in
  let tbl = Catalog.table s.sdb.cat table in
  let heap = tbl.Catalog.tbl_heap in
  if s.sdb.partitioned then begin
    let keep, residual, any_visible, visited =
      partition_scan_filter s ~heap ~extra
    in
    note_partition_reads s txn heap visited;
    if not any_visible then begin
      trace_scan_skipped s ~heap;
      Seq.empty
    end
    else
      Seq.filter
        (fun v -> Manager.visible s.sdb.mgr txn v && residual v)
        (Heap.seq_merge heap ~keep)
  end
  else begin
    (* the read must be noted even when the scan is pruned away: under
       serializable locking an invisible-today partition may be written
       by a concurrent transaction, and the conflict check needs this
       read in the footprint *)
    Manager.note_read s.sdb.mgr txn (Heap.name heap);
    let readable, any_visible =
      scan_label_filter s ~heap ~extra ~prewarm:true
    in
    if not any_visible then begin
      trace_scan_skipped s ~heap;
      Seq.empty
    end
    else
      Seq.filter
        (fun v -> Manager.visible s.sdb.mgr txn v && readable v)
        (Heap.to_seq heap)
  end

(* Label filter for morsel-parallel scans.  Confinement still lives
   only here, at the tuple access layer — workers never see a tuple the
   serial scan would hide.  Unlike [scan_label_filter], the returned
   closure is shared by several domains, so it keeps no mutable
   fast-path state: every label-id partition is decided {e serially,
   before workers launch} (the heap's label counts cover every live
   slot), and worker-side probes are lock-free reads of that frozen
   table.  The fallbacks ([flows_id] for an id interned mid-scan,
   [Authority.flows] for uninterned tuples) are themselves
   thread-safe. *)
let par_scan_filter s ~heap ~extra : (Heap.version -> bool) * bool =
  let db = s.sdb in
  if not db.ifc then ((fun _ -> true), true)
  else begin
    let store = db.lstore in
    let dst = Label.union s.s_label extra in
    let dst_id = Label_store.intern store dst in
    let verdicts : (int, bool) Hashtbl.t = Hashtbl.create 8 in
    let any_visible = ref false in
    Heap.iter_label_counts heap (fun lid _count ->
        if lid >= 0 then begin
          (if not (Hashtbl.mem verdicts lid) then
             Hashtbl.add verdicts lid
               (Label_store.flows_id store ~src:lid ~dst:dst_id));
          if Hashtbl.find verdicts lid then any_visible := true
        end
        else any_visible := true);
    ( trace_scan_filter s ~heap (fun (v : Heap.version) ->
          let lid = Tuple.label_id v.Heap.tuple in
          if lid >= 0 then
            match Hashtbl.find_opt verdicts lid with
            | Some b -> b
            | None -> Label_store.flows_id store ~src:lid ~dst:dst_id
          else Authority.flows db.auth ~src:(Tuple.label v.Heap.tuple) ~dst),
      !any_visible )
  end

(* Cut a table into morsels for the parallel executor.  Returns [None]
   for tables too small to amortize the fork/join barrier — the
   executor then runs the serial path.  Visibility is the same
   [Manager.visible] as the serial scan: snapshots and the status table
   are read-only while a read-only parallel section runs. *)
let morsel_scan s ~table ~extra : Executor.morsel_source option =
  let txn = current_txn s "scan" in
  let tbl = Catalog.table s.sdb.cat table in
  let heap = tbl.Catalog.tbl_heap in
  let morsel = s.sdb.morsel in
  let slots = Heap.slot_count heap in
  if slots < 2 * morsel then None
  else if s.sdb.partitioned then begin
    let keep, residual, any_visible, visited =
      partition_scan_filter s ~heap ~extra
    in
    note_partition_reads s txn heap visited;
    if not any_visible then None
    else
      let mgr = s.sdb.mgr in
      Some
        {
          (* morsels stay global vid ranges: each worker merge-scans
             only the kept partitions' slice of its range, and the
             per-morsel buffers downstream keep the output order
             byte-identical to the serial merged scan.  [keep] and
             [residual] are frozen before workers launch — lock-free
             reads thereafter. *)
          Executor.ms_morsels = (slots + morsel - 1) / morsel;
          ms_run =
            (fun i emit ->
              Heap.iter_merge_range heap ~keep ~lo:(i * morsel)
                ~hi:((i + 1) * morsel)
                (fun v ->
                  if Manager.visible mgr txn v && residual v then
                    emit v.Heap.tuple));
        }
  end
  else begin
    Manager.note_read s.sdb.mgr txn (Heap.name heap);
    let readable, any_visible = par_scan_filter s ~heap ~extra in
    (* every live partition proven invisible: fall back to the serial
       path, whose own prewarm prunes the scan to an empty sequence
       without forking workers or touching pages *)
    if not any_visible then None
    else
    let mgr = s.sdb.mgr in
    Some
      {
        Executor.ms_morsels = (slots + morsel - 1) / morsel;
        ms_run =
          (fun i emit ->
            Heap.scan_range heap ~lo:(i * morsel)
              ~hi:((i + 1) * morsel)
              (fun v ->
                if Manager.visible mgr txn v && readable v then
                  emit v.Heap.tuple));
      }
  end

let scan_prefix_versions s ~table ~index ~prefix ?(lo = None) ?(hi = None)
    ~extra () : Heap.version Seq.t =
  let txn = current_txn s "scan" in
  let tbl = Catalog.table s.sdb.cat table in
  let heap = tbl.Catalog.tbl_heap in
  let idx =
    match
      List.find_opt
        (fun i -> norm i.Catalog.idx_name = norm index)
        tbl.Catalog.tbl_indexes
    with
    | Some i -> i
    | None -> Errors.sql "no such index: %s" index
  in
  if s.sdb.partitioned then begin
    (* enumerate only the index segments whose label flows to the
       session: pruning applies to index scans exactly as to heap
       scans, and the per-segment streams merge back into the flat
       tree's (key, vid) order *)
    let keep, residual, any_visible, visited =
      partition_scan_filter s ~heap ~extra
    in
    note_partition_reads s txn heap visited;
    if not any_visible then Seq.empty
    else
      Catalog.seq_index_prefix idx ~keep ~prefix ~lo ~hi
      |> Seq.filter_map (fun (_key, vid) -> Heap.get_opt heap vid)
      |> Seq.filter (fun v -> Manager.visible s.sdb.mgr txn v && residual v)
  end
  else begin
    Manager.note_read s.sdb.mgr txn (Heap.name heap);
    (* lazy: postings stream straight off the leaf chain, so a consumer
       that stops early (LIMIT, probe join) walks only what it needs; no
       per-scan vid list is materialized.  Index scans skip the prewarm —
       they touch few label groups, and the memo fills on first sight. *)
    let readable, _any = scan_label_filter s ~heap ~extra ~prewarm:false in
    Btree.seq_prefix_range idx.Catalog.idx_tree ~prefix ~lo ~hi
    |> Seq.filter_map (fun (_key, vid) -> Heap.get_opt heap vid)
    |> Seq.filter (fun v -> Manager.visible s.sdb.mgr txn v && readable v)
  end

(* The declassifying-view label transform: strip tags covered by the
   view's declassify label, then apply a relabeling view's (from, to)
   replacements — each matching [from] is removed and its [to] added
   (the paper's billing-view pattern, section 4.3). *)
let strip_label_with auth declassified relabel l =
  let after_strip =
    List.filter
      (fun tag -> not (Authority.covers auth declassified tag))
      (Label.to_list l)
  in
  let replaced =
    List.concat_map
      (fun tag ->
        match List.assoc_opt tag relabel with
        | Some to_tag -> [ to_tag ]
        | None -> [ tag ])
      after_strip
  in
  let additions =
    List.filter_map
      (fun (from_tag, to_tag) ->
        if Label.mem from_tag l then Some to_tag else None)
      relabel
  in
  Label.of_list (replaced @ additions)

let strip_label db = strip_label_with db.auth

let builtin_scalar name (args : Value.t list) : Value.t option =
  match (name, args) with
  | "abs", [ Value.Int i ] -> Some (Value.Int (abs i))
  | "abs", [ Value.Float f ] -> Some (Value.Float (Float.abs f))
  | "lower", [ Value.Text x ] -> Some (Value.Text (String.lowercase_ascii x))
  | "upper", [ Value.Text x ] -> Some (Value.Text (String.uppercase_ascii x))
  | "length", [ Value.Text x ] -> Some (Value.Int (String.length x))
  | "coalesce", args ->
      Some
        (match List.find_opt (fun v -> not (Value.is_null v)) args with
        | Some v -> v
        | None -> Value.Null)
  | _ -> None

let fenv s : Expr.env =
  {
    Expr.fn =
      (fun name args ->
        match builtin_scalar name args with
        | Some v -> v
        | None -> (
            match Hashtbl.find_opt s.sdb.scalars (norm name) with
            | Some c -> (
                match c.c_authority with
                | Some p -> with_principal s p (fun () -> c.c_fn s args)
                | None -> c.c_fn s args)
            | None -> Errors.sql "unknown function %s" name));
    params = s.s_params;
  }

let exec_ctx s : Executor.ctx =
  {
    Executor.fenv = fenv s;
    scan_table =
      (fun table ~extra ->
        Seq.map (fun v -> v.Heap.tuple) (scan_versions s ~table ~extra));
    scan_prefix =
      (fun ~table ~index ~prefix ~lo ~hi ~extra ->
        Seq.map (fun v -> v.Heap.tuple)
          (scan_prefix_versions s ~table ~index ~prefix ~lo ~hi ~extra ()));
    strip = (fun d relabel l -> strip_label s.sdb d relabel l);
    mv_read =
      (fun ~view ~extra ->
        let db = s.sdb in
        (* serve only implicit single-statement transactions: their
           snapshot is exactly the committed-now state the registry
           maintains.  An explicit transaction may pin an older
           snapshot, so it recomputes through the view's plan. *)
        if not s.s_implicit then begin
          Ivm.note_recompute db.ivm view;
          None
        end
        else
          match Catalog.find_view db.cat view with
          | None -> None
          | Some vw -> (
              (* the reader's scan destination label, exactly as the
                 base scans under the view boundary would compute it:
                 session label ∪ outer extra ∪ the view's declassify
                 label ∪ a relabeling view's [from] tags *)
              let dst =
                if not db.ifc then Label_store.empty_id
                else
                  Label_store.intern db.lstore
                    (Label.union s.s_label
                       (Label.union extra
                          (Label.union vw.Catalog.vw_declassify
                             (Label.of_list
                                (List.map fst vw.Catalog.vw_relabel)))))
              in
              match Ivm.read db.ivm ~view ~dst with
              | None -> None
              | Some rows ->
                  (* under serializable locking the conflict check
                     needs the base reads this serve replaced in the
                     transaction footprint *)
                  (match s.s_txn with
                  | Some txn ->
                      List.iter
                        (fun tbl ->
                          match Catalog.find_table db.cat tbl with
                          | Some t ->
                              let heap = t.Catalog.tbl_heap in
                              if Heap.partitioned heap then begin
                                (* the view read logically covers every
                                   partition the base scan could have
                                   visited, so lock at the same
                                   granularity writers use *)
                                let name = Heap.name heap in
                                Manager.note_read db.mgr txn
                                  (Manager.directory_key name);
                                Heap.iter_label_counts heap (fun lid _ ->
                                    Manager.note_read db.mgr txn
                                      (Manager.partition_key name lid))
                              end
                              else
                                Manager.note_read db.mgr txn (Heap.name heap)
                          | None -> ())
                        (Ivm.base_tables db.ivm view)
                  | None -> ());
                  Some rows));
    par =
      (match s.sdb.dpool with
      | None -> None
      | Some pool ->
          Some
            {
              Executor.par_pool = pool;
              par_width = s.sdb.parallelism;
              par_scan = (fun ~table ~extra -> morsel_scan s ~table ~extra);
            });
    trace = s.s_trace;
  }

let pctx s =
  { Planner.pc_catalog = s.sdb.cat; pc_auth = s.sdb.auth;
    pc_exec = Some (exec_ctx s) }

(* One audit event per declassifying-view boundary a statement can
   exercise: planning resolved each view reference to a [Declassify]
   node, so walking the finished plan finds exactly the
   declassifications this execution performs (section 4.3). *)
let rec audit_plan_declassify s plan =
  (match plan with
  | Plan.Declassify (_, lbl, relabel) ->
      let tags =
        Label.to_list lbl @ List.concat_map (fun (f, t) -> [ f; t ]) relabel
      in
      audit_emit s ~kind:Audit.View_declassify ~tags
        ~detail:
          (if relabel = [] then "declassifying view" else "relabeling view")
        ()
  | _ -> ());
  List.iter (audit_plan_declassify s) (Plan.children plan)

let audit_declassify s plan = if s.sdb.ifc then audit_plan_declassify s plan

(* Register a freshly created materialized view with the IVM registry:
   plan its body (without the Declassify boundary — the registry
   applies [strip] itself, per partition, at read time) and hand the
   plan over.  The planning extra mirrors [plan_table_ref]'s inner
   extra: the view's declassify label plus a relabeling view's [from]
   tags.  A body that cannot even be planned outside a statement
   (e.g. it needs an executable subquery) registers as permanently
   recompute-only — CREATE VIEW has never validated the body. *)
(* Derive the view's write-relevance predicate from its plan: when
   every scan of a base table sits directly under a filter whose
   conjuncts pin [_label] to one literal, only that label's partition
   can feed the view's state, so commit deltas under any other label
   are provably no-ops (satellite of the partition-pruning work;
   intervals from the PR 4 analysis carry the pin).  Conservative by
   construction: a table scanned anywhere without such a pin — or with
   two different pins — stays fully relevant, and uninterned writes
   (lid < 0) are never pruned. *)
let derive_view_affects db plan =
  let pins : (string, Interval.t option) Hashtbl.t = Hashtbl.create 4 in
  let note table iv =
    let key = norm table in
    let merged =
      match (Hashtbl.find_opt pins key, iv) with
      | None, _ -> iv
      | Some None, _ | Some _, None -> None
      | Some (Some prev), Some cur ->
          if Interval.equal prev cur then Some prev else None
    in
    Hashtbl.replace pins key merged
  in
  (* the exact-label interval a filter predicate pins rows to: a
     top-level conjunct [_label = {…}] (either operand order) *)
  let rec exact_of_pred (e : Expr.t) : Interval.t option =
    match e with
    | Expr.Binop (Expr.And, a, b) -> (
        match exact_of_pred a with Some _ as r -> r | None -> exact_of_pred b)
    | Expr.Binop (Expr.Eq, Expr.Row_label, Expr.Const (Value.Ints ints))
    | Expr.Binop (Expr.Eq, Expr.Const (Value.Ints ints), Expr.Row_label) ->
        Some (Interval.exact (Label.of_ints ints))
    | _ -> None
  in
  let rec walk (p : Plan.t) =
    match p with
    | Plan.Filter (Plan.Scan { sc_table; _ }, pred) ->
        note sc_table (exact_of_pred pred)
    | Plan.Scan { sc_table; _ } -> note sc_table None
    | _ -> List.iter walk (Plan.children p)
  in
  walk plan;
  let pinned =
    Hashtbl.fold
      (fun table iv acc ->
        match iv with
        | Some iv -> (
            match Interval.exact_label iv with
            | Some l -> (table, l) :: acc
            | None -> acc)
        | None -> acc)
      pins []
  in
  if pinned = [] then None
  else
    Some
      (fun table lid ->
        match List.assoc_opt (norm table) pinned with
        | None -> true
        | Some pin ->
            lid < 0
            || Label.equal pin (Label_store.label_of db.lstore lid))

let register_materialized s name =
  let db = s.sdb in
  match Catalog.find_view db.cat name with
  | None -> ()
  | Some vw -> (
      let extra =
        Label.union vw.Catalog.vw_declassify
          (Label.of_list (List.map fst vw.Catalog.vw_relabel))
      in
      match Planner.plan_select (pctx s) ~extra vw.Catalog.vw_query with
      | plan, _columns ->
          Ivm.register db.ivm ~name ~plan ~declassify:vw.Catalog.vw_declassify
            ~relabel:vw.Catalog.vw_relabel;
          Ivm.set_affects db.ivm ~view:name (derive_view_affects db plan)
      | exception _ ->
          Ivm.register_unsupported db.ivm ~name
            ~reason:"body could not be planned at definition time")

(* ------------------------------------------------------------------ *)
(* Triggers                                                            *)
(* ------------------------------------------------------------------ *)

let run_trigger s trg ev =
  let invoke () = trg.trg_fn s ev in
  match trg.trg_authority with
  | Some p ->
      audit_emit s ~kind:Audit.Closure_call
        ~detail:("trigger " ^ trg.trg_name)
        ();
      with_principal s p invoke
  | None -> invoke ()

(* Run a deferred trigger with the label captured when the triggering
   statement executed (section 5.2.3).  At exit, tags the body added
   are auto-declassified when its authority permits — the closure
   boundary — and otherwise contaminate the session. *)
let run_deferred s (trg, ev, captured_label, captured_principal) =
  let outer_label = s.s_label in
  let outer_principal = s.s_principal in
  s.s_label <- captured_label;
  s.s_principal <- captured_principal;
  let finish () =
    let gained = Label.diff s.s_label captured_label in
    let residue =
      if not s.sdb.ifc then Label.empty
      else
        Label.of_list
          (List.filter
             (fun tag ->
               not
                 (match trg.trg_authority with
                 | Some p -> Authority.has_authority s.sdb.auth p tag
                 | None -> false))
             (Label.to_list gained))
    in
    s.s_principal <- outer_principal;
    s.s_label <- Label.union outer_label residue
  in
  match run_trigger s trg ev with
  | () -> finish ()
  | exception e ->
      finish ();
      raise e

let fire_triggers s ~table ~kind ~old_ ~new_ =
  let ev = { ev_table = norm table; ev_kind = kind; ev_old = old_; ev_new = new_ } in
  List.iter
    (fun trg ->
      if trg.trg_table = norm table && List.mem kind trg.trg_kinds then
        match trg.trg_timing with
        | `Immediate -> run_trigger s trg ev
        | `Deferred ->
            s.s_deferred <- (trg, ev, s.s_label, s.s_principal) :: s.s_deferred)
    s.sdb.triggers


(* Dead-version reclamation.  PostgreSQL's (auto)vacuum equivalent: a
   version is dead once its deleter committed before every live
   snapshot, or its creator aborted.  Exempt from flow rules (paper
   section 7.1).  Without this, hot MVCC chains (TPC-C's district and
   stock rows) grow without bound and every index probe wades through
   dead versions. *)
let vacuum t =
  let horizon = Manager.oldest_visible_xid t.mgr in
  let removed = ref 0 in
  List.iter
    (fun (tbl : Catalog.table) ->
      let dead_vids = Hashtbl.create 16 in
      Heap.iter tbl.Catalog.tbl_heap (fun v ->
          let dead =
            (match Manager.status_of t.mgr v.Heap.xmin with
            | Manager.Aborted -> true
            | Manager.Committed | Manager.In_progress -> false)
            || (v.Heap.xmax <> 0
               && Manager.status_of t.mgr v.Heap.xmax = Manager.Committed
               && v.Heap.xmax < horizon)
          in
          if dead then begin
            Hashtbl.replace dead_vids v.Heap.vid ();
            Catalog.remove_from_indexes t.cat tbl (Tuple.values v.Heap.tuple)
              ~lid:(Tuple.label_id v.Heap.tuple) v.Heap.vid
          end);
      removed :=
        !removed
        + Heap.vacuum tbl.Catalog.tbl_heap ~dead:(fun v ->
              Hashtbl.mem dead_vids v.Heap.vid))
    (Catalog.all_tables t.cat);
  !removed

(* ------------------------------------------------------------------ *)
(* Transaction control                                                 *)
(* ------------------------------------------------------------------ *)

let do_abort s txn =
  Manager.abort s.sdb.mgr txn;
  Metrics.incr s.sdb.mx.mx_aborts;
  s.s_txn <- None;
  s.s_implicit <- false;
  s.s_flow <- None;
  s.s_deferred <- []

let do_commit s txn =
  (* under a sampled span context the whole commit path is one
     "commit" span; the manager's lock spans, the group-commit wait,
     the WAL fsync and the IVM delta application all record themselves
     while it is open, so they land as its children *)
  Span.timed "commit" @@ fun () ->
  (* deferred triggers and constraints run first, with their captured
     labels, and may extend the write set *)
  let queued = List.rev s.s_deferred in
  s.s_deferred <- [];
  (try List.iter (run_deferred s) queued
   with e ->
     do_abort s txn;
     raise e);
  (* transaction commit-label rule (section 5.1): the commit label must
     be no more contaminated than any tuple in the write set *)
  if s.sdb.ifc then begin
    let store = s.sdb.lstore in
    let commit_lid = Label_store.intern store s.s_label in
    (* label-grouped check: a bulk write set of N tuples under K
       distinct labels costs K flow-cache probes, not N — the verdict
       per interned label id is memoized for the duration of this
       commit.  Raw derivation only for tuples that never passed
       through the statement path. *)
    let verdicts : (int, bool) Hashtbl.t = Hashtbl.create 8 in
    let commit_flows (w : Manager.write) =
      if w.Manager.w_label_id >= 0 then
        match Hashtbl.find_opt verdicts w.Manager.w_label_id with
        | Some ok -> ok
        | None ->
            let ok =
              Label_store.flows_id store ~src:commit_lid
                ~dst:w.Manager.w_label_id
            in
            Hashtbl.add verdicts w.Manager.w_label_id ok;
            ok
      else Authority.flows s.sdb.auth ~src:s.s_label ~dst:w.Manager.w_label
    in
    let violating =
      List.find_opt (fun w -> not (commit_flows w)) (Manager.writes txn)
    in
    match violating with
    | Some w ->
        audit_emit s ~kind:Audit.Commit_rejection
          ~tags:(Label.to_list s.s_label)
          ~detail:
            ("written tuple label " ^ label_string s.sdb w.Manager.w_label)
          ();
        do_abort s txn;
        flow
          "commit label %s is more contaminated than written tuple label %s: \
           committing would leak through the abort/commit channel"
          (label_string s.sdb s.s_label)
          (label_string s.sdb w.Manager.w_label)
    | None -> ()
  end;
  Manager.commit s.sdb.mgr txn;
  Metrics.incr s.sdb.mx.mx_commits;
  s.s_txn <- None;
  s.s_implicit <- false;
  s.s_flow <- None;
  let db = s.sdb in
  (* incremental view maintenance: fold this transaction's write set
     into every materialized view over the written tables (insert +1,
     delete −1; an UPDATE contributes both and the signs compose).
     After [Manager.commit] so the registry's committed-now scans see
     the new state, before autovacuum so every written version is
     still resolvable. *)
  (if Ivm.count db.ivm > 0 then
     let ws = Manager.writes txn in
     let table_of (w : Manager.write) = norm (Heap.name w.Manager.w_heap) in
     if List.exists (fun w -> Ivm.interested db.ivm (table_of w)) ws then begin
       let deltas =
         List.filter_map
           (fun (w : Manager.write) ->
             let table = table_of w in
             if not (Ivm.interested db.ivm table) then None
             else
               match Heap.get_opt w.Manager.w_heap w.Manager.w_vid with
               | Some v ->
                   let sign =
                     match w.Manager.w_kind with `Insert -> 1 | `Delete -> -1
                   in
                   let lid =
                     if w.Manager.w_label_id >= 0 then w.Manager.w_label_id
                     else Label_store.intern db.lstore w.Manager.w_label
                   in
                   Some (table, sign, v.Heap.tuple, lid)
               | None ->
                   (* version reclaimed under us: this delta is
                      unrecoverable, so force a refresh instead *)
                   Ivm.invalidate_table db.ivm table;
                   None)
           ws
       in
       Ivm.apply db.ivm deltas
     end);
  db.commits_since_vacuum <- db.commits_since_vacuum + 1;
  if db.commits_since_vacuum >= db.autovacuum_every then begin
    db.commits_since_vacuum <- 0;
    ignore (vacuum db)
  end

let in_statement_txn s f =
  match s.s_txn with
  | Some txn -> f txn
  | None ->
      let txn = Manager.begin_txn s.sdb.mgr in
      s.s_txn <- Some txn;
      s.s_implicit <- true;
      (match f txn with
      | r ->
          do_commit s txn;
          r
      | exception e ->
          do_abort s txn;
          raise e)

(* ------------------------------------------------------------------ *)
(* DML                                                                 *)
(* ------------------------------------------------------------------ *)

let session_write_label s = if s.sdb.ifc then s.s_label else Label.empty

(* Intern a write label and return its canonical representative: all
   stored tuples carrying the same label share one physical array plus
   a dense id — the in-memory analogue of the paper's 4-byte [_label]
   column backed by a label table (section 7.1).  Interned per row, not
   per statement, because triggers may raise the session label
   mid-statement. *)
let interned_label s label =
  if not s.sdb.ifc then (Label.empty, Label_store.empty_id)
  else
    let id = Label_store.intern s.sdb.lstore label in
    (Label_store.label_of s.sdb.lstore id, id)

(* Compare a stored tuple's label with [label] (whose interned id is
   [lid]); id equality when both sides are interned, raw equality
   otherwise. *)
let tuple_label_matches (v : Heap.version) label lid =
  let tl = Tuple.label_id v.Heap.tuple in
  if tl >= 0 && lid >= 0 then tl = lid
  else Label.equal (Tuple.label v.Heap.tuple) label

let check_schema tbl values =
  match Schema.check_values tbl.Catalog.tbl_schema values with
  | Ok () -> ()
  | Error msg -> constraint_ "%s" msg

let check_label_constraints s tbl tuple =
  if s.sdb.ifc then
    List.iter
      (fun lc ->
        match lc.Catalog.lc_fn tuple with
        | None -> ()
        | Some (Catalog.Exactly required) ->
            if not (Label.equal (Tuple.label tuple) required) then
              constraint_
                "label constraint %s: tuple label %s must be exactly %s"
                lc.Catalog.lc_name
                (label_string s.sdb (Tuple.label tuple))
                (label_string s.sdb required)
        | Some (Catalog.Superset required) ->
            if not (Label.subset required (Tuple.label tuple)) then
              constraint_
                "label constraint %s: tuple label %s must include %s"
                lc.Catalog.lc_name
                (label_string s.sdb (Tuple.label tuple))
                (label_string s.sdb required))
      (Catalog.label_constraints_for s.sdb.cat
         tbl.Catalog.tbl_schema.Schema.table_name)

(* Uniqueness with polyinstantiation (section 5.2.1): polyinstantiated
   tuples are "distinguished only by their labels", so the identity a
   unique constraint protects is (key, label).  An insert conflicts
   exactly with a live tuple bearing the same key AND the same label
   (such a tuple is always visible to the inserter, so refusing reveals
   nothing); a same-key tuple under any other label — hidden or not —
   polyinstantiates instead.  Label constraints (section 5.2.4) are the
   tool for applications that want to forbid that. *)
let check_uniques s txn tbl values label lid =
  List.iter
    (fun idx ->
      if idx.Catalog.idx_unique then begin
        let key = Catalog.index_key idx values in
        if not (Array.exists Value.is_null key) then
          List.iter
            (fun vid ->
              match Heap.get_opt tbl.Catalog.tbl_heap vid with
              | None -> ()
              | Some v ->
                  if
                    Manager.visible s.sdb.mgr txn v
                    && ((not s.sdb.ifc) || tuple_label_matches v label lid)
                  then
                    constraint_
                      "duplicate key value violates unique constraint %s"
                      idx.Catalog.idx_name)
            (Catalog.index_find_label idx key ~lid:(if s.sdb.ifc then lid else 0))
      end)
    tbl.Catalog.tbl_indexes

(* Find MVCC-visible tuples in [table] matching [key] on [cols],
   regardless of label — the Foreign Key Rule reasons about tuples the
   process may not see. *)
let visible_matches s txn (tbl : Catalog.table) (cols : int array) key =
  let idx =
    List.find_opt
      (fun i ->
        Array.length i.Catalog.idx_cols >= Array.length cols
        && Array.for_all2 Int.equal
             (Array.sub i.Catalog.idx_cols 0 (Array.length cols))
             cols)
      tbl.Catalog.tbl_indexes
  in
  let candidates =
    match idx with
    | Some idx when Array.length idx.Catalog.idx_cols = Array.length cols ->
        List.filter_map
          (fun vid -> Heap.get_opt tbl.Catalog.tbl_heap vid)
          (Catalog.index_find idx key)
    | _ ->
        List.of_seq
          (Seq.filter
             (fun v ->
               let values = Tuple.values v.Heap.tuple in
               Array.for_all2
                 (fun c k -> Value.compare values.(c) k = 0)
                 cols key)
             (Heap.to_seq tbl.Catalog.tbl_heap))
  in
  List.filter (fun v -> Manager.visible s.sdb.mgr txn v) candidates

(* The Foreign Key Rule (section 5.2.2): inserting a tuple A that
   references B requires authority for every tag in L_A △ L_B, and
   those tags must be named in the DECLASSIFYING clause. *)
let check_foreign_keys s txn tbl tuple ~declared =
  let schema = tbl.Catalog.tbl_schema in
  List.iter
    (fun fk ->
      let cols =
        Array.of_list (List.map (Schema.col_index schema) fk.Schema.fk_cols)
      in
      let key = Array.map (fun c -> (Tuple.values tuple).(c)) cols in
      if not (Array.exists Value.is_null key) then begin
        let ref_tbl = Catalog.table s.sdb.cat fk.Schema.fk_ref_table in
        let ref_cols =
          Array.of_list
            (List.map
               (Schema.col_index ref_tbl.Catalog.tbl_schema)
               fk.Schema.fk_ref_cols)
        in
        let targets = visible_matches s txn ref_tbl ref_cols key in
        if targets = [] then
          constraint_
            "insert into %s violates foreign key constraint %s: no row in %s"
            schema.Schema.table_name fk.Schema.fk_name fk.Schema.fk_ref_table;
        if s.sdb.ifc then begin
          let la = Tuple.label tuple in
          let satisfied =
            List.exists
              (fun (v : Heap.version) ->
                let d = Label.symm_diff la (Tuple.label v.Heap.tuple) in
                Label.for_all (fun tag -> Label.mem tag declared) d)
              targets
          in
          if not satisfied then
            Errors.authority
              "foreign key %s: the referencing label %s differs from every \
               visible referenced row's label beyond DECLASSIFYING (%s); the \
               differing tags must be listed there (and the process must \
               have authority for them)"
              fk.Schema.fk_name (label_string s.sdb la)
              (label_string s.sdb declared)
        end
      end)
    schema.Schema.foreign_keys

(* Deleting from a referenced table is restricted while visible
   referencing tuples exist — unless another visible tuple with the
   same key still satisfies them (polyinstantiation). *)
let check_reverse_foreign_keys s txn tbl (victim : Heap.version) =
  let schema = tbl.Catalog.tbl_schema in
  let my_name = norm schema.Schema.table_name in
  List.iter
    (fun (other : Catalog.table) ->
      let oschema = other.Catalog.tbl_schema in
      List.iter
        (fun fk ->
          if norm fk.Schema.fk_ref_table = my_name then begin
            let ref_cols =
              Array.of_list (List.map (Schema.col_index schema) fk.Schema.fk_ref_cols)
            in
            let key =
              Array.map (fun c -> (Tuple.values victim.Heap.tuple).(c)) ref_cols
            in
            if not (Array.exists Value.is_null key) then begin
              let survivors =
                List.filter
                  (fun (v : Heap.version) -> v.Heap.vid <> victim.Heap.vid)
                  (visible_matches s txn tbl ref_cols key)
              in
              if survivors = [] then begin
                let referencing_cols =
                  Array.of_list
                    (List.map (Schema.col_index oschema) fk.Schema.fk_cols)
                in
                match visible_matches s txn other referencing_cols key with
                | [] -> ()
                | _ :: _ ->
                    constraint_
                      "delete from %s violates foreign key constraint %s on %s"
                      schema.Schema.table_name fk.Schema.fk_name
                      oschema.Schema.table_name
              end
            end
          end)
        oschema.Schema.foreign_keys)
    (Catalog.all_tables s.sdb.cat)

let resolve_declared_tags s names =
  let db = s.sdb in
  let tags = List.map (Authority.find_tag db.auth) names in
  if db.ifc then
    List.iter (fun tag -> Authority.check_authority db.auth s.s_principal tag) tags;
  Label.of_list tags

let insert_tuple s txn tbl tuple ~declared =
  check_schema tbl (Tuple.values tuple);
  check_label_constraints s tbl tuple;
  check_uniques s txn tbl (Tuple.values tuple) (Tuple.label tuple)
    (Tuple.label_id tuple);
  check_foreign_keys s txn tbl tuple ~declared;
  let v = Manager.record_insert s.sdb.mgr txn tbl.Catalog.tbl_heap tuple in
  Catalog.insert_into_indexes s.sdb.cat tbl (Tuple.values tuple)
    ~lid:(Tuple.label_id tuple) v.Heap.vid;
  fire_triggers s
    ~table:tbl.Catalog.tbl_schema.Schema.table_name
    ~kind:`Insert ~old_:None ~new_:(Some tuple)

(* --- the batched write path ----------------------------------------

   [insert_tuples_batch] inserts a whole run in three phases: validate
   every row, then one heap pass with the WAL records through a single
   buffered batch append, then one sorted bulk load per index.  It is
   taken only when batching cannot be observed mid-statement:

   - no insert trigger on the table (a trigger could read the table, or
     move the session label, between rows);
   - no self-referencing foreign key (row i's reference could be
     satisfied by row j < i of the same statement under sequential
     insertion);
   - (for SQL VALUES rows) no expression whose evaluation could observe
     database state — function calls and subqueries fall back.

   Under those conditions it is equivalent to inserting each row with
   {!insert_tuple} in order: identical heap versions, WAL accounting,
   index contents, uniqueness/polyinstantiation behavior and error
   outcomes (any failure aborts the statement's transaction either
   way, so partial sequential effects are never visible). *)

let has_insert_trigger s tbl =
  let table = norm tbl.Catalog.tbl_schema.Schema.table_name in
  List.exists
    (fun trg -> trg.trg_table = table && List.mem `Insert trg.trg_kinds)
    s.sdb.triggers

let self_referencing_fk (tbl : Catalog.table) =
  let my = norm tbl.Catalog.tbl_schema.Schema.table_name in
  List.exists
    (fun fk -> norm fk.Schema.fk_ref_table = my)
    tbl.Catalog.tbl_schema.Schema.foreign_keys

(* Could evaluating this VALUES expression observe database state (or
   otherwise care about evaluation order)?  Scalar/function calls and
   subqueries can; pure arithmetic over constants cannot. *)
let rec pure_values_expr (e : A.expr) =
  match e with
  | A.E_const _ | A.E_label_lit _ | A.E_count_star -> true
  | A.E_param _ -> true (* reads a frozen binding slot *)
  | A.E_col _ -> true (* VALUES rows cannot reference columns anyway *)
  | A.E_fn _ | A.E_scalar_subquery _ | A.E_exists _ -> false
  | A.E_binop (_, a, b) -> pure_values_expr a && pure_values_expr b
  | A.E_not a | A.E_neg a | A.E_is_null a | A.E_is_not_null a
  | A.E_count_distinct a ->
      pure_values_expr a
  | A.E_in (a, xs) -> pure_values_expr a && List.for_all pure_values_expr xs
  | A.E_like (a, _) -> pure_values_expr a
  | A.E_case (arms, else_) ->
      List.for_all (fun (c, r) -> pure_values_expr c && pure_values_expr r) arms
      && (match else_ with None -> true | Some e -> pure_values_expr e)

let insert_tuples_batch s txn tbl tuples ~declared =
  (* phase 1: validate every row before touching the heap.  Uniqueness
     against rows earlier in this batch is tracked on the side, since
     the index does not hold them yet; the conflict identity is
     (key, label) exactly as in [check_uniques]. *)
  let batch_keys : (string * Value.t array * int, unit) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun tuple ->
      let values = Tuple.values tuple in
      check_schema tbl values;
      check_label_constraints s tbl tuple;
      check_uniques s txn tbl values (Tuple.label tuple) (Tuple.label_id tuple);
      List.iter
        (fun idx ->
          if idx.Catalog.idx_unique then begin
            let key = Catalog.index_key idx values in
            if not (Array.exists Value.is_null key) then begin
              let k =
                ( idx.Catalog.idx_name,
                  key,
                  if s.sdb.ifc then Tuple.label_id tuple else 0 )
              in
              if Hashtbl.mem batch_keys k then
                constraint_
                  "duplicate key value violates unique constraint %s"
                  idx.Catalog.idx_name;
              Hashtbl.add batch_keys k ()
            end
          end)
        tbl.Catalog.tbl_indexes;
      check_foreign_keys s txn tbl tuple ~declared)
    tuples;
  (* phase 2: heap + WAL in one run *)
  let versions =
    Manager.record_inserts s.sdb.mgr txn tbl.Catalog.tbl_heap tuples
  in
  (* phase 3: bulk index maintenance *)
  Catalog.bulk_insert_into_indexes s.sdb.cat tbl
    (List.map2
       (fun tuple (v : Heap.version) ->
         (Tuple.values tuple, Tuple.label_id tuple, v.Heap.vid))
       tuples versions)

(* Programmatic bulk insert: the batched path above when safe, the
   per-row path otherwise (insert triggers, self-referencing FK). *)
let insert_many s ~table rows =
  in_statement_txn s (fun txn ->
      let tbl = Catalog.table s.sdb.cat table in
      let label, label_id = interned_label s (session_write_label s) in
      let tuples =
        List.map (fun values -> Tuple.make_interned ~values ~label ~label_id)
          rows
      in
      if has_insert_trigger s tbl || self_referencing_fk tbl then
        List.iter
          (fun tuple -> insert_tuple s txn tbl tuple ~declared:Label.empty)
          tuples
      else if tuples <> [] then
        insert_tuples_batch s txn tbl tuples ~declared:Label.empty;
      List.length rows)

(* Shared write-target lookup for UPDATE/DELETE: visible, confined rows
   matching the predicate, via the best index prefix when one exists. *)
let dml_targets s txn tbl (pred : Expr.t option) =
  let table_name = tbl.Catalog.tbl_schema.Schema.table_name in
  let source =
    match Option.map (fun p -> Planner.best_prefix tbl p) pred with
    | Some (Some (index, prefix, range)) ->
        (* prefix keys and range bounds are expressions now (they may be
           [$n] parameters); evaluate them against the empty row.  A
           NULL key component matches nothing: the bound derives from an
           equality/comparison conjunct of the predicate. *)
        let env = fenv s in
        let one_row = Tuple.make ~values:[||] ~label:Label.empty in
        let key = Array.map (fun e -> Expr.eval env one_row e) prefix in
        let bound =
          Option.map (fun (e, incl) -> (Expr.eval env one_row e, incl))
        in
        let lo, hi =
          match range with
          | None -> (None, None)
          | Some (l, h) -> (bound l, bound h)
        in
        let null_bound = function
          | Some (v, _) -> Value.is_null v
          | None -> false
        in
        if Array.exists Value.is_null key || null_bound lo || null_bound hi
        then Seq.empty
        else
          scan_prefix_versions s ~table:table_name ~index ~prefix:key ~lo ~hi
            ~extra:Label.empty ()
    | Some None | None -> scan_versions s ~table:table_name ~extra:Label.empty
  in
  ignore txn;
  let env = fenv s in
  List.of_seq
    (Seq.filter
       (fun v ->
         match pred with
         | None -> true
         | Some p -> Expr.eval_pred env v.Heap.tuple p)
       source)

(* Write Rule (section 4.2): a process may modify only tuples labeled
   exactly its own label.  Lower-labeled tuples are visible but not
   writable; higher-labeled tuples were already filtered out.  The
   session label is re-interned per check (one hash probe) rather than
   hoisted, because triggers may raise it mid-statement; the comparison
   itself is two ints. *)
let check_write_rule s (v : Heap.version) action =
  let slid =
    if s.sdb.ifc && Tuple.label_id v.Heap.tuple >= 0 then
      Label_store.intern s.sdb.lstore s.s_label
    else -1
  in
  if s.sdb.ifc && not (tuple_label_matches v s.s_label slid) then begin
    audit_emit s ~kind:Audit.Write_rule_rejection
      ~tags:(Label.to_list (Tuple.label v.Heap.tuple))
      ~detail:
        (Printf.sprintf "%s of tuple labeled %s (session label %s)" action
           (label_string s.sdb (Tuple.label v.Heap.tuple))
           (label_string s.sdb s.s_label))
      ();
    flow
      "%s of tuple labeled %s by process labeled %s violates the Write Rule \
       (only exact-label tuples are writable)"
      action
      (label_string s.sdb (Tuple.label v.Heap.tuple))
      (label_string s.sdb s.s_label)
  end

(* Updatable declassifying views (paper section 4.3 mentions these via
   rewrite rules): an INSERT through a simple view — single base table,
   plain column projection — is rewritten against the base table.  The
   stored tuple's label is the session label joined with the view's
   declassify label, so reading the row back through the view yields
   the session label again; the write itself only ADDS tags, which is
   always safe. *)
let resolve_insert_target s i_table i_columns =
  match Catalog.find_table s.sdb.cat i_table with
  | Some tbl -> (tbl, i_columns, Label.empty)
  | None -> (
      match Catalog.find_view s.sdb.cat i_table with
      | None -> Errors.sql "no such table: %s" i_table
      | Some vw -> (
          if vw.Catalog.vw_relabel <> [] then
            Errors.sql "INSERT through a relabeling view is not supported";
          match vw.Catalog.vw_query with
          | { A.items; from = Some (A.T_table (base, _)); where = None;
              group_by = []; having = None; distinct = false; unions = []; _ } ->
              let base_tbl = Catalog.table s.sdb.cat base in
              let base_cols =
                List.map
                  (fun item ->
                    match item with
                    | A.Sel_expr (A.E_col (_, col), _) -> col
                    | A.Sel_star | A.Sel_table_star _ | A.Sel_expr _ ->
                        Errors.sql
                          "INSERT through view %s: only plain column                            projections are updatable"
                          i_table)
                  items
              in
              let view_name item alias =
                match alias with Some a -> a | None -> item
              in
              let out_names =
                List.map
                  (fun item ->
                    match item with
                    | A.Sel_expr (A.E_col (_, col), alias) -> view_name col alias
                    | A.Sel_star | A.Sel_table_star _ | A.Sel_expr _ ->
                        assert false)
                  items
              in
              let columns =
                match i_columns with
                | None -> base_cols
                | Some cs ->
                    List.map
                      (fun c ->
                        match
                          List.find_opt
                            (fun (o, _) -> norm o = norm c)
                            (List.combine out_names base_cols)
                        with
                        | Some (_, base_col) -> base_col
                        | None ->
                            Errors.sql "view %s has no column %s" i_table c)
                      cs
              in
              (base_tbl, Some columns, vw.Catalog.vw_declassify)
          | _ ->
              Errors.sql
                "view %s is not updatable (only simple projections of one                  table are)"
                i_table))

let exec_insert s txn (stmt : A.stmt) =
  match stmt with
  | A.S_insert { i_table; i_columns; i_rows; i_select; i_declassifying } ->
      let tbl, i_columns, view_label = resolve_insert_target s i_table i_columns in
      let schema = tbl.Catalog.tbl_schema in
      let declared = resolve_declared_tags s i_declassifying in
      let env = fenv s in
      let empty_row = Tuple.make ~values:[||] ~label:Label.empty in
      let positions =
        match i_columns with
        | None -> Array.init (Schema.arity schema) Fun.id
        | Some cols ->
            Array.of_list
              (List.map
                 (fun c ->
                   match Schema.col_index_opt schema c with
                   | Some i -> i
                   | None ->
                       Errors.sql "column %s of %s does not exist" c i_table)
                 cols)
      in
      let widen row_values =
        if Array.length row_values <> Array.length positions then
          Errors.sql "INSERT has %d expressions but %d target columns"
            (Array.length row_values) (Array.length positions);
        let values = Array.make (Schema.arity schema) Value.Null in
        Array.iteri (fun i v -> values.(positions.(i)) <- v) row_values;
        values
      in
      let eval_row row_exprs =
        Array.of_list
          (List.map
             (fun e ->
               let lowered = Planner.lower_expr_for_table (pctx s) schema e in
               (* VALUES rows cannot reference columns *)
               Expr.eval env empty_row lowered)
             row_exprs)
      in
      let batchable =
        (not (has_insert_trigger s tbl))
        && (not (self_referencing_fk tbl))
        && (match i_select with
           | Some _ ->
               (* the SELECT is fully materialized before any insert on
                  both paths, so batching cannot change what it reads *)
               true
           | None -> List.for_all (List.for_all pure_values_expr) i_rows)
      in
      if batchable then begin
        let rows =
          match i_select with
          | Some sel ->
              let plan, _names = Planner.plan_select (pctx s) sel in
              audit_declassify s plan;
              List.map
                (fun row -> widen (Tuple.values row))
                (Executor.run_list (exec_ctx s) plan)
          | None -> List.map (fun row_exprs -> widen (eval_row row_exprs)) i_rows
        in
        (* one interning per statement: no trigger can move the session
           label mid-statement on this path *)
        let label, label_id =
          interned_label s (Label.union (session_write_label s) view_label)
        in
        let tuples =
          List.map
            (fun values -> Tuple.make_interned ~values ~label ~label_id)
            rows
        in
        if tuples <> [] then insert_tuples_batch s txn tbl tuples ~declared;
        Affected (List.length tuples)
      end
      else begin
        let n = ref 0 in
        let insert_values row_values =
          let values = widen row_values in
          let label, label_id =
            interned_label s (Label.union (session_write_label s) view_label)
          in
          let tuple = Tuple.make_interned ~values ~label ~label_id in
          insert_tuple s txn tbl tuple ~declared;
          incr n
        in
        (match i_select with
        | Some sel ->
            (* INSERT … SELECT: rows are read under Query by Label, then
               written with the session's current label like any insert *)
            let plan, _names = Planner.plan_select (pctx s) sel in
            audit_declassify s plan;
            List.iter
              (fun row -> insert_values (Tuple.values row))
              (Executor.run_list (exec_ctx s) plan)
        | None ->
            List.iter
              (fun row_exprs -> insert_values (eval_row row_exprs))
              i_rows);
        Affected !n
      end
  | _ -> assert false

let exec_update s txn u_table u_sets u_where =
  let tbl = Catalog.table s.sdb.cat u_table in
  let schema = tbl.Catalog.tbl_schema in
  let pred = Option.map (Planner.lower_expr_for_table (pctx s) schema) u_where in
  let sets =
    List.map
      (fun (col, e) ->
        match Schema.col_index_opt schema col with
        | Some i -> (i, Planner.lower_expr_for_table (pctx s) schema e)
        | None -> Errors.sql "column %s of %s does not exist" col u_table)
      u_sets
  in
  let targets = dml_targets s txn tbl pred in
  let env = fenv s in
  List.iter
    (fun (v : Heap.version) ->
      check_write_rule s v "UPDATE";
      let old_tuple = v.Heap.tuple in
      let values = Array.copy (Tuple.values old_tuple) in
      List.iter (fun (i, e) -> values.(i) <- Expr.eval env old_tuple e) sets;
      let wlabel, wlid = interned_label s (session_write_label s) in
      let new_tuple = Tuple.make_interned ~values ~label:wlabel ~label_id:wlid in
      check_schema tbl values;
      check_label_constraints s tbl new_tuple;
      (* supersede the old version first so the uniqueness probe does
         not see it *)
      Manager.record_delete s.sdb.mgr txn tbl.Catalog.tbl_heap v;
      check_uniques s txn tbl values (Tuple.label new_tuple)
        (Tuple.label_id new_tuple);
      check_foreign_keys s txn tbl new_tuple ~declared:Label.empty;
      let nv = Manager.record_insert s.sdb.mgr txn tbl.Catalog.tbl_heap new_tuple in
      Catalog.insert_into_indexes s.sdb.cat tbl values
        ~lid:(Tuple.label_id new_tuple) nv.Heap.vid;
      fire_triggers s ~table:u_table ~kind:`Update ~old_:(Some old_tuple)
        ~new_:(Some new_tuple))
    targets;
  Affected (List.length targets)

let exec_delete s txn d_table d_where =
  let tbl = Catalog.table s.sdb.cat d_table in
  let schema = tbl.Catalog.tbl_schema in
  let pred = Option.map (Planner.lower_expr_for_table (pctx s) schema) d_where in
  let targets = dml_targets s txn tbl pred in
  List.iter
    (fun (v : Heap.version) ->
      check_write_rule s v "DELETE";
      check_reverse_foreign_keys s txn tbl v;
      Manager.record_delete s.sdb.mgr txn tbl.Catalog.tbl_heap v;
      fire_triggers s ~table:d_table ~kind:`Delete ~old_:(Some v.Heap.tuple)
        ~new_:None)
    targets;
  Affected (List.length targets)

(* ------------------------------------------------------------------ *)
(* DDL                                                                 *)
(* ------------------------------------------------------------------ *)

let schema_of_create (ct_name, ct_columns, ct_constraints) =
  let columns =
    List.map (fun (c : A.column_def) -> (c.A.cd_name, c.A.cd_type)) ct_columns
  in
  let col_pk =
    List.filter_map
      (fun (c : A.column_def) -> if c.A.cd_primary_key then Some c.A.cd_name else None)
      ct_columns
  in
  let table_pks =
    List.filter_map
      (function A.C_primary_key cols -> Some cols | _ -> None)
      ct_constraints
  in
  let primary_key =
    match (col_pk, table_pks) with
    | [], [] -> []
    | [], [ pk ] -> pk
    | pk, [] -> pk
    | _ -> Errors.sql "multiple primary keys for table %s" ct_name
  in
  let nullable =
    List.filter_map
      (fun (c : A.column_def) ->
        if c.A.cd_not_null || c.A.cd_primary_key || List.mem c.A.cd_name primary_key
        then None
        else Some c.A.cd_name)
      ct_columns
  in
  let uniques =
    List.filter_map
      (fun (c : A.column_def) ->
        if c.A.cd_unique then
          Some (Printf.sprintf "%s_%s_key" ct_name c.A.cd_name, [ c.A.cd_name ])
        else None)
      ct_columns
    @ List.filter_map
        (function
          | A.C_unique cols ->
              Some
                ( Printf.sprintf "%s_%s_key" ct_name (String.concat "_" cols),
                  cols )
          | _ -> None)
        ct_constraints
  in
  let foreign_keys =
    List.mapi
      (fun i -> function
        | A.C_foreign_key { c_cols; c_ref_table; c_ref_cols } ->
            Some
              {
                Schema.fk_name = Printf.sprintf "%s_fkey_%d" ct_name i;
                fk_cols = c_cols;
                fk_ref_table = c_ref_table;
                fk_ref_cols = c_ref_cols;
              }
        | A.C_primary_key _ | A.C_unique _ -> None)
      ct_constraints
    |> List.filter_map Fun.id
  in
  Schema.make ~name:ct_name ~columns ~nullable ~primary_key ~uniques
    ~foreign_keys ()

(* ------------------------------------------------------------------ *)
(* Statement dispatch                                                  *)
(* ------------------------------------------------------------------ *)

let perform_arg_value s (e : A.expr) : Value.t =
  match e with
  (* a bare identifier argument denotes a name (tag, principal, …),
     matching the paper's PERFORM addsecrecy(alice_medical) usage *)
  | A.E_col (None, name) -> Value.Text name
  | _ ->
      let lowered =
        Planner.lower_expr_for_table (pctx s)
          (Schema.make ~name:"_args" ~columns:[] ())
          e
      in
      Expr.eval (fenv s) (Tuple.make ~values:[||] ~label:Label.empty) lowered

let exec_perform s name args =
  match Hashtbl.find_opt s.sdb.procedures (norm name) with
  | None -> Errors.sql "unknown procedure %s" name
  | Some c ->
      let vargs = List.map (perform_arg_value s) args in
      let run () = ignore (c.c_fn s vargs) in
      (match c.c_authority with
      | Some p ->
          audit_emit s ~kind:Audit.Closure_call
            ~detail:("procedure " ^ norm name)
            ();
          with_principal s p run
      | None -> run ());
      Done "PERFORM"

(* ------------------------------------------------------------------ *)
(* Static analysis (prepare-time lint)                                 *)
(* ------------------------------------------------------------------ *)

let analysis_ctx s : Analysis.ctx =
  {
    Analysis.an_catalog = s.sdb.cat;
    an_auth = s.sdb.auth;
    an_store = s.sdb.lstore;
    an_principal = s.s_principal;
    an_label = s.s_label;
    an_write_labels =
      (match s.s_txn with
      | None -> []
      | Some txn ->
          List.map (fun w -> w.Manager.w_label) (Manager.writes txn));
    an_clearance = (s.sdb.iso = Serializable);
    an_in_txn = s.s_txn <> None;
    an_trace = s.s_flow;
  }

let analyze_stmt s stmt : Diag.t list =
  if not s.sdb.ifc then [] else Analysis.analyze_stmt (analysis_ctx s) stmt

let analyze s sql_text : Diag.t list =
  match Parser.parse sql_text with
  | stmts -> List.concat_map (analyze_stmt s) stmts
  | exception Ifdb_sql.Parser.Parse_error msg ->
      [ Diag.error Diag.Parse_error "%s" msg ]
  | exception Ifdb_sql.Lexer.Lex_error (msg, _) ->
      [ Diag.error Diag.Parse_error "%s" msg ]

(* Map an analyzer verdict onto the exception the runtime failure it
   predicts would raise, so [strict] mode is a drop-in early version of
   the runtime error. *)
let diag_exn (d : Diag.t) =
  let msg = "static analysis: " ^ Diag.to_string d in
  match d.Diag.d_code with
  | Diag.Overbroad_declassify | Diag.Declassify_after_revoke ->
      Errors.Authority_required msg
  | Diag.Name_error | Diag.Parse_error | Diag.Runtime_error
  | Diag.Recompute_fallback | Diag.Stale_prepare | Diag.Unreachable_stmt ->
      Errors.Sql_error msg
  | Diag.Doomed_write | Diag.Vacuous_query | Diag.Commit_trap
  | Diag.Txn_commit_trap | Diag.Dead_write | Diag.Fk_leak ->
      Errors.Flow_violation msg

(* ------------------------------------------------------------------ *)
(* Plan cache                                                          *)
(* ------------------------------------------------------------------ *)

let with_cache_lock sc f =
  match sc.sc_lock with
  | None -> f ()
  | Some mu ->
      Mutex.lock mu;
      Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let session_label_id s =
  if s.sdb.ifc then Label_store.intern s.sdb.lstore s.s_label
  else Label_store.empty_id

let make_stmt_cache ?lock (stmt : A.stmt) ~diags ~stamp =
  {
    sc_stmt = stmt;
    sc_text = Printer.stmt_to_string stmt;
    sc_nparams = A.max_param stmt;
    sc_cacheable =
      (match stmt with
      | A.S_select _ -> not (A.has_expr_subquery stmt)
      | _ -> false);
    sc_diags = diags;
    sc_stamp = stamp;
    sc_plans = Hashtbl.create 4;
    sc_hits = 0;
    sc_lock = lock;
  }

(* Fetch (or build) the plan for a cached SELECT under the current
   session label.  A stale stamp — any DDL, or any authority mutation
   (delegation, revocation, tag mint) — discards the entry and re-plans:
   view expansion and label-literal resolution may have changed.
   Returns whether the plan came from the cache. *)
let cached_plan s sc (sel : A.select) : Plan.t * string list * bool =
  let db = s.sdb in
  let lid = session_label_id s in
  let cat_v = Catalog.version db.cat in
  let gen = Authority.generation db.auth in
  let hit =
    with_cache_lock sc (fun () ->
        match Hashtbl.find_opt sc.sc_plans lid with
        | Some pe when pe.pe_cat_version = cat_v && pe.pe_generation = gen ->
            sc.sc_hits <- sc.sc_hits + 1;
            Some pe
        | Some _ ->
            Metrics.incr db.mx.mx_pc_invalidations;
            Hashtbl.remove sc.sc_plans lid;
            None
        | None -> None)
  in
  match hit with
  | Some pe ->
      Metrics.incr db.mx.mx_pc_hits;
      Span.note "plan_cache" "hit";
      (pe.pe_plan, pe.pe_columns, true)
  | None ->
      Metrics.incr db.mx.mx_pc_misses;
      Span.note "plan_cache" "miss";
      let plan, columns = Planner.plan_select (pctx s) sel in
      with_cache_lock sc (fun () ->
          Hashtbl.replace sc.sc_plans lid
            {
              pe_plan = plan;
              pe_columns = columns;
              pe_cat_version = cat_v;
              pe_generation = gen;
            });
      (plan, columns, false)

(* The implicit cache: [exec] keys cached statements on the trimmed raw
   text clients send, with a bounded canonical-text table behind it.
   Only parameter-free SELECTs are admitted — their plans re-serve
   verbatim; everything else re-plans anyway, so caching the parse
   alone is not worth a shared-table entry. *)
let implicit_cache_cap = 512

let implicit_cache_find db key =
  Mutex.lock db.pc_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock db.pc_mu)
    (fun () ->
      match Hashtbl.find_opt db.pc_alias key with
      | Some canon -> Hashtbl.find_opt db.pc_stmts canon
      | None -> None)

let implicit_cache_admit db key (stmt : A.stmt) =
  match stmt with
  | A.S_select _
    when (not (A.has_expr_subquery stmt)) && A.max_param stmt = 0 ->
      Mutex.lock db.pc_mu;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock db.pc_mu)
        (fun () ->
          if Hashtbl.length db.pc_stmts >= implicit_cache_cap then begin
            Hashtbl.reset db.pc_stmts;
            Hashtbl.reset db.pc_alias
          end;
          let canon = Printer.stmt_to_string stmt in
          let sc =
            match Hashtbl.find_opt db.pc_stmts canon with
            | Some sc -> sc
            | None ->
                let sc =
                  make_stmt_cache ~lock:db.pc_mu stmt ~diags:[]
                    ~stamp:(-1, -1, -1)
                in
                Hashtbl.add db.pc_stmts canon sc;
                sc
          in
          Hashtbl.replace db.pc_alias key canon;
          Some sc)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* EXPLAIN [ANALYZE]                                                   *)
(* ------------------------------------------------------------------ *)

let plan_lines plan =
  let rec go depth p acc =
    let line = String.make (2 * depth) ' ' ^ Plan.describe p in
    List.fold_left
      (fun acc c -> go (depth + 1) c acc)
      (line :: acc) (Plan.children p)
  in
  List.rev (go 0 plan [])

(* Run a SELECT with a trace installed and render the per-operator
   report.  The flow-check figures are the [Label_store] stats delta
   around the execution, so they count exactly this query's label
   machinery (memoized and missed alike). *)
let explain_analyze_select s sel : string list * result =
  in_statement_txn s (fun _txn ->
      let db = s.sdb in
      (* probe the implicit plan cache exactly as [exec] would, so the
         report shows what a real execution of this text pays *)
      let stmt = A.S_select sel in
      let cache =
        if db.plan_cache_on then
          implicit_cache_admit db (Printer.stmt_to_string stmt) stmt
        else None
      in
      let plan, columns, notes =
        match cache with
        | Some sc when sc.sc_cacheable ->
            let plan, columns, hit = cached_plan s sc sel in
            (plan, columns,
             [ Printf.sprintf "plan cache: %s" (if hit then "hit" else "miss") ])
        | _ ->
            let plan, columns = Planner.plan_select (pctx s) sel in
            (plan, columns, [])
      in
      audit_declassify s plan;
      let fs0 = Label_store.stats db.lstore in
      let tr = Trace.create () in
      s.s_trace <- Some tr;
      Fun.protect
        ~finally:(fun () -> s.s_trace <- None)
        (fun () ->
          let t0 = Trace.now_ns () in
          let tuples = Executor.run_list (exec_ctx s) plan in
          let total_ns = Trace.now_ns () - t0 in
          (* attach the operator tree as spans under an "execute"
             span: per-operator durations are the trace's real
             figures, but start offsets are synthetic — operators
             interleave in reality, spans must not overlap — so
             siblings are packed sequentially and clamped to the
             window.  Operator names are truncated at the argument
             list: a full describe can embed filter literals and label
             strings, which must not enter a span (DESIGN.md §6.10) —
             the span keeps only the fixed operator vocabulary
             ("Scan", "Filter", "HashJoin", …). *)
          (match Span.current () with
          | None -> ()
          | Some ctx ->
              Span.emit ctx "execute" ~t0 ~t1:(t0 + total_ns);
              let op_head label =
                match String.index_opt label '(' with
                | Some i -> String.sub label 0 i
                | None -> label
              in
              let rec place nodes ~depth ~cursor ~limit =
                match nodes with
                | [] -> []
                | n :: _ when n.Trace.n_depth < depth -> nodes
                | n :: rest when n.Trace.n_depth = depth ->
                    let s0 = !cursor in
                    let s1 = min limit (s0 + max 0 n.Trace.n_ns) in
                    let child_cursor = ref s0 in
                    let rest =
                      place rest ~depth:(depth + 1) ~cursor:child_cursor
                        ~limit:s1
                    in
                    Span.emit ctx
                      ("op:" ^ op_head n.Trace.n_label)
                      ~args:[ ("rows", string_of_int n.Trace.n_rows) ]
                      ~t0:s0 ~t1:s1;
                    cursor := s1;
                    place rest ~depth ~cursor ~limit
                | _ :: rest -> place rest ~depth ~cursor ~limit
              in
              ignore
                (place (Trace.nodes tr) ~depth:0 ~cursor:(ref t0)
                   ~limit:(t0 + total_ns)));
          let fs1 = Label_store.stats db.lstore in
          let hits = fs1.Label_store.flow_hits - fs0.Label_store.flow_hits in
          let misses =
            fs1.Label_store.flow_misses - fs0.Label_store.flow_misses
          in
          let report =
            Trace.report ~notes tr ~total_ns ~rows:(List.length tuples)
              ~flow_checks:(hits + misses) ~flow_hits:hits
          in
          (report, Rows { columns; tuples })))

let explain_rows lines =
  Rows
    {
      columns = [ "QUERY PLAN" ];
      tuples =
        List.map
          (fun l -> Tuple.make ~values:[| Value.Text l |] ~label:Label.empty)
          lines;
    }

let exec_explain s ~analyze stmt =
  match stmt with
  | A.S_select sel ->
      if analyze then explain_rows (fst (explain_analyze_select s sel))
      else
        in_statement_txn s (fun _txn ->
            let plan, _columns = Planner.plan_select (pctx s) sel in
            explain_rows (plan_lines plan))
  | _ -> Errors.sql "EXPLAIN supports only SELECT statements"

(* Evaluate an EXECUTE argument: a constant expression (label literals
   included), evaluated against the empty row.  Placeholders cannot
   appear in argument position. *)
let eval_param_arg s (e : A.expr) : Value.t =
  let lowered =
    Planner.lower_expr_for_table (pctx s)
      (Schema.make ~name:"_args" ~columns:[] ())
      e
  in
  Expr.eval (fenv s) (Tuple.make ~values:[||] ~label:Label.empty) lowered

let rec exec_stmt ?cache s (stmt : A.stmt) : result =
  match stmt with
  | A.S_begin ->
      if s.s_txn <> None then Errors.sql "already inside a transaction";
      s.s_txn <- Some (Manager.begin_txn s.sdb.mgr);
      s.s_implicit <- false;
      if s.sdb.ifc then begin
        (* shadow trace for the explicit transaction: statement indices
           and write records, so COMMIT diagnostics can cite the
           statement that trapped the transaction *)
        let ts =
          Trace_state.create ~symbolic:false ~principal:s.s_principal
            ~label:s.s_label ()
        in
        Trace_state.begin_txn ts ~index:0 ();
        s.s_flow <- Some ts
      end;
      Done "BEGIN"
  | A.S_commit -> (
      match s.s_txn with
      | None -> Errors.sql "COMMIT outside a transaction"
      | Some txn ->
          do_commit s txn;
          Done "COMMIT")
  | A.S_rollback -> (
      match s.s_txn with
      | None -> Errors.sql "ROLLBACK outside a transaction"
      | Some txn ->
          do_abort s txn;
          Done "ROLLBACK")
  | A.S_select sel ->
      in_statement_txn s (fun _txn ->
          let plan, columns =
            Span.timed "plan" (fun () ->
                match cache with
                | Some sc when sc.sc_cacheable ->
                    let plan, columns, _hit = cached_plan s sc sel in
                    (plan, columns)
                | _ -> Planner.plan_select (pctx s) sel)
          in
          audit_declassify s plan;
          let tuples =
            Span.timed "execute" (fun () -> Executor.run_list (exec_ctx s) plan)
          in
          Rows { columns; tuples })
  | A.S_explain { x_analyze; x_stmt } -> exec_explain s ~analyze:x_analyze x_stmt
  | A.S_insert _ ->
      in_statement_txn s (fun txn ->
          Span.timed "execute" (fun () -> exec_insert s txn stmt))
  | A.S_update { u_table; u_sets; u_where } ->
      in_statement_txn s (fun txn ->
          Span.timed "execute" (fun () -> exec_update s txn u_table u_sets u_where))
  | A.S_delete { d_table; d_where } ->
      in_statement_txn s (fun txn ->
          Span.timed "execute" (fun () -> exec_delete s txn d_table d_where))
  | A.S_create_table { ct_name; ct_columns; ct_constraints } ->
      let schema = schema_of_create (ct_name, ct_columns, ct_constraints) in
      (* referenced tables must exist *)
      List.iter
        (fun fk -> ignore (Catalog.table s.sdb.cat fk.Schema.fk_ref_table))
        schema.Schema.foreign_keys;
      ignore (Catalog.create_table s.sdb.cat schema);
      Done "CREATE TABLE"
  | A.S_create_view { cv_name; cv_query; cv_declassifying; cv_materialized } ->
      let declassify =
        if cv_declassifying = [] then Label.empty
        else begin
          (* the creator must hold the authority being bound to the
             view (section 4.3), and must be uncontaminated: the view
             definition is public state *)
          if s.sdb.ifc && not (Label.is_empty s.s_label) then
            flow "creating a declassifying view requires an empty label";
          resolve_declared_tags s cv_declassifying
        end
      in
      ignore
        (Catalog.create_view s.sdb.cat ~name:cv_name ~query:cv_query
           ~declassify ~materialized:cv_materialized ());
      if cv_materialized then register_materialized s cv_name;
      Done
        (if cv_materialized then "CREATE MATERIALIZED VIEW"
         else "CREATE VIEW")
  | A.S_create_index { ci_name; ci_table; ci_cols } ->
      ignore
        (Catalog.create_index s.sdb.cat ~name:ci_name ~table:ci_table
           ~cols:ci_cols ~unique:false);
      Done "CREATE INDEX"
  | A.S_drop (`Table, name) ->
      Catalog.drop_table s.sdb.cat name;
      Ivm.invalidate_table s.sdb.ivm (norm name);
      Done "DROP TABLE"
  | A.S_drop (`View, name) ->
      Catalog.drop_view s.sdb.cat name;
      Ivm.unregister s.sdb.ivm name;
      Done "DROP VIEW"
  | A.S_drop (`Index, name) ->
      Catalog.drop_index s.sdb.cat name;
      Done "DROP INDEX"
  | A.S_perform (name, args) -> exec_perform s name args
  | A.S_prepare { pr_name; pr_stmt } -> exec_prepare s pr_name pr_stmt
  | A.S_execute { ex_name; ex_args } -> exec_execute s ex_name ex_args
  | A.S_deallocate None ->
      Hashtbl.reset s.s_prepared;
      Done "DEALLOCATE ALL"
  | A.S_deallocate (Some name) ->
      if not (Hashtbl.mem s.s_prepared (norm name)) then
        Errors.sql "prepared statement %s does not exist" name;
      Hashtbl.remove s.s_prepared (norm name);
      Done "DEALLOCATE"

and exec_prepare s pr_name pr_stmt : result =
  (match pr_stmt with
  | A.S_prepare _ | A.S_execute _ | A.S_deallocate _ ->
      Errors.sql "cannot PREPARE a PREPARE, EXECUTE or DEALLOCATE"
  | _ -> ());
  let db = s.sdb in
  let key = norm pr_name in
  if Hashtbl.mem s.s_prepared key then
    Errors.sql "prepared statement %s already exists" pr_name;
  (* [exec_stmt_guarded] already ran the analyzer over this PREPARE
     (with parameter-dependent verdicts demoted); keep its diagnostics
     so later EXECUTEs can re-attach them without re-analyzing. *)
  Hashtbl.replace s.s_prepared key
    (make_stmt_cache pr_stmt ~diags:s.s_warnings
       ~stamp:
         (Catalog.version db.cat, Authority.generation db.auth,
          session_label_id s));
  Done "PREPARE"

and exec_execute s ex_name ex_args : result =
  let db = s.sdb in
  match Hashtbl.find_opt s.s_prepared (norm ex_name) with
  | None -> Errors.sql "prepared statement %s does not exist" ex_name
  | Some sc ->
      let given = List.length ex_args in
      if given <> sc.sc_nparams then
        Errors.sql "prepared statement %s expects %d parameter%s, got %d"
          ex_name sc.sc_nparams
          (if sc.sc_nparams = 1 then "" else "s")
          given;
      let bindings = Array.of_list (List.map (eval_param_arg s) ex_args) in
      (* prepare-time diagnostics stay valid while the catalog, the
         authority state and the session label all stand still; when
         any stamp moves, re-analyze the body (same demotions as at
         PREPARE) before trusting them again *)
      let stamp =
        (Catalog.version db.cat, Authority.generation db.auth,
         session_label_id s)
      in
      if stamp <> sc.sc_stamp then begin
        sc.sc_diags <-
          analyze_stmt s (A.S_prepare { pr_name = ex_name; pr_stmt = sc.sc_stmt });
        sc.sc_stamp <- stamp
      end;
      s.s_warnings <- sc.sc_diags;
      (if db.strict then
         match List.find_opt Diag.is_error sc.sc_diags with
         | Some d -> raise (diag_exn d)
         | None -> ());
      let saved = s.s_params in
      s.s_params <- bindings;
      Fun.protect
        ~finally:(fun () -> s.s_params <- saved)
        (fun () -> exec_stmt ~cache:sc s sc.sc_stmt)

(* A failed statement aborts the enclosing explicit transaction, like
   PostgreSQL's "current transaction is aborted" state with the forced
   rollback folded in.  (Implicit transactions already abort inside
   [in_statement_txn].) *)
let exec_stmt_guarded ?cache ?parse s stmt =
  let db = s.sdb in
  (* clock reads only when someone will consume them: the latency
     histogram (metrics on) or the slow-query log (threshold set) *)
  let timed = Metrics.enabled db.metrics || db.slow_ns <> max_int in
  let t0 = if timed then Trace.now_ns () else 0 in
  (* span sampling: one atomic fetch-and-add; when it says no (or
     sampling is off), [sctx] is [None] and every instrumentation
     point below reduces to a domain-local load.  A sampled statement
     gets a "statement" root span — backdated to the start of parsing
     when [exec] measured it — installed as the domain's ambient
     context so every layer down to the WAL can attach children. *)
  let sctx =
    if Span.sample db.spans then begin
      let root_t0 =
        match parse with Some (p0, _) -> p0 | None -> Span.now_ns ()
      in
      let ctx =
        Span.start db.spans ~t0:root_t0 ~args:(span_root_args stmt) "statement"
      in
      (match parse with
      | Some (p0, p1) -> Span.emit ctx "parse" ~t0:p0 ~t1:p1
      | None -> ());
      Span.set_current (Some ctx);
      Some ctx
    end
    else None
  in
  s.s_stmt <- Some stmt;
  Fun.protect
    ~finally:(fun () ->
      s.s_stmt <- None;
      match sctx with
      | Some ctx ->
          Span.set_current None;
          Span.finish db.spans ctx
      | None -> ())
    (fun () ->
      try
        (* each statement inside an explicit transaction consumes one
           shadow-trace index, 1-based from the BEGIN *)
        (match s.s_flow with
        | Some ts -> ignore (Trace_state.next_index ts)
        | None -> ());
        if db.ifc then
          Span.timed "analyze" (fun () ->
              let diags = analyze_stmt s stmt in
              s.s_warnings <- diags;
              if db.strict then
                match List.find_opt Diag.is_error diags with
                | Some d -> raise (diag_exn d)
                | None -> ());
        let result = exec_stmt ?cache s stmt in
        (match (s.s_flow, stmt) with
        | Some ts, A.S_insert { i_table; _ } ->
            Trace_state.record_txn_write ts ~index:(Trace_state.index ts)
              ~table:i_table ~label:s.s_label ~definite:true
        | Some ts, A.S_update { u_table; _ } ->
            Trace_state.record_txn_write ts ~index:(Trace_state.index ts)
              ~table:u_table ~label:s.s_label ~definite:false
        | Some ts, A.S_delete { d_table; _ } ->
            Trace_state.record_txn_write ts ~index:(Trace_state.index ts)
              ~table:d_table ~label:s.s_label ~definite:false
        | _ -> ());
        Metrics.incr db.mx.mx_statements;
        if timed then begin
          let ns = Trace.now_ns () - t0 in
          Metrics.observe db.mx.mx_latency (float_of_int ns /. 1e9);
          if ns >= db.slow_ns then begin
            Metrics.incr db.mx.mx_slow;
            let rows =
              match result with
              | Rows { tuples; _ } -> List.length tuples
              | Affected n -> n
              | Done _ -> 0
            in
            Trace.slow_log_add db.slow
              ~trace:
                (match sctx with Some ctx -> Span.trace_id ctx | None -> -1)
              ~sql:(stmt_display s stmt) ~ns ~rows
          end
        end;
        result
      with
      | ( Flow_violation _ | Authority_required _ | Constraint_violation _
        | Sql_error _ | Manager.Serialization_failure _
        | Ifdb_engine.Planner.Plan_error _ | Ifdb_engine.Executor.Exec_error _
        | Catalog.Catalog_error _ | Expr.Type_error _ | Authority.Denied _
        | Authority.Not_public _ | Authority.Unknown _ ) as e ->
        Metrics.incr db.mx.mx_statements;
        Metrics.incr db.mx.mx_errors;
        (match s.s_txn with Some txn -> do_abort s txn | None -> ());
        raise e)

let wrap_errors f =
  try f () with
  | Ifdb_sql.Parser.Parse_error msg | Ifdb_sql.Lexer.Lex_error (msg, _) ->
      Errors.sql "%s" msg
  | Ifdb_engine.Planner.Plan_error msg -> Errors.sql "%s" msg
  | Ifdb_engine.Executor.Exec_error msg -> Errors.sql "%s" msg
  | Catalog.Catalog_error msg -> Errors.sql "%s" msg
  | Expr.Type_error msg -> Errors.sql "%s" msg
  | Authority.Denied msg -> Errors.authority "%s" msg
  | Authority.Not_public msg -> Errors.flow "%s" msg
  | Authority.Unknown msg -> Errors.sql "unknown %s" msg

let exec s sql_text =
  wrap_errors (fun () ->
      let db = s.sdb in
      let key = if db.plan_cache_on then String.trim sql_text else sql_text in
      match
        if db.plan_cache_on then implicit_cache_find db key else None
      with
      | Some sc ->
          (* text-level hit: parse skipped entirely.  The analyzer still
             runs per execution inside the guarded path, so diagnostics,
             strict-mode behavior and [s_warnings] are byte-identical to
             a cold execution of the same text. *)
          exec_stmt_guarded ~cache:sc s sc.sc_stmt
      | None -> (
          (* parse happens before a span context can exist (sampling
             is per statement, statements come from parsing), so peek:
             if the next statement would be sampled, take timestamps
             now and let the guarded path backdate the root and attach
             a "parse" span.  Racy across sessions by design — a wrong
             guess costs two clock reads, never correctness. *)
          let p0 = if Span.peek db.spans then Span.now_ns () else 0 in
          match Parser.parse sql_text with
          | [ stmt ] ->
              let parse =
                if p0 > 0 then Some (p0, Span.now_ns ()) else None
              in
              let cache =
                if db.plan_cache_on then implicit_cache_admit db key stmt
                else None
              in
              exec_stmt_guarded ?cache ?parse s stmt
          | [] -> Errors.sql "empty statement"
          | _ -> Errors.sql "exec expects a single statement; use exec_script"))

let exec_script s sql_text =
  wrap_errors (fun () ->
      List.map (fun stmt -> exec_stmt_guarded s stmt) (Parser.parse sql_text))

(* Pre-parsed entry point (the lint driver separates parsing from
   execution to attribute diagnostics to source lines).  Shadows the
   internal dispatcher on purpose: external callers always get the
   guarded, error-normalized path. *)
let exec_stmt s stmt = wrap_errors (fun () -> exec_stmt_guarded s stmt)

(* ------------------------------------------------------------------ *)
(* Prepared statements (programmatic API)                              *)
(* ------------------------------------------------------------------ *)

(* Bind [args] positionally and run the prepared statement — the
   programmatic twin of [EXECUTE name (…)], taking values directly so
   drivers and workloads skip rendering literals into SQL text. *)
let execute_prepared s name (args : Value.t list) =
  wrap_errors (fun () ->
      exec_stmt_guarded s
        (A.S_execute
           { ex_name = name; ex_args = List.map (fun v -> A.E_const v) args }))

type prepared_info = {
  pi_name : string;
  pi_text : string;  (* statement body, placeholders intact *)
  pi_nparams : int;
  pi_hits : int;  (* executions served by a cached plan *)
  pi_plans : int;  (* plan entries cached (one per session-label id) *)
  pi_cat_version : int;  (* catalog stamp of the prepare-time analysis *)
  pi_generation : int;  (* authority stamp of the prepare-time analysis *)
}

let prepared_statements s =
  List.sort
    (fun a b -> String.compare a.pi_name b.pi_name)
    (Hashtbl.fold
       (fun name sc acc ->
         let cat_v, gen, _lid = sc.sc_stamp in
         {
           pi_name = name;
           pi_text = sc.sc_text;
           pi_nparams = sc.sc_nparams;
           pi_hits = sc.sc_hits;
           pi_plans = Hashtbl.length sc.sc_plans;
           pi_cat_version = cat_v;
           pi_generation = gen;
         }
         :: acc)
       s.s_prepared [])

(* Programmatic EXPLAIN ANALYZE: the rendered report plus the query's
   ordinary result, so callers can assert the traced execution returns
   exactly what the untraced one would. *)
let explain_analyze s sql_text =
  wrap_errors (fun () ->
      let sel =
        match Parser.parse_one sql_text with
        | A.S_select sel -> sel
        | A.S_explain { x_stmt = A.S_select sel; _ } -> sel
        | _ -> Errors.sql "explain_analyze expects a single SELECT"
      in
      let stmt = A.S_select sel in
      s.s_stmt <- Some stmt;
      Fun.protect
        ~finally:(fun () -> s.s_stmt <- None)
        (fun () -> explain_analyze_select s sel))

(* ------------------------------------------------------------------ *)
(* Trace-level analysis (shell \check, ifdb_lint --trace)              *)
(* ------------------------------------------------------------------ *)

let trace_begin s =
  let ts = Analysis.trace_begin (analysis_ctx s) in
  (* the session's prepared templates are part of its state: an EXECUTE
     mid-script must resolve against them *)
  Hashtbl.iter
    (fun name sc -> Trace_state.define_prepared ts ~name ~stmt:sc.sc_stmt ~index:0)
    s.s_prepared;
  ts

let trace_stmt s ts stmt =
  if s.sdb.ifc then Analysis.analyze_trace_stmt (analysis_ctx s) ts stmt else []

let trace_meta s ts ~name ~args =
  if s.sdb.ifc then Analysis.trace_meta (analysis_ctx s) ts ~name ~args else []

let trace_finish s ts =
  if s.sdb.ifc then Analysis.trace_finish (analysis_ctx s) ts else []

type check_item = {
  ck_index : int;  (* 1-based item index within the script *)
  ck_line : int;
  ck_text : string;
  ck_diags : Diag.t list;
}

(* Symbolically analyze a whole script against the live session state
   without executing anything: split, thread one trace through every
   item, then fold the whole-script passes back onto their statements. *)
let check_script s text =
  let module Sq = Ifdb_analysis.Sqlscript in
  let items = Sq.split_script text in
  let ts = trace_begin s in
  let checked =
    List.map
      (fun (it : Sq.item) ->
        let diags =
          match it.Sq.it_kind with
          | Sq.Meta (name, args) -> trace_meta s ts ~name ~args
          | Sq.Stmt -> (
              match Parser.parse_one it.Sq.it_text with
              | stmt -> trace_stmt s ts stmt
              | exception
                  ( Ifdb_sql.Parser.Parse_error msg
                  | Ifdb_sql.Lexer.Lex_error (msg, _) ) ->
                  ignore (Trace_state.next_index ts);
                  [ Diag.error Diag.Parse_error "%s" msg ])
        in
        (it, diags))
      items
  in
  let finals = trace_finish s ts in
  List.mapi
    (fun i ((it : Sq.item), diags) ->
      let idx = i + 1 in
      let extra = Option.value ~default:[] (List.assoc_opt idx finals) in
      {
        ck_index = idx;
        ck_line = it.Sq.it_line;
        ck_text = it.Sq.it_text;
        ck_diags = diags @ extra;
      })
    checked

let query s sql_text =
  match exec s sql_text with
  | Rows { tuples; _ } -> tuples
  | Affected _ | Done _ -> Errors.sql "statement returned no rows: %s" sql_text

let query_one s sql_text =
  match query s sql_text with
  | row :: _ -> row
  | [] -> Errors.sql "no rows returned by: %s" sql_text

let insert_returning_count s sql_text =
  match exec s sql_text with
  | Affected n -> n
  | Rows _ | Done _ -> Errors.sql "expected DML: %s" sql_text

(* ------------------------------------------------------------------ *)
(* Registration                                                        *)
(* ------------------------------------------------------------------ *)

let require_uncontaminated s what =
  if s.sdb.ifc && not (Label.is_empty s.s_label) then
    flow "%s requires an empty label (catalog state is public)" what

let create_trigger s ~name ~table ~kinds ?(timing = `Immediate) ?authority fn =
  require_uncontaminated s "CREATE TRIGGER";
  ignore (Catalog.table s.sdb.cat table);
  let db = s.sdb in
  if List.exists (fun t -> norm t.trg_name = norm name) db.triggers then
    Errors.sql "trigger %s already exists" name;
  db.triggers <-
    db.triggers
    @ [
        {
          trg_name = name;
          trg_table = norm table;
          trg_kinds = kinds;
          trg_timing = timing;
          trg_authority = authority;
          trg_fn = fn;
        };
      ]

let drop_trigger t name =
  t.triggers <- List.filter (fun trg -> norm trg.trg_name <> norm name) t.triggers

let register_procedure s ~name ?authority fn =
  require_uncontaminated s "CREATE PROCEDURE";
  Hashtbl.replace s.sdb.procedures (norm name)
    { c_authority = authority; c_fn = fn }

(* Relabeling declassifying views (paper section 4.3's sophisticated
   variant): replace each [from] tag with its [to] tag at the view
   boundary — e.g. a billing view swapping p_medical for p_billing.
   The creator must hold authority for every [from] tag (it is being
   declassified) and be uncontaminated. *)
let create_relabeling_view ?(materialized = false) s ~name ~query ~replace =
  let db = s.sdb in
  if db.ifc then begin
    if not (Label.is_empty s.s_label) then
      flow "creating a relabeling view requires an empty label";
    List.iter
      (fun (from_tag, _) ->
        Authority.check_authority db.auth s.s_principal from_tag)
      replace
  end;
  let query =
    match Parser.parse_one query with
    | A.S_select sel -> sel
    | _ -> Errors.sql "view definition must be a SELECT"
  in
  ignore
    (Catalog.create_view db.cat ~name ~query ~declassify:Label.empty
       ~relabel:replace ~materialized ());
  if materialized then register_materialized s name

(* The per-tuple iterator sketched in the paper's future work
   (section 10): run a query with [extra] additional readable tags and
   hand each tuple to [f] in a fresh session whose label joins the
   caller's label with that tuple's — contamination is confined per
   tuple, as if each were handled by its own forked process.  Returns
   the number of rows handled. *)
let query_each s ?(extra = Label.empty) sql_text f =
  wrap_errors (fun () ->
      match Parser.parse_one sql_text with
      | A.S_select sel ->
          in_statement_txn s (fun _txn ->
              let plan, _names = Planner.plan_select (pctx s) ~extra sel in
              audit_declassify s plan;
              let rows = Executor.run_list (exec_ctx s) plan in
              List.iter
                (fun row ->
                  let sub = connect s.sdb ~principal:s.s_principal in
                  sub.s_label <- Label.union s.s_label (Tuple.label row);
                  (* the sub-context shares the caller's transaction so
                     its reads are consistent with the iteration *)
                  sub.s_txn <- s.s_txn;
                  Fun.protect
                    ~finally:(fun () -> sub.s_txn <- None)
                    (fun () -> f sub row))
                rows;
              List.length rows)
      | _ -> Errors.sql "query_each expects a SELECT")

let register_scalar t ~name ?authority fn =
  Hashtbl.replace t.scalars (norm name) { c_authority = authority; c_fn = fn }

let add_label_constraint t ~name ~table fn =
  Catalog.add_label_constraint t.cat
    { Catalog.lc_name = name; lc_table = table; lc_fn = fn }

(* ------------------------------------------------------------------ *)
(* Maintenance                                                         *)
(* ------------------------------------------------------------------ *)

let checkpoint t = Buffer_pool.flush_all t.bp

let table_names t =
  List.sort String.compare
    (List.map
       (fun tbl -> tbl.Catalog.tbl_schema.Schema.table_name)
       (Catalog.all_tables t.cat))

(* ------------------------------------------------------------------ *)
(* Creation                                                            *)
(* ------------------------------------------------------------------ *)

let register_builtin_procedures db =
  let text_arg name args =
    match args with
    | [ Value.Text n ] -> n
    | _ -> Errors.sql "%s expects one name argument" name
  in
  Hashtbl.replace db.procedures "addsecrecy"
    {
      c_authority = None;
      c_fn =
        (fun s args ->
          add_secrecy s (find_tag s.sdb (text_arg "addsecrecy" args));
          Value.Null);
    };
  Hashtbl.replace db.procedures "declassify"
    {
      c_authority = None;
      c_fn =
        (fun s args ->
          declassify s (find_tag s.sdb (text_arg "declassify" args));
          Value.Null);
    };
  let two_text_args name args =
    match args with
    | [ Value.Text a; Value.Text b ] -> (a, b)
    | _ -> Errors.sql "%s expects (tag_name, principal_name)" name
  in
  Hashtbl.replace db.procedures "delegate"
    {
      c_authority = None;
      c_fn =
        (fun s args ->
          let tag_name, grantee_name = two_text_args "delegate" args in
          delegate s ~tag:(find_tag s.sdb tag_name)
            ~grantee:(find_principal s.sdb grantee_name);
          Value.Null);
    };
  Hashtbl.replace db.procedures "revoke"
    {
      c_authority = None;
      c_fn =
        (fun s args ->
          let tag_name, grantee_name = two_text_args "revoke" args in
          revoke s ~tag:(find_tag s.sdb tag_name)
            ~grantee:(find_principal s.sdb grantee_name);
          Value.Null);
    }

(* Pull gauges over the component stat blocks: the hot paths keep their
   existing cheap counters and the registry reads them only at scrape
   time.  Monotone ones are exported with Prometheus TYPE counter. *)
let register_component_metrics reg ~lstore ~bp ~the_wal ~gc ~audit ~ivm ~cat
    ~pruned =
  let c name help read = ignore (Metrics.gauge reg ~help ~kind:`Counter name read) in
  let g name help read = ignore (Metrics.gauge reg ~help ~kind:`Gauge name read) in
  let ls f = float_of_int (f (Label_store.stats lstore)) in
  g "ifdb_labels_interned" "distinct labels interned" (fun () ->
      ls (fun st -> st.Label_store.interned));
  c "ifdb_flow_memo_hits_total" "flow checks answered from the memo"
    (fun () -> ls (fun st -> st.Label_store.flow_hits));
  c "ifdb_flow_memo_misses_total" "flow checks computed from authority state"
    (fun () -> ls (fun st -> st.Label_store.flow_misses));
  c "ifdb_flow_cache_invalidations_total"
    "flow-memo flushes forced by authority changes" (fun () ->
      ls (fun st -> st.Label_store.invalidations));
  let bs f = float_of_int (f (Buffer_pool.stats bp)) in
  c "ifdb_bufpool_hits_total" "buffer pool page hits" (fun () ->
      bs (fun st -> st.Buffer_pool.hits));
  c "ifdb_bufpool_misses_total" "buffer pool page misses" (fun () ->
      bs (fun st -> st.Buffer_pool.misses));
  c "ifdb_bufpool_page_writes_total" "pages written back" (fun () ->
      bs (fun st -> st.Buffer_pool.page_writes));
  c "ifdb_bufpool_io_ns_total" "modeled buffer pool I/O time (ns)" (fun () ->
      bs (fun st -> st.Buffer_pool.io_ns));
  let ws f = float_of_int (f (Wal.stats the_wal)) in
  c "ifdb_wal_records_total" "WAL records appended" (fun () ->
      ws (fun st -> st.Wal.records));
  c "ifdb_wal_bytes_total" "WAL bytes appended" (fun () ->
      ws (fun st -> st.Wal.bytes));
  c "ifdb_wal_fsyncs_total" "WAL fsync calls" (fun () ->
      ws (fun st -> st.Wal.fsyncs));
  c "ifdb_wal_io_ns_total" "modeled WAL I/O time (ns)" (fun () ->
      ws (fun st -> st.Wal.io_ns));
  let gs f = float_of_int (f (Group_commit.stats gc)) in
  c "ifdb_group_commit_submitted_total" "transactions through group commit"
    (fun () -> gs (fun st -> st.Group_commit.gc_submitted));
  c "ifdb_group_commit_batches_total" "group-commit fsync batches" (fun () ->
      gs (fun st -> st.Group_commit.gc_batches));
  g "ifdb_group_commit_max_batch" "largest batch flushed in one fsync"
    (fun () -> gs (fun st -> st.Group_commit.gc_max_batch));
  g "ifdb_group_commit_pending" "commits waiting for the next flush"
    (fun () -> float_of_int (Group_commit.pending gc));
  let ds f = float_of_int (f (Domain_pool.stats ())) in
  c "ifdb_domain_pool_batches_total" "parallel_for invocations" (fun () ->
      ds (fun st -> st.Domain_pool.dp_batches));
  c "ifdb_domain_pool_tasks_total" "morsels executed by the pool" (fun () ->
      ds (fun st -> st.Domain_pool.dp_tasks));
  c "ifdb_domain_pool_steals_total" "morsels run off the submitting domain"
    (fun () -> ds (fun st -> st.Domain_pool.dp_stolen));
  c "ifdb_audit_events_total" "IFC audit events recorded" (fun () ->
      float_of_int (Audit.count audit));
  (* materialized-view maintenance, summed over the registry.  These
     are per-view aggregates correlated only with commit activity that
     is already observable through ifdb_txn_commits_total — they never
     reveal which label partition a delta touched. *)
  let vs f =
    float_of_int (List.fold_left (fun acc st -> acc + f st) 0 (Ivm.stats ivm))
  in
  g "ifdb_mat_views" "materialized views registered" (fun () ->
      float_of_int (Ivm.count ivm));
  g "ifdb_mat_view_rows" "entries materialized across all views" (fun () ->
      vs (fun st -> st.Ivm.vs_rows));
  g "ifdb_mat_view_stale" "materialized views awaiting a refresh" (fun () ->
      vs (fun st -> if st.Ivm.vs_stale then 1 else 0));
  c "ifdb_mat_view_deltas_total" "commit-time delta applications" (fun () ->
      vs (fun st -> st.Ivm.vs_deltas));
  c "ifdb_mat_view_refreshes_total" "full recomputations of view state"
    (fun () -> vs (fun st -> st.Ivm.vs_refreshes));
  c "ifdb_mat_view_reads_incremental_total"
    "view reads served from materialized state" (fun () ->
      vs (fun st -> st.Ivm.vs_served));
  c "ifdb_mat_view_reads_recompute_total"
    "view reads answered by recomputation" (fun () ->
      vs (fun st -> st.Ivm.vs_recomputes));
  c "ifdb_mat_view_skipped_total"
    "commit deltas skipped by label-interval analysis" (fun () ->
      vs (fun st -> st.Ivm.vs_skipped));
  (* label partitions, summed over every table: a whole-database count
     correlated only with the set of labels ever written — the same
     information ifdb_labels_interned already exposes, so no new
     covert channel *)
  g "ifdb_partitions" "label partitions across all tables" (fun () ->
      float_of_int
        (List.fold_left
           (fun acc tbl ->
             acc + Heap.distinct_label_count tbl.Catalog.tbl_heap)
           0 (Catalog.all_tables cat)));
  c "ifdb_partition_pruned_total"
    "partitions skipped by label confinement during scans" (fun () ->
      float_of_int (Atomic.get pruned))

let create ?(ifc = true) ?(label_cache = true) ?(isolation = Snapshot)
    ?(capacity_pages = None) ?(miss_cost_ns = 100_000)
    ?(write_cost_ns = 60_000) ?(fsync_cost_ns = 200_000) ?(seed = 0x1FDB)
    ?(parallelism = 1) ?(morsel_size = 1024) ?(commit_batch = 1)
    ?(sync_commit = false) ?(strict_analysis = false) ?(metrics = true)
    ?slow_query_ms ?(audit_wal = false) ?(audit_capacity = 4096)
    ?(partitioned = true) ?(plan_cache = true) ?(trace_sample = 0) () =
  let parallelism = max 1 parallelism in
  let morsel_size = max 16 morsel_size in
  let bp =
    Buffer_pool.create ~capacity_pages ~miss_cost_ns ~write_cost_ns ()
  in
  let the_wal = Wal.create ~fsync_cost_ns () in
  let auth = Authority.create ~seed () in
  let admin_p =
    Authority.create_principal auth ~actor_label:Label.empty ~name:"admin"
  in
  let lstore = Label_store.create ~flow_cache:label_cache auth in
  let mgr =
    Manager.create ~wal:the_wal
      ~serializable_locking:(isolation = Serializable) ~commit_batch
      ~sync_commit ()
  in
  let cat = Catalog.create ~pool:bp ~labeled:ifc ~partitioned () in
  let ivm =
    (* the registry's base scans are committed-now and label-blind:
       the state must hold every partition, visibility is decided per
       partition at read time *)
    Ivm.create ~lstore
      ~strip:(strip_label_with auth)
      ~scan:(fun table ->
        let tbl = Catalog.table cat table in
        Seq.filter_map
          (fun (v : Heap.version) ->
            let live =
              (match Manager.status_of mgr v.Heap.xmin with
              | Manager.Committed -> true
              | Manager.Aborted | Manager.In_progress -> false)
              && (v.Heap.xmax = 0
                 || Manager.status_of mgr v.Heap.xmax <> Manager.Committed)
            in
            if not live then None
            else
              let lid = Tuple.label_id v.Heap.tuple in
              let lid =
                if lid >= 0 then lid
                else Label_store.intern lstore (Tuple.label v.Heap.tuple)
              in
              Some (v.Heap.tuple, lid))
          (Heap.to_seq tbl.Catalog.tbl_heap))
      ()
  in
  let reg = Metrics.create ~enabled:metrics () in
  let audit =
    let sink =
      if audit_wal then
        Some (fun ev -> Wal.append the_wal (Wal.Audit (Audit.event_to_string ev)))
      else None
    in
    Audit.create ~capacity:audit_capacity ?sink ()
  in
  let pruned_parts = Atomic.make 0 in
  register_component_metrics reg ~lstore ~bp ~the_wal
    ~gc:(Manager.group_commit mgr) ~audit ~ivm ~cat ~pruned:pruned_parts;
  (* wait-state instruments (DESIGN.md §6.10 audits each).
     ifdb_lock_wait_ns_total is a whole-database aggregate over every
     transaction and label; the wait histograms are fed only by
     sampled statements (sampled views, like the span ring). *)
  ignore
    (Metrics.gauge reg ~kind:`Counter
       ~help:"cumulative lock acquisition wait (ns, all transactions)"
       "ifdb_lock_wait_ns_total"
       (fun () -> float_of_int (Manager.lock_wait_ns mgr)));
  let wait_buckets =
    [| 1e-7; 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1 |]
  in
  let gc_wait_h =
    Metrics.histogram reg ~buckets:wait_buckets
      ~help:"group-commit submit wait in seconds (sampled statements)"
      "ifdb_group_commit_wait_seconds"
  in
  Group_commit.set_wait_observer (Manager.group_commit mgr) (fun sec ->
      Metrics.observe gc_wait_h sec);
  let fsync_h =
    Metrics.histogram reg ~buckets:wait_buckets
      ~help:"WAL fsync stall in seconds, modeled cost included (sampled)"
      "ifdb_fsync_stall_seconds"
  in
  Wal.set_fsync_observer the_wal (fun sec -> Metrics.observe fsync_h sec);
  let mx =
    {
      mx_statements =
        Metrics.counter reg ~help:"SQL statements executed"
          "ifdb_statements_total";
      mx_errors =
        Metrics.counter reg ~help:"statements that raised an error"
          "ifdb_statement_errors_total";
      mx_commits =
        Metrics.counter reg ~help:"transactions committed"
          "ifdb_txn_commits_total";
      mx_aborts =
        Metrics.counter reg ~help:"transactions aborted"
          "ifdb_txn_aborts_total";
      mx_slow =
        Metrics.counter reg
          ~help:"statements at or above the slow-query threshold"
          "ifdb_slow_queries_total";
      mx_latency =
        Metrics.histogram reg ~help:"statement latency in seconds"
          "ifdb_statement_seconds";
      (* plan-cache traffic.  Covert-channel note: hit/miss/invalidation
         totals are whole-database aggregates; invalidations correlate
         only with DDL and authority mutations, both already observable
         through the audit log and ifdb_flow_cache_invalidations_total,
         so no new channel is opened (see DESIGN.md §6.8). *)
      mx_pc_hits =
        Metrics.counter reg ~help:"statements planned from the plan cache"
          "ifdb_plan_cache_hits_total";
      mx_pc_misses =
        Metrics.counter reg
          ~help:"plan-cache lookups that had to plan fresh"
          "ifdb_plan_cache_misses_total";
      mx_pc_invalidations =
        Metrics.counter reg
          ~help:"cached plans discarded for stale catalog/authority stamps"
          "ifdb_plan_cache_invalidations_total";
    }
  in
  let db =
    {
      auth;
      lstore;
      cat;
      mgr;
      bp;
      ivm;
      ifc;
      iso = isolation;
      strict = strict_analysis;
      admin_p;
      scalars = Hashtbl.create 16;
      procedures = Hashtbl.create 16;
      triggers = [];
      commits_since_vacuum = 0;
      autovacuum_every = 256;
      parallelism;
      morsel = morsel_size;
      partitioned;
      pruned_parts;
      dpool =
        (if parallelism > 1 then Some (Domain_pool.get ~parallelism) else None);
      metrics = reg;
      mx;
      audit;
      slow = Trace.slow_log_create ();
      slow_ns =
        (match slow_query_ms with
        | None -> max_int
        | Some ms -> int_of_float (ms *. 1e6));
      spans = Span.create ~sample_every:trace_sample ();
      plan_cache_on = plan_cache;
      pc_mu = Mutex.create ();
      pc_alias = Hashtbl.create 64;
      pc_stmts = Hashtbl.create 64;
    }
  in
  register_builtin_procedures db;
  db

(* The error taxonomy of the IFDB facade.  Each exception corresponds
   to a distinct refusal the paper's model makes. *)

exception Flow_violation of string
(* An information-flow rule was violated: the Write Rule (section 4.2),
   the transaction commit-label rule (section 5.1), or an attempt to
   release data to a destination whose label does not cover it. *)

exception Authority_required of string
(* The operation needs declassification authority the acting principal
   does not hold: declassify, the Foreign Key Rule's DECLASSIFYING
   clause, clearance under serializability, creating a declassifying
   view. *)

exception Constraint_violation of string
(* An integrity constraint failed in a way that is safe to report:
   uniqueness against a visible tuple, missing foreign-key target,
   NOT NULL/type errors, label constraints. *)

exception Sql_error of string
(* Malformed or unsupported SQL, unknown relations/functions. *)

let flow fmt = Format.kasprintf (fun s -> raise (Flow_violation s)) fmt
let authority fmt = Format.kasprintf (fun s -> raise (Authority_required s)) fmt
let constraint_ fmt = Format.kasprintf (fun s -> raise (Constraint_violation s)) fmt
let sql fmt = Format.kasprintf (fun s -> raise (Sql_error s)) fmt

module Label = Ifdb_difc.Label
module Authority = Ifdb_difc.Authority
module Value = Ifdb_rel.Value
module Tuple = Ifdb_rel.Tuple
module Schema = Ifdb_rel.Schema
module Datatype = Ifdb_rel.Datatype
module Heap = Ifdb_storage.Heap
module Manager = Ifdb_txn.Manager
module Catalog = Ifdb_engine.Catalog

let sql_literal (v : Value.t) =
  match v with
  | Value.Null -> "NULL"
  | Value.Int i -> string_of_int i
  | Value.Float f ->
      let s = Printf.sprintf "%.17g" f in
      if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
      else s ^ ".0"
  | Value.Bool b -> if b then "TRUE" else "FALSE"
  | Value.Text s ->
      let buf = Buffer.create (String.length s + 2) in
      Buffer.add_char buf '\'';
      String.iter
        (fun c ->
          if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
        s;
      Buffer.add_char buf '\'';
      Buffer.contents buf
  | Value.Ints _ -> failwith "array values cannot be dumped"

let schema_sql (schema : Schema.t) =
  let cols =
    Array.to_list
      (Array.map
         (fun (c : Schema.column) ->
           Printf.sprintf "%s %s%s" c.Schema.col_name
             (Datatype.name c.Schema.col_type)
             (if c.Schema.nullable then "" else " NOT NULL"))
         schema.Schema.columns)
  in
  let pk =
    match schema.Schema.primary_key with
    | [] -> []
    | cols -> [ Printf.sprintf "PRIMARY KEY (%s)" (String.concat ", " cols) ]
  in
  let uniques =
    List.map
      (fun u -> Printf.sprintf "UNIQUE (%s)" (String.concat ", " u.Schema.uq_cols))
      schema.Schema.uniques
  in
  let fks =
    List.map
      (fun fk ->
        Printf.sprintf "FOREIGN KEY (%s) REFERENCES %s (%s)"
          (String.concat ", " fk.Schema.fk_cols)
          fk.Schema.fk_ref_table
          (String.concat ", " fk.Schema.fk_ref_cols))
      schema.Schema.foreign_keys
  in
  Printf.sprintf "CREATE TABLE %s (%s);" schema.Schema.table_name
    (String.concat ", " (cols @ pk @ uniques @ fks))

(* Latest committed tuples of a table, all labels.  The dump, like the
   garbage collector, is a trusted component exempt from flow rules
   (paper section 7.1/7.2). *)
let committed_tuples db (tbl : Catalog.table) =
  let mgr = Database.manager db in
  let txn = Manager.begin_txn mgr in
  let rows = ref [] in
  Heap.iter tbl.Catalog.tbl_heap (fun v ->
      if Manager.visible mgr txn v then rows := v.Heap.tuple :: !rows);
  Manager.commit mgr txn;
  List.rev !rows

let label_names db label =
  let auth = Database.authority db in
  List.map (fun tag -> Authority.tag_name auth tag) (Label.to_list label)

let emit_table db buf (tbl : Catalog.table) =
  let schema = tbl.Catalog.tbl_schema in
  Buffer.add_string buf (schema_sql schema);
  Buffer.add_char buf '\n';
  (* group consecutive equal-labeled rows between label brackets *)
  let current = ref Label.empty in
  let set_label target =
    let removed = Label.diff !current target in
    let added = Label.diff target !current in
    List.iter
      (fun name -> Buffer.add_string buf (Printf.sprintf "PERFORM declassify(%s);\n" name))
      (label_names db removed);
    List.iter
      (fun name -> Buffer.add_string buf (Printf.sprintf "PERFORM addsecrecy(%s);\n" name))
      (label_names db added);
    current := target
  in
  List.iter
    (fun tuple ->
      set_label (Tuple.label tuple);
      Buffer.add_string buf
        (Printf.sprintf "INSERT INTO %s VALUES (%s);\n" schema.Schema.table_name
           (String.concat ", "
              (Array.to_list (Array.map sql_literal (Tuple.values tuple))))))
    (committed_tuples db tbl);
  set_label Label.empty

(* Dump referenced tables before referencing ones so the restore's FK
   checks pass. *)
let tables_in_fk_order db =
  let tables = Catalog.all_tables (Database.catalog db) in
  let name t = String.lowercase_ascii t.Catalog.tbl_schema.Schema.table_name in
  let emitted = Hashtbl.create 16 in
  let out = ref [] in
  let rec emit t =
    if not (Hashtbl.mem emitted (name t)) then begin
      Hashtbl.add emitted (name t) ();
      List.iter
        (fun fk ->
          match
            List.find_opt
              (fun o -> name o = String.lowercase_ascii fk.Schema.fk_ref_table)
              tables
          with
          | Some dep when name dep <> name t -> emit dep
          | Some _ | None -> ())
        t.Catalog.tbl_schema.Schema.foreign_keys;
      out := t :: !out
    end
  in
  List.iter emit
    (List.sort
       (fun a b -> String.compare (name a) (name b))
       tables);
  List.rev !out

let dump db =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "-- IFDB dump (labels preserved)\n";
  List.iter (fun tbl -> emit_table db buf tbl) (tables_in_fk_order db);
  Buffer.contents buf

let dump_table db table_name =
  let buf = Buffer.create 1024 in
  emit_table db buf (Catalog.table (Database.catalog db) table_name);
  Buffer.contents buf

let restore session script =
  (* strip comment lines; exec_script handles the rest *)
  let lines = String.split_on_char '\n' script in
  let body =
    String.concat "\n"
      (List.filter
         (fun line ->
           let t = String.trim line in
           not (String.length t >= 2 && String.sub t 0 2 = "--"))
         lines)
  in
  ignore (Database.exec_script session body)

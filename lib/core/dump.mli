(** Label-preserving backup and restore.

    The paper modified [pg_dump] and [pg_restore] to provide backups
    that include labels (section 7.2).  {!dump} is the analogue: a
    trusted maintenance operation (like vacuum, it is exempt from flow
    rules) that serializes every table — schema and latest committed
    tuples — into a SQL script in which each run of equal-labeled rows
    is bracketed by [PERFORM addsecrecy(...)]/[PERFORM declassify(...)]
    by tag {e name}.

    {!restore} replays such a script through an ordinary session, so
    restoring enforces the usual rules: the session's principal must
    hold authority to declassify every tag appearing in the dump (the
    operator restoring a backup is trusted with its contents), and the
    tags must already exist in the target authority state under the
    same names. *)

val dump : Database.t -> string
(** Serialize all tables (latest committed versions, all labels). *)

val dump_table : Database.t -> string -> string
(** Serialize one table. *)

val restore : Database.session -> string -> unit
(** Execute a dump script.  Raises the usual errors if the session
    lacks authority for some label in the dump or if relations already
    exist. *)

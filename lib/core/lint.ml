module Label = Ifdb_difc.Label
module Authority = Ifdb_difc.Authority
module Principal = Ifdb_difc.Principal
module Parser = Ifdb_sql.Parser
module Diag = Ifdb_analysis.Diag
module Analysis = Ifdb_analysis.Analysis
module Trace_state = Ifdb_analysis.Trace_state
module Sqlscript = Ifdb_analysis.Sqlscript
module Value = Ifdb_rel.Value

type mode = { m_auto_tags : bool; m_lenient_names : bool; m_trace : bool }

let sql_mode = { m_auto_tags = false; m_lenient_names = false; m_trace = false }
let ml_mode = { m_auto_tags = true; m_lenient_names = true; m_trace = false }
let trace_mode = { sql_mode with m_trace = true }

type outcome = { o_report : string; o_failures : string list }

(* "1,3.5,null,alice" (an optional <...> wrapper is stripped): ints and
   floats parse as numbers, "null" as NULL, anything else as text. *)
let parse_bindings spec =
  let spec = String.trim spec in
  let spec =
    let n = String.length spec in
    if n >= 2 && spec.[0] = '<' && spec.[n - 1] = '>' then
      String.sub spec 1 (n - 2)
    else spec
  in
  String.split_on_char ',' spec
  |> List.map (fun v ->
         let v = String.trim v in
         if String.lowercase_ascii v = "null" then Value.Null
         else
           match int_of_string_opt v with
           | Some i -> Value.Int i
           | None -> (
               match float_of_string_opt v with
               | Some f -> Value.Float f
               | None -> Value.Text v))
  |> Array.of_list

type st = {
  db : Database.t;
  world : Principal.t;
  sessions : (string, Database.session) Hashtbl.t;
  mutable sess : Database.session;
  buf : Buffer.t;
  mutable failures : string list;
}

let norm = String.lowercase_ascii

let make_state () =
  let db = Database.create () in
  let admin = Database.connect_admin db in
  let world = Database.create_principal admin ~name:"lint_world" in
  let p = Database.create_principal admin ~name:"lint" in
  let sess = Database.connect db ~principal:p in
  let sessions = Hashtbl.create 4 in
  Hashtbl.add sessions "lint" sess;
  { db; world; sessions; sess; buf = Buffer.create 256; failures = [] }

(* Tags the statement references but nobody declared: mint them under
   [lint_world] and delegate to the current principal, so scripts
   extracted from programs that create tags in host code analyze
   without spurious unknown-tag or missing-authority verdicts. *)
let auto_tags st stmt =
  let auth = Database.authority st.db in
  List.iter
    (fun name ->
      match Authority.find_tag auth name with
      | _ -> ()
      | exception Authority.Unknown _ ->
          let tag =
            Authority.create_tag auth ~actor_label:Label.empty ~owner:st.world
              ~name ()
          in
          Authority.delegate auth ~actor:st.world ~actor_label:Label.empty ~tag
            ~grantee:(Database.session_principal st.sess))
    (Analysis.referenced_tags stmt)

(* Connect (creating if necessary) the named principal's session and
   make it current. *)
let switch_session st n =
  let sess =
    match Hashtbl.find_opt st.sessions (norm n) with
    | Some s -> s
    | None ->
        let p =
          match Authority.find_principal (Database.authority st.db) n with
          | p -> p
          | exception Authority.Unknown _ ->
              Database.create_principal (Database.connect_admin st.db) ~name:n
        in
        let s = Database.connect st.db ~principal:p in
        Hashtbl.add st.sessions (norm n) s;
        s
  in
  st.sess <- sess

let run_meta st name args : Diag.t list =
  match (norm name, args) with
  | "principal", [ n ] ->
      switch_session st n;
      []
  | "newtag", [ n ] ->
      ignore (Database.create_tag st.sess ~name:n ());
      []
  | "addsecrecy", [ n ] ->
      Database.add_secrecy st.sess (Database.find_tag st.db n);
      []
  | "declassify", [ n ] ->
      Database.declassify st.sess (Database.find_tag st.db n);
      []
  | "delegate", [ tag; grantee ] ->
      Database.delegate st.sess
        ~tag:(Database.find_tag st.db tag)
        ~grantee:(Database.find_principal st.db grantee);
      []
  | "revoke", [ tag; grantee ] ->
      Database.revoke st.sess
        ~tag:(Database.find_tag st.db tag)
        ~grantee:(Database.find_principal st.db grantee);
      []
  | _, _ ->
      [
        Diag.error Diag.Name_error "unknown or malformed meta command \\%s"
          name;
      ]

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let stmt_summary text =
  let text =
    String.concat " "
      (split_ws (String.map (function '\n' | '\r' -> ' ' | c -> c) text))
  in
  if String.length text > 72 then String.sub text 0 69 ^ "..." else text

let demote_name_errors diags =
  List.map
    (fun (d : Diag.t) ->
      if d.Diag.d_code = Diag.Name_error then
        { d with Diag.d_severity = Diag.Warning }
      else d)
    diags

let runtime_diag m = Diag.error Diag.Runtime_error "%s" m

let meta_errors f =
  try f () with
  | Errors.Flow_violation m
  | Errors.Authority_required m
  | Errors.Constraint_violation m
  | Errors.Sql_error m
  | Authority.Denied m
  | Authority.Not_public m ->
      [ runtime_diag m ]
  | Authority.Unknown m -> [ Diag.error Diag.Name_error "unknown %s" m ]

(* An [expect] annotation applies everywhere; [expect-trace] /
   [expect-stmt] (stored with a prefix) only to the matching mode. *)
let applicable_expects mode expects =
  let scoped prefix c =
    let n = String.length prefix in
    if String.length c > n && String.sub c 0 n = prefix then
      Some (String.sub c n (String.length c - n))
    else None
  in
  List.filter_map
    (fun c ->
      match (scoped "trace:" c, scoped "stmt:" c) with
      | Some code, _ -> if mode.m_trace then Some code else None
      | _, Some code -> if not mode.m_trace then Some code else None
      | None, None -> Some c)
    expects

(* Render one item's diagnostics and check its expect-rules. *)
let record_item st mode (it : Sqlscript.item) ~line diags =
  if diags <> [] then begin
    Buffer.add_string st.buf
      (Printf.sprintf "line %d: %s\n" line (stmt_summary it.Sqlscript.it_text));
    List.iter
      (fun d -> Buffer.add_string st.buf ("  " ^ Diag.to_string d ^ "\n"))
      diags
  end;
  let expects = applicable_expects mode it.Sqlscript.it_expects in
  let codes =
    List.map (fun (d : Diag.t) -> Diag.code_string d.Diag.d_code) diags
  in
  List.iter
    (fun e ->
      if not (List.mem e codes) then
        st.failures <-
          st.failures
          @ [
              Printf.sprintf
                "line %d: expected %s, but the analyzer did not produce it"
                line e;
            ])
    expects;
  List.iter
    (fun (d : Diag.t) ->
      if Diag.is_error d && not (List.mem (Diag.code_string d.Diag.d_code) expects)
      then
        st.failures <-
          st.failures
          @ [ Printf.sprintf "line %d: unexpected %s" line (Diag.to_string d) ])
    diags

(* --- per-statement mode --------------------------------------------- *)

let stmt_mode_diags st mode ?bindings (it : Sqlscript.item) : Diag.t list =
  match it.Sqlscript.it_kind with
  | Sqlscript.Meta (name, args) -> meta_errors (fun () -> run_meta st name args)
  | Sqlscript.Stmt -> (
      match Parser.parse it.Sqlscript.it_text with
      | exception Parser.Parse_error m ->
          [ Diag.error Diag.Parse_error "%s" m ]
      | exception Ifdb_sql.Lexer.Lex_error (m, _) ->
          [ Diag.error Diag.Parse_error "%s" m ]
      | [] -> []
      | stmt :: _ ->
          let stmt =
            match bindings with
            | Some b -> Analysis.subst_params b stmt
            | None -> stmt
          in
          if mode.m_auto_tags then auto_tags st stmt;
          let diags = Database.analyze_stmt st.sess stmt in
          let diags =
            if mode.m_lenient_names then demote_name_errors diags else diags
          in
          let skip_exec =
            List.exists Diag.is_error diags
            || List.exists
                 (fun (d : Diag.t) -> d.Diag.d_code = Diag.Name_error)
                 diags
          in
          if skip_exec then diags
          else (
            match Database.exec_stmt st.sess stmt with
            | _ -> diags
            | exception
                ( Errors.Flow_violation m
                | Errors.Authority_required m
                | Errors.Constraint_violation m
                | Errors.Sql_error m ) ->
                diags @ [ runtime_diag m ]))

(* --- trace mode ------------------------------------------------------ *)

(* In trace mode nothing executes.  The two metas that create state
   (\principal, \newtag) still take real effect against the fresh lint
   database — principals and tags must exist for the symbolic trace to
   reference them — and everything else (including all SQL and the
   label/authority metas) is interpreted symbolically by the trace. *)
let trace_mode_diags st ts ?bindings (it : Sqlscript.item) : Diag.t list =
  match it.Sqlscript.it_kind with
  | Sqlscript.Meta (name, args) ->
      let known =
        match (norm name, args) with
        | "principal", [ _ ]
        | "newtag", [ _ ]
        | "addsecrecy", [ _ ]
        | "declassify", [ _ ]
        | "delegate", [ _; _ ]
        | "revoke", [ _; _ ] ->
            true
        | _ -> false
      in
      let pre =
        match (norm name, args) with
        | ("principal" | "newtag"), [ _ ] ->
            meta_errors (fun () -> run_meta st name args)
        | _ -> []
      in
      let tdiags = Database.trace_meta st.sess ts ~name ~args in
      let unknown =
        if known then []
        else
          [
            Diag.error Diag.Name_error "unknown or malformed meta command \\%s"
              name;
          ]
      in
      pre @ tdiags @ unknown
  | Sqlscript.Stmt -> (
      match Parser.parse it.Sqlscript.it_text with
      | exception Parser.Parse_error m ->
          ignore (Trace_state.next_index ts);
          [ Diag.error Diag.Parse_error "%s" m ]
      | exception Ifdb_sql.Lexer.Lex_error (m, _) ->
          ignore (Trace_state.next_index ts);
          [ Diag.error Diag.Parse_error "%s" m ]
      | [] ->
          ignore (Trace_state.next_index ts);
          []
      | stmt :: _ ->
          let stmt =
            match bindings with
            | Some b -> Analysis.subst_params b stmt
            | None -> stmt
          in
          Database.trace_stmt st.sess ts stmt)

let finish st =
  let report = Buffer.contents st.buf in
  let report = if report = "" then "no diagnostics\n" else report in
  { o_report = report; o_failures = st.failures }

let lint_script ?bindings mode text =
  let bindings =
    match bindings with
    | Some _ -> bindings
    | None -> Option.map parse_bindings (Sqlscript.bind_directive text)
  in
  let st = make_state () in
  let items = Sqlscript.split_script text in
  if not mode.m_trace then
    List.iter
      (fun it ->
        record_item st mode it ~line:it.Sqlscript.it_line
          (stmt_mode_diags st mode ?bindings it))
      items
  else begin
    let ts = Database.trace_begin st.sess in
    let checked =
      List.map (fun it -> (it, trace_mode_diags st ts ?bindings it)) items
    in
    let finals = Database.trace_finish st.sess ts in
    List.iteri
      (fun i (it, diags) ->
        let extra =
          Option.value ~default:[] (List.assoc_opt (i + 1) finals)
        in
        record_item st mode it ~line:it.Sqlscript.it_line (diags @ extra))
      checked
  end;
  finish st

let lint_ml mode text =
  let mode = { mode with m_trace = false } in
  let st = make_state () in
  List.iter
    (fun (line, sql) ->
      List.iter
        (fun it ->
          record_item st mode it
            ~line:(it.Sqlscript.it_line + line - 1)
            (stmt_mode_diags st mode it))
        (Sqlscript.split_script sql))
    (Sqlscript.extract_ml_sql text);
  finish st

module Label = Ifdb_difc.Label
module Authority = Ifdb_difc.Authority
module Principal = Ifdb_difc.Principal
module Parser = Ifdb_sql.Parser
module Diag = Ifdb_analysis.Diag
module Analysis = Ifdb_analysis.Analysis
module Sqlscript = Ifdb_analysis.Sqlscript

type mode = { m_auto_tags : bool; m_lenient_names : bool }

let sql_mode = { m_auto_tags = false; m_lenient_names = false }
let ml_mode = { m_auto_tags = true; m_lenient_names = true }

type outcome = { o_report : string; o_failures : string list }

type st = {
  db : Database.t;
  world : Principal.t;
  sessions : (string, Database.session) Hashtbl.t;
  mutable sess : Database.session;
  buf : Buffer.t;
  mutable failures : string list;
}

let norm = String.lowercase_ascii

let make_state () =
  let db = Database.create () in
  let admin = Database.connect_admin db in
  let world = Database.create_principal admin ~name:"lint_world" in
  let p = Database.create_principal admin ~name:"lint" in
  let sess = Database.connect db ~principal:p in
  let sessions = Hashtbl.create 4 in
  Hashtbl.add sessions "lint" sess;
  { db; world; sessions; sess; buf = Buffer.create 256; failures = [] }

(* Tags the statement references but nobody declared: mint them under
   [lint_world] and delegate to the current principal, so scripts
   extracted from programs that create tags in host code analyze
   without spurious unknown-tag or missing-authority verdicts. *)
let auto_tags st stmt =
  let auth = Database.authority st.db in
  List.iter
    (fun name ->
      match Authority.find_tag auth name with
      | _ -> ()
      | exception Authority.Unknown _ ->
          let tag =
            Authority.create_tag auth ~actor_label:Label.empty ~owner:st.world
              ~name ()
          in
          Authority.delegate auth ~actor:st.world ~actor_label:Label.empty ~tag
            ~grantee:(Database.session_principal st.sess))
    (Analysis.referenced_tags stmt)

let run_meta st name args : Diag.t list =
  match (norm name, args) with
  | "principal", [ n ] ->
      let sess =
        match Hashtbl.find_opt st.sessions (norm n) with
        | Some s -> s
        | None ->
            let p =
              match Authority.find_principal (Database.authority st.db) n with
              | p -> p
              | exception Authority.Unknown _ ->
                  Database.create_principal
                    (Database.connect_admin st.db)
                    ~name:n
            in
            let s = Database.connect st.db ~principal:p in
            Hashtbl.add st.sessions (norm n) s;
            s
      in
      st.sess <- sess;
      []
  | "newtag", [ n ] ->
      ignore (Database.create_tag st.sess ~name:n ());
      []
  | "addsecrecy", [ n ] ->
      Database.add_secrecy st.sess (Database.find_tag st.db n);
      []
  | "declassify", [ n ] ->
      Database.declassify st.sess (Database.find_tag st.db n);
      []
  | "delegate", [ tag; grantee ] ->
      Database.delegate st.sess
        ~tag:(Database.find_tag st.db tag)
        ~grantee:(Database.find_principal st.db grantee);
      []
  | "revoke", [ tag; grantee ] ->
      Database.revoke st.sess
        ~tag:(Database.find_tag st.db tag)
        ~grantee:(Database.find_principal st.db grantee);
      []
  | _, _ ->
      [
        Diag.error Diag.Name_error "unknown or malformed meta command \\%s"
          name;
      ]

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let stmt_summary text =
  let text =
    String.concat " "
      (split_ws (String.map (function '\n' | '\r' -> ' ' | c -> c) text))
  in
  if String.length text > 72 then String.sub text 0 69 ^ "..." else text

let demote_name_errors diags =
  List.map
    (fun (d : Diag.t) ->
      if d.Diag.d_code = Diag.Name_error then
        { d with Diag.d_severity = Diag.Warning }
      else d)
    diags

let process_item st mode (it : Sqlscript.item) ~line_offset =
  let line = it.Sqlscript.it_line + line_offset in
  let runtime_diag m = Diag.error Diag.Runtime_error "%s" m in
  let diags =
    match it.Sqlscript.it_kind with
    | Sqlscript.Meta (name, args) -> (
        try run_meta st name args with
        | Errors.Flow_violation m
        | Errors.Authority_required m
        | Errors.Constraint_violation m
        | Errors.Sql_error m
        | Authority.Denied m
        | Authority.Not_public m ->
            [ runtime_diag m ]
        | Authority.Unknown m ->
            [ Diag.error Diag.Name_error "unknown %s" m ])
    | Sqlscript.Stmt -> (
        match Parser.parse it.Sqlscript.it_text with
        | exception Parser.Parse_error m ->
            [ Diag.error Diag.Parse_error "%s" m ]
        | exception Ifdb_sql.Lexer.Lex_error (m, _) ->
            [ Diag.error Diag.Parse_error "%s" m ]
        | [] -> []
        | stmt :: _ ->
            if mode.m_auto_tags then auto_tags st stmt;
            let diags = Database.analyze_stmt st.sess stmt in
            let diags =
              if mode.m_lenient_names then demote_name_errors diags else diags
            in
            let skip_exec =
              List.exists Diag.is_error diags
              || List.exists
                   (fun (d : Diag.t) -> d.Diag.d_code = Diag.Name_error)
                   diags
            in
            if skip_exec then diags
            else (
              match Database.exec_stmt st.sess stmt with
              | _ -> diags
              | exception
                  ( Errors.Flow_violation m
                  | Errors.Authority_required m
                  | Errors.Constraint_violation m
                  | Errors.Sql_error m ) ->
                  diags @ [ runtime_diag m ]))
  in
  if diags <> [] then begin
    Buffer.add_string st.buf
      (Printf.sprintf "line %d: %s\n" line
         (stmt_summary it.Sqlscript.it_text));
    List.iter
      (fun d -> Buffer.add_string st.buf ("  " ^ Diag.to_string d ^ "\n"))
      diags
  end;
  let codes =
    List.map (fun (d : Diag.t) -> Diag.code_string d.Diag.d_code) diags
  in
  List.iter
    (fun e ->
      if not (List.mem e codes) then
        st.failures <-
          st.failures
          @ [
              Printf.sprintf
                "line %d: expected %s, but the analyzer did not produce it"
                line e;
            ])
    it.Sqlscript.it_expects;
  List.iter
    (fun (d : Diag.t) ->
      if
        Diag.is_error d
        && not (List.mem (Diag.code_string d.Diag.d_code) it.Sqlscript.it_expects)
      then
        st.failures <-
          st.failures
          @ [
              Printf.sprintf "line %d: unexpected %s" line (Diag.to_string d);
            ])
    diags

let finish st =
  let report = Buffer.contents st.buf in
  let report = if report = "" then "no diagnostics\n" else report in
  { o_report = report; o_failures = st.failures }

let lint_script mode text =
  let st = make_state () in
  List.iter
    (fun it -> process_item st mode it ~line_offset:0)
    (Sqlscript.split_script text);
  finish st

let lint_ml mode text =
  let st = make_state () in
  List.iter
    (fun (line, sql) ->
      List.iter
        (fun it -> process_item st mode it ~line_offset:(line - 1))
        (Sqlscript.split_script sql))
    (Sqlscript.extract_ml_sql text);
  finish st

(** The IFDB database facade: Query by Label over the engine.

    This module is the paper's contribution.  It owns the catalog, the
    transaction manager and the authority state, and enforces, at the
    tuple access layer:

    - the {b Label Confinement Rule}: a query by a process with label
      [Lp] sees exactly the tuples [T] with [L_T ⊆ Lp] (compound-aware;
      section 4.2);
    - the {b Write Rule}: inserts are labeled exactly [Lp]; updates and
      deletes may touch only tuples labeled exactly [Lp] — touching a
      visible lower-labeled tuple is an error (section 4.2);
    - the {b transaction commit-label rule}: at commit, the process
      label must be no more contaminated than any tuple in the write
      set (section 5.1);
    - the {b clearance rule} under [`Serializable] isolation: raising
      the label inside a transaction requires authority for the added
      tag (section 5.1; snapshot isolation does not need it);
    - {b polyinstantiation} for uniqueness constraints (section 5.2.1);
    - the {b Foreign Key Rule} with explicit [DECLASSIFYING] clauses
      (section 5.2.2);
    - {b declassifying views} and {b stored authority closures}
      (section 4.3), {b triggers} — ordinary and authority-bound,
      immediate and deferred (deferred ones run at commit with the
      label captured when the triggering statement ran; section 5.2.3);
    - {b label constraints} (section 5.2.4).

    Opening the database with [~ifc:false] produces the baseline
    ("vanilla PostgreSQL") engine used by the benchmarks: no label
    storage, no label checks. *)

module Label = Ifdb_difc.Label
module Tag = Ifdb_difc.Tag
module Principal = Ifdb_difc.Principal
module Authority = Ifdb_difc.Authority
module Value = Ifdb_rel.Value
module Tuple = Ifdb_rel.Tuple

type t
(** A database instance. *)

type session
(** A client process connection: a principal, a mutable label, and at
    most one open transaction.  Sessions model the per-process
    granularity of the application platform (section 2). *)

type isolation = Snapshot | Serializable

val create :
  ?ifc:bool ->
  ?label_cache:bool ->
  ?isolation:isolation ->
  ?capacity_pages:int option ->
  ?miss_cost_ns:int ->
  ?write_cost_ns:int ->
  ?fsync_cost_ns:int ->
  ?seed:int ->
  ?parallelism:int ->
  ?morsel_size:int ->
  ?commit_batch:int ->
  ?sync_commit:bool ->
  ?strict_analysis:bool ->
  ?metrics:bool ->
  ?slow_query_ms:float ->
  ?audit_wal:bool ->
  ?audit_capacity:int ->
  ?partitioned:bool ->
  ?plan_cache:bool ->
  ?trace_sample:int ->
  unit ->
  t
(** Defaults: [ifc:true], [Snapshot] isolation (what the paper's
    PostgreSQL-based prototype runs), unbounded buffer pool.
    [label_cache] (default on) controls the label store's memoized
    flow-check cache; labels are interned either way.  Turning it off
    exists for the ablation benchmark.

    [parallelism] (default 1) sets how many OCaml domains a query may
    use: sequential scans, scan-shaped pipelines, aggregations and
    hash-join probes over them run morsel-parallel on a process-wide
    shared worker pool.  Parallelism is read-only within the session's
    snapshot — writes stay single-threaded — and the Label Confinement
    Rule is still applied per tuple at the access layer, by the same
    code path.  [morsel_size] (default 1024 slots, floor 16) sets the
    scan partition grain; tables under two morsels run serially.

    [commit_batch] (default 1) sets the group-commit coalescing degree:
    one WAL fsync covers up to that many write-transaction commits.
    With [sync_commit:false] (default) coalescing is deterministic —
    every [commit_batch]-th commit flushes, earlier ones become durable
    with the batch (asynchronous-commit semantics; call {!flush_wal} to
    force the remainder).  With [sync_commit:true] committers use the
    blocking leader/follower protocol instead: each commit returns only
    once an fsync covers it, but concurrent committers (sessions driven
    from {!Ifdb_engine.Domain_pool} tasks) share one flush.  See
    {!Ifdb_txn.Group_commit}.

    [strict_analysis] (default off) makes the prepare-time static
    analyzer ({!analyze_stmt}) reject statements it proves doomed:
    [Error]-severity diagnostics raise the exception the predicted
    runtime failure would have raised, before any effect.  With it off,
    analyzer output is still attached to the session
    ({!session_warnings}).

    [metrics] (default on) controls the metrics registry.  On, the
    statement path maintains counters and a latency histogram and the
    registry exports component stats (label store, buffer pool, WAL,
    group commit, domain pool, audit log) as pull gauges; off, every
    instrument is a no-op and {!metrics_snapshot} returns [[]].

    [slow_query_ms] (default unset) enables the slow-query ring buffer:
    statements at or above the threshold are recorded with their SQL,
    duration and row count ({!slow_queries}).  Unset, the statement
    path never reads a clock for it.

    [audit_wal] (default off) additionally appends every IFC audit
    event to the WAL as an [Audit] record, making the security stream
    durable alongside the data it concerns.  [audit_capacity] (default
    4096) bounds the in-memory audit ring.

    [partitioned] (default on) selects label-sharded storage: each
    table's heap pages and index entries are physically grouped by
    interned label id, and scans enumerate only the partitions whose
    label flows to the session — the per-tuple confinement verdict
    disappears from the hot path (it is decided once per partition).
    Turn it off to A/B against the flat layout; query results, audit
    events and error outcomes are identical in both.

    [plan_cache] (default on) enables the generation-stamped plan
    cache: [PREPARE]d statements keep their parsed body, prepare-time
    diagnostics and one parameterized plan per session-label id, and
    {!exec} maintains an implicit database-wide cache keyed on raw
    statement text for parameter-free SELECTs.  Every cached plan is
    stamped with the catalog version and authority generation it was
    planned under and silently re-planned when either moves, and
    scan-time label confinement is always re-derived per execution —
    results, labels, audit events and errors are identical with the
    cache off.

    [trace_sample] (default 0 = off) samples every [n]th statement
    into the span recorder ({!spans}): the sampled statement's full
    lifecycle — parse, analyze, plan (with the plan-cache verdict),
    execute, commit with lock wait/hold, group-commit wait, WAL fsync,
    morsel scheduling and IVM delta application — is recorded as a
    span tree, exportable as Chrome trace-event JSON.  Unsampled
    statements pay one atomic fetch-and-add and no clock reads; see
    DESIGN.md §6.10. *)

val authority : t -> Authority.t

val label_store : t -> Ifdb_difc.Label_store.t
(** The database's label store: every stored tuple's label is interned
    here, and all enforcement-point flow checks go through its memoized
    cache (invalidated wholesale when the authority state's generation
    moves).  Exposed for stats and tests. *)

val catalog : t -> Ifdb_engine.Catalog.t
val manager : t -> Ifdb_txn.Manager.t
val pool : t -> Ifdb_storage.Buffer_pool.t
val wal : t -> Ifdb_storage.Wal.t

val group_commit : t -> Ifdb_txn.Group_commit.t
(** The commit coalescer sitting between {!commit} and the WAL, for
    inspecting its batching statistics. *)

val flush_wal : t -> unit
(** Force an fsync over commit records still buffered by group commit
    (deterministic mode leaves up to [commit_batch - 1] pending). *)

val ifc_enabled : t -> bool
val isolation : t -> isolation

val admin : t -> Principal.t
(** The administrator principal: may define schema but owns no tags,
    so it cannot declassify anything (section 3.3). *)

(** {1 Sessions and labels} *)

val connect : t -> principal:Principal.t -> session
val connect_admin : t -> session
val database : session -> t

val session_principal : session -> Principal.t
val session_label : session -> Label.t

val add_secrecy : session -> Tag.t -> unit
(** Raise the session label.  Under [Serializable] isolation, inside a
    transaction, this requires authority for the tag (the clearance
    rule). *)

val declassify : session -> Tag.t -> unit
(** Remove a tag from the session label; requires authority for it (or
    a compound containing it). *)

val set_label : session -> Label.t -> unit
(** Jump to an arbitrary label: added tags as {!add_secrecy}, removed
    tags as {!declassify}. *)

val with_label : session -> Label.t -> (unit -> 'a) -> 'a
(** Run with a temporary label; restores the previous label after
    (raising back is always allowed, so restore performs the
    appropriate declassifications/raises with the same checks). *)

val with_principal : session -> Principal.t -> (unit -> 'a) -> 'a
(** Run with a different acting principal (the primitive underlying
    authority closures and reduced-authority calls). *)

val with_reduced_authority : session -> (unit -> 'a) -> 'a
(** Run with a fresh principal that holds no authority at all
    (section 3.3's reduced authority calls). *)

(** {1 Principals, tags, authority}

    Thin wrappers over {!Ifdb_difc.Authority} that pass the session's
    label, so every authority-state mutation is rejected unless the
    process is uncontaminated. *)

val create_principal : session -> name:string -> Principal.t
val create_tag : session -> name:string -> ?compounds:Tag.t list -> unit -> Tag.t
(** The session's principal becomes the owner. *)

val delegate : session -> tag:Tag.t -> grantee:Principal.t -> unit
val revoke : session -> tag:Tag.t -> grantee:Principal.t -> unit
val find_tag : t -> string -> Tag.t
val find_principal : t -> string -> Principal.t

val closure_principal :
  session -> name:string -> tags:Tag.t list -> Principal.t
(** Create a principal for an authority closure: the caller delegates
    each of [tags] to it (so the caller must hold that authority).
    Bind it to code with {!register_procedure}, {!create_trigger} or
    {!with_principal}. *)

(** {1 SQL} *)

type result =
  | Rows of { columns : string list; tuples : Tuple.t list }
  | Affected of int
  | Done of string  (** DDL / transaction control / PERFORM *)

val exec : session -> string -> result
(** Execute one SQL statement (parse errors raise
    {!Errors.Sql_error}).  Statements outside BEGIN/COMMIT run in an
    implicit transaction. *)

val exec_script : session -> string -> result list
(** Execute a semicolon-separated script, statement by statement. *)

val exec_stmt : session -> Ifdb_sql.Ast.stmt -> result
(** Execute one pre-parsed statement (same guarding and error
    normalization as {!exec}). *)

val query : session -> string -> Tuple.t list
(** {!exec} restricted to row-returning statements. *)

val query_one : session -> string -> Tuple.t
(** First row of {!query}; raises {!Errors.Sql_error} if empty. *)

val insert_returning_count : session -> string -> int
(** {!exec} restricted to DML; returns the affected-row count. *)

(** {2 Prepared statements}

    [PREPARE name AS <stmt>] parses, analyzes and registers a statement
    once per session; [$n] placeholders (1-based) mark parameter slots.
    [EXECUTE name (args…)] binds arguments positionally and runs it —
    SELECT bodies without expression-position subqueries execute from a
    cached parameterized plan (one per session-label id, stamped with
    the catalog version and authority generation).  [DEALLOCATE name] /
    [DEALLOCATE ALL] drop registrations.  The audit log and slow-query
    log render executions as [EXECUTE name AS <body>] with the
    placeholders intact — bound values never appear there. *)

val execute_prepared : session -> string -> Value.t list -> result
(** Programmatic [EXECUTE]: bind [args] (positionally, as values) and
    run the named prepared statement. *)

type prepared_info = {
  pi_name : string;
  pi_text : string;  (** statement body, placeholders intact *)
  pi_nparams : int;
  pi_hits : int;  (** executions served by a cached plan *)
  pi_plans : int;  (** plan entries cached (one per session-label id) *)
  pi_cat_version : int;  (** catalog stamp of the prepare-time analysis *)
  pi_generation : int;  (** authority stamp of the prepare-time analysis *)
}

val prepared_statements : session -> prepared_info list
(** This session's prepared statements, sorted by name (the shell's
    [\prepared] listing). *)

val insert_many : session -> table:string -> Value.t array list -> int
(** Programmatic bulk insert: every row is labeled with the session's
    current label (the Write Rule), validated, then written through the
    batched path — Write Rule and commit-label verdicts once per
    distinct interned label id, WAL records through one buffered batch
    append, secondary indexes maintained by sorted bulk load.
    Equivalent to one [INSERT] per row (same visible tuples, labels,
    index contents and polyinstantiation behavior); tables with insert
    triggers or self-referencing foreign keys fall back to the per-row
    path.  Runs in the session's open transaction, or an implicit one.
    Returns the row count. *)

(** {1 Triggers, procedures, scalar functions, label constraints} *)

type trigger_event = {
  ev_table : string;
  ev_kind : [ `Insert | `Update | `Delete ];
  ev_old : Tuple.t option;
  ev_new : Tuple.t option;
}

val create_trigger :
  session ->
  name:string ->
  table:string ->
  kinds:[ `Insert | `Update | `Delete ] list ->
  ?timing:[ `Immediate | `Deferred ] ->
  ?authority:Principal.t ->
  (session -> trigger_event -> unit) ->
  unit
(** [authority] makes it a stored authority closure (runs with that
    principal); creation requires an uncontaminated session.  The body
    runs with the label of the triggering statement, also for
    [`Deferred] triggers at commit (section 5.2.3). *)

val drop_trigger : t -> string -> unit

val register_procedure :
  session ->
  name:string ->
  ?authority:Principal.t ->
  (session -> Value.t list -> Value.t) ->
  unit
(** Stored procedures, callable via [PERFORM name(args)].  With
    [authority], a stored authority closure (section 4.3). *)

val create_relabeling_view :
  ?materialized:bool ->
  session ->
  name:string ->
  query:string ->
  replace:(Tag.t * Tag.t) list ->
  unit
(** The sophisticated declassifying views of section 4.3: the view
    replaces each [from] tag with its [to] tag at its boundary (e.g. a
    billing view swapping [p_medical] for [p_billing]).  Requires an
    uncontaminated session with authority for every [from] tag.
    [materialized] (default false) additionally registers it for
    incremental maintenance, like [CREATE MATERIALIZED VIEW]. *)

val query_each :
  session ->
  ?extra:Label.t ->
  string ->
  (session -> Tuple.t -> unit) ->
  int
(** The per-tuple iterator from the paper's future work (section 10):
    run the SELECT with [extra] additional readable tags and hand each
    tuple to [f] in a fresh sub-session whose label joins the caller's
    with that tuple's — per-tuple contamination, confined as if each
    tuple were handled by its own forked process.  Returns the row
    count.  The caller's own label is unchanged. *)

val register_scalar :
  t -> name:string -> ?authority:Principal.t -> (session -> Value.t list -> Value.t) -> unit
(** Scalar functions usable inside SQL expressions (e.g. the
    [IsPCMember] call in HotCRP's declassifying view). *)

val add_label_constraint :
  t ->
  name:string ->
  table:string ->
  (Tuple.t -> Ifdb_engine.Catalog.label_rule option) ->
  unit

(** {1 Static analysis}

    The prepare-time label-flow analyzer ({!Ifdb_analysis.Analysis})
    wired to a session: every statement executed through {!exec},
    {!exec_script} or {!exec_stmt} is analyzed against the current
    catalog, live label partitions and authority state before it runs.
    Diagnostics are attached to the session; with [strict_analysis]
    they also reject provably-failing statements at prepare time. *)

val analyze : session -> string -> Ifdb_analysis.Diag.t list
(** Analyze a statement (or script) without executing it.  Parse
    failures come back as [parse-error] diagnostics, not exceptions.
    Returns [] when the database runs with [~ifc:false]. *)

val analyze_stmt : session -> Ifdb_sql.Ast.stmt -> Ifdb_analysis.Diag.t list
(** Analyze one pre-parsed statement without executing it. *)

val session_warnings : session -> Ifdb_analysis.Diag.t list
(** The diagnostics the analyzer attached to the most recent statement
    executed on this session (empty for clean statements). *)

(** {2 Trace-level analysis}

    Whole-script abstract interpretation ({!Ifdb_analysis.Analysis}'s
    [trace_] entry points) wired to a session: the symbolic trace is
    seeded from the session's live state — principal, label, an
    already-open transaction's write set, prepared templates — and each
    item of the script is analyzed against the state the script itself
    has built up.  Nothing is executed. *)

val trace_begin : session -> Ifdb_analysis.Trace_state.t
(** A fresh symbolic trace seeded from the session. *)

val trace_stmt :
  session ->
  Ifdb_analysis.Trace_state.t ->
  Ifdb_sql.Ast.stmt ->
  Ifdb_analysis.Diag.t list
(** Analyze the next statement of the script and apply its symbolic
    effects.  [[]] when the database runs with [~ifc:false]. *)

val trace_meta :
  session ->
  Ifdb_analysis.Trace_state.t ->
  name:string ->
  args:string list ->
  Ifdb_analysis.Diag.t list
(** Analyze a shell meta command ([\principal], [\newtag],
    [\addsecrecy], [\declassify], [\delegate], [\revoke]) symbolically. *)

val trace_finish :
  session ->
  Ifdb_analysis.Trace_state.t ->
  (int * Ifdb_analysis.Diag.t list) list
(** Whole-script diagnostics (dead-write, stale-prepare), grouped by
    the 1-based item index they attach to. *)

type check_item = {
  ck_index : int;  (** 1-based item index within the script *)
  ck_line : int;  (** source line of the item *)
  ck_text : string;
  ck_diags : Ifdb_analysis.Diag.t list;
}

val check_script : session -> string -> check_item list
(** The shell's [\check]: split [text] with {!Ifdb_analysis.Sqlscript},
    thread one symbolic trace through every statement and meta command,
    and return per-item diagnostics with the whole-script passes folded
    back in.  Parse failures become [parse-error] diagnostics on the
    offending item.  Nothing is executed and the session is left
    untouched. *)

(** {1 Maintenance} *)

val vacuum : t -> int
(** Remove dead tuple versions (exempt from flow rules, section 7.1);
    returns the number removed. *)

val checkpoint : t -> unit
(** Flush dirty pages (charges simulated write I/O). *)

val table_names : t -> string list

(** {1 Observability}

    One registry per database instance unifies the engine's scattered
    statistics (label store, buffer pool, WAL, group commit, domain
    pool, audit log) behind stable [ifdb_*] metric names, plus counters
    and a latency histogram maintained by the statement path itself.
    Created with [~metrics:false] every instrument is a no-op whose
    cost is one immediate boolean test. *)

val metrics : t -> Ifdb_obs.Metrics.t
(** The instance's metrics registry, for registering extra instruments
    (e.g. the platform's authority cache). *)

val metrics_snapshot : t -> (string * float) list
(** Current value of every metric, in registration order.  Histograms
    contribute [name_count] and [name_sum].  Empty when the registry is
    disabled. *)

val metrics_prometheus : t -> string
(** The registry in Prometheus text exposition format ([# HELP] /
    [# TYPE] / samples; histograms with cumulative [_bucket\{le=…\}]
    series). *)

val reset_stats : t -> unit
(** Zero the registry's counters and histograms {e and} the component
    stat blocks behind the pull gauges (label store, buffer pool, WAL,
    group commit) in one sweep, using their atomic take-and-reset
    entry points.  Gauges of current state (e.g. interned labels,
    pending commits) are unaffected. *)

val explain_analyze : session -> string -> string list * result
(** Execute a SELECT with per-operator tracing and return the rendered
    report (one line per string) alongside the ordinary result.  The
    report shows each operator's rows and inclusive wall time, morsel
    and per-worker attribution for parallel fan-outs, per-table label
    confinement counts (tuples scanned, pruned, whole scans skipped as
    label-empty), and the flow-check count and memo hit rate for
    exactly this execution.  Tracing is per-session and per-query:
    concurrent untraced statements pay nothing.  SQL-level access:
    [EXPLAIN ANALYZE SELECT …] (and [EXPLAIN SELECT …] for the plan
    tree alone), returning the report as [QUERY PLAN] rows. *)

val slow_queries : ?n:int -> t -> Ifdb_obs.Trace.slow_entry list
(** Most recent slow-query entries, newest first (default 20).  Only
    populated when {!create} was given [slow_query_ms].  When the
    statement was also span-sampled, the entry's [sq_trace] links to
    its record in {!spans}. *)

val spans : t -> Ifdb_obs.Span.t
(** The statement-lifecycle span recorder: a ring of the last 256
    sampled statements' span trees.  Empty unless {!create} was given
    [trace_sample > 0].  Render with {!Ifdb_obs.Span.render} or export
    with {!Ifdb_obs.Span.to_chrome_json}. *)

val view_stats : t -> Ifdb_engine.Ivm.view_stats list
(** Per-materialized-view maintenance statistics from the IVM
    registry, sorted by name: whether delta maintenance is on (and the
    reason when it is not), materialized entry and label-partition
    counts, staleness, and the delta-applied / refreshed / served /
    recomputed counters.  The same counters back the registry's
    [ifdb_mat_view_*] gauges.  Views created without [MATERIALIZED]
    never appear here. *)

val audit_log : t -> Ifdb_obs.Audit.t
(** The instance's IFC audit stream: declassifications (view and
    session), authority closure invocations, delegations/revocations,
    Write-Rule and commit-label rejections, and clearance raises, each
    stamped with the acting principal, the tags involved and the
    originating statement.  Always on — security events are rare enough
    that recording them is free relative to executing them. *)

(** {1 Label partitions}

    Introspection over the label-sharded storage layout (the partition
    directory is maintained in both layouts, so these work — and report
    the same numbers — with [partitioned] off). *)

val partitioned : t -> bool
(** Whether storage is label-sharded (the {!create} toggle). *)

val partitions_pruned : t -> int
(** Total partitions skipped by label confinement across all scans
    since startup — the counter behind [ifdb_partition_pruned_total].
    Zero under a scan-everything workload or with IFC off. *)

type table_partitions = {
  tp_table : string;
  tp_stats : Ifdb_storage.Heap.partition_stats list;
}

val partition_report : t -> table_partitions list
(** Per-table partition directory, tables sorted by name, partitions by
    interned label id: version count, live (uncommitted-delete) count
    and page count per partition.  Tables that never held a row are
    omitted. *)

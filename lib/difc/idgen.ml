type t = { mutable state : int64; mutable used : (int, unit) Hashtbl.t }

let create ~seed =
  { state = Int64.of_int seed; used = Hashtbl.create 64 }

(* SplitMix64: Steele, Lea & Flood, "Fast splittable pseudorandom
   number generators", OOPSLA 2014. *)
let next64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let fresh64 = next64

let rec fresh t =
  let raw = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
  (* Avoid 0 so ids can be used where 0 means "none". *)
  if raw = 0 || Hashtbl.mem t.used raw then fresh t
  else begin
    Hashtbl.add t.used raw ();
    raw
  end

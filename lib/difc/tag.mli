(** Tags: the unit of sensitivity in the DIFC model.

    A tag is an opaque identifier attached to data to denote a secrecy
    concern, e.g. [alice-location] for Alice's GPS coordinates
    (section 3.1 of the paper).  Tags themselves carry no metadata;
    names, owners and compound membership are recorded in the
    authority state ({!Authority}). *)

type t
(** A tag identifier. *)

val of_int : int -> t
(** [of_int i] views the raw identifier [i] as a tag.  Exposed for
    serialization (the [_label] system column stores tag ids as
    integers); [i] must be positive. *)

val to_int : t -> int
(** Raw identifier of a tag. *)

val compare : t -> t -> int
(** Total order on tags (by identifier). *)

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints as [#<id>]. *)

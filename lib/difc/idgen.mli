(** Unpredictable identifier generation.

    IFDB allocates principal and tag identifiers from a keyed
    pseudorandom generator rather than a counter, so that the order in
    which ids were allocated reveals nothing (the paper's allocation
    channel countermeasure, section 7.3).  The generator here is a
    SplitMix64 stream: not cryptographic, but keyed and statistically
    uniform, which is the property the simulation needs.  Identifiers
    are positive 62-bit integers and are guaranteed unique within one
    generator. *)

type t
(** A stateful identifier generator. *)

val create : seed:int -> t
(** [create ~seed] makes a fresh generator.  Two generators with the
    same seed yield the same id sequence (deterministic tests). *)

val fresh : t -> int
(** [fresh t] returns a positive identifier never previously returned
    by [t]. *)

val fresh64 : t -> int64
(** [fresh64 t] returns the next raw 64-bit state mix, without the
    uniqueness bookkeeping.  Used where a raw pseudorandom word is
    wanted. *)

(** The label store: hash-consed labels and memoized flow checks.

    The paper's prototype does not store a label on every tuple; it
    stores a 4-byte reference into a deduplicated label table
    (section 7.1), because distinct labels are few while tuples are
    many.  This module is that table: {!intern} maps a label to a
    dense non-negative integer id, identical labels always map to the
    same id, and {!label_of} resolves an id back to a canonical
    (shared) label value.  Id 0 is always the empty (public) label.

    On top of the table sits a {b flow cache}: {!flows_id} memoizes
    compound-aware {!Authority.flows} verdicts keyed on
    [(src_id, dst_id)].  Like {!Ifdb_platform.Auth_cache}, entries are
    stamped with the authority state's generation counter and
    wholesale-invalidated whenever it moves — any tag or principal
    creation, delegation, or revocation drops every cached verdict, so
    a stale "visible" answer can never outlive the authority change
    that would retract it.  This is deliberately conservative:
    compound links are immutable after tag creation, but the cache
    must stay sound even if that invariant is ever relaxed.

    {!flows_id} and {!intern} are thread-safe and may be called from
    worker domains during morsel-parallel scans: the global table and
    verdict cache are mutex-guarded, statistics are atomic, and each
    domain keeps a generation-stamped {e domain-local} verdict memo so
    steady-state probes are lock-free.  Authority-state mutations and
    {!label_of} remain single-writer (the main thread). *)

type t

type id = int
(** A dense label id: non-negative, allocated in interning order.
    Negative values are never allocated; callers use [-1] as the
    "not interned" sentinel (see {!Ifdb_rel.Tuple.label_id}). *)

val empty_id : id
(** The id of {!Label.empty}; always [0] in every store. *)

type stats = {
  interned : int;      (** distinct labels in the table *)
  flow_hits : int;     (** flow checks answered from the cache *)
  flow_misses : int;   (** flow checks that ran {!Authority.flows} *)
  invalidations : int; (** wholesale cache drops (generation moved) *)
}

val create : ?flow_cache:bool -> Authority.t -> t
(** A store bound to one authority state.  [flow_cache:false] disables
    verdict memoization ({!flows_id} recomputes every time) while
    keeping interning — the [labelcache] ablation's off switch. *)

val authority : t -> Authority.t

val intern : t -> Label.t -> id
(** The id for this label, allocating one on first sight.  O(label
    size) hash + one table probe; the empty label short-circuits to
    {!empty_id}. *)

val label_of : t -> id -> Label.t
(** The canonical label for an id.  All callers interning an equal
    label receive physically this value, so downstream
    {!Label.equal}/{!Label.union} hit their pointer fast paths.
    Raises [Invalid_argument] for ids never returned by {!intern}. *)

val size : t -> int
(** Distinct labels interned so far. *)

val flows_id : t -> src:id -> dst:id -> bool
(** Memoized [Authority.flows ~src:(label_of src) ~dst:(label_of dst)]:
    may information labeled [src] flow to a destination labeled [dst]?
    [src = dst] and [src = empty_id] short-circuit to [true] without
    touching the cache.  The first call after an authority-state
    generation bump always recomputes. *)

val union_id : t -> id -> id -> id
(** The id of the union of two interned labels.  Equal or empty
    operands short-circuit without touching the table; otherwise one
    union + {!intern}.  Used by incremental view maintenance to key
    joined delta rows by partition. *)

val stats : t -> stats

val take_stats : t -> stats
(** Read and zero the counters as one atomic pair per counter
    ([Atomic.exchange]): an increment racing the call is charged to
    exactly one epoch — the returned snapshot or the fresh counts —
    never lost and never double-counted.  Use this (not {!stats}
    followed by {!reset_stats}) when sampling deltas concurrently with
    running queries. *)

val reset_stats : t -> unit
(** [reset_stats t = ignore (take_stats t)]. *)

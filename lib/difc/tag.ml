type t = int

let of_int i =
  if i <= 0 then invalid_arg "Tag.of_int: tag ids are positive";
  i

let to_int t = t
let compare = Int.compare
let equal = Int.equal
let hash = Hashtbl.hash
let pp ppf t = Format.fprintf ppf "#%d" t

type t = int

let of_int i =
  if i <= 0 then invalid_arg "Principal.of_int: principal ids are positive";
  i

let to_int t = t
let compare = Int.compare
let equal = Int.equal
let hash = Hashtbl.hash
let pp ppf t = Format.fprintf ppf "@@%d" t

(** The authority state: principals, tags, ownership, compound
    membership, and delegation (sections 3.2-3.3).

    The authority state is itself an object with an empty label, so
    every mutating operation takes the acting process's label and
    fails unless it is empty — this is what stops delegations and
    revocations from being used as a covert channel.

    Authority semantics:
    - the owner of a tag (its creator) has full authority over it;
    - [delegate] gives a grantee authority for a tag, provided the
      grantor has that authority;
    - authority over a compound tag implies authority over each member;
    - a grant is live only while its grantor retains the authority, so
      revoking an upstream grant transitively disables downstream
      grants made from it;
    - [revoke] removes a specific grant made by the revoking principal
      (principals can revoke only what they granted).

    Identifier allocation uses {!Idgen}, so tag and principal ids leak
    no ordering information (section 7.3). *)

type t

exception Denied of string
(** Raised when an operation requires authority the actor lacks. *)

exception Not_public of string
(** Raised when an authority-state mutation is attempted by a process
    whose label is not empty. *)

exception Unknown of string
(** Raised on lookup of a nonexistent tag or principal. *)

val create : ?seed:int -> unit -> t
(** Fresh authority state.  [seed] keys the id generator (defaults to
    a fixed seed; pass distinct seeds for distinct universes). *)

val generation : t -> int
(** Monotone counter bumped by every mutation; lets clients (the
    platform's authority cache) detect staleness cheaply. *)

(** {1 Principals} *)

val create_principal : t -> actor_label:Label.t -> name:string -> Principal.t
(** New principal.  The acting process must be uncontaminated. *)

val principal_name : t -> Principal.t -> string
val find_principal : t -> string -> Principal.t
(** By name; raises {!Unknown} if absent. *)

(** {1 Tags} *)

val create_tag :
  t ->
  actor_label:Label.t ->
  owner:Principal.t ->
  name:string ->
  ?compounds:Tag.t list ->
  unit ->
  Tag.t
(** [create_tag t ~actor_label ~owner ~name ~compounds ()] makes a new
    tag owned by [owner] and declares it a member of each tag in
    [compounds].  Membership links are fixed at creation (the paper
    does not allow relinking, which would silently relabel data). *)

val tag_name : t -> Tag.t -> string
val find_tag : t -> string -> Tag.t
(** By name; raises {!Unknown} if absent. *)

val owner_of : t -> Tag.t -> Principal.t

val compounds_of : t -> Tag.t -> Tag.t list
(** The compound tags [tag] belongs to (directly). *)

val members_of : t -> Tag.t -> Tag.t list
(** The direct members of a compound tag (empty for ordinary tags). *)

(** {1 Delegation} *)

val delegate :
  t ->
  actor:Principal.t ->
  actor_label:Label.t ->
  tag:Tag.t ->
  grantee:Principal.t ->
  unit
(** Grant [grantee] authority for [tag].  Requires that [actor] has
    authority for [tag] and that [actor_label] is empty. *)

val revoke :
  t ->
  actor:Principal.t ->
  actor_label:Label.t ->
  tag:Tag.t ->
  grantee:Principal.t ->
  unit
(** Remove the grant of [tag] from [actor] to [grantee] (no-op if no
    such grant).  Grants the grantee made onward become dead
    automatically if they depended on this authority. *)

(** {1 Queries} *)

val has_authority : t -> Principal.t -> Tag.t -> bool
(** [has_authority t p tag]: [p] owns [tag], owns or was delegated a
    compound containing [tag], or holds a live delegation chain for
    it. *)

val check_authority : t -> Principal.t -> Tag.t -> unit
(** Like {!has_authority} but raises {!Denied} on failure. *)

val has_authority_for_label : t -> Principal.t -> Label.t -> bool
(** Authority for every tag in the label. *)

val has_authority_hyp :
  t ->
  added:(Principal.t * Principal.t * Tag.t) list ->
  removed:(Principal.t * Principal.t * Tag.t) list ->
  Principal.t ->
  Tag.t ->
  bool
(** {!has_authority} evaluated against a hypothetical grant list:
    [added] edges (grantor, grantee, tag) unioned in, [removed] edges
    filtered out of the current grants.  Tags, compound links and
    ownership are immutable once created, so this answers exactly for
    any authority state reachable from the current one by delegations
    and revocations — the static analyzer uses it to reason about
    authority at future trace points. *)

val covers : t -> Label.t -> Tag.t -> bool
(** Compound-aware membership: see {!Label.covers}. *)

val flows : t -> src:Label.t -> dst:Label.t -> bool
(** Compound-aware information flow check: see {!Label.flows_to}. *)

val label_to_string : t -> Label.t -> string
(** Render a label with tag {e names} where known ([{alice_medical}]),
    falling back to [#id] for anonymous tags; the empty label prints as
    [{}].  This is the formatter every user-facing flow-violation
    message, the shell and [ifdb_lint] share, so diagnostics name the
    tags people declared rather than internal ids. *)

val pp_label : t -> Format.formatter -> Label.t -> unit
(** [Format]-friendly {!label_to_string}. *)

val all_tags : t -> Tag.t list
val all_principals : t -> Principal.t list

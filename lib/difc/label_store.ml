(* Hash-consed label table plus generation-stamped flow cache (the
   reproduction of the paper's deduplicated label table, section 7.1,
   and PHP-IF's memoized authority answers, section 7.2).

   Thread-safety (for morsel-parallel scans): the table and the global
   verdict cache are guarded by [lock]; statistics are atomics.  On top
   of the global cache each domain keeps a {e domain-local} verdict
   memo (via [Domain.DLS]) keyed by store identity and stamped with the
   authority generation, so the steady-state per-tuple-group probe on a
   worker domain is a lock-free hashtable lookup; only genuine misses
   take the lock.  Local memos are dropped the moment their generation
   falls behind the authority state, exactly like the global cache, so
   a revocation is never outlived by a stale domain-local verdict. *)

module H = Hashtbl.Make (struct
  type t = Label.t

  let equal = Label.equal
  let hash = Label.hash
end)

type id = int

let empty_id = 0

type stats = {
  interned : int;
  flow_hits : int;
  flow_misses : int;
  invalidations : int;
}

type t = {
  auth : Authority.t;
  flow_cache : bool;
  uid : int; (* process-unique store identity, keys the DLS memos *)
  lock : Mutex.t;
  ids : id H.t; (* label -> id *)
  mutable labels : Label.t array; (* id -> canonical label *)
  mutable next : int;
  (* (src_id, dst_id) -> verdict, key packed as src lsl 31 lor dst.
     Dense ids keep the packing collision-free for < 2^31 labels. *)
  verdicts : (int, bool) Hashtbl.t;
  mutable valid_generation : int;
  flow_hits : int Atomic.t;
  flow_misses : int Atomic.t;
  invalidations : int Atomic.t;
}

let next_uid = Atomic.make 0

let create ?(flow_cache = true) auth =
  let t =
    {
      auth;
      flow_cache;
      uid = Atomic.fetch_and_add next_uid 1;
      lock = Mutex.create ();
      ids = H.create 256;
      labels = Array.make 64 Label.empty;
      next = 0;
      verdicts = Hashtbl.create 1024;
      valid_generation = Authority.generation auth;
      flow_hits = Atomic.make 0;
      flow_misses = Atomic.make 0;
      invalidations = Atomic.make 0;
    }
  in
  (* slot 0 is the public label, unconditionally *)
  H.replace t.ids Label.empty empty_id;
  t.next <- 1;
  t

let authority t = t.auth
let size t = t.next

let intern t l =
  if Label.is_empty l then empty_id
  else begin
    Mutex.lock t.lock;
    let id =
      match H.find_opt t.ids l with
      | Some id -> id
      | None ->
          let id = t.next in
          if id >= Array.length t.labels then begin
            let bigger = Array.make (2 * Array.length t.labels) Label.empty in
            Array.blit t.labels 0 bigger 0 id;
            t.labels <- bigger
          end;
          t.labels.(id) <- l;
          H.replace t.ids l id;
          t.next <- id + 1;
          id
    in
    Mutex.unlock t.lock;
    id
  end

let label_of t id =
  if id < 0 || id >= t.next then
    invalid_arg (Printf.sprintf "Label_store.label_of: unknown id %d" id)
  else t.labels.(id)

(* Invalidation discipline shared with Auth_cache: verdicts are valid
   only for the generation they were computed under; any authority
   mutation (tag/principal creation, delegation, revocation) bumps the
   generation and the whole cache is dropped on the next probe. *)
let revalidate t =
  let g = Authority.generation t.auth in
  if g <> t.valid_generation then begin
    if Hashtbl.length t.verdicts > 0 then Atomic.incr t.invalidations;
    Hashtbl.reset t.verdicts;
    t.valid_generation <- g
  end

(* Domain-local memos: store uid -> (generation, packed-pair -> verdict).
   One small table per domain; reset per store whenever its generation
   moves.  Never shared across domains, so reads/writes need no lock. *)
type local = { mutable l_gen : int; l_verdicts : (int, bool) Hashtbl.t }

let dls_key : (int, local) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let local_memo t ~generation =
  let per_store = Domain.DLS.get dls_key in
  match Hashtbl.find_opt per_store t.uid with
  | Some l ->
      if l.l_gen <> generation then begin
        Hashtbl.reset l.l_verdicts;
        l.l_gen <- generation
      end;
      l
  | None ->
      let l = { l_gen = generation; l_verdicts = Hashtbl.create 64 } in
      Hashtbl.replace per_store t.uid l;
      l

(* Global probe/derive, under the lock. *)
let flows_id_slow t ~key ~src ~dst =
  Mutex.lock t.lock;
  revalidate t;
  let verdict =
    match if t.flow_cache then Hashtbl.find_opt t.verdicts key else None with
    | Some verdict ->
        Atomic.incr t.flow_hits;
        verdict
    | None ->
        Atomic.incr t.flow_misses;
        let verdict =
          Authority.flows t.auth ~src:(label_of t src) ~dst:(label_of t dst)
        in
        if t.flow_cache then Hashtbl.replace t.verdicts key verdict;
        verdict
  in
  Mutex.unlock t.lock;
  verdict

let flows_id t ~src ~dst =
  if src = dst || src = empty_id then true
  else begin
    let key = (src lsl 31) lor dst in
    if not t.flow_cache then flows_id_slow t ~key ~src ~dst
    else begin
      let l = local_memo t ~generation:(Authority.generation t.auth) in
      match Hashtbl.find_opt l.l_verdicts key with
      | Some verdict ->
          Atomic.incr t.flow_hits;
          verdict
      | None ->
          let verdict = flows_id_slow t ~key ~src ~dst in
          Hashtbl.replace l.l_verdicts key verdict;
          verdict
    end
  end

let union_id t a b =
  if a = b || b = empty_id then a
  else if a = empty_id then b
  else intern t (Label.union (label_of t a) (label_of t b))

let stats t =
  {
    interned = t.next;
    flow_hits = Atomic.get t.flow_hits;
    flow_misses = Atomic.get t.flow_misses;
    invalidations = Atomic.get t.invalidations;
  }

(* Read-and-zero each counter with [Atomic.exchange] so an increment
   racing the reset lands in exactly one epoch: either the returned
   snapshot or the fresh count, never neither (the [Atomic.set]-based
   reset lost increments that arrived between the read and the set,
   letting a concurrent reader observe hits > lookups mid-update). *)
let take_stats t =
  {
    interned = t.next;
    flow_hits = Atomic.exchange t.flow_hits 0;
    flow_misses = Atomic.exchange t.flow_misses 0;
    invalidations = Atomic.exchange t.invalidations 0;
  }

let reset_stats t = ignore (take_stats t)

(* Hash-consed label table plus generation-stamped flow cache (the
   reproduction of the paper's deduplicated label table, section 7.1,
   and PHP-IF's memoized authority answers, section 7.2). *)

module H = Hashtbl.Make (struct
  type t = Label.t

  let equal = Label.equal
  let hash = Label.hash
end)

type id = int

let empty_id = 0

type stats = {
  interned : int;
  flow_hits : int;
  flow_misses : int;
  invalidations : int;
}

type t = {
  auth : Authority.t;
  flow_cache : bool;
  ids : id H.t; (* label -> id *)
  mutable labels : Label.t array; (* id -> canonical label *)
  mutable next : int;
  (* (src_id, dst_id) -> verdict, key packed as src lsl 31 lor dst.
     Dense ids keep the packing collision-free for < 2^31 labels. *)
  verdicts : (int, bool) Hashtbl.t;
  mutable valid_generation : int;
  mutable flow_hits : int;
  mutable flow_misses : int;
  mutable invalidations : int;
}

let create ?(flow_cache = true) auth =
  let t =
    {
      auth;
      flow_cache;
      ids = H.create 256;
      labels = Array.make 64 Label.empty;
      next = 0;
      verdicts = Hashtbl.create 1024;
      valid_generation = Authority.generation auth;
      flow_hits = 0;
      flow_misses = 0;
      invalidations = 0;
    }
  in
  (* slot 0 is the public label, unconditionally *)
  H.replace t.ids Label.empty empty_id;
  t.next <- 1;
  t

let authority t = t.auth
let size t = t.next

let intern t l =
  if Label.is_empty l then empty_id
  else
    match H.find_opt t.ids l with
    | Some id -> id
    | None ->
        let id = t.next in
        if id >= Array.length t.labels then begin
          let bigger = Array.make (2 * Array.length t.labels) Label.empty in
          Array.blit t.labels 0 bigger 0 id;
          t.labels <- bigger
        end;
        t.labels.(id) <- l;
        H.replace t.ids l id;
        t.next <- id + 1;
        id

let label_of t id =
  if id < 0 || id >= t.next then
    invalid_arg (Printf.sprintf "Label_store.label_of: unknown id %d" id)
  else t.labels.(id)

(* Invalidation discipline shared with Auth_cache: verdicts are valid
   only for the generation they were computed under; any authority
   mutation (tag/principal creation, delegation, revocation) bumps the
   generation and the whole cache is dropped on the next probe. *)
let revalidate t =
  let g = Authority.generation t.auth in
  if g <> t.valid_generation then begin
    if Hashtbl.length t.verdicts > 0 then
      t.invalidations <- t.invalidations + 1;
    Hashtbl.reset t.verdicts;
    t.valid_generation <- g
  end

let flows_id t ~src ~dst =
  if src = dst || src = empty_id then true
  else begin
    revalidate t;
    let key = (src lsl 31) lor dst in
    match if t.flow_cache then Hashtbl.find_opt t.verdicts key else None with
    | Some verdict ->
        t.flow_hits <- t.flow_hits + 1;
        verdict
    | None ->
        t.flow_misses <- t.flow_misses + 1;
        let verdict =
          Authority.flows t.auth ~src:(label_of t src) ~dst:(label_of t dst)
        in
        if t.flow_cache then Hashtbl.replace t.verdicts key verdict;
        verdict
  end

let stats t =
  {
    interned = t.next;
    flow_hits = t.flow_hits;
    flow_misses = t.flow_misses;
    invalidations = t.invalidations;
  }

let reset_stats t =
  t.flow_hits <- 0;
  t.flow_misses <- 0;
  t.invalidations <- 0

(* Labels are sorted, duplicate-free arrays of tag ids.  Merge-style
   set operations keep everything O(n+m); labels rarely exceed a
   handful of tags, so this beats tree sets on both time and space. *)

type t = int array

let empty = [||]
let is_empty l = Array.length l = 0
let singleton t = [| Tag.to_int t |]

let dedup_sorted a =
  let n = Array.length a in
  if n <= 1 then a
  else begin
    let out = Array.make n a.(0) in
    let k = ref 1 in
    for i = 1 to n - 1 do
      if a.(i) <> out.(!k - 1) then begin
        out.(!k) <- a.(i);
        incr k
      end
    done;
    if !k = n then out else Array.sub out 0 !k
  end

let of_ints ints =
  let a = Array.copy ints in
  Array.sort Int.compare a;
  dedup_sorted a

let of_list tags = of_ints (Array.of_list (List.map Tag.to_int tags))
let to_list l = Array.to_list (Array.map Tag.of_int l)
let to_ints l = Array.copy l

let mem tag l =
  let t = Tag.to_int tag in
  let rec go lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if l.(mid) = t then true
      else if l.(mid) < t then go (mid + 1) hi
      else go lo mid
  in
  go 0 (Array.length l)

let add tag l =
  if mem tag l then l
  else begin
    let t = Tag.to_int tag in
    let n = Array.length l in
    let out = Array.make (n + 1) t in
    let i = ref 0 in
    while !i < n && l.(!i) < t do
      out.(!i) <- l.(!i);
      incr i
    done;
    Array.blit l !i out (!i + 1) (n - !i);
    out
  end

let remove tag l =
  if not (mem tag l) then l
  else begin
    let t = Tag.to_int tag in
    let n = Array.length l in
    let out = Array.make (n - 1) 0 in
    let j = ref 0 in
    for i = 0 to n - 1 do
      if l.(i) <> t then begin
        out.(!j) <- l.(i);
        incr j
      end
    done;
    out
  end

(* Generic sorted-array merge parameterized by which sides to keep. *)
let merge ~keep_left ~keep_both ~keep_right a b =
  let na = Array.length a and nb = Array.length b in
  let buf = Array.make (na + nb) 0 in
  let k = ref 0 in
  let push x = buf.(!k) <- x; incr k in
  let i = ref 0 and j = ref 0 in
  while !i < na && !j < nb do
    let x = a.(!i) and y = b.(!j) in
    if x < y then begin
      if keep_left then push x;
      incr i
    end else if x > y then begin
      if keep_right then push y;
      incr j
    end else begin
      if keep_both then push x;
      incr i; incr j
    end
  done;
  if keep_left then
    while !i < na do push a.(!i); incr i done;
  if keep_right then
    while !j < nb do push b.(!j); incr j done;
  if !k = na + nb then buf else Array.sub buf 0 !k

let subset a b =
  let na = Array.length a and nb = Array.length b in
  if na > nb then false
  else begin
    let i = ref 0 and j = ref 0 in
    let ok = ref true in
    while !ok && !i < na do
      if !j >= nb then ok := false
      else if a.(!i) = b.(!j) then begin incr i; incr j end
      else if a.(!i) > b.(!j) then incr j
      else ok := false
    done;
    !ok
  end

(* Unions dominate the hot paths (scan filters hoist one per scan, but
   aggregates and joins still fold labels per row), and the common case
   is one side already containing the other — e.g. an accumulator that
   has absorbed every tag in sight.  The subset probes are allocation-
   free, so testing them first means the steady state allocates
   nothing and returns an existing (often interned) array. *)
let union a b =
  if a == b then a
  else if is_empty a then b
  else if is_empty b then a
  else if subset b a then a
  else if subset a b then b
  else merge ~keep_left:true ~keep_both:true ~keep_right:true a b

let inter a b = merge ~keep_left:false ~keep_both:true ~keep_right:false a b
let diff a b = merge ~keep_left:true ~keep_both:false ~keep_right:false a b
let symm_diff a b = merge ~keep_left:true ~keep_both:false ~keep_right:true a b

(* Monomorphic int-array comparisons: labels sit on every tuple access,
   so none of these may fall into the polymorphic runtime. *)
let equal (a : t) (b : t) =
  a == b
  || begin
       let n = Array.length a in
       n = Array.length b
       &&
       let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
       go 0
     end

(* Lexicographic over the sorted tag ids (element-wise, shorter prefix
   first) — a total order suitable for Map/Set keys. *)
let compare (a : t) (b : t) =
  if a == b then 0
  else begin
    let na = Array.length a and nb = Array.length b in
    let n = if na < nb then na else nb in
    let rec go i =
      if i >= n then Int.compare na nb
      else
        let c = Int.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  end

let cardinal = Array.length

let covers ~compounds_of l tag =
  mem tag l
  || List.exists (fun c -> mem c l) (compounds_of tag)

let flows_to ~compounds_of src dst =
  let n = Array.length src in
  let rec go i =
    i >= n || (covers ~compounds_of dst (Tag.of_int src.(i)) && go (i + 1))
  in
  go 0

let fold f l acc =
  Array.fold_left (fun acc t -> f (Tag.of_int t) acc) acc l

let iter f l = Array.iter (fun t -> f (Tag.of_int t)) l
let exists f l = Array.exists (fun t -> f (Tag.of_int t)) l
let for_all f l = Array.for_all (fun t -> f (Tag.of_int t)) l

let byte_size l = 4 * Array.length l

(* FNV-1a over the tag ids.  Monomorphic, never truncates the element
   range (Hashtbl.hash only looks at a bounded prefix of large
   structures), and keeps the result non-negative for array indexing. *)
let hash (l : t) =
  let h = ref 0x811c9dc5 in
  for i = 0 to Array.length l - 1 do
    h := (!h lxor l.(i)) * 0x01000193 land 0x3FFFFFFF
  done;
  !h

let pp ppf l =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Tag.pp)
    (to_list l)

let to_string l = Format.asprintf "%a" pp l

exception Denied of string
exception Not_public of string
exception Unknown of string

type tag_info = {
  tag_name : string;
  owner : Principal.t;
  tag_compounds : Tag.t list; (* compounds this tag is a member of *)
  mutable members : Tag.t list; (* members, if this tag is used as a compound *)
}

type grant = { grantor : Principal.t; grantee : Principal.t; g_tag : Tag.t }

type t = {
  idgen : Idgen.t;
  principals : (int, string) Hashtbl.t;
  principal_by_name : (string, Principal.t) Hashtbl.t;
  tags : (int, tag_info) Hashtbl.t;
  tag_by_name : (string, Tag.t) Hashtbl.t;
  mutable grants : grant list;
  mutable gen : int;
  (* Upward compound closure per tag.  Compound links are fixed when a
     tag is created (the paper forbids relinking), so the closure of an
     existing tag never changes and can be memoized forever.  This
     check sits on the per-tuple read path. *)
  closures : (int, Tag.t list) Hashtbl.t;
}

let create ?(seed = 0x1FDB) () =
  {
    idgen = Idgen.create ~seed;
    principals = Hashtbl.create 64;
    principal_by_name = Hashtbl.create 64;
    tags = Hashtbl.create 64;
    tag_by_name = Hashtbl.create 64;
    grants = [];
    gen = 0;
    closures = Hashtbl.create 64;
  }

let generation t = t.gen

let require_public label what =
  if not (Label.is_empty label) then
    raise
      (Not_public
         (Printf.sprintf
            "%s requires an empty label (authority state is public); \
             process label is %s"
            what (Label.to_string label)))

let bump t = t.gen <- t.gen + 1

let create_principal t ~actor_label ~name =
  require_public actor_label "create_principal";
  let p = Principal.of_int (Idgen.fresh t.idgen) in
  Hashtbl.replace t.principals (Principal.to_int p) name;
  if name <> "" then Hashtbl.replace t.principal_by_name name p;
  bump t;
  p

let principal_name t p =
  match Hashtbl.find_opt t.principals (Principal.to_int p) with
  | Some n -> n
  | None -> raise (Unknown (Printf.sprintf "principal %d" (Principal.to_int p)))

let find_principal t name =
  match Hashtbl.find_opt t.principal_by_name name with
  | Some p -> p
  | None -> raise (Unknown (Printf.sprintf "principal %S" name))

let tag_info t tag =
  match Hashtbl.find_opt t.tags (Tag.to_int tag) with
  | Some info -> info
  | None -> raise (Unknown (Printf.sprintf "tag %d" (Tag.to_int tag)))

let create_tag t ~actor_label ~owner ~name ?(compounds = []) () =
  require_public actor_label "create_tag";
  if not (Hashtbl.mem t.principals (Principal.to_int owner)) then
    raise (Unknown (Printf.sprintf "principal %d" (Principal.to_int owner)));
  List.iter (fun c -> ignore (tag_info t c)) compounds;
  let tag = Tag.of_int (Idgen.fresh t.idgen) in
  Hashtbl.replace t.tags (Tag.to_int tag)
    { tag_name = name; owner; tag_compounds = compounds; members = [] };
  List.iter
    (fun c ->
      let ci = tag_info t c in
      ci.members <- tag :: ci.members)
    compounds;
  if name <> "" then Hashtbl.replace t.tag_by_name name tag;
  bump t;
  tag

let tag_name t tag = (tag_info t tag).tag_name

let find_tag t name =
  match Hashtbl.find_opt t.tag_by_name name with
  | Some tag -> tag
  | None -> raise (Unknown (Printf.sprintf "tag %S" name))

let owner_of t tag = (tag_info t tag).owner
let compounds_of t tag = (tag_info t tag).tag_compounds
let members_of t tag = (tag_info t tag).members

(* [tags_conferring tag] is [tag] plus every compound reachable upward
   from it: authority over any of these confers authority over [tag].
   Memoized — compound links are immutable after tag creation. *)
let tags_conferring t tag =
  match Hashtbl.find_opt t.closures (Tag.to_int tag) with
  | Some closure -> closure
  | None ->
      let seen = Hashtbl.create 8 in
      let rec go acc tag =
        if Hashtbl.mem seen (Tag.to_int tag) then acc
        else begin
          Hashtbl.add seen (Tag.to_int tag) ();
          List.fold_left go (tag :: acc) (compounds_of t tag)
        end
      in
      let closure = go [] tag in
      Hashtbl.replace t.closures (Tag.to_int tag) closure;
      closure

(* A grant is live only if the grantor (still) has the authority it
   passed on; [visiting] breaks delegation cycles. *)
let rec holds t visiting p tag =
  let confer = tags_conferring t tag in
  List.exists
    (fun cand ->
      Principal.equal (owner_of t cand) p
      || List.exists
           (fun g ->
             Tag.equal g.g_tag cand
             && Principal.equal g.grantee p
             && (not (List.mem (Principal.to_int g.grantor, Tag.to_int cand) visiting))
             && holds t
                  ((Principal.to_int g.grantor, Tag.to_int cand) :: visiting)
                  g.grantor cand)
           t.grants)
    confer

let has_authority t p tag = holds t [] p tag

(* Same algorithm as [holds], but over a hypothetical grant list
   [added @ (grants \ removed)].  Tag/compound/owner tables only grow
   and compound links are immutable, so evaluating against the current
   tables with an edge overlay is exact for any future authority state
   reachable by delegations/revocations alone. *)
let has_authority_hyp t ~added ~removed p tag =
  let to_grant (grantor, grantee, g_tag) = { grantor; grantee; g_tag } in
  let removed = List.map to_grant removed in
  let grants' =
    List.map to_grant added
    @ List.filter (fun g -> not (List.mem g removed)) t.grants
  in
  let rec holds' visiting p tag =
    let confer = tags_conferring t tag in
    List.exists
      (fun cand ->
        Principal.equal (owner_of t cand) p
        || List.exists
             (fun g ->
               Tag.equal g.g_tag cand
               && Principal.equal g.grantee p
               && (not
                     (List.mem
                        (Principal.to_int g.grantor, Tag.to_int cand)
                        visiting))
               && holds'
                    ((Principal.to_int g.grantor, Tag.to_int cand) :: visiting)
                    g.grantor cand)
             grants')
      confer
  in
  holds' [] p tag

let check_authority t p tag =
  if not (has_authority t p tag) then
    raise
      (Denied
         (Printf.sprintf "principal %s (%s) lacks authority for tag %s (%s)"
            (Format.asprintf "%a" Principal.pp p)
            (try principal_name t p with Unknown _ -> "?")
            (Format.asprintf "%a" Tag.pp tag)
            (try tag_name t tag with Unknown _ -> "?")))

let has_authority_for_label t p label =
  Label.for_all (fun tag -> has_authority t p tag) label

let delegate t ~actor ~actor_label ~tag ~grantee =
  require_public actor_label "delegate";
  check_authority t actor tag;
  if not (Hashtbl.mem t.principals (Principal.to_int grantee)) then
    raise (Unknown (Printf.sprintf "principal %d" (Principal.to_int grantee)));
  let g = { grantor = actor; grantee; g_tag = tag } in
  if not (List.mem g t.grants) then t.grants <- g :: t.grants;
  bump t

let revoke t ~actor ~actor_label ~tag ~grantee =
  require_public actor_label "revoke";
  t.grants <-
    List.filter
      (fun g ->
        not
          (Principal.equal g.grantor actor
          && Principal.equal g.grantee grantee
          && Tag.equal g.g_tag tag))
      t.grants;
  bump t

(* Coverage is transitive through compound nesting: a tag is covered
   by a label holding the tag itself or any compound reachable upward
   from it — exactly the memoized [tags_conferring] closure. *)
let covers t label tag =
  List.exists (fun c -> Label.mem c label) (tags_conferring t tag)

let flows t ~src ~dst = Label.for_all (fun tag -> covers t dst tag) src

let label_to_string t label =
  if Label.is_empty label then "{}"
  else
    let name tag =
      match Hashtbl.find_opt t.tags (Tag.to_int tag) with
      | Some { tag_name = n; _ } when n <> "" -> n
      | _ -> Format.asprintf "%a" Tag.pp tag
    in
    "{" ^ String.concat ", " (List.map name (Label.to_list label)) ^ "}"

let pp_label t fmt label = Format.pp_print_string fmt (label_to_string t label)

let all_tags t =
  Hashtbl.fold (fun id _ acc -> Tag.of_int id :: acc) t.tags []
  |> List.sort Tag.compare

let all_principals t =
  Hashtbl.fold (fun id _ acc -> Principal.of_int id :: acc) t.principals []
  |> List.sort Principal.compare

(** Labels: sets of tags summarizing the sensitivity of data or the
    contamination of a process (section 3.1).

    A label is an immutable, sorted, duplicate-free set of tags.  The
    representation is a sorted array, so all lattice operations are
    linear in the label sizes; labels in practice are tiny (the paper
    observed 0-2 tags per tuple).

    Two notions of containment matter:
    - {!subset} is plain set containment, used where exact tag identity
      matters (e.g. selecting the tuples an UPDATE may touch);
    - {!flows_to} is compound-aware containment: a tag [t] in the
      source is covered if the destination holds [t] itself or a
      compound tag that has [t] as a member.  This is what lets a
      statistics job carry just [all-drives] instead of every user's
      drive tag (section 3.1). *)

type t

val empty : t
(** The public label: no tags. *)

val is_empty : t -> bool

val singleton : Tag.t -> t

val of_list : Tag.t list -> t
(** Builds a label from a list of tags; duplicates are removed. *)

val to_list : t -> Tag.t list
(** Tags in increasing order. *)

val mem : Tag.t -> t -> bool
val add : Tag.t -> t -> t
val remove : Tag.t -> t -> t
val union : t -> t -> t
val inter : t -> t -> t

val diff : t -> t -> t
(** [diff a b] is the tags of [a] not in [b]. *)

val symm_diff : t -> t -> t
(** [symm_diff a b] is the tags in exactly one of [a], [b] — the set
    over which the Foreign Key Rule demands authority (section 5.2.2). *)

val subset : t -> t -> bool
(** [subset a b] is plain set containment [a ⊆ b]. *)

val equal : t -> t -> bool
(** Structural set equality.  Specialized to a monomorphic int-array
    loop (no polymorphic [=]); [O(min)] with a physical-equality fast
    path, so hash-consed labels compare in constant time. *)

val compare : t -> t -> int
(** Total order: lexicographic over the sorted tag ids, with a shorter
    strict prefix ordering first ([{1} < {1,2} < {2}]). *)

val cardinal : t -> int

val covers : compounds_of:(Tag.t -> Tag.t list) -> t -> Tag.t -> bool
(** [covers ~compounds_of l t] holds when [t ∈ l] or some compound of
    [t] (per [compounds_of]) is in [l]. *)

val flows_to : compounds_of:(Tag.t -> Tag.t list) -> t -> t -> bool
(** [flows_to ~compounds_of src dst]: information with label [src] may
    flow to a destination with label [dst], i.e. every tag of [src] is
    covered by [dst].  With a [compounds_of] that always returns [[]]
    this degenerates to {!subset}. *)

val fold : (Tag.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Tag.t -> unit) -> t -> unit
val exists : (Tag.t -> bool) -> t -> bool
val for_all : (Tag.t -> bool) -> t -> bool

val to_ints : t -> int array
(** Raw tag ids, sorted ascending — the on-page encoding of the
    [_label] system column (4 bytes per tag in the paper's storage
    model). *)

val of_ints : int array -> t
(** Inverse of {!to_ints}; sorts and deduplicates. *)

val byte_size : t -> int
(** Storage footprint of the label in the paper's cost model: 4 bytes
    per tag (the length byte lives in the tuple header, section 8.3). *)

val hash : t -> int
(** FNV-1a over the tag ids: monomorphic, consistent with {!equal},
    non-negative.  Unlike [Hashtbl.hash] it never ignores elements of
    large labels. *)

val pp : Format.formatter -> t -> unit
(** Prints as [{#1, #2}]. *)

val to_string : t -> string

(** Principals: entities with security interests (users, roles,
    closures).  Each process runs with the authority of a principal;
    each tag is owned by the principal that created it (section 3.2). *)

type t
(** A principal identifier. *)

val of_int : int -> t
(** [of_int i] views raw identifier [i] as a principal; [i] must be
    positive. *)

val to_int : t -> int

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints as [@<id>]. *)

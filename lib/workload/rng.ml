type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let next64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next64 t }

let positive t = Int64.to_int (Int64.shift_right_logical (next64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  positive t mod bound

let int_range t lo hi =
  if hi < lo then invalid_arg "Rng.int_range: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  let u =
    Int64.to_float (Int64.shift_right_logical (next64 t) 11)
    /. 9007199254740992.0 (* 2^53 *)
  in
  u *. bound

let bool t = Int64.logand (next64 t) 1L = 1L

let choice t arr = arr.(int t (Array.length arr))

let weighted t pairs =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 pairs in
  let x = float t total in
  let rec pick acc = function
    | [] -> invalid_arg "Rng.weighted: empty"
    | [ (_, v) ] -> v
    | (w, v) :: rest -> if x < acc +. w then v else pick (acc +. w) rest
  in
  pick 0.0 pairs

let exponential t ~mean =
  let u = Float.max 1e-12 (float t 1.0) in
  -.mean *. log u

let truncated_exponential t ~mean ~max =
  Float.min max (exponential t ~mean)

let nurand t ~a ~c x y =
  (((int_range t 0 a lor int_range t x y) + c) mod (y - x + 1)) + x

let syllables =
  [| "BAR"; "OUGHT"; "ABLE"; "PRI"; "PRES"; "ESE"; "ANTI"; "CALLY"; "ATION"; "EING" |]

let last_name n =
  if n < 0 || n > 999 then invalid_arg "Rng.last_name: out of range";
  syllables.(n / 100) ^ syllables.(n / 10 mod 10) ^ syllables.(n mod 10)

let alnum_string t ~min ~max =
  let len = int_range t min max in
  String.init len (fun _ ->
      let k = int t 36 in
      if k < 10 then Char.chr (Char.code '0' + k)
      else Char.chr (Char.code 'a' + k - 10))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

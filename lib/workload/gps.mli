(** Synthetic GPS traces.

    The paper's CarTel dataset (18 GB, 177 million points over 27
    months) is proprietary; this generator substitutes random-walk
    drives with the same shape: per-car point streams with monotone
    timestamps, plausible speeds, and drive boundaries (engine-off
    gaps), sized to the machine.  See DESIGN.md for the substitution
    argument. *)

type point = {
  car_id : int;
  ts : int;          (** seconds since epoch of the trace *)
  lat : float;
  lng : float;
  speed : float;     (** km/h *)
}

type config = {
  cars : int;
  drives_per_car : int;
  points_per_drive : int;
  start_ts : int;
}

val default_config : config

val generate : Rng.t -> config -> point list
(** All points, ordered by (car, ts).  Drives are separated by long
    gaps so drive segmentation (the CarTel trigger's job) has real work
    to do. *)

val drive_gap_s : int
(** Minimum inter-drive gap; points closer than this belong to the same
    drive. *)

(** The CarTel web workload (paper Figure 3 and section 8.2.1).

    A TPC-W-style closed-loop session generator: simulated clients log
    in as a random user, issue requests drawn from the Figure 3
    distribution with truncated-negative-exponential think times, and
    end their session after a truncated-exponential duration. *)

type request =
  | Get_cars       (** 0.50 — location updates (AJAX) *)
  | Cars           (** 0.30 — show car locations *)
  | Drives         (** 0.08 — show drive log *)
  | Drives_top     (** 0.08 — common driving patterns *)
  | Friends        (** 0.03 — view and set friends *)
  | Edit_account   (** 0.01 — edit personal info *)

val request_mix : (float * request) list
(** Exactly the Figure 3 distribution. *)

val path : request -> string
(** The script name, e.g. ["get_cars.php"]. *)

val all_requests : request list

val sample_request : Rng.t -> request

val think_time_s : Rng.t -> float
(** Truncated negative exponential in [0, 70] s (section 8.2.1). *)

val session_length_s : Rng.t -> float
(** Truncated exponential up to ~60 minutes. *)

type session = {
  user : int;                     (** index into the user population *)
  requests : request list;        (** after the initial login *)
}

val generate_session : Rng.t -> users:int -> session
(** A session whose request count is derived from the session-duration
    and think-time distributions. *)

val empirical_mix : Rng.t -> samples:int -> (request * float) list
(** Observed frequencies over [samples] draws (the Figure 3 bench
    prints these next to the spec). *)

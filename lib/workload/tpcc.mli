(** A TPC-C implementation over the IFDB engine (the DBT-2 analogue
    used for the paper's Figure 6).

    The nine-table schema, NURand key skew, and the five transaction
    types follow the TPC-C specification; as in the paper's DBT-2 runs,
    think time is zero and the warehouse count is fixed per run.  The
    scale is configurable so the in-memory and disk-bound regimes can
    be reproduced against the simulated buffer pool rather than a
    150-warehouse disk array (see DESIGN.md).

    The caller controls labels: populate and run with a session whose
    label carries k tags and every tuple gets exactly those k tags —
    the Figure 6 sweep. *)

module Db = Ifdb_core.Database

type config = {
  warehouses : int;
  districts : int;    (** per warehouse (spec: 10) *)
  customers : int;    (** per district (spec: 3000) *)
  items : int;        (** spec: 100000 *)
}

val tiny : config
(** For unit tests: 1 warehouse, 2 districts, 8 customers, 20 items. *)

val small : config
(** For quick benches: 2 warehouses, 4 districts, 40 customers,
    200 items. *)

val create_schema : Db.session -> unit
val populate : Db.session -> Rng.t -> config -> unit

type counts = {
  mutable new_orders : int;
  mutable payments : int;
  mutable order_statuses : int;
  mutable deliveries : int;
  mutable stock_levels : int;
  mutable rollbacks : int;  (** the spec's 1% intentional new-order aborts *)
}

val zero_counts : unit -> counts

val prepare_statements : Db.session -> unit
(** PREPARE every transaction template on [s] (idempotent: names already
    prepared on the session are skipped).  Called automatically by
    {!run_mix} when [prepared] is set. *)

val run_transaction :
  ?prepared:bool -> Db.session -> Rng.t -> config -> counts -> unit
(** One transaction drawn from the standard mix
    (45/43/4/4/4 new-order/payment/order-status/delivery/stock-level).
    With [~prepared:true] every statement runs through
    {!Db.execute_prepared} (requires {!prepare_statements}); otherwise
    the same templates are rendered to literal SQL and parsed per
    execution.  Both modes issue semantically identical statements. *)

val run_mix : ?prepared:bool -> Db.session -> Rng.t -> config -> txns:int -> counts

val consistency_check : Db.session -> config -> (unit, string) result
(** TPC-C consistency conditions: W_YTD = Σ D_YTD per warehouse, and
    D_NEXT_O_ID − 1 = max(O_ID) = max(NO_O_ID) per district. *)

(** Deterministic pseudorandom streams and the distributions the
    benchmarks need.

    SplitMix64-based; all benchmark randomness flows through here so
    runs are reproducible from a seed. *)

type t

val create : seed:int -> t
val split : t -> t
(** An independent stream derived from the current state. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). *)

val int_range : t -> int -> int -> int
(** Uniform in [lo, hi] (inclusive). *)

val float : t -> float -> float
(** Uniform in [0, bound). *)

val bool : t -> bool

val choice : t -> 'a array -> 'a

val weighted : t -> (float * 'a) list -> 'a
(** Pick by relative weight (weights need not sum to 1). *)

val exponential : t -> mean:float -> float

val truncated_exponential : t -> mean:float -> max:float -> float
(** The TPC-W think-time distribution (paper section 8.2.1): negative
    exponential, truncated at [max]. *)

val nurand : t -> a:int -> c:int -> int -> int -> int
(** TPC-C's non-uniform random NURand(A, x, y) with constant [c]. *)

val last_name : int -> string
(** TPC-C customer last-name syllable encoding of a number in
    [0, 999]. *)

val alnum_string : t -> min:int -> max:int -> string

val shuffle : t -> 'a array -> unit

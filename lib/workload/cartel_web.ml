type request = Get_cars | Cars | Drives | Drives_top | Friends | Edit_account

let request_mix =
  [
    (0.50, Get_cars);
    (0.30, Cars);
    (0.08, Drives);
    (0.08, Drives_top);
    (0.03, Friends);
    (0.01, Edit_account);
  ]

let path = function
  | Get_cars -> "get_cars.php"
  | Cars -> "cars.php"
  | Drives -> "drives.php"
  | Drives_top -> "drives_top.php"
  | Friends -> "friends.php"
  | Edit_account -> "edit_account.php"

let all_requests = [ Get_cars; Cars; Drives; Drives_top; Friends; Edit_account ]

let sample_request rng = Rng.weighted rng request_mix

(* Think times range from 0 to 70 seconds following a truncated
   negative exponential; most are near the low end (section 8.2.1). *)
let think_time_s rng = Rng.truncated_exponential rng ~mean:7.0 ~max:70.0

let session_length_s rng =
  Rng.truncated_exponential rng ~mean:420.0 ~max:3600.0

type session = { user : int; requests : request list }

let generate_session rng ~users =
  let budget = session_length_s rng in
  let rec fill t acc =
    if t >= budget then List.rev acc
    else fill (t +. think_time_s rng) (sample_request rng :: acc)
  in
  (* at least one request per session *)
  let requests =
    match fill 0.0 [] with [] -> [ sample_request rng ] | rs -> rs
  in
  { user = Rng.int rng users; requests }

let empirical_mix rng ~samples =
  let counts = Hashtbl.create 8 in
  for _ = 1 to samples do
    let r = sample_request rng in
    Hashtbl.replace counts r
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts r))
  done;
  List.map
    (fun r ->
      ( r,
        float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts r))
        /. float_of_int samples ))
    all_requests

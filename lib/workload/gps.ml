type point = {
  car_id : int;
  ts : int;
  lat : float;
  lng : float;
  speed : float;
}

type config = {
  cars : int;
  drives_per_car : int;
  points_per_drive : int;
  start_ts : int;
}

let default_config =
  { cars = 20; drives_per_car = 5; points_per_drive = 30; start_ts = 1_600_000_000 }

let drive_gap_s = 1800

(* One GPS fix every ~10 s; a random-walk heading with speeds between
   city crawl and highway. *)
let generate rng config =
  let acc = ref [] in
  for car = 0 to config.cars - 1 do
    (* home position, vaguely Boston-shaped *)
    let lat = ref (42.3 +. Rng.float rng 0.2) in
    let lng = ref (-71.2 +. Rng.float rng 0.2) in
    let ts = ref (config.start_ts + Rng.int rng 3600) in
    for _ = 1 to config.drives_per_car do
      let heading = ref (Rng.float rng (2.0 *. Float.pi)) in
      for _ = 1 to config.points_per_drive do
        let speed = 20.0 +. Rng.float rng 80.0 in
        (* 10 s at [speed] km/h, in degrees (~111 km per degree) *)
        let dist_deg = speed /. 3600.0 *. 10.0 /. 111.0 in
        heading := !heading +. (Rng.float rng 0.6 -. 0.3);
        lat := !lat +. (dist_deg *. cos !heading);
        lng := !lng +. (dist_deg *. sin !heading);
        ts := !ts + 10;
        acc := { car_id = car; ts = !ts; lat = !lat; lng = !lng; speed } :: !acc
      done;
      (* engine off: a gap well beyond the drive-segmentation horizon *)
      ts := !ts + drive_gap_s + Rng.int rng 7200
    done
  done;
  List.sort
    (fun a b ->
      match Int.compare a.car_id b.car_id with
      | 0 -> Int.compare a.ts b.ts
      | c -> c)
    !acc

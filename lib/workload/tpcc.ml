module Db = Ifdb_core.Database
module Errors = Ifdb_core.Errors
module Value = Ifdb_rel.Value
module Tuple = Ifdb_rel.Tuple

type config = {
  warehouses : int;
  districts : int;
  customers : int;
  items : int;
}

let tiny = { warehouses = 1; districts = 2; customers = 8; items = 20 }
let small = { warehouses = 2; districts = 4; customers = 40; items = 200 }

let sqlf s fmt = Format.kasprintf (fun q -> ignore (Db.exec s q)) fmt

(* ------------------------------------------------------------------ *)
(* Statement templates                                                 *)
(* ------------------------------------------------------------------ *)

(* Every per-transaction statement exists once, as a [$n] template.  In
   prepared mode the templates are PREPAREd on the session and each call
   binds values through {!Db.execute_prepared}; in direct mode the
   values are rendered into the text (the historical path).  Both modes
   issue byte-equivalent SQL semantics — the A/B is exactly the
   parse/analyze/plan amortization. *)
let templates =
  [
    (* New-Order *)
    ("no_get_district",
     "SELECT d_next_o_id, d_tax FROM district WHERE d_w_id = $1 AND d_id = $2");
    ("no_set_district",
     "UPDATE district SET d_next_o_id = $1 WHERE d_w_id = $2 AND d_id = $3");
    ("no_ins_order",
     "INSERT INTO orders VALUES ($1, $2, $3, $4, 1, NULL, $5, 1)");
    ("no_ins_new_order", "INSERT INTO new_order VALUES ($1, $2, $3)");
    ("no_get_item", "SELECT i_price FROM item WHERE i_id = $1");
    ("no_ins_line",
     "INSERT INTO order_line VALUES ($1, $2, $3, $4, $5, $6, 0, $7, $8, \
      'dist-info-dist-info-dist')");
    ("no_upd_stock",
     "UPDATE stock SET s_quantity = CASE WHEN s_quantity > $1 THEN \
      s_quantity - $2 ELSE s_quantity - $2 + 91 END, s_ytd = s_ytd + $2, \
      s_order_cnt = s_order_cnt + 1 WHERE s_w_id = $3 AND s_i_id = $4");
    (* Payment *)
    ("pay_upd_warehouse",
     "UPDATE warehouse SET w_ytd = w_ytd + $1 WHERE w_id = $2");
    ("pay_upd_district",
     "UPDATE district SET d_ytd = d_ytd + $1 WHERE d_w_id = $2 AND d_id = $3");
    ("pay_cust_by_last",
     "SELECT c_id FROM customer WHERE c_w_id = $1 AND c_d_id = $2 AND c_last \
      = $3 ORDER BY c_first");
    ("pay_upd_customer",
     "UPDATE customer SET c_balance = c_balance - $1, c_ytd_payment = \
      c_ytd_payment + $1, c_payment_cnt = c_payment_cnt + 1 WHERE c_w_id = \
      $2 AND c_d_id = $3 AND c_id = $4");
    ("pay_ins_history",
     "INSERT INTO history VALUES ($1, $2, $3, $4, $5, 2, $6, 'payment')");
    (* Order-Status *)
    ("os_last_order",
     "SELECT o_id, o_carrier_id FROM orders WHERE o_w_id = $1 AND o_d_id = \
      $2 AND o_c_id = $3 ORDER BY o_id DESC LIMIT 1");
    ("os_lines",
     "SELECT ol_i_id, ol_quantity, ol_amount FROM order_line WHERE ol_w_id = \
      $1 AND ol_d_id = $2 AND ol_o_id = $3");
    (* Delivery *)
    ("dl_oldest",
     "SELECT MIN(no_o_id) FROM new_order WHERE no_w_id = $1 AND no_d_id = $2");
    ("dl_del_new_order",
     "DELETE FROM new_order WHERE no_w_id = $1 AND no_d_id = $2 AND no_o_id \
      = $3");
    ("dl_upd_order",
     "UPDATE orders SET o_carrier_id = $1 WHERE o_w_id = $2 AND o_d_id = $3 \
      AND o_id = $4");
    ("dl_sum_lines",
     "SELECT SUM(ol_amount), MIN(o_c_id) FROM order_line, orders WHERE \
      ol_w_id = $1 AND ol_d_id = $2 AND ol_o_id = $3 AND o_w_id = ol_w_id \
      AND o_d_id = ol_d_id AND o_id = ol_o_id");
    ("dl_upd_customer",
     "UPDATE customer SET c_balance = c_balance + $1, c_delivery_cnt = \
      c_delivery_cnt + 1 WHERE c_w_id = $2 AND c_d_id = $3 AND c_id = $4");
    (* Stock-Level *)
    ("sl_next_oid",
     "SELECT d_next_o_id FROM district WHERE d_w_id = $1 AND d_id = $2");
    ("sl_count",
     "SELECT COUNT(DISTINCT ol_i_id) FROM order_line, stock WHERE ol_w_id = \
      $1 AND ol_d_id = $2 AND ol_o_id >= $3 AND s_w_id = $4 AND s_i_id = \
      ol_i_id AND s_quantity < $5");
  ]

let template name = List.assoc name templates

(* Render a value as a SQL literal for direct mode. *)
let lit = function
  | Value.Int i -> string_of_int i
  | Value.Float f -> Printf.sprintf "%f" f
  | Value.Text t ->
      "'" ^ String.concat "''" (String.split_on_char '\'' t) ^ "'"
  | Value.Null -> "NULL"
  | v -> Value.to_string v

(* Substitute [$n] placeholders with rendered literals. *)
let subst text args =
  let n = String.length text in
  let buf = Buffer.create (n + 32) in
  let is_digit c = c >= '0' && c <= '9' in
  let i = ref 0 in
  while !i < n do
    if text.[!i] = '$' && !i + 1 < n && is_digit text.[!i + 1] then begin
      incr i;
      let start = !i in
      while !i < n && is_digit text.[!i] do
        incr i
      done;
      let k = int_of_string (String.sub text start (!i - start)) in
      Buffer.add_string buf (lit (List.nth args (k - 1)))
    end
    else begin
      Buffer.add_char buf text.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let prepare_statements s =
  let already =
    List.map (fun (pi : Db.prepared_info) -> pi.Db.pi_name)
      (Db.prepared_statements s)
  in
  List.iter
    (fun (name, sql) ->
      if not (List.mem name already) then
        ignore (Db.exec s (Printf.sprintf "PREPARE %s AS %s" name sql)))
    templates

let run_stmt ~prepared s name args =
  if prepared then Db.execute_prepared s name args
  else Db.exec s (subst (template name) args)

let stmt_unit ~prepared s name args = ignore (run_stmt ~prepared s name args)

let stmt_rows ~prepared s name args =
  match run_stmt ~prepared s name args with
  | Db.Rows { tuples; _ } -> tuples
  | Db.Affected _ | Db.Done _ -> Errors.sql "statement %s returned no rows" name

let stmt_row ~prepared s name args =
  match stmt_rows ~prepared s name args with
  | row :: _ -> row
  | [] -> Errors.sql "no rows returned by %s" name

let create_schema s =
  List.iter
    (fun q -> ignore (Db.exec s q))
    [
      "CREATE TABLE warehouse (w_id INT PRIMARY KEY, w_name TEXT, w_street \
       TEXT, w_city TEXT, w_state TEXT, w_zip TEXT, w_tax FLOAT, w_ytd FLOAT)";
      "CREATE TABLE district (d_w_id INT, d_id INT, d_name TEXT, d_street \
       TEXT, d_city TEXT, d_state TEXT, d_zip TEXT, d_tax FLOAT, d_ytd FLOAT, \
       d_next_o_id INT, PRIMARY KEY (d_w_id, d_id), FOREIGN KEY (d_w_id) \
       REFERENCES warehouse (w_id))";
      "CREATE TABLE customer (c_w_id INT, c_d_id INT, c_id INT, c_first TEXT, \
       c_middle TEXT, c_last TEXT, c_street TEXT, c_city TEXT, c_state TEXT, \
       c_zip TEXT, c_phone TEXT, c_since INT, c_credit TEXT, c_credit_lim \
       FLOAT, c_discount FLOAT, c_balance FLOAT, c_ytd_payment FLOAT, \
       c_payment_cnt INT, c_delivery_cnt INT, c_data TEXT, PRIMARY KEY \
       (c_w_id, c_d_id, c_id))";
      "CREATE TABLE history (h_c_id INT, h_c_d_id INT, h_c_w_id INT, h_d_id \
       INT, h_w_id INT, h_date INT, h_amount FLOAT, h_data TEXT)";
      "CREATE TABLE item (i_id INT PRIMARY KEY, i_im_id INT, i_name TEXT, \
       i_price FLOAT, i_data TEXT)";
      "CREATE TABLE stock (s_w_id INT, s_i_id INT, s_quantity INT, s_dist \
       TEXT, s_ytd INT, s_order_cnt INT, s_remote_cnt INT, s_data TEXT, \
       PRIMARY KEY (s_w_id, s_i_id))";
      "CREATE TABLE orders (o_w_id INT, o_d_id INT, o_id INT, o_c_id INT, \
       o_entry_d INT, o_carrier_id INT, o_ol_cnt INT, o_all_local INT, \
       PRIMARY KEY (o_w_id, o_d_id, o_id))";
      "CREATE TABLE new_order (no_w_id INT, no_d_id INT, no_o_id INT, PRIMARY \
       KEY (no_w_id, no_d_id, no_o_id))";
      "CREATE TABLE order_line (ol_w_id INT, ol_d_id INT, ol_o_id INT, \
       ol_number INT, ol_i_id INT, ol_supply_w_id INT, ol_delivery_d INT, \
       ol_quantity INT, ol_amount FLOAT, ol_dist_info TEXT, PRIMARY KEY \
       (ol_w_id, ol_d_id, ol_o_id, ol_number), FOREIGN KEY (ol_i_id) \
       REFERENCES item (i_id))";
      (* secondary indexes the transactions rely on *)
      "CREATE INDEX customer_last ON customer (c_w_id, c_d_id, c_last)";
      "CREATE INDEX orders_customer ON orders (o_w_id, o_d_id, o_c_id)";
    ]

let populate s rng config =
  ignore (Db.exec s "BEGIN");
  for i = 1 to config.items do
    sqlf s "INSERT INTO item VALUES (%d, %d, 'item-%s', %f, '%s')" i
      (Rng.int_range rng 1 10_000)
      (Rng.alnum_string rng ~min:6 ~max:14)
      (1.0 +. Rng.float rng 99.0)
      (Rng.alnum_string rng ~min:26 ~max:50)
  done;
  for w = 1 to config.warehouses do
    sqlf s "INSERT INTO warehouse VALUES (%d, 'w%d', 'st', 'city', 'MA', \
            '02139', %f, 300000.0)"
      w w (Rng.float rng 0.2);
    for i = 1 to config.items do
      sqlf s
        "INSERT INTO stock VALUES (%d, %d, %d, '%s', 0, 0, 0, '%s')" w i
        (Rng.int_range rng 10 100)
        (Rng.alnum_string rng ~min:24 ~max:24)
        (Rng.alnum_string rng ~min:26 ~max:50)
    done;
    for d = 1 to config.districts do
      (* spec: W_YTD = Σ D_YTD at load; with a scaled district count the
         per-district share keeps the consistency condition true *)
      sqlf s
        "INSERT INTO district VALUES (%d, %d, 'd%d', 'st', 'city', 'MA', \
         '02139', %f, %f, %d)"
        w d d (Rng.float rng 0.2)
        (300000.0 /. float_of_int config.districts)
        (config.customers + 1);
      for c = 1 to config.customers do
        let last = Rng.last_name (Rng.int rng (min 1000 (config.customers * 3))) in
        sqlf s
          "INSERT INTO customer VALUES (%d, %d, %d, '%s', 'OE', '%s', 'st', \
           'city', 'MA', '02139', '555', 0, '%s', 50000.0, %f, -10.0, 10.0, \
           1, 0, '%s')"
          w d c
          (Rng.alnum_string rng ~min:8 ~max:16)
          last
          (if Rng.int rng 10 = 0 then "BC" else "GC")
          (Rng.float rng 0.5)
          (Rng.alnum_string rng ~min:40 ~max:80);
        (* one delivered order per customer, plus its lines *)
        let o_id = c in
        let ol_cnt = Rng.int_range rng 5 15 in
        sqlf s "INSERT INTO orders VALUES (%d, %d, %d, %d, 0, %d, %d, 1)" w d
          o_id c (Rng.int_range rng 1 10) ol_cnt;
        for ol = 1 to ol_cnt do
          sqlf s
            "INSERT INTO order_line VALUES (%d, %d, %d, %d, %d, %d, 0, 5, \
             %f, '%s')"
            w d o_id ol
            (Rng.int_range rng 1 config.items)
            w
            (Rng.float rng 9999.0)
            (Rng.alnum_string rng ~min:24 ~max:24)
        done
      done
    done
  done;
  ignore (Db.exec s "COMMIT")

type counts = {
  mutable new_orders : int;
  mutable payments : int;
  mutable order_statuses : int;
  mutable deliveries : int;
  mutable stock_levels : int;
  mutable rollbacks : int;
}

let zero_counts () =
  {
    new_orders = 0;
    payments = 0;
    order_statuses = 0;
    deliveries = 0;
    stock_levels = 0;
    rollbacks = 0;
  }

let get_int row i = Value.to_int (Tuple.get row i)
let get_float row i = Value.to_float (Tuple.get row i)

(* NURand constants per the TPC-C spec (the C-value is fixed per run,
   which the fixed RNG seed provides). *)
let nurand_item rng items =
  1 + (Rng.nurand rng ~a:8191 ~c:7911 0 (items - 1) mod items)

let nurand_customer rng customers =
  1 + (Rng.nurand rng ~a:1023 ~c:259 0 (customers - 1) mod customers)

let pick_wh rng config = Rng.int_range rng 1 config.warehouses
let pick_district rng config = Rng.int_range rng 1 config.districts

(* --- New-Order ----------------------------------------------------- *)

let new_order ~prepared s rng config counts =
  let w = pick_wh rng config in
  let d = pick_district rng config in
  let c = nurand_customer rng config.customers in
  let ol_cnt = Rng.int_range rng 5 15 in
  (* 1% of new-orders use an invalid item and must roll back *)
  let break_at =
    if Rng.int rng 100 = 0 then Some (Rng.int rng ol_cnt) else None
  in
  ignore (Db.exec s "BEGIN");
  match
    let row =
      stmt_row ~prepared s "no_get_district" [ Value.Int w; Value.Int d ]
    in
    let o_id = get_int row 0 in
    stmt_unit ~prepared s "no_set_district"
      [ Value.Int (o_id + 1); Value.Int w; Value.Int d ];
    stmt_unit ~prepared s "no_ins_order"
      [ Value.Int w; Value.Int d; Value.Int o_id; Value.Int c;
        Value.Int ol_cnt ];
    stmt_unit ~prepared s "no_ins_new_order"
      [ Value.Int w; Value.Int d; Value.Int o_id ];
    for ol = 1 to ol_cnt do
      let item =
        if break_at = Some (ol - 1) then config.items + 999_999
        else nurand_item rng config.items
      in
      let qty = Rng.int_range rng 1 10 in
      let price =
        if break_at = Some (ol - 1) then 1.0
        else
          get_float (stmt_row ~prepared s "no_get_item" [ Value.Int item ]) 0
      in
      (* the invalid item makes this INSERT violate the FK and abort *)
      stmt_unit ~prepared s "no_ins_line"
        [ Value.Int w; Value.Int d; Value.Int o_id; Value.Int ol;
          Value.Int item; Value.Int w; Value.Int qty;
          Value.Float (float_of_int qty *. price) ];
      stmt_unit ~prepared s "no_upd_stock"
        [ Value.Int (qty + 10); Value.Int qty; Value.Int w; Value.Int item ]
    done;
    ignore (Db.exec s "COMMIT")
  with
  | () -> counts.new_orders <- counts.new_orders + 1
  | exception Errors.Constraint_violation _ ->
      (* intentional rollback path (bad item id) *)
      counts.rollbacks <- counts.rollbacks + 1
  | exception Errors.Sql_error _ when break_at <> None ->
      counts.rollbacks <- counts.rollbacks + 1

(* --- Payment ------------------------------------------------------- *)

let payment ~prepared s rng config counts =
  let w = pick_wh rng config in
  let d = pick_district rng config in
  let amount = 1.0 +. Rng.float rng 4999.0 in
  ignore (Db.exec s "BEGIN");
  stmt_unit ~prepared s "pay_upd_warehouse" [ Value.Float amount; Value.Int w ];
  stmt_unit ~prepared s "pay_upd_district"
    [ Value.Float amount; Value.Int w; Value.Int d ];
  (* 60% select the customer by last name, 40% by id *)
  let c_id =
    if Rng.int rng 100 < 60 then begin
      let last =
        Rng.last_name (Rng.int rng (min 1000 (config.customers * 3)))
      in
      let rows =
        stmt_rows ~prepared s "pay_cust_by_last"
          [ Value.Int w; Value.Int d; Value.Text last ]
      in
      match rows with
      | [] -> nurand_customer rng config.customers
      | rows -> get_int (List.nth rows (List.length rows / 2)) 0
    end
    else nurand_customer rng config.customers
  in
  stmt_unit ~prepared s "pay_upd_customer"
    [ Value.Float amount; Value.Int w; Value.Int d; Value.Int c_id ];
  stmt_unit ~prepared s "pay_ins_history"
    [ Value.Int c_id; Value.Int d; Value.Int w; Value.Int d; Value.Int w;
      Value.Float amount ];
  ignore (Db.exec s "COMMIT");
  counts.payments <- counts.payments + 1

(* --- Order-Status -------------------------------------------------- *)

let order_status ~prepared s rng config counts =
  let w = pick_wh rng config in
  let d = pick_district rng config in
  let c = nurand_customer rng config.customers in
  ignore (Db.exec s "BEGIN");
  let last_order =
    stmt_rows ~prepared s "os_last_order"
      [ Value.Int w; Value.Int d; Value.Int c ]
  in
  (match last_order with
  | [] -> ()
  | row :: _ ->
      let o_id = get_int row 0 in
      ignore
        (stmt_rows ~prepared s "os_lines"
           [ Value.Int w; Value.Int d; Value.Int o_id ]));
  ignore (Db.exec s "COMMIT");
  counts.order_statuses <- counts.order_statuses + 1

(* --- Delivery ------------------------------------------------------ *)

let delivery ~prepared s rng config counts =
  let w = pick_wh rng config in
  let carrier = Rng.int_range rng 1 10 in
  ignore (Db.exec s "BEGIN");
  for d = 1 to config.districts do
    let oldest = stmt_rows ~prepared s "dl_oldest" [ Value.Int w; Value.Int d ] in
    match oldest with
    | row :: _ when not (Value.is_null (Tuple.get row 0)) ->
        let o_id = get_int row 0 in
        stmt_unit ~prepared s "dl_del_new_order"
          [ Value.Int w; Value.Int d; Value.Int o_id ];
        stmt_unit ~prepared s "dl_upd_order"
          [ Value.Int carrier; Value.Int w; Value.Int d; Value.Int o_id ];
        let sum_row =
          stmt_row ~prepared s "dl_sum_lines"
            [ Value.Int w; Value.Int d; Value.Int o_id ]
        in
        let total = get_float sum_row 0 in
        let c_id = get_int sum_row 1 in
        stmt_unit ~prepared s "dl_upd_customer"
          [ Value.Float total; Value.Int w; Value.Int d; Value.Int c_id ]
    | _ -> ()
  done;
  ignore (Db.exec s "COMMIT");
  counts.deliveries <- counts.deliveries + 1

(* --- Stock-Level --------------------------------------------------- *)

let stock_level ~prepared s rng config counts =
  let w = pick_wh rng config in
  let d = pick_district rng config in
  let threshold = Rng.int_range rng 10 20 in
  ignore (Db.exec s "BEGIN");
  let next_row = stmt_row ~prepared s "sl_next_oid" [ Value.Int w; Value.Int d ] in
  let next_o = get_int next_row 0 in
  (* the DBT-2 query: recent order lines joined to low stock *)
  ignore
    (stmt_rows ~prepared s "sl_count"
       [ Value.Int w; Value.Int d; Value.Int (max 1 (next_o - 20));
         Value.Int w; Value.Int threshold ]);
  ignore (Db.exec s "COMMIT");
  counts.stock_levels <- counts.stock_levels + 1

(* --- Mix ----------------------------------------------------------- *)

let run_transaction ?(prepared = false) s rng config counts =
  (* the standard 45/43/4/4/4 mix *)
  let k = Rng.int rng 100 in
  if k < 45 then new_order ~prepared s rng config counts
  else if k < 88 then payment ~prepared s rng config counts
  else if k < 92 then order_status ~prepared s rng config counts
  else if k < 96 then delivery ~prepared s rng config counts
  else stock_level ~prepared s rng config counts

let run_mix ?(prepared = false) s rng config ~txns =
  let counts = zero_counts () in
  if prepared then prepare_statements s;
  for _ = 1 to txns do
    run_transaction ~prepared s rng config counts
  done;
  counts

let consistency_check s config =
  let check_warehouse w =
    let wy =
      get_float
        (Db.query_one s
           (Printf.sprintf "SELECT w_ytd FROM warehouse WHERE w_id = %d" w))
        0
    in
    let dy =
      get_float
        (Db.query_one s
           (Printf.sprintf "SELECT SUM(d_ytd) FROM district WHERE d_w_id = %d" w))
        0
    in
    if Float.abs (wy -. dy) > 0.01 then
      Error (Printf.sprintf "warehouse %d: w_ytd %.2f <> sum(d_ytd) %.2f" w wy dy)
    else Ok ()
  in
  let check_district w d =
    let next =
      get_int
        (Db.query_one s
           (Printf.sprintf
              "SELECT d_next_o_id FROM district WHERE d_w_id = %d AND d_id = %d"
              w d))
        0
    in
    let max_o =
      Db.query_one s
        (Printf.sprintf
           "SELECT MAX(o_id) FROM orders WHERE o_w_id = %d AND o_d_id = %d" w d)
    in
    let max_o =
      if Value.is_null (Tuple.get max_o 0) then 0 else get_int max_o 0
    in
    if next - 1 <> max_o then
      Error
        (Printf.sprintf "district (%d,%d): d_next_o_id-1 = %d <> max(o_id) = %d"
           w d (next - 1) max_o)
    else Ok ()
  in
  let rec all = function
    | [] -> Ok ()
    | check :: rest -> ( match check () with Ok () -> all rest | e -> e)
  in
  let checks = ref [] in
  for w = 1 to config.warehouses do
    checks := (fun () -> check_warehouse w) :: !checks;
    for d = 1 to config.districts do
      checks := (fun () -> check_district w d) :: !checks
    done
  done;
  all !checks

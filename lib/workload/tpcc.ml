module Db = Ifdb_core.Database
module Errors = Ifdb_core.Errors
module Value = Ifdb_rel.Value
module Tuple = Ifdb_rel.Tuple

type config = {
  warehouses : int;
  districts : int;
  customers : int;
  items : int;
}

let tiny = { warehouses = 1; districts = 2; customers = 8; items = 20 }
let small = { warehouses = 2; districts = 4; customers = 40; items = 200 }

let sqlf s fmt = Format.kasprintf (fun q -> ignore (Db.exec s q)) fmt

let create_schema s =
  List.iter
    (fun q -> ignore (Db.exec s q))
    [
      "CREATE TABLE warehouse (w_id INT PRIMARY KEY, w_name TEXT, w_street \
       TEXT, w_city TEXT, w_state TEXT, w_zip TEXT, w_tax FLOAT, w_ytd FLOAT)";
      "CREATE TABLE district (d_w_id INT, d_id INT, d_name TEXT, d_street \
       TEXT, d_city TEXT, d_state TEXT, d_zip TEXT, d_tax FLOAT, d_ytd FLOAT, \
       d_next_o_id INT, PRIMARY KEY (d_w_id, d_id), FOREIGN KEY (d_w_id) \
       REFERENCES warehouse (w_id))";
      "CREATE TABLE customer (c_w_id INT, c_d_id INT, c_id INT, c_first TEXT, \
       c_middle TEXT, c_last TEXT, c_street TEXT, c_city TEXT, c_state TEXT, \
       c_zip TEXT, c_phone TEXT, c_since INT, c_credit TEXT, c_credit_lim \
       FLOAT, c_discount FLOAT, c_balance FLOAT, c_ytd_payment FLOAT, \
       c_payment_cnt INT, c_delivery_cnt INT, c_data TEXT, PRIMARY KEY \
       (c_w_id, c_d_id, c_id))";
      "CREATE TABLE history (h_c_id INT, h_c_d_id INT, h_c_w_id INT, h_d_id \
       INT, h_w_id INT, h_date INT, h_amount FLOAT, h_data TEXT)";
      "CREATE TABLE item (i_id INT PRIMARY KEY, i_im_id INT, i_name TEXT, \
       i_price FLOAT, i_data TEXT)";
      "CREATE TABLE stock (s_w_id INT, s_i_id INT, s_quantity INT, s_dist \
       TEXT, s_ytd INT, s_order_cnt INT, s_remote_cnt INT, s_data TEXT, \
       PRIMARY KEY (s_w_id, s_i_id))";
      "CREATE TABLE orders (o_w_id INT, o_d_id INT, o_id INT, o_c_id INT, \
       o_entry_d INT, o_carrier_id INT, o_ol_cnt INT, o_all_local INT, \
       PRIMARY KEY (o_w_id, o_d_id, o_id))";
      "CREATE TABLE new_order (no_w_id INT, no_d_id INT, no_o_id INT, PRIMARY \
       KEY (no_w_id, no_d_id, no_o_id))";
      "CREATE TABLE order_line (ol_w_id INT, ol_d_id INT, ol_o_id INT, \
       ol_number INT, ol_i_id INT, ol_supply_w_id INT, ol_delivery_d INT, \
       ol_quantity INT, ol_amount FLOAT, ol_dist_info TEXT, PRIMARY KEY \
       (ol_w_id, ol_d_id, ol_o_id, ol_number), FOREIGN KEY (ol_i_id) \
       REFERENCES item (i_id))";
      (* secondary indexes the transactions rely on *)
      "CREATE INDEX customer_last ON customer (c_w_id, c_d_id, c_last)";
      "CREATE INDEX orders_customer ON orders (o_w_id, o_d_id, o_c_id)";
    ]

let populate s rng config =
  ignore (Db.exec s "BEGIN");
  for i = 1 to config.items do
    sqlf s "INSERT INTO item VALUES (%d, %d, 'item-%s', %f, '%s')" i
      (Rng.int_range rng 1 10_000)
      (Rng.alnum_string rng ~min:6 ~max:14)
      (1.0 +. Rng.float rng 99.0)
      (Rng.alnum_string rng ~min:26 ~max:50)
  done;
  for w = 1 to config.warehouses do
    sqlf s "INSERT INTO warehouse VALUES (%d, 'w%d', 'st', 'city', 'MA', \
            '02139', %f, 300000.0)"
      w w (Rng.float rng 0.2);
    for i = 1 to config.items do
      sqlf s
        "INSERT INTO stock VALUES (%d, %d, %d, '%s', 0, 0, 0, '%s')" w i
        (Rng.int_range rng 10 100)
        (Rng.alnum_string rng ~min:24 ~max:24)
        (Rng.alnum_string rng ~min:26 ~max:50)
    done;
    for d = 1 to config.districts do
      (* spec: W_YTD = Σ D_YTD at load; with a scaled district count the
         per-district share keeps the consistency condition true *)
      sqlf s
        "INSERT INTO district VALUES (%d, %d, 'd%d', 'st', 'city', 'MA', \
         '02139', %f, %f, %d)"
        w d d (Rng.float rng 0.2)
        (300000.0 /. float_of_int config.districts)
        (config.customers + 1);
      for c = 1 to config.customers do
        let last = Rng.last_name (Rng.int rng (min 1000 (config.customers * 3))) in
        sqlf s
          "INSERT INTO customer VALUES (%d, %d, %d, '%s', 'OE', '%s', 'st', \
           'city', 'MA', '02139', '555', 0, '%s', 50000.0, %f, -10.0, 10.0, \
           1, 0, '%s')"
          w d c
          (Rng.alnum_string rng ~min:8 ~max:16)
          last
          (if Rng.int rng 10 = 0 then "BC" else "GC")
          (Rng.float rng 0.5)
          (Rng.alnum_string rng ~min:40 ~max:80);
        (* one delivered order per customer, plus its lines *)
        let o_id = c in
        let ol_cnt = Rng.int_range rng 5 15 in
        sqlf s "INSERT INTO orders VALUES (%d, %d, %d, %d, 0, %d, %d, 1)" w d
          o_id c (Rng.int_range rng 1 10) ol_cnt;
        for ol = 1 to ol_cnt do
          sqlf s
            "INSERT INTO order_line VALUES (%d, %d, %d, %d, %d, %d, 0, 5, \
             %f, '%s')"
            w d o_id ol
            (Rng.int_range rng 1 config.items)
            w
            (Rng.float rng 9999.0)
            (Rng.alnum_string rng ~min:24 ~max:24)
        done
      done
    done
  done;
  ignore (Db.exec s "COMMIT")

type counts = {
  mutable new_orders : int;
  mutable payments : int;
  mutable order_statuses : int;
  mutable deliveries : int;
  mutable stock_levels : int;
  mutable rollbacks : int;
}

let zero_counts () =
  {
    new_orders = 0;
    payments = 0;
    order_statuses = 0;
    deliveries = 0;
    stock_levels = 0;
    rollbacks = 0;
  }

let get_int row i = Value.to_int (Tuple.get row i)
let get_float row i = Value.to_float (Tuple.get row i)

(* NURand constants per the TPC-C spec (the C-value is fixed per run,
   which the fixed RNG seed provides). *)
let nurand_item rng items =
  1 + (Rng.nurand rng ~a:8191 ~c:7911 0 (items - 1) mod items)

let nurand_customer rng customers =
  1 + (Rng.nurand rng ~a:1023 ~c:259 0 (customers - 1) mod customers)

let pick_wh rng config = Rng.int_range rng 1 config.warehouses
let pick_district rng config = Rng.int_range rng 1 config.districts

(* --- New-Order ----------------------------------------------------- *)

let new_order s rng config counts =
  let w = pick_wh rng config in
  let d = pick_district rng config in
  let c = nurand_customer rng config.customers in
  let ol_cnt = Rng.int_range rng 5 15 in
  (* 1% of new-orders use an invalid item and must roll back *)
  let break_at =
    if Rng.int rng 100 = 0 then Some (Rng.int rng ol_cnt) else None
  in
  ignore (Db.exec s "BEGIN");
  match
    let row =
      Db.query_one s
        (Printf.sprintf
           "SELECT d_next_o_id, d_tax FROM district WHERE d_w_id = %d AND \
            d_id = %d"
           w d)
    in
    let o_id = get_int row 0 in
    sqlf s
      "UPDATE district SET d_next_o_id = %d WHERE d_w_id = %d AND d_id = %d"
      (o_id + 1) w d;
    sqlf s "INSERT INTO orders VALUES (%d, %d, %d, %d, 1, NULL, %d, 1)" w d
      o_id c ol_cnt;
    sqlf s "INSERT INTO new_order VALUES (%d, %d, %d)" w d o_id;
    for ol = 1 to ol_cnt do
      let item =
        if break_at = Some (ol - 1) then config.items + 999_999
        else nurand_item rng config.items
      in
      let qty = Rng.int_range rng 1 10 in
      let price =
        if break_at = Some (ol - 1) then 1.0
        else
          get_float
            (Db.query_one s
               (Printf.sprintf "SELECT i_price FROM item WHERE i_id = %d" item))
            0
      in
      (* the invalid item makes this INSERT violate the FK and abort *)
      sqlf s
        "INSERT INTO order_line VALUES (%d, %d, %d, %d, %d, %d, 0, %d, %f, \
         'dist-info-dist-info-dist')"
        w d o_id ol item w qty
        (float_of_int qty *. price);
      sqlf s
        "UPDATE stock SET s_quantity = CASE WHEN s_quantity > %d THEN \
         s_quantity - %d ELSE s_quantity - %d + 91 END, s_ytd = s_ytd + %d, \
         s_order_cnt = s_order_cnt + 1 WHERE s_w_id = %d AND s_i_id = %d"
        (qty + 10) qty qty qty w item
    done;
    ignore (Db.exec s "COMMIT")
  with
  | () -> counts.new_orders <- counts.new_orders + 1
  | exception Errors.Constraint_violation _ ->
      (* intentional rollback path (bad item id) *)
      counts.rollbacks <- counts.rollbacks + 1
  | exception Errors.Sql_error _ when break_at <> None ->
      counts.rollbacks <- counts.rollbacks + 1

(* --- Payment ------------------------------------------------------- *)

let payment s rng config counts =
  let w = pick_wh rng config in
  let d = pick_district rng config in
  let amount = 1.0 +. Rng.float rng 4999.0 in
  ignore (Db.exec s "BEGIN");
  sqlf s "UPDATE warehouse SET w_ytd = w_ytd + %f WHERE w_id = %d" amount w;
  sqlf s "UPDATE district SET d_ytd = d_ytd + %f WHERE d_w_id = %d AND d_id = %d"
    amount w d;
  (* 60% select the customer by last name, 40% by id *)
  let c_id =
    if Rng.int rng 100 < 60 then begin
      let last =
        Rng.last_name (Rng.int rng (min 1000 (config.customers * 3)))
      in
      let rows =
        Db.query s
          (Printf.sprintf
             "SELECT c_id FROM customer WHERE c_w_id = %d AND c_d_id = %d AND \
              c_last = '%s' ORDER BY c_first"
             w d last)
      in
      match rows with
      | [] -> nurand_customer rng config.customers
      | rows -> get_int (List.nth rows (List.length rows / 2)) 0
    end
    else nurand_customer rng config.customers
  in
  sqlf s
    "UPDATE customer SET c_balance = c_balance - %f, c_ytd_payment = \
     c_ytd_payment + %f, c_payment_cnt = c_payment_cnt + 1 WHERE c_w_id = %d \
     AND c_d_id = %d AND c_id = %d"
    amount amount w d c_id;
  sqlf s "INSERT INTO history VALUES (%d, %d, %d, %d, %d, 2, %f, 'payment')"
    c_id d w d w amount;
  ignore (Db.exec s "COMMIT");
  counts.payments <- counts.payments + 1

(* --- Order-Status -------------------------------------------------- *)

let order_status s rng config counts =
  let w = pick_wh rng config in
  let d = pick_district rng config in
  let c = nurand_customer rng config.customers in
  ignore (Db.exec s "BEGIN");
  let last_order =
    Db.query s
      (Printf.sprintf
         "SELECT o_id, o_carrier_id FROM orders WHERE o_w_id = %d AND o_d_id \
          = %d AND o_c_id = %d ORDER BY o_id DESC LIMIT 1"
         w d c)
  in
  (match last_order with
  | [] -> ()
  | row :: _ ->
      let o_id = get_int row 0 in
      ignore
        (Db.query s
           (Printf.sprintf
              "SELECT ol_i_id, ol_quantity, ol_amount FROM order_line WHERE \
               ol_w_id = %d AND ol_d_id = %d AND ol_o_id = %d"
              w d o_id)));
  ignore (Db.exec s "COMMIT");
  counts.order_statuses <- counts.order_statuses + 1

(* --- Delivery ------------------------------------------------------ *)

let delivery s rng config counts =
  let w = pick_wh rng config in
  let carrier = Rng.int_range rng 1 10 in
  ignore (Db.exec s "BEGIN");
  for d = 1 to config.districts do
    let oldest =
      Db.query s
        (Printf.sprintf
           "SELECT MIN(no_o_id) FROM new_order WHERE no_w_id = %d AND no_d_id \
            = %d"
           w d)
    in
    match oldest with
    | row :: _ when not (Value.is_null (Tuple.get row 0)) ->
        let o_id = get_int row 0 in
        sqlf s
          "DELETE FROM new_order WHERE no_w_id = %d AND no_d_id = %d AND \
           no_o_id = %d"
          w d o_id;
        sqlf s
          "UPDATE orders SET o_carrier_id = %d WHERE o_w_id = %d AND o_d_id = \
           %d AND o_id = %d"
          carrier w d o_id;
        let sum_row =
          Db.query_one s
            (Printf.sprintf
               "SELECT SUM(ol_amount), MIN(o_c_id) FROM order_line, orders \
                WHERE ol_w_id = %d AND ol_d_id = %d AND ol_o_id = %d AND \
                o_w_id = ol_w_id AND o_d_id = ol_d_id AND o_id = ol_o_id"
               w d o_id)
        in
        let total = get_float sum_row 0 in
        let c_id = get_int sum_row 1 in
        sqlf s
          "UPDATE customer SET c_balance = c_balance + %f, c_delivery_cnt = \
           c_delivery_cnt + 1 WHERE c_w_id = %d AND c_d_id = %d AND c_id = %d"
          total w d c_id
    | _ -> ()
  done;
  ignore (Db.exec s "COMMIT");
  counts.deliveries <- counts.deliveries + 1

(* --- Stock-Level --------------------------------------------------- *)

let stock_level s rng config counts =
  let w = pick_wh rng config in
  let d = pick_district rng config in
  let threshold = Rng.int_range rng 10 20 in
  ignore (Db.exec s "BEGIN");
  let next_row =
    Db.query_one s
      (Printf.sprintf
         "SELECT d_next_o_id FROM district WHERE d_w_id = %d AND d_id = %d" w d)
  in
  let next_o = get_int next_row 0 in
  (* the DBT-2 query: recent order lines joined to low stock *)
  ignore
    (Db.query s
       (Printf.sprintf
          "SELECT COUNT(DISTINCT ol_i_id) FROM order_line, stock WHERE \
           ol_w_id = %d AND ol_d_id = %d AND ol_o_id >= %d AND s_w_id = %d \
           AND s_i_id = ol_i_id AND s_quantity < %d"
          w d (max 1 (next_o - 20)) w threshold));
  ignore (Db.exec s "COMMIT");
  counts.stock_levels <- counts.stock_levels + 1

(* --- Mix ----------------------------------------------------------- *)

let run_transaction s rng config counts =
  (* the standard 45/43/4/4/4 mix *)
  let k = Rng.int rng 100 in
  if k < 45 then new_order s rng config counts
  else if k < 88 then payment s rng config counts
  else if k < 92 then order_status s rng config counts
  else if k < 96 then delivery s rng config counts
  else stock_level s rng config counts

let run_mix s rng config ~txns =
  let counts = zero_counts () in
  for _ = 1 to txns do
    run_transaction s rng config counts
  done;
  counts

let consistency_check s config =
  let check_warehouse w =
    let wy =
      get_float
        (Db.query_one s
           (Printf.sprintf "SELECT w_ytd FROM warehouse WHERE w_id = %d" w))
        0
    in
    let dy =
      get_float
        (Db.query_one s
           (Printf.sprintf "SELECT SUM(d_ytd) FROM district WHERE d_w_id = %d" w))
        0
    in
    if Float.abs (wy -. dy) > 0.01 then
      Error (Printf.sprintf "warehouse %d: w_ytd %.2f <> sum(d_ytd) %.2f" w wy dy)
    else Ok ()
  in
  let check_district w d =
    let next =
      get_int
        (Db.query_one s
           (Printf.sprintf
              "SELECT d_next_o_id FROM district WHERE d_w_id = %d AND d_id = %d"
              w d))
        0
    in
    let max_o =
      Db.query_one s
        (Printf.sprintf
           "SELECT MAX(o_id) FROM orders WHERE o_w_id = %d AND o_d_id = %d" w d)
    in
    let max_o =
      if Value.is_null (Tuple.get max_o 0) then 0 else get_int max_o 0
    in
    if next - 1 <> max_o then
      Error
        (Printf.sprintf "district (%d,%d): d_next_o_id-1 = %d <> max(o_id) = %d"
           w d (next - 1) max_o)
    else Ok ()
  in
  let rec all = function
    | [] -> Ok ()
    | check :: rest -> ( match check () with Ok () -> all rest | e -> e)
  in
  let checks = ref [] in
  for w = 1 to config.warehouses do
    checks := (fun () -> check_warehouse w) :: !checks;
    for d = 1 to config.districts do
      checks := (fun () -> check_district w d) :: !checks
    done
  done;
  all !checks

module A = Ifdb_sql.Ast
module Expr = Ifdb_rel.Expr
module Value = Ifdb_rel.Value
module Label = Ifdb_difc.Label
module Authority = Ifdb_difc.Authority
module Schema = Ifdb_rel.Schema

exception Plan_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Plan_error s)) fmt

type pctx = {
  pc_catalog : Catalog.t;
  pc_auth : Authority.t;
  pc_exec : Executor.ctx option;
      (* execution context for lowering uncorrelated subqueries; None
         in plan-only contexts (subqueries then fail to lower) *)
}

let norm = String.lowercase_ascii

(* ------------------------------------------------------------------ *)
(* Bindings: name → row position                                       *)
(* ------------------------------------------------------------------ *)

type binding_entry = { be_qual : string option; be_name : string }
type binding = binding_entry array

let binding_of_schema qual (schema : Schema.t) : binding =
  Array.map
    (fun c -> { be_qual = Some (norm qual); be_name = norm c.Schema.col_name })
    schema.Schema.columns

let binding_of_names qual names : binding =
  Array.of_list
    (List.map (fun n -> { be_qual = qual; be_name = norm n }) names)

let resolve binding qual name =
  let name = norm name in
  let qual = Option.map norm qual in
  let matches =
    List.filter
      (fun (_, e) ->
        e.be_name = name
        && match qual with None -> true | Some q -> e.be_qual = Some q)
      (Array.to_list (Array.mapi (fun i e -> (i, e)) binding))
  in
  match matches with
  | [ (i, _) ] -> i
  | [] ->
      fail "column %s%s does not exist"
        (match qual with Some q -> q ^ "." | None -> "")
        name
  | _ ->
      fail "column reference %s is ambiguous" name

(* ------------------------------------------------------------------ *)
(* Expression lowering                                                 *)
(* ------------------------------------------------------------------ *)

let lower_binop : A.binop -> Expr.binop = function
  | A.Add -> Expr.Add | A.Sub -> Expr.Sub | A.Mul -> Expr.Mul
  | A.Div -> Expr.Div | A.Mod -> Expr.Mod
  | A.Eq -> Expr.Eq | A.Neq -> Expr.Neq | A.Lt -> Expr.Lt | A.Le -> Expr.Le
  | A.Gt -> Expr.Gt | A.Ge -> Expr.Ge
  | A.And -> Expr.And | A.Or -> Expr.Or | A.Concat -> Expr.Concat

let label_lit_value ctx names =
  let ids =
    List.map (fun n -> Ifdb_difc.Tag.to_int (Authority.find_tag ctx.pc_auth n)) names
  in
  Value.Ints (Label.to_ints (Label.of_ints (Array.of_list ids)))

(* Case-normalized structural equality of AST expressions, for
   matching SELECT items against GROUP BY keys. *)
let rec norm_ast (e : A.expr) : A.expr =
  match e with
  | A.E_const v -> A.E_const v
  | A.E_col (q, n) -> A.E_col (Option.map norm q, norm n)
  | A.E_binop (op, a, b) -> A.E_binop (op, norm_ast a, norm_ast b)
  | A.E_not a -> A.E_not (norm_ast a)
  | A.E_neg a -> A.E_neg (norm_ast a)
  | A.E_is_null a -> A.E_is_null (norm_ast a)
  | A.E_is_not_null a -> A.E_is_not_null (norm_ast a)
  | A.E_in (a, vs) -> A.E_in (norm_ast a, List.map norm_ast vs)
  | A.E_like (a, p) -> A.E_like (norm_ast a, p)
  | A.E_fn (n, args) -> A.E_fn (norm n, List.map norm_ast args)
  | A.E_count_star -> A.E_count_star
  | A.E_count_distinct e -> A.E_count_distinct (norm_ast e)
  | A.E_case (bs, d) ->
      A.E_case
        (List.map (fun (c, v) -> (norm_ast c, norm_ast v)) bs,
         Option.map norm_ast d)
  | A.E_label_lit names -> A.E_label_lit names
  | A.E_scalar_subquery sel -> A.E_scalar_subquery sel
  | A.E_exists sel -> A.E_exists sel
  | A.E_param n -> A.E_param n

(* ------------------------------------------------------------------ *)
(* Index selection                                                     *)
(* ------------------------------------------------------------------ *)

let rec conjuncts (e : Expr.t) =
  match e with
  | Expr.Binop (Expr.And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

(* An expression usable as an index key at plan time: a non-NULL
   literal or a $n placeholder.  NULL literals never match an index
   probe, so they are dropped here; a NULL-valued parameter is only
   discovered at execution, where the scan yields nothing and the
   residual filter preserves semantics. *)
let index_key_leaf = function
  | Expr.Const v -> not (Value.is_null v)
  | Expr.Param _ -> true
  | _ -> false

(* column → constant/parameter equalities present in the predicate *)
let eq_consts pred =
  List.filter_map
    (function
      | Expr.Binop (Expr.Eq, Expr.Col i, ((Expr.Const _ | Expr.Param _) as e))
      | Expr.Binop (Expr.Eq, ((Expr.Const _ | Expr.Param _) as e), Expr.Col i)
        when index_key_leaf e ->
          Some (i, e)
      | _ -> None)
    (conjuncts pred)

(* range conditions (col <op> const-or-param) present in the predicate *)
let range_consts pred =
  List.filter_map
    (function
      | Expr.Binop (op, Expr.Col i, ((Expr.Const _ | Expr.Param _) as e))
        when index_key_leaf e -> (
          match op with
          | Expr.Ge -> Some (i, `Lo (e, true))
          | Expr.Gt -> Some (i, `Lo (e, false))
          | Expr.Le -> Some (i, `Hi (e, true))
          | Expr.Lt -> Some (i, `Hi (e, false))
          | _ -> None)
      | Expr.Binop (op, ((Expr.Const _ | Expr.Param _) as e), Expr.Col i)
        when index_key_leaf e -> (
          match op with
          | Expr.Le -> Some (i, `Lo (e, true))
          | Expr.Lt -> Some (i, `Lo (e, false))
          | Expr.Ge -> Some (i, `Hi (e, true))
          | Expr.Gt -> Some (i, `Hi (e, false))
          | _ -> None)
      | _ -> None)
    (conjuncts pred)

let best_prefix (tbl : Catalog.table) pred =
  let eqs = eq_consts pred in
  let ranges = range_consts pred in
  let prefix_for (idx : Catalog.index) =
    let rec go i acc =
      if i >= Array.length idx.Catalog.idx_cols then (List.rev acc, None)
      else
        match List.assoc_opt idx.Catalog.idx_cols.(i) eqs with
        | Some v -> go (i + 1) (v :: acc)
        | None ->
            (* no further equality: a range on this very component can
               still narrow the scan *)
            let col = idx.Catalog.idx_cols.(i) in
            let bounds =
              List.filter_map
                (fun (j, b) -> if j = col then Some b else None)
                ranges
            in
            let lo =
              List.fold_left
                (fun acc b -> match b with `Lo x -> Some x | `Hi _ -> acc)
                None bounds
            in
            let hi =
              List.fold_left
                (fun acc b -> match b with `Hi x -> Some x | `Lo _ -> acc)
                None bounds
            in
            ( List.rev acc,
              if lo = None && hi = None then None else Some (lo, hi) )
    in
    go 0 []
  in
  let candidates =
    List.filter_map
      (fun idx ->
        match prefix_for idx with
        | [], None -> None
        | [], Some _ when idx.Catalog.idx_cols = [||] -> None
        | prefix, range ->
            Some (idx.Catalog.idx_name, Array.of_list prefix, range))
      tbl.Catalog.tbl_indexes
  in
  let score (_, key, range) =
    (2 * Array.length key) + (match range with Some _ -> 1 | None -> 0)
  in
  List.fold_left
    (fun best cand ->
      match best with
      | Some b when score b >= score cand -> best
      | _ -> if score cand = 0 then best else Some cand)
    None candidates

(* ------------------------------------------------------------------ *)
(* Planning                                                            *)
(* ------------------------------------------------------------------ *)

let binding_arity (b : binding) = Array.length b

let and_all = function
  | [] -> None
  | c :: rest ->
      Some (List.fold_left (fun a b -> Expr.Binop (Expr.And, a, b)) c rest)

(* Which side of a join does an expression touch? *)
let side_of ~left_arity e =
  let cols = Expr.columns_used e in
  if cols = [] then `Either
  else if List.for_all (fun i -> i < left_arity) cols then `L
  else if List.for_all (fun i -> i >= left_arity) cols then `R
  else `Mixed

let extract_equi ~left_arity conjs =
  List.filter_map
    (fun conj ->
      match conj with
      | Expr.Binop (Expr.Eq, a, b) -> (
          match (side_of ~left_arity a, side_of ~left_arity b) with
          | `L, `R -> Some (a, Expr.shift_columns ~by:(-left_arity) b)
          | `R, `L -> Some (b, Expr.shift_columns ~by:(-left_arity) a)
          | _ -> None)
      | _ -> None)
    conjs

(* If a join side is a bare table scan and an index prefix can be
   bound entirely from the equi pairs, fetch that side per outer row
   through the index (index nested loop) instead of materializing and
   hashing it: the page traffic becomes proportional to matching rows,
   as in PostgreSQL's index-nested-loop plans. *)
let choose_probe ctx ~equi right_plan =
  match right_plan with
  | Plan.Scan { sc_table; sc_extra; sc_prefix = None; _ } -> (
      match Catalog.find_table ctx.pc_catalog sc_table with
      | None -> None
      | Some tbl ->
          let bindings =
            List.filter_map
              (fun (le, re) ->
                match re with Expr.Col j -> Some (j, le) | _ -> None)
              equi
          in
          let best =
            List.fold_left
              (fun best (idx : Catalog.index) ->
                let rec take i acc =
                  if i >= Array.length idx.Catalog.idx_cols then List.rev acc
                  else
                    match List.assoc_opt idx.Catalog.idx_cols.(i) bindings with
                    | Some le -> take (i + 1) (le :: acc)
                    | None -> List.rev acc
                in
                match take 0 [] with
                | [] -> best
                | prefix -> (
                    match best with
                    | Some (_, p) when List.length p >= List.length prefix ->
                        best
                    | _ -> Some (idx.Catalog.idx_name, prefix)))
              None tbl.Catalog.tbl_indexes
          in
          Option.map
            (fun (iname, prefix) ->
              (sc_table, iname, sc_extra, Array.of_list prefix))
            best)
  | Plan.One_row | Plan.Scan _ | Plan.Filter _ | Plan.Project _ | Plan.Join _
  | Plan.Aggregate _ | Plan.Distinct _ | Plan.Sort _ | Plan.Limit _
  | Plan.Declassify _ | Plan.Union _ | Plan.View _ ->
      None

let is_bare_scan = function
  | Plan.Scan { sc_prefix = None; _ } -> true
  | Plan.One_row | Plan.Scan _ | Plan.Filter _ | Plan.Project _ | Plan.Join _
  | Plan.Aggregate _ | Plan.Distinct _ | Plan.Sort _ | Plan.Limit _
  | Plan.Declassify _ | Plan.Union _ | Plan.View _ ->
      false

(* Predicate pushdown: route WHERE conjuncts (and, for inner joins, ON
   conjuncts) to the side of the plan they constrain, turning full
   Cartesian scans into filtered — and, on base tables, index-assisted —
   scans.  Pushing stops at Project/Aggregate/Declassify boundaries
   (their output coordinates differ from their input's). *)
let rec push_predicate ctx plan conjs =
  match plan with
  | Plan.Filter (sub, e) -> push_predicate ctx sub (conjuncts e @ conjs)
  | Plan.Scan { sc_table; sc_extra; sc_prefix = None; _ } -> (
      match and_all conjs with
      | None -> plan
      | Some pred ->
          let sc_prefix, (sc_lo, sc_hi) =
            match Catalog.find_table ctx.pc_catalog sc_table with
            | Some tbl -> (
                match best_prefix tbl pred with
                | Some (idx, key, range) ->
                    ( Some (idx, key),
                      match range with Some (lo, hi) -> (lo, hi) | None -> (None, None) )
                | None -> (None, (None, None)))
            | None -> (None, (None, None))
          in
          Plan.Filter
            (Plan.Scan { sc_table; sc_extra; sc_prefix; sc_lo; sc_hi }, pred))
  | Plan.Join { left; right; kind = `Inner; cond; left_arity; right_arity; equi = _; probe = _ }
    ->
      let all_conjs =
        (match cond with Some c -> conjuncts c | None -> []) @ conjs
      in
      let lefts, rest =
        List.partition (fun c -> side_of ~left_arity c = `L) all_conjs
      in
      let rights, cross =
        List.partition (fun c -> side_of ~left_arity c = `R) rest
      in
      let left' = push_predicate ctx left lefts in
      let right' =
        push_predicate ctx right
          (List.map (Expr.shift_columns ~by:(-left_arity)) rights)
      in
      let cond = and_all cross in
      let equi = extract_equi ~left_arity cross in
      let plain probe =
        Plan.Join
          { left = left'; right = right'; kind = `Inner; cond; left_arity;
            right_arity; equi; probe }
      in
      (match choose_probe ctx ~equi right' with
      | Some probe -> plain (Some probe)
      | None when is_bare_scan left' -> (
          (* sweeping the left side per query is the expensive case:
             try the flipped orientation and restore column order with
             a projection *)
          let flipped = List.map (fun (le, re) -> (re, le)) equi in
          match choose_probe ctx ~equi:flipped left' with
          | None -> plain None
          | Some probe ->
              let remap i = if i < left_arity then i + right_arity else i - left_arity in
              let swapped =
                Plan.Join
                  {
                    left = right';
                    right = left';
                    kind = `Inner;
                    cond = Option.map (Expr.map_columns remap) cond;
                    left_arity = right_arity;
                    right_arity = left_arity;
                    equi = flipped;
                    probe = Some probe;
                  }
              in
              Plan.Project
                ( swapped,
                  Array.init (left_arity + right_arity) (fun i ->
                      Expr.Col (if i < left_arity then i + right_arity else i - left_arity))
                ))
      | None -> plain None)
  | Plan.Join { left; right; kind = `Left; cond; left_arity; right_arity; equi; probe = _ }
    ->
      (* WHERE filters run after NULL padding, so only left-side
         conjuncts may sink below the join; the ON condition stays *)
      let lefts, rest =
        List.partition (fun c -> side_of ~left_arity c = `L) conjs
      in
      let right' = push_predicate ctx right [] in
      let join' =
        Plan.Join
          {
            left = push_predicate ctx left lefts;
            right = right';
            kind = `Left;
            cond;
            left_arity;
            right_arity;
            equi;
            probe = choose_probe ctx ~equi right';
          }
      in
      (match and_all rest with
      | None -> join'
      | Some pred -> Plan.Filter (join', pred))
  | Plan.View ({ v_mat = false; v_child; _ } as v) ->
      (* an ordinary view is transparent: route the conjuncts into its
         expansion (they stop at the Project/Declassify boundary inside,
         exactly as they did before the View wrapper existed) *)
      Plan.View { v with v_child = push_predicate ctx v_child conjs }
  | Plan.One_row | Plan.Scan _ | Plan.Project _ | Plan.Aggregate _
  | Plan.Distinct _ | Plan.Sort _ | Plan.Limit _ | Plan.Declassify _
  | Plan.Union _ | Plan.View { v_mat = true; _ } -> (
      (* a materialized view must keep predicates above the View node:
         when the read is served from maintained state, anything pushed
         inside [v_child] would silently not apply *)
      match and_all conjs with
      | None -> plan
      | Some pred -> Plan.Filter (plan, pred))

let item_name (item : A.select_item) =
  match item with
  | A.Sel_star | A.Sel_table_star _ -> assert false
  | A.Sel_expr (_, Some alias) -> norm alias
  | A.Sel_expr (e, None) -> (
      match e with
      | A.E_col (_, n) -> norm n
      | A.E_fn (n, _) -> norm n
      | A.E_count_star -> "count"
      | _ -> "?column?")

let rec plan_table_ref ctx ~extra (tref : A.table_ref) : Plan.t * binding =
  match tref with
  | A.T_table (name, alias) -> (
      let qual = Option.value ~default:name alias in
      match Catalog.find_table ctx.pc_catalog name with
      | Some tbl ->
          ( Plan.Scan
              { sc_table = norm name; sc_extra = extra; sc_prefix = None;
                sc_lo = None; sc_hi = None },
            binding_of_schema qual tbl.Catalog.tbl_schema )
      | None -> (
          match Catalog.find_view ctx.pc_catalog name with
          | Some vw ->
              let from_tags =
                Label.of_list (List.map fst vw.Catalog.vw_relabel)
              in
              let inner_extra =
                Label.union extra
                  (Label.union vw.Catalog.vw_declassify from_tags)
              in
              let sub, names = plan_select ctx ~extra:inner_extra vw.Catalog.vw_query in
              let inner =
                if Label.is_empty vw.Catalog.vw_declassify
                   && vw.Catalog.vw_relabel = []
                then sub
                else
                  Plan.Declassify
                    (sub, vw.Catalog.vw_declassify, vw.Catalog.vw_relabel)
              in
              let plan =
                Plan.View
                  { v_name = norm name; v_mat = vw.Catalog.vw_materialized;
                    v_extra = extra; v_child = inner }
              in
              (plan, binding_of_names (Some (norm qual)) names)
          | None -> fail "relation %s does not exist" name))
  | A.T_subquery (sel, alias) ->
      let sub, names = plan_select ctx ~extra sel in
      (sub, binding_of_names (Some (norm alias)) names)
  | A.T_join (l, kind, r, on) ->
      let lplan, lbind = plan_table_ref ctx ~extra l in
      let rplan, rbind = plan_table_ref ctx ~extra r in
      let binding = Array.append lbind rbind in
      let left_arity = binding_arity lbind in
      let right_arity = binding_arity rbind in
      let cond = Option.map (lower_expr ctx binding) on in
      (* extract equi-join pairs for hash join *)
      let equi =
        match cond with
        | None -> []
        | Some c ->
            List.filter_map
              (fun conj ->
                match conj with
                | Expr.Binop (Expr.Eq, a, b) ->
                    let side e =
                      let cols = Expr.columns_used e in
                      if cols = [] then `Either
                      else if List.for_all (fun i -> i < left_arity) cols then `L
                      else if List.for_all (fun i -> i >= left_arity) cols then `R
                      else `Mixed
                    in
                    (match (side a, side b) with
                    | `L, `R -> Some (a, Expr.shift_columns ~by:(-left_arity) b)
                    | `R, `L -> Some (b, Expr.shift_columns ~by:(-left_arity) a)
                    | _ -> None)
                | _ -> None)
              (conjuncts c)
      in
      let kind = match kind with A.Inner -> `Inner | A.Left -> `Left in
      ( Plan.Join { left = lplan; right = rplan; kind; cond; left_arity;
                    right_arity; equi; probe = None },
        binding )

and lower_expr ctx binding (e : A.expr) : Expr.t =
  let lower = lower_expr ctx binding in
  match e with
  | A.E_const v -> Expr.Const v
  | A.E_param n -> Expr.Param n
  | A.E_col (_, name) when norm name = "_label" -> Expr.Row_label
  | A.E_col (qual, name) -> Expr.Col (resolve binding qual name)
  | A.E_binop (op, a, b) -> Expr.Binop (lower_binop op, lower a, lower b)
  | A.E_not a -> Expr.Unop (Expr.Not, lower a)
  | A.E_neg a -> Expr.Unop (Expr.Neg, lower a)
  | A.E_is_null a -> Expr.Is_null (lower a)
  | A.E_is_not_null a -> Expr.Is_not_null (lower a)
  | A.E_in (a, vs) ->
      let consts =
        List.map (function A.E_const v -> Some v | _ -> None) vs
      in
      if List.for_all Option.is_some consts then
        Expr.In_list (lower a, List.map Option.get consts)
      else
        (* desugar to a disjunction of equalities *)
        let la = lower a in
        List.fold_left
          (fun acc v -> Expr.Binop (Expr.Or, acc, Expr.Binop (Expr.Eq, la, lower v)))
          (Expr.Const (Value.Bool false))
          vs
  | A.E_like (a, p) -> Expr.Like (lower a, p)
  | A.E_fn (name, _) when A.is_aggregate_name name ->
      fail "aggregate function %s is not allowed here" name
  | A.E_count_star -> fail "COUNT(*) is not allowed here"
  | A.E_count_distinct _ -> fail "COUNT(DISTINCT …) is not allowed here"
  | A.E_fn (name, args) -> Expr.Fn (norm name, List.map lower args)
  | A.E_case (branches, default) ->
      Expr.Case
        ( List.map (fun (c, v) -> (lower c, lower v)) branches,
          match default with Some d -> lower d | None -> Expr.Const Value.Null )
  | A.E_label_lit names -> Expr.Const (label_lit_value ctx names)
  | A.E_scalar_subquery sel -> (
      match ctx.pc_exec with
      | None -> fail "scalar subqueries are not available in this context"
      | Some ectx ->
          let plan, names = plan_select ctx sel in
          if List.length names <> 1 then
            fail "a scalar subquery must return exactly one column";
          Expr.Lazy_const
            (lazy
              (match Executor.run_list ectx plan with
              | [] -> Value.Null
              | [ row ] -> Ifdb_rel.Tuple.get row 0
              | _ :: _ :: _ ->
                  fail "scalar subquery returned more than one row")))
  | A.E_exists sel -> (
      match ctx.pc_exec with
      | None -> fail "EXISTS is not available in this context"
      | Some ectx ->
          let plan, _names = plan_select ctx sel in
          Expr.Lazy_const
            (lazy (Value.Bool (not (Seq.is_empty (Executor.run ectx plan))))))


(* Rewrites an expression in the post-aggregation coordinate system:
   group-key subtrees become key columns, aggregate calls become agg
   columns. *)
and lower_post_agg ctx binding ~keys_ast ~aggs (e : A.expr) : Expr.t =
  let find_key e =
    let ne = norm_ast e in
    let rec go i = function
      | [] -> None
      | k :: rest -> if norm_ast k = ne then Some i else go (i + 1) rest
    in
    go 0 keys_ast
  in
  let nkeys = List.length keys_ast in
  let register kind =
    aggs := !aggs @ [ kind ];
    Expr.Col (nkeys + List.length !aggs - 1)
  in
  let rec go e =
    match find_key e with
    | Some i -> Expr.Col i
    | None -> (
        match e with
        | A.E_param n -> Expr.Param n
        | A.E_count_star -> register Plan.Count_star
        | A.E_count_distinct e ->
            register (Plan.Count_distinct (lower_expr ctx binding e))
        | A.E_fn (name, args) when A.is_aggregate_name name -> (
            let arg =
              match args with
              | [ a ] -> lower_expr ctx binding a
              | _ -> fail "%s expects exactly one argument" name
            in
            match norm name with
            | "count" -> register (Plan.Count arg)
            | "sum" -> register (Plan.Sum arg)
            | "avg" -> register (Plan.Avg arg)
            | "min" -> register (Plan.Min arg)
            | "max" -> register (Plan.Max arg)
            | _ -> assert false)
        | A.E_const v -> Expr.Const v
        | A.E_label_lit names -> Expr.Const (label_lit_value ctx names)
        | (A.E_scalar_subquery _ | A.E_exists _) as sub ->
            lower_expr ctx binding sub
        | A.E_col (_, n) when norm n = "_label" -> Expr.Row_label
        | A.E_col (q, n) ->
            fail "column %s%s must appear in the GROUP BY clause"
              (match q with Some q -> q ^ "." | None -> "")
              n
        | A.E_binop (op, a, b) -> Expr.Binop (lower_binop op, go a, go b)
        | A.E_not a -> Expr.Unop (Expr.Not, go a)
        | A.E_neg a -> Expr.Unop (Expr.Neg, go a)
        | A.E_is_null a -> Expr.Is_null (go a)
        | A.E_is_not_null a -> Expr.Is_not_null (go a)
        | A.E_in (a, vs) ->
            List.fold_left
              (fun acc v -> Expr.Binop (Expr.Or, acc, Expr.Binop (Expr.Eq, go a, go v)))
              (Expr.Const (Value.Bool false))
              vs
        | A.E_like (a, p) -> Expr.Like (go a, p)
        | A.E_fn (name, args) -> Expr.Fn (norm name, List.map go args)
        | A.E_case (bs, d) ->
            Expr.Case
              ( List.map (fun (c, v) -> (go c, go v)) bs,
                match d with Some d -> go d | None -> Expr.Const Value.Null ))
  in
  go e

and plan_select ctx ?(extra = Label.empty) (sel : A.select) :
    Plan.t * string list =
  match sel.A.unions with
  | [] -> plan_select_one ctx ~extra sel
  | unions ->
      (* the last member's ORDER BY/LIMIT apply to the whole union *)
      let strip s =
        { s with A.order_by = []; limit = None; offset = None; unions = [] }
      in
      let last_kind, last_sel = List.nth unions (List.length unions - 1) in
      ignore last_kind;
      let order_by = last_sel.A.order_by in
      let limit = last_sel.A.limit and offset = last_sel.A.offset in
      let first_plan, names =
        plan_select_one ctx ~extra (strip { sel with A.unions = [] })
      in
      let arity = List.length names in
      let combined =
        List.fold_left
          (fun acc (kind, member) ->
            let mplan, mnames = plan_select_one ctx ~extra (strip member) in
            if List.length mnames <> arity then
              fail "each UNION member must return %d columns" arity;
            Plan.Union
              (acc, mplan, match kind with `Union -> `Distinct | `Union_all -> `All))
          first_plan unions
      in
      let out_binding = binding_of_names None names in
      let sorted =
        match order_by with
        | [] -> combined
        | obs ->
            let specs =
              List.map
                (fun (e, dir) ->
                  { Plan.key = lower_expr ctx out_binding e;
                    descending = (dir = A.Desc) })
                obs
            in
            Plan.Sort (combined, Array.of_list specs)
      in
      let limited =
        match (limit, offset) with
        | None, None -> sorted
        | l, o -> Plan.Limit (sorted, l, o)
      in
      (limited, names)

and plan_select_one ctx ~extra (sel : A.select) : Plan.t * string list =
  let src_plan, binding =
    match sel.A.from with
    | Some tref -> plan_table_ref ctx ~extra tref
    | None -> (Plan.One_row, [||])
  in
  let where = Option.map (lower_expr ctx binding) sel.A.where in
  let filtered =
    push_predicate ctx src_plan
      (match where with Some p -> conjuncts p | None -> [])
  in
  let is_agg_query =
    sel.A.group_by <> []
    || List.exists
         (function
           | A.Sel_expr (e, _) -> A.has_aggregate e
           | A.Sel_star | A.Sel_table_star _ -> false)
         sel.A.items
    || (match sel.A.having with Some h -> A.has_aggregate h | None -> false)
  in
  let projected, out_names, out_binding =
    if is_agg_query then begin
      let keys_ast = sel.A.group_by in
      let keys =
        Array.of_list (List.map (lower_expr ctx binding) keys_ast)
      in
      let aggs = ref [] in
      let item_exprs =
        List.map
          (fun item ->
            match item with
            | A.Sel_star | A.Sel_table_star _ ->
                fail "* is not allowed with GROUP BY or aggregates"
            | A.Sel_expr (e, _) -> lower_post_agg ctx binding ~keys_ast ~aggs e)
          sel.A.items
      in
      let having =
        Option.map (lower_post_agg ctx binding ~keys_ast ~aggs) sel.A.having
      in
      (* ORDER BY in aggregate queries sorts the grouped rows before
         projection; an output alias stands for its item's expression *)
      let resolve_alias e =
        match e with
        | A.E_col (None, n) -> (
            let n = norm n in
            let matching =
              List.find_opt
                (fun item ->
                  match item with
                  | A.Sel_expr (_, _) -> item_name item = n
                  | A.Sel_star | A.Sel_table_star _ -> false)
                sel.A.items
            in
            match matching with
            | Some (A.Sel_expr (ie, _)) -> ie
            | Some (A.Sel_star | A.Sel_table_star _) | None -> e)
        | _ -> e
      in
      let sort_specs =
        List.map
          (fun (e, dir) ->
            { Plan.key = lower_post_agg ctx binding ~keys_ast ~aggs (resolve_alias e);
              descending = (dir = A.Desc) })
          sel.A.order_by
      in
      let agg_plan =
        Plan.Aggregate
          { src = filtered; keys; aggs = Array.of_list !aggs }
      in
      let agg_plan =
        match having with Some h -> Plan.Filter (agg_plan, h) | None -> agg_plan
      in
      let agg_plan =
        match sort_specs with
        | [] -> agg_plan
        | specs -> Plan.Sort (agg_plan, Array.of_list specs)
      in
      let names = List.map item_name sel.A.items in
      ( Plan.Project (agg_plan, Array.of_list item_exprs),
        names,
        binding_of_names None names )
    end
    else begin
      let exprs = ref [] and names = ref [] in
      List.iter
        (fun item ->
          match item with
          | A.Sel_star ->
              Array.iteri
                (fun i e ->
                  exprs := Expr.Col i :: !exprs;
                  names := e.be_name :: !names)
                binding
          | A.Sel_table_star q ->
              let q = norm q in
              let found = ref false in
              Array.iteri
                (fun i e ->
                  if e.be_qual = Some q then begin
                    found := true;
                    exprs := Expr.Col i :: !exprs;
                    names := e.be_name :: !names
                  end)
                binding;
              if not !found then fail "no relation %s in FROM" q
          | A.Sel_expr (e, _) ->
              exprs := lower_expr ctx binding e :: !exprs;
              names := item_name item :: !names)
        sel.A.items;
      let exprs = Array.of_list (List.rev !exprs) in
      let names = List.rev !names in
      ( Plan.Project (filtered, exprs), names, binding_of_names None names )
    end
  in
  let distincted = if sel.A.distinct then Plan.Distinct projected else projected in
  (* ORDER BY: prefer resolving against the output columns; for
     non-aggregate queries fall back to sorting before projection *)
  let with_sort =
    match sel.A.order_by with
    | [] -> distincted
    | _ when is_agg_query -> distincted (* sorted pre-projection above *)
    | obs -> (
        let try_output () =
          List.map
            (fun (e, dir) ->
              { Plan.key = lower_expr ctx out_binding e;
                descending = (dir = A.Desc) })
            obs
        in
        match try_output () with
        | specs -> Plan.Sort (distincted, Array.of_list specs)
        | exception Plan_error _ when not is_agg_query && not sel.A.distinct ->
            (* sort the source rows, then re-project *)
            let specs =
              List.map
                (fun (e, dir) ->
                  { Plan.key = lower_expr ctx binding e;
                    descending = (dir = A.Desc) })
                obs
            in
            let sorted_src = Plan.Sort (filtered, Array.of_list specs) in
            (match projected with
            | Plan.Project (_, exprs) -> Plan.Project (sorted_src, exprs)
            | _ -> assert false))
  in
  let with_limit =
    match (sel.A.limit, sel.A.offset) with
    | None, None -> with_sort
    | l, o -> Plan.Limit (with_sort, l, o)
  in
  (with_limit, out_names)

let lower_expr_for_table ctx (schema : Schema.t) e =
  (* an unqualified reference matches any entry by name, so the
     table-qualified binding serves both spellings *)
  lower_expr ctx (binding_of_schema schema.Schema.table_name schema) e

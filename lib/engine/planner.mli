(** Lowering SQL ASTs to executable plans.

    The planner resolves names, expands views (wrapping declassifying
    views in {!Plan.Declassify} nodes and widening the readable label
    inside them, per section 4.3 of the paper), lowers expressions
    to {!Ifdb_rel.Expr}, picks equality-prefix index scans, extracts
    hash-join keys, and compiles grouping/aggregation. *)

module A = Ifdb_sql.Ast
module Expr = Ifdb_rel.Expr
module Value = Ifdb_rel.Value
module Label = Ifdb_difc.Label

exception Plan_error of string

type pctx = {
  pc_catalog : Catalog.t;
  pc_auth : Ifdb_difc.Authority.t;  (** for tag-name resolution in label
                                        literals and compound-aware
                                        declassification *)
  pc_exec : Executor.ctx option;
      (** execution context used to lower uncorrelated scalar
          subqueries and EXISTS (they evaluate lazily, at most once per
          statement); [None] in plan-only contexts *)
}

val plan_select : pctx -> ?extra:Label.t -> A.select -> Plan.t * string list
(** Plan a SELECT.  Returns the plan and the output column names.
    [extra] is the set of additionally readable tags inherited from an
    enclosing declassifying view (used when views nest). *)

val lower_expr_for_table :
  pctx -> Ifdb_rel.Schema.t -> A.expr -> Expr.t
(** Lower an expression whose names refer to a single table's columns
    (the DML WHERE/SET case).  [_label] resolves to the row label;
    label literals resolve against the authority state. *)

val best_prefix :
  Catalog.table ->
  Expr.t ->
  (string
  * Expr.t array
  * ((Expr.t * bool) option * (Expr.t * bool) option) option)
  option
(** Given a lowered predicate over a table's rows, find the index with
    the longest equality-prefix usable for a lookup: returns the index
    name, the prefix key expressions (non-NULL literals or [$n]
    placeholders), and an optional range (lo, hi bounds, each
    [(expr, inclusive)]) on the component after the prefix.  Key
    expressions are evaluated at scan start, so one plan serves every
    parameter binding. *)

val conjuncts : Expr.t -> Expr.t list
(** Split a predicate on top-level ANDs. *)

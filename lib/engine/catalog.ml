module Label = Ifdb_difc.Label
module Principal = Ifdb_difc.Principal
module Schema = Ifdb_rel.Schema
module Tuple = Ifdb_rel.Tuple
module Value = Ifdb_rel.Value
module Heap = Ifdb_storage.Heap
module Btree = Ifdb_storage.Btree

exception Catalog_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Catalog_error s)) fmt

type index = {
  idx_name : string;
  idx_table : string;
  idx_cols : int array;
  idx_unique : bool;
  idx_tree : Btree.t;
}

type table = {
  tbl_schema : Schema.t;
  tbl_heap : Heap.t;
  mutable tbl_indexes : index list;
}

type view = {
  vw_name : string;
  vw_query : Ifdb_sql.Ast.select;
  vw_declassify : Label.t;
  vw_relabel : (Ifdb_difc.Tag.t * Ifdb_difc.Tag.t) list;
      (* replace (from, to): strip [from] and add [to] when [from] was
         present — the "billing view" pattern of paper section 4.3 *)
  vw_materialized : bool;
      (* registered for incremental maintenance (CREATE MATERIALIZED
         VIEW); the IVM registry in the core owns the actual state *)
}

type label_rule = Exactly of Label.t | Superset of Label.t

type label_constraint = {
  lc_name : string;
  lc_table : string;
  lc_fn : Tuple.t -> label_rule option;
}

type t = {
  cat_pool : Ifdb_storage.Buffer_pool.t;
  cat_labeled : bool;
  tables : (string, table) Hashtbl.t;
  views : (string, view) Hashtbl.t;
  mutable lcs : label_constraint list;
}

let norm = String.lowercase_ascii

let create ~pool ~labeled () =
  {
    cat_pool = pool;
    cat_labeled = labeled;
    tables = Hashtbl.create 32;
    views = Hashtbl.create 16;
    lcs = [];
  }

let pool t = t.cat_pool
let labeled t = t.cat_labeled

let find_table t name = Hashtbl.find_opt t.tables (norm name)
let find_view t name = Hashtbl.find_opt t.views (norm name)

let table t name =
  match find_table t name with
  | Some tbl -> tbl
  | None -> fail "no such table: %s" name

let name_taken t name = find_table t name <> None || find_view t name <> None

let index_key idx values = Array.map (fun i -> values.(i)) idx.idx_cols

let build_index_over_heap tbl idx =
  Heap.iter tbl.tbl_heap (fun v ->
      Btree.insert idx.idx_tree
        (index_key idx (Tuple.values v.Heap.tuple))
        v.Heap.vid)

let mk_index t ~name ~table_name ~cols ~unique =
  let tbl = table t table_name in
  let idx_cols =
    Array.of_list
      (List.map
         (fun c ->
           match Schema.col_index_opt tbl.tbl_schema c with
           | Some i -> i
           | None -> fail "index %s: no column %s in %s" name c table_name)
         cols)
  in
  if List.exists (fun i -> norm i.idx_name = norm name) tbl.tbl_indexes then
    fail "index %s already exists" name;
  let idx =
    {
      idx_name = name;
      idx_table = norm table_name;
      idx_cols;
      idx_unique = unique;
      idx_tree = Btree.create ();
    }
  in
  build_index_over_heap tbl idx;
  tbl.tbl_indexes <- tbl.tbl_indexes @ [ idx ];
  idx

let create_table t schema =
  let name = schema.Schema.table_name in
  if name_taken t name then fail "relation %s already exists" name;
  let heap =
    Heap.create ~name ~labeled:t.cat_labeled ~pool:t.cat_pool ()
  in
  let tbl = { tbl_schema = schema; tbl_heap = heap; tbl_indexes = [] } in
  Hashtbl.replace t.tables (norm name) tbl;
  (* one unique index per uniqueness constraint, primary key first *)
  List.iter
    (fun u ->
      ignore
        (mk_index t ~name:u.Schema.uq_name ~table_name:name ~cols:u.Schema.uq_cols
           ~unique:true))
    (Schema.all_uniques schema);
  tbl

let drop_table t name =
  if find_table t name = None then fail "no such table: %s" name;
  Hashtbl.remove t.tables (norm name);
  t.lcs <- List.filter (fun lc -> lc.lc_table <> norm name) t.lcs

let all_tables t = Hashtbl.fold (fun _ tbl acc -> tbl :: acc) t.tables []

let create_index t ~name ~table:table_name ~cols ~unique =
  mk_index t ~name ~table_name ~cols ~unique

let insert_into_indexes _t tbl values vid =
  List.iter
    (fun idx -> Btree.insert idx.idx_tree (index_key idx values) vid)
    tbl.tbl_indexes

let bulk_insert_into_indexes _t tbl rows =
  (* one sorted bulk load per index rather than one descent per row *)
  List.iter
    (fun idx ->
      Btree.insert_many idx.idx_tree
        (List.map (fun (values, vid) -> (index_key idx values, vid)) rows))
    tbl.tbl_indexes

let remove_from_indexes _t tbl values vid =
  List.iter
    (fun idx -> Btree.remove idx.idx_tree (index_key idx values) vid)
    tbl.tbl_indexes

let create_view t ~name ~query ~declassify ?(relabel = []) ?(materialized = false)
    () =
  if name_taken t name then fail "relation %s already exists" name;
  let vw =
    { vw_name = name; vw_query = query; vw_declassify = declassify;
      vw_relabel = relabel; vw_materialized = materialized }
  in
  Hashtbl.replace t.views (norm name) vw;
  vw

let drop_view t name =
  if find_view t name = None then fail "no such view: %s" name;
  Hashtbl.remove t.views (norm name)

let all_views t =
  List.sort
    (fun a b -> String.compare (norm a.vw_name) (norm b.vw_name))
    (Hashtbl.fold (fun _ vw acc -> vw :: acc) t.views [])

let add_label_constraint t lc =
  ignore (table t lc.lc_table);
  t.lcs <- t.lcs @ [ { lc with lc_table = norm lc.lc_table } ]

let label_constraints_for t table_name =
  List.filter (fun lc -> lc.lc_table = norm table_name) t.lcs

let drop_index t name =
  let found = ref false in
  Hashtbl.iter
    (fun _ tbl ->
      if List.exists (fun i -> norm i.idx_name = norm name) tbl.tbl_indexes then begin
        found := true;
        tbl.tbl_indexes <-
          List.filter (fun i -> norm i.idx_name <> norm name) tbl.tbl_indexes
      end)
    t.tables;
  if not !found then fail "no such index: %s" name

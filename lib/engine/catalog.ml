module Label = Ifdb_difc.Label
module Principal = Ifdb_difc.Principal
module Schema = Ifdb_rel.Schema
module Tuple = Ifdb_rel.Tuple
module Value = Ifdb_rel.Value
module Heap = Ifdb_storage.Heap
module Btree = Ifdb_storage.Btree

exception Catalog_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Catalog_error s)) fmt

type index = {
  idx_name : string;
  idx_table : string;
  idx_cols : int array;
  idx_unique : bool;
  idx_tree : Btree.t;
      (* flat layout: the single tree holding every posting.
         Partitioned layout: unused (stays empty) — postings live in
         [idx_segs] instead *)
  idx_segs : (int, Btree.t) Hashtbl.t option;
      (* [Some segs] iff the table's heap is partitioned: one B-tree
         segment per interned label id (-1 groups the uninterned), so
         an index scan enumerates only the segments whose label flows
         to the session — the index analogue of per-partition page
         runs *)
}

type table = {
  tbl_schema : Schema.t;
  tbl_heap : Heap.t;
  mutable tbl_indexes : index list;
}

type view = {
  vw_name : string;
  vw_query : Ifdb_sql.Ast.select;
  vw_declassify : Label.t;
  vw_relabel : (Ifdb_difc.Tag.t * Ifdb_difc.Tag.t) list;
      (* replace (from, to): strip [from] and add [to] when [from] was
         present — the "billing view" pattern of paper section 4.3 *)
  vw_materialized : bool;
      (* registered for incremental maintenance (CREATE MATERIALIZED
         VIEW); the IVM registry in the core owns the actual state *)
}

type label_rule = Exactly of Label.t | Superset of Label.t

type label_constraint = {
  lc_name : string;
  lc_table : string;
  lc_fn : Tuple.t -> label_rule option;
}

type t = {
  cat_pool : Ifdb_storage.Buffer_pool.t;
  cat_labeled : bool;
  cat_partitioned : bool;
  tables : (string, table) Hashtbl.t;
  views : (string, view) Hashtbl.t;
  mutable lcs : label_constraint list;
  mutable cat_version : int;
      (* bumped by every DDL mutation; plan-cache entries are stamped
         with the version they were planned under *)
}

let norm = String.lowercase_ascii

let create ~pool ~labeled ?(partitioned = false) () =
  {
    cat_pool = pool;
    cat_labeled = labeled;
    cat_partitioned = partitioned;
    tables = Hashtbl.create 32;
    views = Hashtbl.create 16;
    lcs = [];
    cat_version = 0;
  }

let version t = t.cat_version
let bump_version t = t.cat_version <- t.cat_version + 1

let pool t = t.cat_pool
let labeled t = t.cat_labeled
let partitioned t = t.cat_partitioned

let find_table t name = Hashtbl.find_opt t.tables (norm name)
let find_view t name = Hashtbl.find_opt t.views (norm name)

let table t name =
  match find_table t name with
  | Some tbl -> tbl
  | None -> fail "no such table: %s" name

let name_taken t name = find_table t name <> None || find_view t name <> None

let index_key idx values = Array.map (fun i -> values.(i)) idx.idx_cols

(* The segment holding postings for label id [lid] (created on first
   use).  Flat indexes route everything to the single tree. *)
let seg_of idx lid =
  match idx.idx_segs with
  | None -> idx.idx_tree
  | Some segs -> (
      match Hashtbl.find_opt segs lid with
      | Some tree -> tree
      | None ->
          let tree = Btree.create () in
          Hashtbl.add segs lid tree;
          tree)

let index_segment_count idx =
  match idx.idx_segs with None -> 1 | Some segs -> Hashtbl.length segs

let build_index_over_heap tbl idx =
  Heap.iter tbl.tbl_heap (fun v ->
      Btree.insert
        (seg_of idx (Tuple.label_id v.Heap.tuple))
        (index_key idx (Tuple.values v.Heap.tuple))
        v.Heap.vid)

let mk_index t ~name ~table_name ~cols ~unique =
  let tbl = table t table_name in
  let idx_cols =
    Array.of_list
      (List.map
         (fun c ->
           match Schema.col_index_opt tbl.tbl_schema c with
           | Some i -> i
           | None -> fail "index %s: no column %s in %s" name c table_name)
         cols)
  in
  if List.exists (fun i -> norm i.idx_name = norm name) tbl.tbl_indexes then
    fail "index %s already exists" name;
  let idx =
    {
      idx_name = name;
      idx_table = norm table_name;
      idx_cols;
      idx_unique = unique;
      idx_tree = Btree.create ();
      idx_segs =
        (if Heap.partitioned tbl.tbl_heap then Some (Hashtbl.create 8)
         else None);
    }
  in
  build_index_over_heap tbl idx;
  tbl.tbl_indexes <- tbl.tbl_indexes @ [ idx ];
  bump_version t;
  idx

let create_table t schema =
  let name = schema.Schema.table_name in
  if name_taken t name then fail "relation %s already exists" name;
  let heap =
    Heap.create ~name ~labeled:t.cat_labeled ~pool:t.cat_pool
      ~partitioned:t.cat_partitioned ()
  in
  let tbl = { tbl_schema = schema; tbl_heap = heap; tbl_indexes = [] } in
  Hashtbl.replace t.tables (norm name) tbl;
  (* one unique index per uniqueness constraint, primary key first *)
  List.iter
    (fun u ->
      ignore
        (mk_index t ~name:u.Schema.uq_name ~table_name:name ~cols:u.Schema.uq_cols
           ~unique:true))
    (Schema.all_uniques schema);
  bump_version t;
  tbl

let drop_table t name =
  if find_table t name = None then fail "no such table: %s" name;
  Hashtbl.remove t.tables (norm name);
  t.lcs <- List.filter (fun lc -> lc.lc_table <> norm name) t.lcs;
  bump_version t

let all_tables t = Hashtbl.fold (fun _ tbl acc -> tbl :: acc) t.tables []

let create_index t ~name ~table:table_name ~cols ~unique =
  mk_index t ~name ~table_name ~cols ~unique

let insert_into_indexes _t tbl values ~lid vid =
  List.iter
    (fun idx -> Btree.insert (seg_of idx lid) (index_key idx values) vid)
    tbl.tbl_indexes

let bulk_insert_into_indexes _t tbl rows =
  (* one sorted bulk load per index (and per touched segment) rather
     than one descent per row *)
  List.iter
    (fun idx ->
      match idx.idx_segs with
      | None ->
          Btree.insert_many idx.idx_tree
            (List.map
               (fun (values, _lid, vid) -> (index_key idx values, vid))
               rows)
      | Some _ ->
          (* group the run by label id, preserving row order within
             each group (insert_many is order-sensitive only per key,
             and rows of one segment keep their relative order) *)
          let by_lid : (int, (Btree.key * int) list ref) Hashtbl.t =
            Hashtbl.create 4
          in
          let order = ref [] in
          List.iter
            (fun (values, lid, vid) ->
              let entry = (index_key idx values, vid) in
              match Hashtbl.find_opt by_lid lid with
              | Some l -> l := entry :: !l
              | None ->
                  Hashtbl.add by_lid lid (ref [ entry ]);
                  order := lid :: !order)
            rows;
          List.iter
            (fun lid ->
              let entries = Hashtbl.find by_lid lid in
              Btree.insert_many (seg_of idx lid) (List.rev !entries))
            (List.rev !order))
    tbl.tbl_indexes

let remove_from_indexes _t tbl values ~lid vid =
  List.iter
    (fun idx -> Btree.remove (seg_of idx lid) (index_key idx values) vid)
    tbl.tbl_indexes

(* --- index lookups across segments ---------------------------------

   Readers go through these instead of touching [idx_tree] directly, so
   one call site works for both layouts.  Point lookups treat the
   result as a set; ordered scans merge the per-segment streams back
   into the flat tree's (key, vid) order, so downstream consumers see
   an identical sequence. *)

let index_find idx key =
  match idx.idx_segs with
  | None -> Btree.find idx.idx_tree key
  | Some segs ->
      Hashtbl.fold (fun _ tree acc -> Btree.find tree key @ acc) segs []

let index_find_label idx key ~lid =
  match idx.idx_segs with
  | None -> Btree.find idx.idx_tree key
  | Some _ when lid < 0 ->
      (* uninterned probe label: the caller re-checks labels, so give
         it every candidate *)
      index_find idx key
  | Some _ ->
      (* the (key, label) identity confines a uniqueness probe to the
         probe label's own segment (plus the uninterned residue, whose
         raw labels the caller compares) *)
      Btree.find (seg_of idx lid) key @ Btree.find (seg_of idx (-1)) key

(* k-way merge of ephemeral sequences under [cmp]; ties resolve to the
   earlier sequence, which is irrelevant here because (key, vid) pairs
   are unique across segments *)
let merge_seqs cmp (seqs : 'a Seq.t list) : 'a Seq.t =
  match seqs with
  | [] -> Seq.empty
  | [ s ] -> s
  | _ ->
      let heads = Array.of_list (List.map Seq.uncons seqs) in
      let rec next () =
        let best = ref (-1) in
        Array.iteri
          (fun i st ->
            match st with
            | None -> ()
            | Some (h, _) -> (
                match (if !best < 0 then None else heads.(!best)) with
                | None -> best := i
                | Some (bh, _) -> if cmp h bh < 0 then best := i))
          heads;
        if !best < 0 then Seq.Nil
        else
          match heads.(!best) with
          | None -> assert false
          | Some (h, rest) ->
              heads.(!best) <- Seq.uncons rest;
              Seq.Cons (h, next)
      in
      next

let compare_posting (k1, v1) (k2, v2) =
  let c = Btree.compare_key k1 k2 in
  if c <> 0 then c else compare (v1 : int) v2

let seq_index_prefix idx ~keep ~prefix ~lo ~hi : (Btree.key * int) Seq.t =
  match idx.idx_segs with
  | None -> Btree.seq_prefix_range idx.idx_tree ~prefix ~lo ~hi
  | Some segs ->
      let streams =
        Hashtbl.fold
          (fun lid tree acc ->
            if keep lid then Btree.seq_prefix_range tree ~prefix ~lo ~hi :: acc
            else acc)
          segs []
      in
      merge_seqs compare_posting streams

let iter_index_entries idx f =
  match idx.idx_segs with
  | None -> Btree.iter_all idx.idx_tree f
  | Some segs ->
      Seq.iter
        (fun (k, vid) -> f k vid)
        (merge_seqs compare_posting
           (Hashtbl.fold
              (fun _ tree acc -> Btree.seq_prefix tree ~prefix:[||] :: acc)
              segs []))

let index_entry_count idx =
  match idx.idx_segs with
  | None -> Btree.entry_count idx.idx_tree
  | Some segs ->
      Hashtbl.fold (fun _ tree acc -> acc + Btree.entry_count tree) segs 0

let create_view t ~name ~query ~declassify ?(relabel = []) ?(materialized = false)
    () =
  if name_taken t name then fail "relation %s already exists" name;
  let vw =
    { vw_name = name; vw_query = query; vw_declassify = declassify;
      vw_relabel = relabel; vw_materialized = materialized }
  in
  Hashtbl.replace t.views (norm name) vw;
  bump_version t;
  vw

let drop_view t name =
  if find_view t name = None then fail "no such view: %s" name;
  Hashtbl.remove t.views (norm name);
  bump_version t

let all_views t =
  List.sort
    (fun a b -> String.compare (norm a.vw_name) (norm b.vw_name))
    (Hashtbl.fold (fun _ vw acc -> vw :: acc) t.views [])

let add_label_constraint t lc =
  ignore (table t lc.lc_table);
  t.lcs <- t.lcs @ [ { lc with lc_table = norm lc.lc_table } ];
  bump_version t

let label_constraints_for t table_name =
  List.filter (fun lc -> lc.lc_table = norm table_name) t.lcs

let drop_index t name =
  let found = ref false in
  Hashtbl.iter
    (fun _ tbl ->
      if List.exists (fun i -> norm i.idx_name = norm name) tbl.tbl_indexes then begin
        found := true;
        tbl.tbl_indexes <-
          List.filter (fun i -> norm i.idx_name <> norm name) tbl.tbl_indexes
      end)
    t.tables;
  if not !found then fail "no such index: %s" name;
  bump_version t

(** Incremental maintenance of (declassifying) materialized views.

    The registry compiles each [CREATE MATERIALIZED VIEW] plan to
    delta form and keeps a materialized result {e keyed by interned
    label id}: every label partition of the base data is maintained
    separately, so polyinstantiated duplicates stay separate entries
    and declassification can be applied per partition at read time.
    The state itself is label-blind (it holds all partitions); a read
    consults only the partitions whose label flows to the reader's
    destination label — the same check a table scan would make per
    tuple group — and puts each emitted row through the view's
    Declassify boundary.

    Maintenance runs inside the commit path from the transaction's
    write set (insert [+1] / delete [−1]); two-table joins use the
    bilinear delta rule against committed-now base state.  Shapes the
    delta compiler does not support fall back to per-read
    recomputation through the view's ordinary plan, and a view whose
    state cannot absorb a change (e.g. a delete under MIN/MAX) is
    marked stale and fully refreshed on its next read.

    Reader-visible results are cached per destination-label id,
    stamped with the authority generation: any delegation, revocation
    or tag creation moves the generation and silently invalidates the
    cache — the {!Ifdb_difc.Label_store} invalidation discipline.

    All entry points are mutex-guarded; maintenance and reads may be
    driven from concurrent sessions.  Join-shaped delta application
    assumes commits apply in order (see DESIGN.md 6.6). *)

module Expr = Ifdb_rel.Expr
module Tuple = Ifdb_rel.Tuple
module Label = Ifdb_difc.Label
module Label_store = Ifdb_difc.Label_store

type t

val create :
  lstore:Label_store.t ->
  strip:
    (Label.t -> (Ifdb_difc.Tag.t * Ifdb_difc.Tag.t) list -> Label.t -> Label.t) ->
  scan:(string -> (Tuple.t * int) Seq.t) ->
  unit ->
  t
(** [strip] is the core's compound-aware declassify+relabel (the same
    function the executor's Declassify uses); [scan] must yield the
    committed-now rows of a base table with their interned label ids,
    with {e no} label filtering — the state holds every partition. *)

val register :
  t ->
  name:string ->
  plan:Plan.t ->
  declassify:Label.t ->
  relabel:(Ifdb_difc.Tag.t * Ifdb_difc.Tag.t) list ->
  unit
(** Register a materialized view.  [plan] is the planner's expansion
    of the view body {e without} the Declassify boundary.  If the
    shape is supported, the state is built eagerly (a full refresh);
    otherwise the view is registered as recompute-only. *)

val register_unsupported : t -> name:string -> reason:string -> unit
(** Register a materialized view as permanently recompute-only — used
    when even planning its body failed at definition time — so it
    still shows up in {!stats} with the reason. *)

val set_affects : t -> view:string -> (string -> int -> bool) option -> unit
(** Install (or clear) the view's write-relevance predicate:
    [f table lid] must return [false] only when a committed write to
    [table] under interned label id [lid] {e provably} cannot change
    the view's state — e.g. the static label-interval analysis proved
    the view body pins [_label] to a single literal, so only that
    label's partition feeds the state.  [apply] drops pruned writes
    before delta evaluation and counts a commit whose base-table
    writes are all pruned as a skip ({!view_stats.vs_skipped}) rather
    than a delta.  Unsound predicates corrupt the state; callers must
    derive them from a conservative analysis. *)

val unregister : t -> string -> unit

val base_tables : t -> string -> string list
(** The base tables a supported view's state covers; [[]] when the
    view is unknown or recompute-only.  The core uses this to record
    the reads a served result replaced in the transaction's
    serializable footprint. *)

val invalidate_table : t -> string -> unit
(** A base table was dropped or reshaped: drop the state of every view
    over it (they refresh on next read, or fail back to recompute). *)

val interested : t -> string -> bool
(** Does any supported view maintain state over this table?  The
    commit path's fast-path check. *)

val apply : t -> (string * int * Tuple.t * int) list -> unit
(** Apply one committed transaction's write set, oldest first:
    [(table, sign, tuple, label_id)] with [+1] per inserted and [−1]
    per deleted version (an UPDATE contributes both).  Never raises:
    a change the state cannot absorb marks the view stale instead. *)

val read : t -> view:string -> dst:int -> Tuple.t list option
(** The served rows for a reader whose scan destination label
    (session label ∪ all extra readable tags at the reference,
    including the view's own declassification) interns to [dst].
    [None] when the view is unregistered or recompute-only — the
    caller must then execute the view's plan (and that fallback is
    counted here).  A stale view is refreshed first. *)

val note_recompute : t -> string -> unit
(** Count a read of [view] that was answered by recomputation for a
    reason the registry could not see (e.g. an explicit transaction
    pinning an older snapshot). *)

type view_stats = {
  vs_name : string;
  vs_supported : bool;
  vs_reason : string;  (** why delta maintenance is off; [""] when on *)
  vs_rows : int;       (** entries currently materialized *)
  vs_partitions : int; (** distinct label partitions in the state *)
  vs_stale : bool;
  vs_deltas : int;     (** commit-time delta applications *)
  vs_refreshes : int;  (** full recomputations of the state *)
  vs_served : int;     (** reads answered from the state *)
  vs_recomputes : int; (** reads that fell back to the plan *)
  vs_skipped : int;
      (** commit deltas skipped because the label-interval analysis
          proved no write in the commit could affect the view *)
}

val stats : t -> view_stats list
(** Per-view statistics, sorted by name. *)

val count : t -> int

val plan_supported : Plan.t -> (unit, string) result
(** Static shape check for the lint/analysis layer: would this view
    body (planned, Declassify excluded) be maintained incrementally?
    [Error reason] explains the recompute fallback. *)

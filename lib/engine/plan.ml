(* Logical query plans.  The planner lowers SQL ASTs to this form; the
   executor evaluates it against row sources supplied by the core
   (which is where visibility and the Label Confinement Rule live). *)

module Expr = Ifdb_rel.Expr
module Value = Ifdb_rel.Value
module Label = Ifdb_difc.Label

type agg_kind =
  | Count_star
  | Count of Expr.t   (* non-null count *)
  | Count_distinct of Expr.t
  | Sum of Expr.t
  | Avg of Expr.t
  | Min of Expr.t
  | Max of Expr.t

type order_spec = { key : Expr.t; descending : bool }

type range_bound = (Expr.t * bool) option
(* a bound on the index component right after the equality prefix:
   (expr, inclusive).  Exprs rather than values so a cached plan can
   carry $n placeholders; the executor evaluates them at scan start. *)

type t =
  | One_row
      (* a single empty tuple: the source for FROM-less SELECTs *)
  | Scan of {
      sc_table : string;
      sc_extra : Label.t;
          (* additional readable tags granted by enclosing
             declassifying views (paper section 4.3) *)
      sc_prefix : (string * Expr.t array) option;
          (* index name and equality-prefix key exprs, when the planner
             found a usable index *)
      sc_lo : range_bound;
      sc_hi : range_bound;
          (* optional range on the index component following the
             prefix (e.g. TPC-C's ol_o_id >= next_o_id - 20) *)
    }
  | Filter of t * Expr.t
  | Project of t * Expr.t array
  | Join of {
      left : t;
      right : t;
      kind : [ `Inner | `Left ];
      cond : Expr.t option;   (* over the concatenated row *)
      left_arity : int;
      right_arity : int;
      equi : (Expr.t * Expr.t) list;
          (* equality pairs (left-side expr, right-side expr, both in
             their own side's coordinates) extracted for hash join *)
      probe : (string * string * Label.t * Expr.t array) option;
          (* index nested-loop strategy: (table, index, extra label,
             probe-key exprs over the LEFT row).  When set, the right
             side is fetched per left row through the index instead of
             being materialized — the join's page traffic becomes
             proportional to matching rows, like PostgreSQL's
             index-nested-loop plans. *)
    }
  | Aggregate of { src : t; keys : Expr.t array; aggs : agg_kind array }
  | Distinct of t
  | Sort of t * order_spec array
  | Limit of t * int option * int option  (* limit, offset *)
  | Declassify of t * Label.t * (Ifdb_difc.Tag.t * Ifdb_difc.Tag.t) list
      (* the declassifying-view boundary: strip the given
         (compound-aware) label from each row's label, and apply the
         (from, to) tag replacements of a relabeling view *)
  | Union of t * t * [ `All | `Distinct ]
  | View of {
      v_name : string;
      v_mat : bool;
          (* the view was created MATERIALIZED: the executor may serve
             it from incrementally-maintained state instead of running
             [v_child] *)
      v_extra : Label.t;
          (* the extra label in force at the reference point (from
             *enclosing* declassifying views), before this view's own
             declassification — the materialized read needs it to
             decide partition visibility the same way a scan would *)
      v_child : t;
          (* the expanded view query, Declassify boundary included;
             always a valid recompute path *)
    }

let rec pp ppf = function
  | One_row -> Format.pp_print_string ppf "OneRow"
  | Scan { sc_table; sc_extra; sc_prefix; sc_lo = _; sc_hi = _ } ->
      Format.fprintf ppf "Scan(%s%s%s)" sc_table
        (if Label.is_empty sc_extra then ""
         else " extra=" ^ Label.to_string sc_extra)
        (match sc_prefix with
        | None -> ""
        | Some (idx, key) ->
            Format.asprintf " via %s[%a]" idx
              (Format.pp_print_list
                 ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
                 Expr.pp)
              (Array.to_list key))
  | Filter (p, e) -> Format.fprintf ppf "Filter(%a, %a)" Expr.pp e pp p
  | Project (p, es) ->
      Format.fprintf ppf "Project([%a], %a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
           Expr.pp)
        (Array.to_list es) pp p
  | Join { left; right; kind; cond; _ } ->
      Format.fprintf ppf "%sJoin(%a, %a%s)"
        (match kind with `Inner -> "" | `Left -> "Left")
        pp left pp right
        (match cond with
        | Some e -> Format.asprintf " on %a" Expr.pp e
        | None -> "")
  | Aggregate { src; keys; aggs } ->
      Format.fprintf ppf "Aggregate(keys=%d aggs=%d, %a)" (Array.length keys)
        (Array.length aggs) pp src
  | Distinct p -> Format.fprintf ppf "Distinct(%a)" pp p
  | Sort (p, _) -> Format.fprintf ppf "Sort(%a)" pp p
  | Limit (p, l, o) ->
      Format.fprintf ppf "Limit(%s,%s, %a)"
        (match l with Some n -> string_of_int n | None -> "-")
        (match o with Some n -> string_of_int n | None -> "-")
        pp p
  | Declassify (p, lbl, relabel) ->
      Format.fprintf ppf "Declassify(%a%s, %a)" Label.pp lbl
        (if relabel = [] then "" else " relabel")
        pp p
  | Union (a, b, kind) ->
      Format.fprintf ppf "Union%s(%a, %a)"
        (match kind with `All -> "All" | `Distinct -> "")
        pp a pp b
  | View { v_name; v_mat; v_child; _ } ->
      Format.fprintf ppf "%sView(%s, %a)"
        (if v_mat then "Materialized" else "")
        v_name pp v_child

let to_string p = Format.asprintf "%a" pp p

(* One-line head-only description of an operator, without recursing
   into children — the label EXPLAIN prints per tree node. *)
let describe = function
  | One_row -> "OneRow"
  | Scan { sc_table; sc_extra; sc_prefix; sc_lo; sc_hi } ->
      Printf.sprintf "Scan(%s%s%s%s)" sc_table
        (match sc_prefix with None -> "" | Some (idx, _) -> " via " ^ idx)
        (if sc_lo <> None || sc_hi <> None then " range" else "")
        (if Label.is_empty sc_extra then ""
         else " extra=" ^ Label.to_string sc_extra)
  | Filter (_, e) -> Format.asprintf "Filter(%a)" Expr.pp e
  | Project (_, es) -> Printf.sprintf "Project(%d cols)" (Array.length es)
  | Join { kind; probe; equi; _ } ->
      let prefix = match kind with `Inner -> "" | `Left -> "Left" in
      (match probe with
      | Some (table, idx, _, _) ->
          Printf.sprintf "%sIndexJoin(%s via %s)" prefix table idx
      | None ->
          if equi <> [] then Printf.sprintf "%sHashJoin(%d keys)" prefix (List.length equi)
          else prefix ^ "NestedLoopJoin")
  | Aggregate { keys; aggs; _ } ->
      Printf.sprintf "Aggregate(keys=%d aggs=%d)" (Array.length keys)
        (Array.length aggs)
  | Distinct _ -> "Distinct"
  | Sort (_, specs) -> Printf.sprintf "Sort(%d keys)" (Array.length specs)
  | Limit (_, l, o) ->
      Printf.sprintf "Limit(%s offset=%s)"
        (match l with Some n -> string_of_int n | None -> "-")
        (match o with Some n -> string_of_int n | None -> "-")
  | Declassify (_, lbl, relabel) ->
      Format.asprintf "Declassify(%a%s)" Label.pp lbl
        (if relabel = [] then "" else " relabel")
  | Union (_, _, kind) ->
      (match kind with `All -> "UnionAll" | `Distinct -> "Union")
  | View { v_name; v_mat; _ } ->
      Printf.sprintf "%sView(%s)" (if v_mat then "Materialized" else "") v_name

(* Direct children in execution order.  An index-nested-loop join's
   right side is fetched per left row through the index, not run as a
   plan, so only the left child appears. *)
let children = function
  | One_row | Scan _ -> []
  | Filter (p, _) | Project (p, _) | Distinct p | Sort (p, _)
  | Limit (p, _, _) | Declassify (p, _, _) | View { v_child = p; _ } ->
      [ p ]
  | Join { left; probe = Some _; _ } -> [ left ]
  | Join { left; right; _ } -> [ left; right ]
  | Aggregate { src; _ } -> [ src ]
  | Union (a, b, _) -> [ a; b ]

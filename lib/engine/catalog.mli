(** The catalog: tables, indexes, views and label constraints.

    Names are case-insensitive.  The catalog is mechanism only — the
    information-flow semantics of declassifying views and label
    constraints are enforced by [Ifdb_core], which drives this layer.
    (Triggers and stored procedures live in the core too: their bodies
    are closures over sessions.) *)

module Label = Ifdb_difc.Label
module Principal = Ifdb_difc.Principal
module Schema = Ifdb_rel.Schema
module Tuple = Ifdb_rel.Tuple
module Value = Ifdb_rel.Value

exception Catalog_error of string

type index = {
  idx_name : string;
  idx_table : string;
  idx_cols : int array;       (** column positions in the table schema *)
  idx_unique : bool;
  idx_tree : Ifdb_storage.Btree.t;
      (** flat layout: the single tree; unused (empty) when the table
          is partitioned *)
  idx_segs : (int, Ifdb_storage.Btree.t) Hashtbl.t option;
      (** [Some _] iff the table's heap is partitioned: one B-tree
          segment per interned label id (-1 groups the uninterned).
          Go through {!index_find} / {!seq_index_prefix} rather than
          reading either field directly. *)
}

type table = {
  tbl_schema : Schema.t;
  tbl_heap : Ifdb_storage.Heap.t;
  mutable tbl_indexes : index list;
}

(** A view definition.  [vw_declassify] is the label the view is
    authorized to strip from result tuples (empty for ordinary views) —
    the paper's declassifying views, section 4.3.  [vw_relabel] holds
    (from, to) replacements for the more sophisticated views of that
    section: e.g. a billing view that replaces [p_medical] with
    [p_billing] for each patient. *)
type view = {
  vw_name : string;
  vw_query : Ifdb_sql.Ast.select;
  vw_declassify : Label.t;
  vw_relabel : (Ifdb_difc.Tag.t * Ifdb_difc.Tag.t) list;
  vw_materialized : bool;
      (** registered for incremental maintenance; the IVM registry in
          the core owns the materialized state *)
}

(** Label constraints (section 5.2.4): given a candidate tuple, return
    the rule its label must satisfy (or [None] when the constraint does
    not apply to this tuple). *)
type label_rule =
  | Exactly of Label.t
  | Superset of Label.t

type label_constraint = {
  lc_name : string;
  lc_table : string;
  lc_fn : Tuple.t -> label_rule option;
}

type t

val create :
  pool:Ifdb_storage.Buffer_pool.t ->
  labeled:bool ->
  ?partitioned:bool ->
  unit ->
  t
(** [labeled] selects the storage size model (see
    {!Ifdb_storage.Heap.create}).  [partitioned] (default false) makes
    every table label-sharded: per-partition heap page runs and
    per-partition index segments. *)

val pool : t -> Ifdb_storage.Buffer_pool.t
val labeled : t -> bool
val partitioned : t -> bool

val version : t -> int
(** Monotone counter bumped by every DDL mutation (table/view/index
    create and drop, label-constraint registration).  Plan-cache
    entries stamp the version they were planned under and re-plan when
    it moves. *)

(** {1 Tables} *)

val create_table : t -> Schema.t -> table
(** Creates the heap and one index per unique constraint (including
    the primary key).  Raises {!Catalog_error} if the name is taken by
    a table or view. *)

val drop_table : t -> string -> unit
val find_table : t -> string -> table option
val table : t -> string -> table
(** Like {!find_table} but raises {!Catalog_error}. *)

val all_tables : t -> table list

(** {1 Indexes} *)

val create_index :
  t -> name:string -> table:string -> cols:string list -> unique:bool -> index
(** Builds the index over existing heap versions too. *)

val index_key : index -> Value.t array -> Value.t array
(** Extract the index key from a row of table values. *)

val insert_into_indexes : t -> table -> Value.t array -> lid:int -> int -> unit
(** Post a new heap version id under every index of the table; [lid]
    is the tuple's interned label id (-1 when uninterned), selecting
    the segment in the partitioned layout. *)

val bulk_insert_into_indexes :
  t -> table -> (Value.t array * int * int) list -> unit
(** Post a whole run of (row values, label id, vid) triples: each index
    is loaded via {!Btree.insert_many} (sort once, one descent per
    subtree) instead of one root-to-leaf walk per row.  Equivalent to
    calling {!insert_into_indexes} per row. *)

val remove_from_indexes : t -> table -> Value.t array -> lid:int -> int -> unit

(** {2 Lookups}

    Readers go through these rather than touching [idx_tree]/[idx_segs]
    directly, so one call site serves both layouts.  Ordered scans
    merge per-segment streams back into the flat tree's (key, vid)
    order — downstream consumers observe an identical sequence. *)

val index_find : index -> Value.t array -> int list
(** Every vid posted under exactly this key, across all segments (the
    label-blind probe: foreign-key checks reason about tuples the
    process may not see). *)

val index_find_label : index -> Value.t array -> lid:int -> int list
(** Candidates for a uniqueness probe under label id [lid]: in the
    partitioned layout only [lid]'s segment (plus the uninterned
    residue) is consulted — the (key, label) identity of
    polyinstantiation confines the probe by construction.  Callers
    still re-check labels per candidate. *)

val seq_index_prefix :
  index ->
  keep:(int -> bool) ->
  prefix:Value.t array ->
  lo:(Value.t * bool) option ->
  hi:(Value.t * bool) option ->
  (Value.t array * int) Seq.t
(** Lazy prefix/range scan in (key, vid) order over the segments whose
    label id [keep] accepts ([keep] is ignored in the flat layout —
    the caller's per-tuple label filter still applies there). *)

val iter_index_entries : index -> (Value.t array -> int -> unit) -> unit
(** Every posting in (key, vid) order, across all segments. *)

val index_entry_count : index -> int

val index_segment_count : index -> int
(** Number of label segments materialized (1 in the flat layout). *)

(** {1 Views} *)

val create_view :
  t ->
  name:string ->
  query:Ifdb_sql.Ast.select ->
  declassify:Label.t ->
  ?relabel:(Ifdb_difc.Tag.t * Ifdb_difc.Tag.t) list ->
  ?materialized:bool ->
  unit ->
  view
val drop_view : t -> string -> unit
val find_view : t -> string -> view option

val all_views : t -> view list
(** Every view definition, sorted by name. *)

(** {1 Label constraints} *)

val add_label_constraint : t -> label_constraint -> unit
val label_constraints_for : t -> string -> label_constraint list

val drop_index : t -> string -> unit
(** Remove an index by name from whichever table holds it; raises
    {!Catalog_error} if absent. *)

(** The catalog: tables, indexes, views and label constraints.

    Names are case-insensitive.  The catalog is mechanism only — the
    information-flow semantics of declassifying views and label
    constraints are enforced by [Ifdb_core], which drives this layer.
    (Triggers and stored procedures live in the core too: their bodies
    are closures over sessions.) *)

module Label = Ifdb_difc.Label
module Principal = Ifdb_difc.Principal
module Schema = Ifdb_rel.Schema
module Tuple = Ifdb_rel.Tuple
module Value = Ifdb_rel.Value

exception Catalog_error of string

type index = {
  idx_name : string;
  idx_table : string;
  idx_cols : int array;       (** column positions in the table schema *)
  idx_unique : bool;
  idx_tree : Ifdb_storage.Btree.t;
}

type table = {
  tbl_schema : Schema.t;
  tbl_heap : Ifdb_storage.Heap.t;
  mutable tbl_indexes : index list;
}

(** A view definition.  [vw_declassify] is the label the view is
    authorized to strip from result tuples (empty for ordinary views) —
    the paper's declassifying views, section 4.3.  [vw_relabel] holds
    (from, to) replacements for the more sophisticated views of that
    section: e.g. a billing view that replaces [p_medical] with
    [p_billing] for each patient. *)
type view = {
  vw_name : string;
  vw_query : Ifdb_sql.Ast.select;
  vw_declassify : Label.t;
  vw_relabel : (Ifdb_difc.Tag.t * Ifdb_difc.Tag.t) list;
  vw_materialized : bool;
      (** registered for incremental maintenance; the IVM registry in
          the core owns the materialized state *)
}

(** Label constraints (section 5.2.4): given a candidate tuple, return
    the rule its label must satisfy (or [None] when the constraint does
    not apply to this tuple). *)
type label_rule =
  | Exactly of Label.t
  | Superset of Label.t

type label_constraint = {
  lc_name : string;
  lc_table : string;
  lc_fn : Tuple.t -> label_rule option;
}

type t

val create : pool:Ifdb_storage.Buffer_pool.t -> labeled:bool -> unit -> t
(** [labeled] selects the storage size model (see {!Ifdb_storage.Heap.create}). *)

val pool : t -> Ifdb_storage.Buffer_pool.t
val labeled : t -> bool

(** {1 Tables} *)

val create_table : t -> Schema.t -> table
(** Creates the heap and one index per unique constraint (including
    the primary key).  Raises {!Catalog_error} if the name is taken by
    a table or view. *)

val drop_table : t -> string -> unit
val find_table : t -> string -> table option
val table : t -> string -> table
(** Like {!find_table} but raises {!Catalog_error}. *)

val all_tables : t -> table list

(** {1 Indexes} *)

val create_index :
  t -> name:string -> table:string -> cols:string list -> unique:bool -> index
(** Builds the index over existing heap versions too. *)

val index_key : index -> Value.t array -> Value.t array
(** Extract the index key from a row of table values. *)

val insert_into_indexes : t -> table -> Value.t array -> int -> unit
(** Post a new heap version id under every index of the table. *)

val bulk_insert_into_indexes : t -> table -> (Value.t array * int) list -> unit
(** Post a whole run of (row values, vid) pairs: each index is loaded
    via {!Btree.insert_many} (sort once, one descent per subtree)
    instead of one root-to-leaf walk per row.  Equivalent to calling
    {!insert_into_indexes} per row. *)

val remove_from_indexes : t -> table -> Value.t array -> int -> unit

(** {1 Views} *)

val create_view :
  t ->
  name:string ->
  query:Ifdb_sql.Ast.select ->
  declassify:Label.t ->
  ?relabel:(Ifdb_difc.Tag.t * Ifdb_difc.Tag.t) list ->
  ?materialized:bool ->
  unit ->
  view
val drop_view : t -> string -> unit
val find_view : t -> string -> view option

val all_views : t -> view list
(** Every view definition, sorted by name. *)

(** {1 Label constraints} *)

val add_label_constraint : t -> label_constraint -> unit
val label_constraints_for : t -> string -> label_constraint list

val drop_index : t -> string -> unit
(** Remove an index by name from whichever table holds it; raises
    {!Catalog_error} if absent. *)

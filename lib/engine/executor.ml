module Tuple = Ifdb_rel.Tuple
module Expr = Ifdb_rel.Expr
module Label = Ifdb_difc.Label
module Value = Ifdb_rel.Value

type ctx = {
  fenv : Expr.env;
  scan_table : string -> extra:Label.t -> Tuple.t Seq.t;
  scan_prefix :
    table:string -> index:string -> prefix:Value.t array ->
    lo:(Value.t * bool) option -> hi:(Value.t * bool) option ->
    extra:Label.t -> Tuple.t Seq.t;
  strip :
    Label.t -> (Ifdb_difc.Tag.t * Ifdb_difc.Tag.t) list -> Label.t -> Label.t;
}

exception Exec_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Exec_error s)) fmt

let one_row =
  Tuple.make ~values:[||] ~label:Label.empty

let concat_rows a b =
  let values = Array.append (Tuple.values a) (Tuple.values b) in
  (* joined rows usually pair tuples of the same interned label (or one
     side is unlabeled): the union is then the label itself and the id
     carries over, skipping both the union and re-interning downstream *)
  let la = Tuple.label a and lb = Tuple.label b in
  let ida = Tuple.label_id a and idb = Tuple.label_id b in
  if ida >= 0 && (ida = idb || Label.is_empty lb) then
    Tuple.make_interned ~values ~label:la ~label_id:ida
  else if idb >= 0 && Label.is_empty la then
    Tuple.make_interned ~values ~label:lb ~label_id:idb
  else Tuple.make ~values ~label:(Label.union la lb)

let null_row arity = Tuple.make ~values:(Array.make arity Value.Null) ~label:Label.empty

(* Contamination accumulator for row streams.  Interned tuples sharing
   a label share one physical array, so remembering the last absorbed
   label makes the per-row step a pointer compare in the common case
   (a scan over few distinct labels); the union fast paths catch the
   rest without allocating. *)
type label_acc = { mutable acc_label : Label.t; mutable acc_last : Label.t }

let absorb_label la row =
  let l = Tuple.label row in
  if l != la.acc_last then begin
    la.acc_last <- l;
    la.acc_label <- Label.union la.acc_label l
  end

(* --- aggregation ------------------------------------------------- *)

type agg_state = {
  mutable count : int;          (* rows contributing (non-null for Count e) *)
  mutable sum_int : int;
  mutable sum_float : float;
  mutable saw_float : bool;
  mutable extreme : Value.t;    (* current min/max, Null if none *)
  mutable distinct_seen : (Value.t, unit) Hashtbl.t option;
}

let new_agg_state () =
  { count = 0; sum_int = 0; sum_float = 0.0; saw_float = false;
    extreme = Value.Null; distinct_seen = None }

let feed_agg ctx row (kind : Plan.agg_kind) st =
  let arg e = Expr.eval ctx.fenv row e in
  match kind with
  | Plan.Count_star -> st.count <- st.count + 1
  | Plan.Count e -> if not (Value.is_null (arg e)) then st.count <- st.count + 1
  | Plan.Count_distinct e -> (
      match arg e with
      | Value.Null -> ()
      | v ->
          let seen =
            match st.distinct_seen with
            | Some tbl -> tbl
            | None ->
                let tbl = Hashtbl.create 16 in
                st.distinct_seen <- Some tbl;
                tbl
          in
          if not (Hashtbl.mem seen v) then begin
            Hashtbl.add seen v ();
            st.count <- st.count + 1
          end)
  | Plan.Sum e | Plan.Avg e -> (
      match arg e with
      | Value.Null -> ()
      | Value.Int i ->
          st.count <- st.count + 1;
          st.sum_int <- st.sum_int + i;
          st.sum_float <- st.sum_float +. float_of_int i
      | Value.Float f ->
          st.count <- st.count + 1;
          st.saw_float <- true;
          st.sum_float <- st.sum_float +. f
      | v -> fail "SUM/AVG over non-numeric value %s" (Value.to_string v))
  | Plan.Min e -> (
      match arg e with
      | Value.Null -> ()
      | v ->
          st.count <- st.count + 1;
          if Value.is_null st.extreme || Value.compare v st.extreme < 0 then
            st.extreme <- v)
  | Plan.Max e -> (
      match arg e with
      | Value.Null -> ()
      | v ->
          st.count <- st.count + 1;
          if Value.is_null st.extreme || Value.compare v st.extreme > 0 then
            st.extreme <- v)

let finish_agg (kind : Plan.agg_kind) st : Value.t =
  match kind with
  | Plan.Count_star | Plan.Count _ | Plan.Count_distinct _ -> Value.Int st.count
  | Plan.Sum _ ->
      if st.count = 0 then Value.Null
      else if st.saw_float then Value.Float st.sum_float
      else Value.Int st.sum_int
  | Plan.Avg _ ->
      if st.count = 0 then Value.Null
      else Value.Float (st.sum_float /. float_of_int st.count)
  | Plan.Min _ | Plan.Max _ -> st.extreme

(* --- joins -------------------------------------------------------- *)

(* Index nested loop: per left row, evaluate the probe key and fetch
   matching right rows through the index; re-check the full condition
   on the merged row. *)
let probe_join ctx ~left_rows ~table ~index ~extra ~probe_exprs ~kind ~cond
    ~right_arity =
  let eval_cond merged =
    match cond with None -> true | Some e -> Expr.eval_pred ctx.fenv merged e
  in
  Seq.concat_map
    (fun lrow ->
      let prefix =
        Array.map (fun e -> Expr.eval ctx.fenv lrow e) probe_exprs
      in
      let matches =
        if Array.exists Value.is_null prefix then Seq.empty
        else
          Seq.filter_map
            (fun rrow ->
              let merged = concat_rows lrow rrow in
              if eval_cond merged then Some merged else None)
            (ctx.scan_prefix ~table ~index ~prefix ~lo:None ~hi:None ~extra)
      in
      match kind with
      | `Inner -> matches
      | `Left ->
          if Seq.is_empty matches then
            Seq.return (concat_rows lrow (null_row right_arity))
          else matches)
    left_rows

(* Hash join on extracted equality pairs when available, otherwise
   nested loop over a materialized right side. *)
let join ctx ~left_rows ~right ~kind ~cond ~right_arity ~equi () =
  let right_rows = List.of_seq right in
  let eval_cond merged =
    match cond with None -> true | Some e -> Expr.eval_pred ctx.fenv merged e
  in
  match equi with
  | [] ->
      (* nested loop *)
      Seq.concat_map
        (fun lrow ->
          let matches =
            List.to_seq
              (List.filter_map
                 (fun rrow ->
                   let merged = concat_rows lrow rrow in
                   if eval_cond merged then Some merged else None)
                 right_rows)
          in
          match kind with
          | `Inner -> matches
          | `Left ->
              if Seq.is_empty matches then
                Seq.return (concat_rows lrow (null_row right_arity))
              else matches)
        left_rows
  | pairs ->
      let rkey rrow =
        List.map (fun (_, re) -> Expr.eval ctx.fenv rrow re) pairs
      in
      let lkey lrow =
        List.map (fun (le, _) -> Expr.eval ctx.fenv lrow le) pairs
      in
      let table : (Value.t list, Tuple.t list) Hashtbl.t = Hashtbl.create 256 in
      List.iter
        (fun rrow ->
          let k = rkey rrow in
          (* SQL equality: NULL joins nothing *)
          if not (List.exists Value.is_null k) then
            Hashtbl.replace table k
              (rrow :: Option.value ~default:[] (Hashtbl.find_opt table k)))
        right_rows;
      Seq.concat_map
        (fun lrow ->
          let k = lkey lrow in
          let candidates =
            if List.exists Value.is_null k then []
            else List.rev (Option.value ~default:[] (Hashtbl.find_opt table k))
          in
          let matches =
            List.filter_map
              (fun rrow ->
                let merged = concat_rows lrow rrow in
                if eval_cond merged then Some merged else None)
              candidates
          in
          match (kind, matches) with
          | `Inner, ms -> List.to_seq ms
          | `Left, [] -> Seq.return (concat_rows lrow (null_row right_arity))
          | `Left, ms -> List.to_seq ms)
        left_rows

(* --- main interpreter --------------------------------------------- *)

let rec run ctx (plan : Plan.t) : Tuple.t Seq.t =
  match plan with
  | Plan.One_row -> Seq.return one_row
  | Plan.Scan { sc_table; sc_extra; sc_prefix; sc_lo; sc_hi } -> (
      match sc_prefix with
      | None -> ctx.scan_table sc_table ~extra:sc_extra
      | Some (index, prefix) ->
          ctx.scan_prefix ~table:sc_table ~index ~prefix ~lo:sc_lo ~hi:sc_hi
            ~extra:sc_extra)
  | Plan.Filter (src, pred) ->
      Seq.filter (fun row -> Expr.eval_pred ctx.fenv row pred) (run ctx src)
  | Plan.Project (src, exprs) ->
      Seq.map
        (fun row ->
          let values = Array.map (fun e -> Expr.eval ctx.fenv row e) exprs in
          let lid = Tuple.label_id row in
          if lid >= 0 then
            Tuple.make_interned ~values ~label:(Tuple.label row) ~label_id:lid
          else Tuple.make ~values ~label:(Tuple.label row))
        (run ctx src)
  | Plan.Join
      { left; right; kind; cond; left_arity = _; right_arity; equi; probe } -> (
      match probe with
      | Some (table, index, extra, probe_exprs) ->
          probe_join ctx ~left_rows:(run ctx left) ~table ~index ~extra
            ~probe_exprs ~kind ~cond ~right_arity
      | None ->
          join ctx ~left_rows:(run ctx left) ~right:(run ctx right) ~kind ~cond
            ~right_arity ~equi ())
  | Plan.Aggregate { src; keys; aggs } ->
      let groups : (Value.t list, agg_state array * label_acc) Hashtbl.t =
        Hashtbl.create 64
      in
      let order = ref [] in
      Seq.iter
        (fun row ->
          let k = Array.to_list (Array.map (fun e -> Expr.eval ctx.fenv row e) keys) in
          let states, lbl =
            match Hashtbl.find_opt groups k with
            | Some s -> s
            | None ->
                let s =
                  ( Array.map (fun _ -> new_agg_state ()) aggs,
                    { acc_label = Label.empty; acc_last = Label.empty } )
                in
                Hashtbl.replace groups k s;
                order := k :: !order;
                s
          in
          absorb_label lbl row;
          Array.iteri (fun i kind -> feed_agg ctx row kind states.(i)) aggs)
        (run ctx src);
      let emit k (states, lbl) =
        Tuple.make
          ~values:
            (Array.append (Array.of_list k)
               (Array.mapi (fun i kind -> finish_agg kind states.(i)) aggs))
          ~label:lbl.acc_label
      in
      if Hashtbl.length groups = 0 && Array.length keys = 0 then
        (* SQL: aggregates over an empty input with no GROUP BY yield
           one row of identities *)
        Seq.return
          (Tuple.make
             ~values:(Array.map (fun kind -> finish_agg kind (new_agg_state ())) aggs)
             ~label:Label.empty)
      else
        List.to_seq
          (List.rev_map (fun k -> emit k (Hashtbl.find groups k)) !order)
  | Plan.Distinct src ->
      let seen : (Value.t list * Label.t, unit) Hashtbl.t = Hashtbl.create 64 in
      Seq.filter
        (fun row ->
          let key = (Array.to_list (Tuple.values row), Tuple.label row) in
          if Hashtbl.mem seen key then false
          else begin
            Hashtbl.add seen key ();
            true
          end)
        (run ctx src)
  | Plan.Sort (src, specs) ->
      let rows = List.of_seq (run ctx src) in
      let decorated =
        List.map
          (fun row ->
            ( Array.map (fun s -> Expr.eval ctx.fenv row s.Plan.key) specs,
              row ))
          rows
      in
      let cmp (ka, _) (kb, _) =
        let rec go i =
          if i >= Array.length specs then 0
          else
            let c = Value.compare ka.(i) kb.(i) in
            if c = 0 then go (i + 1)
            else if specs.(i).Plan.descending then -c
            else c
        in
        go 0
      in
      List.to_seq (List.map snd (List.stable_sort cmp decorated))
  | Plan.Limit (src, limit, offset) ->
      let s = run ctx src in
      let s = match offset with Some n -> Seq.drop n s | None -> s in
      (match limit with Some n -> Seq.take n s | None -> s)
  | Plan.Declassify (src, lbl, relabel) ->
      Seq.map
        (fun row ->
          Tuple.make ~values:(Tuple.values row)
            ~label:(ctx.strip lbl relabel (Tuple.label row)))
        (run ctx src)
  | Plan.Union (a, b, kind) -> (
      let both = Seq.append (run ctx a) (run ctx b) in
      match kind with
      | `All -> both
      | `Distinct ->
          let seen : (Value.t list * Label.t, unit) Hashtbl.t =
            Hashtbl.create 64
          in
          Seq.filter
            (fun row ->
              let key = (Array.to_list (Tuple.values row), Tuple.label row) in
              if Hashtbl.mem seen key then false
              else begin
                Hashtbl.add seen key ();
                true
              end)
            both)

let run_list ctx plan = List.of_seq (run ctx plan)

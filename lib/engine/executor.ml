module Tuple = Ifdb_rel.Tuple
module Expr = Ifdb_rel.Expr
module Label = Ifdb_difc.Label
module Value = Ifdb_rel.Value
module Trace = Ifdb_obs.Trace

type morsel_source = {
  ms_morsels : int;
  ms_run : int -> (Tuple.t -> unit) -> unit;
}

type par = {
  par_pool : Domain_pool.t;
  par_width : int;
  par_scan : table:string -> extra:Label.t -> morsel_source option;
}

type ctx = {
  fenv : Expr.env;
  scan_table : string -> extra:Label.t -> Tuple.t Seq.t;
  scan_prefix :
    table:string -> index:string -> prefix:Value.t array ->
    lo:(Value.t * bool) option -> hi:(Value.t * bool) option ->
    extra:Label.t -> Tuple.t Seq.t;
  strip :
    Label.t -> (Ifdb_difc.Tag.t * Ifdb_difc.Tag.t) list -> Label.t -> Label.t;
  mv_read : view:string -> extra:Label.t -> Tuple.t list option;
  par : par option;
  trace : Trace.t option;
}

exception Exec_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Exec_error s)) fmt

let one_row =
  Tuple.make ~values:[||] ~label:Label.empty

let concat_rows a b =
  let values = Array.append (Tuple.values a) (Tuple.values b) in
  (* joined rows usually pair tuples of the same interned label (or one
     side is unlabeled): the union is then the label itself and the id
     carries over, skipping both the union and re-interning downstream *)
  let la = Tuple.label a and lb = Tuple.label b in
  let ida = Tuple.label_id a and idb = Tuple.label_id b in
  if ida >= 0 && (ida = idb || Label.is_empty lb) then
    Tuple.make_interned ~values ~label:la ~label_id:ida
  else if idb >= 0 && Label.is_empty la then
    Tuple.make_interned ~values ~label:lb ~label_id:idb
  else Tuple.make ~values ~label:(Label.union la lb)

let null_row arity = Tuple.make ~values:(Array.make arity Value.Null) ~label:Label.empty

(* Contamination accumulator for row streams.  Interned tuples sharing
   a label share one physical array, so remembering the last absorbed
   label makes the per-row step a pointer compare in the common case
   (a scan over few distinct labels); the union fast paths catch the
   rest without allocating. *)
type label_acc = { mutable acc_label : Label.t; mutable acc_last : Label.t }

let absorb_label la row =
  let l = Tuple.label row in
  if l != la.acc_last then begin
    la.acc_last <- l;
    la.acc_label <- Label.union la.acc_label l
  end

(* --- aggregation ------------------------------------------------- *)

type agg_state = {
  mutable count : int;          (* rows contributing (non-null for Count e) *)
  mutable sum_int : int;
  mutable sum_float : float;
  mutable saw_float : bool;
  mutable extreme : Value.t;    (* current min/max, Null if none *)
  mutable distinct_seen : (Value.t, unit) Hashtbl.t option;
}

let new_agg_state () =
  { count = 0; sum_int = 0; sum_float = 0.0; saw_float = false;
    extreme = Value.Null; distinct_seen = None }

let feed_agg ctx row (kind : Plan.agg_kind) st =
  let arg e = Expr.eval ctx.fenv row e in
  match kind with
  | Plan.Count_star -> st.count <- st.count + 1
  | Plan.Count e -> if not (Value.is_null (arg e)) then st.count <- st.count + 1
  | Plan.Count_distinct e -> (
      match arg e with
      | Value.Null -> ()
      | v ->
          let seen =
            match st.distinct_seen with
            | Some tbl -> tbl
            | None ->
                let tbl = Hashtbl.create 16 in
                st.distinct_seen <- Some tbl;
                tbl
          in
          if not (Hashtbl.mem seen v) then begin
            Hashtbl.add seen v ();
            st.count <- st.count + 1
          end)
  | Plan.Sum e | Plan.Avg e -> (
      match arg e with
      | Value.Null -> ()
      | Value.Int i ->
          st.count <- st.count + 1;
          st.sum_int <- st.sum_int + i;
          st.sum_float <- st.sum_float +. float_of_int i
      | Value.Float f ->
          st.count <- st.count + 1;
          st.saw_float <- true;
          st.sum_float <- st.sum_float +. f
      | v -> fail "SUM/AVG over non-numeric value %s" (Value.to_string v))
  | Plan.Min e -> (
      match arg e with
      | Value.Null -> ()
      | v ->
          st.count <- st.count + 1;
          if Value.is_null st.extreme || Value.compare v st.extreme < 0 then
            st.extreme <- v)
  | Plan.Max e -> (
      match arg e with
      | Value.Null -> ()
      | v ->
          st.count <- st.count + 1;
          if Value.is_null st.extreme || Value.compare v st.extreme > 0 then
            st.extreme <- v)

(* Fold worker-partial state [b] into [a] — the merge half of parallel
   partial aggregation.  Every field combines associatively, so partial
   states over disjoint row sets merge to exactly the serial state
   (floating-point sums aside, where only association order differs). *)
let merge_agg (kind : Plan.agg_kind) a b =
  match kind with
  | Plan.Count_star | Plan.Count _ -> a.count <- a.count + b.count
  | Plan.Count_distinct _ -> (
      match b.distinct_seen with
      | None -> ()
      | Some seen_b -> (
          match a.distinct_seen with
          | None ->
              a.distinct_seen <- Some seen_b;
              a.count <- b.count
          | Some seen_a ->
              Hashtbl.iter
                (fun v () ->
                  if not (Hashtbl.mem seen_a v) then begin
                    Hashtbl.add seen_a v ();
                    a.count <- a.count + 1
                  end)
                seen_b))
  | Plan.Sum _ | Plan.Avg _ ->
      a.count <- a.count + b.count;
      a.sum_int <- a.sum_int + b.sum_int;
      a.sum_float <- a.sum_float +. b.sum_float;
      a.saw_float <- a.saw_float || b.saw_float
  | Plan.Min _ ->
      a.count <- a.count + b.count;
      if not (Value.is_null b.extreme) then
        if Value.is_null a.extreme || Value.compare b.extreme a.extreme < 0 then
          a.extreme <- b.extreme
  | Plan.Max _ ->
      a.count <- a.count + b.count;
      if not (Value.is_null b.extreme) then
        if Value.is_null a.extreme || Value.compare b.extreme a.extreme > 0 then
          a.extreme <- b.extreme

let finish_agg (kind : Plan.agg_kind) st : Value.t =
  match kind with
  | Plan.Count_star | Plan.Count _ | Plan.Count_distinct _ -> Value.Int st.count
  | Plan.Sum _ ->
      if st.count = 0 then Value.Null
      else if st.saw_float then Value.Float st.sum_float
      else Value.Int st.sum_int
  | Plan.Avg _ ->
      if st.count = 0 then Value.Null
      else Value.Float (st.sum_float /. float_of_int st.count)
  | Plan.Min _ | Plan.Max _ -> st.extreme

(* --- parallel-safety --------------------------------------------- *)

(* An expression may be evaluated on a worker domain only when it
   cannot re-enter session state: [Fn] resolves through the session's
   function environment (user scalars may mutate labels or run
   queries), and [Lazy_const] wraps a subquery whose [Lazy.force] is
   not safe to race from several domains.  Everything else is pure
   computation over the row. *)
let rec par_safe_expr (e : Expr.t) =
  match e with
  | Expr.Const _ | Expr.Col _ | Expr.Row_label -> true
  (* a pure read of the bound-parameter slot array, which is frozen for
     the duration of the statement *)
  | Expr.Param _ -> true
  | Expr.Fn _ | Expr.Lazy_const _ -> false
  | Expr.Binop (_, a, b) -> par_safe_expr a && par_safe_expr b
  | Expr.Unop (_, a)
  | Expr.Is_null a
  | Expr.Is_not_null a
  | Expr.In_list (a, _)
  | Expr.Like (a, _) ->
      par_safe_expr a
  | Expr.Case (branches, default) ->
      List.for_all (fun (c, v) -> par_safe_expr c && par_safe_expr v) branches
      && par_safe_expr default

let par_safe_agg (kind : Plan.agg_kind) =
  match kind with
  | Plan.Count_star -> true
  | Plan.Count e | Plan.Count_distinct e | Plan.Sum e | Plan.Avg e
  | Plan.Min e | Plan.Max e ->
      par_safe_expr e

(* --- joins -------------------------------------------------------- *)

(* Index nested loop: per left row, evaluate the probe key and fetch
   matching right rows through the index; re-check the full condition
   on the merged row. *)
let probe_join ctx ~left_rows ~table ~index ~extra ~probe_exprs ~kind ~cond
    ~right_arity =
  let eval_cond merged =
    match cond with None -> true | Some e -> Expr.eval_pred ctx.fenv merged e
  in
  Seq.concat_map
    (fun lrow ->
      let prefix =
        Array.map (fun e -> Expr.eval ctx.fenv lrow e) probe_exprs
      in
      let matches =
        if Array.exists Value.is_null prefix then Seq.empty
        else
          Seq.filter_map
            (fun rrow ->
              let merged = concat_rows lrow rrow in
              if eval_cond merged then Some merged else None)
            (ctx.scan_prefix ~table ~index ~prefix ~lo:None ~hi:None ~extra)
      in
      match kind with
      | `Inner -> matches
      | `Left -> (
          (* force the head once: [Seq.is_empty matches] followed by a
             second consumption of [matches] would re-run the index
             probe and filter from scratch for every outer row *)
          match matches () with
          | Seq.Nil -> Seq.return (concat_rows lrow (null_row right_arity))
          | Seq.Cons (first, rest) -> fun () -> Seq.Cons (first, rest)))
    left_rows

(* Hash join on extracted equality pairs when available, otherwise
   nested loop over a materialized right side. *)
let join ctx ~left_rows ~right ~kind ~cond ~right_arity ~equi () =
  let right_rows = List.of_seq right in
  let eval_cond merged =
    match cond with None -> true | Some e -> Expr.eval_pred ctx.fenv merged e
  in
  match equi with
  | [] ->
      (* nested loop *)
      Seq.concat_map
        (fun lrow ->
          let matches =
            List.to_seq
              (List.filter_map
                 (fun rrow ->
                   let merged = concat_rows lrow rrow in
                   if eval_cond merged then Some merged else None)
                 right_rows)
          in
          match kind with
          | `Inner -> matches
          | `Left ->
              if Seq.is_empty matches then
                Seq.return (concat_rows lrow (null_row right_arity))
              else matches)
        left_rows
  | pairs ->
      let rkey rrow =
        List.map (fun (_, re) -> Expr.eval ctx.fenv rrow re) pairs
      in
      let lkey lrow =
        List.map (fun (le, _) -> Expr.eval ctx.fenv lrow le) pairs
      in
      let table : (Value.t list, Tuple.t list) Hashtbl.t = Hashtbl.create 256 in
      List.iter
        (fun rrow ->
          let k = rkey rrow in
          (* SQL equality: NULL joins nothing *)
          if not (List.exists Value.is_null k) then
            Hashtbl.replace table k
              (rrow :: Option.value ~default:[] (Hashtbl.find_opt table k)))
        right_rows;
      Seq.concat_map
        (fun lrow ->
          let k = lkey lrow in
          let candidates =
            if List.exists Value.is_null k then []
            else List.rev (Option.value ~default:[] (Hashtbl.find_opt table k))
          in
          let matches =
            List.filter_map
              (fun rrow ->
                let merged = concat_rows lrow rrow in
                if eval_cond merged then Some merged else None)
              candidates
          in
          match (kind, matches) with
          | `Inner, ms -> List.to_seq ms
          | `Left, [] -> Seq.return (concat_rows lrow (null_row right_arity))
          | `Left, ms -> List.to_seq ms)
        left_rows

(* --- parallel pipelines ------------------------------------------- *)

(* Compile a plan subtree into a morsel source when every operator in
   it is morsel-local: a sequential scan at the leaf, with filters,
   projections and declassification fused on top.  Per-row work then
   runs on the worker domain that owns the morsel.  Anything else
   (index scans, sorts, limits, subqueries, user functions) returns
   [None] and executes serially. *)
let rec compile_pipe ctx par (plan : Plan.t) : morsel_source option =
  match plan with
  | Plan.Scan { sc_table; sc_extra; sc_prefix = None; _ } ->
      par.par_scan ~table:sc_table ~extra:sc_extra
  | Plan.Filter (src, pred) when par_safe_expr pred ->
      Option.map
        (fun ms ->
          { ms with
            ms_run =
              (fun i emit ->
                ms.ms_run i (fun row ->
                    if Expr.eval_pred ctx.fenv row pred then emit row)) })
        (compile_pipe ctx par src)
  | Plan.Project (src, exprs) when Array.for_all par_safe_expr exprs ->
      Option.map
        (fun ms ->
          { ms with
            ms_run =
              (fun i emit ->
                ms.ms_run i (fun row ->
                    let values =
                      Array.map (fun e -> Expr.eval ctx.fenv row e) exprs
                    in
                    let lid = Tuple.label_id row in
                    emit
                      (if lid >= 0 then
                         Tuple.make_interned ~values ~label:(Tuple.label row)
                           ~label_id:lid
                       else Tuple.make ~values ~label:(Tuple.label row)))) })
        (compile_pipe ctx par src)
  | Plan.Declassify (src, lbl, relabel) ->
      (* ctx.strip only reads authority state (compound membership),
         which is immutable during a read-only parallel section *)
      Option.map
        (fun ms ->
          { ms with
            ms_run =
              (fun i emit ->
                ms.ms_run i (fun row ->
                    emit
                      (Tuple.make ~values:(Tuple.values row)
                         ~label:(ctx.strip lbl relabel (Tuple.label row))))) })
        (compile_pipe ctx par src)
  | _ -> None

(* [parallel_for], with per-worker task attribution recorded into the
   trace node when one is active (EXPLAIN ANALYZE): one atomic bump per
   morsel, nothing per row. *)
let traced_parallel_for tnode pool ~width ~tasks f =
  match tnode with
  | None -> Domain_pool.parallel_for pool ~width ~tasks f
  | Some node ->
      let counts =
        Array.init (Domain_pool.parallelism pool) (fun _ -> Atomic.make 0)
      in
      Domain_pool.parallel_for pool ~width ~tasks (fun ~worker i ->
          Atomic.incr counts.(worker);
          f ~worker i);
      Trace.add_morsels node ~per_worker:(Array.map Atomic.get counts)

(* Run a pipe to completion, keeping per-morsel buffers so the
   concatenated output preserves scan (version) order — byte-identical
   to the serial executor's output for the same plan. *)
let par_collect ?(tnode = None) par ms : Tuple.t list =
  let buckets = Array.make ms.ms_morsels [] in
  traced_parallel_for tnode par.par_pool ~width:par.par_width
    ~tasks:ms.ms_morsels (fun ~worker:_ i ->
      let acc = ref [] in
      ms.ms_run i (fun row -> acc := row :: !acc);
      buckets.(i) <- List.rev !acc);
  List.concat (Array.to_list buckets)

(* Parallel partial aggregation: each worker folds its morsels into a
   private group table; the single barrier is the merge, which combines
   per-group partial states with [merge_agg].  Group output order is
   whichever worker saw the group first — SQL leaves it unspecified,
   and the equivalence tests compare multisets. *)
let par_aggregate ?(tnode = None) ctx par ms ~keys ~aggs : Tuple.t list =
  let nslots = Domain_pool.parallelism par.par_pool in
  let slots =
    Array.init nslots (fun _ ->
        (Hashtbl.create 64
          : (Value.t list, agg_state array * label_acc) Hashtbl.t))
  in
  let orders = Array.make nslots [] in
  traced_parallel_for tnode par.par_pool ~width:par.par_width
    ~tasks:ms.ms_morsels (fun ~worker i ->
      let groups = slots.(worker) in
      ms.ms_run i (fun row ->
          let k =
            Array.to_list (Array.map (fun e -> Expr.eval ctx.fenv row e) keys)
          in
          let states, lbl =
            match Hashtbl.find_opt groups k with
            | Some s -> s
            | None ->
                let s =
                  ( Array.map (fun _ -> new_agg_state ()) aggs,
                    { acc_label = Label.empty; acc_last = Label.empty } )
                in
                Hashtbl.replace groups k s;
                orders.(worker) <- k :: orders.(worker);
                s
          in
          absorb_label lbl row;
          Array.iteri (fun i kind -> feed_agg ctx row kind states.(i)) aggs));
  let merged : (Value.t list, agg_state array * label_acc) Hashtbl.t =
    Hashtbl.create 64
  in
  let order = ref [] in
  for w = 0 to nslots - 1 do
    List.iter
      (fun k ->
        let states_w, lbl_w = Hashtbl.find slots.(w) k in
        match Hashtbl.find_opt merged k with
        | None ->
            Hashtbl.replace merged k (states_w, lbl_w);
            order := k :: !order
        | Some (states, lbl) ->
            Array.iteri
              (fun i kind -> merge_agg kind states.(i) states_w.(i))
              aggs;
            lbl.acc_last <- Label.empty;
            lbl.acc_label <- Label.union lbl.acc_label lbl_w.acc_label)
      (List.rev orders.(w))
  done;
  let emit k (states, lbl) =
    Tuple.make
      ~values:
        (Array.append (Array.of_list k)
           (Array.mapi (fun i kind -> finish_agg kind states.(i)) aggs))
      ~label:lbl.acc_label
  in
  if Hashtbl.length merged = 0 && Array.length keys = 0 then
    [
      Tuple.make
        ~values:(Array.map (fun kind -> finish_agg kind (new_agg_state ())) aggs)
        ~label:Label.empty;
    ]
  else List.rev_map (fun k -> emit k (Hashtbl.find merged k)) !order

(* Parallel hash join: partitioned build, then a morsel-parallel probe
   over the left pipe.  The right side is materialized first (itself
   through [run], so a scan-shaped right side parallelizes too); build
   hashes each row's key once, then one worker per partition inserts
   its share, so the partition tables are immutable — and read
   lock-free — before the probe barrier. *)
let par_hash_join ?(tnode = None) ctx par ~left_ms ~right_rows ~kind ~cond
    ~right_arity ~pairs : Tuple.t list =
  let eval_cond merged =
    match cond with None -> true | Some e -> Expr.eval_pred ctx.fenv merged e
  in
  let rkey rrow = List.map (fun (_, re) -> Expr.eval ctx.fenv rrow re) pairs in
  let lkey lrow = List.map (fun (le, _) -> Expr.eval ctx.fenv lrow le) pairs in
  let rows = Array.of_list right_rows in
  let nparts = max 1 par.par_width in
  (* build phase 1: evaluate every right key (cheap, parallel over
     chunks); NULL keys join nothing *)
  let keyed = Array.make (Array.length rows) None in
  let chunk = 4096 in
  let nchunks = (Array.length rows + chunk - 1) / chunk in
  Domain_pool.parallel_for par.par_pool ~width:par.par_width ~tasks:nchunks
    (fun ~worker:_ c ->
      let lo = c * chunk and hi = min (Array.length rows) ((c + 1) * chunk) in
      for i = lo to hi - 1 do
        let k = rkey rows.(i) in
        if not (List.exists Value.is_null k) then
          keyed.(i) <- Some (k, Hashtbl.hash k)
      done);
  (* build phase 2: one worker owns one partition; rows are visited in
     index order, so per-key chains match the serial build exactly *)
  let parts =
    Array.init nparts (fun _ ->
        (Hashtbl.create 256 : (Value.t list, Tuple.t list) Hashtbl.t))
  in
  Domain_pool.parallel_for par.par_pool ~width:par.par_width ~tasks:nparts
    (fun ~worker:_ p ->
      let tbl = parts.(p) in
      Array.iteri
        (fun i entry ->
          match entry with
          | Some (k, h) when h mod nparts = p ->
              Hashtbl.replace tbl k
                (rows.(i) :: Option.value ~default:[] (Hashtbl.find_opt tbl k))
          | Some _ | None -> ())
        keyed);
  (* probe: morsel-parallel over the left pipe; per-morsel buffers keep
     the output in left-scan order, as the serial join emits it.  Only
     the probe is attributed to the trace — its tasks are the left
     pipe's morsels; the build fan-outs above are bookkeeping chunks. *)
  let buckets = Array.make left_ms.ms_morsels [] in
  traced_parallel_for tnode par.par_pool ~width:par.par_width
    ~tasks:left_ms.ms_morsels (fun ~worker:_ i ->
      let acc = ref [] in
      left_ms.ms_run i (fun lrow ->
          let k = lkey lrow in
          let candidates =
            if List.exists Value.is_null k then []
            else
              let tbl = parts.(Hashtbl.hash k mod nparts) in
              List.rev (Option.value ~default:[] (Hashtbl.find_opt tbl k))
          in
          let matches =
            List.filter_map
              (fun rrow ->
                let merged = concat_rows lrow rrow in
                if eval_cond merged then Some merged else None)
              candidates
          in
          match (kind, matches) with
          | `Inner, ms -> List.iter (fun m -> acc := m :: !acc) ms
          | `Left, [] -> acc := concat_rows lrow (null_row right_arity) :: !acc
          | `Left, ms -> List.iter (fun m -> acc := m :: !acc) ms);
      buckets.(i) <- List.rev !acc);
  List.concat (Array.to_list buckets)

(* --- main interpreter --------------------------------------------- *)

(* [run] gives every subtree a chance to execute as a parallel
   pipeline; [run_serial] is the one-domain interpreter it falls back
   to.  The parallel paths materialize eagerly, so [Limit] pins its
   immediate child to the serial (lazy) interpreter — early exit there
   is worth more than parallelism. *)
let rec run ctx (plan : Plan.t) : Tuple.t Seq.t =
  match ctx.trace with
  | None -> (
      match par_run ctx None plan with
      | Some rows -> List.to_seq rows
      | None -> run_serial ctx plan)
  | Some tr ->
      (* Plan translation is eager (children recurse here before the
         parent's seq is returned), so enter/exit around it builds the
         operator tree; the wall time added below covers the eager work
         (parallel sections, aggregate folds), and [wrap_seq] adds the
         lazy per-pull time afterwards.  Times are inclusive of
         children, as in Postgres EXPLAIN ANALYZE. *)
      let node = Trace.enter tr (Plan.describe plan) in
      let t0 = Trace.now_ns () in
      let result =
        match par_run ctx (Some node) plan with
        | Some rows -> Either.Left rows
        | None -> Either.Right (run_serial ctx plan)
      in
      Trace.add_ns node (Trace.now_ns () - t0);
      Trace.exit_node tr node;
      (match result with
      | Either.Left rows ->
          Trace.add_rows node (List.length rows);
          List.to_seq rows
      | Either.Right s -> Trace.wrap_seq node s)

(* Serial-only evaluation that still gives the subtree trace nodes —
   for operators that must keep their child lazy (Limit). *)
and run_lazy ctx (plan : Plan.t) : Tuple.t Seq.t =
  match ctx.trace with
  | None -> run_serial ctx plan
  | Some tr ->
      let node = Trace.enter tr (Plan.describe plan) in
      let t0 = Trace.now_ns () in
      let s = run_serial ctx plan in
      Trace.add_ns node (Trace.now_ns () - t0);
      Trace.exit_node tr node;
      Trace.wrap_seq node s

and par_run ctx tnode (plan : Plan.t) : Tuple.t list option =
  match ctx.par with
  | None -> None
  | Some par -> (
      match plan with
      | Plan.Scan _ | Plan.Filter _ | Plan.Project _ | Plan.Declassify _ -> (
          match compile_pipe ctx par plan with
          | Some ms when ms.ms_morsels >= 2 -> Some (par_collect ~tnode par ms)
          | Some _ | None -> None)
      | Plan.Aggregate { src; keys; aggs }
        when Array.for_all par_safe_expr keys
             && Array.for_all par_safe_agg aggs -> (
          match compile_pipe ctx par src with
          | Some ms when ms.ms_morsels >= 2 ->
              Some (par_aggregate ~tnode ctx par ms ~keys ~aggs)
          | Some _ | None -> None)
      | Plan.Join
          { left; right; kind; cond; left_arity = _; right_arity;
            equi = _ :: _ as pairs; probe = None }
        when (match cond with Some c -> par_safe_expr c | None -> true)
             && List.for_all
                  (fun (le, re) -> par_safe_expr le && par_safe_expr re)
                  pairs -> (
          match compile_pipe ctx par left with
          | Some left_ms when left_ms.ms_morsels >= 2 ->
              let right_rows = List.of_seq (run ctx right) in
              Some
                (par_hash_join ~tnode ctx par ~left_ms ~right_rows ~kind ~cond
                   ~right_arity ~pairs)
          | Some _ | None -> None)
      | _ -> None)

and run_serial ctx (plan : Plan.t) : Tuple.t Seq.t =
  match plan with
  | Plan.One_row -> Seq.return one_row
  | Plan.Scan { sc_table; sc_extra; sc_prefix; sc_lo; sc_hi } -> (
      match sc_prefix with
      | None -> ctx.scan_table sc_table ~extra:sc_extra
      | Some (index, prefix) ->
          (* key exprs (literals or $n parameters) are evaluated at scan
             start.  A NULL component means the originating equality or
             range conjunct is NULL — no row satisfies it — so the scan
             is provably empty without touching the index. *)
          let key = Array.map (fun e -> Expr.eval ctx.fenv one_row e) prefix in
          let bound b =
            Option.map (fun (e, incl) -> (Expr.eval ctx.fenv one_row e, incl)) b
          in
          let lo = bound sc_lo and hi = bound sc_hi in
          let null_bound = function
            | Some (v, _) -> Value.is_null v
            | None -> false
          in
          if Array.exists Value.is_null key || null_bound lo || null_bound hi
          then Seq.empty
          else
            ctx.scan_prefix ~table:sc_table ~index ~prefix:key ~lo ~hi
              ~extra:sc_extra)
  | Plan.Filter (src, pred) ->
      Seq.filter (fun row -> Expr.eval_pred ctx.fenv row pred) (run ctx src)
  | Plan.Project (src, exprs) ->
      Seq.map
        (fun row ->
          let values = Array.map (fun e -> Expr.eval ctx.fenv row e) exprs in
          let lid = Tuple.label_id row in
          if lid >= 0 then
            Tuple.make_interned ~values ~label:(Tuple.label row) ~label_id:lid
          else Tuple.make ~values ~label:(Tuple.label row))
        (run ctx src)
  | Plan.Join
      { left; right; kind; cond; left_arity = _; right_arity; equi; probe } -> (
      match probe with
      | Some (table, index, extra, probe_exprs) ->
          probe_join ctx ~left_rows:(run ctx left) ~table ~index ~extra
            ~probe_exprs ~kind ~cond ~right_arity
      | None ->
          join ctx ~left_rows:(run ctx left) ~right:(run ctx right) ~kind ~cond
            ~right_arity ~equi ())
  | Plan.Aggregate { src; keys; aggs } ->
      let groups : (Value.t list, agg_state array * label_acc) Hashtbl.t =
        Hashtbl.create 64
      in
      let order = ref [] in
      Seq.iter
        (fun row ->
          let k = Array.to_list (Array.map (fun e -> Expr.eval ctx.fenv row e) keys) in
          let states, lbl =
            match Hashtbl.find_opt groups k with
            | Some s -> s
            | None ->
                let s =
                  ( Array.map (fun _ -> new_agg_state ()) aggs,
                    { acc_label = Label.empty; acc_last = Label.empty } )
                in
                Hashtbl.replace groups k s;
                order := k :: !order;
                s
          in
          absorb_label lbl row;
          Array.iteri (fun i kind -> feed_agg ctx row kind states.(i)) aggs)
        (run ctx src);
      let emit k (states, lbl) =
        Tuple.make
          ~values:
            (Array.append (Array.of_list k)
               (Array.mapi (fun i kind -> finish_agg kind states.(i)) aggs))
          ~label:lbl.acc_label
      in
      if Hashtbl.length groups = 0 && Array.length keys = 0 then
        (* SQL: aggregates over an empty input with no GROUP BY yield
           one row of identities *)
        Seq.return
          (Tuple.make
             ~values:(Array.map (fun kind -> finish_agg kind (new_agg_state ())) aggs)
             ~label:Label.empty)
      else
        List.to_seq
          (List.rev_map (fun k -> emit k (Hashtbl.find groups k)) !order)
  | Plan.Distinct src ->
      let seen : (Value.t list * Label.t, unit) Hashtbl.t = Hashtbl.create 64 in
      Seq.filter
        (fun row ->
          let key = (Array.to_list (Tuple.values row), Tuple.label row) in
          if Hashtbl.mem seen key then false
          else begin
            Hashtbl.add seen key ();
            true
          end)
        (run ctx src)
  | Plan.Sort (src, specs) ->
      let rows = List.of_seq (run ctx src) in
      let decorated =
        List.map
          (fun row ->
            ( Array.map (fun s -> Expr.eval ctx.fenv row s.Plan.key) specs,
              row ))
          rows
      in
      let cmp (ka, _) (kb, _) =
        let rec go i =
          if i >= Array.length specs then 0
          else
            let c = Value.compare ka.(i) kb.(i) in
            if c = 0 then go (i + 1)
            else if specs.(i).Plan.descending then -c
            else c
        in
        go 0
      in
      List.to_seq (List.map snd (List.stable_sort cmp decorated))
  | Plan.Limit (src, limit, offset) ->
      (* keep the child lazy: a parallel child would materialize the
         whole input before the limit could stop it *)
      let s = run_lazy ctx src in
      let s = match offset with Some n -> Seq.drop n s | None -> s in
      (match limit with Some n -> Seq.take n s | None -> s)
  | Plan.Declassify (src, lbl, relabel) ->
      Seq.map
        (fun row ->
          Tuple.make ~values:(Tuple.values row)
            ~label:(ctx.strip lbl relabel (Tuple.label row)))
        (run ctx src)
  | Plan.Union (a, b, kind) -> (
      let both = Seq.append (run ctx a) (run ctx b) in
      match kind with
      | `All -> both
      | `Distinct ->
          let seen : (Value.t list * Label.t, unit) Hashtbl.t =
            Hashtbl.create 64
          in
          Seq.filter
            (fun row ->
              let key = (Array.to_list (Tuple.values row), Tuple.label row) in
              if Hashtbl.mem seen key then false
              else begin
                Hashtbl.add seen key ();
                true
              end)
            both)
  | Plan.View { v_name; v_mat; v_extra; v_child } -> (
      (* serving from maintained state is an optimization the core may
         decline (staleness, unsupported shape, explicit transaction):
         [v_child] is always an equivalent recompute path *)
      let marker desc rows =
        match ctx.trace with
        | None -> ()
        | Some tr ->
            let node = Trace.enter tr desc in
            (match rows with
            | Some n -> Trace.add_rows node n
            | None -> ());
            Trace.exit_node tr node
      in
      let served =
        if v_mat then ctx.mv_read ~view:v_name ~extra:v_extra else None
      in
      match served with
      | Some rows ->
          marker "(served from materialized state)" (Some (List.length rows));
          List.to_seq rows
      | None ->
          if v_mat then marker "(recomputed)" None;
          run ctx v_child)

let run_list ctx plan = List.of_seq (run ctx plan)
